// Populationsweep: the robustness question the fixed suite cannot answer
// — does PRE's advantage over a hardware prefetcher survive scenario
// diversity, or is it an artifact of five hand-picked kernels?
//
// Fifty scenarios are sampled from the default synth space (seeded,
// reproducible) and each runs under OoO and PRE, with and without the
// stride+best-offset prefetcher pair. The report is the per-seed speedup
// distribution per configuration: geomean for the headline, min and the
// worst seed for the tail. The expected picture: on stream-heavy seeds
// the prefetchers capture most of PRE's win (the PRE rows' min drops
// toward 1), while pointer-chasing and hash-walk seeds keep the gap open
// — the population says when runahead pays, not just whether.
package main

import (
	"fmt"
	"log"
	"os"

	presim "repro"
)

func main() {
	opt := presim.DefaultOptions()
	opt.WarmupUops = 20_000
	opt.MeasureUops = 60_000

	// no-pf and the combined stride+bo variant: the two ends of the
	// prefetching axis.
	pts := presim.PrefetchPoints()
	points := []presim.ExperimentPoint{pts[0], pts[len(pts)-1]}

	m := presim.Experiment{
		Name:   "populationsweep",
		Modes:  []presim.Mode{presim.ModeOoO, presim.ModePRE},
		Points: points,
		Population: &presim.Population{
			Space: presim.DefaultSynthSpace(),
			Count: 50,
		},
		Options: opt,
	}
	plan, err := m.Expand()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("50-seed population x {OoO, PRE} x {no-pf, stride+bo}: %d unique runs\n\n",
		plan.NumUnique())
	set, err := plan.Run(0)
	if err != nil {
		log.Fatal(err)
	}

	names := plan.Points()
	stats := make([][]presim.PopulationStat, len(names))
	for pi := range names {
		stats[pi] = set.PopulationStats(pi)
	}
	presim.PopulationGridTable(names, stats).Write(os.Stdout)

	// How often does PRE still add speedup on top of the prefetchers?
	pre := set.SeedSpeedups(1, 1) // stride+bo point, PRE mode
	wins := 0
	for _, s := range pre {
		if s > 1.01 {
			wins++
		}
	}
	fmt.Printf("\nPRE beats the stride+bo prefetchers by >1%% on %d/%d seeds.\n", wins, len(pre))

	// The worst seed is fully described by its sampled parameters (a
	// -json sweep records them per cell; presim.SynthFromParams rebuilds
	// the scenario from them alone).
	for _, st := range stats[1] {
		if st.Mode != presim.ModePRE {
			continue
		}
		fmt.Printf("Worst PRE seed under stride+bo: %s (%.3fx), sampled as:\n", st.WorstSeed, st.Min)
		for wi, w := range plan.Workloads() {
			if w.Name != st.WorstSeed {
				continue
			}
			for _, ph := range plan.SynthParams(wi).Phases {
				fmt.Printf("  %-8s lanes %d, %d µops/phase\n", ph.Archetype, ph.Lanes, ph.Uops)
			}
		}
	}
}
