// Quickstart: run one memory-bound benchmark under the out-of-order
// baseline and under Precise Runahead Execution, and print the headline
// comparison — the sixty-second tour of the library.
package main

import (
	"fmt"
	"log"

	presim "repro"
)

func main() {
	w, err := presim.WorkloadByName("libquantum")
	if err != nil {
		log.Fatal(err)
	}

	opt := presim.DefaultOptions()
	opt.MeasureUops = 200_000

	base, err := presim.Run(w, presim.ModeOoO, opt)
	if err != nil {
		log.Fatal(err)
	}
	pre, err := presim.Run(w, presim.ModePRE, opt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload            %s\n", w.Name)
	fmt.Printf("baseline IPC        %.3f (LLC MPKI %.1f)\n", base.IPC, base.L3MPKI)
	fmt.Printf("PRE IPC             %.3f\n", pre.IPC)
	fmt.Printf("PRE speedup         %.2fx\n", pre.Speedup(base))
	fmt.Printf("runahead episodes   %d (mean interval %.0f cycles)\n",
		pre.Entries, pre.IntervalMean)
	fmt.Printf("prefetches issued   %d (%d turned into demand hits)\n",
		pre.Prefetches, pre.PrefetchUseful)
	fmt.Printf("energy vs baseline  %+.1f%%\n",
		100*pre.Energy.SavingsVs(base.Energy))
}
