// Prefetchsweep: cross the runahead mechanisms with the hardware
// prefetcher variants on a few structurally different workloads — the
// "is runahead still worth it once you have a prefetcher?" question the
// paper's related-work section raises.
//
// The grid shows the expected interaction: a stride prefetcher captures
// most of what runahead prefetches on regular streams (so PRE's edge
// shrinks), while on data-dependent access patterns (hashwalk) the
// prefetchers are nearly blind and PRE keeps its full advantage.
package main

import (
	"fmt"
	"log"
	"os"

	presim "repro"
)

func main() {
	var workloads []presim.Workload
	for _, name := range []string{"libquantum", "milc", "GemsFDTD", "omnetpp"} {
		w, err := presim.WorkloadByName(name)
		if err != nil {
			log.Fatal(err)
		}
		workloads = append(workloads, w)
	}

	opt := presim.DefaultOptions()
	opt.MeasureUops = 100_000

	modes := []presim.Mode{presim.ModeOoO, presim.ModePRE}
	m := presim.Experiment{
		Name:      "prefetchsweep",
		Workloads: workloads,
		Modes:     modes,
		Points:    presim.PrefetchPoints(),
		Options:   opt,
	}
	plan, err := m.Expand()
	if err != nil {
		log.Fatal(err)
	}
	set, err := plan.Run(0)
	if err != nil {
		log.Fatal(err)
	}

	points := plan.Points()
	summary := make([][]float64, len(points))
	for pi := range points {
		summary[pi] = set.GeoMeanSpeedups(pi)
	}
	presim.PFGridTable(points, modes, summary).Write(os.Stdout)

	fmt.Println()
	fmt.Println("Per-workload PRE speedup over the same-variant OoO baseline:")
	fmt.Printf("%-12s", "benchmark")
	for _, p := range points {
		fmt.Printf("  %12s", p)
	}
	fmt.Println()
	for wi, w := range workloads {
		fmt.Printf("%-12s", w.Name)
		for pi := range points {
			fmt.Printf("  %11.3fx", set.Speedup(pi, wi, 1))
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Printf("Prefetcher quality under PRE (%s variant):\n", points[len(points)-1])
	last := len(points) - 1
	for wi, w := range workloads {
		r := set.Result(last, wi, 1)
		if r.HWPrefIssued == 0 {
			continue
		}
		fmt.Printf("  %-12s accuracy %3.0f%%  coverage %3.0f%%  timeliness %3.0f%%  (%d issued, %d useful)\n",
			w.Name, 100*r.HWPFAccuracy, 100*r.HWPFCoverage, 100*r.HWPFTimeliness,
			r.HWPrefIssued, r.HWPrefUseful)
	}
}
