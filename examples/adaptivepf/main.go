// Adaptivepf: the two questions the adaptive prefetching layer exists to
// answer, each over a 20-seed population.
//
// First, the interference term. Runahead requests and hardware-prefetch
// traffic fight over the same MSHRs and DRAM banks, and open-loop HW
// engines happily duplicate fills the runahead mechanism already has in
// flight. The "filtered" variant runs the exact same stride+best-offset
// engines with the PRE-aware filter on: duplicates of in-flight
// runahead-tagged fills are dropped and counted (FilteredRA), so the
// interference term is a number, not a hypothesis — and the Redundant
// count drops by what the filter absorbs.
//
// Second, the front end. The L1I next-line engine gives front-end-bound
// scenarios (codewalk instruction footprints thrashing the 32 KB L1I)
// their first PF coverage; the throttle keeps its degree honest on
// loop-resident phases.
package main

import (
	"fmt"
	"log"
	"math"
	"os"

	presim "repro"
	"repro/internal/core"
)

const seeds = 20

func pfPoints(names ...string) []presim.ExperimentPoint {
	pts := make([]presim.ExperimentPoint, 0, len(names))
	for _, name := range names {
		v, err := presim.PrefetchVariantByName(name)
		if err != nil {
			log.Fatal(err)
		}
		pts = append(pts, presim.ExperimentPoint{
			Name:  v.Name,
			Apply: func(c *core.Config) { c.ApplyPrefetch(v) },
		})
	}
	return pts
}

func run(m presim.Experiment) (*presim.ExperimentPlan, *presim.ExperimentSet) {
	plan, err := m.Expand()
	if err != nil {
		log.Fatal(err)
	}
	set, err := plan.Run(0)
	if err != nil {
		log.Fatal(err)
	}
	return plan, set
}

func main() {
	opt := presim.DefaultOptions()
	opt.WarmupUops = 20_000
	opt.MeasureUops = 60_000

	// --- interference: memory-bound population, filter off vs on ---------
	plan, set := run(presim.Experiment{
		Name:   "adaptivepf_interference",
		Modes:  []presim.Mode{presim.ModeOoO, presim.ModePRE},
		Points: pfPoints("no-pf", "stride+bo", "filtered", "adaptive"),
		Population: &presim.Population{
			Space: presim.DefaultSynthSpace(), Count: seeds,
		},
		Options: opt,
	})
	points := plan.Points()
	stats := make([][]presim.PopulationStat, len(points))
	for pi := range points {
		stats[pi] = set.PopulationStats(pi)
	}
	presim.PopulationGridTable(points, stats).Write(os.Stdout)

	// Aggregate the PRE-row interference counters across the population.
	// "stride+bo" and "filtered" run identical engines; only the filter
	// differs, so the Redundant reduction is exactly the duplicated
	// runahead work the open-loop configuration was re-requesting.
	fmt.Println("\nPRE-row HW-prefetch interference, summed over the population:")
	fmt.Printf("  %-10s  %9s  %9s  %11s  %9s  %10s\n",
		"variant", "issued", "redundant", "filtered-RA", "dropped", "overflowed")
	type agg struct{ issued, redundant, filtered, dropped, overflowed int64 }
	sums := make([]agg, len(points))
	for pi := range points {
		for wi := range plan.Workloads() {
			r := set.Result(pi, wi, 1) // PRE mode column
			sums[pi].issued += r.HWPrefIssued
			sums[pi].redundant += r.HWPrefRedundant
			sums[pi].filtered += r.HWPrefFilteredRA
			sums[pi].dropped += r.HWPrefDropped
			sums[pi].overflowed += r.HWPrefOverflowed
		}
		if points[pi] == "no-pf" {
			continue
		}
		fmt.Printf("  %-10s  %9d  %9d  %11d  %9d  %10d\n", points[pi],
			sums[pi].issued, sums[pi].redundant, sums[pi].filtered,
			sums[pi].dropped, sums[pi].overflowed)
	}
	var open, filt agg
	for pi, p := range points {
		switch p {
		case "stride+bo":
			open = sums[pi]
		case "filtered":
			filt = sums[pi]
		}
	}
	fmt.Printf("\nPRE-aware filter: %d duplicate HW prefetches of in-flight runahead fills dropped\n"+
		"(population Redundant %d -> %d, issued %d -> %d).\n",
		filt.filtered, open.redundant, filt.redundant, open.issued, filt.issued)

	// --- front end: codewalk population, first PF coverage ---------------
	fmt.Println()
	fePlan, feSet := run(presim.Experiment{
		Name:   "adaptivepf_frontend",
		Modes:  []presim.Mode{presim.ModeOoO, presim.ModePRE},
		Points: pfPoints("no-pf", "adaptive"),
		Population: &presim.Population{
			Space: presim.FrontEndSynthSpace(), Count: seeds,
		},
		Options: opt,
	})
	fePoints := fePlan.Points()
	feStats := make([][]presim.PopulationStat, len(fePoints))
	for pi := range fePoints {
		feStats[pi] = feSet.PopulationStats(pi)
	}
	presim.PopulationGridTable(fePoints, feStats).Write(os.Stdout)

	// The front-end story is OoO-vs-OoO: how much does the adaptive stack
	// (dominated by the L1I engine here) lift a front-end-bound baseline?
	wins, n := 0, 0
	var geoAcc float64 = 1
	for wi := range fePlan.Workloads() {
		base := feSet.Result(0, wi, 0) // no-pf, OoO
		pf := feSet.Result(1, wi, 0)   // adaptive, OoO
		s := pf.IPC / base.IPC
		geoAcc *= s
		n++
		if s > 1.01 {
			wins++
		}
	}
	fmt.Printf("\nAdaptive PF (L1I next-line + throttle) lifts front-end-bound OoO IPC by >1%% on %d/%d seeds"+
		" (geomean %.3fx).\n", wins, n, math.Pow(geoAcc, 1/float64(n)))
}
