// Remotesweep: the sweep-as-a-service flow end to end — a simulation
// server with a content-addressed result cache, a declarative job spec,
// the streaming client, and the caching contract made visible.
//
// The example boots the server in-process on a loopback listener (no
// separate daemon needed; against a running `cmd/simd` you would just
// pass its URL to presim.NewClient), then submits the same population
// sweep twice. The first submission simulates every cell; the second is
// assembled entirely from the cache — and the two results documents are
// byte-for-byte identical, because a cell's cache key (presim.CellKey)
// identifies its simulation completely.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"net"
	"net/http"

	presim "repro"
	"repro/internal/serve"
	"repro/internal/serve/cache"
)

func main() {
	// A memory-only cache; cmd/simd -cache-dir adds the persistent tier.
	c, err := cache.New(1024, "")
	if err != nil {
		log.Fatal(err)
	}
	srv := serve.New(serve.Config{Cache: c, SimWorkers: 0})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, srv.Handler())

	cl := presim.NewClient("http://" + ln.Addr().String())
	ctx := context.Background()

	// The declarative job: 8 sampled scenarios x {OoO, PRE}, plus an
	// SST-halved PRE point — everything by name, nothing but JSON on the
	// wire.
	spec := presim.JobSpec{
		Name:  "remotesweep",
		Modes: []string{"OoO", "PRE"},
		Points: []presim.JobPoint{
			{Name: "base"},
			{Name: "sst=64", Knobs: map[string]int64{"sst_size": 64}},
		},
		Population:  &presim.JobPopulation{SpaceName: "default", Count: 8},
		WarmupUops:  10_000,
		MeasureUops: 40_000,
	}

	run := func(label string) ([]byte, presim.JobStatus) {
		st, err := cl.Submit(ctx, spec)
		if err != nil {
			log.Fatal(err)
		}
		final, err := cl.Wait(ctx, st.ID, func(ev presim.JobEvent) error {
			if ev.Type == "cell" {
				tag := "simulated"
				if ev.Cached {
					tag = "cached"
				}
				fmt.Printf("  [%s] %2d/%d %-10s %-8s %s\n",
					label, ev.Done, ev.Total, ev.Workload, ev.Mode, tag)
			}
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
		doc, err := cl.Result(ctx, st.ID)
		if err != nil {
			log.Fatal(err)
		}
		return doc, final
	}

	fmt.Println("cold submission (every cell simulates):")
	doc1, final1 := run("cold")
	fmt.Printf("  -> %d unique runs, %d cache hits, wall-clock %.2fs\n\n",
		final1.NumUnique, final1.CacheHits, final1.Meta.WallClockSeconds)

	fmt.Println("same spec again (every cell from cache):")
	doc2, final2 := run("warm")
	fmt.Printf("  -> %d unique runs, %d cache hits, wall-clock %.2fs\n\n",
		final2.NumUnique, final2.CacheHits, final2.Meta.WallClockSeconds)

	fmt.Printf("results byte-identical across submissions: %v\n", bytes.Equal(doc1, doc2))
	stats, err := cl.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server: %d jobs completed, cache hit rate %.0f%%, cell-seconds %.2f vs wall-clock %.2f\n",
		stats.JobsCompleted, 100*stats.CacheHitRate,
		stats.CellSecondsTotal, stats.WallClockSecondsTotal)
}
