// Multichain: the paper's Section 5.1 story in one program. libquantum's
// misses all come from ONE stalling slice — the structure the runahead
// buffer's deep single-chain replay is built for; stencil workloads like
// lbm stall through MANY load PCs hanging off one index, which only
// PRE's Stalling Slice Table covers (the runahead buffer's backward walk
// reconstructs a single {index, load} pair per episode).
package main

import (
	"fmt"
	"log"

	presim "repro"
)

func main() {
	opt := presim.DefaultOptions()
	opt.MeasureUops = 200_000
	modes := presim.Modes()

	for _, name := range []string{"libquantum", "lbm"} {
		w, err := presim.WorkloadByName(name)
		if err != nil {
			log.Fatal(err)
		}
		results, err := presim.RunMatrix([]presim.Workload{w}, modes, opt)
		if err != nil {
			log.Fatal(err)
		}
		base := results[0][0]
		fmt.Printf("%s (%s, %d nominal chain(s)):\n", w.Name, w.Class, w.Chains)
		for mi, m := range modes {
			r := results[0][mi]
			marker := ""
			if sp := r.Speedup(base); sp >= bestSpeedup(results[0], base) && m != presim.ModeOoO {
				marker = "  <- best"
			}
			fmt.Printf("  %-10s IPC %.3f  speedup %.2fx%s\n", m, r.IPC, r.Speedup(base), marker)
		}
		fmt.Println()
	}
	fmt.Println("On the multi-slice stencil, traditional runahead and the runahead")
	fmt.Println("buffer pay the flush/refill tax for one covered stream, while PRE")
	fmt.Println("executes every slice in its SST and preserves the window at exit.")
}

func bestSpeedup(row []presim.Result, base presim.Result) float64 {
	best := 0.0
	for _, r := range row[1:] {
		if s := r.Speedup(base); s > best {
			best = s
		}
	}
	return best
}
