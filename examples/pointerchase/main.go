// Pointerchase: build custom workloads from the public archetype API and
// demonstrate a fundamental boundary of runahead execution.
//
// A pure pointer chain (load r <- [r]) cannot be prefetched ahead of its
// own data: every address is the previous load's result, so a runahead
// mechanism poisons (INV) the chain at its first miss and learns nothing
// — and the out-of-order window already overlaps independent chains by
// itself. Runahead only pays off when the address of a future miss is
// COMPUTABLE ahead of the data, as in a graph walk over an index array
// (hashwalk archetype: computable bucket load + dependent node load).
//
// The program runs both workload shapes under every mechanism.
package main

import (
	"fmt"
	"log"

	presim "repro"
)

func main() {
	opt := presim.DefaultOptions()
	opt.MeasureUops = 150_000
	modes := presim.Modes()

	pure := presim.CustomWorkload("pure-chains", func() presim.Generator {
		return presim.NewPtrChase(presim.PtrChaseParams{
			KernelID: 41, Chains: 4, FootprintLines: 1 << 17, // 8 MB per chain
			ALUWork: 16, HotLoads: 6,
		})
	})
	computable := presim.CustomWorkload("computable-heads", func() presim.Generator {
		return presim.NewHashWalk(presim.HashWalkParams{
			KernelID: 42, Lanes: 2,
			BucketLines: 1 << 18, NodeLines: 1 << 18, // 16 MB each
			ALUWork: 30, HotLoads: 12, MispredictPermille: 20,
		})
	})

	for _, w := range []presim.Workload{pure, computable} {
		results, err := presim.RunMatrix([]presim.Workload{w}, modes, opt)
		if err != nil {
			log.Fatal(err)
		}
		base := results[0][0]
		fmt.Printf("%s (baseline IPC %.3f):\n", w.Name, base.IPC)
		for mi, m := range modes {
			r := results[0][mi]
			fmt.Printf("  %-10s speedup %.2fx  (runahead entries %d, useful prefetches %d)\n",
				m, r.Speedup(base), r.Entries, r.PrefetchUseful)
		}
		fmt.Println()
	}
	fmt.Println("Pure dependent chains: runahead never even fires — by the time a chain")
	fmt.Println("load blocks the window its data is almost back (the OoO window already")
	fmt.Println("overlaps independent chains), and nothing further ahead is computable.")
	fmt.Println("Computable chain heads: the index-driven bucket loads ARE prefetchable,")
	fmt.Println("so the mechanisms engage and gain — the paper's preferred territory.")
}
