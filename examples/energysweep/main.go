// Energysweep: reproduce the paper's Figure 3 energy argument on a small
// scale and decompose WHERE each mechanism's energy goes. Traditional
// runahead fetches, decodes and executes a full window twice per episode
// (runahead pass + post-flush re-execution); PRE preserves the window, so
// its extra dynamic work is outweighed by the static energy its shorter
// runtime saves.
package main

import (
	"fmt"
	"log"

	presim "repro"
)

func main() {
	opt := presim.DefaultOptions()
	opt.MeasureUops = 200_000
	modes := presim.Modes()

	names := []string{"mcf", "libquantum", "milc", "omnetpp"}
	var ws []presim.Workload
	for _, n := range names {
		w, err := presim.WorkloadByName(n)
		if err != nil {
			log.Fatal(err)
		}
		ws = append(ws, w)
	}
	results, err := presim.RunMatrix(ws, modes, opt)
	if err != nil {
		log.Fatal(err)
	}

	for wi, w := range ws {
		base := results[wi][0]
		fmt.Printf("%s:\n", w.Name)
		fmt.Printf("  %-10s %10s %10s %10s %10s %10s %9s\n",
			"mode", "coreDyn", "coreStatic", "memDyn", "dramStatic", "total(J)", "saving")
		for mi, m := range modes {
			e := results[wi][mi].Energy
			fmt.Printf("  %-10s %10.2e %10.2e %10.2e %10.2e %10.2e %+8.1f%%\n",
				m, e.CoreDynamic, e.CoreStatic, e.MemDynamic, e.DRAMStatic,
				e.Total(), 100*e.SavingsVs(base.Energy))
		}
		fmt.Println()
	}
}
