// Hot-path performance contracts: event-driven cycle skipping must be
// invisible in the results (byte-identical JSON with the skipper forced
// off), and a warmed-up core must simulate without per-cycle heap
// allocation. These ride the same determinism philosophy as the
// differential tests in differential_test.go: whatever the engine does
// for speed, the reported numbers may not move.
package presim_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	presim "repro"
	"repro/internal/core"
	"repro/internal/workload"
)

// skipDiffMatrix is the full differential matrix: every mechanism over
// one representative per archetype, crossed with every hardware-prefetch
// variant. The whole PF axis matters: the L2 best-offset engine trains
// on traffic that can then be rejected at the L2/L3 MSHRs, which is
// exactly the path where naive retry amortization would silently skip
// training (the bug class this test exists to catch).
func skipDiffMatrix(opt presim.Options) presim.Experiment {
	return presim.Experiment{
		Name:      "skip_diff",
		Workloads: archetypeRepresentatives(),
		Modes:     presim.Modes(),
		Points:    presim.PrefetchPoints(),
		Options:   opt,
	}
}

// runMatrixJSON expands and runs the matrix, returning the results JSON.
func runMatrixJSON(t *testing.T, opt presim.Options) []byte {
	t.Helper()
	plan, err := skipDiffMatrix(opt).Expand()
	if err != nil {
		t.Fatal(err)
	}
	set, err := plan.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := set.WriteFile(dir, "skip_diff"); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "skip_diff.json"))
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestCycleSkipDifferential pins the tentpole contract of the event-driven
// engine: a full matrix run with cycle skipping force-disabled produces
// byte-identical results JSON. Wall-clock is the only thing the skipper
// may change. (internal/core's TestCycleSkipLockstep checks the same
// property cycle-by-cycle against every internal statistic; this test
// covers the whole reporting pipeline at the results-document level.)
func TestCycleSkipDifferential(t *testing.T) {
	opt := presim.DefaultOptions()
	opt.WarmupUops = 5_000
	opt.MeasureUops = 25_000

	fast := runMatrixJSON(t, opt)

	slow := opt
	slow.DisableCycleSkip = true
	ref := runMatrixJSON(t, slow)

	if !bytes.Equal(fast, ref) {
		t.Fatalf("results JSON differs with cycle skipping on vs off (%d vs %d bytes): the skipper changed reported numbers",
			len(fast), len(ref))
	}
}

// TestSteadyStateAllocs is the zero-allocation guard: once warmed up (all
// ring buffers, pools, checkpoint buffers and waiter lists at their
// high-water marks), a measurement window must not allocate. RA-buffer's
// trace ring is pre-sized from ReplayLookahead at construction
// (trace.NewStreamSized), so even its deep replay scans stay within the
// ring and every mode holds the zero bound. The fast-runahead tier holds
// it too: the chain cache is a preallocated arena and the learning path
// reuses per-core scratch buffers, so emulated episodes, verification
// episodes and relearns all run allocation-free.
func TestSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting is slow under -short")
	}
	for _, tc := range []struct {
		wl      string
		mode    presim.Mode
		fid     presim.Fidelity
		allowed float64
	}{
		{"milc", presim.ModeOoO, presim.FidelityExact, 0},
		{"milc", presim.ModeRA, presim.FidelityExact, 0},
		{"milc", presim.ModeRABuffer, presim.FidelityExact, 0},
		{"milc", presim.ModePRE, presim.FidelityExact, 0},
		{"milc", presim.ModePREEMQ, presim.FidelityExact, 0},
		{"libquantum", presim.ModePRE, presim.FidelityExact, 0},
		{"omnetpp", presim.ModePREEMQ, presim.FidelityExact, 0},
		// Fast tier: milc exercises the demotion/relearn machinery (its
		// RA-buffer chains replay data-dependent addresses, so entries
		// keep demoting); libquantum/lbm exercise the emulation path
		// proper (entries stay promoted and episodes fast-forward).
		{"milc", presim.ModeRA, presim.FidelityFastRunahead, 0},
		{"milc", presim.ModeRABuffer, presim.FidelityFastRunahead, 0},
		{"libquantum", presim.ModePRE, presim.FidelityFastRunahead, 0},
		{"lbm", presim.ModePREEMQ, presim.FidelityFastRunahead, 0},
	} {
		tc := tc
		name := tc.wl + "/" + tc.mode.String()
		if tc.fid != presim.FidelityExact {
			name += "/" + tc.fid.String()
		}
		t.Run(name, func(t *testing.T) {
			w, err := workload.ByName(tc.wl)
			if err != nil {
				t.Fatal(err)
			}
			cfg := core.Default(tc.mode)
			cfg.Fidelity = tc.fid
			c, err := core.New(cfg, w.New())
			if err != nil {
				t.Fatal(err)
			}
			c.Run(150_000) // warm caches, SST, pools and ring high-waters
			allocs := testing.AllocsPerRun(5, func() { c.Run(20_000) })
			if allocs > tc.allowed {
				t.Errorf("%.1f allocations per 20k-µop window (want <= %.0f): the hot path regressed",
					allocs, tc.allowed)
			}
		})
	}
}
