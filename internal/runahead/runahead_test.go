package runahead

import (
	"testing"
	"testing/quick"

	"repro/internal/rename"
	"repro/internal/uarch"
)

// --- SST ---------------------------------------------------------------

func TestSSTBasicLifecycle(t *testing.T) {
	s := NewSST(4)
	if s.Lookup(100) {
		t.Fatal("empty SST must miss")
	}
	s.Insert(100)
	if !s.Lookup(100) {
		t.Fatal("inserted PC must hit")
	}
	st := s.Stats()
	if st.Lookups != 2 || st.Hits != 1 || st.Inserts != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSSTLRUEviction(t *testing.T) {
	s := NewSST(3)
	s.Insert(1)
	s.Insert(2)
	s.Insert(3)
	s.Lookup(1) // 1 becomes MRU; LRU order now 2,3,1
	s.Insert(4) // evicts 2
	if s.Contains(2) {
		t.Error("LRU entry 2 must be evicted")
	}
	for _, pc := range []uint64{1, 3, 4} {
		if !s.Contains(pc) {
			t.Errorf("PC %d must survive", pc)
		}
	}
	if s.Stats().Evicts != 1 {
		t.Errorf("evicts = %d", s.Stats().Evicts)
	}
}

func TestSSTReinsertRefreshes(t *testing.T) {
	s := NewSST(2)
	s.Insert(1)
	s.Insert(2)
	s.Insert(1) // refresh, no eviction
	if s.Len() != 2 || s.Stats().Evicts != 0 {
		t.Fatal("reinsert must not evict")
	}
	s.Insert(3) // evicts 2 (LRU)
	if s.Contains(2) || !s.Contains(1) {
		t.Error("reinsert did not refresh LRU position")
	}
}

func TestSSTStorage(t *testing.T) {
	if NewSST(256).StorageBytes() != 1024 {
		t.Error("256-entry SST must cost 1 KB (Section 3.6)")
	}
}

func TestSSTCapacityPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity must panic")
		}
	}()
	NewSST(0)
}

// Property: SST never exceeds capacity and a just-inserted PC is always
// present.
func TestSSTPropertyCapacity(t *testing.T) {
	f := func(pcs []uint16) bool {
		s := NewSST(16)
		for _, pc := range pcs {
			s.Insert(uint64(pc))
			if !s.Contains(uint64(pc)) || s.Len() > 16 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// --- PRDQ --------------------------------------------------------------

func TestPRDQInOrderDealloc(t *testing.T) {
	q := NewPRDQ(4)
	t1, ok1 := q.Alloc(rename.PReg(10))
	t2, ok2 := q.Alloc(rename.PReg(11))
	if !ok1 || !ok2 {
		t.Fatal("allocs failed")
	}
	// Execute out of order: younger first.
	q.MarkExecuted(t2)
	var freed []rename.PReg
	q.Drain(func(p rename.PReg) { freed = append(freed, p) })
	if len(freed) != 0 {
		t.Fatalf("drained %v before head executed", freed)
	}
	q.MarkExecuted(t1)
	q.Drain(func(p rename.PReg) { freed = append(freed, p) })
	if len(freed) != 2 || freed[0] != 10 || freed[1] != 11 {
		t.Fatalf("freed %v, want [10 11] in order", freed)
	}
}

func TestPRDQFullStalls(t *testing.T) {
	q := NewPRDQ(2)
	q.Alloc(1)
	q.Alloc(2)
	if _, ok := q.Alloc(3); ok {
		t.Fatal("full PRDQ must reject")
	}
	if q.Stats().Stalls != 1 {
		t.Errorf("stalls = %d", q.Stats().Stalls)
	}
}

func TestPRDQNoneRegisterSkipped(t *testing.T) {
	q := NewPRDQ(4)
	tk, _ := q.Alloc(rename.PRegNone)
	q.MarkExecuted(tk)
	freed := 0
	q.Drain(func(p rename.PReg) { freed++ })
	if freed != 0 {
		t.Error("PRegNone must not be freed")
	}
	if q.Len() != 0 {
		t.Error("entry must still drain")
	}
}

func TestPRDQClear(t *testing.T) {
	q := NewPRDQ(4)
	q.Alloc(1)
	q.Alloc(2)
	q.Clear()
	if q.Len() != 0 || q.Full() {
		t.Error("clear failed")
	}
	// Tickets continue after clear; stale MarkExecuted is a no-op.
	tk, _ := q.Alloc(3)
	q.MarkExecuted(tk - 1) // stale ticket
	q.MarkExecuted(tk)
	n := q.Drain(func(rename.PReg) {})
	if n != 1 {
		t.Errorf("drained %d, want 1", n)
	}
}

func TestPRDQStorage(t *testing.T) {
	if NewPRDQ(192).StorageBytes() != 768 {
		t.Error("192-entry PRDQ must cost 768 B (Section 3.6)")
	}
}

// Property: the PRDQ frees exactly the non-none registers it was given,
// in allocation order, regardless of execution order.
func TestPRDQPropertyOrder(t *testing.T) {
	f := func(order []uint8) bool {
		n := len(order)
		if n == 0 {
			return true
		}
		if n > 32 {
			n = 32
			order = order[:32]
		}
		q := NewPRDQ(n)
		tickets := make([]int64, n)
		for i := 0; i < n; i++ {
			tk, ok := q.Alloc(rename.PReg(i + 1))
			if !ok {
				return false
			}
			tickets[i] = tk
		}
		// Execute in the permuted order given by sorting keys.
		for _, o := range order {
			q.MarkExecuted(tickets[int(o)%n])
		}
		// Mark all executed (duplicates are fine), then drain.
		for _, tk := range tickets {
			q.MarkExecuted(tk)
		}
		var freed []rename.PReg
		q.Drain(func(p rename.PReg) { freed = append(freed, p) })
		if len(freed) != n {
			return false
		}
		for i, p := range freed {
			if p != rename.PReg(i+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// --- EMQ ---------------------------------------------------------------

func TestEMQFIFO(t *testing.T) {
	q := NewEMQ(4)
	for i := int64(0); i < 4; i++ {
		if !q.Push(i * 10) {
			t.Fatalf("push %d failed", i)
		}
	}
	if q.Push(99) {
		t.Fatal("full EMQ must reject")
	}
	if q.Stats().Stalls != 1 {
		t.Error("stall not counted")
	}
	if v, ok := q.Peek(); !ok || v != 0 {
		t.Error("peek wrong")
	}
	for i := int64(0); i < 4; i++ {
		v, ok := q.Pop()
		if !ok || v != i*10 {
			t.Fatalf("pop %d = %d,%v", i, v, ok)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("empty pop must fail")
	}
}

func TestEMQWraparound(t *testing.T) {
	q := NewEMQ(3)
	for round := int64(0); round < 10; round++ {
		q.Push(round)
		v, ok := q.Pop()
		if !ok || v != round {
			t.Fatalf("round %d: %d,%v", round, v, ok)
		}
	}
}

func TestEMQClearAndStorage(t *testing.T) {
	q := NewEMQ(768)
	q.Push(1)
	q.Clear()
	if q.Len() != 0 {
		t.Error("clear failed")
	}
	if q.StorageBytes() != 3072 {
		t.Error("768-entry EMQ must cost 3 KB (Section 3.6)")
	}
}

// --- chain extraction ----------------------------------------------------

func mkUop(pc uint64, class uarch.Class, dst, s1, s2 uarch.Reg, addr uint64) uarch.Uop {
	u := uarch.Uop{PC: pc, Class: class, Dst: dst, Src1: s1, Src2: s2, Addr: addr}
	if class.IsMem() {
		u.Size = 8
	}
	return u
}

func TestExtractChainStreaming(t *testing.T) {
	r1 := uarch.IntReg(1)
	f0 := uarch.FPReg(0)
	f6 := uarch.FPReg(6)
	// i += 1; load f0 <- A[i]; fadd f6 <- f6,f0 ; (repeat)
	window := []uarch.Uop{
		mkUop(4, uarch.ClassIntAlu, r1, r1, uarch.RegNone, 0),
		mkUop(8, uarch.ClassLoad, f0, r1, uarch.RegNone, 0x1000),
		mkUop(12, uarch.ClassFPAdd, f6, f6, f0, 0),
		mkUop(4, uarch.ClassIntAlu, r1, r1, uarch.RegNone, 0),
		mkUop(8, uarch.ClassLoad, f0, r1, uarch.RegNone, 0x1040),
		mkUop(12, uarch.ClassFPAdd, f6, f6, f0, 0),
	}
	chain := ExtractChain(window, 8, 32)
	if len(chain) != 2 {
		t.Fatalf("chain length %d, want 2 (add + load)", len(chain))
	}
	if chain[0].PC != 4 || chain[1].PC != 8 {
		t.Errorf("chain PCs = %#x,%#x, want 4,8", chain[0].PC, chain[1].PC)
	}
	if ChainHasLeadingDependence(chain) {
		t.Error("streaming chain must not serialize on memory")
	}
}

func TestExtractChainPointerChase(t *testing.T) {
	r1 := uarch.IntReg(1)
	// load r1 <- [r1] repeated: the chain is the single self-feeding load.
	window := []uarch.Uop{
		mkUop(4, uarch.ClassLoad, r1, r1, uarch.RegNone, 0x1000),
		mkUop(4, uarch.ClassLoad, r1, r1, uarch.RegNone, 0x2000),
	}
	chain := ExtractChain(window, 4, 32)
	if len(chain) != 1 {
		// The walk picks the youngest instance; its source is the older
		// load's dst, which is a load => register backtracking stops.
		// Both instances may legitimately appear; accept 1 or 2 but the
		// terminal µop must be the load.
		if len(chain) != 2 {
			t.Fatalf("chain length %d", len(chain))
		}
	}
	last := chain[len(chain)-1]
	if last.PC != 4 || !last.IsLoad() {
		t.Error("chain must end at the stalling load")
	}
}

func TestExtractChainThroughStore(t *testing.T) {
	r1, r2, r3 := uarch.IntReg(1), uarch.IntReg(2), uarch.IntReg(3)
	// r2 = r3+..; store [0x500] <- r2 ; load r1 <- [0x500]; load X <- [r1]
	window := []uarch.Uop{
		mkUop(4, uarch.ClassIntAlu, r2, r3, uarch.RegNone, 0),
		mkUop(8, uarch.ClassStore, uarch.RegNone, r2, uarch.RegNone, 0x500),
		mkUop(12, uarch.ClassLoad, r1, uarch.RegNone, uarch.RegNone, 0x500),
		mkUop(16, uarch.ClassLoad, uarch.IntReg(4), r1, uarch.RegNone, 0x9000),
	}
	chain := ExtractChain(window, 16, 32)
	if len(chain) != 4 {
		t.Fatalf("chain = %v, want the full store-forwarded slice (4 µops)", chain)
	}
	if chain[1].PC != 8 || !chain[1].IsStore() {
		t.Error("store-queue walk missed the forwarding store")
	}
}

func TestExtractChainMissingPC(t *testing.T) {
	window := []uarch.Uop{mkUop(4, uarch.ClassIntAlu, uarch.IntReg(1), uarch.RegNone, uarch.RegNone, 0)}
	if chain := ExtractChain(window, 999, 32); chain != nil {
		t.Error("missing stall PC must yield nil chain")
	}
}

func TestExtractChainRespectsMaxLen(t *testing.T) {
	// A long ALU dependence chain feeding a load.
	var window []uarch.Uop
	for i := 0; i < 64; i++ {
		window = append(window, mkUop(uint64(4+i*4), uarch.ClassIntAlu,
			uarch.IntReg(1), uarch.IntReg(1), uarch.RegNone, 0))
	}
	window = append(window, mkUop(0x999, uarch.ClassLoad, uarch.IntReg(2), uarch.IntReg(1), uarch.RegNone, 0x4000))
	chain := ExtractChain(window, 0x999, 8)
	if len(chain) > 8 {
		t.Errorf("chain length %d exceeds maxLen 8", len(chain))
	}
	if chain[len(chain)-1].PC != 0x999 {
		t.Error("chain must still terminate at the stalling load")
	}
}

func TestExtractChainStencilCoversOneStream(t *testing.T) {
	// One index add feeding four loads: the backward walk from ONE load
	// must include only {add, that load} — the documented coverage gap of
	// the runahead buffer versus PRE.
	r1 := uarch.IntReg(1)
	window := []uarch.Uop{
		mkUop(4, uarch.ClassIntAlu, r1, r1, uarch.RegNone, 0),
		mkUop(8, uarch.ClassLoad, uarch.FPReg(0), r1, uarch.RegNone, 0x10000),
		mkUop(12, uarch.ClassLoad, uarch.FPReg(1), r1, uarch.RegNone, 0x20000),
		mkUop(16, uarch.ClassLoad, uarch.FPReg(2), r1, uarch.RegNone, 0x30000),
		mkUop(20, uarch.ClassLoad, uarch.FPReg(3), r1, uarch.RegNone, 0x40000),
	}
	chain := ExtractChain(window, 12, 32)
	if len(chain) != 2 {
		t.Fatalf("chain = %d µops, want 2", len(chain))
	}
	for _, u := range chain {
		if u.PC != 4 && u.PC != 12 {
			t.Errorf("chain includes unrelated stream PC %#x", u.PC)
		}
	}
}
