package runahead

import (
	"fmt"
	"math/bits"

	"repro/internal/stats"
)

// ChainCacheDeltaCap bounds the prefetch-delta set stored per chain-cache
// entry. Episodes that prefetch more distinct lines are truncated to the
// first ChainCacheDeltaCap deltas observed — the earliest prefetches of an
// episode are the ones most likely to be timely on replay anyway.
const ChainCacheDeltaCap = 64

// ChainDeltaWindow bounds the stall-relative deltas an entry learns.
// Prefetches within the window of the stalling address belong to the
// stalling load's own access stream (strides, stencil planes) and
// translate to future stall addresses; prefetches outside it belong to
// other streams advancing at their own rates — their absolute addresses
// do not translate, so replaying them injects pure pollution. 16 MB
// comfortably covers multi-plane stencil offsets while excluding
// cross-array distances (the workload segments sit GBs apart).
const ChainDeltaWindow = 1 << 24

// Verification-driven adaptation: entries whose predictions keep scoring
// below ChainDemoteOverlap are demoted to exact-only execution (every use
// runs the episode exactly, with only the periodic verification hits
// still scored), and recover once they score ChainPromoteScores
// consecutive verifications at or above the threshold.
const (
	ChainDemoteOverlap = 0.35
	ChainDemoteStrikes = 2
	ChainPromoteScores = 2
)

// ChainCacheStats counts chain-cache activity for the fast-runahead
// fidelity tier's accounting.
type ChainCacheStats struct {
	Lookups   int64
	Hits      int64
	Misses    int64
	Inserts   int64
	Refreshes int64
	Evicts    int64
}

// ChainEntry is one learned episode signature: the prefetch-address
// deltas (relative to the stalling load's address) observed during an
// exact runahead episode that stalled on this PC, plus the extracted
// dependence-chain shape used to classify the episode.
type ChainEntry struct {
	pc     uint64
	deltas [ChainCacheDeltaCap]int64
	nd     int32
	// chainLen is the extracted dependence-chain length at learn time.
	chainLen int32
	// memDependent records ChainHasLeadingDependence at learn time:
	// pointer-chase chains (true) predict less transferable prefetch sets
	// than streaming chains.
	memDependent bool
	// uses counts hits on this entry since it was inserted. Monotonic
	// across relearns: the verification cadence and the probation window
	// (see core's fastEnter) key off it, so a refresh must not restart
	// either.
	uses int32
	// strikes counts consecutive low-overlap verifications (toward
	// demotion) or, once demoted, consecutive good ones (toward
	// re-promotion).
	strikes int8
	// exactOnly marks entries whose predictions failed verification:
	// their episodes run exactly until the entry re-earns emulation.
	exactOnly  bool
	prev, next int32
}

// PC returns the stalling-load PC this entry is keyed on.
func (e *ChainEntry) PC() uint64 { return e.pc }

// Deltas returns the learned prefetch-delta set. The slice aliases the
// entry's fixed storage; it is valid until the entry is relearned.
func (e *ChainEntry) Deltas() []int64 { return e.deltas[:e.nd] }

// ChainLen returns the extracted dependence-chain length at learn time.
func (e *ChainEntry) ChainLen() int { return int(e.chainLen) }

// MemDependent reports whether the learned chain was a pointer chase
// (leading load-to-load dependence) rather than a streaming chain.
func (e *ChainEntry) MemDependent() bool { return e.memDependent }

// Uses returns how many hits this entry has taken since it was inserted.
func (e *ChainEntry) Uses() int { return int(e.uses) }

// ExactOnly reports whether the entry is demoted: its episodes must run
// exactly because its predictions kept failing verification.
func (e *ChainEntry) ExactOnly() bool { return e.exactOnly }

// ScoreVerify feeds one verification-episode overlap score into the
// entry's demotion state machine: ChainDemoteStrikes consecutive scores
// below ChainDemoteOverlap demote the entry to exact-only, and
// ChainPromoteScores consecutive passing scores promote it back.
func (e *ChainEntry) ScoreVerify(jaccard float64) {
	if e.exactOnly {
		if jaccard >= ChainDemoteOverlap {
			e.strikes++
			if e.strikes >= ChainPromoteScores {
				e.exactOnly = false
				e.strikes = 0
			}
		} else {
			e.strikes = 0
		}
		return
	}
	if jaccard < ChainDemoteOverlap {
		e.strikes++
		if e.strikes >= ChainDemoteStrikes {
			e.exactOnly = true
			e.strikes = 0
		}
	} else {
		e.strikes = 0
	}
}

// ChainCache is the fast-runahead fidelity tier's episode memory: a
// fully-associative, LRU-replaced cache keyed on stalling-load PC whose
// entries summarize what an exact runahead episode at that PC prefetched.
// On a chain-cache hit the core emulates the episode from the entry
// instead of executing it µop by µop.
//
// Like the SST it is an open-addressed hash table over a preallocated
// node arena: all storage is fixed at construction and the steady state
// allocates nothing.
type ChainCache struct {
	capacity int

	// tbl maps hash slots to arena indices + 1 (0 = empty); linear
	// probing with backward-shift deletion keeps probe chains compact.
	tbl  []int32
	mask uint64

	// nodes is the LRU list arena; used nodes form a doubly-linked list
	// via prev/next indices, most-recent at head. -1 terminates.
	nodes      []ChainEntry
	used       int
	head, tail int32

	stats ChainCacheStats
	// reuseDepth observes an entry's use count on every predicting hit —
	// the distribution of how deep entries are reused before relearning.
	reuseDepth *stats.Histogram
	// overlap accumulates predicted-vs-actual prefetch-set Jaccard
	// overlap, observed by the core on verification episodes.
	overlap stats.Running
}

// NewChainCache builds a chain cache with the given entry capacity.
func NewChainCache(capacity int) *ChainCache {
	if capacity <= 0 {
		panic(fmt.Sprintf("runahead: chain cache capacity %d must be positive", capacity))
	}
	// 4x slots keeps the linear-probe load factor at 25%.
	slots := 1 << bits.Len(uint(capacity*4-1))
	return &ChainCache{
		capacity:   capacity,
		tbl:        make([]int32, slots),
		mask:       uint64(slots - 1),
		nodes:      make([]ChainEntry, capacity),
		head:       sstNil,
		tail:       sstNil,
		reuseDepth: stats.NewHistogram("chaincache-reuse-depth", 1, 2, 4, 8, 16, 32, 64, 128, 256),
	}
}

// Capacity returns the configured entry count.
func (c *ChainCache) Capacity() int { return c.capacity }

// Len returns the number of live entries.
func (c *ChainCache) Len() int { return c.used }

// Stats returns a copy of the counters.
func (c *ChainCache) Stats() ChainCacheStats { return c.stats }

// ReuseDepth returns the reuse-depth histogram (one observation per
// predicting hit, of the entry's use count at that hit).
func (c *ChainCache) ReuseDepth() *stats.Histogram { return c.reuseDepth }

// ObserveOverlap records one predicted-vs-actual prefetch-set Jaccard
// overlap sample from a verification episode.
func (c *ChainCache) ObserveOverlap(jaccard float64) { c.overlap.Observe(jaccard) }

// OverlapMean returns the mean verification-episode Jaccard overlap, or 0
// with no verification episodes.
func (c *ChainCache) OverlapMean() float64 { return c.overlap.Mean() }

// OverlapCount returns the number of verification episodes observed.
func (c *ChainCache) OverlapCount() int64 { return c.overlap.Count() }

// ResetStats zeroes the counters and distributions but keeps the learned
// entries: warmup learning is the tier's point, only its accounting is
// excluded from the measured window.
func (c *ChainCache) ResetStats() {
	c.stats = ChainCacheStats{}
	c.reuseDepth.Reset()
	c.overlap.Reset()
}

//sim:pure hash arithmetic only
func (c *ChainCache) slotOf(pc uint64) uint64 {
	return (pc * 0x9e3779b97f4a7c15) >> 32 & c.mask
}

// find returns the arena index of pc's node, or sstNil.
//
//sim:pure
func (c *ChainCache) find(pc uint64) int32 {
	for slot := c.slotOf(pc); ; slot = (slot + 1) & c.mask {
		n := c.tbl[slot]
		if n == 0 {
			return sstNil
		}
		if c.nodes[n-1].pc == pc {
			return n - 1
		}
	}
}

// delete removes pc from the hash table, then re-homes the contiguous
// occupied run that followed it so no probe chain is broken.
func (c *ChainCache) delete(pc uint64) {
	slot := c.slotOf(pc)
	for c.tbl[slot] == 0 || c.nodes[c.tbl[slot]-1].pc != pc {
		slot = (slot + 1) & c.mask
	}
	c.tbl[slot] = 0
	for slot = (slot + 1) & c.mask; c.tbl[slot] != 0; slot = (slot + 1) & c.mask {
		n := c.tbl[slot]
		c.tbl[slot] = 0
		c.place(n)
	}
}

// place inserts an arena index (+1) at its pc's probe position.
func (c *ChainCache) place(n int32) {
	slot := c.slotOf(c.nodes[n-1].pc)
	for c.tbl[slot] != 0 {
		slot = (slot + 1) & c.mask
	}
	c.tbl[slot] = n
}

func (c *ChainCache) unlink(i int32) {
	n := &c.nodes[i]
	if n.prev != sstNil {
		c.nodes[n.prev].next = n.next
	} else {
		c.head = n.next
	}
	if n.next != sstNil {
		c.nodes[n.next].prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = sstNil, sstNil
}

func (c *ChainCache) pushFront(i int32) {
	n := &c.nodes[i]
	n.prev = sstNil
	n.next = c.head
	if c.head != sstNil {
		c.nodes[c.head].prev = i
	}
	c.head = i
	if c.tail == sstNil {
		c.tail = i
	}
}

// Lookup probes for pc, refreshing its LRU position and counting the
// reuse on a hit. The returned entry aliases cache storage and is valid
// until the next Insert.
//
//sim:hotpath
func (c *ChainCache) Lookup(pc uint64) *ChainEntry {
	c.stats.Lookups++
	i := c.find(pc)
	if i == sstNil {
		c.stats.Misses++
		return nil
	}
	c.stats.Hits++
	e := &c.nodes[i]
	e.uses++
	c.reuseDepth.Observe(int64(e.uses))
	if c.head != i {
		c.unlink(i)
		c.pushFront(i)
	}
	return e
}

// Peek probes without touching LRU or statistics (tests, reports).
//
//sim:pure
func (c *ChainCache) Peek(pc uint64) *ChainEntry {
	i := c.find(pc)
	if i == sstNil {
		return nil
	}
	return &c.nodes[i]
}

// Insert learns (or relearns) pc's episode signature, evicting the LRU
// entry when full. deltas beyond ChainCacheDeltaCap are dropped.
func (c *ChainCache) Insert(pc uint64, deltas []int64, chainLen int, memDependent bool) {
	i := c.find(pc)
	if i != sstNil {
		c.stats.Refreshes++
		if c.head != i {
			c.unlink(i)
			c.pushFront(i)
		}
	} else {
		if c.used >= c.capacity {
			// Recycle the evicted LRU node: a full cache (the steady state
			// of any long run) learns without allocating.
			i = c.tail
			c.unlink(i)
			c.delete(c.nodes[i].pc)
			c.stats.Evicts++
		} else {
			i = int32(c.used)
			c.used++
		}
		c.nodes[i].pc = pc
		// A recycled node may carry the evicted entry's adaptation state;
		// a fresh PC starts on probation (uses = 0) with a clean record.
		c.nodes[i].strikes = 0
		c.nodes[i].exactOnly = false
		c.nodes[i].uses = 0
		c.place(i + 1)
		c.pushFront(i)
		c.stats.Inserts++
	}
	e := &c.nodes[i]
	nd := len(deltas)
	if nd > ChainCacheDeltaCap {
		nd = ChainCacheDeltaCap
	}
	copy(e.deltas[:nd], deltas[:nd])
	e.nd = int32(nd)
	e.chainLen = int32(chainLen)
	e.memDependent = memDependent
}
