// Package runahead provides the hardware structures proposed by the paper
// and its baselines: the Stalling Slice Table (SST) and Precise Register
// Deallocation Queue (PRDQ) of PRE, the Extended Micro-op Queue (EMQ) of
// PRE+EMQ, and the backward dataflow walker used by the runahead buffer
// to extract a dependence chain from the ROB.
//
// These are plain data structures with no pipeline knowledge; the
// controllers in internal/core drive them.
package runahead

import (
	"fmt"
	"math/bits"
)

// SSTStats counts SST activity for the energy model and Section 3.6
// accounting.
type SSTStats struct {
	Lookups int64
	Hits    int64
	Inserts int64
	Evicts  int64
}

// SST is the Stalling Slice Table: a fully-associative, LRU-replaced cache
// of instruction addresses (PCs) known to belong to a stalling slice
// (Section 3.2). A hit means "this µop feeds a long-latency load; execute
// it in runahead mode".
//
// The table is probed for every decoded µop — in normal mode and (at up
// to RunaheadWidth per cycle) during PRE runahead — so it is implemented
// as an open-addressed hash table over a preallocated node arena rather
// than a Go map: no hashing allocation, no pointer chasing, and all
// storage fixed at construction.
type SST struct {
	capacity int

	// tbl maps hash slots to arena indices + 1 (0 = empty); linear
	// probing with backward-shift deletion keeps probe chains compact.
	tbl  []int32
	mask uint64

	// nodes is the LRU list arena; used nodes form a doubly-linked list
	// via prev/next indices, most-recent at head. -1 terminates.
	nodes      []sstNode
	used       int
	head, tail int32

	stats SSTStats
}

type sstNode struct {
	pc         uint64
	prev, next int32
}

const sstNil = int32(-1)

// NewSST builds an SST with the given entry capacity (Table 1: 256).
func NewSST(capacity int) *SST {
	if capacity <= 0 {
		panic(fmt.Sprintf("runahead: SST capacity %d must be positive", capacity))
	}
	// 4x slots keeps the linear-probe load factor at 25%.
	slots := 1 << bits.Len(uint(capacity*4-1))
	s := &SST{
		capacity: capacity,
		tbl:      make([]int32, slots),
		mask:     uint64(slots - 1),
		nodes:    make([]sstNode, capacity),
		head:     sstNil,
		tail:     sstNil,
	}
	return s
}

// Capacity returns the configured entry count.
func (s *SST) Capacity() int { return s.capacity }

// Len returns the number of live entries.
func (s *SST) Len() int { return s.used }

// Stats returns a copy of the counters.
func (s *SST) Stats() SSTStats { return s.stats }

// ResetStats zeroes the counters.
func (s *SST) ResetStats() { s.stats = SSTStats{} }

// AddStats accumulates d into the counters — the cycle skipper's bulk
// accounting hook for skipped steady retry cycles (which re-probe the
// SST every cycle).
func (s *SST) AddStats(d SSTStats) {
	s.stats.Lookups += d.Lookups
	s.stats.Hits += d.Hits
	s.stats.Inserts += d.Inserts
	s.stats.Evicts += d.Evicts
}

// StorageBytes returns the SST's hardware cost with 4-byte tags
// (Section 3.6: 256 entries -> 1 KB).
func (s *SST) StorageBytes() int { return s.capacity * 4 }

func (s *SST) slotOf(pc uint64) uint64 {
	return (pc * 0x9e3779b97f4a7c15) >> 32 & s.mask
}

// find returns the arena index of pc's node, or sstNil.
func (s *SST) find(pc uint64) int32 {
	for slot := s.slotOf(pc); ; slot = (slot + 1) & s.mask {
		n := s.tbl[slot]
		if n == 0 {
			return sstNil
		}
		if s.nodes[n-1].pc == pc {
			return n - 1
		}
	}
}

// delete removes pc from the hash table, then re-homes the contiguous
// occupied run that followed it so no probe chain is broken. Deletion
// only happens on LRU eviction, which is rare relative to lookups.
func (s *SST) delete(pc uint64) {
	slot := s.slotOf(pc)
	for s.tbl[slot] == 0 || s.nodes[s.tbl[slot]-1].pc != pc {
		slot = (slot + 1) & s.mask
	}
	s.tbl[slot] = 0
	s.reinsertCluster((slot + 1) & s.mask)
}

// reinsertCluster re-homes the contiguous occupied run starting at slot
// (after a deletion opened a gap before it).
func (s *SST) reinsertCluster(slot uint64) {
	for ; s.tbl[slot] != 0; slot = (slot + 1) & s.mask {
		n := s.tbl[slot]
		s.tbl[slot] = 0
		s.place(n)
	}
}

// place inserts an arena index (+1) at its pc's probe position.
func (s *SST) place(n int32) {
	slot := s.slotOf(s.nodes[n-1].pc)
	for s.tbl[slot] != 0 {
		slot = (slot + 1) & s.mask
	}
	s.tbl[slot] = n
}

func (s *SST) unlink(i int32) {
	n := &s.nodes[i]
	if n.prev != sstNil {
		s.nodes[n.prev].next = n.next
	} else {
		s.head = n.next
	}
	if n.next != sstNil {
		s.nodes[n.next].prev = n.prev
	} else {
		s.tail = n.prev
	}
	n.prev, n.next = sstNil, sstNil
}

func (s *SST) pushFront(i int32) {
	n := &s.nodes[i]
	n.prev = sstNil
	n.next = s.head
	if s.head != sstNil {
		s.nodes[s.head].prev = i
	}
	s.head = i
	if s.tail == sstNil {
		s.tail = i
	}
}

// Lookup probes for pc, refreshing its LRU position on a hit.
//
//sim:hotpath
func (s *SST) Lookup(pc uint64) bool {
	s.stats.Lookups++
	i := s.find(pc)
	if i == sstNil {
		return false
	}
	s.stats.Hits++
	if s.head != i {
		s.unlink(i)
		s.pushFront(i)
	}
	return true
}

// Contains probes without touching LRU or statistics (tests, reports).
func (s *SST) Contains(pc uint64) bool { return s.find(pc) != sstNil }

// Insert adds pc (refreshing it if already present), evicting the LRU
// entry when full.
//
//sim:hotpath
func (s *SST) Insert(pc uint64) {
	if i := s.find(pc); i != sstNil {
		if s.head != i {
			s.unlink(i)
			s.pushFront(i)
		}
		return
	}
	var i int32
	if s.used >= s.capacity {
		// Recycle the evicted LRU node: a full table (the steady state of
		// any long run) inserts without allocating.
		i = s.tail
		s.unlink(i)
		s.delete(s.nodes[i].pc)
		s.stats.Evicts++
	} else {
		i = int32(s.used)
		s.used++
	}
	s.nodes[i].pc = pc
	s.place(i + 1)
	s.pushFront(i)
	s.stats.Inserts++
}
