// Package runahead provides the hardware structures proposed by the paper
// and its baselines: the Stalling Slice Table (SST) and Precise Register
// Deallocation Queue (PRDQ) of PRE, the Extended Micro-op Queue (EMQ) of
// PRE+EMQ, and the backward dataflow walker used by the runahead buffer
// to extract a dependence chain from the ROB.
//
// These are plain data structures with no pipeline knowledge; the
// controllers in internal/core drive them.
package runahead

import "fmt"

// SSTStats counts SST activity for the energy model and Section 3.6
// accounting.
type SSTStats struct {
	Lookups int64
	Hits    int64
	Inserts int64
	Evicts  int64
}

// SST is the Stalling Slice Table: a fully-associative, LRU-replaced cache
// of instruction addresses (PCs) known to belong to a stalling slice
// (Section 3.2). A hit means "this µop feeds a long-latency load; execute
// it in runahead mode".
type SST struct {
	capacity int
	// LRU bookkeeping: map PC -> node index in a doubly-linked list
	// threaded through nodes, most-recent at head.
	nodes map[uint64]*sstNode
	head  *sstNode // most recently used
	tail  *sstNode // least recently used
	stats SSTStats
}

type sstNode struct {
	pc         uint64
	prev, next *sstNode
}

// NewSST builds an SST with the given entry capacity (Table 1: 256).
func NewSST(capacity int) *SST {
	if capacity <= 0 {
		panic(fmt.Sprintf("runahead: SST capacity %d must be positive", capacity))
	}
	return &SST{capacity: capacity, nodes: make(map[uint64]*sstNode, capacity)}
}

// Capacity returns the configured entry count.
func (s *SST) Capacity() int { return s.capacity }

// Len returns the number of live entries.
func (s *SST) Len() int { return len(s.nodes) }

// Stats returns a copy of the counters.
func (s *SST) Stats() SSTStats { return s.stats }

// ResetStats zeroes the counters.
func (s *SST) ResetStats() { s.stats = SSTStats{} }

// StorageBytes returns the SST's hardware cost with 4-byte tags
// (Section 3.6: 256 entries -> 1 KB).
func (s *SST) StorageBytes() int { return s.capacity * 4 }

func (s *SST) unlink(n *sstNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		s.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		s.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (s *SST) pushFront(n *sstNode) {
	n.next = s.head
	if s.head != nil {
		s.head.prev = n
	}
	s.head = n
	if s.tail == nil {
		s.tail = n
	}
}

// Lookup probes for pc, refreshing its LRU position on a hit.
func (s *SST) Lookup(pc uint64) bool {
	s.stats.Lookups++
	n, ok := s.nodes[pc]
	if !ok {
		return false
	}
	s.stats.Hits++
	if s.head != n {
		s.unlink(n)
		s.pushFront(n)
	}
	return true
}

// Contains probes without touching LRU or statistics (tests, reports).
func (s *SST) Contains(pc uint64) bool {
	_, ok := s.nodes[pc]
	return ok
}

// Insert adds pc (refreshing it if already present), evicting the LRU
// entry when full.
func (s *SST) Insert(pc uint64) {
	if n, ok := s.nodes[pc]; ok {
		if s.head != n {
			s.unlink(n)
			s.pushFront(n)
		}
		return
	}
	if len(s.nodes) >= s.capacity {
		victim := s.tail
		s.unlink(victim)
		delete(s.nodes, victim.pc)
		s.stats.Evicts++
	}
	n := &sstNode{pc: pc}
	s.nodes[pc] = n
	s.pushFront(n)
	s.stats.Inserts++
}
