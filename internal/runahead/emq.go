package runahead

import "fmt"

// EMQStats counts EMQ activity.
type EMQStats struct {
	Pushes int64
	Pops   int64
	Stalls int64 // pushes rejected because the queue is full
}

// EMQ is the Extended Micro-op Queue (Section 3.3's optimization): during
// runahead it buffers every decoded µop (by dynamic sequence number) so
// that, at runahead exit, the core dispatches them directly instead of
// re-fetching and re-decoding. When the EMQ fills, runahead stalls until
// the stalling load returns — the paper's explanation for PRE+EMQ's lower
// speedup and better energy.
type EMQ struct {
	seqs       []int64 // ring buffer
	head, size int
	stats      EMQStats
}

// NewEMQ builds an EMQ with the given capacity (Table 1: 768 = 4x ROB).
func NewEMQ(capacity int) *EMQ {
	if capacity <= 0 {
		panic(fmt.Sprintf("runahead: EMQ capacity %d must be positive", capacity))
	}
	return &EMQ{seqs: make([]int64, capacity)}
}

// Capacity returns the configured entry count.
func (q *EMQ) Capacity() int { return len(q.seqs) }

// Len returns the number of buffered µops.
func (q *EMQ) Len() int { return q.size }

// Full reports whether Push would fail.
func (q *EMQ) Full() bool { return q.size == len(q.seqs) }

// Stats returns a copy of the counters.
func (q *EMQ) Stats() EMQStats { return q.stats }

// ResetStats zeroes the counters.
func (q *EMQ) ResetStats() { q.stats = EMQStats{} }

// StorageBytes returns the hardware cost at 4 bytes per µop slot
// (Section 3.6: a 768-entry EMQ adds 3 KB).
func (q *EMQ) StorageBytes() int { return len(q.seqs) * 4 }

// Push buffers a decoded µop's sequence number, returning false (and
// counting a stall) when full.
//
//sim:hotpath
func (q *EMQ) Push(seq int64) bool {
	if q.Full() {
		q.stats.Stalls++
		return false
	}
	q.seqs[(q.head+q.size)%len(q.seqs)] = seq
	q.size++
	q.stats.Pushes++
	return true
}

// Pop removes and returns the oldest buffered sequence number.
func (q *EMQ) Pop() (int64, bool) {
	if q.size == 0 {
		return 0, false
	}
	s := q.seqs[q.head]
	q.head = (q.head + 1) % len(q.seqs)
	q.size--
	q.stats.Pops++
	return s, true
}

// Peek returns the oldest buffered sequence number without removing it.
func (q *EMQ) Peek() (int64, bool) {
	if q.size == 0 {
		return 0, false
	}
	return q.seqs[q.head], true
}

// Clear discards all entries.
func (q *EMQ) Clear() { q.head, q.size = 0, 0 }

// At returns the i-th oldest buffered sequence number (0 <= i < Len).
// Runahead re-entry while the EMQ is still draining scans the remaining
// buffered µops through the SST before reading new decodes.
func (q *EMQ) At(i int) int64 {
	if i < 0 || i >= q.size {
		panic("runahead: EMQ index out of range")
	}
	return q.seqs[(q.head+i)%len(q.seqs)]
}
