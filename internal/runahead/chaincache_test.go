package runahead

import (
	"testing"

	"repro/internal/uarch"
)

// --- ChainExtractor edge cases ----------------------------------------
//
// The extractor variants above are exercised through the one-shot
// ExtractChain wrapper; these tests pin the reusable-state path the fast
// tier actually drives (one ChainExtractor per core, one Extract per
// learning episode).

func TestChainExtractorEmptyWindow(t *testing.T) {
	var x ChainExtractor
	chain, cost := x.Extract(nil, 0x40, 32)
	if chain != nil || cost != 0 {
		t.Errorf("empty window: chain=%v cost=%d, want nil chain at zero cost", chain, cost)
	}
	chain, cost = x.Extract([]uarch.Uop{}, 0x40, 32)
	if chain != nil || cost != 0 {
		t.Errorf("zero-length window: chain=%v cost=%d, want nil chain at zero cost", chain, cost)
	}
}

func TestChainExtractorStallPCAbsent(t *testing.T) {
	r1 := uarch.IntReg(1)
	window := []uarch.Uop{
		mkUop(4, uarch.ClassIntAlu, r1, r1, uarch.RegNone, 0),
		mkUop(8, uarch.ClassLoad, uarch.FPReg(0), r1, uarch.RegNone, 0x1000),
	}
	var x ChainExtractor
	chain, cost := x.Extract(window, 0xdead, 32)
	if chain != nil {
		t.Errorf("absent stall PC: chain=%v, want nil", chain)
	}
	// The hardware scans the whole ROB from the tail before concluding
	// the PC is gone — the cost must reflect that full scan.
	if cost != len(window) {
		t.Errorf("absent stall PC: cost=%d, want full window scan %d", cost, len(window))
	}
}

func TestChainExtractorMaxLenTruncatesMidDependence(t *testing.T) {
	// A strict ALU dependence chain r1 <- r1 feeding the stalling load:
	// every µop is a producer the walk wants, so a maxLen smaller than
	// the chain must cut it mid-dependence. The truncated chain must hit
	// maxLen exactly, stay in program order, and still terminate at the
	// stalling load — the replay machinery relies on all three.
	const deps = 16
	var window []uarch.Uop
	for i := 0; i < deps; i++ {
		window = append(window, mkUop(uint64(4+i*4), uarch.ClassIntAlu,
			uarch.IntReg(1), uarch.IntReg(1), uarch.RegNone, 0))
	}
	window = append(window, mkUop(0x999, uarch.ClassLoad,
		uarch.IntReg(2), uarch.IntReg(1), uarch.RegNone, 0x4000))

	const maxLen = 4
	var x ChainExtractor
	chain, _ := x.Extract(window, 0x999, maxLen)
	if len(chain) != maxLen {
		t.Fatalf("chain length %d, want exactly maxLen %d (dependence unresolved on every older µop)", len(chain), maxLen)
	}
	if chain[len(chain)-1].PC != 0x999 {
		t.Errorf("truncated chain ends at %#x, want the stalling load", chain[len(chain)-1].PC)
	}
	for i := 1; i < len(chain); i++ {
		if chain[i-1].PC > chain[i].PC {
			t.Errorf("truncated chain out of program order at %d: %#x > %#x", i, chain[i-1].PC, chain[i].PC)
		}
	}
}

func TestChainExtractorScratchReuseNoBleed(t *testing.T) {
	r1, r2, r3 := uarch.IntReg(1), uarch.IntReg(2), uarch.IntReg(3)

	// First extraction leaves dangling scratch state on purpose: the
	// stalling load needs r2 and r3, neither produced in the window, so
	// needReg/needList end non-empty; it also forces a store into the
	// chain, leaving a bit set in the forced buffer.
	first := []uarch.Uop{
		mkUop(0x10, uarch.ClassStore, uarch.RegNone, r1, uarch.RegNone, 0x500),
		mkUop(0x14, uarch.ClassLoad, r1, r2, r3, 0x500),
	}
	var x ChainExtractor
	chain, _ := x.Extract(first, 0x14, 32)
	if len(chain) != 2 {
		t.Fatalf("first extraction chain = %d µops, want load + forwarding store", len(chain))
	}

	// Second extraction over a window that contains producers of the
	// stale registers (r2, r3), a store overlapping the stale forced
	// index, and a µop sharing a PC with the first chain. None of those
	// may leak in: the chain is just {producer of r1, load}.
	second := []uarch.Uop{
		mkUop(0x10, uarch.ClassIntAlu, r2, r2, uarch.RegNone, 0), // stale needReg bait + first-chain PC
		mkUop(0x20, uarch.ClassIntAlu, r3, r3, uarch.RegNone, 0), // stale needReg bait
		mkUop(0x24, uarch.ClassIntAlu, r1, uarch.RegNone, uarch.RegNone, 0),
		mkUop(0x28, uarch.ClassLoad, uarch.FPReg(0), r1, uarch.RegNone, 0x9000),
	}
	chain, _ = x.Extract(second, 0x28, 32)
	if len(chain) != 2 {
		t.Fatalf("reused extractor chain = %v, want 2 µops — scratch state bled across Extract calls", chain)
	}
	if chain[0].PC != 0x24 || chain[1].PC != 0x28 {
		t.Errorf("reused extractor chain PCs = %#x,%#x, want 0x24,0x28", chain[0].PC, chain[1].PC)
	}

	// And the result must match a fresh extractor bit for bit.
	fresh, _ := ExtractChainCost(second, 0x28, 32)
	if len(fresh) != len(chain) {
		t.Fatalf("reused extractor disagrees with fresh: %d vs %d µops", len(chain), len(fresh))
	}
	for i := range fresh {
		if chain[i] != fresh[i] {
			t.Errorf("chain[%d] = %+v, fresh extractor got %+v", i, chain[i], fresh[i])
		}
	}
}

// --- ChainCache --------------------------------------------------------

func TestChainCacheBasicLifecycle(t *testing.T) {
	c := NewChainCache(4)
	if c.Lookup(0x40) != nil {
		t.Fatal("empty cache must miss")
	}
	c.Insert(0x40, []int64{64, 128}, 3, false)
	e := c.Lookup(0x40)
	if e == nil {
		t.Fatal("inserted PC must hit")
	}
	if e.PC() != 0x40 || e.ChainLen() != 3 || e.MemDependent() {
		t.Errorf("entry = pc %#x chainLen %d memDep %v", e.PC(), e.ChainLen(), e.MemDependent())
	}
	if d := e.Deltas(); len(d) != 2 || d[0] != 64 || d[1] != 128 {
		t.Errorf("deltas = %v, want [64 128]", d)
	}
	st := c.Stats()
	if st.Lookups != 2 || st.Hits != 1 || st.Misses != 1 || st.Inserts != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestChainCacheLRUEviction(t *testing.T) {
	c := NewChainCache(3)
	for _, pc := range []uint64{1, 2, 3} {
		c.Insert(pc, []int64{64}, 1, false)
	}
	c.Lookup(1) // LRU order now 2,3,1
	c.Insert(4, []int64{64}, 1, false)
	if c.Peek(2) != nil {
		t.Error("LRU entry 2 must be evicted")
	}
	for _, pc := range []uint64{1, 3, 4} {
		if c.Peek(pc) == nil {
			t.Errorf("PC %d must survive", pc)
		}
	}
	if c.Len() != 3 || c.Stats().Evicts != 1 {
		t.Errorf("len=%d evicts=%d", c.Len(), c.Stats().Evicts)
	}
}

func TestChainCacheRefreshKeepsUses(t *testing.T) {
	c := NewChainCache(2)
	c.Insert(0x40, []int64{64}, 1, false)
	for i := 0; i < 3; i++ {
		c.Lookup(0x40)
	}
	// A relearn refreshes the deltas but must NOT reset uses: the
	// verification cadence and the probation window key off the monotonic
	// count, and restarting either on every relearn would re-probate hot
	// entries forever.
	c.Insert(0x40, []int64{128}, 2, true)
	e := c.Peek(0x40)
	if e.Uses() != 3 {
		t.Errorf("uses after relearn = %d, want 3 (monotonic)", e.Uses())
	}
	if d := e.Deltas(); len(d) != 1 || d[0] != 128 {
		t.Errorf("relearn did not replace deltas: %v", d)
	}
	if st := c.Stats(); st.Refreshes != 1 || st.Inserts != 1 || st.Evicts != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestChainCacheRecycledNodeResetsAdaptation(t *testing.T) {
	c := NewChainCache(1)
	c.Insert(0xa0, []int64{64}, 1, false)
	// Accumulate adaptation state on the only node: uses > 0 and demoted.
	c.Lookup(0xa0)
	e := c.Peek(0xa0)
	for i := 0; i < ChainDemoteStrikes; i++ {
		e.ScoreVerify(0)
	}
	if !e.ExactOnly() {
		t.Fatal("setup: entry must be demoted")
	}
	// Evicting 0xa0 recycles its node for 0xb0 — the fresh PC must start
	// on probation with a clean record, not inherit the stranger's rap
	// sheet.
	c.Insert(0xb0, []int64{128}, 2, true)
	f := c.Peek(0xb0)
	if f == nil {
		t.Fatal("new PC must be present after recycle")
	}
	if f.Uses() != 0 || f.ExactOnly() {
		t.Errorf("recycled node: uses=%d exactOnly=%v, want fresh state", f.Uses(), f.ExactOnly())
	}
	if c.Peek(0xa0) != nil {
		t.Error("evicted PC must be gone from the hash table")
	}
}

func TestChainCacheDeltaCapTruncation(t *testing.T) {
	deltas := make([]int64, ChainCacheDeltaCap+17)
	for i := range deltas {
		deltas[i] = int64(64 * (i + 1))
	}
	c := NewChainCache(2)
	c.Insert(0x40, deltas, 1, false)
	got := c.Peek(0x40).Deltas()
	if len(got) != ChainCacheDeltaCap {
		t.Fatalf("stored %d deltas, want cap %d", len(got), ChainCacheDeltaCap)
	}
	for i, d := range got {
		if d != deltas[i] {
			t.Errorf("delta[%d] = %d, want %d (earliest prefetches kept)", i, d, deltas[i])
			break
		}
	}
}

func TestChainCachePeekIsInert(t *testing.T) {
	c := NewChainCache(2)
	c.Insert(1, []int64{64}, 1, false)
	c.Insert(2, []int64{64}, 1, false) // LRU order: 1, 2
	before := c.Stats()
	c.Peek(1)
	if c.Stats() != before {
		t.Error("Peek must not count as a lookup")
	}
	if c.Peek(1).Uses() != 0 {
		t.Error("Peek must not count as a use")
	}
	c.Insert(3, []int64{64}, 1, false) // must evict 1, not 2
	if c.Peek(1) != nil || c.Peek(2) == nil {
		t.Error("Peek must not refresh LRU position")
	}
}

func TestChainEntryDemotionStateMachine(t *testing.T) {
	var e ChainEntry
	good := ChainDemoteOverlap
	bad := ChainDemoteOverlap / 2

	// A good score between strikes resets the count: demotion requires
	// ChainDemoteStrikes CONSECUTIVE failures.
	for i := 0; i < ChainDemoteStrikes-1; i++ {
		e.ScoreVerify(bad)
	}
	e.ScoreVerify(good)
	for i := 0; i < ChainDemoteStrikes-1; i++ {
		e.ScoreVerify(bad)
	}
	if e.ExactOnly() {
		t.Fatal("non-consecutive strikes must not demote")
	}
	e.ScoreVerify(bad)
	if !e.ExactOnly() {
		t.Fatal("consecutive strikes must demote")
	}

	// Same consecutiveness on the way back up.
	for i := 0; i < ChainPromoteScores-1; i++ {
		e.ScoreVerify(good)
	}
	e.ScoreVerify(bad)
	for i := 0; i < ChainPromoteScores-1; i++ {
		e.ScoreVerify(good)
	}
	if !e.ExactOnly() {
		t.Fatal("non-consecutive passing scores must not promote")
	}
	e.ScoreVerify(good)
	if e.ExactOnly() {
		t.Fatal("consecutive passing scores must re-promote")
	}
}

func TestChainCacheResetStatsKeepsEntries(t *testing.T) {
	c := NewChainCache(2)
	c.Insert(0x40, []int64{64}, 1, false)
	c.Lookup(0x40)
	c.ObserveOverlap(0.5)
	c.ResetStats()
	if c.Stats() != (ChainCacheStats{}) || c.OverlapCount() != 0 {
		t.Error("ResetStats must zero the accounting")
	}
	if c.Len() != 1 || c.Peek(0x40) == nil {
		t.Error("ResetStats must keep learned entries — warmup learning is the tier's point")
	}
	if c.Peek(0x40).Uses() != 1 {
		t.Error("ResetStats must not touch per-entry use counts")
	}
}

func TestChainCacheCapacityPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewChainCache(0) must panic")
		}
	}()
	NewChainCache(0)
}
