package runahead

import "repro/internal/uarch"

// ExtractChain performs the runahead buffer's backward dataflow walk
// (Hashemi et al., reproduced here as the RA-buffer baseline): starting
// from the youngest µop in window whose PC equals stallPC, it walks older
// µops collecting the producers of every needed source register; loads in
// the chain additionally check the store queue (a one-cycle CAM match on
// the address) and pull a forwarding store — and its producers — into the
// chain.
//
// window must be in program order (oldest first). The returned chain is in
// program order and has at most maxLen µops; it is empty if stallPC does
// not appear in the window. Loads in the returned chain terminate register
// backtracking (their data comes from memory).
func ExtractChain(window []uarch.Uop, stallPC uint64, maxLen int) []uarch.Uop {
	chain, _ := ExtractChainCost(window, stallPC, maxLen)
	return chain
}

// ExtractChainCost is ExtractChain plus the hardware cost of the walk: the
// number of ROB entries the scan visits. The walk proceeds at one entry
// per cycle (the "expensive CAM lookups in the ROB" of Section 3.6), so
// the cost is the cycle count before replay can start. The walk stops as
// soon as every register dependence is resolved — either by finding the
// producer or by recognizing a looped instance of a µop already in the
// chain.
func ExtractChainCost(window []uarch.Uop, stallPC uint64, maxLen int) ([]uarch.Uop, int) {
	var x ChainExtractor
	return x.Extract(window, stallPC, maxLen)
}

// ChainExtractor runs the backward dataflow walk with reusable scratch
// state, so a long simulation extracts one chain per runahead entry
// without allocating. The zero value is ready to use; Extract's returned
// chain aliases internal storage and is valid until the next Extract call.
type ChainExtractor struct {
	needReg  [uarch.RegLimit]bool
	needList []uarch.Reg // registers currently set in needReg
	forced   []bool      // per-window-index: store must join the chain
	picked   []int
	pickedPC map[uint64]struct{}
	chain    []uarch.Uop
}

// Extract is ExtractChainCost over the extractor's reusable buffers.
func (x *ChainExtractor) Extract(window []uarch.Uop, stallPC uint64, maxLen int) ([]uarch.Uop, int) {
	// Find the youngest instance of the stalling load, scanning from the
	// tail as the hardware does.
	start := -1
	visited := 0
	for i := len(window) - 1; i >= 0; i-- {
		visited++
		if window[i].PC == stallPC {
			start = i
			break
		}
	}
	if start < 0 {
		return nil, visited
	}

	// Reset scratch state from the previous extraction.
	for _, r := range x.needList {
		x.needReg[r] = false
	}
	x.needList = x.needList[:0]
	if cap(x.forced) < len(window) {
		x.forced = make([]bool, len(window))
	}
	x.forced = x.forced[:len(window)]
	for i := range x.forced {
		x.forced[i] = false
	}
	x.picked = x.picked[:0]
	if x.pickedPC == nil {
		x.pickedPC = make(map[uint64]struct{})
	} else {
		clear(x.pickedPC)
	}

	needCount := 0
	need := func(r uarch.Reg) {
		if r != uarch.RegNone && !x.needReg[r] {
			x.needReg[r] = true
			x.needList = append(x.needList, r)
			needCount++
		}
	}
	add := func(u *uarch.Uop) {
		need(u.Src1)
		need(u.Src2)
	}

	// Store-queue CAM: for a chain load, the youngest older store with a
	// byte-overlapping range forwards to it; include such stores (and
	// their producers) in the chain. The lookup itself is a parallel CAM
	// match, not part of the linear walk cost.
	forwardingStore := func(loadIdx int) int {
		l := &window[loadIdx]
		for j := loadIdx - 1; j >= 0; j-- {
			s := &window[j]
			if s.IsStore() && l.Addr < s.Addr+uint64(s.Size) && s.Addr < l.Addr+uint64(l.Size) {
				return j
			}
		}
		return -1
	}

	pendingStores := 0
	onLoadPicked := func(idx int) {
		if j := forwardingStore(idx); j >= 0 && !x.forced[j] {
			x.forced[j] = true
			pendingStores++
		}
	}

	x.picked = append(x.picked, start)
	x.pickedPC[stallPC] = struct{}{}
	add(&window[start])
	onLoadPicked(start)

	for i := start - 1; i >= 0 && len(x.picked) < maxLen; i-- {
		if needCount == 0 && pendingStores == 0 {
			break // every dependence resolved; the hardware walk stops here
		}
		visited++
		u := &window[i]
		take := false
		if u.HasDst() && x.needReg[u.Dst] {
			take = true
			x.needReg[u.Dst] = false
			needCount--
		}
		if x.forced[i] {
			take = true
			pendingStores--
		}
		if !take {
			continue
		}
		if _, dup := x.pickedPC[u.PC]; dup {
			// An older dynamic instance of a µop already in the chain
			// (e.g. the i += 1 recurrence): the buffered chain holds one
			// static copy and replays it in a loop, so the dependence is
			// satisfied without storing the instance again.
			continue
		}
		x.pickedPC[u.PC] = struct{}{}
		x.picked = append(x.picked, i)
		add(u)
		if u.IsLoad() {
			// Register backtracking stops at loads; memory dependences
			// continue through the store queue.
			onLoadPicked(i)
		}
	}

	// Reverse into program order into the reusable chain buffer.
	x.chain = x.chain[:0]
	for i := len(x.picked) - 1; i >= 0; i-- {
		x.chain = append(x.chain, window[x.picked[i]])
	}
	return x.chain, visited
}

// ChainHasLeadingDependence reports whether any non-terminal load in the
// chain feeds a later chain µop through a register — i.e. the chain
// serializes on memory (pointer chasing) rather than being recomputable
// from register state (streaming). Reports and tests use this to classify
// extracted chains.
func ChainHasLeadingDependence(chain []uarch.Uop) bool {
	for i, u := range chain {
		if !u.IsLoad() || i == len(chain)-1 {
			continue
		}
		for j := i + 1; j < len(chain); j++ {
			if chain[j].Src1 == u.Dst || chain[j].Src2 == u.Dst {
				return true
			}
		}
	}
	return false
}
