package runahead

import "repro/internal/uarch"

// ExtractChain performs the runahead buffer's backward dataflow walk
// (Hashemi et al., reproduced here as the RA-buffer baseline): starting
// from the youngest µop in window whose PC equals stallPC, it walks older
// µops collecting the producers of every needed source register; loads in
// the chain additionally check the store queue (a one-cycle CAM match on
// the address) and pull a forwarding store — and its producers — into the
// chain.
//
// window must be in program order (oldest first). The returned chain is in
// program order and has at most maxLen µops; it is empty if stallPC does
// not appear in the window. Loads in the returned chain terminate register
// backtracking (their data comes from memory).
func ExtractChain(window []uarch.Uop, stallPC uint64, maxLen int) []uarch.Uop {
	chain, _ := ExtractChainCost(window, stallPC, maxLen)
	return chain
}

// ExtractChainCost is ExtractChain plus the hardware cost of the walk: the
// number of ROB entries the scan visits. The walk proceeds at one entry
// per cycle (the "expensive CAM lookups in the ROB" of Section 3.6), so
// the cost is the cycle count before replay can start. The walk stops as
// soon as every register dependence is resolved — either by finding the
// producer or by recognizing a looped instance of a µop already in the
// chain.
func ExtractChainCost(window []uarch.Uop, stallPC uint64, maxLen int) ([]uarch.Uop, int) {
	// Find the youngest instance of the stalling load, scanning from the
	// tail as the hardware does.
	start := -1
	visited := 0
	for i := len(window) - 1; i >= 0; i-- {
		visited++
		if window[i].PC == stallPC {
			start = i
			break
		}
	}
	if start < 0 {
		return nil, visited
	}

	// Store-queue CAM: for a chain load, the youngest older store with a
	// byte-overlapping range forwards to it; include such stores (and
	// their producers) in the chain. The lookup itself is a parallel CAM
	// match, not part of the linear walk cost.
	forwardingStore := func(loadIdx int) int {
		l := &window[loadIdx]
		for j := loadIdx - 1; j >= 0; j-- {
			s := &window[j]
			if s.IsStore() && l.Addr < s.Addr+uint64(s.Size) && s.Addr < l.Addr+uint64(l.Size) {
				return j
			}
		}
		return -1
	}

	needReg := map[uarch.Reg]bool{}
	forced := map[int]bool{} // store indices that must join the chain
	pendingStores := 0
	add := func(u *uarch.Uop) {
		if u.Src1 != uarch.RegNone {
			needReg[u.Src1] = true
		}
		if u.Src2 != uarch.RegNone {
			needReg[u.Src2] = true
		}
	}
	onLoadPicked := func(idx int) {
		if j := forwardingStore(idx); j >= 0 && !forced[j] {
			forced[j] = true
			pendingStores++
		}
	}

	picked := []int{start}
	pickedPC := map[uint64]bool{stallPC: true}
	add(&window[start])
	onLoadPicked(start)

	for i := start - 1; i >= 0 && len(picked) < maxLen; i-- {
		if len(needReg) == 0 && pendingStores == 0 {
			break // every dependence resolved; the hardware walk stops here
		}
		visited++
		u := &window[i]
		take := false
		if u.HasDst() && needReg[u.Dst] {
			take = true
			delete(needReg, u.Dst)
		}
		if forced[i] {
			take = true
			pendingStores--
		}
		if !take {
			continue
		}
		if pickedPC[u.PC] {
			// An older dynamic instance of a µop already in the chain
			// (e.g. the i += 1 recurrence): the buffered chain holds one
			// static copy and replays it in a loop, so the dependence is
			// satisfied without storing the instance again.
			continue
		}
		pickedPC[u.PC] = true
		picked = append(picked, i)
		add(u)
		if u.IsLoad() {
			// Register backtracking stops at loads; memory dependences
			// continue through the store queue.
			onLoadPicked(i)
		}
	}

	// Reverse into program order and copy out.
	chain := make([]uarch.Uop, 0, len(picked))
	for i := len(picked) - 1; i >= 0; i-- {
		chain = append(chain, window[picked[i]])
	}
	return chain, visited
}

// ChainHasLeadingDependence reports whether any non-terminal load in the
// chain feeds a later chain µop through a register — i.e. the chain
// serializes on memory (pointer chasing) rather than being recomputable
// from register state (streaming). Reports and tests use this to classify
// extracted chains.
func ChainHasLeadingDependence(chain []uarch.Uop) bool {
	for i, u := range chain {
		if !u.IsLoad() || i == len(chain)-1 {
			continue
		}
		for j := i + 1; j < len(chain); j++ {
			if chain[j].Src1 == u.Dst || chain[j].Src2 == u.Dst {
				return true
			}
		}
	}
	return false
}
