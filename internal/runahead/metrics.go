package runahead

import "repro/internal/telemetry"

// This file publishes the runahead structures' counters into the
// telemetry metrics registry, under the "runahead/" namespace. Publishing
// is a post-run snapshot — none of it runs on the simulation hot path.

// PublishMetrics snapshots the SST's counters into reg.
func (s *SST) PublishMetrics(reg *telemetry.Registry) {
	st := s.Stats()
	reg.Counter("runahead/sst/lookups", st.Lookups)
	reg.Counter("runahead/sst/hits", st.Hits)
	reg.Counter("runahead/sst/inserts", st.Inserts)
	reg.Counter("runahead/sst/evicts", st.Evicts)
}

// PublishMetrics snapshots the PRDQ's counters into reg.
func (q *PRDQ) PublishMetrics(reg *telemetry.Registry) {
	s := q.Stats()
	reg.Counter("runahead/prdq/allocs", s.Allocs)
	reg.Counter("runahead/prdq/deallocs", s.Deallocs)
	reg.Counter("runahead/prdq/stalls", s.Stalls)
}

// PublishMetrics snapshots the chain cache's counters, reuse-depth
// histogram and verification overlap into reg.
func (c *ChainCache) PublishMetrics(reg *telemetry.Registry) {
	s := c.Stats()
	reg.Counter("runahead/chaincache/lookups", s.Lookups)
	reg.Counter("runahead/chaincache/hits", s.Hits)
	reg.Counter("runahead/chaincache/misses", s.Misses)
	reg.Counter("runahead/chaincache/inserts", s.Inserts)
	reg.Counter("runahead/chaincache/refreshes", s.Refreshes)
	reg.Counter("runahead/chaincache/evicts", s.Evicts)
	reg.Counter("runahead/chaincache/entries", int64(c.Len()))
	reg.Histogram("runahead/chaincache/reuse_depth", c.ReuseDepth())
	reg.Gauge("runahead/chaincache/overlap_mean", c.OverlapMean())
	reg.Counter("runahead/chaincache/overlap_samples", c.OverlapCount())
}

// PublishMetrics snapshots the EMQ's counters into reg.
func (q *EMQ) PublishMetrics(reg *telemetry.Registry) {
	s := q.Stats()
	reg.Counter("runahead/emq/pushes", s.Pushes)
	reg.Counter("runahead/emq/pops", s.Pops)
	reg.Counter("runahead/emq/stalls", s.Stalls)
}
