package runahead

import (
	"fmt"

	"repro/internal/rename"
)

// PRDQStats counts PRDQ activity.
type PRDQStats struct {
	Allocs   int64
	Deallocs int64
	Stalls   int64 // allocation attempts rejected because the queue is full
}

// PRDQ is the Precise Register Deallocation Queue (Section 3.4): an
// in-order FIFO that frees the previous physical-register mapping of each
// runahead µop once (a) the µop has executed and (b) it reaches the queue
// head. In-order deallocation guarantees no in-flight runahead µop can
// still read a register when it is freed.
//
// Entries are identified by the monotonically increasing ticket returned
// from Alloc.
type prdqEntry struct {
	ticket   int64
	old      rename.PReg
	executed bool
}

// PRDQ is a fixed-capacity in-order deallocation queue.
type PRDQ struct {
	entries    []prdqEntry // ring buffer
	head, size int
	nextTicket int64
	stats      PRDQStats
}

// NewPRDQ builds a PRDQ with the given capacity (Table 1: 192).
func NewPRDQ(capacity int) *PRDQ {
	if capacity <= 0 {
		panic(fmt.Sprintf("runahead: PRDQ capacity %d must be positive", capacity))
	}
	return &PRDQ{entries: make([]prdqEntry, capacity)}
}

// Capacity returns the configured entry count.
func (q *PRDQ) Capacity() int { return len(q.entries) }

// Len returns the number of live entries.
func (q *PRDQ) Len() int { return q.size }

// Full reports whether allocation would fail.
func (q *PRDQ) Full() bool { return q.size == len(q.entries) }

// Stats returns a copy of the counters.
func (q *PRDQ) Stats() PRDQStats { return q.stats }

// ResetStats zeroes the counters.
func (q *PRDQ) ResetStats() { q.stats = PRDQStats{} }

// StorageBytes returns the hardware cost at 4 bytes per entry
// (Section 3.6: 192 entries -> 768 B).
func (q *PRDQ) StorageBytes() int { return len(q.entries) * 4 }

// Alloc appends an entry recording the µop's previous destination mapping
// (rename.PRegNone when the µop had no destination or the old mapping must
// not be recycled). It returns a ticket for MarkExecuted, or ok=false when
// the queue is full — the runahead rename stage must stall.
//
//sim:hotpath
func (q *PRDQ) Alloc(old rename.PReg) (ticket int64, ok bool) {
	if q.Full() {
		q.stats.Stalls++
		return 0, false
	}
	t := q.nextTicket
	q.nextTicket++
	q.entries[(q.head+q.size)%len(q.entries)] = prdqEntry{ticket: t, old: old}
	q.size++
	q.stats.Allocs++
	return t, true
}

// MarkExecuted sets the executed bit for the entry with the given ticket.
// Marking an already-drained ticket is a no-op (the µop completed after a
// runahead exit cleared the queue). Tickets are allocated consecutively
// and the queue drains in order, so the live entries always hold a
// contiguous ticket range — the entry's position is its ticket's offset
// from the head ticket, making this O(1).
func (q *PRDQ) MarkExecuted(ticket int64) {
	if q.size == 0 {
		return
	}
	idx := ticket - q.entries[q.head].ticket
	if idx < 0 || idx >= int64(q.size) {
		return
	}
	q.entries[(q.head+int(idx))%len(q.entries)].executed = true
}

// Drain pops executed entries from the head, in order, returning the
// physical registers to free. It stops at the first unexecuted entry.
func (q *PRDQ) Drain(free func(rename.PReg)) int {
	n := 0
	for q.size > 0 {
		e := &q.entries[q.head]
		if !e.executed {
			break
		}
		if e.old != rename.PRegNone {
			free(e.old)
		}
		q.head = (q.head + 1) % len(q.entries)
		q.size--
		q.stats.Deallocs++
		n++
	}
	return n
}

// Clear discards all entries (runahead exit: the RAT and free lists are
// restored wholesale, so pending deallocations are moot).
func (q *PRDQ) Clear() {
	q.head, q.size = 0, 0
}
