package report

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/sim"
)

func fakeResults() ([][]sim.Result, []core.Mode) {
	modes := []core.Mode{core.ModeOoO, core.ModePRE}
	mk := func(name string, mode core.Mode, ipc, joules float64) sim.Result {
		return sim.Result{
			Workload: name, Mode: mode, IPC: ipc,
			Energy: energy.Breakdown{CoreDynamic: joules},
		}
	}
	return [][]sim.Result{
		{mk("alpha", core.ModeOoO, 1.0, 1.0), mk("alpha", core.ModePRE, 1.5, 0.9)},
		{mk("beta", core.ModeOoO, 0.5, 2.0), mk("beta", core.ModePRE, 0.6, 2.2)},
	}, modes
}

func TestTableAlignmentAndContent(t *testing.T) {
	tab := NewTable("T", "a", "bb")
	tab.AddRow("xxx", "y")
	var buf bytes.Buffer
	tab.Write(&buf)
	out := buf.String()
	if !strings.Contains(out, "T\n") || !strings.Contains(out, "xxx") {
		t.Errorf("table output malformed:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // title, header, separator, row
		t.Errorf("expected 4 lines, got %d:\n%s", len(lines), out)
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("", "a", "b")
	tab.AddRow(`va"l`, "w,x")
	var buf bytes.Buffer
	tab.WriteCSV(&buf)
	out := buf.String()
	if !strings.Contains(out, `"va""l"`) || !strings.Contains(out, `"w,x"`) {
		t.Errorf("CSV escaping broken: %s", out)
	}
}

func TestFig2Normalization(t *testing.T) {
	results, modes := fakeResults()
	tab := Fig2(results, modes)
	var buf bytes.Buffer
	tab.Write(&buf)
	out := buf.String()
	if !strings.Contains(out, "1.500") {
		t.Errorf("alpha PRE speedup 1.5 missing:\n%s", out)
	}
	if !strings.Contains(out, "gmean") {
		t.Error("gmean row missing")
	}
	// Baseline column is all 1.000.
	if strings.Count(out, "1.000") < 3 {
		t.Errorf("baseline column not normalized:\n%s", out)
	}
}

func TestFig3Savings(t *testing.T) {
	results, modes := fakeResults()
	tab := Fig3(results, modes)
	var buf bytes.Buffer
	tab.Write(&buf)
	out := buf.String()
	if !strings.Contains(out, "+10.0%") {
		t.Errorf("alpha PRE saving +10%% missing:\n%s", out)
	}
	if !strings.Contains(out, "-10.0%") {
		t.Errorf("beta PRE saving -10%% missing:\n%s", out)
	}
}

func TestAverageHelpers(t *testing.T) {
	results, modes := fakeResults()
	sp := AverageSpeedups(results, modes)
	if sp[0] != 1.0 {
		t.Errorf("baseline speedup %v, want 1", sp[0])
	}
	// gmean(1.5, 1.2) ≈ 1.342
	if sp[1] < 1.3 || sp[1] > 1.4 {
		t.Errorf("PRE gmean speedup %v out of range", sp[1])
	}
	es := AverageEnergySavings(results, modes)
	if es[0] != 0 {
		t.Errorf("baseline saving %v, want 0", es[0])
	}
	// mean(+0.1, -0.1) = 0
	if es[1] < -0.001 || es[1] > 0.001 {
		t.Errorf("PRE mean saving %v, want ~0", es[1])
	}
}

// TestFig2DegenerateRow pins the degenerate-seed fix: a workload whose
// run committed essentially nothing (IPC 0 — a 0/NaN speedup) must not
// panic the gmean summary row; the degenerate cell is dropped from the
// aggregate while the healthy rows still summarize.
func TestFig2DegenerateRow(t *testing.T) {
	results, modes := fakeResults()
	dead := []sim.Result{
		{Workload: "dead", Mode: core.ModeOoO, IPC: 0},
		{Workload: "dead", Mode: core.ModePRE, IPC: 0},
	}
	results = append(results, dead)
	tab := Fig2(results, modes) // must not panic
	var buf bytes.Buffer
	tab.Write(&buf)
	if !strings.Contains(buf.String(), "gmean") {
		t.Error("gmean row missing with a degenerate workload present")
	}
	sp := AverageSpeedups(results, modes)
	// gmean over the surviving cells only: {1, 1} and {1.5, 1.2}.
	if sp[0] != 1.0 {
		t.Errorf("baseline gmean %v, want 1 (degenerate row dropped)", sp[0])
	}
	if sp[1] < 1.3 || sp[1] > 1.4 {
		t.Errorf("PRE gmean %v, want ~1.342 (degenerate row dropped)", sp[1])
	}
}

func TestRunaheadDetailSkipsBaseline(t *testing.T) {
	results, modes := fakeResults()
	tab := RunaheadDetail(results, modes)
	for _, row := range tab.Rows {
		if row[1] == "OoO" {
			t.Error("baseline must not appear in runahead detail")
		}
	}
	if len(tab.Rows) != 2 {
		t.Errorf("expected 2 rows, got %d", len(tab.Rows))
	}
}

func TestPopulationGrid(t *testing.T) {
	rows := [][]PopulationRow{{
		{Mode: "OoO", Count: 8, Min: 1, Median: 1, GeoMean: 1, WorstSeed: "s01"},
		{Mode: "PRE", Count: 8, Min: 0.98, Median: 1.21, GeoMean: 1.18, WorstSeed: "s07"},
	}}
	tab := PopulationGrid([]string{"default"}, rows)
	var buf bytes.Buffer
	tab.Write(&buf)
	out := buf.String()
	for _, want := range []string{"PRE", "0.980", "1.210", "s07", "worst seed"} {
		if !strings.Contains(out, want) {
			t.Errorf("population grid missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, two mode rows
		t.Errorf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
}

func TestPFInterferenceSkipsInactiveAndRendersCounters(t *testing.T) {
	modes := []core.Mode{core.ModeOoO, core.ModePRE}
	results := [][]sim.Result{{
		{Workload: "w", Mode: core.ModeOoO}, // no PF activity: skipped
		{Workload: "w", Mode: core.ModePRE, HWPrefIssued: 5, HWPrefRedundant: 2,
			HWPrefFilteredRA: 3, HWPrefOverflowed: 1, Prefetches: 7},
	}}
	tbl := PFInterference(results, modes)
	if len(tbl.Rows) != 1 {
		t.Fatalf("got %d rows, want 1 (inactive rows skipped)", len(tbl.Rows))
	}
	row := tbl.Rows[0]
	want := []string{"w", "PRE", "5", "2", "3", "0", "1", "7"}
	if len(row) != len(want) {
		t.Fatalf("row %v, want %v", row, want)
	}
	for i := range want {
		if row[i] != want[i] {
			t.Errorf("cell %d = %q, want %q", i, row[i], want[i])
		}
	}
}
