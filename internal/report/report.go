// Package report renders the harness results as the paper's figures and
// tables: aligned text tables for terminal output and CSV for plotting.
package report

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Table is a simple aligned text table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable starts a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row (stringified cells).
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Write renders the table with aligned columns.
func (t *Table) Write(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		fmt.Fprintln(w)
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
}

// WriteCSV renders the table as CSV.
func (t *Table) WriteCSV(w io.Writer) {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	row := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, ",")
			}
			fmt.Fprint(w, esc(c))
		}
		fmt.Fprintln(w)
	}
	row(t.Header)
	for _, r := range t.Rows {
		row(r)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// baselineIndex finds ModeOoO's column.
func baselineIndex(modes []core.Mode) int {
	for i, m := range modes {
		if m == core.ModeOoO {
			return i
		}
	}
	return 0
}

// Fig2 builds the paper's Figure 2: per-benchmark performance of each
// runahead mechanism normalized to the out-of-order baseline, with a
// geometric-mean summary row. results is indexed [workload][mode].
func Fig2(results [][]sim.Result, modes []core.Mode) *Table {
	base := baselineIndex(modes)
	header := []string{"benchmark"}
	for _, m := range modes {
		header = append(header, m.String())
	}
	t := NewTable("Figure 2: performance normalized to OoO", header...)
	gmean := make([][]float64, len(modes))
	for _, row := range results {
		cells := []string{row[0].Workload}
		for mi := range modes {
			s := row[mi].Speedup(row[base])
			gmean[mi] = append(gmean[mi], s)
			cells = append(cells, fmt.Sprintf("%.3f", s))
		}
		t.AddRow(cells...)
	}
	cells := []string{"gmean"}
	for mi := range modes {
		// Degenerate rows (a baseline that committed essentially nothing
		// gives a 0 or NaN speedup) are dropped from the summary instead
		// of panicking the whole report; the per-row cell still shows the
		// raw value.
		gm, _ := stats.GeoMeanPositive(gmean[mi])
		cells = append(cells, fmt.Sprintf("%.3f", gm))
	}
	t.AddRow(cells...)
	return t
}

// Fig3 builds the paper's Figure 3: energy savings (core + DRAM) of each
// mechanism relative to the out-of-order baseline, positive = saves
// energy. results is indexed [workload][mode].
func Fig3(results [][]sim.Result, modes []core.Mode) *Table {
	base := baselineIndex(modes)
	header := []string{"benchmark"}
	for _, m := range modes {
		header = append(header, m.String())
	}
	t := NewTable("Figure 3: energy savings relative to OoO (positive = less energy)", header...)
	mean := make([][]float64, len(modes))
	for _, row := range results {
		cells := []string{row[0].Workload}
		for mi := range modes {
			s := row[mi].Energy.SavingsVs(row[base].Energy)
			mean[mi] = append(mean[mi], s)
			cells = append(cells, fmt.Sprintf("%+.1f%%", 100*s))
		}
		t.AddRow(cells...)
	}
	cells := []string{"mean"}
	for mi := range modes {
		cells = append(cells, fmt.Sprintf("%+.1f%%", 100*stats.Mean(mean[mi])))
	}
	t.AddRow(cells...)
	return t
}

// AverageSpeedups returns the geometric-mean speedup of each mode over the
// baseline (the Figure 2 summary values).
func AverageSpeedups(results [][]sim.Result, modes []core.Mode) []float64 {
	base := baselineIndex(modes)
	out := make([]float64, len(modes))
	for mi := range modes {
		var xs []float64
		for _, row := range results {
			xs = append(xs, row[mi].Speedup(row[base]))
		}
		out[mi], _ = stats.GeoMeanPositive(xs)
	}
	return out
}

// AverageEnergySavings returns the mean energy saving of each mode over
// the baseline (the Figure 3 summary values).
func AverageEnergySavings(results [][]sim.Result, modes []core.Mode) []float64 {
	base := baselineIndex(modes)
	out := make([]float64, len(modes))
	for mi := range modes {
		var sum float64
		for _, row := range results {
			sum += row[mi].Energy.SavingsVs(row[base].Energy)
		}
		out[mi] = sum / float64(len(results))
	}
	return out
}

// PFGrid builds the PRE-vs-prefetch-vs-combined summary: per PF variant
// (row) and mechanism (column), the geometric-mean speedup over that
// SAME variant's OoO baseline (so the OoO column is 1.000 by
// construction, and each row isolates what the mechanism adds on top of
// the prefetchers). points and summary come straight from an exp plan's
// Points() and per-point GeoMeanSpeedups.
func PFGrid(points []string, modes []core.Mode, summary [][]float64) *Table {
	header := []string{"prefetcher"}
	for _, m := range modes {
		header = append(header, m.String())
	}
	t := NewTable("Prefetcher grid: geomean speedup over the per-variant OoO baseline", header...)
	for pi, p := range points {
		cells := []string{p}
		for mi := range modes {
			cells = append(cells, fmt.Sprintf("%.3f", summary[pi][mi]))
		}
		t.AddRow(cells...)
	}
	return t
}

// PopulationRow is one mode's speedup-distribution summary over a seeded
// scenario population (see exp.PopulationStat).
type PopulationRow struct {
	Mode                 string
	Count                int
	Min, Median, GeoMean float64
	WorstSeed            string
}

// PopulationGrid builds the population-robustness table: per point and
// mechanism, the min / median / geomean of the per-seed speedup
// distribution and the worst-case scenario's seed. Where the fixed-suite
// tables answer "how fast on these 13 kernels", this answers "how robust
// over the sampled population — and which seed breaks it". rows is
// indexed [point][mode].
func PopulationGrid(points []string, rows [][]PopulationRow) *Table {
	t := NewTable("Population sweep: per-seed speedup distribution over the baseline",
		"point", "mode", "seeds", "min", "median", "geomean", "worst seed")
	for pi, p := range points {
		for _, r := range rows[pi] {
			t.AddRow(p, r.Mode,
				fmt.Sprintf("%d", r.Count),
				fmt.Sprintf("%.3f", r.Min),
				fmt.Sprintf("%.3f", r.Median),
				fmt.Sprintf("%.3f", r.GeoMean),
				r.WorstSeed)
		}
	}
	return t
}

// PrefetchDetail builds the per-workload hardware-prefetcher diagnostic
// table: issue counts and the accuracy/coverage/timeliness triple, per
// mechanism. Rows for runs without an enabled prefetcher are skipped.
func PrefetchDetail(results [][]sim.Result, modes []core.Mode) *Table {
	t := NewTable("Hardware prefetcher behaviour",
		"benchmark", "mode", "issued", "dropped", "fills", "useful", "accuracy", "coverage", "timeliness")
	for _, row := range results {
		for mi, m := range modes {
			r := row[mi]
			if r.HWPrefIssued == 0 && r.HWPrefDropped == 0 && r.HWPrefRedundant == 0 {
				continue
			}
			t.AddRow(r.Workload, m.String(),
				fmt.Sprintf("%d", r.HWPrefIssued),
				fmt.Sprintf("%d", r.HWPrefDropped),
				fmt.Sprintf("%d", r.HWPrefFills),
				fmt.Sprintf("%d", r.HWPrefUseful),
				fmt.Sprintf("%.0f%%", 100*r.HWPFAccuracy),
				fmt.Sprintf("%.0f%%", 100*r.HWPFCoverage),
				fmt.Sprintf("%.0f%%", 100*r.HWPFTimeliness))
		}
	}
	return t
}

// PFInterference builds the runahead-vs-hardware-prefetch interference
// table: per workload and mechanism, the HW engines' issued / redundant /
// filtered-as-runahead-duplicate / MSHR-dropped / queue-overflowed counts
// next to the runahead mechanism's own prefetch count. "filtered-RA" is
// the directly-measured interference term: HW prefetch requests that
// would have duplicated an in-flight runahead fill, dropped by the
// PRE-aware filter (always zero when the filter is off — those requests
// then issue or land in "redundant" instead). Rows for runs without any
// PF activity are skipped.
func PFInterference(results [][]sim.Result, modes []core.Mode) *Table {
	t := NewTable("Runahead / hardware-prefetch interference",
		"benchmark", "mode", "hw-issued", "redundant", "filtered-RA", "dropped", "overflowed", "ra-prefetches")
	for _, row := range results {
		for mi, m := range modes {
			r := row[mi]
			if r.HWPrefIssued == 0 && r.HWPrefDropped == 0 && r.HWPrefRedundant == 0 &&
				r.HWPrefFilteredRA == 0 && r.HWPrefOverflowed == 0 {
				continue
			}
			t.AddRow(r.Workload, m.String(),
				fmt.Sprintf("%d", r.HWPrefIssued),
				fmt.Sprintf("%d", r.HWPrefRedundant),
				fmt.Sprintf("%d", r.HWPrefFilteredRA),
				fmt.Sprintf("%d", r.HWPrefDropped),
				fmt.Sprintf("%d", r.HWPrefOverflowed),
				fmt.Sprintf("%d", r.Prefetches))
		}
	}
	return t
}

// RunaheadDetail builds the per-mechanism diagnostic table used by the
// in-text experiments (entries, intervals, prefetch coverage, refill
// penalties).
func RunaheadDetail(results [][]sim.Result, modes []core.Mode) *Table {
	t := NewTable("Runahead behaviour",
		"benchmark", "mode", "entries", "interval", "<20cyc", "prefetches", "pf-useful", "refill", "IPC")
	for _, row := range results {
		for mi, m := range modes {
			if m == core.ModeOoO {
				continue
			}
			r := row[mi]
			t.AddRow(r.Workload, m.String(),
				fmt.Sprintf("%d", r.Entries),
				fmt.Sprintf("%.0f", r.IntervalMean),
				fmt.Sprintf("%.0f%%", 100*r.IntervalFracBelow20),
				fmt.Sprintf("%d", r.Prefetches),
				fmt.Sprintf("%d", r.PrefetchUseful),
				fmt.Sprintf("%.0f", r.RefillPenaltyMean),
				fmt.Sprintf("%.3f", r.IPC))
		}
	}
	return t
}
