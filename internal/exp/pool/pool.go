// Package pool provides the worker pool that fans independent simulation
// jobs out across the host's cores. It is shared by sim.RunMatrix and the
// experiment orchestrator in internal/exp so every parallel frontend
// saturates the machine the same way.
//
// Jobs are identified by index; the pool guarantees each index runs
// exactly once. Callers own the output: a job writes only to its own
// pre-allocated slot, so no synchronization beyond the pool's completion
// barrier is needed, and results are independent of scheduling order.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers returns the pool width used when the caller passes 0:
// one worker per schedulable CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Effective returns the pool width Run actually uses for n jobs and the
// given requested worker count — the single source of truth callers use
// when recording pool width (e.g. experiment metadata).
func Effective(n, workers int) int {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	return workers
}

// Run executes job(0) .. job(n-1) on up to workers goroutines and returns
// when all have finished. workers <= 0 selects DefaultWorkers(); the pool
// never starts more goroutines than jobs. With one worker the jobs run on
// the calling goroutine in index order, which keeps single-threaded use
// allocation- and scheduler-free.
//
// Indices are handed out through an atomic cursor (work stealing), so an
// expensive job never serializes the queue behind it. Run itself imposes
// no ordering on observable results: jobs must write to disjoint slots.
func Run(n, workers int, job func(i int)) {
	if n <= 0 {
		return
	}
	workers = Effective(n, workers)
	if workers == 1 {
		for i := 0; i < n; i++ {
			job(i)
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := cursor.Add(1) - 1
				if i >= int64(n) {
					return
				}
				job(int(i))
			}
		}()
	}
	wg.Wait()
}
