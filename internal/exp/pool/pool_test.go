package pool

import (
	"sync/atomic"
	"testing"
)

// TestEveryIndexRunsOnce covers worker counts below, at, and above the
// job count, including the serial fast path.
func TestEveryIndexRunsOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		const n = 53
		counts := make([]atomic.Int32, n)
		Run(n, workers, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Errorf("workers=%d: job %d ran %d times", workers, i, got)
			}
		}
	}
}

// TestSerialOrder verifies the single-worker path runs jobs in index
// order on the calling goroutine, which determinism-sensitive callers
// may rely on for debugging.
func TestSerialOrder(t *testing.T) {
	var order []int
	Run(5, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if i != v {
			t.Fatalf("serial order = %v", order)
		}
	}
}

func TestZeroJobs(t *testing.T) {
	Run(0, 4, func(i int) { t.Error("job ran with n=0") })
	Run(-3, 4, func(i int) { t.Error("job ran with n<0") })
}
