// Structured results sink: a schema-versioned JSON document of every
// matrix cell, emitted in expansion order so identical plans serialize to
// identical bytes at any worker count.
package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/workload/synth"
)

// SchemaVersion identifies the results-document layout. Bump it on any
// field change so downstream consumers can reject documents they do not
// understand.
//
// v2: sim.Result gained the per-level hit breakdown and the
// hardware-prefetcher counters/metrics; the sink gained the sibling
// metadata document (RunMeta).
//
// v3: population sweeps — cells carry the sampled synth scenario
// parameters ("synth", reconstructible via synth.FromParams), and the
// document gains the "population" block (space, count, base seed,
// per-point speedup-distribution stats).
//
// v4: the adaptive prefetching layer — sim.Result gained
// HWPrefFilteredRA (requests the PRE-aware filter dropped as duplicates
// of in-flight runahead fills) and HWPrefOverflowed (requests lost to
// engine queue overflow); the issue counters now also sum the L1I
// fetch-stream engine when one is configured.
//
// v5: fidelity tiers — fast-runahead runs carry tier accounting on
// sim.Result (Fidelity, EmulatedEpisodes/Prefetches, chain-cache
// counters; all ",omitempty", so exact-tier documents are byte-identical
// to v4) and the meta document records the requested tier.
const SchemaVersion = 5

// RunMeta records how a Set was produced: wall-clock, requested and
// effective pool width, and GOMAXPROCS. It is deliberately a SEPARATE
// document from the results (WriteFile emits "<name>.meta.json" beside
// "<name>.json"): wall-clock varies run to run, while the results
// document is contractually byte-identical at any worker count. Anything
// excluded from that contract lives here.
type RunMeta struct {
	// Schema is SchemaVersion at write time.
	Schema int `json:"schema"`
	// Name is the experiment label from Matrix.Name.
	Name string `json:"name,omitempty"`
	// Fidelity is the requested simulation fidelity tier ("exact" or
	// "fast-runahead"). It lives here rather than in the results document
	// so exact-tier results stay byte-identical across schema versions.
	Fidelity string `json:"fidelity"`
	// WallClockSeconds is the duration of Plan.Run.
	WallClockSeconds float64 `json:"wall_clock_seconds"`
	// Workers is the requested pool width (0 = one per CPU).
	Workers int `json:"workers"`
	// EffectiveWorkers is the pool width actually used (bounded by the
	// unique-run count).
	EffectiveWorkers int `json:"effective_workers"`
	// GOMAXPROCS is the scheduler width at run time.
	GOMAXPROCS int `json:"gomaxprocs"`
	// UniqueRuns and TotalCells mirror the results document, so the meta
	// file is interpretable on its own (runs/second etc.).
	UniqueRuns int `json:"unique_runs"`
	TotalCells int `json:"total_cells"`
	// CacheHits counts unique runs satisfied by RunOptions.Lookup instead
	// of a fresh simulation (0 without a cache). It lives in the meta
	// document because hit counts vary with cache state while the results
	// document stays byte-identical hot or cold.
	CacheHits int `json:"cache_hits,omitempty"`
	// CellSeconds* summarize the per-unique-run wall-clock distribution;
	// Total is the serial-equivalent cost of the sweep.
	CellSecondsMin    float64 `json:"cell_seconds_min"`
	CellSecondsMedian float64 `json:"cell_seconds_median"`
	CellSecondsMax    float64 `json:"cell_seconds_max"`
	CellSecondsTotal  float64 `json:"cell_seconds_total"`
	// WorkerUtilization is CellSecondsTotal / (WallClockSeconds x
	// EffectiveWorkers): the fraction of the pool's capacity spent inside
	// simulations. Values well below 1 mean stragglers or an over-wide
	// pool.
	WorkerUtilization float64 `json:"worker_utilization"`
}

// Document is the serialized form of a completed experiment.
type Document struct {
	// Schema is SchemaVersion at write time.
	Schema int `json:"schema"`
	// Name is the experiment label from Matrix.Name.
	Name string `json:"name,omitempty"`
	// WarmupUops and MeasureUops record the simulation window.
	WarmupUops  int64 `json:"warmup_uops"`
	MeasureUops int64 `json:"measure_uops"`
	// Workloads, Modes and Points record the matrix axes in order.
	Workloads []string `json:"workloads"`
	Modes     []string `json:"modes"`
	Points    []string `json:"points"`
	// Baseline is the speedup denominator mode.
	Baseline string `json:"baseline"`
	// UniqueRuns counts deduplicated simulations; TotalCells counts
	// matrix cells. The gap is work saved by shared-baseline caching.
	UniqueRuns int `json:"unique_runs"`
	TotalCells int `json:"total_cells"`
	// Summary holds per-point geomean speedups, indexed [point][mode].
	Summary [][]float64 `json:"summary_geomean_speedups"`
	// Population describes the sampled workload axis, when the matrix had
	// one: the full sampling space (so the artifact alone reproduces the
	// population) and the per-point speedup-distribution summaries.
	Population *PopulationDoc `json:"population,omitempty"`
	// Baselines lists the implicit baseline runs per (point, workload)
	// when the baseline mode is not a matrix axis (AddBaseline sweeps);
	// when it is, the baselines already appear in Cells. Recording them
	// keeps the document self-describing: baseline IPC and seeds are
	// recoverable without rerunning.
	Baselines []Cell `json:"baselines,omitempty"`
	// Cells lists every matrix cell in expansion order (point-major,
	// then workload, then mode).
	Cells []Cell `json:"cells"`
}

// Cell is one matrix cell's serialized result.
type Cell struct {
	Point    string `json:"point"`
	Workload string `json:"workload"`
	Mode     string `json:"mode"`
	// Seed is the run's deterministic seed (hex; uint64 does not survive
	// JSON number round-trips).
	Seed string `json:"seed"`
	// Shared marks cells whose simulation was deduplicated into another
	// cell's (or a baseline's) run.
	Shared bool `json:"shared"`
	// Speedup is IPC normalized to the (point, workload) baseline; 0
	// when the plan has no baseline.
	Speedup float64 `json:"speedup"`
	// Synth records the sampled scenario parameters for population
	// workloads (nil for fixed workloads): a failing seed is reproducible
	// from the artifact alone via synth.FromParams.
	Synth *synth.Params `json:"synth,omitempty"`
	// Result is the full simulation outcome.
	Result sim.Result `json:"result"`
}

// PopulationDoc is the serialized population block.
type PopulationDoc struct {
	// Space is the full sampling space.
	Space synth.Space `json:"space"`
	// Count is the number of sampled scenarios.
	Count int `json:"count"`
	// BaseSeed roots the scenario seed sequence (hex).
	BaseSeed string `json:"base_seed"`
	// Stats holds the per-point, per-mode speedup-distribution summaries
	// (indexed [point], modes in matrix order; omitted without baselines).
	Stats [][]PopulationStatDoc `json:"stats,omitempty"`
}

// PopulationStatDoc is one mode's serialized speedup-distribution summary.
type PopulationStatDoc struct {
	Mode      string  `json:"mode"`
	Count     int     `json:"count"`
	Min       float64 `json:"min"`
	Median    float64 `json:"median"`
	GeoMean   float64 `json:"geomean"`
	WorstSeed string  `json:"worst_seed"`
}

// Document builds the serializable form of the result set.
func (s *Set) Document() *Document {
	p := s.plan
	doc := &Document{
		Schema:      SchemaVersion,
		Name:        p.m.Name,
		WarmupUops:  p.m.Options.WarmupUops,
		MeasureUops: p.m.Options.MeasureUops,
		Baseline:    p.m.Baseline.String(),
		UniqueRuns:  p.NumUnique(),
		TotalCells:  p.NumCells(),
	}
	for _, w := range p.workloads {
		doc.Workloads = append(doc.Workloads, w.Name)
	}
	for _, m := range p.m.Modes {
		doc.Modes = append(doc.Modes, m.String())
	}
	doc.Points = p.Points()
	if p.m.Population != nil {
		pop := &PopulationDoc{
			Space:    p.m.Population.Space,
			Count:    p.m.Population.Count,
			BaseSeed: fmt.Sprintf("%016x", p.m.Population.baseSeed()),
		}
		for pi := range p.points {
			ps := s.PopulationStats(pi)
			if ps == nil {
				pop.Stats = nil
				break
			}
			row := make([]PopulationStatDoc, len(ps))
			for i, st := range ps {
				row[i] = PopulationStatDoc{
					Mode: st.Mode.String(), Count: st.Count,
					Min: st.Min, Median: st.Median, GeoMean: st.GeoMean,
					WorstSeed: st.WorstSeed,
				}
			}
			pop.Stats = append(pop.Stats, row)
		}
		doc.Population = pop
	}

	baselineInModes := false
	for _, m := range p.m.Modes {
		if m == p.m.Baseline {
			baselineInModes = true
		}
	}

	firstCellOf := make(map[int]bool) // unique index -> already serialized
	cell := 0
	for pi, pt := range p.points {
		doc.Summary = append(doc.Summary, s.GeoMeanSpeedups(pi))
		for wi := range p.workloads {
			for mi, mode := range p.m.Modes {
				ui := p.cells[cell]
				shared := firstCellOf[ui]
				firstCellOf[ui] = true
				doc.Cells = append(doc.Cells, Cell{
					Point:    pt.Name,
					Workload: p.workloads[wi].Name,
					Mode:     mode.String(),
					Seed:     fmt.Sprintf("%016x", p.unique[ui].seed),
					Shared:   shared,
					Speedup:  s.Speedup(pi, wi, mi),
					Synth:    p.synth[wi],
					Result:   s.res[ui],
				})
				cell++
			}
			if !baselineInModes {
				if ui := p.base[pi*len(p.workloads)+wi]; ui >= 0 {
					shared := firstCellOf[ui]
					firstCellOf[ui] = true
					doc.Baselines = append(doc.Baselines, Cell{
						Point:    pt.Name,
						Workload: p.workloads[wi].Name,
						Mode:     p.m.Baseline.String(),
						Seed:     fmt.Sprintf("%016x", p.unique[ui].seed),
						Shared:   shared,
						Speedup:  1,
						Synth:    p.synth[wi],
						Result:   s.res[ui],
					})
				}
			}
		}
	}
	return doc
}

// WriteFile writes the results document to dir/name.json and the
// execution metadata to dir/name.meta.json, creating dir if needed — the
// shared sink path of every sweep frontend. Only the results document is
// covered by the byte-identical determinism contract; the meta file
// records the run's wall-clock and pool width and differs run to run.
func (s *Set) WriteFile(dir, name string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name+".json"))
	if err != nil {
		return err
	}
	if err := s.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	b, err := json.MarshalIndent(s.meta, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	return os.WriteFile(filepath.Join(dir, name+".meta.json"), b, 0o644)
}

// WriteTrace writes the set's merged Chrome-trace sidecar (one process
// group per unique run) to path. It errors when the set was produced
// without RunOptions.Trace. The sidecar is diagnostic output, outside the
// results document's byte-identical contract.
func (s *Set) WriteTrace(path string) error {
	if s.trace == nil {
		return fmt.Errorf("exp: set was run without trace recording")
	}
	return telemetry.WriteMergedFile(path, s.trace)
}

// WriteJSON serializes the result set. Output bytes depend only on the
// matrix, never on worker count or scheduling, which the orchestrator's
// determinism tests enforce.
func (s *Set) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(s.Document(), "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
