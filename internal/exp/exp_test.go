package exp

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/workload/synth"
)

// testOpt keeps windows small: these tests run whole matrices.
func testOpt() sim.Options {
	return sim.Options{WarmupUops: 2_000, MeasureUops: 10_000}
}

// testWorkloads picks two fast, structurally different suite proxies.
func testWorkloads(t testing.TB) []workload.Workload {
	t.Helper()
	var ws []workload.Workload
	for _, name := range []string{"libquantum", "milc"} {
		w, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		ws = append(ws, w)
	}
	return ws
}

func sstSweepMatrix(t testing.TB) Matrix {
	points := []Point{
		{Name: "sst=16", Apply: func(c *core.Config) { c.SSTSize = 16 }},
		{Name: "sst=64", Apply: func(c *core.Config) { c.SSTSize = 64 }},
		{Name: "sst=256", Apply: func(c *core.Config) { c.SSTSize = 256 }},
	}
	return Matrix{
		Name:        "sst-sweep",
		Workloads:   testWorkloads(t),
		Modes:       []core.Mode{core.ModePRE},
		Points:      points,
		Options:     testOpt(),
		AddBaseline: true,
	}
}

// TestExpandDedup verifies shared-baseline caching: a 3-point SST sweep
// over 2 workloads needs 3x2 PRE runs but only 2 OoO baselines, because
// the baseline never reads SSTSize.
func TestExpandDedup(t *testing.T) {
	plan, err := sstSweepMatrix(t).Expand()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := plan.NumCells(), 3*2*1; got != want {
		t.Errorf("NumCells = %d, want %d", got, want)
	}
	// 6 distinct PRE configurations + 2 shared OoO baselines.
	if got, want := plan.NumUnique(), 6+2; got != want {
		t.Errorf("NumUnique = %d, want %d (shared-baseline caching broken?)", got, want)
	}
}

// TestBaselineSharingIsSound pins the canonicalConfig assumption
// empirically: simulating OoO with different (mode-irrelevant) runahead
// knobs must produce identical results, otherwise deduplication would
// change answers.
func TestBaselineSharingIsSound(t *testing.T) {
	w := testWorkloads(t)[1] // milc
	run := func(configure func(*core.Config)) sim.Result {
		opt := testOpt()
		opt.Configure = configure
		r, err := sim.Run(w, core.ModeOoO, opt)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	base := run(nil)
	varied := run(func(c *core.Config) {
		c.SSTSize = 16
		c.EMQSize = 1536
		c.ChainMaxLen = 8
		c.MinRunaheadCycles = 999
		c.PREMaxDivergence = 1
		c.ReplayLookahead = 64
		c.RunaheadWidth = 12
	})
	if !reflect.DeepEqual(base, varied) {
		t.Errorf("OoO results depend on runahead knobs; canonicalConfig's table is wrong:\nbase   %+v\nvaried %+v", base, varied)
	}
}

// TestModeRelevantKnobsStayDistinct is the dedup counterpart: knobs a
// mode does read must keep runs distinct.
func TestModeRelevantKnobsStayDistinct(t *testing.T) {
	cfgA := core.Default(core.ModePRE)
	cfgB := core.Default(core.ModePRE)
	cfgB.SSTSize = 16
	if runKey("w", testOpt(), cfgA) == runKey("w", testOpt(), cfgB) {
		t.Error("PRE runs with different SSTSize deduplicated")
	}
	cfgC := core.Default(core.ModeRA)
	cfgD := core.Default(core.ModeRA)
	cfgD.MinRunaheadCycles = 0
	if runKey("w", testOpt(), cfgC) == runKey("w", testOpt(), cfgD) {
		t.Error("RA runs with different MinRunaheadCycles deduplicated")
	}
}

// TestFidelityFoldsIntoDedupKey pins how the fidelity tier participates
// in run identity. The two tiers produce different results wherever the
// chain cache can engage, so they must never share a simulation there;
// where the core never builds the chain cache (OoO, free-exit runahead)
// the tiers are byte-identical by construction and MUST dedup together —
// a fast-tier sweep reuses the exact tier's cached baselines.
func TestFidelityFoldsIntoDedupKey(t *testing.T) {
	withFid := func(mode core.Mode, fid core.Fidelity) core.Config {
		cfg := core.Default(mode)
		cfg.Fidelity = fid
		return cfg
	}
	for _, mode := range []core.Mode{core.ModeRA, core.ModeRABuffer, core.ModePRE, core.ModePREEMQ} {
		if runKey("w", testOpt(), withFid(mode, core.FidelityExact)) ==
			runKey("w", testOpt(), withFid(mode, core.FidelityFastRunahead)) {
			t.Errorf("%v: exact and fast-runahead tiers deduplicated — approximate results would be served as exact", mode)
		}
	}
	if runKey("w", testOpt(), withFid(core.ModeOoO, core.FidelityExact)) !=
		runKey("w", testOpt(), withFid(core.ModeOoO, core.FidelityFastRunahead)) {
		t.Error("OoO baselines did not dedup across tiers (the baseline has no episodes to emulate)")
	}
	cfgA := withFid(core.ModeRA, core.FidelityExact)
	cfgA.FreeExit = true
	cfgB := withFid(core.ModeRA, core.FidelityFastRunahead)
	cfgB.FreeExit = true
	if runKey("w", testOpt(), cfgA) != runKey("w", testOpt(), cfgB) {
		t.Error("free-exit RA cells did not dedup across tiers (the core never builds a chain cache with FreeExit)")
	}

	// The chain-cache size is only read by the fast tier: it must keep
	// fast-tier runs distinct and be folded out of exact-tier keys.
	cfgC := withFid(core.ModePRE, core.FidelityFastRunahead)
	cfgD := withFid(core.ModePRE, core.FidelityFastRunahead)
	cfgD.ChainCacheSize = 2 * cfgC.ChainCacheSize
	if runKey("w", testOpt(), cfgC) == runKey("w", testOpt(), cfgD) {
		t.Error("fast-tier runs with different ChainCacheSize deduplicated")
	}
	cfgE := withFid(core.ModePRE, core.FidelityExact)
	cfgF := withFid(core.ModePRE, core.FidelityExact)
	cfgF.ChainCacheSize = 2 * cfgE.ChainCacheSize
	if runKey("w", testOpt(), cfgE) != runKey("w", testOpt(), cfgF) {
		t.Error("exact-tier runs did not dedup across ChainCacheSize (the exact tier never reads it)")
	}
}

// TestDeterministicJSON runs the same matrix at 1, 4 and GOMAXPROCS
// workers and requires byte-identical results JSON: the orchestrator's
// core contract.
func TestDeterministicJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full matrices")
	}
	m := sstSweepMatrix(t)
	var reference []byte
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		plan, err := m.Expand()
		if err != nil {
			t.Fatal(err)
		}
		set, err := plan.Run(workers)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := set.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if reference == nil {
			reference = buf.Bytes()
			continue
		}
		if !bytes.Equal(reference, buf.Bytes()) {
			t.Fatalf("results JSON differs at %d workers", workers)
		}
	}
}

// pfGridMatrix is the PF-augmented grid: modes x prefetcher variants.
func pfGridMatrix(t testing.TB) Matrix {
	points := make([]Point, 0, 3)
	for _, v := range prefetch.Variants()[:3] { // no-pf, stride, best-offset
		v := v
		points = append(points, Point{Name: v.Name, Apply: func(c *core.Config) { c.ApplyPrefetch(v) }})
	}
	return Matrix{
		Name:      "pf-grid",
		Workloads: testWorkloads(t),
		Modes:     []core.Mode{core.ModeOoO, core.ModePRE},
		Points:    points,
		Options:   testOpt(),
	}
}

// TestPFGridDeterministicJSON extends the determinism contract to the
// prefetcher axis: a {OoO, PRE} x {no-pf, stride, best-offset} matrix
// must serialize byte-identically at any worker count, with the PF
// metrics populated in the prefetching cells.
func TestPFGridDeterministicJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full matrices")
	}
	m := pfGridMatrix(t)
	var reference []byte
	for _, workers := range []int{1, 4} {
		plan, err := m.Expand()
		if err != nil {
			t.Fatal(err)
		}
		set, err := plan.Run(workers)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := set.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if reference == nil {
			reference = buf.Bytes()
			// Spot-check the axis actually changes the simulation: the
			// stride point must record prefetch issue on the streaming
			// workload, the no-pf point must not.
			if r := set.Result(1, 0, 0); r.HWPrefIssued == 0 {
				t.Error("stride point issued no hardware prefetches on libquantum")
			}
			if r := set.Result(0, 0, 0); r.HWPrefIssued != 0 {
				t.Error("no-pf point issued hardware prefetches")
			}
			continue
		}
		if !bytes.Equal(reference, buf.Bytes()) {
			t.Fatalf("PF-grid results JSON differs at %d workers", workers)
		}
	}
}

// TestPFPointsStayDistinct pins the dedup key's sensitivity to the
// prefetcher configuration: same mode, different PF variant must never
// share a simulation — for ANY mode, including the baseline (the
// prefetcher changes OoO results, unlike runahead knobs).
func TestPFPointsStayDistinct(t *testing.T) {
	for _, mode := range core.Modes() {
		cfgA := core.Default(mode)
		cfgB := core.Default(mode)
		cfgB.ApplyPrefetch(prefetch.Variants()[1]) // stride
		if runKey("w", testOpt(), cfgA) == runKey("w", testOpt(), cfgB) {
			t.Errorf("%v: no-pf and stride configurations deduplicated", mode)
		}
	}
	// The adaptive layer's knobs are behavioral too: every standard
	// variant — including the ones differing only in the filter bit or a
	// throttle epoch — must fingerprint distinctly under a runahead mode.
	seen := map[string]string{}
	for _, v := range prefetch.Variants() {
		cfg := core.Default(core.ModePRE)
		cfg.ApplyPrefetch(v)
		key := runKey("w", testOpt(), cfg)
		if prev, ok := seen[key]; ok {
			t.Errorf("variants %q and %q share a dedup key", prev, v.Name)
		}
		seen[key] = v.Name
	}
	// Under the OoO baseline, though, the PRE-aware filter is inert (no
	// runahead-tagged fills exist), so a filtered variant must dedup onto
	// its unfiltered twin's baseline.
	combined, err := prefetch.VariantByName("stride+bo")
	if err != nil {
		t.Fatal(err)
	}
	filtered, err := prefetch.VariantByName("filtered")
	if err != nil {
		t.Fatal(err)
	}
	cfgA := core.Default(core.ModeOoO)
	cfgA.ApplyPrefetch(combined)
	cfgB := core.Default(core.ModeOoO)
	cfgB.ApplyPrefetch(filtered)
	if runKey("w", testOpt(), cfgA) != runKey("w", testOpt(), cfgB) {
		t.Error("OoO baselines of stride+bo and filtered did not dedup (the filter cannot act without runahead)")
	}
}

// TestWriteFileEmitsMetaSibling verifies the sink writes the execution
// metadata beside, not inside, the results document: the results bytes
// stay worker-count-invariant while the meta file records wall-clock and
// pool width.
func TestWriteFileEmitsMetaSibling(t *testing.T) {
	m := Matrix{
		Workloads: testWorkloads(t)[:1],
		Modes:     []core.Mode{core.ModeOoO},
		Options:   testOpt(),
	}
	plan, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	set, err := plan.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	meta := set.Meta()
	if meta.Schema != SchemaVersion || meta.Workers != 1 || meta.EffectiveWorkers != 1 {
		t.Errorf("meta = %+v", meta)
	}
	if meta.WallClockSeconds <= 0 {
		t.Error("wall clock not recorded")
	}
	if meta.GOMAXPROCS <= 0 || meta.UniqueRuns != plan.NumUnique() {
		t.Errorf("meta environment block wrong: %+v", meta)
	}
	dir := t.TempDir()
	if err := set.WriteFile(dir, "out"); err != nil {
		t.Fatal(err)
	}
	results, err := os.ReadFile(filepath.Join(dir, "out.json"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(results, []byte("wall_clock_seconds")) {
		t.Error("wall clock leaked into the byte-identical results document")
	}
	raw, err := os.ReadFile(filepath.Join(dir, "out.meta.json"))
	if err != nil {
		t.Fatalf("meta sibling not written: %v", err)
	}
	var got RunMeta
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got.Schema != SchemaVersion || got.WallClockSeconds <= 0 {
		t.Errorf("meta file contents wrong: %+v", got)
	}
}

// TestSpeedupsMatchSerialReference recomputes one sweep column the
// pre-orchestrator way (fresh baseline per point, one run at a time) and
// requires exact agreement with the orchestrated, deduplicated result.
func TestSpeedupsMatchSerialReference(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full matrices")
	}
	m := sstSweepMatrix(t)
	plan, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	set, err := plan.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int{16, 64, 256}
	for pi, size := range sizes {
		for wi, w := range m.Workloads {
			opt := testOpt()
			opt.Configure = func(c *core.Config) { c.SSTSize = size }
			base, err := sim.Run(w, core.ModeOoO, opt)
			if err != nil {
				t.Fatal(err)
			}
			r, err := sim.Run(w, core.ModePRE, opt)
			if err != nil {
				t.Fatal(err)
			}
			want := r.Speedup(base)
			if got := set.Speedup(pi, wi, 0); got != want {
				t.Errorf("point %d workload %s: orchestrated speedup %v != serial %v",
					size, w.Name, got, want)
			}
		}
	}
}

// TestSeedsAreStable verifies per-run seeds derive from run identity:
// re-expanding the same matrix reproduces them, and distinct runs get
// distinct seeds.
func TestSeedsAreStable(t *testing.T) {
	m := sstSweepMatrix(t)
	a, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if a.NumUnique() != b.NumUnique() {
		t.Fatalf("re-expansion changed unique count: %d vs %d", a.NumUnique(), b.NumUnique())
	}
	seen := make(map[uint64]bool)
	for ui := 0; ui < a.NumUnique(); ui++ {
		if a.Seed(ui) != b.Seed(ui) {
			t.Errorf("unique run %d: seed changed across expansions", ui)
		}
		if seen[a.Seed(ui)] {
			t.Errorf("unique run %d: seed collision", ui)
		}
		seen[a.Seed(ui)] = true
	}
}

// TestExpandErrors covers matrix validation.
func TestExpandErrors(t *testing.T) {
	ws := testWorkloads(t)
	cases := []struct {
		name string
		m    Matrix
	}{
		{"no workloads", Matrix{Modes: []core.Mode{core.ModeOoO}, Options: testOpt()}},
		{"no modes", Matrix{Workloads: ws, Options: testOpt()}},
		{"no window", Matrix{Workloads: ws, Modes: []core.Mode{core.ModeOoO}}},
		{"duplicate point", Matrix{Workloads: ws, Modes: []core.Mode{core.ModeOoO},
			Options: testOpt(), Points: []Point{{Name: "p"}, {Name: "p"}}}},
		{"unnamed point", Matrix{Workloads: ws, Modes: []core.Mode{core.ModeOoO},
			Options: testOpt(), Points: []Point{{}}}},
		{"duplicate workload", Matrix{Workloads: []workload.Workload{ws[0], ws[0]},
			Modes: []core.Mode{core.ModeOoO}, Options: testOpt()}},
		{"invalid config", Matrix{Workloads: ws, Modes: []core.Mode{core.ModePRE},
			Options: testOpt(),
			Points:  []Point{{Name: "bad", Apply: func(c *core.Config) { c.SSTSize = -1 }}}}},
	}
	for _, tc := range cases {
		if _, err := tc.m.Expand(); err == nil {
			t.Errorf("%s: Expand succeeded, want error", tc.name)
		}
	}
}

// TestNoBaseline verifies speedups degrade gracefully without a baseline.
func TestNoBaseline(t *testing.T) {
	m := Matrix{
		Workloads: testWorkloads(t)[:1],
		Modes:     []core.Mode{core.ModePRE},
		Options:   testOpt(),
	}
	plan, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	set, err := plan.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := set.Baseline(0, 0); ok {
		t.Error("Baseline reported present without AddBaseline or OoO in Modes")
	}
	if s := set.Speedup(0, 0, 0); s != 0 {
		t.Errorf("Speedup without baseline = %v, want 0", s)
	}
	// Serialization must degrade gracefully, not panic on the 0 speedups.
	var buf bytes.Buffer
	if err := set.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON without baseline: %v", err)
	}
	for _, g := range set.GeoMeanSpeedups(0) {
		if g != 0 {
			t.Errorf("GeoMeanSpeedups without baseline = %v, want 0", g)
		}
	}
}

// TestDocumentRecordsImplicitBaselines verifies AddBaseline sweeps
// serialize their baseline runs: the document must be self-describing
// (baseline IPC and seed recoverable without rerunning).
func TestDocumentRecordsImplicitBaselines(t *testing.T) {
	plan, err := sstSweepMatrix(t).Expand()
	if err != nil {
		t.Fatal(err)
	}
	set, err := plan.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	doc := set.Document()
	// 3 points x 2 workloads, but only 2 unique baseline simulations:
	// one entry per (point, workload), later ones marked Shared.
	if got, want := len(doc.Baselines), 3*2; got != want {
		t.Fatalf("len(Baselines) = %d, want %d", got, want)
	}
	fresh := 0
	for _, c := range doc.Baselines {
		if c.Mode != core.ModeOoO.String() {
			t.Errorf("baseline cell mode = %s", c.Mode)
		}
		if c.Result.IPC <= 0 {
			t.Errorf("baseline %s/%s has no result", c.Point, c.Workload)
		}
		if !c.Shared {
			fresh++
		}
	}
	if fresh != 2 {
		t.Errorf("fresh baseline runs = %d, want 2 (dedup broken?)", fresh)
	}
	// When the baseline mode is a matrix axis, Baselines must be empty —
	// those runs are already Cells.
	m := sstSweepMatrix(t)
	m.Modes = []core.Mode{core.ModeOoO, core.ModePRE}
	plan2, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	set2, err := plan2.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if doc2 := set2.Document(); len(doc2.Baselines) != 0 {
		t.Errorf("Baselines populated (%d) with baseline mode in Modes", len(doc2.Baselines))
	}
}

// populationMatrix is a small population sweep: sampled scenarios only,
// OoO baseline in the modes axis.
func populationMatrix(count int) Matrix {
	return Matrix{
		Name:  "pop",
		Modes: []core.Mode{core.ModeOoO, core.ModePRE},
		Population: &Population{
			Space: synth.DefaultSpace(),
			Count: count,
		},
		Options: testOpt(),
	}
}

// TestPopulationExpand verifies the sampled axis: Count scenarios appear
// after the fixed workloads, each carrying its sampled parameters.
func TestPopulationExpand(t *testing.T) {
	m := populationMatrix(4)
	m.Workloads = testWorkloads(t) // mixed fixed + sampled axis
	plan, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	ws := plan.Workloads()
	if len(ws) != 2+4 {
		t.Fatalf("expanded workload axis has %d entries, want 6", len(ws))
	}
	if got, want := plan.NumCells(), 6*2; got != want {
		t.Errorf("NumCells = %d, want %d", got, want)
	}
	for wi, w := range ws {
		params := plan.SynthParams(wi)
		if wi < 2 {
			if params != nil {
				t.Errorf("fixed workload %s has synth params", w.Name)
			}
			continue
		}
		if params == nil {
			t.Fatalf("population workload %s missing synth params", w.Name)
		}
		if w.Name != "s"+params.Seed {
			t.Errorf("scenario name %q does not encode its seed %q", w.Name, params.Seed)
		}
		if w.Class != "synth" || len(params.Phases) == 0 {
			t.Errorf("scenario %s malformed: class %q, %d phases", w.Name, w.Class, len(params.Phases))
		}
	}
	// Re-expansion must sample the identical population.
	plan2, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for wi := range ws {
		if !reflect.DeepEqual(plan.SynthParams(wi), plan2.SynthParams(wi)) {
			t.Errorf("workload %d: params differ across expansions", wi)
		}
	}
}

// TestPopulationDeterministicJSON extends the byte-identical contract to
// population sweeps, and requires every population cell to record its
// sampled parameters — the reproducibility fix: a failing CI seed must be
// reconstructible from the artifact alone.
func TestPopulationDeterministicJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full matrices")
	}
	var reference []byte
	for _, workers := range []int{1, 4} {
		plan, err := populationMatrix(4).Expand()
		if err != nil {
			t.Fatal(err)
		}
		set, err := plan.Run(workers)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := set.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if reference == nil {
			reference = buf.Bytes()
			doc := set.Document()
			if doc.Population == nil || doc.Population.Count != 4 {
				t.Fatal("population block missing from document")
			}
			if doc.Population.Space.Name != "default" || len(doc.Population.Space.Strides) == 0 {
				t.Error("sampling space not serialized into the artifact")
			}
			if len(doc.Population.Stats) != 1 || len(doc.Population.Stats[0]) != 2 {
				t.Errorf("population stats shape wrong: %+v", doc.Population.Stats)
			}
			for _, c := range doc.Cells {
				if c.Synth == nil {
					t.Fatalf("population cell %s/%s has no synth params", c.Workload, c.Mode)
				}
				if got := len(c.Synth.Phases); got == 0 {
					t.Errorf("cell %s records empty phases", c.Workload)
				}
			}
			continue
		}
		if !bytes.Equal(reference, buf.Bytes()) {
			t.Fatalf("population results JSON differs at %d workers", workers)
		}
	}
}

// TestPopulationStats pins the aggregation: Min is the true minimum of
// the per-seed speedups, WorstSeed names its scenario, and the summary
// orderings hold.
func TestPopulationStats(t *testing.T) {
	plan, err := populationMatrix(5).Expand()
	if err != nil {
		t.Fatal(err)
	}
	set, err := plan.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	ps := set.PopulationStats(0)
	if len(ps) != 2 {
		t.Fatalf("PopulationStats returned %d modes, want 2", len(ps))
	}
	for mi, st := range ps {
		if st.Count != 5 {
			t.Errorf("%v: count %d, want 5", st.Mode, st.Count)
		}
		xs := set.SeedSpeedups(0, mi)
		if len(xs) != 5 {
			t.Fatalf("%v: %d seed speedups, want 5", st.Mode, len(xs))
		}
		min, argmin := xs[0], 0
		for i, x := range xs {
			if x < min {
				min, argmin = x, i
			}
		}
		if st.Min != min {
			t.Errorf("%v: Min %v != true minimum %v", st.Mode, st.Min, min)
		}
		if want := plan.Workloads()[argmin].Name; st.WorstSeed != want {
			t.Errorf("%v: WorstSeed %q, want %q", st.Mode, st.WorstSeed, want)
		}
		if st.Median < st.Min || st.GeoMean < st.Min {
			t.Errorf("%v: summary below minimum: %+v", st.Mode, st)
		}
	}
	// The OoO row is the baseline: identically 1.
	if ps[0].Mode != core.ModeOoO || ps[0].Min != 1 || ps[0].GeoMean != 1 {
		t.Errorf("baseline population stats not unity: %+v", ps[0])
	}
}

// TestPopulationStatsDegenerate pins the degenerate-seed fix: a sampled
// scenario whose run commits essentially nothing yields a 0 (or NaN)
// speedup, which previously detonated stats.GeoMean mid-sweep. Such
// seeds must instead be counted in Degenerate and excluded from
// Min/Median/GeoMean.
func TestPopulationStatsDegenerate(t *testing.T) {
	plan, err := populationMatrix(5).Expand()
	if err != nil {
		t.Fatal(err)
	}
	set, err := plan.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	// Force one non-baseline cell to a dead run (IPC 0 -> speedup 0).
	set.res[set.plan.cells[set.cellIndex(0, 0, 1)]].IPC = 0
	ps := set.PopulationStats(0) // must not panic
	if len(ps) != 2 {
		t.Fatalf("PopulationStats returned %d modes, want 2", len(ps))
	}
	st := ps[1]
	if st.Degenerate != 1 {
		t.Errorf("Degenerate = %d, want 1", st.Degenerate)
	}
	if st.Count != 4 {
		t.Errorf("Count = %d, want 4 (degenerate seed excluded)", st.Count)
	}
	if st.Min <= 0 || st.GeoMean <= 0 {
		t.Errorf("summary polluted by degenerate seed: %+v", st)
	}
	// The baseline mode is untouched by the dead cell.
	if ps[0].Degenerate != 0 || ps[0].Count != 5 {
		t.Errorf("baseline row changed: %+v", ps[0])
	}
	// GeoMeanSpeedups over the same point must also survive.
	for mi, gm := range set.GeoMeanSpeedups(0) {
		if gm <= 0 {
			t.Errorf("GeoMeanSpeedups[%d] = %v, want > 0", mi, gm)
		}
	}
}

// TestPopulationErrors covers population validation.
func TestPopulationErrors(t *testing.T) {
	bad := populationMatrix(0)
	if _, err := bad.Expand(); err == nil {
		t.Error("zero-count population expanded")
	}
	invalid := populationMatrix(2)
	invalid.Population.Space.Strides = nil
	if _, err := invalid.Expand(); err == nil {
		t.Error("invalid space expanded")
	}
}
