package exp

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/workload"
)

// testOpt keeps windows small: these tests run whole matrices.
func testOpt() sim.Options {
	return sim.Options{WarmupUops: 2_000, MeasureUops: 10_000}
}

// testWorkloads picks two fast, structurally different suite proxies.
func testWorkloads(t testing.TB) []workload.Workload {
	t.Helper()
	var ws []workload.Workload
	for _, name := range []string{"libquantum", "milc"} {
		w, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		ws = append(ws, w)
	}
	return ws
}

func sstSweepMatrix(t testing.TB) Matrix {
	points := []Point{
		{Name: "sst=16", Apply: func(c *core.Config) { c.SSTSize = 16 }},
		{Name: "sst=64", Apply: func(c *core.Config) { c.SSTSize = 64 }},
		{Name: "sst=256", Apply: func(c *core.Config) { c.SSTSize = 256 }},
	}
	return Matrix{
		Name:        "sst-sweep",
		Workloads:   testWorkloads(t),
		Modes:       []core.Mode{core.ModePRE},
		Points:      points,
		Options:     testOpt(),
		AddBaseline: true,
	}
}

// TestExpandDedup verifies shared-baseline caching: a 3-point SST sweep
// over 2 workloads needs 3x2 PRE runs but only 2 OoO baselines, because
// the baseline never reads SSTSize.
func TestExpandDedup(t *testing.T) {
	plan, err := sstSweepMatrix(t).Expand()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := plan.NumCells(), 3*2*1; got != want {
		t.Errorf("NumCells = %d, want %d", got, want)
	}
	// 6 distinct PRE configurations + 2 shared OoO baselines.
	if got, want := plan.NumUnique(), 6+2; got != want {
		t.Errorf("NumUnique = %d, want %d (shared-baseline caching broken?)", got, want)
	}
}

// TestBaselineSharingIsSound pins the canonicalConfig assumption
// empirically: simulating OoO with different (mode-irrelevant) runahead
// knobs must produce identical results, otherwise deduplication would
// change answers.
func TestBaselineSharingIsSound(t *testing.T) {
	w := testWorkloads(t)[1] // milc
	run := func(configure func(*core.Config)) sim.Result {
		opt := testOpt()
		opt.Configure = configure
		r, err := sim.Run(w, core.ModeOoO, opt)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	base := run(nil)
	varied := run(func(c *core.Config) {
		c.SSTSize = 16
		c.EMQSize = 1536
		c.ChainMaxLen = 8
		c.MinRunaheadCycles = 999
		c.PREMaxDivergence = 1
		c.ReplayLookahead = 64
		c.RunaheadWidth = 12
	})
	if !reflect.DeepEqual(base, varied) {
		t.Errorf("OoO results depend on runahead knobs; canonicalConfig's table is wrong:\nbase   %+v\nvaried %+v", base, varied)
	}
}

// TestModeRelevantKnobsStayDistinct is the dedup counterpart: knobs a
// mode does read must keep runs distinct.
func TestModeRelevantKnobsStayDistinct(t *testing.T) {
	cfgA := core.Default(core.ModePRE)
	cfgB := core.Default(core.ModePRE)
	cfgB.SSTSize = 16
	if runKey("w", testOpt(), cfgA) == runKey("w", testOpt(), cfgB) {
		t.Error("PRE runs with different SSTSize deduplicated")
	}
	cfgC := core.Default(core.ModeRA)
	cfgD := core.Default(core.ModeRA)
	cfgD.MinRunaheadCycles = 0
	if runKey("w", testOpt(), cfgC) == runKey("w", testOpt(), cfgD) {
		t.Error("RA runs with different MinRunaheadCycles deduplicated")
	}
}

// TestDeterministicJSON runs the same matrix at 1, 4 and GOMAXPROCS
// workers and requires byte-identical results JSON: the orchestrator's
// core contract.
func TestDeterministicJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full matrices")
	}
	m := sstSweepMatrix(t)
	var reference []byte
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		plan, err := m.Expand()
		if err != nil {
			t.Fatal(err)
		}
		set, err := plan.Run(workers)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := set.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if reference == nil {
			reference = buf.Bytes()
			continue
		}
		if !bytes.Equal(reference, buf.Bytes()) {
			t.Fatalf("results JSON differs at %d workers", workers)
		}
	}
}

// pfGridMatrix is the PF-augmented grid: modes x prefetcher variants.
func pfGridMatrix(t testing.TB) Matrix {
	points := make([]Point, 0, 3)
	for _, v := range prefetch.Variants()[:3] { // no-pf, stride, best-offset
		v := v
		points = append(points, Point{Name: v.Name, Apply: func(c *core.Config) { c.ApplyPrefetch(v) }})
	}
	return Matrix{
		Name:      "pf-grid",
		Workloads: testWorkloads(t),
		Modes:     []core.Mode{core.ModeOoO, core.ModePRE},
		Points:    points,
		Options:   testOpt(),
	}
}

// TestPFGridDeterministicJSON extends the determinism contract to the
// prefetcher axis: a {OoO, PRE} x {no-pf, stride, best-offset} matrix
// must serialize byte-identically at any worker count, with the PF
// metrics populated in the prefetching cells.
func TestPFGridDeterministicJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full matrices")
	}
	m := pfGridMatrix(t)
	var reference []byte
	for _, workers := range []int{1, 4} {
		plan, err := m.Expand()
		if err != nil {
			t.Fatal(err)
		}
		set, err := plan.Run(workers)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := set.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if reference == nil {
			reference = buf.Bytes()
			// Spot-check the axis actually changes the simulation: the
			// stride point must record prefetch issue on the streaming
			// workload, the no-pf point must not.
			if r := set.Result(1, 0, 0); r.HWPrefIssued == 0 {
				t.Error("stride point issued no hardware prefetches on libquantum")
			}
			if r := set.Result(0, 0, 0); r.HWPrefIssued != 0 {
				t.Error("no-pf point issued hardware prefetches")
			}
			continue
		}
		if !bytes.Equal(reference, buf.Bytes()) {
			t.Fatalf("PF-grid results JSON differs at %d workers", workers)
		}
	}
}

// TestPFPointsStayDistinct pins the dedup key's sensitivity to the
// prefetcher configuration: same mode, different PF variant must never
// share a simulation — for ANY mode, including the baseline (the
// prefetcher changes OoO results, unlike runahead knobs).
func TestPFPointsStayDistinct(t *testing.T) {
	for _, mode := range core.Modes() {
		cfgA := core.Default(mode)
		cfgB := core.Default(mode)
		cfgB.ApplyPrefetch(prefetch.Variants()[1]) // stride
		if runKey("w", testOpt(), cfgA) == runKey("w", testOpt(), cfgB) {
			t.Errorf("%v: no-pf and stride configurations deduplicated", mode)
		}
	}
}

// TestWriteFileEmitsMetaSibling verifies the sink writes the execution
// metadata beside, not inside, the results document: the results bytes
// stay worker-count-invariant while the meta file records wall-clock and
// pool width.
func TestWriteFileEmitsMetaSibling(t *testing.T) {
	m := Matrix{
		Workloads: testWorkloads(t)[:1],
		Modes:     []core.Mode{core.ModeOoO},
		Options:   testOpt(),
	}
	plan, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	set, err := plan.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	meta := set.Meta()
	if meta.Schema != SchemaVersion || meta.Workers != 1 || meta.EffectiveWorkers != 1 {
		t.Errorf("meta = %+v", meta)
	}
	if meta.WallClockSeconds <= 0 {
		t.Error("wall clock not recorded")
	}
	if meta.GOMAXPROCS <= 0 || meta.UniqueRuns != plan.NumUnique() {
		t.Errorf("meta environment block wrong: %+v", meta)
	}
	dir := t.TempDir()
	if err := set.WriteFile(dir, "out"); err != nil {
		t.Fatal(err)
	}
	results, err := os.ReadFile(filepath.Join(dir, "out.json"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(results, []byte("wall_clock_seconds")) {
		t.Error("wall clock leaked into the byte-identical results document")
	}
	raw, err := os.ReadFile(filepath.Join(dir, "out.meta.json"))
	if err != nil {
		t.Fatalf("meta sibling not written: %v", err)
	}
	var got RunMeta
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got.Schema != SchemaVersion || got.WallClockSeconds <= 0 {
		t.Errorf("meta file contents wrong: %+v", got)
	}
}

// TestSpeedupsMatchSerialReference recomputes one sweep column the
// pre-orchestrator way (fresh baseline per point, one run at a time) and
// requires exact agreement with the orchestrated, deduplicated result.
func TestSpeedupsMatchSerialReference(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full matrices")
	}
	m := sstSweepMatrix(t)
	plan, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	set, err := plan.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int{16, 64, 256}
	for pi, size := range sizes {
		for wi, w := range m.Workloads {
			opt := testOpt()
			opt.Configure = func(c *core.Config) { c.SSTSize = size }
			base, err := sim.Run(w, core.ModeOoO, opt)
			if err != nil {
				t.Fatal(err)
			}
			r, err := sim.Run(w, core.ModePRE, opt)
			if err != nil {
				t.Fatal(err)
			}
			want := r.Speedup(base)
			if got := set.Speedup(pi, wi, 0); got != want {
				t.Errorf("point %d workload %s: orchestrated speedup %v != serial %v",
					size, w.Name, got, want)
			}
		}
	}
}

// TestSeedsAreStable verifies per-run seeds derive from run identity:
// re-expanding the same matrix reproduces them, and distinct runs get
// distinct seeds.
func TestSeedsAreStable(t *testing.T) {
	m := sstSweepMatrix(t)
	a, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if a.NumUnique() != b.NumUnique() {
		t.Fatalf("re-expansion changed unique count: %d vs %d", a.NumUnique(), b.NumUnique())
	}
	seen := make(map[uint64]bool)
	for ui := 0; ui < a.NumUnique(); ui++ {
		if a.Seed(ui) != b.Seed(ui) {
			t.Errorf("unique run %d: seed changed across expansions", ui)
		}
		if seen[a.Seed(ui)] {
			t.Errorf("unique run %d: seed collision", ui)
		}
		seen[a.Seed(ui)] = true
	}
}

// TestExpandErrors covers matrix validation.
func TestExpandErrors(t *testing.T) {
	ws := testWorkloads(t)
	cases := []struct {
		name string
		m    Matrix
	}{
		{"no workloads", Matrix{Modes: []core.Mode{core.ModeOoO}, Options: testOpt()}},
		{"no modes", Matrix{Workloads: ws, Options: testOpt()}},
		{"no window", Matrix{Workloads: ws, Modes: []core.Mode{core.ModeOoO}}},
		{"duplicate point", Matrix{Workloads: ws, Modes: []core.Mode{core.ModeOoO},
			Options: testOpt(), Points: []Point{{Name: "p"}, {Name: "p"}}}},
		{"unnamed point", Matrix{Workloads: ws, Modes: []core.Mode{core.ModeOoO},
			Options: testOpt(), Points: []Point{{}}}},
		{"duplicate workload", Matrix{Workloads: []workload.Workload{ws[0], ws[0]},
			Modes: []core.Mode{core.ModeOoO}, Options: testOpt()}},
		{"invalid config", Matrix{Workloads: ws, Modes: []core.Mode{core.ModePRE},
			Options: testOpt(),
			Points:  []Point{{Name: "bad", Apply: func(c *core.Config) { c.SSTSize = -1 }}}}},
	}
	for _, tc := range cases {
		if _, err := tc.m.Expand(); err == nil {
			t.Errorf("%s: Expand succeeded, want error", tc.name)
		}
	}
}

// TestNoBaseline verifies speedups degrade gracefully without a baseline.
func TestNoBaseline(t *testing.T) {
	m := Matrix{
		Workloads: testWorkloads(t)[:1],
		Modes:     []core.Mode{core.ModePRE},
		Options:   testOpt(),
	}
	plan, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	set, err := plan.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := set.Baseline(0, 0); ok {
		t.Error("Baseline reported present without AddBaseline or OoO in Modes")
	}
	if s := set.Speedup(0, 0, 0); s != 0 {
		t.Errorf("Speedup without baseline = %v, want 0", s)
	}
	// Serialization must degrade gracefully, not panic on the 0 speedups.
	var buf bytes.Buffer
	if err := set.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON without baseline: %v", err)
	}
	for _, g := range set.GeoMeanSpeedups(0) {
		if g != 0 {
			t.Errorf("GeoMeanSpeedups without baseline = %v, want 0", g)
		}
	}
}

// TestDocumentRecordsImplicitBaselines verifies AddBaseline sweeps
// serialize their baseline runs: the document must be self-describing
// (baseline IPC and seed recoverable without rerunning).
func TestDocumentRecordsImplicitBaselines(t *testing.T) {
	plan, err := sstSweepMatrix(t).Expand()
	if err != nil {
		t.Fatal(err)
	}
	set, err := plan.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	doc := set.Document()
	// 3 points x 2 workloads, but only 2 unique baseline simulations:
	// one entry per (point, workload), later ones marked Shared.
	if got, want := len(doc.Baselines), 3*2; got != want {
		t.Fatalf("len(Baselines) = %d, want %d", got, want)
	}
	fresh := 0
	for _, c := range doc.Baselines {
		if c.Mode != core.ModeOoO.String() {
			t.Errorf("baseline cell mode = %s", c.Mode)
		}
		if c.Result.IPC <= 0 {
			t.Errorf("baseline %s/%s has no result", c.Point, c.Workload)
		}
		if !c.Shared {
			fresh++
		}
	}
	if fresh != 2 {
		t.Errorf("fresh baseline runs = %d, want 2 (dedup broken?)", fresh)
	}
	// When the baseline mode is a matrix axis, Baselines must be empty —
	// those runs are already Cells.
	m := sstSweepMatrix(t)
	m.Modes = []core.Mode{core.ModeOoO, core.ModePRE}
	plan2, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	set2, err := plan2.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if doc2 := set2.Document(); len(doc2.Baselines) != 0 {
		t.Errorf("Baselines populated (%d) with baseline mode in Modes", len(doc2.Baselines))
	}
}
