// Population sweeps: a Matrix whose workload axis is sampled from the
// stochastic scenario engine (internal/workload/synth) instead of — or in
// addition to — the fixed suite proxies. The expansion consumes the
// plan's derived-seed machinery (the same splitmix64 derivation behind
// Plan.Seed) at the workload level: scenario i's seed depends only on the
// population identity, never on modes or configuration points, so every
// mechanism simulates the identical µop stream and the cross-mechanism
// differential invariants keep holding over sampled populations.
package exp

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/internal/workload/synth"
)

// Population declares a sampled workload axis.
type Population struct {
	// Space is the scenario distribution to sample from.
	Space synth.Space
	// Count is the number of seeded scenarios.
	Count int
	// BaseSeed roots the scenario seed sequence (synth.NthSeed); zero
	// selects the date-pinned synth.DefaultBaseSeed.
	BaseSeed uint64
}

// expand samples the population's scenarios in seed order.
func (pop Population) expand() ([]workload.Workload, []*synth.Params, error) {
	if pop.Count <= 0 {
		return nil, nil, fmt.Errorf("exp: population with non-positive count %d", pop.Count)
	}
	if err := pop.Space.Validate(); err != nil {
		return nil, nil, fmt.Errorf("exp: population space: %w", err)
	}
	base := pop.baseSeed()
	ws := make([]workload.Workload, 0, pop.Count)
	ps := make([]*synth.Params, 0, pop.Count)
	for i := 0; i < pop.Count; i++ {
		sc, err := pop.Space.Sample(synth.NthSeed(base, i))
		if err != nil {
			return nil, nil, fmt.Errorf("exp: population scenario %d: %w", i, err)
		}
		params := sc.Params
		ws = append(ws, sc.Workload())
		ps = append(ps, &params)
	}
	return ws, ps, nil
}

// baseSeed returns the effective base seed (BaseSeed or the default).
func (pop Population) baseSeed() uint64 {
	if pop.BaseSeed == 0 {
		return synth.DefaultBaseSeed
	}
	return pop.BaseSeed
}

// PopulationStat summarizes one mode's per-seed speedup distribution at
// one configuration point — the population answer to "how robust is this
// mechanism", where a single fixed suite only gives an anecdote.
type PopulationStat struct {
	// Mode is the summarized mechanism.
	Mode core.Mode
	// Count is the number of scenarios with a usable baseline and a
	// well-defined (positive, finite) speedup.
	Count int
	// Degenerate counts scenarios that had a baseline but produced a
	// non-positive or NaN speedup — typically a sampled seed whose
	// baseline commits essentially nothing inside the measurement
	// window. They are excluded from Min/Median/GeoMean instead of
	// panicking the aggregation.
	Degenerate int
	// Min, Median and GeoMean describe the speedup distribution over the
	// population.
	Min, Median, GeoMean float64
	// WorstSeed names the scenario (workload name, "s<seed>") with the
	// minimum speedup — the first place to look when a mechanism's tail
	// collapses.
	WorstSeed string
}

// SeedSpeedups returns one mode's per-scenario speedups at a point, in
// population order (only population workloads; empty without one).
func (s *Set) SeedSpeedups(pi, mi int) []float64 {
	var xs []float64
	for wi := range s.plan.workloads {
		if s.plan.synth[wi] == nil {
			continue
		}
		xs = append(xs, s.Speedup(pi, wi, mi))
	}
	return xs
}

// PopulationStats summarizes every mode's speedup distribution over the
// point's population scenarios. It returns nil when the plan has no
// population or the scenarios have no baselines.
func (s *Set) PopulationStats(pi int) []PopulationStat {
	out := make([]PopulationStat, 0, len(s.plan.m.Modes))
	for mi, mode := range s.plan.m.Modes {
		st := PopulationStat{Mode: mode}
		var xs []float64
		for wi := range s.plan.workloads {
			if s.plan.synth[wi] == nil {
				continue
			}
			if _, ok := s.Baseline(pi, wi); !ok {
				continue
			}
			sp := s.Speedup(pi, wi, mi)
			if sp <= 0 || math.IsNaN(sp) || math.IsInf(sp, 0) {
				st.Degenerate++
				continue
			}
			xs = append(xs, sp)
			if st.Count == 0 || sp < st.Min {
				st.Min = sp
				st.WorstSeed = s.plan.workloads[wi].Name
			}
			st.Count++
		}
		if st.Count == 0 && st.Degenerate == 0 {
			continue
		}
		st.Median = stats.Median(xs)
		st.GeoMean = stats.GeoMean(xs)
		out = append(out, st)
	}
	if len(out) == 0 {
		return nil
	}
	return out
}
