// CellKey: the exported, versioned, content-addressable identity of one
// deduplicated simulation. It is the same canonical identity Expand has
// always used internally to deduplicate runs (workload, window, energy
// model, canonical per-mode configuration), promoted to a public type so
// a persistent result cache (internal/serve/cache) can key on it — two
// runs with equal keys are guaranteed to produce equal Results, so a
// cache hit is substitutable for a simulation by construction.
//
// Stability contract: CellKey.String and CellKey.Hash are CACHE
// identities. Any change to their bytes — a canonicalization tweak, a
// core.Config field addition, a format change — silently poisons every
// persisted cache entry unless KeyVersion is bumped alongside it. The
// golden-key tests (key_test.go) pin representative String/Hash/Seed
// values so such a change fails CI and forces a conscious bump.
package exp

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/fnv"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload/synth"
)

// KeyVersion identifies the CellKey canonicalization and layout. Bump it
// whenever the key bytes of an unchanged simulation would change (new
// core.Config fields, canonicalConfig table edits, format changes): the
// version is part of the key string, so a bump invalidates every
// persisted cache entry at once instead of silently aliasing old results
// onto new semantics. It is versioned alongside SchemaVersion — the
// schema version is baked into the key too, because the cached payload
// is a schema-shaped Result.
const KeyVersion = 1

// CellKey is the canonical identity of one unique simulation run.
// Build one with CellKeyFor; the zero value is not a valid key.
type CellKey struct {
	// Workload is the workload's report name (a suite proxy like "mcf",
	// or a synth scenario name like "s1a2b3c4d5e6f708").
	Workload string
	// SynthParams is the canonical JSON of the sampled scenario
	// parameters, or "" for fixed workloads. Scenario names alone do not
	// identify the generator across sampling spaces (two spaces can
	// sample the same seed), so the full parameters are part of the
	// cache identity.
	SynthParams string
	// WarmupUops and MeasureUops are the simulation window.
	WarmupUops, MeasureUops int64
	// Energy is the canonical energy-model identity ("default" or the
	// rendered override parameters).
	Energy string
	// Config is the canonical configuration: every knob the mode does
	// not read has been zeroed (see canonicalConfig), so configurations
	// that cannot produce different Results fingerprint identically.
	Config core.Config
}

// CellKeyFor builds the canonical key of one (workload, options, config)
// simulation. params carries the sampled synth scenario parameters for
// population workloads and must be nil for fixed workloads. The config is
// canonicalized here; callers pass the fully-applied configuration.
func CellKeyFor(workloadName string, params *synth.Params, opt sim.Options, cfg core.Config) CellKey {
	energy := "default"
	if opt.Energy != nil {
		energy = fmt.Sprintf("%+v", *opt.Energy)
	}
	sp := ""
	if params != nil {
		// Params is plain data (strings, ints, slices of structs of the
		// same); Marshal cannot fail on it, and Go's encoding/json emits
		// struct fields in declaration order, so the bytes are canonical.
		b, err := json.Marshal(params)
		if err != nil {
			panic(fmt.Sprintf("exp: synth params unmarshalable: %v", err))
		}
		sp = string(b)
	}
	return CellKey{
		Workload:    workloadName,
		SynthParams: sp,
		WarmupUops:  opt.WarmupUops,
		MeasureUops: opt.MeasureUops,
		Energy:      energy,
		Config:      canonicalConfig(cfg),
	}
}

// seedKey renders the key in the pre-export runKey layout. These bytes
// are FROZEN: per-run seeds (Plan.Seed, the "seed" field of every cell
// in the results JSON) are derived by hashing exactly this string, and
// the results JSON is covered by the byte-identical golden contract.
// New identity components (KeyVersion, SchemaVersion, SynthParams) live
// only in String, never here.
func (k CellKey) seedKey() string {
	return fmt.Sprintf("w=%s|warm=%d|meas=%d|energy=%s|cfg=%+v",
		k.Workload, k.WarmupUops, k.MeasureUops, k.Energy, k.Config)
}

// String renders the full versioned cache identity. Two runs with equal
// strings produce equal Results; the converse direction (unequal strings
// for runs that would differ) is what canonicalConfig and the
// golden-key tests guard.
func (k CellKey) String() string {
	return fmt.Sprintf("cellkey/v%d|schema=%d|synth=%s|%s",
		KeyVersion, SchemaVersion, k.SynthParams, k.seedKey())
}

// Hash returns the hex SHA-256 of String — the content address used as
// the persistent store's filename and the in-memory cache's map key.
func (k CellKey) Hash() string {
	sum := sha256.Sum256([]byte(k.String()))
	return hex.EncodeToString(sum[:])
}

// Seed derives the run's deterministic seed from its identity: an FNV-1a
// hash of the frozen seed-key bytes pushed through a splitmix64
// finalizer. Seeds are stable across worker counts, process runs, and
// plan rebuilds; they are serialized into the results JSON, so this
// derivation is part of the byte-identical contract.
func (k CellKey) Seed() uint64 {
	h := fnv.New64a()
	h.Write([]byte(k.seedKey()))
	z := h.Sum64() + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
