package exp

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/uarch"
	"repro/internal/workload"
)

// TestRunOptsProgressAndCellTiming pins the sweep-telemetry contract:
// one serialized progress event per unique run with a monotone Done
// counter, and per-cell wall-clock aggregates that survive the meta.json
// round trip.
func TestRunOptsProgressAndCellTiming(t *testing.T) {
	m := Matrix{
		Name:      "progress",
		Workloads: testWorkloads(t),
		Modes:     []core.Mode{core.ModeOoO, core.ModePRE},
		Options:   testOpt(),
	}
	plan, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	var events []ProgressEvent
	set, err := plan.RunOpts(RunOptions{
		Workers:  2,
		Progress: func(ev ProgressEvent) { events = append(events, ev) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != plan.NumUnique() {
		t.Fatalf("got %d progress events, want %d", len(events), plan.NumUnique())
	}
	for i, ev := range events {
		if ev.Done != i+1 {
			t.Errorf("event %d: Done = %d, want %d (serialization broken?)", i, ev.Done, i+1)
		}
		if ev.Total != plan.NumUnique() {
			t.Errorf("event %d: Total = %d, want %d", i, ev.Total, plan.NumUnique())
		}
		if ev.Workload == "" || ev.Seconds < 0 {
			t.Errorf("event %d incomplete: %+v", i, ev)
		}
		if i > 0 && ev.ElapsedSeconds < events[i-1].ElapsedSeconds {
			t.Errorf("event %d: elapsed went backwards (%v -> %v)",
				i, events[i-1].ElapsedSeconds, ev.ElapsedSeconds)
		}
	}

	meta := set.Meta()
	if meta.CellSecondsMin < 0 || meta.CellSecondsMin > meta.CellSecondsMedian ||
		meta.CellSecondsMedian > meta.CellSecondsMax {
		t.Errorf("cell timing aggregates out of order: %+v", meta)
	}
	if meta.CellSecondsTotal < meta.CellSecondsMax {
		t.Errorf("total %v < max %v", meta.CellSecondsTotal, meta.CellSecondsMax)
	}
	if meta.WorkerUtilization <= 0 {
		t.Errorf("worker utilization not recorded: %+v", meta)
	}

	dir := t.TempDir()
	if err := set.WriteFile(dir, "prog"); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "prog.meta.json"))
	if err != nil {
		t.Fatal(err)
	}
	var got RunMeta
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got.CellSecondsMedian != meta.CellSecondsMedian ||
		got.CellSecondsMax != meta.CellSecondsMax ||
		got.WorkerUtilization != meta.WorkerUtilization {
		t.Errorf("meta.json round trip lost cell timing:\nwrote %+v\nread  %+v", meta, got)
	}
}

// panicGen is a generator that blows up mid-stream: the proxy for a bug
// in a sampled scenario's parameterization.
type panicGen struct{ n int }

func (g *panicGen) Name() string { return "panicker" }
func (g *panicGen) Next(u *uarch.Uop) {
	g.n++
	if g.n > 100 {
		panic("generator wedged")
	}
	*u = uarch.Uop{Class: uarch.ClassIntAlu, PC: 0x400000}
}

// TestRunOptsPanicNamesCell verifies a panicking cell surfaces as an
// error naming the workload, mode, and seed instead of killing the pool
// namelessly.
func TestRunOptsPanicNamesCell(t *testing.T) {
	bad := workload.Workload{
		Name:  "panicker",
		Class: "custom",
		New:   func() trace.Generator { return &panicGen{} },
	}
	m := Matrix{
		Name:      "panic",
		Workloads: []workload.Workload{bad},
		Modes:     []core.Mode{core.ModeOoO},
		Options:   testOpt(),
	}
	plan, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	_, err = plan.Run(1)
	if err == nil {
		t.Fatal("panicking cell did not surface as an error")
	}
	for _, want := range []string{`workload "panicker"`, "mode OoO", "panicked", "generator wedged"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

// TestRunOptsTraceRecorders verifies per-unique-run recorders: every run
// gets its own pid track, PRE runs record episodes, and the merged
// sidecar parses with one process entry per run.
func TestRunOptsTraceRecorders(t *testing.T) {
	m := Matrix{
		Name:      "traced",
		Workloads: testWorkloads(t)[:1],
		Modes:     []core.Mode{core.ModeOoO, core.ModePRE},
		Options:   testOpt(),
	}
	plan, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	set, err := plan.RunOpts(RunOptions{Workers: 2, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	recs := set.TraceRecorders()
	if len(recs) != plan.NumUnique() {
		t.Fatalf("got %d recorders, want %d", len(recs), plan.NumUnique())
	}
	episodes := 0
	for i, r := range recs {
		if r == nil {
			t.Fatalf("recorder %d is nil", i)
		}
		episodes += r.Episodes()
	}
	if episodes == 0 {
		t.Error("no recorder captured a runahead episode (PRE run traced nothing)")
	}

	path := filepath.Join(t.TempDir(), "sweep.trace.json")
	if err := set.WriteTrace(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Pid int `json:"pid"`
		} `json:"traceEvents"`
		Processes []struct {
			Pid  int    `json:"pid"`
			Name string `json:"name"`
		} `json:"processes"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("merged sidecar is not valid JSON: %v", err)
	}
	if len(doc.Processes) != plan.NumUnique() {
		t.Errorf("merged trace has %d process entries, want %d", len(doc.Processes), plan.NumUnique())
	}

	// A set run without Trace exposes no recorders and refuses WriteTrace.
	bare, err := plan.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if bare.TraceRecorders() != nil {
		t.Error("untraced set exposes recorders")
	}
	if err := bare.WriteTrace(path); err == nil {
		t.Error("WriteTrace on an untraced set did not error")
	}
}
