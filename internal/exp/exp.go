// Package exp is the parallel experiment orchestrator: it expands
// (workload x mode x config-point) cross-products into a deduplicated run
// list, executes the unique runs on a worker pool sharded across the
// host's cores, and aggregates speedups over shared baselines.
//
// The package industrializes the design-space sweeps behind the paper's
// evaluation (Figures 2-7, ablations A1-A3). Its contract is
// determinism: a given Matrix produces byte-identical results JSON (see
// Set.WriteJSON) at any worker count, because
//
//   - every simulation is single-threaded and replay-deterministic,
//   - each unique run writes only its own pre-allocated result slot,
//   - per-run seeds derive from the run's identity (workload, mode,
//     canonical config), never from scheduling order or time, and
//   - all output is emitted in expansion order, not completion order.
//
// Deduplication exploits mode-irrelevant configuration: an OoO baseline
// does not read SSTSize, so a seven-point SST sweep needs the baseline
// simulated once, not seven times. canonicalConfig encodes which knobs
// each mechanism actually reads; identical canonical configurations
// share one simulation.
package exp

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/exp/pool"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/workload"
	"repro/internal/workload/synth"
)

// Point is one configuration point of a sweep: a named override applied
// on top of the mode's default configuration (after Options.Configure).
// Apply sees the full configuration including Mode, so a point may
// condition on it (e.g. the E6 FreeExit ablation applies to ModeRA only).
type Point struct {
	// Name labels the point in reports and the results sink ("sst=256").
	Name string
	// Apply mutates the configuration; nil means the default point.
	Apply func(*core.Config)
}

// Matrix declares a full experiment: the cross-product of Points x
// Workloads x Modes, all simulated under the same measurement window.
type Matrix struct {
	// Name labels the experiment in the results sink.
	Name string
	// Workloads are the benchmarks to simulate.
	Workloads []workload.Workload
	// Modes are the mechanisms to compare.
	Modes []core.Mode
	// Points are the sweep's configuration points; empty means a single
	// default point.
	Points []Point
	// Population, when non-nil, appends Count seeded synthetic scenarios
	// sampled from Space to the workload axis — the stochastic complement
	// to the fixed Workloads list (either may be empty, not both).
	Population *Population
	// Options sets the warmup/measurement window. Options.Configure, if
	// non-nil, applies before each Point's Apply.
	Options sim.Options
	// Baseline is the speedup denominator mode. The zero value is
	// ModeOoO, the paper's baseline.
	Baseline core.Mode
	// AddBaseline forces a baseline run per (point, workload) even when
	// Baseline is not in Modes, so speedups are always computable.
	// Baseline runs added this way are extra unique runs, not cells.
	AddBaseline bool
}

// uniqueRun is one deduplicated simulation.
type uniqueRun struct {
	wi   int // index into Matrix.Workloads
	mode core.Mode
	cfg  core.Config // fully-applied configuration
	key  CellKey     // canonical identity (drives dedup, seeding, caching)
	seed uint64
}

// Plan is an expanded Matrix: the cell grid, the deduplicated run list,
// and the baseline wiring. Build one with Matrix.Expand, run it with
// Plan.Run.
type Plan struct {
	m      Matrix
	points []Point
	// workloads is the full workload axis: Matrix.Workloads plus the
	// expanded Population scenarios.
	workloads []workload.Workload
	// synth holds the sampled scenario parameters per workload (nil for
	// fixed workloads) — recorded per cell in the results document so any
	// population run is reproducible from the artifact alone.
	synth []*synth.Params
	// cells maps cell index (point-major, then workload, then mode) to a
	// unique-run index.
	cells []int
	// base maps (point, workload) to the baseline's unique-run index, or
	// -1 when no baseline is available.
	base   []int
	unique []uniqueRun
}

// Expand validates the matrix and builds the deduplicated run plan,
// sampling the Population scenarios (if any) onto the workload axis.
func (m Matrix) Expand() (*Plan, error) {
	workloads := append([]workload.Workload(nil), m.Workloads...)
	synthParams := make([]*synth.Params, len(workloads))
	if m.Population != nil {
		pws, pps, err := m.Population.expand()
		if err != nil {
			return nil, err
		}
		workloads = append(workloads, pws...)
		synthParams = append(synthParams, pps...)
	}
	if len(workloads) == 0 {
		return nil, fmt.Errorf("exp: matrix has no workloads")
	}
	if len(m.Modes) == 0 {
		return nil, fmt.Errorf("exp: matrix has no modes")
	}
	if m.Options.MeasureUops <= 0 {
		return nil, fmt.Errorf("exp: non-positive measurement window")
	}
	points := m.Points
	if len(points) == 0 {
		points = []Point{{Name: "default"}}
	}
	seenPoints := make(map[string]bool, len(points))
	for _, pt := range points {
		if pt.Name == "" {
			return nil, fmt.Errorf("exp: point with empty name")
		}
		if seenPoints[pt.Name] {
			return nil, fmt.Errorf("exp: duplicate point name %q", pt.Name)
		}
		seenPoints[pt.Name] = true
	}
	seenWs := make(map[string]bool, len(workloads))
	for _, w := range workloads {
		if seenWs[w.Name] {
			return nil, fmt.Errorf("exp: duplicate workload %q", w.Name)
		}
		seenWs[w.Name] = true
	}

	p := &Plan{
		m:         m,
		points:    points,
		workloads: workloads,
		synth:     synthParams,
		cells:     make([]int, 0, len(points)*len(workloads)*len(m.Modes)),
		base:      make([]int, 0, len(points)*len(workloads)),
	}
	index := make(map[string]int) // key -> unique index

	intern := func(wi int, mode core.Mode, pt Point) (int, error) {
		cfg := core.Default(mode)
		if m.Options.Configure != nil {
			m.Options.Configure(&cfg)
		}
		if pt.Apply != nil {
			pt.Apply(&cfg)
		}
		// Hooks must not switch mechanisms: the cell's mode is part of
		// the matrix identity.
		cfg.Mode = mode
		// The fidelity tier is a matrix-level request, applied after the
		// point hooks exactly like sim.Run applies Options.Fidelity — the
		// interned configuration must match what the run executes.
		if m.Options.Fidelity != core.FidelityExact {
			cfg.Fidelity = m.Options.Fidelity
		}
		if err := cfg.Validate(); err != nil {
			return 0, fmt.Errorf("exp: point %q, workload %q, mode %v: %w",
				pt.Name, p.workloads[wi].Name, mode, err)
		}
		key := CellKeyFor(p.workloads[wi].Name, p.synth[wi], m.Options, cfg)
		ks := key.String()
		if ui, ok := index[ks]; ok {
			return ui, nil
		}
		ui := len(p.unique)
		index[ks] = ui
		p.unique = append(p.unique, uniqueRun{
			wi: wi, mode: mode, cfg: cfg, key: key, seed: key.Seed(),
		})
		return ui, nil
	}

	baselineInModes := false
	for _, mode := range m.Modes {
		if mode == m.Baseline {
			baselineInModes = true
		}
	}
	for _, pt := range points {
		for wi := range p.workloads {
			for _, mode := range m.Modes {
				ui, err := intern(wi, mode, pt)
				if err != nil {
					return nil, err
				}
				p.cells = append(p.cells, ui)
			}
			switch {
			case baselineInModes, m.AddBaseline:
				ui, err := intern(wi, m.Baseline, pt)
				if err != nil {
					return nil, err
				}
				p.base = append(p.base, ui)
			default:
				p.base = append(p.base, -1)
			}
		}
	}
	return p, nil
}

// NumCells returns the number of matrix cells (points x workloads x modes).
func (p *Plan) NumCells() int { return len(p.cells) }

// NumUnique returns the number of deduplicated simulations the plan will
// actually run; the difference from NumCells (plus implicit baselines) is
// work saved by shared-baseline caching.
func (p *Plan) NumUnique() int { return len(p.unique) }

// Points returns the plan's point labels in expansion order.
func (p *Plan) Points() []string {
	names := make([]string, len(p.points))
	for i, pt := range p.points {
		names[i] = pt.Name
	}
	return names
}

// Workloads returns the plan's full workload axis — the matrix's fixed
// workloads followed by the expanded population scenarios.
func (p *Plan) Workloads() []workload.Workload {
	return append([]workload.Workload(nil), p.workloads...)
}

// SynthParams returns the sampled scenario parameters of workload wi, or
// nil for a fixed (non-population) workload.
func (p *Plan) SynthParams(wi int) *synth.Params { return p.synth[wi] }

// Seed returns the deterministic per-run seed of unique run ui. Seeds
// derive from the run's identity, so they are stable across worker
// counts, process runs, and plan rebuilds.
func (p *Plan) Seed(ui int) uint64 { return p.unique[ui].seed }

// Key returns the canonical cell key of unique run ui — the identity a
// content-addressed result cache stores the run's Result under.
func (p *Plan) Key(ui int) CellKey { return p.unique[ui].key }

// Run executes the plan's unique runs on a worker pool (workers <= 0
// selects one worker per CPU) and returns the completed result set. The
// first error in expansion order aborts the set. Execution-environment
// facts (wall-clock, pool width) are recorded on the set's Meta, NOT in
// the results document — they vary run to run, and the results JSON must
// stay byte-identical at any worker count.
func (p *Plan) Run(workers int) (*Set, error) {
	return p.RunOpts(RunOptions{Workers: workers})
}

// ProgressEvent describes one completed unique run, delivered to
// RunOptions.Progress as the sweep advances.
type ProgressEvent struct {
	// Done is the number of unique runs completed so far (including this
	// one); Total is the plan's unique-run count.
	Done, Total int
	// Workload and Mode identify the run that just finished.
	Workload string
	Mode     core.Mode
	// Seconds is the run's own wall-clock; ElapsedSeconds is the time
	// since Plan execution started.
	Seconds        float64
	ElapsedSeconds float64
	// Cached marks runs satisfied by RunOptions.Lookup instead of a
	// fresh simulation.
	Cached bool
}

// RunOptions extends Plan.Run with telemetry: a progress callback and
// per-run trace recording. The zero value behaves exactly like
// Plan.Run(0).
type RunOptions struct {
	// Workers is the pool width (<= 0 selects one worker per CPU).
	Workers int
	// Progress, when non-nil, is invoked once per completed unique run.
	// Invocations are serialized (never concurrent) but arrive in
	// completion order, which varies with scheduling — Progress must not
	// feed anything covered by the determinism contract.
	Progress func(ProgressEvent)
	// Trace attaches one telemetry recorder per unique run (pid = the
	// run's unique index, so every run gets its own track group in the
	// merged trace). Recorders are never shared across pool workers, so
	// tracing adds no synchronization to the runs themselves.
	Trace bool
	// Context, when non-nil, cancels the run: unique runs that have not
	// started when the context is cancelled are skipped, and RunOpts
	// returns a clean error wrapping ctx.Err() instead of partial
	// results. In-flight simulations run to completion (the core has no
	// preemption point), so cancellation latency is bounded by the
	// longest single cell, never by the whole plan.
	Context context.Context
	// Lookup, when non-nil, is consulted with each unique run's CellKey
	// before simulating; returning (r, true) substitutes r for the
	// simulation. Two runs with equal keys produce equal Results, so a
	// correct cache is observationally identical to a cold run — the
	// byte-identical results contract holds either way, which is what
	// makes cached sweeps verifiable.
	Lookup func(CellKey) (sim.Result, bool)
	// Store, when non-nil, receives each freshly simulated (non-cached,
	// non-failed) result keyed by its CellKey. Calls may be concurrent;
	// the store synchronizes internally.
	Store func(CellKey, sim.Result)
}

// RunOpts executes the plan like Run, with progress and trace telemetry.
//
//sim:wallclock timings land only in RunMeta (the meta.json sidecar) and progress events, never in results JSON
func (p *Plan) RunOpts(opts RunOptions) (*Set, error) {
	start := time.Now()
	res := make([]sim.Result, len(p.unique))
	errs := make([]error, len(p.unique))
	secs := make([]float64, len(p.unique))
	var recs []*telemetry.Recorder
	if opts.Trace {
		recs = make([]*telemetry.Recorder, len(p.unique))
		for i, u := range p.unique {
			recs[i] = telemetry.NewRecorderPid(
				fmt.Sprintf("%s/%s", p.workloads[u.wi].Name, u.mode), i)
		}
	}
	var mu sync.Mutex
	done := 0
	cacheHits := 0
	pool.Run(len(p.unique), opts.Workers, func(i int) {
		// Cells that have not started under a cancelled context are
		// skipped (never simulated, no progress event); the post-run
		// check below folds them into one clean cancellation error.
		// In-flight cells run to completion — the core has no preemption
		// point — so cancellation latency is one cell, not the plan.
		if opts.Context != nil && opts.Context.Err() != nil {
			errs[i] = opts.Context.Err()
			return
		}
		u := p.unique[i]
		cellStart := time.Now()
		cached := false
		// The deferred block must run on the worker goroutine itself:
		// it converts a panicking cell into an error that names the cell
		// (instead of killing the whole process nameless) and reports
		// the cell's completion.
		defer func() {
			if r := recover(); r != nil {
				errs[i] = fmt.Errorf("exp: workload %q mode %v (point seed %016x) panicked: %v",
					p.workloads[u.wi].Name, u.mode, u.seed, r)
			}
			secs[i] = time.Since(cellStart).Seconds()
			if opts.Progress != nil {
				mu.Lock()
				done++
				opts.Progress(ProgressEvent{
					Done:           done,
					Total:          len(p.unique),
					Workload:       p.workloads[u.wi].Name,
					Mode:           u.mode,
					Seconds:        secs[i],
					ElapsedSeconds: time.Since(start).Seconds(),
					Cached:         cached,
				})
				mu.Unlock()
			}
		}()
		if opts.Lookup != nil {
			if r, ok := opts.Lookup(u.key); ok {
				res[i] = r
				cached = true
				mu.Lock()
				cacheHits++
				mu.Unlock()
				return
			}
		}
		opt := p.m.Options
		cfg := u.cfg
		opt.Configure = func(c *core.Config) { *c = cfg }
		if recs != nil {
			opt.Trace = recs[i]
		}
		res[i], errs[i] = sim.Run(p.workloads[u.wi], u.mode, opt)
		if errs[i] == nil && opts.Store != nil {
			opts.Store(u.key, res[i])
		}
	})
	for _, err := range errs {
		if err != nil {
			// A cancelled context reads as one clean job-level error, not
			// whichever per-cell ctx.Err() happened to land first.
			if ctx := opts.Context; ctx != nil && ctx.Err() != nil {
				return nil, fmt.Errorf("exp: run cancelled: %w", ctx.Err())
			}
			return nil, err
		}
	}
	meta := RunMeta{
		Schema:           SchemaVersion,
		Name:             p.m.Name,
		Fidelity:         p.m.Options.Fidelity.String(),
		WallClockSeconds: time.Since(start).Seconds(),
		Workers:          opts.Workers,
		EffectiveWorkers: pool.Effective(len(p.unique), opts.Workers),
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		UniqueRuns:       p.NumUnique(),
		TotalCells:       p.NumCells(),
		CacheHits:        cacheHits,
	}
	sorted := append([]float64(nil), secs...)
	sort.Float64s(sorted)
	for _, s := range sorted {
		meta.CellSecondsTotal += s
	}
	if n := len(sorted); n > 0 {
		meta.CellSecondsMin = sorted[0]
		meta.CellSecondsMedian = sorted[n/2]
		meta.CellSecondsMax = sorted[n-1]
	}
	// denom is zero for zero-cell plans (EffectiveWorkers 0) and can be
	// zero on coarse clocks when every cell was a cache hit; utilization
	// stays 0 then instead of dividing to NaN/Inf.
	if denom := meta.WallClockSeconds * float64(meta.EffectiveWorkers); denom > 0 {
		meta.WorkerUtilization = meta.CellSecondsTotal / denom
	}
	return &Set{plan: p, res: res, meta: meta, trace: recs}, nil
}

// Set holds a plan's completed results and the aggregation helpers every
// sweep frontend shares.
type Set struct {
	plan *Plan
	res  []sim.Result
	meta RunMeta
	// trace holds the per-unique-run telemetry recorders when the set was
	// produced with RunOptions.Trace; nil otherwise.
	trace []*telemetry.Recorder
}

// Meta returns the execution-environment record of the Run call that
// produced this set.
func (s *Set) Meta() RunMeta { return s.meta }

// TraceRecorders returns the per-unique-run telemetry recorders, indexed
// like the plan's unique runs, or nil when the set was run without
// RunOptions.Trace.
func (s *Set) TraceRecorders() []*telemetry.Recorder { return s.trace }

// Plan returns the plan this set was produced from.
func (s *Set) Plan() *Plan { return s.plan }

// cellIndex flattens (point, workload, mode) indices.
func (s *Set) cellIndex(pi, wi, mi int) int {
	nw, nm := len(s.plan.workloads), len(s.plan.m.Modes)
	return (pi*nw+wi)*nm + mi
}

// Result returns the simulation result of one matrix cell.
func (s *Set) Result(pi, wi, mi int) sim.Result {
	return s.res[s.plan.cells[s.cellIndex(pi, wi, mi)]]
}

// Baseline returns the baseline run shared by (point, workload), and
// whether one exists.
func (s *Set) Baseline(pi, wi int) (sim.Result, bool) {
	ui := s.plan.base[pi*len(s.plan.workloads)+wi]
	if ui < 0 {
		return sim.Result{}, false
	}
	return s.res[ui], true
}

// Speedup returns a cell's IPC normalized to its (point, workload)
// baseline, or 0 when no baseline exists.
func (s *Set) Speedup(pi, wi, mi int) float64 {
	base, ok := s.Baseline(pi, wi)
	if !ok {
		return 0
	}
	return s.Result(pi, wi, mi).Speedup(base)
}

// GeoMeanSpeedups returns, for one point, the geometric-mean speedup of
// each mode over the baseline across all workloads — the summary numbers
// of the paper's sweep figures. This is the aggregation cmd/sweep used to
// recompute inline. Workloads without a baseline are skipped; with no
// baselines at all every entry is 0.
func (s *Set) GeoMeanSpeedups(pi int) []float64 {
	out := make([]float64, len(s.plan.m.Modes))
	for mi := range s.plan.m.Modes {
		xs := make([]float64, 0, len(s.plan.workloads))
		for wi := range s.plan.workloads {
			if _, ok := s.Baseline(pi, wi); !ok {
				continue
			}
			xs = append(xs, s.Speedup(pi, wi, mi))
		}
		// Degenerate cells (0/NaN speedup from a near-empty baseline
		// window) are dropped rather than letting one sampled seed
		// panic the whole sweep summary.
		out[mi], _ = stats.GeoMeanPositive(xs)
	}
	return out
}

// Grid returns one point's results indexed [workload][mode] — the shape
// the report package consumes.
func (s *Set) Grid(pi int) [][]sim.Result {
	grid := make([][]sim.Result, len(s.plan.workloads))
	for wi := range grid {
		row := make([]sim.Result, len(s.plan.m.Modes))
		for mi := range row {
			row[mi] = s.Result(pi, wi, mi)
		}
		grid[wi] = row
	}
	return grid
}

// runKey renders the canonical identity of a fixed-workload simulation —
// a convenience over CellKeyFor for the dedup-equivalence tests. Two runs
// with equal keys are guaranteed to produce equal Results.
func runKey(workload string, opt sim.Options, cfg core.Config) string {
	return CellKeyFor(workload, nil, opt, cfg).String()
}

// canonicalConfig zeroes the runahead knobs the configuration's mode never
// reads, so configurations that differ only in mode-irrelevant knobs
// fingerprint identically and share one simulation. The table mirrors
// internal/core's per-mode knob usage (see runctl.go); exp's tests pin it
// empirically by asserting result equality across irrelevant knob values.
func canonicalConfig(cfg core.Config) core.Config {
	c := cfg
	type knobs struct {
		runaheadWidth, sst, prdq, emq, chain, minCycles, divergence, replay, freeExit bool
	}
	var keep knobs
	switch c.Mode {
	case core.ModeOoO:
		// The baseline reads none of the runahead machinery. The
		// PRE-aware prefetch filter is also inert here — it only drops
		// duplicates of runahead-tagged fills, which a baseline never
		// creates — so filtered and unfiltered variants share a baseline.
		c.Mem.RunaheadFilter = false
	case core.ModeRA:
		keep = knobs{minCycles: true, freeExit: true}
	case core.ModeRABuffer:
		// runctl.go's entry/exit paths read FreeExit for RA-buffer too;
		// Config.Validate currently restricts the knob to ModeRA, but the
		// dedup key must not depend on that staying true.
		keep = knobs{chain: true, minCycles: true, replay: true, freeExit: true}
	case core.ModePRE:
		keep = knobs{runaheadWidth: true, sst: true, prdq: true, divergence: true}
	case core.ModePREEMQ:
		keep = knobs{runaheadWidth: true, sst: true, prdq: true, emq: true, divergence: true}
	default:
		return c // unknown mode: keep everything, dedup conservatively
	}
	if !keep.runaheadWidth {
		c.RunaheadWidth = 0
	}
	if !keep.sst {
		c.SSTSize = 0
	}
	if !keep.prdq {
		c.PRDQSize = 0
	}
	if !keep.emq {
		c.EMQSize = 0
	}
	if !keep.chain {
		c.ChainMaxLen = 0
	}
	if !keep.minCycles {
		c.MinRunaheadCycles = 0
	}
	if !keep.divergence {
		c.PREMaxDivergence = 0
	}
	if !keep.replay {
		c.ReplayLookahead = 0
	}
	if !keep.freeExit {
		c.FreeExit = false
	}
	// Fidelity folding: the core only builds the fast tier's chain cache
	// for runahead modes without FreeExit (see core.New), so OoO and
	// FreeExit cells produce byte-identical results in either tier and must
	// dedup together. Everywhere else the tier changes results and stays in
	// the key; the chain-cache size is only read by the fast tier.
	if c.Mode == core.ModeOoO || c.FreeExit {
		c.Fidelity = core.FidelityExact
	}
	if c.Fidelity != core.FidelityFastRunahead {
		c.ChainCacheSize = 0
	}
	return c
}
