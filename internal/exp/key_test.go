package exp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload/synth"
)

// goldenKeys pin the CellKey stability contract: String/Hash are cache
// identities and Seed is serialized into the byte-identical results
// JSON, so a silent change to any of them either poisons every persisted
// cache entry or breaks the golden results. If this test fails because
// you changed what a key covers ON PURPOSE (new core.Config field,
// canonicalConfig table edit, layout change), bump KeyVersion, update
// the pinned hashes here, and note the bump in the PR — cached results
// from older versions are then correctly treated as misses. The seeds
// must NEVER change: they are part of the results-JSON byte contract
// (CellKey.seedKey is frozen independently of String).
func goldenKeyCases(t *testing.T) []struct {
	name string
	key  CellKey
} {
	t.Helper()
	opt := sim.Options{WarmupUops: 50_000, MeasureUops: 300_000}
	preCfg := core.Default(core.ModePRE)
	preCfg.SSTSize = 128
	sc, err := synth.DefaultSpace().Sample(synth.NthSeed(synth.DefaultBaseSeed, 0))
	if err != nil {
		t.Fatalf("sampling default-space scenario 0: %v", err)
	}
	params := sc.Params
	return []struct {
		name string
		key  CellKey
	}{
		{"fixed/ooo", CellKeyFor("libquantum", nil, opt, core.Default(core.ModeOoO))},
		{"fixed/pre", CellKeyFor("mcf", nil, opt, preCfg)},
		{"synth/ra", CellKeyFor(sc.Name(), &params, opt, core.Default(core.ModeRA))},
	}
}

func TestCellKeyGoldenHashes(t *testing.T) {
	want := map[string]struct{ hash, seed string }{
		"fixed/ooo": {"bbabbb953f495aeb1cfe3786afb4aa7ff9a61a6615789268e00d72fde2cb829d", "097abf951bd06fb1"},
		"fixed/pre": {"1d898373ec413518164fcfae1bc61f16f42a1c0583f32cde27384f00f82c85ce", "fa05a489a2371bd5"},
		"synth/ra":  {"7e3d9013a22ea0110b5ef4b49f4d6271fcd2e6a41bd57ae15a5dbcfb2d979775", "5db03120e06adac6"},
	}
	for _, c := range goldenKeyCases(t) {
		name, k := c.name, c.key
		if got := k.Hash(); got != want[name].hash {
			t.Errorf("%s: Hash() = %s, golden %s\nkey string: %s\n(cache identity changed — if intentional, bump exp.KeyVersion and repin)",
				name, got, want[name].hash, k.String())
		}
		if got := fmt.Sprintf("%016x", k.Seed()); got != want[name].seed {
			t.Errorf("%s: Seed() = %s, golden %s — seeds are serialized in results JSON and must never change",
				name, got, want[name].seed)
		}
	}
}

// The key string must carry its own version and the schema version, so a
// persistent store can never alias entries across either.
func TestCellKeyStringIsVersioned(t *testing.T) {
	for _, c := range goldenKeyCases(t) {
		name, k := c.name, c.key
		prefix := fmt.Sprintf("cellkey/v%d|schema=%d|", KeyVersion, SchemaVersion)
		if !strings.HasPrefix(k.String(), prefix) {
			t.Errorf("%s: String() %q lacks version prefix %q", name, k.String(), prefix)
		}
	}
}

// Synth parameters must be part of the cache identity: two spaces can
// sample the same seed, giving two scenarios with the same NAME but
// different generators. The in-matrix dedup never sees this (duplicate
// workload names are rejected), but a cross-job cache would.
func TestCellKeyDistinguishesSynthParams(t *testing.T) {
	opt := sim.Options{WarmupUops: 5_000, MeasureUops: 20_000}
	seed := synth.NthSeed(synth.DefaultBaseSeed, 1)
	a, err := synth.DefaultSpace().Sample(seed)
	if err != nil {
		t.Fatal(err)
	}
	b, err := synth.FrontEndSpace().Sample(seed)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != b.Name() {
		t.Fatalf("same seed should give same scenario name, got %q vs %q", a.Name(), b.Name())
	}
	pa, pb := a.Params, b.Params
	cfg := core.Default(core.ModeOoO)
	ka := CellKeyFor(a.Name(), &pa, opt, cfg)
	kb := CellKeyFor(b.Name(), &pb, opt, cfg)
	if ka.String() == kb.String() || ka.Hash() == kb.Hash() {
		t.Errorf("scenarios from different spaces share a cache key: %s", ka.Hash())
	}
	// The seed derivation deliberately ignores synth params (it predates
	// them and is frozen), so the per-run seeds still match — the cache
	// key is strictly finer than the seed key.
	if ka.Seed() != kb.Seed() {
		t.Errorf("seed derivation must not depend on synth params (frozen contract)")
	}
}

// Expand's dedup and seeding must agree with the exported key type: every
// unique run's Plan.Key reproduces Plan.Seed, and keys are unique.
func TestExpandKeysConsistent(t *testing.T) {
	m := Matrix{
		Name:      "keys",
		Workloads: testWorkloads(t),
		Modes:     []core.Mode{core.ModeOoO, core.ModePRE},
		Options:   testOpt(),
	}
	plan, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for ui := 0; ui < plan.NumUnique(); ui++ {
		k := plan.Key(ui)
		if k.Seed() != plan.Seed(ui) {
			t.Errorf("unique %d: Key().Seed() %016x != Plan.Seed %016x", ui, k.Seed(), plan.Seed(ui))
		}
		if seen[k.Hash()] {
			t.Errorf("unique %d: duplicate key hash %s", ui, k.Hash())
		}
		seen[k.Hash()] = true
	}
}

// A Lookup that hits on every key must substitute for simulation: the
// run completes without ever calling sim.Run (the fake results come
// back verbatim), Store never fires, progress events carry Cached, and
// the meta aggregates stay finite (no divide-by-zero on the ~zero
// wall-clock, zero-effective-worker edge the cache exposes).
func TestRunOptsLookupSubstitutesSimulation(t *testing.T) {
	m := Matrix{
		Name:      "cached",
		Workloads: testWorkloads(t)[:1],
		Modes:     []core.Mode{core.ModeOoO, core.ModePRE},
		Options:   testOpt(),
	}
	plan, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	var stores atomic.Int64
	var cachedEvents atomic.Int64
	fake := func(k CellKey) sim.Result {
		return sim.Result{Workload: k.Workload, Mode: k.Config.Mode, IPC: 1.5, Cycles: 42}
	}
	set, err := plan.RunOpts(RunOptions{
		Workers: 2,
		Lookup:  func(k CellKey) (sim.Result, bool) { return fake(k), true },
		Store:   func(CellKey, sim.Result) { stores.Add(1) },
		Progress: func(ev ProgressEvent) {
			if ev.Cached {
				cachedEvents.Add(1)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if stores.Load() != 0 {
		t.Errorf("Store fired %d times on an all-hit run", stores.Load())
	}
	if got, want := int(cachedEvents.Load()), plan.NumUnique(); got != want {
		t.Errorf("cached progress events = %d, want %d", got, want)
	}
	meta := set.Meta()
	if meta.CacheHits != plan.NumUnique() {
		t.Errorf("meta.CacheHits = %d, want %d", meta.CacheHits, plan.NumUnique())
	}
	for _, mv := range []struct {
		name string
		v    float64
	}{
		{"worker_utilization", meta.WorkerUtilization},
		{"cell_seconds_median", meta.CellSecondsMedian},
	} {
		if math.IsNaN(mv.v) || math.IsInf(mv.v, 0) {
			t.Errorf("meta.%s = %v on an all-cached run; must stay finite", mv.name, mv.v)
		}
	}
	if r := set.Result(0, 0, 0); r.Cycles != 42 {
		t.Errorf("cached result not substituted: %+v", r)
	}
}

// Zero-length run lists must not divide by zero anywhere in the meta
// aggregation (median indexing, worker utilization). A zero-cell plan
// cannot come out of Expand today, but the serve layer's cache seam gets
// arbitrarily close (every cell a ~0s hit), so the math is pinned here
// against the literal empty plan.
func TestRunOptsZeroCellPlanMeta(t *testing.T) {
	p := &Plan{m: Matrix{Name: "empty", Options: testOpt()}}
	set, err := p.RunOpts(RunOptions{Workers: 4})
	if err != nil {
		t.Fatalf("zero-cell run: %v", err)
	}
	meta := set.Meta()
	if meta.EffectiveWorkers != 0 || meta.UniqueRuns != 0 {
		t.Errorf("zero-cell meta inconsistent: %+v", meta)
	}
	if math.IsNaN(meta.WorkerUtilization) || math.IsInf(meta.WorkerUtilization, 0) {
		t.Errorf("worker_utilization = %v for a zero-cell plan; want 0", meta.WorkerUtilization)
	}
}

// A cancelled context must surface as one clean wrapped error from
// RunOpts — promptly, not after simulating the rest of the plan, and
// never as a hang.
func TestRunOptsContextCancellation(t *testing.T) {
	m := Matrix{
		Name:      "cancel",
		Workloads: testWorkloads(t),
		Modes:     core.Modes(),
		Options:   testOpt(),
	}
	plan, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}

	// Already-cancelled context: nothing simulates, the error is clean.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now() //sim:wallclock cancellation-latency bound for the test only
	if _, err := plan.RunOpts(RunOptions{Workers: 2, Context: ctx}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled run: err = %v, want context.Canceled", err)
	}
	//sim:wallclock cancellation-latency bound for the test only
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("pre-cancelled run took %v; should return almost immediately", elapsed)
	}

	// Mid-run cancellation via the progress hook: the first completed
	// cell cancels; queued cells are skipped.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	_, err = plan.RunOpts(RunOptions{
		Workers:  1,
		Context:  ctx2,
		Progress: func(ProgressEvent) { cancel2() },
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancel: err = %v, want context.Canceled", err)
	}
}
