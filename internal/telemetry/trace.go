// Package telemetry is the simulator's zero-cost-when-off observability
// layer: a cycle-level trace recorder that serializes timeline events —
// runahead episodes, full-window stall spans, cycle-skip jumps, prefetch
// trains, throttle decisions — as Chrome trace_event JSON (loadable in
// Perfetto / chrome://tracing), and a hierarchical metrics registry that
// unifies the counters scattered across core.Stats, the memory hierarchy
// and the runahead structures into named, snapshotable series.
//
// Everything here is sidecar-only: attaching a Recorder never perturbs
// simulation results (the telemetry differential test pins the results
// JSON byte-identical with tracing on or off), and a detached simulation
// pays only a nil pointer check per hook site — the hooks are concrete
// *Recorder fields, never interfaces, so the disabled path stays on the
// core's zero-allocation contract (TestSteadyStateAllocs).
//
// Time convention: one simulated cycle maps to one trace microsecond
// (the trace_event "ts"/"dur" unit), so span lengths read directly as
// cycle counts in the viewer.
package telemetry

import (
	"encoding/json"
	"io"
	"os"

	"repro/internal/stats"
)

// Event is one Chrome trace_event entry. Complete spans use Ph "X" with
// Ts/Dur, instants use Ph "i", and metadata (process/thread names) uses
// Ph "M". Args marshal with sorted keys (encoding/json), so serialized
// traces are deterministic for a deterministic simulation.
type Event struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// Per-recorder track (thread) layout: one lane per event family so the
// viewer shows episodes, stalls, skips and memory events on separate rows.
const (
	tidEpisodes = 0 // runahead episode spans
	tidStalls   = 1 // full-window stall spans
	tidSkips    = 2 // cycle-skip jumps
	tidMem      = 3 // prefetch trains + throttle decisions
)

// Event categories (the "cat" field; CI greps for cat "runahead").
const (
	catRunahead = "runahead"
	catStall    = "stall"
	catSkip     = "skip"
	catPrefetch = "prefetch"
)

// Recorder captures one simulation's timeline. It is attached to a core
// (and its hierarchy) after warmup, collects events during the measured
// window, and is closed with Finish. Not safe for concurrent use: one
// Recorder observes exactly one single-threaded simulation (parallel
// sweeps use one Recorder per unique run, distinguished by pid).
type Recorder struct {
	name   string
	pid    int
	events []Event

	// Open runahead episode.
	epOpen      bool
	epStart     int64
	epPC        uint64
	epSeq       int64
	epMode      string
	epRemaining int64

	// Open full-window stall span ([stStart, stLast], inclusive cycles).
	stOpen          bool
	stStart, stLast int64

	episodes  int
	emulated  int
	skips     int
	trains    int
	throttles int
	finished  bool

	// Per-interval distributions, observed as spans close.
	epLen   *stats.Histogram // episode length, cycles
	pfSet   *stats.Histogram // prefetches issued per episode
	skipLen *stats.Histogram // cycle-skip jump length, cycles

	reg *Registry
}

// NewRecorder returns an empty recorder named for its run (pid 0).
func NewRecorder(name string) *Recorder { return NewRecorderPid(name, 0) }

// NewRecorderPid returns an empty recorder with an explicit trace pid —
// parallel sweeps give each unique run its own pid so a merged trace
// shows one process row per run.
func NewRecorderPid(name string, pid int) *Recorder {
	r := &Recorder{
		name:    name,
		pid:     pid,
		epLen:   stats.NewHistogram("trace-episode-cycles", 10, 20, 50, 100, 200, 400, 800, 1600),
		pfSet:   stats.NewHistogram("trace-episode-prefetches", 1, 2, 4, 8, 16, 32, 64, 128),
		skipLen: stats.NewHistogram("trace-skip-span-cycles", 16, 64, 256, 1024, 4096, 16384),
	}
	r.meta("process_name", -1, map[string]any{"name": name})
	for tid, tn := range map[int]string{
		tidEpisodes: "runahead episodes",
		tidStalls:   "full-window stalls",
		tidSkips:    "cycle skips",
		tidMem:      "memory system",
	} {
		r.meta("thread_name", tid, map[string]any{"name": tn})
	}
	return r
}

func (r *Recorder) meta(name string, tid int, args map[string]any) {
	ev := Event{Name: name, Ph: "M", Pid: r.pid, Args: args}
	if tid >= 0 {
		ev.Tid = tid
	}
	r.events = append(r.events, ev)
}

// Name returns the recorder's run label.
func (r *Recorder) Name() string { return r.name }

// Pid returns the recorder's trace process id.
func (r *Recorder) Pid() int { return r.pid }

// RunaheadEnter opens an episode span: the core entered runahead at
// cycle, triggered by the load at pc (sequence seq) with the given
// predicted remaining miss latency.
func (r *Recorder) RunaheadEnter(cycle int64, pc uint64, seq int64, mode string, remaining int64) {
	if r.epOpen {
		// Defensive: a lost exit must not corrupt the next span.
		r.closeEpisode(cycle, 0, 0, 0, true)
	}
	r.epOpen = true
	r.epStart = cycle
	r.epPC = pc
	r.epSeq = seq
	r.epMode = mode
	r.epRemaining = remaining
}

// RunaheadExit closes the open episode span at cycle, recording the
// episode's dispatched-µop, prefetch and INV deltas. An exit with no
// open episode (warmup entered runahead before the recorder attached) is
// ignored.
func (r *Recorder) RunaheadExit(cycle, uops, prefetches, inv int64) {
	if !r.epOpen {
		return
	}
	r.closeEpisode(cycle, uops, prefetches, inv, false)
}

func (r *Recorder) closeEpisode(cycle, uops, prefetches, inv int64, truncated bool) {
	dur := cycle - r.epStart
	args := map[string]any{
		"pc":            hex(r.epPC),
		"seq":           r.epSeq,
		"mode":          r.epMode,
		"stall_cause":   "full-window LLC miss",
		"remaining_lat": r.epRemaining,
		"uops":          uops,
		"prefetches":    prefetches,
		"inv":           inv,
	}
	if truncated {
		args["truncated"] = true
	}
	r.events = append(r.events, Event{
		Name: "runahead " + r.epMode, Cat: catRunahead, Ph: "X",
		Ts: r.epStart, Dur: dur, Pid: r.pid, Tid: tidEpisodes, Args: args,
	})
	r.epOpen = false
	r.episodes++
	r.epLen.Observe(dur)
	r.pfSet.Observe(prefetches)
}

// EmulatedEpisode marks a runahead episode the fast-runahead fidelity
// tier emulated from the chain cache instead of executing µop by µop: an
// instant on the episodes lane at the entry cycle, so Perfetto shows
// which episode spans were coarse. The matching span is still opened and
// closed by RunaheadEnter/RunaheadExit.
func (r *Recorder) EmulatedEpisode(cycle int64, pc uint64, predicted int) {
	r.events = append(r.events, Event{
		Name: "emulated episode", Cat: catRunahead, Ph: "i",
		Ts: cycle, Pid: r.pid, Tid: tidEpisodes, S: "t",
		Args: map[string]any{"pc": hex(pc), "predicted": predicted},
	})
	r.emulated++
}

// FullWindowStall accounts one full-window stall cycle. Contiguous stall
// cycles coalesce into one span; a gap closes the open span and starts a
// new one.
func (r *Recorder) FullWindowStall(cycle int64) { r.stallSpan(cycle, 1) }

// FullWindowStallN accounts n contiguous stall cycles starting at cycle —
// the bulk form the cycle skipper uses when it fast-forwards a stalled
// span.
func (r *Recorder) FullWindowStallN(cycle, n int64) { r.stallSpan(cycle, n) }

func (r *Recorder) stallSpan(cycle, n int64) {
	if n <= 0 {
		return
	}
	if r.stOpen && cycle <= r.stLast+1 {
		if last := cycle + n - 1; last > r.stLast {
			r.stLast = last
		}
		return
	}
	r.closeStall()
	r.stOpen = true
	r.stStart = cycle
	r.stLast = cycle + n - 1
}

func (r *Recorder) closeStall() {
	if !r.stOpen {
		return
	}
	r.events = append(r.events, Event{
		Name: "full-window stall", Cat: catStall, Ph: "X",
		Ts: r.stStart, Dur: r.stLast - r.stStart + 1, Pid: r.pid, Tid: tidStalls,
	})
	r.stOpen = false
}

// CycleSkip records one event-driven time jump of n cycles starting at
// cycle. kind distinguishes inert skips ("idle") from amortized retry
// spans ("retry").
func (r *Recorder) CycleSkip(cycle, n int64, kind string) {
	if n <= 0 {
		return
	}
	r.events = append(r.events, Event{
		Name: "skip " + kind, Cat: catSkip, Ph: "X",
		Ts: cycle, Dur: n, Pid: r.pid, Tid: tidSkips,
		Args: map[string]any{"cycles": n, "kind": kind},
	})
	r.skips++
	r.skipLen.Observe(n)
}

// PrefetchTrain records one hardware-prefetcher drain: the engine at
// level injected issued requests into the hierarchy at cycle.
func (r *Recorder) PrefetchTrain(cycle int64, level string, issued int) {
	r.events = append(r.events, Event{
		Name: "pf train " + level, Cat: catPrefetch, Ph: "i",
		Ts: cycle, Pid: r.pid, Tid: tidMem, S: "t",
		Args: map[string]any{"level": level, "issued": issued},
	})
	r.trains++
}

// Throttle records one per-epoch adaptive-degree feedback decision: the
// engine at level moved its effective degree from 'from' to 'to' given
// the epoch's lifetime accuracy. A degree of -1 means the engine does
// not report one.
func (r *Recorder) Throttle(cycle int64, level string, from, to int, accuracy float64) {
	r.events = append(r.events, Event{
		Name: "throttle " + level, Cat: catPrefetch, Ph: "i",
		Ts: cycle, Pid: r.pid, Tid: tidMem, S: "t",
		Args: map[string]any{"level": level, "from": from, "to": to, "accuracy": accuracy},
	})
	r.throttles++
}

// Finish closes any open spans at the end-of-measurement cycle and
// publishes the recorder's own distributions into its registry. Further
// events are not expected but not rejected.
func (r *Recorder) Finish(now int64) {
	if r.epOpen {
		r.closeEpisode(now, 0, 0, 0, true)
	}
	r.closeStall()
	if !r.finished {
		r.finished = true
		reg := r.Metrics()
		reg.Counter("trace/episodes", int64(r.episodes))
		reg.Counter("trace/emulated_episodes", int64(r.emulated))
		reg.Counter("trace/skips", int64(r.skips))
		reg.Counter("trace/pf_trains", int64(r.trains))
		reg.Counter("trace/throttle_decisions", int64(r.throttles))
		reg.Histogram("trace/episode_cycles", r.epLen)
		reg.Histogram("trace/episode_prefetches", r.pfSet)
		reg.Histogram("trace/skip_span_cycles", r.skipLen)
	}
}

// Episodes returns the number of closed runahead-episode spans.
func (r *Recorder) Episodes() int { return r.episodes }

// Events returns the recorded events (metadata included), in emission
// order. The returned slice is the recorder's own; callers must not
// mutate it.
func (r *Recorder) Events() []Event { return r.events }

// Metrics returns the recorder's registry, creating it on first use.
// Simulation components publish their counter snapshots here after the
// run (see core/mem PublishMetrics); the snapshot rides in the trace
// document's "metrics" block, which trace viewers ignore.
func (r *Recorder) Metrics() *Registry {
	if r.reg == nil {
		r.reg = NewRegistry()
	}
	return r.reg
}

// doc is the serialized single-recorder trace document. Viewers consume
// traceEvents and ignore the extra top-level keys.
type doc struct {
	TraceEvents     []Event   `json:"traceEvents"`
	DisplayTimeUnit string    `json:"displayTimeUnit"`
	Metrics         *Registry `json:"metrics,omitempty"`
}

// mergedDoc is the serialized multi-recorder document (one process per
// run; per-run metric snapshots keyed by pid).
type mergedDoc struct {
	TraceEvents     []Event          `json:"traceEvents"`
	DisplayTimeUnit string           `json:"displayTimeUnit"`
	Processes       []ProcessMetrics `json:"processes,omitempty"`
}

// ProcessMetrics pairs one merged run's identity with its metric
// snapshot.
type ProcessMetrics struct {
	Pid     int       `json:"pid"`
	Name    string    `json:"name"`
	Metrics *Registry `json:"metrics,omitempty"`
}

// WriteJSON serializes the recorder as one Chrome-trace JSON document.
func (r *Recorder) WriteJSON(w io.Writer) error {
	return writeDoc(w, doc{TraceEvents: r.events, DisplayTimeUnit: "ns", Metrics: r.reg})
}

// WriteFile writes the trace document to path.
func (r *Recorder) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteMerged serializes several recorders (e.g. one per unique sweep
// run) into a single trace document: each run appears as its own process
// row, and each run's metric snapshot rides in the "processes" block.
func WriteMerged(w io.Writer, recs []*Recorder) error {
	m := mergedDoc{DisplayTimeUnit: "ns"}
	for _, r := range recs {
		if r == nil {
			continue
		}
		m.TraceEvents = append(m.TraceEvents, r.events...)
		m.Processes = append(m.Processes, ProcessMetrics{Pid: r.pid, Name: r.name, Metrics: r.reg})
	}
	if m.TraceEvents == nil {
		m.TraceEvents = []Event{}
	}
	return writeDoc(w, m)
}

// WriteMergedFile writes the merged trace document to path.
func WriteMergedFile(path string, recs []*Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteMerged(f, recs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeDoc(w io.Writer, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// hex formats a PC the way disassembly listings do.
func hex(v uint64) string {
	const digits = "0123456789abcdef"
	buf := [18]byte{'0', 'x'}
	n := 2
	shift := 60
	started := false
	for ; shift >= 0; shift -= 4 {
		d := (v >> uint(shift)) & 0xf
		if d == 0 && !started && shift > 0 {
			continue
		}
		started = true
		buf[n] = digits[d]
		n++
	}
	return string(buf[:n])
}
