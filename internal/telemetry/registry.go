package telemetry

import (
	"encoding/json"
	"sort"

	"repro/internal/stats"
)

// Metric kinds.
const (
	KindCounter   = "counter"
	KindGauge     = "gauge"
	KindHistogram = "histogram"
)

// Metric is one named series snapshot. Counters carry Value, gauges
// Gauge, histograms Hist.
type Metric struct {
	Name  string        `json:"name"`
	Kind  string        `json:"kind"`
	Value int64         `json:"value"`
	Gauge float64       `json:"gauge,omitempty"`
	Hist  *HistSnapshot `json:"hist,omitempty"`
}

// HistSnapshot is a histogram's full state: bucket i covers
// [Bounds[i-1], Bounds[i]), with bucket 0 covering [0, Bounds[0]) and the
// final bucket [Bounds[last], inf).
type HistSnapshot struct {
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
	Min     int64   `json:"min"`
	Max     int64   `json:"max"`
	Bounds  []int64 `json:"bounds"`
	Buckets []int64 `json:"buckets"`
}

// SnapshotHistogram captures a stats.Histogram as a HistSnapshot.
func SnapshotHistogram(h *stats.Histogram) *HistSnapshot {
	s := &HistSnapshot{
		Count:  h.Count(),
		Sum:    h.Sum(),
		Min:    h.Min(),
		Max:    h.Max(),
		Bounds: h.Bounds(),
	}
	s.Buckets = make([]int64, h.NumBuckets())
	for i := range s.Buckets {
		s.Buckets[i] = h.Bucket(i)
	}
	return s
}

// Registry unifies the simulator's scattered counters into one named,
// hierarchical, snapshotable namespace ("core/runahead/entries",
// "mem/l1d/misses", "pf/l2/issued", ...). Publishing the same name again
// overwrites the previous snapshot — publishers run once, after the
// measured window, but re-publishing must stay idempotent. Not safe for
// concurrent use.
type Registry struct {
	idx map[string]int
	ms  []Metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{idx: make(map[string]int)}
}

func (r *Registry) put(m Metric) {
	if i, ok := r.idx[m.Name]; ok {
		r.ms[i] = m
		return
	}
	r.idx[m.Name] = len(r.ms)
	r.ms = append(r.ms, m)
}

// Counter publishes a monotonically-accumulated count.
func (r *Registry) Counter(name string, v int64) {
	r.put(Metric{Name: name, Kind: KindCounter, Value: v})
}

// Gauge publishes a point-in-time or derived value (means, fractions).
func (r *Registry) Gauge(name string, v float64) {
	r.put(Metric{Name: name, Kind: KindGauge, Gauge: v})
}

// Histogram publishes a full distribution snapshot.
func (r *Registry) Histogram(name string, h *stats.Histogram) {
	r.put(Metric{Name: name, Kind: KindHistogram, Value: h.Count(), Hist: SnapshotHistogram(h)})
}

// Get returns the metric registered under name.
func (r *Registry) Get(name string) (Metric, bool) {
	i, ok := r.idx[name]
	if !ok {
		return Metric{}, false
	}
	return r.ms[i], true
}

// Len returns the number of registered series.
func (r *Registry) Len() int { return len(r.ms) }

// Snapshot returns every metric sorted by name — the deterministic
// serialization order regardless of publication order.
func (r *Registry) Snapshot() []Metric {
	out := append([]Metric(nil), r.ms...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// MarshalJSON serializes the registry as its sorted snapshot array.
func (r *Registry) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.Snapshot())
}
