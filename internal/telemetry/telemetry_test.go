package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/stats"
)

// span extracts the recorder's Ph "X" events of one category.
func spans(r *Recorder, cat string) []Event {
	var out []Event
	for _, e := range r.Events() {
		if e.Ph == "X" && e.Cat == cat {
			out = append(out, e)
		}
	}
	return out
}

func TestEpisodeSpan(t *testing.T) {
	r := NewRecorder("w/PRE")
	r.RunaheadEnter(100, 0x400abc, 7, "PRE", 180)
	r.RunaheadExit(160, 42, 5, 1)
	eps := spans(r, catRunahead)
	if len(eps) != 1 {
		t.Fatalf("got %d episode spans, want 1", len(eps))
	}
	e := eps[0]
	if e.Ts != 100 || e.Dur != 60 {
		t.Errorf("span ts=%d dur=%d, want 100/60", e.Ts, e.Dur)
	}
	if e.Name != "runahead PRE" {
		t.Errorf("span name %q", e.Name)
	}
	want := map[string]any{"pc": "0x400abc", "uops": int64(42), "prefetches": int64(5), "inv": int64(1)}
	for k, v := range want {
		if e.Args[k] != v {
			t.Errorf("args[%q] = %v, want %v", k, e.Args[k], v)
		}
	}
	if r.Episodes() != 1 {
		t.Errorf("Episodes() = %d", r.Episodes())
	}
}

func TestExitWithoutEnterIgnored(t *testing.T) {
	// Warmup can enter runahead before the recorder attaches; the first
	// exit the recorder sees then has no matching enter.
	r := NewRecorder("w/RA")
	r.RunaheadExit(500, 10, 2, 0)
	if got := len(spans(r, catRunahead)); got != 0 {
		t.Fatalf("exit-without-enter emitted %d spans", got)
	}
	if r.Episodes() != 0 {
		t.Errorf("Episodes() = %d, want 0", r.Episodes())
	}
}

func TestDoubleEnterTruncates(t *testing.T) {
	r := NewRecorder("w/RA")
	r.RunaheadEnter(10, 0x1, 1, "RA", 50)
	r.RunaheadEnter(30, 0x2, 2, "RA", 60) // lost exit: close the first as truncated
	r.RunaheadExit(45, 9, 1, 0)
	eps := spans(r, catRunahead)
	if len(eps) != 2 {
		t.Fatalf("got %d spans, want 2", len(eps))
	}
	if eps[0].Args["truncated"] != true {
		t.Errorf("first span not marked truncated: %v", eps[0].Args)
	}
	if _, ok := eps[1].Args["truncated"]; ok {
		t.Errorf("second span wrongly truncated")
	}
}

func TestFinishTruncatesOpenSpans(t *testing.T) {
	r := NewRecorder("w/PRE")
	r.RunaheadEnter(10, 0x1, 1, "PRE", 50)
	r.FullWindowStall(12)
	r.Finish(20)
	eps := spans(r, catRunahead)
	if len(eps) != 1 || eps[0].Args["truncated"] != true {
		t.Fatalf("open episode not closed as truncated at Finish: %+v", eps)
	}
	sts := spans(r, catStall)
	if len(sts) != 1 {
		t.Fatalf("open stall span not closed at Finish")
	}
	// Finish is idempotent: a second call adds no events or metrics.
	n := len(r.Events())
	r.Finish(25)
	if len(r.Events()) != n {
		t.Errorf("second Finish grew the event list %d -> %d", n, len(r.Events()))
	}
}

func TestStallSpanCoalescing(t *testing.T) {
	r := NewRecorder("w/OoO")
	r.FullWindowStall(10)
	r.FullWindowStall(11)
	r.FullWindowStallN(12, 5) // contiguous bulk: extends to cycle 16
	r.FullWindowStall(30)     // gap: new span
	r.Finish(40)
	sts := spans(r, catStall)
	if len(sts) != 2 {
		t.Fatalf("got %d stall spans, want 2: %+v", len(sts), sts)
	}
	if sts[0].Ts != 10 || sts[0].Dur != 7 {
		t.Errorf("first span ts=%d dur=%d, want 10/7", sts[0].Ts, sts[0].Dur)
	}
	if sts[1].Ts != 30 || sts[1].Dur != 1 {
		t.Errorf("second span ts=%d dur=%d, want 30/1", sts[1].Ts, sts[1].Dur)
	}
}

func TestCycleSkipAndInstantEvents(t *testing.T) {
	r := NewRecorder("w/PRE")
	r.CycleSkip(100, 250, "idle")
	r.CycleSkip(400, 0, "retry") // non-positive: dropped
	r.PrefetchTrain(120, "l1d", 3)
	r.Throttle(500, "l2", 2, 1, 0.25)
	if got := spans(r, catSkip); len(got) != 1 || got[0].Dur != 250 {
		t.Fatalf("skip spans: %+v", got)
	}
	var instants []Event
	for _, e := range r.Events() {
		if e.Ph == "i" {
			instants = append(instants, e)
		}
	}
	if len(instants) != 2 {
		t.Fatalf("got %d instants, want 2", len(instants))
	}
	for _, e := range instants {
		if e.S != "t" {
			t.Errorf("instant %q scope %q, want \"t\"", e.Name, e.S)
		}
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	r := NewRecorder("libquantum/PRE")
	r.RunaheadEnter(10, 0x400, 1, "PRE", 100)
	r.RunaheadExit(80, 20, 4, 0)
	r.CycleSkip(90, 30, "idle")
	r.Finish(120)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents     []Event  `json:"traceEvents"`
		DisplayTimeUnit string   `json:"displayTimeUnit"`
		Metrics         []Metric `json:"metrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit %q", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) != len(r.Events()) {
		t.Errorf("round-trip lost events: %d vs %d", len(doc.TraceEvents), len(r.Events()))
	}
	names := map[string]bool{}
	for _, m := range doc.Metrics {
		names[m.Name] = true
	}
	for _, want := range []string{"trace/episodes", "trace/skips", "trace/episode_cycles"} {
		if !names[want] {
			t.Errorf("metrics block missing %q", want)
		}
	}
}

func TestWriteMerged(t *testing.T) {
	a := NewRecorderPid("w1/OoO", 0)
	b := NewRecorderPid("w1/PRE", 1)
	b.RunaheadEnter(5, 0x10, 1, "PRE", 40)
	b.RunaheadExit(30, 8, 2, 0)
	a.Finish(50)
	b.Finish(50)

	var buf bytes.Buffer
	if err := WriteMerged(&buf, []*Recorder{a, nil, b}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []Event `json:"traceEvents"`
		Processes   []struct {
			Pid  int    `json:"pid"`
			Name string `json:"name"`
		} `json:"processes"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Processes) != 2 {
		t.Fatalf("got %d processes, want 2 (nil recorder must be skipped)", len(doc.Processes))
	}
	if doc.Processes[1].Pid != 1 || doc.Processes[1].Name != "w1/PRE" {
		t.Errorf("process[1] = %+v", doc.Processes[1])
	}

	// Empty merge still serializes a parseable document with [] events.
	buf.Reset()
	if err := WriteMerged(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"traceEvents":[]`)) {
		t.Errorf("empty merge serialized %s", buf.String())
	}
}

func TestRegistry(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b/count", 3)
	reg.Gauge("a/mean", 1.5)
	reg.Counter("b/count", 7) // overwrite, not append
	if reg.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", reg.Len())
	}
	if m, ok := reg.Get("b/count"); !ok || m.Value != 7 {
		t.Errorf("Get(b/count) = %+v, %v", m, ok)
	}
	snap := reg.Snapshot()
	if snap[0].Name != "a/mean" || snap[1].Name != "b/count" {
		t.Errorf("snapshot not name-sorted: %v, %v", snap[0].Name, snap[1].Name)
	}

	h := stats.NewHistogram("x", 10, 100)
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)
	reg.Histogram("c/hist", h)
	m, _ := reg.Get("c/hist")
	if m.Value != 3 || m.Hist == nil {
		t.Fatalf("histogram metric: %+v", m)
	}
	if got := m.Hist.Buckets; len(got) != 3 || got[0] != 1 || got[1] != 1 || got[2] != 1 {
		t.Errorf("buckets %v", got)
	}
	if len(m.Hist.Bounds) != 2 || m.Hist.Bounds[0] != 10 {
		t.Errorf("bounds %v", m.Hist.Bounds)
	}
}

func TestHexFormatting(t *testing.T) {
	for v, want := range map[uint64]string{
		0:        "0x0",
		0xabc:    "0xabc",
		0x400020: "0x400020",
	} {
		if got := hex(v); got != want {
			t.Errorf("hex(%#x) = %q, want %q", v, got, want)
		}
	}
}
