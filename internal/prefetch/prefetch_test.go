package prefetch

import (
	"testing"

	"repro/internal/uarch"
)

func TestKindRoundTrip(t *testing.T) {
	for k := KindNone; k < numKinds; k++ {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("ParseKind accepted bogus kind")
	}
}

func TestConfigValidate(t *testing.T) {
	for _, c := range []Config{{}, DefaultNextLine(), DefaultStride(), DefaultBestOffset()} {
		if err := c.Validate(); err != nil {
			t.Errorf("%v: %v", c.Kind, err)
		}
	}
	bad := []Config{
		{Kind: KindNextLine},                                     // zero degree
		{Kind: KindStride, Degree: 2, Distance: 4},               // zero table
		{Kind: KindStride, Degree: 2, Distance: 4, TableSize: 3}, // not pow2
		{Kind: KindBestOffset, Degree: 1, RRSize: 64},            // zero ScoreMax
		{Kind: numKinds},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%+v: invalid config accepted", c)
		}
	}
}

func TestNoneBuildsNil(t *testing.T) {
	if p := (Config{}).New(); p != nil {
		t.Errorf("KindNone built %v, want nil", p)
	}
}

func TestNextLineRequests(t *testing.T) {
	p := DefaultNextLine().New()
	p.Observe(Access{Addr: 0x1008})
	got := p.Requests()
	want := []uint64{0x1040, 0x1080}
	if len(got) != len(want) {
		t.Fatalf("requests = %x, want %x", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("request[%d] = %#x, want %#x", i, got[i], want[i])
		}
	}
	if p.Requests() != nil {
		t.Error("queue not drained")
	}
}

// A steady PC-repeating stride stream must arm the table and prefetch
// ahead of the access point.
func TestStrideDetectsStream(t *testing.T) {
	cfg := DefaultStride()
	p := cfg.New()
	const pc, strideB = 0x400100, 32
	var addr uint64 = 1 << 20
	var reqs []uint64
	for i := 0; i < 8; i++ {
		p.Observe(Access{Addr: addr, PC: pc})
		reqs = append(reqs, p.Requests()...)
		addr += strideB
	}
	if len(reqs) == 0 {
		t.Fatal("stride prefetcher never fired on a steady stream")
	}
	// Requests must be line-aligned and ahead of the trained stream.
	for _, r := range reqs {
		if r%uarch.LineSize != 0 {
			t.Errorf("unaligned request %#x", r)
		}
		if r <= addr {
			t.Errorf("request %#x not ahead of stream position %#x", r, addr)
		}
	}
}

// Different PCs map to different entries: interleaved streams train
// independently.
func TestStrideInterleavedStreams(t *testing.T) {
	p := DefaultStride().New()
	a, b := uint64(1<<20), uint64(1<<21)
	for i := 0; i < 8; i++ {
		p.Observe(Access{Addr: a, PC: 0x400100})
		p.Observe(Access{Addr: b, PC: 0x400104})
		a += 64
		b += 128
	}
	if len(p.Requests()) == 0 {
		t.Error("interleaved streams failed to train")
	}
}

// A descending stream near address zero must not wrap its prefetch
// targets around uint64.
func TestStrideDescendingNoWrap(t *testing.T) {
	p := DefaultStride().New()
	addr := uint64(0x4000)
	for i := 0; i < 16; i++ {
		p.Observe(Access{Addr: addr, PC: 0x400100})
		for _, r := range p.Requests() {
			if r > 1<<32 {
				t.Fatalf("wrapped prefetch target %#x from descending stream at %#x", r, addr)
			}
		}
		if addr < 0x1000 {
			break
		}
		addr -= 0x1000 // stride -4096: targets go negative within a few steps
	}
}

func TestStrideIgnoresPCZeroAndZeroStride(t *testing.T) {
	p := DefaultStride().New()
	for i := 0; i < 8; i++ {
		p.Observe(Access{Addr: 0x1000, PC: 0})    // PC-less
		p.Observe(Access{Addr: 0x2000, PC: 0x40}) // same address each time
	}
	if got := p.Requests(); got != nil {
		t.Errorf("prefetched %x from untrainable streams", got)
	}
}

// A sequential line stream is best-offset's easiest pattern: after the
// initial phase it must keep a non-zero offset elected and prefetch ahead.
func TestBestOffsetLearnsSequential(t *testing.T) {
	p := DefaultBestOffset().New()
	var addr uint64 = 1 << 22
	fired := 0
	for i := 0; i < 512; i++ {
		p.Observe(Access{Addr: addr})
		if rs := p.Requests(); len(rs) > 0 {
			fired++
			for _, r := range rs {
				if r <= addr {
					t.Fatalf("request %#x behind stream position %#x", r, addr)
				}
			}
		}
		addr += uarch.LineSize
	}
	if fired < 256 {
		t.Errorf("best-offset fired on %d/512 sequential accesses", fired)
	}
}

// A random access stream must score no offset and disable prefetching
// after the first learning phase concludes.
func TestBestOffsetDisablesOnRandom(t *testing.T) {
	cfg := DefaultBestOffset()
	p := cfg.New().(*bestOffset)
	s := uint64(12345)
	next := func() uint64 { // splitmix64
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	total := cfg.RoundMax*len(bopOffsets) + 1
	for i := 0; i < total; i++ {
		p.Observe(Access{Addr: (next() % (1 << 24)) * uarch.LineSize})
		p.Requests()
	}
	if p.best != 0 {
		t.Errorf("best offset %d elected on random traffic, want disabled", p.best)
	}
}

func TestQueueDedupAndCap(t *testing.T) {
	var q reqQueue
	for i := 0; i < 3; i++ {
		q.push(0x1000)
	}
	if got := q.Requests(); len(got) != 1 {
		t.Errorf("duplicate requests not deduplicated: %x", got)
	}
	for i := 0; i < 2*queueCap; i++ {
		q.push(uint64(i) * uarch.LineSize)
	}
	if got := q.Requests(); len(got) != queueCap {
		t.Errorf("queue grew to %d, cap is %d", len(got), queueCap)
	}
}

func TestVariants(t *testing.T) {
	vs := Variants()
	if len(vs) < 3 {
		t.Fatalf("want at least no-pf/stride/best-offset, got %d variants", len(vs))
	}
	seen := map[string]bool{}
	for _, v := range vs {
		if seen[v.Name] {
			t.Errorf("duplicate variant %q", v.Name)
		}
		seen[v.Name] = true
		if err := v.L1D.Validate(); err != nil {
			t.Errorf("%s L1D: %v", v.Name, err)
		}
		if err := v.L2.Validate(); err != nil {
			t.Errorf("%s L2: %v", v.Name, err)
		}
	}
	for _, want := range []string{"no-pf", "stride", "best-offset"} {
		if !seen[want] {
			t.Errorf("standard variant %q missing", want)
		}
		if _, err := VariantByName(want); err != nil {
			t.Errorf("VariantByName(%q): %v", want, err)
		}
	}
	if _, err := VariantByName("bogus"); err == nil {
		t.Error("VariantByName accepted bogus name")
	}
}

// TestNextLineHonorsDistance pins the Distance semantics Validate
// enforces: the engine requests lines Distance..Distance+Degree-1 ahead
// of the observed line.
func TestNextLineHonorsDistance(t *testing.T) {
	p := Config{Kind: KindNextLine, Degree: 2, Distance: 3}.New()
	p.Observe(Access{Addr: 0x0})
	got := p.Requests()
	want := []uint64{3 * 64, 4 * 64}
	if len(got) != len(want) {
		t.Fatalf("requests = %x, want %x", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("request[%d] = %#x, want %#x (Distance not honored)", i, got[i], want[i])
		}
	}
}

// TestOverflowCounted: requests generated past the queue cap are counted,
// not silently discarded; duplicates of queued requests are not overflow.
func TestOverflowCounted(t *testing.T) {
	p := Config{Kind: KindNextLine, Degree: 1, Distance: 1}.New()
	for i := 0; i < 100; i++ {
		p.Observe(Access{Addr: uint64(i) * 64})
	}
	if got := p.Overflowed(); got != 100-queueCap {
		t.Errorf("Overflowed = %d, want %d", got, 100-queueCap)
	}
	// Duplicates of queued entries are dedup, not overflow.
	p.Requests()
	p.Observe(Access{Addr: 0})
	p.Observe(Access{Addr: 0})
	if got := p.Overflowed(); got != 100-queueCap {
		t.Errorf("duplicate push counted as overflow: %d", got)
	}
}

// TestThrottledAdaptsDegree exercises the feedback controller directly:
// low-accuracy epochs walk the effective degree down to 1, high-accuracy
// epochs walk it back to the configured maximum, and per-observation
// request volume follows.
func TestThrottledAdaptsDegree(t *testing.T) {
	cfg := Config{Kind: KindNextLine, Degree: 4, Distance: 1, ThrottleEpoch: 16}
	p := cfg.New()
	ad, ok := p.(Adaptive)
	if !ok {
		t.Fatal("ThrottleEpoch > 0 did not build an Adaptive engine")
	}
	type degreer interface{ Degree() int }
	d := p.(degreer)
	if d.Degree() != 4 {
		t.Fatalf("initial degree %d, want the configured max 4", d.Degree())
	}

	// Worthless epochs: plenty issued, nothing useful.
	issued := int64(0)
	for i := 0; i < 3; i++ {
		issued += 100
		ad.Feedback(Feedback{Issued: issued})
	}
	if d.Degree() != 1 {
		t.Errorf("degree %d after three zero-accuracy epochs, want 1", d.Degree())
	}
	p.Observe(Access{Addr: 0})
	if got := len(p.Requests()); got != 1 {
		t.Errorf("throttled engine forwarded %d requests at degree 1", got)
	}

	// Perfect epochs: everything issued is useful again.
	useful := issued
	for i := 0; i < 3; i++ {
		issued += 100
		useful += 100
		ad.Feedback(Feedback{Issued: issued, Useful: useful})
	}
	if d.Degree() != 4 {
		t.Errorf("degree %d after three perfect epochs, want back at 4", d.Degree())
	}
	p.Observe(Access{Addr: 64 * 100})
	if got := len(p.Requests()); got != 4 {
		t.Errorf("throttled engine forwarded %d requests at degree 4", got)
	}

	// Mid accuracy but mostly-late fills also step up (timeliness).
	for i := 0; i < 2; i++ {
		issued += 100
		useful += 50
		ad.Feedback(Feedback{Issued: issued, Useful: useful})
	}
	if d.Degree() != 4 {
		t.Errorf("degree %d dropped on mid-accuracy epochs without lateness", d.Degree())
	}

	// Tiny epochs carry no signal: degree must not move.
	before := d.Degree()
	ad.Feedback(Feedback{Issued: issued + 2})
	if d.Degree() != before {
		t.Errorf("degree moved on a %d-request epoch", 2)
	}
}

// TestThrottledName labels the wrapper around its inner engine.
func TestThrottledName(t *testing.T) {
	p := ThrottledStride().New()
	if got := p.Name(); got != "throttled(stride)" {
		t.Errorf("Name = %q", got)
	}
}

// TestVariantsAdaptiveGrid pins the extended grid: unique names, valid
// configurations, and the structural properties each new point exists
// for.
func TestVariantsAdaptiveGrid(t *testing.T) {
	vs := Variants()
	if len(vs) != 8 {
		t.Fatalf("got %d variants, want 8", len(vs))
	}
	seen := map[string]bool{}
	for _, v := range vs {
		if seen[v.Name] {
			t.Errorf("duplicate variant name %q", v.Name)
		}
		seen[v.Name] = true
		for _, c := range []Config{v.L1I, v.L1D, v.L2} {
			if err := c.Validate(); err != nil {
				t.Errorf("variant %q has invalid config: %v", v.Name, err)
			}
		}
		if _, err := VariantByName(v.Name); err != nil {
			t.Errorf("VariantByName(%q): %v", v.Name, err)
		}
	}
	l1i, _ := VariantByName("l1i-nl")
	if !l1i.L1I.Enabled() || l1i.L1D.Enabled() || l1i.L2.Enabled() || l1i.Filter {
		t.Errorf("l1i-nl is not the pure L1I point: %+v", l1i)
	}
	throttled, _ := VariantByName("throttled")
	if throttled.L1D.ThrottleEpoch == 0 || throttled.L2.ThrottleEpoch == 0 || throttled.Filter {
		t.Errorf("throttled point misconfigured: %+v", throttled)
	}
	filtered, _ := VariantByName("filtered")
	combined, _ := VariantByName("stride+bo")
	if !filtered.Filter || filtered.L1D != combined.L1D || filtered.L2 != combined.L2 {
		t.Errorf("filtered must be stride+bo plus the filter bit: %+v", filtered)
	}
	adaptive, _ := VariantByName("adaptive")
	if !adaptive.Filter || !adaptive.L1I.Enabled() || adaptive.L1I.ThrottleEpoch == 0 {
		t.Errorf("adaptive must stack L1I + throttle + filter: %+v", adaptive)
	}
}

// TestThrottleEpochValidation rejects negative epochs for every kind.
func TestThrottleEpochValidation(t *testing.T) {
	c := DefaultStride()
	c.ThrottleEpoch = -1
	if err := c.Validate(); err == nil {
		t.Error("negative ThrottleEpoch validated")
	}
}
