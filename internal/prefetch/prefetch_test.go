package prefetch

import (
	"testing"

	"repro/internal/uarch"
)

func TestKindRoundTrip(t *testing.T) {
	for k := KindNone; k < numKinds; k++ {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("ParseKind accepted bogus kind")
	}
}

func TestConfigValidate(t *testing.T) {
	for _, c := range []Config{{}, DefaultNextLine(), DefaultStride(), DefaultBestOffset()} {
		if err := c.Validate(); err != nil {
			t.Errorf("%v: %v", c.Kind, err)
		}
	}
	bad := []Config{
		{Kind: KindNextLine},                                     // zero degree
		{Kind: KindStride, Degree: 2, Distance: 4},               // zero table
		{Kind: KindStride, Degree: 2, Distance: 4, TableSize: 3}, // not pow2
		{Kind: KindBestOffset, Degree: 1, RRSize: 64},            // zero ScoreMax
		{Kind: numKinds},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%+v: invalid config accepted", c)
		}
	}
}

func TestNoneBuildsNil(t *testing.T) {
	if p := (Config{}).New(); p != nil {
		t.Errorf("KindNone built %v, want nil", p)
	}
}

func TestNextLineRequests(t *testing.T) {
	p := DefaultNextLine().New()
	p.Observe(Access{Addr: 0x1008})
	got := p.Requests()
	want := []uint64{0x1040, 0x1080}
	if len(got) != len(want) {
		t.Fatalf("requests = %x, want %x", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("request[%d] = %#x, want %#x", i, got[i], want[i])
		}
	}
	if p.Requests() != nil {
		t.Error("queue not drained")
	}
}

// A steady PC-repeating stride stream must arm the table and prefetch
// ahead of the access point.
func TestStrideDetectsStream(t *testing.T) {
	cfg := DefaultStride()
	p := cfg.New()
	const pc, strideB = 0x400100, 32
	var addr uint64 = 1 << 20
	var reqs []uint64
	for i := 0; i < 8; i++ {
		p.Observe(Access{Addr: addr, PC: pc})
		reqs = append(reqs, p.Requests()...)
		addr += strideB
	}
	if len(reqs) == 0 {
		t.Fatal("stride prefetcher never fired on a steady stream")
	}
	// Requests must be line-aligned and ahead of the trained stream.
	for _, r := range reqs {
		if r%uarch.LineSize != 0 {
			t.Errorf("unaligned request %#x", r)
		}
		if r <= addr {
			t.Errorf("request %#x not ahead of stream position %#x", r, addr)
		}
	}
}

// Different PCs map to different entries: interleaved streams train
// independently.
func TestStrideInterleavedStreams(t *testing.T) {
	p := DefaultStride().New()
	a, b := uint64(1<<20), uint64(1<<21)
	for i := 0; i < 8; i++ {
		p.Observe(Access{Addr: a, PC: 0x400100})
		p.Observe(Access{Addr: b, PC: 0x400104})
		a += 64
		b += 128
	}
	if len(p.Requests()) == 0 {
		t.Error("interleaved streams failed to train")
	}
}

// A descending stream near address zero must not wrap its prefetch
// targets around uint64.
func TestStrideDescendingNoWrap(t *testing.T) {
	p := DefaultStride().New()
	addr := uint64(0x4000)
	for i := 0; i < 16; i++ {
		p.Observe(Access{Addr: addr, PC: 0x400100})
		for _, r := range p.Requests() {
			if r > 1<<32 {
				t.Fatalf("wrapped prefetch target %#x from descending stream at %#x", r, addr)
			}
		}
		if addr < 0x1000 {
			break
		}
		addr -= 0x1000 // stride -4096: targets go negative within a few steps
	}
}

func TestStrideIgnoresPCZeroAndZeroStride(t *testing.T) {
	p := DefaultStride().New()
	for i := 0; i < 8; i++ {
		p.Observe(Access{Addr: 0x1000, PC: 0})    // PC-less
		p.Observe(Access{Addr: 0x2000, PC: 0x40}) // same address each time
	}
	if got := p.Requests(); got != nil {
		t.Errorf("prefetched %x from untrainable streams", got)
	}
}

// A sequential line stream is best-offset's easiest pattern: after the
// initial phase it must keep a non-zero offset elected and prefetch ahead.
func TestBestOffsetLearnsSequential(t *testing.T) {
	p := DefaultBestOffset().New()
	var addr uint64 = 1 << 22
	fired := 0
	for i := 0; i < 512; i++ {
		p.Observe(Access{Addr: addr})
		if rs := p.Requests(); len(rs) > 0 {
			fired++
			for _, r := range rs {
				if r <= addr {
					t.Fatalf("request %#x behind stream position %#x", r, addr)
				}
			}
		}
		addr += uarch.LineSize
	}
	if fired < 256 {
		t.Errorf("best-offset fired on %d/512 sequential accesses", fired)
	}
}

// A random access stream must score no offset and disable prefetching
// after the first learning phase concludes.
func TestBestOffsetDisablesOnRandom(t *testing.T) {
	cfg := DefaultBestOffset()
	p := cfg.New().(*bestOffset)
	s := uint64(12345)
	next := func() uint64 { // splitmix64
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	total := cfg.RoundMax*len(bopOffsets) + 1
	for i := 0; i < total; i++ {
		p.Observe(Access{Addr: (next() % (1 << 24)) * uarch.LineSize})
		p.Requests()
	}
	if p.best != 0 {
		t.Errorf("best offset %d elected on random traffic, want disabled", p.best)
	}
}

func TestQueueDedupAndCap(t *testing.T) {
	var q reqQueue
	for i := 0; i < 3; i++ {
		q.push(0x1000)
	}
	if got := q.Requests(); len(got) != 1 {
		t.Errorf("duplicate requests not deduplicated: %x", got)
	}
	for i := 0; i < 2*queueCap; i++ {
		q.push(uint64(i) * uarch.LineSize)
	}
	if got := q.Requests(); len(got) != queueCap {
		t.Errorf("queue grew to %d, cap is %d", len(got), queueCap)
	}
}

func TestVariants(t *testing.T) {
	vs := Variants()
	if len(vs) < 3 {
		t.Fatalf("want at least no-pf/stride/best-offset, got %d variants", len(vs))
	}
	seen := map[string]bool{}
	for _, v := range vs {
		if seen[v.Name] {
			t.Errorf("duplicate variant %q", v.Name)
		}
		seen[v.Name] = true
		if err := v.L1D.Validate(); err != nil {
			t.Errorf("%s L1D: %v", v.Name, err)
		}
		if err := v.L2.Validate(); err != nil {
			t.Errorf("%s L2: %v", v.Name, err)
		}
	}
	for _, want := range []string{"no-pf", "stride", "best-offset"} {
		if !seen[want] {
			t.Errorf("standard variant %q missing", want)
		}
		if _, err := VariantByName(want); err != nil {
			t.Errorf("VariantByName(%q): %v", want, err)
		}
	}
	if _, err := VariantByName("bogus"); err == nil {
		t.Error("VariantByName accepted bogus name")
	}
}
