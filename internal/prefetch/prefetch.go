// Package prefetch implements the pluggable hardware prefetchers that sit
// beside the cache levels of the simulated hierarchy. Runahead execution
// is the paper's latency-hiding mechanism of interest, but it competes
// with (and composes with) conventional hardware prefetching — the
// comparison axis of Hashemi's on-chip-mechanisms work and the R3-DLA
// evaluation methodology. This package supplies that axis.
//
// A Prefetcher is a passive observer with a request queue: the memory
// hierarchy feeds it the demand-access stream of its level via Observe,
// and drains Requests into real multi-level accesses that consume the
// same MSHRs, DRAM banks and bus slots as demand and runahead traffic
// (see internal/mem). The package itself performs no memory accesses and
// keeps no timing state beyond what its prediction tables need, so every
// implementation is trivially deterministic.
//
// Implementations:
//
//   - NextLine: sequential next-N-lines prefetching on every access — the
//     simplest useful baseline.
//   - Stride: a PC-indexed reference-prediction table (Chen & Baer style):
//     per-PC last address, stride and 2-bit-style confidence; on a
//     confident match it prefetches Degree lines Distance strides ahead.
//     Covers the streaming/stencil archetypes.
//   - BestOffset: a Michaud-style best-offset prefetcher for the L2: a
//     recent-requests table scores candidate offsets round-robin and the
//     winning offset drives prefetches until the next learning phase
//     re-elects it. Covers strided streams whose L1 stride is sub-line
//     (the offset is learned in line units, independent of PC).
package prefetch

import (
	"fmt"

	"repro/internal/uarch"
)

// Access is one demand access observed at a cache level.
type Access struct {
	// Addr is the accessed byte address.
	Addr uint64
	// PC is the load's program counter (zero when the observing level has
	// no PC, e.g. the L2 observing L1 miss traffic).
	PC uint64
	// Hit reports whether this level served the access.
	Hit bool
	// Cycle is the core cycle of the access.
	Cycle int64
}

// Prefetcher is the common interface: observe the demand stream, queue
// line prefetch requests. Implementations are not safe for concurrent use
// (the simulator is single-threaded per machine).
type Prefetcher interface {
	// Name labels the prefetcher in reports.
	Name() string
	// Observe feeds one demand access into the prediction tables.
	Observe(a Access)
	// Requests drains the queued prefetch requests: line-aligned byte
	// addresses, in generation order. The queue is empty afterwards.
	Requests() []uint64
}

// Kind selects a prefetcher implementation.
type Kind uint8

// Available prefetcher kinds.
const (
	// KindNone disables prefetching at the level.
	KindNone Kind = iota
	// KindNextLine prefetches the next Degree sequential lines.
	KindNextLine
	// KindStride is the PC-indexed stride prefetcher.
	KindStride
	// KindBestOffset is the best-offset prefetcher.
	KindBestOffset
	numKinds
)

var kindNames = [numKinds]string{"none", "next-line", "stride", "best-offset"}

// String names the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ParseKind resolves a prefetcher name as used in CLI flags.
func ParseKind(s string) (Kind, error) {
	for k := KindNone; k < numKinds; k++ {
		if kindNames[k] == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("prefetch: unknown kind %q (want none, next-line, stride, best-offset)", s)
}

// queueCap bounds any prefetcher's pending-request queue; the hierarchy
// drains the queue after every demand access, so the cap only guards
// against degenerate configurations.
const queueCap = 64

// Config describes one prefetcher instance. It contains only scalar
// fields so it embeds cleanly in the experiment orchestrator's canonical
// configuration fingerprints (internal/exp dedups runs by %+v identity).
type Config struct {
	// Kind selects the implementation; KindNone disables the prefetcher.
	Kind Kind
	// Degree is the number of lines requested per trigger.
	Degree int
	// Distance is the prefetch look-ahead: strides ahead of the current
	// access for Stride, lines ahead for NextLine. BestOffset learns its
	// own distance (the offset) and ignores this.
	Distance int
	// TableSize is the stride table's entry count (power of two).
	TableSize int
	// RRSize is the best-offset recent-requests table size (power of two).
	RRSize int
	// ScoreMax ends a best-offset learning phase early when an offset
	// reaches this score.
	ScoreMax int
	// RoundMax bounds a best-offset learning phase in full passes over the
	// candidate offset list.
	RoundMax int
	// BadScore disables best-offset prefetching for a phase whose winning
	// offset scored at or below it (the access stream has no usable
	// offset pattern).
	BadScore int
}

// Enabled reports whether the configuration names a real prefetcher.
func (c Config) Enabled() bool { return c.Kind != KindNone }

// DefaultNextLine returns a degree-2 sequential prefetcher configuration.
func DefaultNextLine() Config {
	return Config{Kind: KindNextLine, Degree: 2, Distance: 1}
}

// DefaultStride returns the L1D stride prefetcher configuration: a
// 256-entry PC-indexed table, prefetching 2 lines 16 strides ahead. The
// suite's streaming kernels advance 8-32 bytes per iteration, so 16
// strides is 2-8 lines of look-ahead — enough to stay ahead of a ~250
// cycle DRAM access at the proxies' iteration rates.
func DefaultStride() Config {
	return Config{Kind: KindStride, Degree: 2, Distance: 16, TableSize: 256}
}

// DefaultBestOffset returns the L2 best-offset prefetcher configuration
// (Michaud's published defaults, scaled to the 256 KB L2: 64-entry RR
// table, scores saturate at 31, phases end after 24 rounds, offsets
// scoring <= 1 do not prefetch).
func DefaultBestOffset() Config {
	return Config{Kind: KindBestOffset, Degree: 1, RRSize: 64, ScoreMax: 31, RoundMax: 24, BadScore: 1}
}

// Validate checks the configuration for the selected kind.
func (c *Config) Validate() error {
	switch c.Kind {
	case KindNone:
		return nil
	case KindNextLine:
		if c.Degree <= 0 || c.Degree > queueCap || c.Distance <= 0 {
			return fmt.Errorf("prefetch: next-line needs 0 < Degree <= %d and Distance > 0", queueCap)
		}
	case KindStride:
		if c.Degree <= 0 || c.Degree > queueCap || c.Distance <= 0 {
			return fmt.Errorf("prefetch: stride needs 0 < Degree <= %d and Distance > 0", queueCap)
		}
		if c.TableSize <= 0 || c.TableSize&(c.TableSize-1) != 0 {
			return fmt.Errorf("prefetch: stride TableSize %d not a power of two", c.TableSize)
		}
	case KindBestOffset:
		if c.Degree <= 0 || c.Degree > queueCap {
			return fmt.Errorf("prefetch: best-offset needs 0 < Degree <= %d", queueCap)
		}
		if c.RRSize <= 0 || c.RRSize&(c.RRSize-1) != 0 {
			return fmt.Errorf("prefetch: best-offset RRSize %d not a power of two", c.RRSize)
		}
		if c.ScoreMax <= 0 || c.RoundMax <= 0 || c.BadScore < 0 {
			return fmt.Errorf("prefetch: best-offset needs positive ScoreMax/RoundMax and BadScore >= 0")
		}
	default:
		return fmt.Errorf("prefetch: invalid kind %d", c.Kind)
	}
	return nil
}

// New builds the configured prefetcher, or nil for KindNone. It panics on
// invalid configuration (the public API validates first, like the cache
// and DRAM constructors).
func (c Config) New() Prefetcher {
	if err := c.Validate(); err != nil {
		panic(err)
	}
	switch c.Kind {
	case KindNone:
		return nil
	case KindNextLine:
		return &nextLine{cfg: c}
	case KindStride:
		return &stride{cfg: c, table: make([]strideEntry, c.TableSize), mask: uint64(c.TableSize - 1)}
	case KindBestOffset:
		return newBestOffset(c)
	}
	panic("unreachable")
}

// reqQueue is the shared bounded request queue.
type reqQueue struct {
	q []uint64
}

// push queues a line-aligned request, dropping duplicates of the current
// queue contents and everything past the cap.
func (r *reqQueue) push(addr uint64) {
	addr = uarch.LineAddr(addr)
	if len(r.q) >= queueCap {
		return
	}
	for _, a := range r.q {
		if a == addr {
			return
		}
	}
	r.q = append(r.q, addr)
}

// Requests returns the queued requests and empties the queue. The
// returned slice aliases the queue's reusable buffer: it is valid until
// the next Observe call, which is exactly the hierarchy's drain pattern
// (drain fully, then resume observing) — so steady-state draining never
// allocates.
func (r *reqQueue) Requests() []uint64 {
	if len(r.q) == 0 {
		return nil
	}
	out := r.q
	r.q = r.q[:0]
	return out
}

// --- next-line ---------------------------------------------------------------

type nextLine struct {
	cfg Config
	reqQueue
}

func (p *nextLine) Name() string { return "next-line" }

func (p *nextLine) Observe(a Access) {
	base := uarch.LineAddr(a.Addr)
	for i := 1; i <= p.cfg.Degree; i++ {
		p.push(base + uint64(p.cfg.Distance+i-1)*uarch.LineSize)
	}
}

// --- stride ------------------------------------------------------------------

// strideEntry is one reference-prediction-table row.
type strideEntry struct {
	pc     uint64
	last   uint64 // last address observed for this PC
	stride int64  // last confirmed byte stride
	conf   int8   // saturating confidence
	valid  bool
}

// Confidence thresholds: two confirmations arm the entry, four saturate.
const (
	strideConfMax     = 4
	strideConfTrigger = 2
)

type stride struct {
	cfg   Config
	table []strideEntry
	mask  uint64
	reqQueue
}

func (p *stride) Name() string { return "stride" }

func (p *stride) Observe(a Access) {
	if a.PC == 0 {
		return // PC-less traffic (e.g. store commits) cannot train the RPT
	}
	e := &p.table[a.PC&p.mask]
	if !e.valid || e.pc != a.PC {
		*e = strideEntry{pc: a.PC, last: a.Addr, valid: true}
		return
	}
	s := int64(a.Addr) - int64(e.last)
	e.last = a.Addr
	switch {
	case s == 0:
		return // same address (retry or hot line): no information
	case s == e.stride:
		if e.conf < strideConfMax {
			e.conf++
		}
	default:
		// Mismatch: decay; on full loss of confidence adopt the new stride.
		e.conf--
		if e.conf <= 0 {
			e.stride = s
			e.conf = 1
		}
		return
	}
	if e.conf < strideConfTrigger {
		return
	}
	// Confident: fetch Degree distinct lines starting Distance strides
	// ahead. Sub-line strides advance the target by whole lines so the
	// degree is not wasted on duplicates of one line.
	lineStep := e.stride
	if lineStep > -uarch.LineSize && lineStep < uarch.LineSize {
		if lineStep > 0 {
			lineStep = uarch.LineSize
		} else {
			lineStep = -uarch.LineSize
		}
	}
	base := int64(a.Addr) + e.stride*int64(p.cfg.Distance)
	for i := 0; i < p.cfg.Degree; i++ {
		target := base + int64(i)*lineStep
		if target < 0 {
			continue // descending stream ran past address zero
		}
		p.push(uint64(target))
	}
}

// --- best offset -------------------------------------------------------------

// bopOffsets is the candidate offset list in lines: Michaud's list is the
// 2^i*3^j*5^k smooth numbers up to 256; this model uses the dense prefix
// that matters at the proxies' working-set scales.
var bopOffsets = []int64{1, 2, 3, 4, 5, 6, 8, 9, 10, 12, 15, 16, 18, 20, 24, 27, 30, 32, 36, 40, 48, 54, 60, 64}

type bestOffset struct {
	cfg    Config
	rr     []uint64 // direct-mapped recent request lines
	rrMask uint64
	scores []int
	test   int // cursor into bopOffsets for the offset under test
	round  int
	best   int64 // elected offset in lines; 0 = prefetching disabled
	reqQueue
}

func newBestOffset(cfg Config) *bestOffset {
	return &bestOffset{
		cfg:    cfg,
		rr:     make([]uint64, cfg.RRSize),
		rrMask: uint64(cfg.RRSize - 1),
		scores: make([]int, len(bopOffsets)),
		best:   1, // start sequential until the first phase elects a winner
	}
}

func (p *bestOffset) Name() string { return "best-offset" }

// Observe implements the learning loop: each access tests one candidate
// offset d against the recent-requests table (was line X-d requested
// recently? then offset d would have prefetched X in time), inserts the
// access into the RR table, and prefetches with the currently elected
// offset. Inserting at access time rather than at fill completion is the
// model's one simplification; it biases the learner slightly toward
// aggressive offsets, which the BadScore cutoff compensates.
func (p *bestOffset) Observe(a Access) {
	x := a.Addr / uarch.LineSize

	d := bopOffsets[p.test]
	if x >= uint64(d) && p.rrContains(x-uint64(d)) {
		p.scores[p.test]++
		if p.scores[p.test] >= p.cfg.ScoreMax {
			p.elect(p.test)
		}
	}
	p.test++
	if p.test == len(bopOffsets) {
		p.test = 0
		p.round++
		if p.round >= p.cfg.RoundMax {
			best := 0
			for i, s := range p.scores {
				if s > p.scores[best] {
					best = i
				}
			}
			p.elect(best)
		}
	}

	p.rrInsert(x)

	if p.best == 0 {
		return
	}
	for i := 1; i <= p.cfg.Degree; i++ {
		p.push((x + uint64(p.best)*uint64(i)) * uarch.LineSize)
	}
}

// elect ends the learning phase: adopt the winner (or disable prefetching
// on a bad score) and reset the score board for the next phase.
func (p *bestOffset) elect(idx int) {
	if p.scores[idx] > p.cfg.BadScore {
		p.best = bopOffsets[idx]
	} else {
		p.best = 0
	}
	for i := range p.scores {
		p.scores[i] = 0
	}
	p.test = 0
	p.round = 0
}

func (p *bestOffset) rrContains(line uint64) bool {
	return p.rr[line&p.rrMask] == line && line != 0
}

func (p *bestOffset) rrInsert(line uint64) {
	p.rr[line&p.rrMask] = line
}

// --- variants ----------------------------------------------------------------

// Variant is a named (L1D, L2) prefetcher pairing — one point of the
// PF-augmented simulation grid.
type Variant struct {
	// Name labels the variant in reports and results sinks.
	Name string
	// L1D and L2 configure the per-level prefetchers (Kind None disables).
	L1D, L2 Config
}

// Variants lists the standard PF grid points: no prefetching, an L1D
// stride prefetcher, an L2 best-offset prefetcher, and both combined.
// Every runahead mode crossed with these variants yields the
// PRE-vs-prefetch-vs-combined comparison the paper frames its result
// against.
func Variants() []Variant {
	return []Variant{
		{Name: "no-pf"},
		{Name: "stride", L1D: DefaultStride()},
		{Name: "best-offset", L2: DefaultBestOffset()},
		{Name: "stride+bo", L1D: DefaultStride(), L2: DefaultBestOffset()},
	}
}

// VariantByName looks up a standard grid point.
func VariantByName(name string) (Variant, error) {
	for _, v := range Variants() {
		if v.Name == name {
			return v, nil
		}
	}
	return Variant{}, fmt.Errorf("prefetch: unknown variant %q", name)
}
