// Package prefetch implements the pluggable hardware prefetchers that sit
// beside the cache levels of the simulated hierarchy. Runahead execution
// is the paper's latency-hiding mechanism of interest, but it competes
// with (and composes with) conventional hardware prefetching — the
// comparison axis of Hashemi's on-chip-mechanisms work and the R3-DLA
// evaluation methodology. This package supplies that axis.
//
// A Prefetcher is a passive observer with a request queue: the memory
// hierarchy feeds it the demand-access stream of its level via Observe,
// and drains Requests into real multi-level accesses that consume the
// same MSHRs, DRAM banks and bus slots as demand and runahead traffic
// (see internal/mem). The package itself performs no memory accesses and
// keeps no timing state beyond what its prediction tables need, so every
// implementation is trivially deterministic.
//
// Implementations:
//
//   - NextLine: sequential next-N-lines prefetching on every access — the
//     simplest useful baseline.
//   - Stride: a PC-indexed reference-prediction table (Chen & Baer style):
//     per-PC last address, stride and 2-bit-style confidence; on a
//     confident match it prefetches Degree lines Distance strides ahead.
//     Covers the streaming/stencil archetypes.
//   - BestOffset: a Michaud-style best-offset prefetcher for the L2: a
//     recent-requests table scores candidate offsets round-robin and the
//     winning offset drives prefetches until the next learning phase
//     re-elects it. Covers strided streams whose L1 stride is sub-line
//     (the offset is learned in line units, independent of PC).
//
// Any engine composes with the accuracy-driven degree throttle
// (Config.ThrottleEpoch > 0): a feedback controller in the style of
// Srinath's feedback-directed prefetching that scales the engine's
// effective degree between 1 and its configured maximum from
// epoch-sampled accuracy and late-ratio feedback (the hierarchy pushes
// mem.PFStats-derived counters via the Adaptive interface). Open-loop
// engines run at fixed degree, which is exactly what the throttle exists
// to fix: useless prefetches on irregular phases waste MSHRs and DRAM
// bandwidth the runahead mechanisms need.
package prefetch

import (
	"fmt"

	"repro/internal/uarch"
)

// Access is one demand access observed at a cache level.
type Access struct {
	// Addr is the accessed byte address.
	Addr uint64
	// PC is the load's program counter (zero when the observing level has
	// no PC, e.g. the L2 observing L1 miss traffic).
	PC uint64
	// Hit reports whether this level served the access.
	Hit bool
	// Cycle is the core cycle of the access.
	Cycle int64
}

// Prefetcher is the common interface: observe the demand stream, queue
// line prefetch requests. Implementations are not safe for concurrent use
// (the simulator is single-threaded per machine).
type Prefetcher interface {
	// Name labels the prefetcher in reports.
	Name() string
	// Observe feeds one demand access into the prediction tables.
	Observe(a Access)
	// Requests drains the queued prefetch requests: line-aligned byte
	// addresses, in generation order. The queue is empty afterwards.
	Requests() []uint64
	// Overflowed returns the cumulative count of generated requests that
	// were discarded because the pending queue was full. The counter never
	// resets (the hierarchy differences it across measurement windows);
	// surfacing it is what keeps queue-capacity coverage loss visible
	// instead of silently vanishing.
	Overflowed() int64
}

// Feedback carries the cumulative usefulness counters the hierarchy
// samples for an adaptive prefetcher: how many requests the engine
// actually injected, how many of its fills were consumed by demand, and
// how many of those consumers still waited on the in-flight fill. All
// three are lifetime values (never reset by measurement windows); the
// receiver differences consecutive samples to get per-epoch ratios.
type Feedback struct {
	Issued int64
	Useful int64
	Late   int64
}

// Adaptive is implemented by prefetchers that close the loop on their own
// effectiveness. The memory hierarchy calls Feedback every
// Config.ThrottleEpoch training observations with that engine's
// cumulative counters.
type Adaptive interface {
	Feedback(f Feedback)
}

// DegreeReporter is implemented by engines whose effective degree can be
// inspected without perturbing them — the throttled wrapper, today. The
// telemetry layer samples it around Feedback calls to record throttle
// decisions; it must never be used to drive simulation behavior.
type DegreeReporter interface {
	Degree() int
}

// Kind selects a prefetcher implementation.
type Kind uint8

// Available prefetcher kinds.
const (
	// KindNone disables prefetching at the level.
	KindNone Kind = iota
	// KindNextLine prefetches the next Degree sequential lines.
	KindNextLine
	// KindStride is the PC-indexed stride prefetcher.
	KindStride
	// KindBestOffset is the best-offset prefetcher.
	KindBestOffset
	numKinds
)

var kindNames = [numKinds]string{"none", "next-line", "stride", "best-offset"}

// String names the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ParseKind resolves a prefetcher name as used in CLI flags.
func ParseKind(s string) (Kind, error) {
	for k := KindNone; k < numKinds; k++ {
		if kindNames[k] == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("prefetch: unknown kind %q (want none, next-line, stride, best-offset)", s)
}

// queueCap bounds any prefetcher's pending-request queue; the hierarchy
// drains the queue after every demand access, so the cap only guards
// against degenerate configurations.
const queueCap = 64

// Config describes one prefetcher instance. It contains only scalar
// fields so it embeds cleanly in the experiment orchestrator's canonical
// configuration fingerprints (internal/exp dedups runs by %+v identity).
type Config struct {
	// Kind selects the implementation; KindNone disables the prefetcher.
	Kind Kind
	// Degree is the number of lines requested per trigger.
	Degree int
	// Distance is the prefetch look-ahead: strides ahead of the current
	// access for Stride, lines ahead for NextLine. BestOffset learns its
	// own distance (the offset) and ignores this.
	Distance int
	// TableSize is the stride table's entry count (power of two).
	TableSize int
	// RRSize is the best-offset recent-requests table size (power of two).
	RRSize int
	// ScoreMax ends a best-offset learning phase early when an offset
	// reaches this score.
	ScoreMax int
	// RoundMax bounds a best-offset learning phase in full passes over the
	// candidate offset list.
	RoundMax int
	// BadScore disables best-offset prefetching for a phase whose winning
	// offset scored at or below it (the access stream has no usable
	// offset pattern).
	BadScore int
	// ThrottleEpoch enables accuracy-driven degree throttling: every
	// ThrottleEpoch training observations the hierarchy feeds the engine
	// its cumulative issued/useful/late counters, and the throttle scales
	// the effective degree between 1 and Degree (high accuracy or mostly
	// late-but-useful fills step it up, low accuracy steps it down).
	// 0 disables throttling (open-loop fixed degree).
	ThrottleEpoch int
}

// Enabled reports whether the configuration names a real prefetcher.
func (c Config) Enabled() bool { return c.Kind != KindNone }

// DefaultNextLine returns a degree-2 sequential prefetcher configuration.
func DefaultNextLine() Config {
	return Config{Kind: KindNextLine, Degree: 2, Distance: 1}
}

// DefaultL1INextLine returns the L1I fetch-stream prefetcher. Instruction
// fetch is almost perfectly sequential between taken branches, so the
// standard next-line configuration is exactly right for the front end
// too — delegating keeps the two baselines from silently diverging.
func DefaultL1INextLine() Config {
	return DefaultNextLine()
}

// throttleEpochDefault is the adaptation interval of the Throttled*
// configurations, in training observations. Small enough to re-converge
// within one synth phase (8k µops minimum), large enough that per-epoch
// accuracy is not shot noise.
const throttleEpochDefault = 256

// ThrottledStride returns the adaptive L1D stride configuration: the
// DefaultStride table and distance with the maximum degree raised to 4
// and the feedback throttle scaling the effective degree from accuracy.
func ThrottledStride() Config {
	c := DefaultStride()
	c.Degree = 4
	c.ThrottleEpoch = throttleEpochDefault
	return c
}

// ThrottledBestOffset returns the adaptive L2 best-offset configuration:
// DefaultBestOffset with a maximum degree of 2 under feedback control.
func ThrottledBestOffset() Config {
	c := DefaultBestOffset()
	c.Degree = 2
	c.ThrottleEpoch = throttleEpochDefault
	return c
}

// ThrottledL1INextLine returns the adaptive L1I configuration: next-line
// with a maximum degree of 4 under feedback control — deep sequential
// look-ahead on code sweeps, degree 1 on loop-resident phases where
// almost every prefetch is redundant.
func ThrottledL1INextLine() Config {
	c := DefaultL1INextLine()
	c.Degree = 4
	c.ThrottleEpoch = throttleEpochDefault
	return c
}

// DefaultStride returns the L1D stride prefetcher configuration: a
// 256-entry PC-indexed table, prefetching 2 lines 16 strides ahead. The
// suite's streaming kernels advance 8-32 bytes per iteration, so 16
// strides is 2-8 lines of look-ahead — enough to stay ahead of a ~250
// cycle DRAM access at the proxies' iteration rates.
func DefaultStride() Config {
	return Config{Kind: KindStride, Degree: 2, Distance: 16, TableSize: 256}
}

// DefaultBestOffset returns the L2 best-offset prefetcher configuration
// (Michaud's published defaults, scaled to the 256 KB L2: 64-entry RR
// table, scores saturate at 31, phases end after 24 rounds, offsets
// scoring <= 1 do not prefetch).
func DefaultBestOffset() Config {
	return Config{Kind: KindBestOffset, Degree: 1, RRSize: 64, ScoreMax: 31, RoundMax: 24, BadScore: 1}
}

// Validate checks the configuration for the selected kind.
func (c *Config) Validate() error {
	switch c.Kind {
	case KindNone:
		return nil
	case KindNextLine:
		if c.Degree <= 0 || c.Degree > queueCap || c.Distance <= 0 {
			return fmt.Errorf("prefetch: next-line needs 0 < Degree <= %d and Distance > 0", queueCap)
		}
	case KindStride:
		if c.Degree <= 0 || c.Degree > queueCap || c.Distance <= 0 {
			return fmt.Errorf("prefetch: stride needs 0 < Degree <= %d and Distance > 0", queueCap)
		}
		if c.TableSize <= 0 || c.TableSize&(c.TableSize-1) != 0 {
			return fmt.Errorf("prefetch: stride TableSize %d not a power of two", c.TableSize)
		}
	case KindBestOffset:
		if c.Degree <= 0 || c.Degree > queueCap {
			return fmt.Errorf("prefetch: best-offset needs 0 < Degree <= %d", queueCap)
		}
		if c.RRSize <= 0 || c.RRSize&(c.RRSize-1) != 0 {
			return fmt.Errorf("prefetch: best-offset RRSize %d not a power of two", c.RRSize)
		}
		if c.ScoreMax <= 0 || c.RoundMax <= 0 || c.BadScore < 0 {
			return fmt.Errorf("prefetch: best-offset needs positive ScoreMax/RoundMax and BadScore >= 0")
		}
	default:
		return fmt.Errorf("prefetch: invalid kind %d", c.Kind)
	}
	if c.ThrottleEpoch < 0 {
		return fmt.Errorf("prefetch: negative ThrottleEpoch %d", c.ThrottleEpoch)
	}
	return nil
}

// New builds the configured prefetcher, or nil for KindNone. It panics on
// invalid configuration (the public API validates first, like the cache
// and DRAM constructors).
func (c Config) New() Prefetcher {
	if err := c.Validate(); err != nil {
		panic(err)
	}
	var p Prefetcher
	switch c.Kind {
	case KindNone:
		return nil
	case KindNextLine:
		p = &nextLine{cfg: c}
	case KindStride:
		p = &stride{cfg: c, table: make([]strideEntry, c.TableSize), mask: uint64(c.TableSize - 1)}
	case KindBestOffset:
		p = newBestOffset(c)
	default:
		panic("unreachable")
	}
	if c.ThrottleEpoch > 0 {
		p = newThrottled(p, c.Degree)
	}
	return p
}

// reqQueue is the shared bounded request queue.
type reqQueue struct {
	q []uint64
	// overflowed counts pushes discarded at queueCap — lost coverage that
	// every engine surfaces through Prefetcher.Overflowed (duplicate
	// pushes are not overflow: they represent no lost coverage).
	overflowed int64
}

// push queues a line-aligned request, dropping duplicates of the current
// queue contents and counting everything past the cap as overflow.
//
//sim:hotpath
func (r *reqQueue) push(addr uint64) {
	addr = uarch.LineAddr(addr)
	for _, a := range r.q {
		if a == addr {
			return // already pending: no coverage lost
		}
	}
	if len(r.q) >= queueCap {
		r.overflowed++
		return
	}
	r.q = append(r.q, addr)
}

// Requests returns the queued requests and empties the queue. The
// returned slice aliases the queue's reusable buffer: it is valid until
// the next Observe call, which is exactly the hierarchy's drain pattern
// (drain fully, then resume observing) — so steady-state draining never
// allocates.
func (r *reqQueue) Requests() []uint64 {
	if len(r.q) == 0 {
		return nil
	}
	out := r.q
	r.q = r.q[:0]
	return out
}

// Overflowed returns the cumulative count of requests dropped at the
// queue cap.
func (r *reqQueue) Overflowed() int64 { return r.overflowed }

// --- next-line ---------------------------------------------------------------

type nextLine struct {
	cfg Config
	reqQueue
}

func (p *nextLine) Name() string { return "next-line" }

// Observe queues the Degree sequential lines starting Distance lines
// ahead of the access — lines Distance .. Distance+Degree-1 — matching
// the Distance > 0 requirement Validate enforces (Distance 1 is classic
// next-line; larger distances trade pollution for timeliness on fast
// sweeps).
//
//sim:hotpath
func (p *nextLine) Observe(a Access) {
	base := uarch.LineAddr(a.Addr)
	for i := 0; i < p.cfg.Degree; i++ {
		p.push(base + uint64(p.cfg.Distance+i)*uarch.LineSize)
	}
}

// --- stride ------------------------------------------------------------------

// strideEntry is one reference-prediction-table row.
type strideEntry struct {
	pc     uint64
	last   uint64 // last address observed for this PC
	stride int64  // last confirmed byte stride
	conf   int8   // saturating confidence
	valid  bool
}

// Confidence thresholds: two confirmations arm the entry, four saturate.
const (
	strideConfMax     = 4
	strideConfTrigger = 2
)

type stride struct {
	cfg   Config
	table []strideEntry
	mask  uint64
	reqQueue
}

func (p *stride) Name() string { return "stride" }

//sim:hotpath
func (p *stride) Observe(a Access) {
	if a.PC == 0 {
		return // PC-less traffic (e.g. store commits) cannot train the RPT
	}
	e := &p.table[a.PC&p.mask]
	if !e.valid || e.pc != a.PC {
		*e = strideEntry{pc: a.PC, last: a.Addr, valid: true}
		return
	}
	s := int64(a.Addr) - int64(e.last)
	e.last = a.Addr
	switch {
	case s == 0:
		return // same address (retry or hot line): no information
	case s == e.stride:
		if e.conf < strideConfMax {
			e.conf++
		}
	default:
		// Mismatch: decay; on full loss of confidence adopt the new stride.
		e.conf--
		if e.conf <= 0 {
			e.stride = s
			e.conf = 1
		}
		return
	}
	if e.conf < strideConfTrigger {
		return
	}
	// Confident: fetch Degree distinct lines starting Distance strides
	// ahead. Sub-line strides advance the target by whole lines so the
	// degree is not wasted on duplicates of one line.
	lineStep := e.stride
	if lineStep > -uarch.LineSize && lineStep < uarch.LineSize {
		if lineStep > 0 {
			lineStep = uarch.LineSize
		} else {
			lineStep = -uarch.LineSize
		}
	}
	base := int64(a.Addr) + e.stride*int64(p.cfg.Distance)
	for i := 0; i < p.cfg.Degree; i++ {
		target := base + int64(i)*lineStep
		if target < 0 {
			continue // descending stream ran past address zero
		}
		p.push(uint64(target))
	}
}

// --- best offset -------------------------------------------------------------

// bopOffsets is the candidate offset list in lines: Michaud's list is the
// 2^i*3^j*5^k smooth numbers up to 256; this model uses the dense prefix
// that matters at the proxies' working-set scales.
var bopOffsets = []int64{1, 2, 3, 4, 5, 6, 8, 9, 10, 12, 15, 16, 18, 20, 24, 27, 30, 32, 36, 40, 48, 54, 60, 64}

type bestOffset struct {
	cfg    Config
	rr     []uint64 // direct-mapped recent request lines
	rrMask uint64
	scores []int
	test   int // cursor into bopOffsets for the offset under test
	round  int
	best   int64 // elected offset in lines; 0 = prefetching disabled
	reqQueue
}

func newBestOffset(cfg Config) *bestOffset {
	return &bestOffset{
		cfg:    cfg,
		rr:     make([]uint64, cfg.RRSize),
		rrMask: uint64(cfg.RRSize - 1),
		scores: make([]int, len(bopOffsets)),
		best:   1, // start sequential until the first phase elects a winner
	}
}

func (p *bestOffset) Name() string { return "best-offset" }

// Observe implements the learning loop: each access tests one candidate
// offset d against the recent-requests table (was line X-d requested
// recently? then offset d would have prefetched X in time), inserts the
// access into the RR table, and prefetches with the currently elected
// offset. Inserting at access time rather than at fill completion is the
// model's one simplification; it biases the learner slightly toward
// aggressive offsets, which the BadScore cutoff compensates.
func (p *bestOffset) Observe(a Access) {
	x := a.Addr / uarch.LineSize

	d := bopOffsets[p.test]
	if x >= uint64(d) && p.rrContains(x-uint64(d)) {
		p.scores[p.test]++
		if p.scores[p.test] >= p.cfg.ScoreMax {
			p.elect(p.test)
		}
	}
	p.test++
	if p.test == len(bopOffsets) {
		p.test = 0
		p.round++
		if p.round >= p.cfg.RoundMax {
			best := 0
			for i, s := range p.scores {
				if s > p.scores[best] {
					best = i
				}
			}
			p.elect(best)
		}
	}

	p.rrInsert(x)

	if p.best == 0 {
		return
	}
	for i := 1; i <= p.cfg.Degree; i++ {
		p.push((x + uint64(p.best)*uint64(i)) * uarch.LineSize)
	}
}

// elect ends the learning phase: adopt the winner (or disable prefetching
// on a bad score) and reset the score board for the next phase.
func (p *bestOffset) elect(idx int) {
	if p.scores[idx] > p.cfg.BadScore {
		p.best = bopOffsets[idx]
	} else {
		p.best = 0
	}
	for i := range p.scores {
		p.scores[i] = 0
	}
	p.test = 0
	p.round = 0
}

func (p *bestOffset) rrContains(line uint64) bool {
	return p.rr[line&p.rrMask] == line && line != 0
}

func (p *bestOffset) rrInsert(line uint64) {
	p.rr[line&p.rrMask] = line
}

// --- accuracy-driven degree throttle -----------------------------------------

// Throttle response thresholds (feedback-directed-prefetching style):
// epoch accuracy at or above throttleAccHigh steps the degree up, below
// throttleAccLow steps it down; in between, a mostly-late epoch (useful
// fills that demand still waited on) also steps up — the engine is
// predicting the right lines too late, so more look-ahead volume helps.
// Epochs with fewer than throttleMinIssued injected requests carry no
// signal and leave the degree unchanged.
const (
	throttleAccHigh   = 0.70
	throttleAccLow    = 0.35
	throttleLateHigh  = 0.5
	throttleMinIssued = 8
)

// throttled wraps any engine with the accuracy-driven degree controller:
// the inner engine generates at its configured (maximum) degree and the
// wrapper forwards at most `deg` of each observation's requests, so the
// effective degree moves between 1 and the maximum without the engine
// knowing. Feedback samples arrive from the hierarchy as cumulative
// counters (see Adaptive); the wrapper differences consecutive samples.
type throttled struct {
	inner Prefetcher
	max   int
	deg   int
	last  Feedback
	reqQueue
}

func newThrottled(inner Prefetcher, maxDegree int) *throttled {
	// Start at the maximum: identical to the open-loop engine until the
	// first epoch proves the traffic useless, so regular streams never
	// pay a warmup penalty.
	return &throttled{inner: inner, max: maxDegree, deg: maxDegree}
}

func (t *throttled) Name() string { return "throttled(" + t.inner.Name() + ")" }

// Observe trains the inner engine and forwards at most the effective
// degree of the requests it generated for this observation.
func (t *throttled) Observe(a Access) {
	t.inner.Observe(a)
	for i, addr := range t.inner.Requests() {
		if i >= t.deg {
			break
		}
		t.push(addr)
	}
}

// Overflowed combines the wrapper's own queue overflow with the inner
// engine's (the inner queue is drained every observation, so its share is
// normally zero).
func (t *throttled) Overflowed() int64 {
	return t.reqQueue.Overflowed() + t.inner.Overflowed()
}

// Degree returns the current effective degree (tests and diagnostics).
func (t *throttled) Degree() int { return t.deg }

// Feedback differences the cumulative sample against the previous epoch
// and moves the effective degree one step.
func (t *throttled) Feedback(f Feedback) {
	di := f.Issued - t.last.Issued
	du := f.Useful - t.last.Useful
	dl := f.Late - t.last.Late
	t.last = f
	if di < throttleMinIssued {
		return
	}
	acc := float64(du) / float64(di)
	lateRatio := 0.0
	if du > 0 {
		lateRatio = float64(dl) / float64(du)
	}
	switch {
	case acc >= throttleAccHigh:
		if t.deg < t.max {
			t.deg++
		}
	case acc < throttleAccLow:
		if t.deg > 1 {
			t.deg--
		}
	case lateRatio >= throttleLateHigh:
		if t.deg < t.max {
			t.deg++
		}
	}
}

// --- variants ----------------------------------------------------------------

// Variant is a named per-level prefetcher assignment plus the PRE-aware
// filter switch — one point of the PF-augmented simulation grid.
type Variant struct {
	// Name labels the variant in reports and results sinks.
	Name string
	// L1I, L1D and L2 configure the per-level prefetchers (Kind None
	// disables). The L1I engine observes the instruction-fetch stream.
	L1I, L1D, L2 Config
	// Filter enables the PRE-aware filter: hardware prefetch requests
	// whose line is already covered by an in-flight runahead-tagged MSHR
	// are dropped (and counted separately as FilteredRA), so HW engines
	// stop duplicating work the runahead mechanism already started.
	Filter bool
}

// Variants lists the standard PF grid points. The first four are the
// original open-loop grid: no prefetching, an L1D stride prefetcher, an
// L2 best-offset prefetcher, and both combined. The adaptive points layer
// the new machinery on top: an L1I next-line engine for front-end-bound
// workloads, the accuracy-driven degree throttle, the PRE-aware filter
// on the open-loop pair (isolating the interference term), and the full
// adaptive stack. Every runahead mode crossed with these variants yields
// the PRE-vs-prefetch-vs-combined comparison the paper frames its result
// against.
func Variants() []Variant {
	return []Variant{
		{Name: "no-pf"},
		{Name: "stride", L1D: DefaultStride()},
		{Name: "best-offset", L2: DefaultBestOffset()},
		{Name: "stride+bo", L1D: DefaultStride(), L2: DefaultBestOffset()},
		{Name: "l1i-nl", L1I: DefaultL1INextLine()},
		{Name: "throttled", L1D: ThrottledStride(), L2: ThrottledBestOffset()},
		{Name: "filtered", L1D: DefaultStride(), L2: DefaultBestOffset(), Filter: true},
		{Name: "adaptive", L1I: ThrottledL1INextLine(), L1D: ThrottledStride(), L2: ThrottledBestOffset(), Filter: true},
	}
}

// VariantByName looks up a standard grid point.
func VariantByName(name string) (Variant, error) {
	for _, v := range Variants() {
		if v.Name == name {
			return v, nil
		}
	}
	return Variant{}, fmt.Errorf("prefetch: unknown variant %q", name)
}
