package frontend

import (
	"math"

	"repro/internal/mem"
	"repro/internal/trace"
	"repro/internal/uarch"
)

// FetchConfig sizes the fetch/decode pipe.
type FetchConfig struct {
	// Width is the number of µops the front-end delivers per cycle. The
	// paper's methodology assumes delivery of up to 8 µops/cycle (the
	// µop-cache path) — this feeds PRE's 8-wide runahead SST filter, while
	// normal-mode throughput stays bounded by the core's 4-wide
	// rename/dispatch/commit (Table 1).
	Width int
	// Depth is the number of front-end pipeline stages between fetch and
	// rename (Table 1: 8); a fetched µop becomes available for decode/
	// rename Depth cycles later, so every redirect costs a Depth-cycle
	// refill bubble.
	Depth int
	// QueueSize bounds the decoded micro-op queue (backpressure point).
	QueueSize int
}

// DefaultFetchConfig returns the Table 1 front end (see Width for the
// 8-µop delivery assumption).
func DefaultFetchConfig() FetchConfig {
	return FetchConfig{Width: 8, Depth: 8, QueueSize: 64}
}

// Slot is one fetched µop waiting in the decode pipe / µop queue.
type Slot struct {
	// Seq is the dynamic sequence number (resolve via the trace Stream).
	Seq int64
	// Ready is the cycle the µop reaches the decode/rename boundary.
	Ready int64
	// Mispredicted marks a control µop whose prediction was wrong; the
	// fetch unit froze immediately after fetching it.
	Mispredicted bool
}

// neverThaw freezes fetch until an explicit redirect.
const neverThaw = math.MaxInt64

// Stats counts front-end activity for the energy model and reports.
type Stats struct {
	FetchedUops   int64
	ICacheStallCy int64
	FreezeCycles  int64 // cycles fetch was frozen on a mispredict or rewind
}

// FetchUnit models fetch through decode. It follows the true-path trace,
// freezing on mispredictions until the core calls Redirect, and supports
// the rewind needed when traditional runahead flushes the pipeline.
type FetchUnit struct {
	cfg    FetchConfig
	stream *trace.Stream
	pred   *Predictor
	hier   *mem.Hierarchy

	nextSeq     int64
	frozenUntil int64
	queue       []Slot // FIFO of fetched µops (decode pipe + µop queue)

	curLine   uint64 // I-cache line currently being fetched from
	lineReady int64  // when the current line's fetch completes

	stats Stats
}

// NewFetchUnit builds a fetch unit reading from stream, predicting with
// pred and fetching instructions through hier's L1I.
func NewFetchUnit(cfg FetchConfig, stream *trace.Stream, pred *Predictor, hier *mem.Hierarchy) *FetchUnit {
	if cfg.Width <= 0 || cfg.Depth <= 0 || cfg.QueueSize <= 0 {
		panic("frontend: non-positive fetch geometry")
	}
	return &FetchUnit{
		cfg:     cfg,
		stream:  stream,
		pred:    pred,
		hier:    hier,
		queue:   make([]Slot, 0, cfg.QueueSize),
		curLine: ^uint64(0),
	}
}

// Stats returns a copy of the counters.
func (f *FetchUnit) Stats() Stats { return f.stats }

// ResetStats zeroes the counters.
func (f *FetchUnit) ResetStats() { f.stats = Stats{} }

// NextSeq returns the sequence number fetch will read next.
func (f *FetchUnit) NextSeq() int64 { return f.nextSeq }

// Frozen reports whether fetch is currently stalled on a mispredict or an
// explicit rewind at the given cycle.
func (f *FetchUnit) Frozen(now int64) bool { return f.frozenUntil > now }

// QueueLen returns the number of µops in the pipe/queue.
func (f *FetchUnit) QueueLen() int { return len(f.queue) }

// Cycle fetches up to Width µops at cycle now, pushing them into the pipe.
func (f *FetchUnit) Cycle(now int64) {
	if f.frozenUntil > now {
		f.stats.FreezeCycles++
		return
	}
	if f.lineReady > now {
		f.stats.ICacheStallCy++
		return
	}
	for budget := f.cfg.Width; budget > 0 && len(f.queue) < f.cfg.QueueSize; budget-- {
		u := f.stream.At(f.nextSeq)
		line := uarch.LineAddr(u.PC)
		if line != f.curLine {
			res, ok := f.hier.Fetch(line, now)
			if !ok {
				// I-cache MSHRs exhausted: retry next cycle.
				f.stats.ICacheStallCy++
				return
			}
			f.curLine = line
			if res.Ready > now+int64(f.hier.L1I().HitLatency()) {
				// Line miss: fetch resumes when the line arrives.
				f.lineReady = res.Ready
				return
			}
		}
		correct := true
		if u.IsBranch() {
			correct = f.pred.PredictAndTrain(u)
		}
		f.queue = append(f.queue, Slot{
			Seq:          f.nextSeq,
			Ready:        now + int64(f.cfg.Depth),
			Mispredicted: !correct,
		})
		f.nextSeq++
		f.stats.FetchedUops++
		if !correct {
			// Freeze until the core redirects after the branch resolves.
			f.frozenUntil = neverThaw
			return
		}
	}
}

// Pop removes and returns the oldest µop if it has cleared the decode pipe
// by cycle now.
func (f *FetchUnit) Pop(now int64) (Slot, bool) {
	if len(f.queue) == 0 || f.queue[0].Ready > now {
		return Slot{}, false
	}
	s := f.queue[0]
	copy(f.queue, f.queue[1:])
	f.queue = f.queue[:len(f.queue)-1]
	return s, true
}

// Peek returns the oldest µop without removing it.
func (f *FetchUnit) Peek(now int64) (Slot, bool) {
	if len(f.queue) == 0 || f.queue[0].Ready > now {
		return Slot{}, false
	}
	return f.queue[0], true
}

// Redirect unfreezes fetch at the given cycle (mispredicted branch
// resolved). Fetch continues from where it stopped — the µop after the
// mispredicted branch, which is the true path.
func (f *FetchUnit) Redirect(resume int64) {
	if f.frozenUntil == neverThaw || f.frozenUntil < resume {
		f.frozenUntil = resume
	}
}

// Bubble freezes fetch for a fixed number of cycles from now (used for
// runahead-mode mispredictions that are never resolved by execution).
func (f *FetchUnit) Bubble(now, cycles int64) {
	if f.frozenUntil == neverThaw {
		f.frozenUntil = now + cycles
	} else if now+cycles > f.frozenUntil {
		f.frozenUntil = now + cycles
	}
}

// Rewind discards the entire pipe and restarts fetch at seq, resuming at
// the given cycle. Traditional runahead and the runahead buffer use this
// at runahead exit (re-fetch from the stalling load); PRE uses it to
// re-fetch the µops it consumed during runahead.
func (f *FetchUnit) Rewind(seq, resume int64) {
	f.queue = f.queue[:0]
	f.nextSeq = seq
	f.frozenUntil = resume
	f.curLine = ^uint64(0)
	f.lineReady = 0
}

// Freeze stops fetch entirely until Redirect/Rewind (runahead-buffer mode
// power-gates the front-end during runahead).
func (f *FetchUnit) Freeze() { f.frozenUntil = neverThaw }

// --- full-state snapshot (E6 ablation support) ---------------------------

// FetchSnapshot captures the fetch unit's state for the E6 ablation.
type FetchSnapshot struct {
	nextSeq     int64
	frozenUntil int64
	queue       []Slot
	curLine     uint64
	lineReady   int64
}

// TakeSnapshot deep-copies the fetch state.
func (f *FetchUnit) TakeSnapshot() *FetchSnapshot {
	return &FetchSnapshot{
		nextSeq:     f.nextSeq,
		frozenUntil: f.frozenUntil,
		queue:       append([]Slot(nil), f.queue...),
		curLine:     f.curLine,
		lineReady:   f.lineReady,
	}
}

// RestoreSnapshot restores a TakeSnapshot copy; fetch resumes no earlier
// than the given cycle.
func (f *FetchUnit) RestoreSnapshot(s *FetchSnapshot, resume int64) {
	f.nextSeq = s.nextSeq
	f.frozenUntil = s.frozenUntil
	if f.frozenUntil != neverThaw && f.frozenUntil < resume {
		f.frozenUntil = resume
	}
	f.queue = append(f.queue[:0], s.queue...)
	f.curLine = s.curLine
	f.lineReady = s.lineReady
}
