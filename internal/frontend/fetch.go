package frontend

import (
	"math"

	"repro/internal/mem"
	"repro/internal/trace"
	"repro/internal/uarch"
)

// FetchConfig sizes the fetch/decode pipe.
type FetchConfig struct {
	// Width is the number of µops the front-end delivers per cycle. The
	// paper's methodology assumes delivery of up to 8 µops/cycle (the
	// µop-cache path) — this feeds PRE's 8-wide runahead SST filter, while
	// normal-mode throughput stays bounded by the core's 4-wide
	// rename/dispatch/commit (Table 1).
	Width int
	// Depth is the number of front-end pipeline stages between fetch and
	// rename (Table 1: 8); a fetched µop becomes available for decode/
	// rename Depth cycles later, so every redirect costs a Depth-cycle
	// refill bubble.
	Depth int
	// QueueSize bounds the decoded micro-op queue (backpressure point).
	QueueSize int
}

// DefaultFetchConfig returns the Table 1 front end (see Width for the
// 8-µop delivery assumption).
func DefaultFetchConfig() FetchConfig {
	return FetchConfig{Width: 8, Depth: 8, QueueSize: 64}
}

// Slot is one fetched µop waiting in the decode pipe / µop queue.
type Slot struct {
	// Seq is the dynamic sequence number (resolve via the trace Stream).
	Seq int64
	// Ready is the cycle the µop reaches the decode/rename boundary.
	Ready int64
	// Mispredicted marks a control µop whose prediction was wrong; the
	// fetch unit froze immediately after fetching it.
	Mispredicted bool
}

// neverThaw freezes fetch until an explicit redirect.
const neverThaw = math.MaxInt64

// Stats counts front-end activity for the energy model and reports.
type Stats struct {
	FetchedUops   int64
	ICacheStallCy int64
	FreezeCycles  int64 // cycles fetch was frozen on a mispredict or rewind
}

// FetchUnit models fetch through decode. It follows the true-path trace,
// freezing on mispredictions until the core calls Redirect, and supports
// the rewind needed when traditional runahead flushes the pipeline.
type FetchUnit struct {
	cfg    FetchConfig
	stream *trace.Stream
	pred   *Predictor
	hier   *mem.Hierarchy

	nextSeq     int64
	frozenUntil int64

	// queue is a fixed-capacity ring of fetched µops (decode pipe + µop
	// queue); qHead/qLen index it. A ring (rather than a shifted slice)
	// keeps Pop O(1) — with up to Width pops per cycle, slice shifting
	// was a measurable share of the simulator's hot path.
	queue []Slot
	qHead int
	qLen  int

	curLine   uint64 // I-cache line currently being fetched from
	lineReady int64  // when the current line's fetch completes

	stats Stats
}

// NewFetchUnit builds a fetch unit reading from stream, predicting with
// pred and fetching instructions through hier's L1I.
func NewFetchUnit(cfg FetchConfig, stream *trace.Stream, pred *Predictor, hier *mem.Hierarchy) *FetchUnit {
	if cfg.Width <= 0 || cfg.Depth <= 0 || cfg.QueueSize <= 0 {
		panic("frontend: non-positive fetch geometry")
	}
	return &FetchUnit{
		cfg:     cfg,
		stream:  stream,
		pred:    pred,
		hier:    hier,
		queue:   make([]Slot, cfg.QueueSize),
		curLine: ^uint64(0),
	}
}

// Stats returns a copy of the counters.
func (f *FetchUnit) Stats() Stats { return f.stats }

// ResetStats zeroes the counters.
func (f *FetchUnit) ResetStats() { f.stats = Stats{} }

// NextSeq returns the sequence number fetch will read next.
func (f *FetchUnit) NextSeq() int64 { return f.nextSeq }

// Frozen reports whether fetch is currently stalled on a mispredict or an
// explicit rewind at the given cycle.
func (f *FetchUnit) Frozen(now int64) bool { return f.frozenUntil > now }

// QueueLen returns the number of µops in the pipe/queue.
func (f *FetchUnit) QueueLen() int { return f.qLen }

// CycleStatus summarizes what one fetch Cycle did, so the core's
// event-driven cycle skipper can classify the cycle: active statuses
// (CycleFetched, CycleLineMiss, CycleMSHRBlocked) mutate machine or
// statistics state every cycle and forbid skipping; passive statuses
// (CycleFrozen, CycleLineWait, CycleIdle) repeat identically until a known
// wake-up cycle and are replicable in bulk via SkipIdle.
type CycleStatus uint8

// Fetch cycle outcomes.
const (
	// CycleIdle: nothing to do (µop queue full); no state or counter
	// changed.
	CycleIdle CycleStatus = iota
	// CycleFetched: at least one µop entered the pipe.
	CycleFetched
	// CycleFrozen: fetch is frozen (mispredict/rewind); FreezeCycles
	// counted.
	CycleFrozen
	// CycleLineWait: waiting on an in-flight I-cache line; ICacheStallCy
	// counted.
	CycleLineWait
	// CycleLineMiss: this cycle started an I-cache line fetch (memory
	// state changed); fetch resumes when the line arrives.
	CycleLineMiss
	// CycleMSHRBlocked: the I-cache rejected the fetch for lack of MSHRs;
	// the retry itself is a counted event every cycle.
	CycleMSHRBlocked
)

// Cycle fetches up to Width µops at cycle now, pushing them into the pipe.
// The returned status classifies the cycle for the core's cycle skipper.
func (f *FetchUnit) Cycle(now int64) CycleStatus {
	if f.frozenUntil > now {
		f.stats.FreezeCycles++
		return CycleFrozen
	}
	if f.lineReady > now {
		f.stats.ICacheStallCy++
		return CycleLineWait
	}
	budget := f.cfg.Width
	if room := f.cfg.QueueSize - f.qLen; room < budget {
		budget = room
	}
	if budget <= 0 {
		return CycleIdle
	}
	ready := now + int64(f.cfg.Depth)
	tail := f.qHead + f.qLen
	if tail >= len(f.queue) {
		tail -= len(f.queue)
	}
	fetched := false
	for budget > 0 {
		// One Span call per cycle (two across a ring wrap) replaces one
		// stream.At per µop. No stream access happens inside the loop, so
		// the aliased span stays valid.
		span := f.stream.Span(f.nextSeq, int64(budget))
		for i := range span {
			u := &span[i]
			line := uarch.LineAddr(u.PC)
			if line != f.curLine {
				res, ok := f.hier.Fetch(line, now)
				if !ok {
					// I-cache MSHRs exhausted: retry next cycle.
					f.stats.ICacheStallCy++
					return CycleMSHRBlocked
				}
				f.curLine = line
				if res.Ready > now+int64(f.hier.L1I().HitLatency()) {
					// Line miss: fetch resumes when the line arrives.
					f.lineReady = res.Ready
					return CycleLineMiss
				}
			}
			correct := true
			if u.IsBranch() {
				correct = f.pred.PredictAndTrain(u)
			}
			f.queue[tail] = Slot{
				Seq:          f.nextSeq,
				Ready:        ready,
				Mispredicted: !correct,
			}
			tail++
			if tail == len(f.queue) {
				tail = 0
			}
			f.qLen++
			f.nextSeq++
			f.stats.FetchedUops++
			fetched = true
			budget--
			if !correct {
				// Freeze until the core redirects after the branch resolves.
				f.frozenUntil = neverThaw
				return CycleFetched
			}
		}
	}
	if fetched {
		return CycleFetched
	}
	return CycleIdle
}

// NextWakeAt returns the first cycle after now at which a currently
// stalled fetch unit could resume (thaw or line arrival). ok=false means
// fetch is either not time-blocked or frozen indefinitely (awaiting an
// explicit Redirect/Rewind).
func (f *FetchUnit) NextWakeAt(now int64) (int64, bool) {
	if f.frozenUntil > now {
		if f.frozenUntil == neverThaw {
			return 0, false
		}
		return f.frozenUntil, true
	}
	if f.lineReady > now {
		return f.lineReady, true
	}
	return 0, false
}

// HeadReadyAt returns the cycle the oldest queued µop clears the decode
// pipe (ok=false when the queue is empty).
func (f *FetchUnit) HeadReadyAt() (int64, bool) {
	if f.qLen == 0 {
		return 0, false
	}
	return f.queue[f.qHead].Ready, true
}

// SkipIdle accounts n skipped cycles starting at now, replicating exactly
// the per-cycle counters Cycle would have incremented. The caller (the
// core's cycle skipper) guarantees the fetch unit's stall class does not
// change over the skipped span: when frozen, now+n does not exceed
// frozenUntil; when waiting on a line, it does not exceed lineReady.
func (f *FetchUnit) SkipIdle(now, n int64) {
	switch {
	case f.frozenUntil > now:
		f.stats.FreezeCycles += n
	case f.lineReady > now:
		f.stats.ICacheStallCy += n
	}
}

// AddStats accumulates d into the counters — the cycle skipper's bulk
// accounting hook for skipped steady retry cycles.
func (f *FetchUnit) AddStats(d Stats) {
	f.stats.FetchedUops += d.FetchedUops
	f.stats.ICacheStallCy += d.ICacheStallCy
	f.stats.FreezeCycles += d.FreezeCycles
}

// Pop removes and returns the oldest µop if it has cleared the decode pipe
// by cycle now.
func (f *FetchUnit) Pop(now int64) (Slot, bool) {
	if f.qLen == 0 || f.queue[f.qHead].Ready > now {
		return Slot{}, false
	}
	s := f.queue[f.qHead]
	f.qHead = (f.qHead + 1) % len(f.queue)
	f.qLen--
	return s, true
}

// Peek returns the oldest µop without removing it.
func (f *FetchUnit) Peek(now int64) (Slot, bool) {
	if f.qLen == 0 || f.queue[f.qHead].Ready > now {
		return Slot{}, false
	}
	return f.queue[f.qHead], true
}

// ReadyRun copies into dst the leading run of queued µops that have
// cleared the decode pipe by cycle now, without removing them, and returns
// the run length. Ready times are nondecreasing along the queue (fetch
// cycles are, and the pipe depth is fixed), so the run is exactly the
// sequence repeated Peek calls would yield. The dispatcher reads the run
// once per cycle and retires what it consumed with PopN.
func (f *FetchUnit) ReadyRun(now int64, dst []Slot) int {
	n := f.qLen
	if n > len(dst) {
		n = len(dst)
	}
	run := 0
	idx := f.qHead
	for run < n && f.queue[idx].Ready <= now {
		dst[run] = f.queue[idx]
		run++
		idx++
		if idx == len(f.queue) {
			idx = 0
		}
	}
	return run
}

// PopN removes the k oldest µops. k must not exceed the length of the
// run returned by the preceding ReadyRun call.
func (f *FetchUnit) PopN(k int) {
	if k <= 0 {
		return
	}
	f.qHead += k
	if f.qHead >= len(f.queue) {
		f.qHead -= len(f.queue)
	}
	f.qLen -= k
}

// Redirect unfreezes fetch at the given cycle (mispredicted branch
// resolved). Fetch continues from where it stopped — the µop after the
// mispredicted branch, which is the true path.
func (f *FetchUnit) Redirect(resume int64) {
	if f.frozenUntil == neverThaw || f.frozenUntil < resume {
		f.frozenUntil = resume
	}
}

// Bubble freezes fetch for a fixed number of cycles from now (used for
// runahead-mode mispredictions that are never resolved by execution).
func (f *FetchUnit) Bubble(now, cycles int64) {
	if f.frozenUntil == neverThaw {
		f.frozenUntil = now + cycles
	} else if now+cycles > f.frozenUntil {
		f.frozenUntil = now + cycles
	}
}

// Rewind discards the entire pipe and restarts fetch at seq, resuming at
// the given cycle. Traditional runahead and the runahead buffer use this
// at runahead exit (re-fetch from the stalling load); PRE uses it to
// re-fetch the µops it consumed during runahead.
func (f *FetchUnit) Rewind(seq, resume int64) {
	f.qHead, f.qLen = 0, 0
	f.nextSeq = seq
	f.frozenUntil = resume
	f.curLine = ^uint64(0)
	f.lineReady = 0
}

// Freeze stops fetch entirely until Redirect/Rewind (runahead-buffer mode
// power-gates the front-end during runahead).
func (f *FetchUnit) Freeze() { f.frozenUntil = neverThaw }

// --- full-state snapshot (E6 ablation support) ---------------------------

// FetchSnapshot captures the fetch unit's state for the E6 ablation.
type FetchSnapshot struct {
	nextSeq     int64
	frozenUntil int64
	queue       []Slot
	curLine     uint64
	lineReady   int64
}

// TakeSnapshot deep-copies the fetch state.
func (f *FetchUnit) TakeSnapshot() *FetchSnapshot {
	s := &FetchSnapshot{}
	f.TakeSnapshotInto(s)
	return s
}

// TakeSnapshotInto deep-copies the fetch state into s, reusing s's queue
// buffer — the allocation-free variant for the per-episode snapshot the
// E6 ablation takes at every runahead entry. The ring is linearized in
// FIFO order.
func (f *FetchUnit) TakeSnapshotInto(s *FetchSnapshot) {
	s.nextSeq = f.nextSeq
	s.frozenUntil = f.frozenUntil
	s.queue = s.queue[:0]
	for i := 0; i < f.qLen; i++ {
		s.queue = append(s.queue, f.queue[(f.qHead+i)%len(f.queue)])
	}
	s.curLine = f.curLine
	s.lineReady = f.lineReady
}

// RestoreSnapshot restores a TakeSnapshot copy; fetch resumes no earlier
// than the given cycle.
func (f *FetchUnit) RestoreSnapshot(s *FetchSnapshot, resume int64) {
	f.nextSeq = s.nextSeq
	f.frozenUntil = s.frozenUntil
	if f.frozenUntil != neverThaw && f.frozenUntil < resume {
		f.frozenUntil = resume
	}
	f.qHead, f.qLen = 0, copy(f.queue, s.queue)
	f.curLine = s.curLine
	f.lineReady = s.lineReady
}
