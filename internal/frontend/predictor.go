// Package frontend models the processor front-end: branch prediction
// (gshare + BTB + return-address stack) and the fetch/decode pipe that
// feeds the micro-op queue through a configurable number of front-end
// stages (Table 1: depth 8, width 4; the paper's runahead front-end
// delivers up to 8 µops/cycle to the SST filter).
//
// The simulator is trace-driven on the true path: wrong-path µops are
// never simulated. A misprediction therefore manifests as a fetch freeze —
// the front-end stops supplying µops until the branch resolves and the
// redirect completes — which charges the misprediction penalty without
// modelling wrong-path contents.
package frontend

import "repro/internal/uarch"

// PredictorConfig sizes the branch prediction structures.
type PredictorConfig struct {
	// GshareBits is log2 of the pattern history table size (14 = 16K
	// two-bit counters, a 4 KB table).
	GshareBits int
	// BTBEntries is the branch target buffer size (power of two).
	BTBEntries int
	// RASEntries is the return address stack depth.
	RASEntries int
}

// DefaultPredictorConfig returns the baseline predictor.
func DefaultPredictorConfig() PredictorConfig {
	return PredictorConfig{GshareBits: 14, BTBEntries: 4096, RASEntries: 32}
}

type btbEntry struct {
	tag    uint64
	target uint64
	valid  bool
}

// Predictor is the combined direction/target predictor. Because the
// simulator never leaves the true path, prediction and training happen in
// one step: PredictAndTrain reports whether fetch would have continued on
// the correct path.
type Predictor struct {
	cfg     PredictorConfig
	pht     []uint8 // 2-bit saturating counters
	phtMask uint64
	hist    uint64
	histMsk uint64
	btb     []btbEntry
	btbMask uint64
	ras     []uint64
	rasTop  int

	mispredicts int64
	lookups     int64
}

// NewPredictor builds a predictor, panicking on non-power-of-two sizes.
func NewPredictor(cfg PredictorConfig) *Predictor {
	if cfg.GshareBits < 4 || cfg.GshareBits > 24 {
		panic("frontend: GshareBits out of range")
	}
	if cfg.BTBEntries <= 0 || cfg.BTBEntries&(cfg.BTBEntries-1) != 0 {
		panic("frontend: BTBEntries must be a power of two")
	}
	if cfg.RASEntries <= 0 {
		panic("frontend: RASEntries must be positive")
	}
	n := 1 << cfg.GshareBits
	p := &Predictor{
		cfg:     cfg,
		pht:     make([]uint8, n),
		phtMask: uint64(n - 1),
		histMsk: uint64(n - 1),
		btb:     make([]btbEntry, cfg.BTBEntries),
		btbMask: uint64(cfg.BTBEntries - 1),
		ras:     make([]uint64, cfg.RASEntries),
	}
	for i := range p.pht {
		p.pht[i] = 1 // weakly not-taken
	}
	return p
}

// Mispredicts returns the number of incorrect predictions so far.
func (p *Predictor) Mispredicts() int64 { return p.mispredicts }

// Lookups returns the number of control µops predicted.
func (p *Predictor) Lookups() int64 { return p.lookups }

// ResetStats zeroes the counters without clearing learned state.
func (p *Predictor) ResetStats() { p.mispredicts, p.lookups = 0, 0 }

func (p *Predictor) phtIndex(pc uint64) uint64 {
	return ((pc >> 2) ^ p.hist) & p.phtMask
}

func (p *Predictor) btbIndex(pc uint64) uint64 { return (pc >> 2) & p.btbMask }

// PredictAndTrain predicts the control µop u, trains the structures with
// the true outcome, and reports whether the prediction (direction and
// target) was correct.
func (p *Predictor) PredictAndTrain(u *uarch.Uop) bool {
	p.lookups++
	correct := true
	switch u.Class {
	case uarch.ClassBranch:
		idx := p.phtIndex(u.PC)
		predTaken := p.pht[idx] >= 2
		if predTaken != u.Taken {
			correct = false
		}
		// Train the counter and history with the true outcome.
		if u.Taken {
			if p.pht[idx] < 3 {
				p.pht[idx]++
			}
		} else if p.pht[idx] > 0 {
			p.pht[idx]--
		}
		p.hist = ((p.hist << 1) | b2u(u.Taken)) & p.histMsk
		// A predicted- and actually-taken branch still needs its target.
		if u.Taken && correct {
			correct = p.predictTarget(u.PC, u.Target)
		}
	case uarch.ClassJump:
		correct = p.predictTarget(u.PC, u.Target)
	case uarch.ClassCall:
		correct = p.predictTarget(u.PC, u.Target)
		p.rasPush(u.PC + 4)
	case uarch.ClassReturn:
		correct = p.rasPop() == u.Target
	default:
		// Non-control µops are never mispredicted.
		return true
	}
	if !correct {
		p.mispredicts++
	}
	return correct
}

// predictTarget checks the BTB for pc's target and installs the true one.
func (p *Predictor) predictTarget(pc, target uint64) bool {
	e := &p.btb[p.btbIndex(pc)]
	hit := e.valid && e.tag == pc && e.target == target
	*e = btbEntry{tag: pc, target: target, valid: true}
	return hit
}

func (p *Predictor) rasPush(ret uint64) {
	p.rasTop = (p.rasTop + 1) % len(p.ras)
	p.ras[p.rasTop] = ret
}

func (p *Predictor) rasPop() uint64 {
	v := p.ras[p.rasTop]
	p.rasTop = (p.rasTop - 1 + len(p.ras)) % len(p.ras)
	return v
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
