package frontend

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/trace"
	"repro/internal/uarch"
)

func TestPredictorLearnsLoopBranch(t *testing.T) {
	p := NewPredictor(DefaultPredictorConfig())
	u := &uarch.Uop{PC: 0x400000, Class: uarch.ClassBranch, Taken: true, Target: 0x400100}
	// Warm up: the gshare history register must fill with the branch's own
	// outcomes (14 bits) before every indexed counter saturates.
	for i := 0; i < 24; i++ {
		p.PredictAndTrain(u)
	}
	before := p.Mispredicts()
	for i := 0; i < 100; i++ {
		if !p.PredictAndTrain(u) {
			t.Fatalf("iteration %d mispredicted a saturated loop branch", i)
		}
	}
	if p.Mispredicts() != before {
		t.Error("mispredict counter moved on correct predictions")
	}
}

func TestPredictorNotTakenBranch(t *testing.T) {
	p := NewPredictor(DefaultPredictorConfig())
	u := &uarch.Uop{PC: 0x400010, Class: uarch.ClassBranch, Taken: false}
	for i := 0; i < 4; i++ {
		p.PredictAndTrain(u)
	}
	if !p.PredictAndTrain(u) {
		t.Error("saturated not-taken branch mispredicted")
	}
}

func TestPredictorAlternatingPattern(t *testing.T) {
	// A period-2 pattern is learnable by gshare via history bits.
	p := NewPredictor(DefaultPredictorConfig())
	u := uarch.Uop{PC: 0x400020, Class: uarch.ClassBranch, Target: 0x400200}
	for i := 0; i < 64; i++ {
		u.Taken = i%2 == 0
		p.PredictAndTrain(&u)
	}
	miss := 0
	for i := 64; i < 192; i++ {
		u.Taken = i%2 == 0
		if !p.PredictAndTrain(&u) {
			miss++
		}
	}
	if miss > 12 {
		t.Errorf("alternating branch mispredicted %d/128 after warmup", miss)
	}
}

func TestPredictorJumpBTB(t *testing.T) {
	p := NewPredictor(DefaultPredictorConfig())
	u := &uarch.Uop{PC: 0x400030, Class: uarch.ClassJump, Taken: true, Target: 0x400300}
	if p.PredictAndTrain(u) {
		t.Error("cold BTB jump must mispredict")
	}
	if !p.PredictAndTrain(u) {
		t.Error("warm BTB jump must hit")
	}
}

func TestPredictorCallReturn(t *testing.T) {
	p := NewPredictor(DefaultPredictorConfig())
	call := &uarch.Uop{PC: 0x400040, Class: uarch.ClassCall, Taken: true, Target: 0x500000}
	ret := &uarch.Uop{PC: 0x500010, Class: uarch.ClassReturn, Taken: true, Target: 0x400044}
	p.PredictAndTrain(call) // trains BTB, pushes RAS
	if !p.PredictAndTrain(ret) {
		t.Error("return must hit the RAS")
	}
	// A return without a matching call mispredicts.
	bad := &uarch.Uop{PC: 0x500020, Class: uarch.ClassReturn, Taken: true, Target: 0xdeadbeef}
	if p.PredictAndTrain(bad) {
		t.Error("unmatched return must mispredict")
	}
}

func TestPredictorNonControlAlwaysCorrect(t *testing.T) {
	p := NewPredictor(DefaultPredictorConfig())
	u := &uarch.Uop{PC: 0x400050, Class: uarch.ClassIntAlu}
	if !p.PredictAndTrain(u) {
		t.Error("non-control µop cannot mispredict")
	}
}

func TestPredictorConfigValidation(t *testing.T) {
	bad := []PredictorConfig{
		{GshareBits: 2, BTBEntries: 16, RASEntries: 4},
		{GshareBits: 14, BTBEntries: 100, RASEntries: 4},
		{GshareBits: 14, BTBEntries: 16, RASEntries: 0},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bad predictor config %d accepted", i)
				}
			}()
			NewPredictor(cfg)
		}()
	}
}

// seqGen emits straight-line ALU µops at consecutive PCs with a taken
// loop-back branch every period µops; optionally mispredictable.
type seqGen struct {
	n      uint64
	period uint64
}

func (g *seqGen) Name() string { return "seq" }
func (g *seqGen) Next(u *uarch.Uop) {
	// Per the Generator contract, fully overwrite *u (the Stream does not
	// zero recycled ring slots).
	slot := g.n % g.period
	*u = uarch.Uop{PC: 0x400000 + slot*4}
	if slot == g.period-1 {
		u.Class = uarch.ClassBranch
		u.Taken = true
		u.Target = 0x400000
	} else {
		u.Class = uarch.ClassIntAlu
		u.Dst = uarch.IntReg(int(slot % 8))
		u.Src1 = uarch.IntReg(int((slot + 1) % 8))
	}
	g.n++
}

func newFetchHarness(qsize int) (*FetchUnit, *trace.Stream) {
	s := trace.NewStream(&seqGen{period: 16})
	p := NewPredictor(DefaultPredictorConfig())
	h := mem.New(mem.Default())
	cfg := DefaultFetchConfig()
	if qsize > 0 {
		cfg.QueueSize = qsize
	}
	return NewFetchUnit(cfg, s, p, h), s
}

func TestFetchColdICacheMissStalls(t *testing.T) {
	f, _ := newFetchHarness(0)
	f.Cycle(0)
	if f.QueueLen() != 0 {
		t.Fatal("cold I-cache fetch must produce nothing (line miss)")
	}
	if f.Stats().ICacheStallCy == 0 {
		// First cycle issues the line fetch; subsequent cycles stall.
		f.Cycle(1)
		if f.Stats().ICacheStallCy == 0 {
			t.Error("I-cache stall cycles not recorded")
		}
	}
}

func TestFetchDeliversAfterDepth(t *testing.T) {
	f, _ := newFetchHarness(0)
	// Warm the I-cache first.
	var now int64
	for f.QueueLen() == 0 {
		f.Cycle(now)
		now++
	}
	fetchCycle := now - 1
	slot, ok := f.Peek(fetchCycle)
	if ok {
		t.Fatalf("µop visible at fetch cycle: %+v", slot)
	}
	slot, ok = f.Pop(fetchCycle + 8)
	if !ok {
		t.Fatal("µop must clear the 8-deep pipe")
	}
	if slot.Ready != fetchCycle+8 {
		t.Errorf("ready = %d, want fetch+8 = %d", slot.Ready, fetchCycle+8)
	}
	if slot.Seq != 0 {
		t.Errorf("first pop seq = %d, want 0", slot.Seq)
	}
}

func TestFetchWidthPerCycle(t *testing.T) {
	f, _ := newFetchHarness(0)
	var now int64
	for f.QueueLen() == 0 {
		f.Cycle(now)
		now++
	}
	n0 := f.QueueLen()
	f.Cycle(now)
	if f.QueueLen()-n0 > 8 {
		t.Errorf("fetched %d µops in one cycle, width is 8", f.QueueLen()-n0)
	}
}

func TestFetchQueueBackpressure(t *testing.T) {
	f, _ := newFetchHarness(8)
	var now int64
	for i := 0; i < 200; i++ {
		f.Cycle(now)
		now++
	}
	if f.QueueLen() > 8 {
		t.Errorf("queue grew to %d, cap is 8", f.QueueLen())
	}
}

func TestFetchPopFIFOOrder(t *testing.T) {
	f, _ := newFetchHarness(0)
	var now int64
	for i := 0; i < 400; i++ { // cover the cold I-cache miss (~200 cycles)
		f.Cycle(now)
		now++
	}
	var last int64 = -1
	for {
		s, ok := f.Pop(now + 100)
		if !ok {
			break
		}
		if s.Seq != last+1 {
			t.Fatalf("pop order broken: %d after %d", s.Seq, last)
		}
		last = s.Seq
	}
	if last < 0 {
		t.Fatal("nothing popped")
	}
}

func TestMispredictFreezesUntilRedirect(t *testing.T) {
	// period-16 loop: the loop-back branch is taken; cold BTB makes the
	// first encounter a mispredict, freezing fetch at seq 15.
	f, _ := newFetchHarness(0)
	var now int64
	for i := 0; i < 2000 && !f.Frozen(now); i++ {
		f.Cycle(now)
		now++
	}
	if !f.Frozen(now) {
		t.Fatal("fetch must freeze after the cold mispredicted branch")
	}
	if f.NextSeq() != 16 {
		t.Fatalf("fetch stopped at seq %d, want 16 (after branch)", f.NextSeq())
	}
	f.Redirect(now + 5)
	if f.Frozen(now + 5) {
		t.Error("fetch still frozen after redirect")
	}
	pre := f.QueueLen()
	f.Cycle(now + 5)
	if f.QueueLen() == pre {
		t.Error("fetch did not resume after redirect")
	}
}

func TestBubbleFreezesTemporarily(t *testing.T) {
	f, _ := newFetchHarness(0)
	var now int64
	for f.QueueLen() == 0 {
		f.Cycle(now)
		now++
	}
	f.Bubble(now, 8)
	if !f.Frozen(now + 7) {
		t.Error("bubble must freeze for its duration")
	}
	if f.Frozen(now + 8) {
		t.Error("bubble must thaw after its duration")
	}
}

func TestRewindRestartsFetch(t *testing.T) {
	f, _ := newFetchHarness(0)
	var now int64
	for f.QueueLen() == 0 { // ride out the cold I-cache miss
		f.Cycle(now)
		now++
	}
	f.Rewind(3, now+10)
	if f.QueueLen() != 0 {
		t.Error("rewind must clear the pipe")
	}
	if f.NextSeq() != 3 {
		t.Errorf("rewind seq = %d, want 3", f.NextSeq())
	}
	if !f.Frozen(now + 9) {
		t.Error("rewound fetch must stay frozen until resume")
	}
	for i := int64(10); i < 40; i++ {
		f.Cycle(now + i)
	}
	s, ok := f.Pop(now + 100)
	if !ok || s.Seq != 3 {
		t.Fatalf("first refetched µop = %+v, want seq 3", s)
	}
}

func TestFreezeStopsFetchUntilRewind(t *testing.T) {
	f, _ := newFetchHarness(0)
	var now int64
	for f.QueueLen() == 0 {
		f.Cycle(now)
		now++
	}
	n := f.QueueLen()
	f.Freeze()
	for i := int64(0); i < 20; i++ {
		f.Cycle(now + i)
	}
	if f.QueueLen() != n {
		t.Error("frozen fetch must not fetch")
	}
	if f.Stats().FreezeCycles == 0 {
		t.Error("freeze cycles not counted")
	}
}

func TestFetchStatsReset(t *testing.T) {
	f, _ := newFetchHarness(0)
	for i := int64(0); i < 400; i++ {
		f.Cycle(i)
	}
	if f.Stats().FetchedUops == 0 {
		t.Fatal("no µops fetched in 400 cycles")
	}
	f.ResetStats()
	if f.Stats().FetchedUops != 0 {
		t.Error("ResetStats failed")
	}
}
