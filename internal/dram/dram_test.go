package dram

import (
	"testing"
	"testing/quick"

	"repro/internal/uarch"
)

func TestDefaultConfigValid(t *testing.T) {
	cfg := Default()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if cfg.Ranks*cfg.BanksPerRank != 32 {
		t.Errorf("banks = %d, want 32", cfg.Ranks*cfg.BanksPerRank)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mut := func(f func(*Config)) Config {
		c := Default()
		f(&c)
		return c
	}
	bad := []Config{
		mut(func(c *Config) { c.MemClockMHz = 0 }),
		mut(func(c *Config) { c.Ranks = 3 }),
		mut(func(c *Config) { c.RowBytes = 100 }),
		mut(func(c *Config) { c.BusBytes = 0 }),
		mut(func(c *Config) { c.TCL = 0 }),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestTimingConversion(t *testing.T) {
	d := New(Default())
	// 11 memory cycles at 800 MHz on a 2660 MHz core:
	// ceil(11*2660/800) = ceil(36.575) = 37 core cycles.
	if d.tCL != 37 || d.tRP != 37 || d.tRCD != 37 {
		t.Errorf("tCL/tRP/tRCD = %d/%d/%d, want 37 each", d.tCL, d.tRP, d.tRCD)
	}
	// Burst: 64B / 8B bus / 2 transfers-per-cycle = 4 memory cycles
	// = ceil(4*3.325) = 14 core cycles.
	if d.tBurst != 14 {
		t.Errorf("tBurst = %d, want 14", d.tBurst)
	}
}

func TestFirstAccessIsClosedRow(t *testing.T) {
	d := New(Default())
	done, kind := d.Access(0x100000, 0, false)
	if kind != RowClosed {
		t.Errorf("kind = %v, want RowClosed", kind)
	}
	want := int64(80) + 37 + 37 + 14 // ctrl + tRCD + tCL + burst
	if done != want {
		t.Errorf("done = %d, want %d", done, want)
	}
}

func TestRowHitFaster(t *testing.T) {
	d := New(Default())
	base := uint64(1 << 22)
	first, _ := d.Access(base, 0, false)
	// Same row, next line: must be a row hit and cheaper.
	done, kind := d.Access(base+64, first, false)
	if kind != RowHit {
		t.Errorf("kind = %v, want RowHit", kind)
	}
	lat := done - first
	want := int64(80) + 37 + 14 // ctrl + tCL + burst
	if lat != want {
		t.Errorf("row-hit latency = %d, want %d", lat, want)
	}
}

func TestRowConflictSlowest(t *testing.T) {
	d := New(Default())
	base := uint64(1 << 22)
	d.Access(base, 0, false)
	// Find a different row that hashes onto the same bank (the XOR bank
	// hash breaks the simple row-stride aliasing on purpose).
	rowStride := uint64(4096 * 32)
	conflictAddr := uint64(0)
	for k := uint64(1); k < 1024; k++ {
		cand := base + k*rowStride
		if d.BankOf(cand) == d.BankOf(base) && d.RowOf(cand) != d.RowOf(base) {
			conflictAddr = cand
			break
		}
	}
	if conflictAddr == 0 {
		t.Fatal("no same-bank different-row address found")
	}
	start := int64(1000) // after the first access fully drains
	done, kind := d.Access(conflictAddr, start, false)
	if kind != RowConflictKind {
		t.Errorf("kind = %v, want RowConflict", kind)
	}
	lat := done - start
	want := int64(80) + 37 + 37 + 37 + 14
	if lat != want {
		t.Errorf("conflict latency = %d, want %d", lat, want)
	}
}

func TestBankLevelParallelism(t *testing.T) {
	d := New(Default())
	// Two simultaneous requests to different banks overlap: the second
	// finishes only one bus-burst later than the first, not a full access
	// later.
	a1 := uint64(0)
	a2 := a1 + 4096 // next bank (col bits = 6 lines... 4096B = 64 lines = row size boundary)
	if d.BankOf(a1) == d.BankOf(a2) {
		t.Fatalf("addresses map to same bank %d", d.BankOf(a1))
	}
	d1, _ := d.Access(a1, 0, false)
	d2, _ := d.Access(a2, 0, false)
	if d2 != d1+14 {
		t.Errorf("parallel banks: d1=%d d2=%d, want bus-limited gap of 14", d1, d2)
	}
}

func TestSameBankSerializes(t *testing.T) {
	d := New(Default())
	rowStride := uint64(4096 * 32)
	// Find a same-bank, different-row partner for address 0 under the hash.
	var second uint64
	for k := uint64(1); k < 1024; k++ {
		if d.BankOf(k*rowStride) == d.BankOf(0) && d.RowOf(k*rowStride) != d.RowOf(0) {
			second = k * rowStride
			break
		}
	}
	if second == 0 {
		t.Fatal("no conflicting pair found")
	}
	d1, _ := d.Access(0, 0, false)
	d2, _ := d.Access(second, 0, false) // same bank, different row
	if d2 <= d1+37 {
		t.Errorf("same-bank conflict did not serialize: d1=%d d2=%d", d1, d2)
	}
}

func TestStatsAccumulate(t *testing.T) {
	d := New(Default())
	d.Access(0, 0, false)
	d.Access(64, 100, false)
	d.Access(0, 200, true)
	s := d.Stats()
	if s.Reads != 2 || s.Writes != 1 {
		t.Errorf("reads/writes = %d/%d", s.Reads, s.Writes)
	}
	if s.RowMisses != 1 || s.RowHits != 2 {
		t.Errorf("rowhits/misses = %d/%d, want 2/1", s.RowHits, s.RowMisses)
	}
	d.ResetStats()
	if d.Stats().Reads != 0 {
		t.Error("ResetStats failed")
	}
}

func TestMinAndTypicalLatency(t *testing.T) {
	d := New(Default())
	if d.MinReadLatency() != 80+37+14 {
		t.Errorf("MinReadLatency = %d", d.MinReadLatency())
	}
	if d.TypicalReadLatency() != 80+37+37+14 {
		t.Errorf("TypicalReadLatency = %d", d.TypicalReadLatency())
	}
	if d.TypicalReadLatency() <= d.MinReadLatency() {
		t.Error("typical must exceed min")
	}
}

func TestBankDecodeCoverage(t *testing.T) {
	d := New(Default())
	seen := map[int]bool{}
	for i := uint64(0); i < 64; i++ {
		b := d.BankOf(i * 4096) // stride one row
		if b < 0 || b >= d.NumBanks() {
			t.Fatalf("bank %d out of range", b)
		}
		seen[b] = true
	}
	if len(seen) != 32 {
		t.Errorf("row-stride walk touched %d banks, want all 32", len(seen))
	}
}

// Property: completion time is strictly after request time, and repeated
// accesses to one bank never travel backwards in time.
func TestPropertyMonotonicCompletion(t *testing.T) {
	f := func(addrs []uint32, gaps []uint8) bool {
		d := New(Default())
		now := int64(0)
		var lastDone int64
		for i, a := range addrs {
			if i < len(gaps) {
				now += int64(gaps[i])
			}
			done, _ := d.Access(uint64(a)&^63, now, false)
			if done <= now {
				return false
			}
			if done < lastDone && d.bus >= lastDone {
				// The bus reservation makes global completion monotone.
				return false
			}
			lastDone = done
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: row-hit accesses are never slower than conflict accesses
// issued under identical conditions.
func TestPropertyRowHitNotSlower(t *testing.T) {
	f := func(lineSel uint8) bool {
		base := (uint64(lineSel) * 4096 * 32) & (1<<30 - 1)
		dHit := New(Default())
		dHit.Access(base, 0, false)
		doneHit, _ := dHit.Access(base+uarch.LineSize, 1000, false)

		dConf := New(Default())
		dConf.Access(base, 0, false)
		doneConf, _ := dConf.Access(base+4096*32, 1000, false)
		return doneHit <= doneConf
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
