// Package dram models DDR3 main-memory timing at bank/row granularity,
// matching the paper's Table 1 configuration: DDR3-1600 (800 MHz memory
// clock), 4 ranks, 32 banks total, 4 KB pages (rows), a 64-bit data bus,
// and tRP-tCL-tRCD = 11-11-11 memory cycles.
//
// The model is resource-reservation based: each bank and the shared data
// bus keep a busy-until timestamp in core cycles. A request computes its
// completion time analytically at issue, reserving the resources it uses.
// This captures the phenomena runahead execution exercises — bank-level
// parallelism (MLP), row-buffer locality of prefetch streams, and bus
// serialization — without a discrete event queue.
//
// An open-page policy keeps the row buffer open after an access: a
// subsequent access to the same row pays only tCL, a different row pays
// tRP+tRCD+tCL.
package dram

import (
	"fmt"
	"math/bits"

	"repro/internal/uarch"
)

// Config describes the memory system geometry and timing.
type Config struct {
	// MemClockMHz is the DRAM command clock (800 for DDR3-1600).
	MemClockMHz int
	// CoreClockMHz is the core clock, used to convert memory cycles to
	// core cycles (2660 in the paper's configuration).
	CoreClockMHz int
	// Ranks and BanksPerRank give the bank geometry (4 × 8 = 32 banks).
	Ranks, BanksPerRank int
	// RowBytes is the DRAM page size in bytes (4096).
	RowBytes int
	// BusBytes is the data bus width in bytes (8 for a 64-bit bus).
	BusBytes int
	// TRP, TCL, TRCD are the precharge, CAS and RAS-to-CAS latencies in
	// memory cycles (11-11-11).
	TRP, TCL, TRCD int
	// CtrlLatency is the fixed on-chip latency in core cycles added to
	// every request: memory-controller queueing/scheduling pipeline plus
	// the on-chip interconnect round trip. At 2.66 GHz, 80 cycles is
	// ~30 ns; with the cache-walk and DRAM timing on top, an idle LLC
	// miss costs ~250 core cycles from the core and more under load —
	// the "couple hundred cycles" the paper describes.
	CtrlLatency int
}

// Default returns the paper's Table 1 memory configuration.
func Default() Config {
	return Config{
		MemClockMHz:  800,
		CoreClockMHz: 2660,
		Ranks:        4,
		BanksPerRank: 8,
		RowBytes:     4096,
		BusBytes:     8,
		TRP:          11,
		TCL:          11,
		TRCD:         11,
		CtrlLatency:  80,
	}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	switch {
	case c.MemClockMHz <= 0 || c.CoreClockMHz <= 0:
		return fmt.Errorf("dram: non-positive clock")
	case c.Ranks <= 0 || c.BanksPerRank <= 0:
		return fmt.Errorf("dram: non-positive bank geometry")
	case bits.OnesCount(uint(c.Ranks)) != 1 || bits.OnesCount(uint(c.BanksPerRank)) != 1:
		return fmt.Errorf("dram: ranks and banks must be powers of two")
	case c.RowBytes < uarch.LineSize || bits.OnesCount(uint(c.RowBytes)) != 1:
		return fmt.Errorf("dram: bad row size %d", c.RowBytes)
	case c.BusBytes <= 0 || c.BusBytes > uarch.LineSize:
		return fmt.Errorf("dram: bad bus width %d", c.BusBytes)
	case c.TRP < 0 || c.TCL <= 0 || c.TRCD < 0 || c.CtrlLatency < 0:
		return fmt.Errorf("dram: bad timing parameters")
	}
	return nil
}

// bank tracks one DRAM bank's row buffer and availability.
type bank struct {
	openRow   int64 // -1 = closed (precharged)
	busyUntil int64 // core cycle when the bank can accept a new command
}

// Stats aggregates memory-system counters.
type Stats struct {
	Reads       int64
	Writes      int64
	RowHits     int64
	RowMisses   int64 // closed-row activations
	RowConflict int64 // open different row: precharge + activate
	BusBusyCyc  int64 // core cycles the data bus was reserved
}

// DRAM is the main-memory timing model. Not safe for concurrent use.
type DRAM struct {
	cfg   Config
	banks []bank
	bus   int64 // data bus busy-until, core cycles

	// Precomputed core-cycle versions of the memory timings.
	tRP, tCL, tRCD, tBurst int64

	bankShift  uint // line-address bit where bank id begins
	bankMask   uint64
	rowShift   uint
	totalBanks int

	stats Stats
}

// New builds the memory model, panicking on invalid configuration.
func New(cfg Config) *DRAM {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	toCore := func(memCycles int) int64 {
		// Round up: a fractional core cycle still occupies a full one.
		n := int64(memCycles) * int64(cfg.CoreClockMHz)
		d := int64(cfg.MemClockMHz)
		return (n + d - 1) / d
	}
	totalBanks := cfg.Ranks * cfg.BanksPerRank
	// Burst length: a 64 B line over a BusBytes-wide DDR bus moves two
	// transfers per memory cycle.
	burstMem := uarch.LineSize / cfg.BusBytes / 2
	if burstMem < 1 {
		burstMem = 1
	}
	d := &DRAM{
		cfg:        cfg,
		banks:      make([]bank, totalBanks),
		tRP:        toCore(cfg.TRP),
		tCL:        toCore(cfg.TCL),
		tRCD:       toCore(cfg.TRCD),
		tBurst:     toCore(burstMem),
		totalBanks: totalBanks,
	}
	for i := range d.banks {
		d.banks[i].openRow = -1
	}
	// Address mapping (line-interleaved rows): low bits select the column
	// within a row, then bank, then row. Consecutive rows of the address
	// space stripe across banks, and the bank index is additionally XOR-
	// hashed with row bits (permutation-based interleaving, as in real
	// memory controllers) so that power-of-two strides — stencil planes,
	// matrix rows — do not alias onto a single bank.
	colBits := uint(bits.TrailingZeros(uint(cfg.RowBytes / uarch.LineSize)))
	d.bankShift = colBits
	d.bankMask = uint64(totalBanks - 1)
	d.rowShift = colBits + uint(bits.TrailingZeros(uint(totalBanks)))
	return d
}

// Config returns the configuration in use.
func (d *DRAM) Config() Config { return d.cfg }

// Stats returns a copy of the counters.
func (d *DRAM) Stats() Stats { return d.stats }

// ResetStats zeroes the counters.
func (d *DRAM) ResetStats() { d.stats = Stats{} }

// decode splits a byte address into bank index and row id, XOR-folding
// row bits into the bank index (see New).
func (d *DRAM) decode(addr uint64) (bankIdx int, row int64) {
	lineIdx := addr >> 6
	row = int64(lineIdx >> d.rowShift)
	h := (lineIdx >> d.bankShift) ^ uint64(row) ^ (uint64(row) >> 7)
	bankIdx = int(h & d.bankMask)
	return
}

// RowHitKind classifies the row-buffer outcome of an access.
type RowHitKind uint8

// Row buffer outcomes.
const (
	// RowHit: the open row matched (tCL only).
	RowHit RowHitKind = iota
	// RowClosed: the bank was precharged (tRCD + tCL).
	RowClosed
	// RowConflictKind: a different row was open (tRP + tRCD + tCL).
	RowConflictKind
)

// Access issues a read (or write) of the line containing addr at core
// cycle now and returns the core cycle at which the data transfer
// completes, plus the row-buffer outcome. Writes reserve the same
// resources but their completion time matters only for bus contention.
func (d *DRAM) Access(addr uint64, now int64, write bool) (done int64, kind RowHitKind) {
	bankIdx, row := d.decode(addr)
	b := &d.banks[bankIdx]

	start := now + int64(d.cfg.CtrlLatency)
	if b.busyUntil > start {
		start = b.busyUntil
	}

	// Column reads to an open row pipeline at the burst rate (tCCD); only
	// the activate/precharge phases occupy the bank beyond the burst
	// itself. The CAS latency (tCL) is pure pipeline delay to the
	// requester and does not block the bank.
	var lat, bankHold int64
	switch {
	case b.openRow == row:
		kind = RowHit
		lat = d.tCL
		bankHold = d.tBurst
		d.stats.RowHits++
	case b.openRow == -1:
		kind = RowClosed
		lat = d.tRCD + d.tCL
		bankHold = d.tRCD + d.tBurst
		d.stats.RowMisses++
	default:
		kind = RowConflictKind
		lat = d.tRP + d.tRCD + d.tCL
		bankHold = d.tRP + d.tRCD + d.tBurst
		d.stats.RowConflict++
	}

	dataReady := start + lat
	// Reserve the shared data bus for the burst.
	xferStart := dataReady
	if d.bus > xferStart {
		xferStart = d.bus
	}
	done = xferStart + d.tBurst
	d.bus = done
	d.stats.BusBusyCyc += d.tBurst

	b.openRow = row
	b.busyUntil = start + bankHold

	if write {
		d.stats.Writes++
	} else {
		d.stats.Reads++
	}
	return done, kind
}

// MinReadLatency returns the best-case (row hit, idle system) read latency
// in core cycles — useful for calibrating runahead-entry heuristics.
func (d *DRAM) MinReadLatency() int64 {
	return int64(d.cfg.CtrlLatency) + d.tCL + d.tBurst
}

// TypicalReadLatency returns the closed-row, idle-system latency.
func (d *DRAM) TypicalReadLatency() int64 {
	return int64(d.cfg.CtrlLatency) + d.tRCD + d.tCL + d.tBurst
}

// NumBanks returns the total bank count.
func (d *DRAM) NumBanks() int { return d.totalBanks }

// BankOf exposes the bank index for an address (tests and workload
// calibration).
func (d *DRAM) BankOf(addr uint64) int {
	b, _ := d.decode(addr)
	return b
}

// RowOf exposes the row id for an address (tests).
func (d *DRAM) RowOf(addr uint64) int64 {
	_, r := d.decode(addr)
	return r
}
