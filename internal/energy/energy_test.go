package energy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultParamsValid(t *testing.T) {
	p := Default22nm()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	p := Default22nm()
	p.CoreClockMHz = 0
	if err := p.Validate(); err == nil {
		t.Error("zero clock accepted")
	}
	p = Default22nm()
	p.CoreStaticW = -1
	if err := p.Validate(); err == nil {
		t.Error("negative static power accepted")
	}
}

func TestZeroActivityOnlyStatic(t *testing.T) {
	p := Default22nm()
	b := Compute(p, Activity{Cycles: 2_660_000}) // 1 ms
	if b.CoreDynamic != 0 || b.MemDynamic != 0 || b.Structures != 0 {
		t.Error("no events must mean no dynamic energy")
	}
	wantCore := 1.6e-3 // 1.6 W for 1 ms
	if math.Abs(b.CoreStatic-wantCore) > 1e-9 {
		t.Errorf("core static = %g J, want %g", b.CoreStatic, wantCore)
	}
	if b.Total() <= 0 {
		t.Error("total must be positive with cycles elapsed")
	}
}

func TestDynamicScalesWithEvents(t *testing.T) {
	p := Default22nm()
	a := Activity{Cycles: 1000, Fetched: 1000, Decoded: 1000, Renamed: 1000,
		Dispatched: 1000, IssuedALU: 600, IssuedMem: 300, RegReads: 2000,
		RegWrites: 900, Committed: 1000, L1Accesses: 300, DRAMAccesses: 10}
	b1 := Compute(p, a)
	a2 := a
	a2.Fetched *= 2
	a2.Decoded *= 2
	b2 := Compute(p, a2)
	if b2.CoreDynamic <= b1.CoreDynamic {
		t.Error("more front-end events must cost more core dynamic energy")
	}
	if b2.MemDynamic != b1.MemDynamic {
		t.Error("front-end events must not change memory energy")
	}
}

func TestDRAMAccessDominatesCacheAccess(t *testing.T) {
	p := Default22nm()
	dram := Compute(p, Activity{DRAMAccesses: 1}).MemDynamic
	l1 := Compute(p, Activity{L1Accesses: 1}).MemDynamic
	if dram < 100*l1 {
		t.Errorf("DRAM access (%g) must dwarf an L1 access (%g)", dram, l1)
	}
}

func TestSavingsVs(t *testing.T) {
	base := Breakdown{CoreDynamic: 1.0}
	better := Breakdown{CoreDynamic: 0.9}
	if s := better.SavingsVs(base); math.Abs(s-0.1) > 1e-12 {
		t.Errorf("savings = %v, want 0.1", s)
	}
	worse := Breakdown{CoreDynamic: 1.2}
	if s := worse.SavingsVs(base); s >= 0 {
		t.Error("higher energy must show negative savings")
	}
	if (Breakdown{}).SavingsVs(Breakdown{}) != 0 {
		t.Error("zero base must yield zero savings")
	}
}

func TestStructureEnergySmall(t *testing.T) {
	// Section 3.6: the PRE structures are tiny; their energy must be a
	// small fraction of the pipeline energy for equal event counts.
	p := Default22nm()
	pipeline := Compute(p, Activity{Fetched: 1000, Decoded: 1000, Renamed: 1000}).CoreDynamic
	structs := Compute(p, Activity{SSTLookups: 1000, SSTWrites: 100, PRDQOps: 1000, EMQOps: 1000}).Structures
	if structs > pipeline/2 {
		t.Errorf("structure energy %g too close to pipeline energy %g", structs, pipeline)
	}
}

// Property: energy is additive — computing two activities separately and
// summing equals computing their sum (all terms are linear).
func TestPropertyAdditivity(t *testing.T) {
	p := Default22nm()
	f := func(fetch1, fetch2 uint16, dram1, dram2 uint8, cyc1, cyc2 uint16) bool {
		a1 := Activity{Cycles: int64(cyc1), Fetched: int64(fetch1), DRAMAccesses: int64(dram1)}
		a2 := Activity{Cycles: int64(cyc2), Fetched: int64(fetch2), DRAMAccesses: int64(dram2)}
		sum := Activity{
			Cycles:       a1.Cycles + a2.Cycles,
			Fetched:      a1.Fetched + a2.Fetched,
			DRAMAccesses: a1.DRAMAccesses + a2.DRAMAccesses,
		}
		sep := Compute(p, a1).Total() + Compute(p, a2).Total()
		joint := Compute(p, sum).Total()
		return math.Abs(sep-joint) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBreakdownTotalSums(t *testing.T) {
	b := Breakdown{CoreDynamic: 1, CoreStatic: 2, MemDynamic: 3, DRAMStatic: 4, Structures: 5}
	if b.Total() != 15 {
		t.Errorf("total = %v, want 15", b.Total())
	}
}
