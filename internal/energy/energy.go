// Package energy implements the activity-based power model standing in
// for the paper's McPAT (22 nm core + DRAM) and CACTI 6.5 (SST, PRDQ and
// EMQ) tooling.
//
// The model charges a fixed dynamic energy per micro-architectural event
// (fetched µop, rename, issue-queue write, register read, cache access,
// DRAM access, ...) plus static power integrated over the run's cycle
// count. Absolute watts are calibration constants, but the two effects
// that drive the paper's Figure 3 are modeled structurally:
//
//   - traditional runahead and the runahead buffer fetch, decode, rename
//     and execute a full window's worth of µops twice per invocation
//     (runahead pass + post-flush re-execution), inflating front-end and
//     back-end dynamic energy with no commit to show for it;
//   - PRE's shorter execution time directly scales down the static
//     (leakage + clock) energy of core and DRAM, which is how it comes
//     out 6-7% below the out-of-order baseline despite doing extra
//     dynamic work.
package energy

import "fmt"

// Params holds per-event dynamic energies in picojoules and static power
// in watts. Defaults follow 22 nm McPAT/CACTI-era figures.
type Params struct {
	// Per-µop pipeline event energies (pJ).
	FetchUop  float64 // I-cache read + predictor, amortized per µop
	DecodeUop float64
	RenameUop float64 // RAT read/write + dependence check
	IQWrite   float64 // issue-queue insert
	IQIssue   float64 // wakeup + select + payload read
	RFRead    float64 // one physical register read
	RFWrite   float64 // one physical register write
	ALUOp     float64
	FPUOp     float64
	BranchOp  float64
	ROBWrite  float64 // dispatch allocation
	CommitUop float64 // retirement bookkeeping (incl. pseudo-retire)
	LSQSearch float64 // load/store queue CAM search per memory op

	// Memory hierarchy access energies (pJ).
	L1Access   float64
	L2Access   float64
	L3Access   float64
	DRAMAccess float64 // per 64 B read or write, dynamic

	// Runahead structure energies (pJ) — the CACTI part (Section 3.6:
	// small SRAM/FIFO structures).
	SSTLookup float64
	SSTWrite  float64
	PRDQOp    float64
	EMQOp     float64

	// Static power (W).
	CoreStaticW float64
	DRAMStaticW float64

	// CoreClockMHz converts cycles to seconds for static energy.
	CoreClockMHz float64
}

// Default22nm returns the calibration used by the harness.
func Default22nm() Params {
	return Params{
		FetchUop:  12,
		DecodeUop: 6,
		RenameUop: 10,
		IQWrite:   6,
		IQIssue:   10,
		RFRead:    4,
		RFWrite:   6,
		ALUOp:     10,
		FPUOp:     32,
		BranchOp:  6,
		ROBWrite:  7,
		CommitUop: 5,
		LSQSearch: 12,

		L1Access:   30,
		L2Access:   90,
		L3Access:   400,
		DRAMAccess: 12000, // 12 nJ per 64 B access

		SSTLookup: 4,
		SSTWrite:  5,
		PRDQOp:    2,
		EMQOp:     3,

		CoreStaticW:  1.6,
		DRAMStaticW:  1.1,
		CoreClockMHz: 2660,
	}
}

// Validate rejects non-physical parameters.
func (p *Params) Validate() error {
	if p.CoreClockMHz <= 0 {
		return fmt.Errorf("energy: non-positive clock")
	}
	if p.CoreStaticW < 0 || p.DRAMStaticW < 0 {
		return fmt.Errorf("energy: negative static power")
	}
	return nil
}

// Activity is the event census for one measured window. The sim package
// gathers it from the core, memory and runahead-structure statistics.
type Activity struct {
	Cycles int64

	Fetched                                       int64 // µops through fetch (includes runahead refetches)
	Decoded                                       int64
	Renamed                                       int64
	Dispatched                                    int64 // ROB+IQ inserts
	IssuedALU, IssuedFPU, IssuedBranch, IssuedMem int64
	RegReads                                      int64
	RegWrites                                     int64
	Committed                                     int64 // architectural + pseudo retirement

	L1Accesses, L2Accesses, L3Accesses int64 // includes fills/writebacks
	DRAMAccesses                       int64

	SSTLookups, SSTWrites int64
	PRDQOps, EMQOps       int64
}

// Breakdown is the computed energy in joules.
type Breakdown struct {
	CoreDynamic float64
	CoreStatic  float64
	MemDynamic  float64 // cache + DRAM dynamic
	DRAMStatic  float64
	Structures  float64 // SST + PRDQ + EMQ dynamic
}

// Total returns the summed energy in joules.
func (b Breakdown) Total() float64 {
	return b.CoreDynamic + b.CoreStatic + b.MemDynamic + b.DRAMStatic + b.Structures
}

// Compute applies the parameters to an activity census.
func Compute(p Params, a Activity) Breakdown {
	pj := func(count int64, e float64) float64 { return float64(count) * e * 1e-12 }

	var b Breakdown
	b.CoreDynamic += pj(a.Fetched, p.FetchUop)
	b.CoreDynamic += pj(a.Decoded, p.DecodeUop)
	b.CoreDynamic += pj(a.Renamed, p.RenameUop)
	b.CoreDynamic += pj(a.Dispatched, p.IQWrite+p.ROBWrite)
	issued := a.IssuedALU + a.IssuedFPU + a.IssuedBranch + a.IssuedMem
	b.CoreDynamic += pj(issued, p.IQIssue)
	b.CoreDynamic += pj(a.RegReads, p.RFRead)
	b.CoreDynamic += pj(a.RegWrites, p.RFWrite)
	b.CoreDynamic += pj(a.IssuedALU, p.ALUOp)
	b.CoreDynamic += pj(a.IssuedFPU, p.FPUOp)
	b.CoreDynamic += pj(a.IssuedBranch, p.BranchOp)
	b.CoreDynamic += pj(a.IssuedMem, p.LSQSearch)
	b.CoreDynamic += pj(a.Committed, p.CommitUop)

	b.MemDynamic += pj(a.L1Accesses, p.L1Access)
	b.MemDynamic += pj(a.L2Accesses, p.L2Access)
	b.MemDynamic += pj(a.L3Accesses, p.L3Access)
	b.MemDynamic += pj(a.DRAMAccesses, p.DRAMAccess)

	b.Structures += pj(a.SSTLookups, p.SSTLookup)
	b.Structures += pj(a.SSTWrites, p.SSTWrite)
	b.Structures += pj(a.PRDQOps, p.PRDQOp)
	b.Structures += pj(a.EMQOps, p.EMQOp)

	seconds := float64(a.Cycles) / (p.CoreClockMHz * 1e6)
	b.CoreStatic = p.CoreStaticW * seconds
	b.DRAMStatic = p.DRAMStaticW * seconds
	return b
}

// SavingsVs returns the fractional energy saving of b relative to base
// (positive = b uses less energy), the quantity Figure 3 plots.
func (b Breakdown) SavingsVs(base Breakdown) float64 {
	bt, baset := b.Total(), base.Total()
	if baset == 0 {
		return 0
	}
	return 1 - bt/baset
}
