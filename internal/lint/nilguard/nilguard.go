// Package nilguard enforces the telemetry hook contract: method calls on
// a *telemetry.Recorder stored in a struct field must be dominated by a
// nil check on that same field. The hooks are concrete nil-able pointers
// by design (zero-cost-when-off: a detached simulation pays one nil
// check per hook site, never an interface call), so an unguarded call
// site is a latent nil-pointer panic on every untraced run.
//
// Two guard shapes are accepted, matching the repo idiom:
//
//	if c.tel != nil { c.tel.CycleSkip(...) }     // enclosing positive guard
//	if c.tel == nil { return }; c.tel.Foo(...)   // preceding early exit
//
// Calls on locals and parameters are exempt: binding the field to a
// checked local (tel := c.tel; if tel != nil { ... }) is already safe by
// construction.
package nilguard

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name:        "nilguard",
	Doc:         "requires *telemetry.Recorder field method calls to be dominated by a nil check",
	Contract:    "telemetry hooks are nil-guarded concrete pointers (zero-cost-when-off)",
	RuntimeTest: "telemetry differential suite (TestTraceSidecarOnlyDifferential) on untraced runs",
	Run:         run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	// Walk with an explicit ancestor stack so each call site can search
	// its enclosing ifs and the statements preceding it in each block.
	var stack []ast.Node
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if call, ok := n.(*ast.CallExpr); ok {
			checkCall(pass, call, stack)
		}
		return true
	}
	ast.Inspect(fn.Body, visit)
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	recv := ast.Unparen(sel.X)
	// The receiver must itself be a field selection of *telemetry.Recorder.
	rsel, ok := recv.(*ast.SelectorExpr)
	if !ok {
		return
	}
	selection, ok := pass.TypesInfo.Selections[rsel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	if !analysis.IsNamed(pass.TypesInfo.Types[recv].Type, "telemetry", "Recorder") {
		return
	}
	if _, isPtr := pass.TypesInfo.Types[recv].Type.(*types.Pointer); !isPtr {
		return
	}
	want := types.ExprString(recv)
	if guarded(pass, call, want, stack) {
		return
	}
	pass.Reportf(call.Pos(),
		"unguarded %s.%s call: %s is a nil-able telemetry hook — dominate the call with `if %s != nil`",
		want, sel.Sel.Name, want, want)
}

// guarded reports whether the call is dominated by a nil check on the
// printed receiver expression.
func guarded(pass *analysis.Pass, call *ast.CallExpr, want string, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.IfStmt:
			// Inside the body (not the condition or else) of a positive
			// guard.
			if n.Body != nil && within(n.Body, call.Pos()) && condChecksNotNil(n.Cond, want) {
				return true
			}
		case *ast.BlockStmt:
			// An earlier `if x == nil { return/continue/break/panic }`
			// in this block dominates everything after it.
			for _, s := range n.List {
				if s.End() >= call.Pos() {
					break
				}
				ifs, ok := s.(*ast.IfStmt)
				if !ok || ifs.Else != nil || !condChecksIsNil(ifs.Cond, want) {
					continue
				}
				if divertsControl(ifs.Body) {
					return true
				}
			}
		case *ast.FuncLit:
			// Guards outside a nested function do not dominate its body
			// (the closure may run later, after the field changed).
			return false
		}
	}
	return false
}

func within(n ast.Node, pos token.Pos) bool { return n.Pos() <= pos && pos <= n.End() }

// condChecksNotNil reports whether cond (possibly an && chain) contains
// `want != nil`.
func condChecksNotNil(cond ast.Expr, want string) bool {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch be.Op {
	case token.LAND:
		return condChecksNotNil(be.X, want) || condChecksNotNil(be.Y, want)
	case token.NEQ:
		return nilCompare(be, want)
	}
	return false
}

// condChecksIsNil reports whether cond (possibly an || chain) contains
// `want == nil`.
func condChecksIsNil(cond ast.Expr, want string) bool {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch be.Op {
	case token.LOR:
		return condChecksIsNil(be.X, want) || condChecksIsNil(be.Y, want)
	case token.EQL:
		return nilCompare(be, want)
	}
	return false
}

// nilCompare reports whether one operand is `nil` and the other prints
// as want.
func nilCompare(be *ast.BinaryExpr, want string) bool {
	x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
	if isNilIdent(y) {
		return types.ExprString(x) == want
	}
	if isNilIdent(x) {
		return types.ExprString(y) == want
	}
	return false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// divertsControl reports whether the block unconditionally leaves the
// enclosing flow (return, continue, break, goto, panic).
func divertsControl(body *ast.BlockStmt) bool {
	if body == nil || len(body.List) == 0 {
		return false
	}
	switch last := body.List[len(body.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}
