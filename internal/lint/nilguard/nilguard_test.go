package nilguard_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/nilguard"
)

func TestNilGuard(t *testing.T) {
	analysistest.Run(t, "../testdata/src", nilguard.Analyzer, "nguser")
}
