package loader_test

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint/loader"
)

// TestExternalTestUnits checks the loader mirrors go test's compilation
// model: in-package _test.go files merge into the base unit, and the
// external _test package becomes its own ".test" unit compiled against
// the test-augmented base.
func TestExternalTestUnits(t *testing.T) {
	l, err := loader.New(loader.Config{Root: filepath.Join("..", "testdata", "src"), IncludeTests: true})
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("extt")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("expected 2 units (base + external test), got %d", len(pkgs))
	}
	base, ext := pkgs[0], pkgs[1]
	if base.Path != "extt" || base.Name != "extt" {
		t.Errorf("base unit = %s (%s), want extt (extt)", base.Path, base.Name)
	}
	if len(base.Files) != 2 {
		t.Errorf("base unit has %d files, want 2 (package file + in-package test)", len(base.Files))
	}
	if ext.Path != "extt.test" || ext.Name != "extt_test" {
		t.Errorf("external unit = %s (%s), want extt.test (extt_test)", ext.Path, ext.Name)
	}
	if len(ext.Files) != 1 {
		t.Errorf("external unit has %d files, want 1", len(ext.Files))
	}
}

// TestTestsExcluded checks that with IncludeTests off only the package
// files load — the shape import resolution must always see.
func TestTestsExcluded(t *testing.T) {
	l, err := loader.New(loader.Config{Root: filepath.Join("..", "testdata", "src")})
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("extt")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || len(pkgs[0].Files) != 1 {
		t.Fatalf("expected 1 unit with 1 file, got %d units", len(pkgs))
	}
}

// TestDirsSkipsTestdata checks ./... expansion over the real module:
// fixture trees must never leak into a module-wide run.
func TestDirsSkipsTestdata(t *testing.T) {
	l, err := loader.New(loader.Config{Root: filepath.Join("..", "..", "..")})
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := l.Dirs("./...")
	if err != nil {
		t.Fatal(err)
	}
	var haveCore, haveSimlint bool
	for _, d := range dirs {
		d = filepath.ToSlash(d)
		if strings.Contains(d, "/testdata/") || strings.HasSuffix(d, "/testdata") {
			t.Errorf("testdata directory leaked into ./... expansion: %s", d)
		}
		if strings.HasSuffix(d, "internal/core") {
			haveCore = true
		}
		if strings.HasSuffix(d, "cmd/simlint") {
			haveSimlint = true
		}
	}
	if !haveCore || !haveSimlint {
		t.Errorf("expected internal/core and cmd/simlint in expansion, got %d dirs", len(dirs))
	}
}
