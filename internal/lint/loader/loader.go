// Package loader is a small module-aware package loader: it enumerates,
// parses and type-checks the packages of a single module using only the
// standard library (go/parser + go/types + the go/importer source
// importer), standing in for golang.org/x/tools/go/packages, which the
// dependency-free module cannot import.
//
// Intra-module imports resolve against the module root; everything else
// (the standard library) resolves through the source importer, with cgo
// disabled so packages like net type-check from their pure-Go fallback
// files. Import resolution always uses the package's non-test files;
// analysis units additionally merge in-package _test.go files and load
// external (package foo_test) test packages as their own units, mirroring
// how go test compiles them.
package loader

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Config describes the module to load.
type Config struct {
	// Root is the module root directory (where go.mod lives). For
	// fixture trees it is the testdata src root and may lack a go.mod.
	Root string
	// ModulePath is the module's import path prefix; when empty it is
	// read from Root/go.mod, and when none exists packages are addressed
	// by their Root-relative paths (the analysistest fixture layout).
	ModulePath string
	// IncludeTests merges in-package test files into each analysis unit
	// and loads external _test packages as additional units.
	IncludeTests bool
}

// Package is one loaded analysis unit.
type Package struct {
	// Path is the import path ("repro/internal/exp"); external test
	// units use the base path plus ".test" suffix, which no import can
	// reference.
	Path string
	Dir  string
	Name string
	// Files is the unit's syntax, sorted by file name.
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader loads and caches a module's packages over one shared FileSet.
type Loader struct {
	cfg  Config
	fset *token.FileSet
	src  types.ImporterFrom
	// pure caches the import-resolution variant (no test files) of each
	// module package, keyed by import path.
	pure map[string]*pureEntry
	// goVersion is the module's language version ("go1.22") from go.mod,
	// defaulting to the toolchain's when absent.
	goVersion string
}

type pureEntry struct {
	pkg *types.Package
	err error
}

// New returns a loader for the module at cfg.Root.
func New(cfg Config) (*Loader, error) {
	root, err := filepath.Abs(cfg.Root)
	if err != nil {
		return nil, err
	}
	cfg.Root = root
	l := &Loader{cfg: cfg, fset: token.NewFileSet(), pure: make(map[string]*pureEntry)}
	if data, err := os.ReadFile(filepath.Join(root, "go.mod")); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if rest, ok := strings.CutPrefix(line, "module "); ok && cfg.ModulePath == "" {
				l.cfg.ModulePath = strings.TrimSpace(rest)
			}
			if rest, ok := strings.CutPrefix(line, "go "); ok {
				l.goVersion = "go" + strings.TrimSpace(rest)
			}
		}
	}
	// The source importer compiles imports from source through go/build;
	// with cgo off, packages with C dependencies (net, os/user) fall
	// back to their pure-Go files, which is all type checking needs.
	build.Default.CgoEnabled = false
	srcImp, ok := importer.ForCompiler(l.fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("loader: source importer unavailable")
	}
	l.src = srcImp
	return l, nil
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// pathFor maps a package directory to its import path.
func (l *Loader) pathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.cfg.Root, dir)
	if err != nil {
		return "", err
	}
	rel = filepath.ToSlash(rel)
	switch {
	case rel == ".":
		return l.cfg.ModulePath, nil
	case l.cfg.ModulePath == "":
		return rel, nil
	default:
		return l.cfg.ModulePath + "/" + rel, nil
	}
}

// dirFor maps a module-internal import path to its directory, reporting
// ok=false for paths outside the module.
func (l *Loader) dirFor(path string) (string, bool) {
	mp := l.cfg.ModulePath
	switch {
	case mp != "" && path == mp:
		return l.cfg.Root, true
	case mp != "" && strings.HasPrefix(path, mp+"/"):
		return filepath.Join(l.cfg.Root, filepath.FromSlash(strings.TrimPrefix(path, mp+"/"))), true
	case mp == "" && !strings.Contains(path, "."):
		// Fixture layout: relative paths only; require the directory to
		// exist so stdlib paths ("sort") fall through to the source
		// importer.
		dir := filepath.Join(l.cfg.Root, filepath.FromSlash(path))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir, true
		}
	}
	return "", false
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.cfg.Root, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths load
// from source in-module; everything else delegates to the stdlib source
// importer.
func (l *Loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir, ok := l.dirFor(path); ok {
		return l.purePkg(path, dir)
	}
	return l.src.ImportFrom(path, srcDir, mode)
}

// purePkg type-checks the import-resolution variant of a module package.
func (l *Loader) purePkg(path, dir string) (*types.Package, error) {
	if e, ok := l.pure[path]; ok {
		if e.pkg == nil && e.err == nil {
			return nil, fmt.Errorf("loader: import cycle through %q", path)
		}
		return e.pkg, e.err
	}
	e := &pureEntry{}
	l.pure[path] = e // placeholder guards against cycles
	files, _, _, err := l.parseDir(dir)
	if err == nil && len(files) == 0 {
		err = fmt.Errorf("loader: no Go files in %s", dir)
	}
	if err != nil {
		e.err = err
		return nil, err
	}
	e.pkg, e.err = l.check(path, files, nil, nil)
	return e.pkg, e.err
}

// parseDir parses a directory's Go files into the three compilation
// groups: package files, in-package test files, external test files.
func (l *Loader) parseDir(dir string) (pkg, inTest, extTest []*ast.File, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var names []string
	for _, ent := range entries {
		if n := ent.Name(); !ent.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasPrefix(n, ".") && !strings.HasPrefix(n, "_") {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	var baseName string
	for _, n := range names {
		f, perr := parser.ParseFile(l.fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if perr != nil {
			return nil, nil, nil, perr
		}
		name := f.Name.Name
		switch {
		case !strings.HasSuffix(n, "_test.go"):
			if baseName == "" {
				baseName = name
			}
			pkg = append(pkg, f)
		case strings.HasSuffix(name, "_test"):
			extTest = append(extTest, f)
		default:
			inTest = append(inTest, f)
		}
	}
	return pkg, inTest, extTest, nil
}

// check runs the type checker over one unit with the loader resolving
// imports; imp, when non-nil, overrides it.
func (l *Loader) check(path string, files []*ast.File, info *types.Info, imp types.Importer) (*types.Package, error) {
	if imp == nil {
		imp = l
	}
	conf := types.Config{Importer: imp, GoVersion: l.goVersion}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("loader: type-checking %s: %w", path, err)
	}
	return pkg, nil
}

// overlay resolves one import path to an already-checked package (the
// test-augmented base unit an external _test package compiles against)
// and delegates the rest to the loader.
type overlay struct {
	l    *Loader
	path string
	pkg  *types.Package
}

func (o overlay) Import(path string) (*types.Package, error) {
	return o.ImportFrom(path, o.l.cfg.Root, 0)
}

func (o overlay) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if path == o.path {
		return o.pkg, nil
	}
	return o.l.ImportFrom(path, srcDir, mode)
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// LoadDir loads the analysis units of one package directory: the package
// itself (with its in-package test files when IncludeTests is set) and,
// when present, the external test package.
func (l *Loader) LoadDir(dir string) ([]*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path, err := l.pathFor(dir)
	if err != nil {
		return nil, err
	}
	pkgFiles, inTest, extTest, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(pkgFiles) == 0 && len(inTest) == 0 && len(extTest) == 0 {
		return nil, nil
	}
	var units []*Package
	base := pkgFiles
	if l.cfg.IncludeTests {
		base = append(append([]*ast.File{}, pkgFiles...), inTest...)
	}
	var baseTypes *types.Package
	if len(base) > 0 {
		info := newInfo()
		tp, err := l.check(path, base, info, nil)
		if err != nil {
			return nil, err
		}
		baseTypes = tp
		units = append(units, &Package{
			Path: path, Dir: dir, Name: tp.Name(), Files: base, Types: tp, Info: info,
		})
		// The test-augmented unit is a superset of the pure variant and
		// has identical exported shape; caching it for import resolution
		// would change type identity for packages loaded later, so the
		// pure cache keeps its own entry.
	}
	if l.cfg.IncludeTests && len(extTest) > 0 {
		// External test packages compile against the test-augmented base
		// unit, exactly as go test links them.
		var imp types.Importer
		if baseTypes != nil {
			imp = overlay{l: l, path: path, pkg: baseTypes}
		}
		info := newInfo()
		tp, err := l.check(path+".test", extTest, info, imp)
		if err != nil {
			return nil, err
		}
		units = append(units, &Package{
			Path: path + ".test", Dir: dir, Name: tp.Name(), Files: extTest, Types: tp, Info: info,
		})
	}
	return units, nil
}

// Dirs expands patterns ("./...", "./internal/exp", "internal/exp/...")
// into package directories under Root, skipping testdata, hidden and
// underscore-prefixed directories.
func (l *Loader) Dirs(patterns ...string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		if pat == "" {
			pat = "."
		}
		recursive := false
		if pat == "..." {
			pat, recursive = ".", true
		} else if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			pat, recursive = rest, true
		}
		start := filepath.Join(l.cfg.Root, filepath.FromSlash(pat))
		if !recursive {
			add(start)
			continue
		}
		err := filepath.WalkDir(start, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != start && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, ent := range entries {
		if n := ent.Name(); !ent.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasPrefix(n, ".") && !strings.HasPrefix(n, "_") {
			return true
		}
	}
	return false
}

// Load expands patterns and loads every analysis unit.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs, err := l.Dirs(patterns...)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		units, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, units...)
	}
	return pkgs, nil
}
