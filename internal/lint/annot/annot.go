// Package annot parses and indexes the //sim:* contract annotations that
// tie source code to the ROADMAP standing contracts:
//
//	//sim:hotpath   — steady-state function: hotalloc flags allocation-
//	                  prone constructs inside it (TestSteadyStateAllocs
//	                  is the runtime gate it front-runs).
//	//sim:pure      — side-effect-free probe: purity forbids writes to
//	                  receiver or package state.
//	//sim:wallclock — audited wall-clock read off the byte-identical
//	                  results path (meta.json, progress printing, test
//	                  deadlines); determinism requires it on every
//	                  time.Now/time.Since call site.
//
// An annotation is written either in a function's doc comment (applies
// to the whole function) or as a trailing/preceding line comment
// (applies to the statement on that line). Free text after the kind is
// the auditor's justification and is kept as the annotation argument.
package annot

import (
	"go/ast"
	"go/token"
	"strings"
)

// Known annotation kinds. Kinds outside this registry are reported by
// the simlint driver as typos rather than silently ignored.
const (
	KindHotPath   = "hotpath"
	KindPure      = "pure"
	KindWallclock = "wallclock"
)

// Kinds returns the registry of recognized annotation kinds.
func Kinds() []string { return []string{KindHotPath, KindPure, KindWallclock} }

const prefix = "sim:"

// Annotation is one parsed //sim:* marker.
type Annotation struct {
	// Kind is the registry name ("hotpath"); unknown kinds are indexed
	// separately so the driver can flag them.
	Kind string
	// Arg is the free-text justification after the kind, if any.
	Arg string
	// Pos is the comment's position.
	Pos token.Pos
	// File and Line locate the comment for line-based queries.
	File string
	Line int
}

// Index holds one package's annotations.
type Index struct {
	fset    *token.FileSet
	all     []Annotation
	known   map[string]map[int]map[string]bool // file -> line -> kind set
	unknown []Annotation
}

// Parse extracts the annotation from a single comment's text ("//..."),
// returning ok=false for ordinary comments. A marker must start the
// comment: "//sim:kind arg...".
func Parse(text string) (kind, arg string, ok bool) {
	body, found := strings.CutPrefix(text, "//")
	if !found {
		// /* */ comments never carry annotations.
		return "", "", false
	}
	body, found = strings.CutPrefix(body, prefix)
	if !found {
		return "", "", false
	}
	kind, arg, _ = strings.Cut(body, " ")
	if kind == "" {
		return "", "", false
	}
	return kind, strings.TrimSpace(arg), true
}

func known(kind string) bool {
	for _, k := range Kinds() {
		if k == kind {
			return true
		}
	}
	return false
}

// Collect indexes every //sim:* annotation in the files.
func Collect(fset *token.FileSet, files []*ast.File) *Index {
	ix := &Index{fset: fset, known: make(map[string]map[int]map[string]bool)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				kind, arg, ok := Parse(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				a := Annotation{Kind: kind, Arg: arg, Pos: c.Pos(), File: pos.Filename, Line: pos.Line}
				ix.all = append(ix.all, a)
				if !known(kind) {
					ix.unknown = append(ix.unknown, a)
					continue
				}
				byLine := ix.known[a.File]
				if byLine == nil {
					byLine = make(map[int]map[string]bool)
					ix.known[a.File] = byLine
				}
				kinds := byLine[a.Line]
				if kinds == nil {
					kinds = make(map[string]bool)
					byLine[a.Line] = kinds
				}
				kinds[kind] = true
			}
		}
	}
	return ix
}

// All returns every parsed annotation, known and unknown.
func (ix *Index) All() []Annotation { return ix.all }

// Unknown returns annotations whose kind is not in the registry —
// almost always typos ("//sim:hotpaths") that would otherwise silently
// disable a contract.
func (ix *Index) Unknown() []Annotation { return ix.unknown }

// lineHas reports whether the exact file:line carries the kind.
func (ix *Index) lineHas(file string, line int, kind string) bool {
	return ix.known[file][line][kind]
}

// SiteHas reports whether the source line at pos, or the line
// immediately above it, carries the annotation kind — the two accepted
// statement-level placements (trailing comment, or a comment line of
// its own directly above).
func (ix *Index) SiteHas(pos token.Pos, kind string) bool {
	p := ix.fset.Position(pos)
	return ix.lineHas(p.Filename, p.Line, kind) || ix.lineHas(p.Filename, p.Line-1, kind)
}

// FuncHas reports whether the function declaration is annotated with
// kind: in its doc comment, or on the declaration line itself.
func (ix *Index) FuncHas(fn *ast.FuncDecl, kind string) bool {
	if fn.Doc != nil {
		for _, c := range fn.Doc.List {
			if k, _, ok := Parse(c.Text); ok && k == kind {
				return true
			}
		}
	}
	return ix.SiteHas(fn.Pos(), kind)
}
