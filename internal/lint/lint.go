// Package lint is the simlint driver: it loads a module's analysis
// units through the stdlib-only loader, runs the contract analyzers
// over each, and returns position-sorted findings. Every finding names
// the standing contract it enforces and the runtime test that would
// otherwise catch the violation — late, expensively, and only on
// exercised paths — so a simlint report always explains which slow gate
// it is front-running.
package lint

import (
	"fmt"
	"sort"

	"repro/internal/lint/analysis"
	"repro/internal/lint/annot"
	"repro/internal/lint/determinism"
	"repro/internal/lint/hotalloc"
	"repro/internal/lint/loader"
	"repro/internal/lint/nilguard"
	"repro/internal/lint/purity"
	"repro/internal/lint/seedpurity"
)

// Analyzers returns the full contract-checker suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		determinism.Analyzer,
		hotalloc.Analyzer,
		nilguard.Analyzer,
		purity.Analyzer,
		seedpurity.Analyzer,
	}
}

// Finding is one reported contract violation, resolved to a position.
type Finding struct {
	Analyzer    string
	File        string
	Line        int
	Column      int
	Message     string
	Contract    string
	RuntimeTest string
	Fix         *analysis.SuggestedFix
}

// Pos renders the finding's file:line:column.
func (f Finding) Pos() string { return fmt.Sprintf("%s:%d:%d", f.File, f.Line, f.Column) }

// Run loads the packages matching patterns under the module root and
// applies every analyzer, returning findings sorted by position. Unknown
// //sim:* annotation kinds are reported by the pseudo-analyzer
// "annotations": a typoed kind would otherwise silently disable a
// contract.
func Run(root string, patterns []string, analyzers []*analysis.Analyzer, includeTests bool) ([]Finding, error) {
	l, err := loader.New(loader.Config{Root: root, IncludeTests: includeTests})
	if err != nil {
		return nil, err
	}
	pkgs, err := l.Load(patterns...)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, pkg := range pkgs {
		ix := annot.Collect(l.Fset(), pkg.Files)
		for _, a := range ix.Unknown() {
			findings = append(findings, Finding{
				Analyzer: "annotations",
				File:     a.File, Line: a.Line, Column: 1,
				Message: fmt.Sprintf("unknown annotation //sim:%s (known kinds: %v): a typoed kind silently disables its contract",
					a.Kind, annot.Kinds()),
				Contract:    "every //sim:* marker is a registered contract annotation",
				RuntimeTest: "none — unknown kinds are only caught statically",
			})
		}
		for _, a := range analyzers {
			a := a
			pass := &analysis.Pass{
				Analyzer:    a,
				Fset:        l.Fset(),
				Files:       pkg.Files,
				Pkg:         pkg.Types,
				TypesInfo:   pkg.Info,
				Annotations: ix,
				Report: func(d analysis.Diagnostic) {
					pos := l.Fset().Position(d.Pos)
					f := Finding{
						Analyzer: a.Name,
						File:     pos.Filename, Line: pos.Line, Column: pos.Column,
						Message:     d.Message,
						Contract:    d.Contract,
						RuntimeTest: d.RuntimeTest,
						Fix:         d.Fix,
					}
					if f.Contract == "" {
						f.Contract = a.Contract
					}
					if f.RuntimeTest == "" {
						f.RuntimeTest = a.RuntimeTest
					}
					findings = append(findings, f)
				},
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: analyzer %s: %w", pkg.Path, a.Name, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	// External test units share non-test files' annotations with the base
	// unit; identical findings from overlapping walks collapse to one.
	return dedupe(findings), nil
}

func dedupe(fs []Finding) []Finding {
	out := fs[:0]
	for i, f := range fs {
		if i > 0 {
			p := fs[i-1]
			if p.File == f.File && p.Line == f.Line && p.Column == f.Column &&
				p.Analyzer == f.Analyzer && p.Message == f.Message {
				continue
			}
		}
		out = append(out, f)
	}
	return out
}
