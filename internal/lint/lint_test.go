package lint_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/annot"
)

// repoFiles parses every Go source file of the real module (skipping
// testdata and hidden directories) with comments, into one FileSet.
func repoFiles(t *testing.T) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	var files []*ast.File
	root := filepath.Join("..", "..")
	err := filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if p != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") {
			return nil
		}
		f, perr := parser.ParseFile(fset, p, nil, parser.ParseComments|parser.SkipObjectResolution)
		if perr != nil {
			return perr
		}
		files = append(files, f)
		return nil
	})
	if err != nil {
		t.Fatalf("walking repo sources: %v", err)
	}
	if len(files) == 0 {
		t.Fatal("no Go files found under repo root")
	}
	return fset, files
}

// TestAnnotationRegistryParsesFromRepoSources is the registry meta-test:
// the //sim:* annotations placed across the real sources must parse, use
// only registered kinds, and cover the functions the standing contracts
// name. A typoed kind or a comment that gofmt moved off its anchor line
// would silently disable a contract; this test turns that into a failure.
func TestAnnotationRegistryParsesFromRepoSources(t *testing.T) {
	fset, files := repoFiles(t)
	ix := annot.Collect(fset, files)

	for _, a := range ix.Unknown() {
		t.Errorf("%s:%d: unknown annotation kind //sim:%s (registry: %v)", a.File, a.Line, a.Kind, annot.Kinds())
	}

	counts := make(map[string]int)
	for _, a := range ix.All() {
		counts[a.Kind]++
	}
	t.Logf("annotation counts: %v", counts)
	min := map[string]int{
		annot.KindHotPath:   20, // core pipeline stages, runahead structures, mem, prefetchers
		annot.KindPure:      9,  // skipper probes on cache/chain-cache/mem
		annot.KindWallclock: 10, // meta.json timings, progress display, test deadlines
	}
	for kind, want := range min {
		if counts[kind] < want {
			t.Errorf("expected at least %d //sim:%s annotations in repo sources, found %d", want, kind, counts[kind])
		}
	}

	// Spot-check function-level coverage: these are the anchor functions
	// the ROADMAP contracts name. Matching is by file suffix + function
	// name so the test survives repository relocation.
	wantFuncs := []struct {
		fileSuffix, fn, kind string
	}{
		{"internal/core/core.go", "Step", annot.KindHotPath},
		{"internal/core/skip.go", "skipAhead", annot.KindHotPath},
		{"internal/runahead/chaincache.go", "Lookup", annot.KindHotPath},
		{"internal/runahead/chaincache.go", "Peek", annot.KindPure},
		{"internal/cache/cache.go", "Contains", annot.KindPure},
		{"internal/cache/cache.go", "InFlightSource", annot.KindPure},
		{"internal/mem/mem.go", "access", annot.KindHotPath},
		{"internal/mem/mem.go", "filteredByRunahead", annot.KindPure},
	}
	for _, w := range wantFuncs {
		found := false
		for _, f := range files {
			fname := filepath.ToSlash(fset.Position(f.Pos()).Filename)
			if !strings.HasSuffix(fname, w.fileSuffix) {
				continue
			}
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Name.Name != w.fn {
					continue
				}
				if ix.FuncHas(fn, w.kind) {
					found = true
				}
			}
		}
		if !found {
			t.Errorf("%s: func %s is not annotated //sim:%s (contract anchor missing)", w.fileSuffix, w.fn, w.kind)
		}
	}
}

// TestRepoIsSimlintClean runs the full analyzer suite over the real
// module, tests included — the same invocation CI runs. The repo must
// stay clean: every wall-clock read annotated, no raw seeds in workload
// generation, hot paths allocation-free, probes pure.
func TestRepoIsSimlintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module load is slow; skipped with -short")
	}
	findings, err := lint.Run(filepath.Join("..", ".."), []string{"./..."}, lint.Analyzers(), true)
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s: [%s] %s", f.Pos(), f.Analyzer, f.Message)
	}
}

// TestFixtureFindingsCarryContractMetadata runs the suite over the
// fixture tree (which violates every contract on purpose) and asserts
// the diagnostics are actionable: each carries the contract it enforces
// and the runtime test it front-runs, every analyzer fires at least
// once, unknown annotation kinds are reported, and at least one finding
// offers an insertable fix.
func TestFixtureFindingsCarryContractMetadata(t *testing.T) {
	findings, err := lint.Run(filepath.Join("testdata", "src"), []string{"..."}, lint.Analyzers(), true)
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	if len(findings) == 0 {
		t.Fatal("fixture tree produced no findings; the suite is not firing")
	}
	byAnalyzer := make(map[string]int)
	haveFix := false
	for _, f := range findings {
		byAnalyzer[f.Analyzer]++
		if f.Contract == "" {
			t.Errorf("%s: [%s] finding has no contract: %s", f.Pos(), f.Analyzer, f.Message)
		}
		if f.RuntimeTest == "" {
			t.Errorf("%s: [%s] finding names no runtime test: %s", f.Pos(), f.Analyzer, f.Message)
		}
		if f.Fix != nil {
			haveFix = true
		}
	}
	for _, name := range []string{"determinism", "hotalloc", "nilguard", "purity", "seedpurity", "annotations"} {
		if byAnalyzer[name] == 0 {
			t.Errorf("analyzer %q produced no fixture findings (fixtures: %v)", name, byAnalyzer)
		}
	}
	if !haveFix {
		t.Error("no finding carried a suggested fix; determinism should offer //sim:wallclock inserts")
	}
}
