package purity_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/purity"
)

func TestPurity(t *testing.T) {
	analysistest.Run(t, "../testdata/src", purity.Analyzer, "probe")
}
