// Package purity enforces //sim:pure annotations: an annotated function
// is a side-effect-free probe (filter probes, cache occupancy sources,
// ChainCache.Peek) that the scheduler may call any number of times —
// including zero — without perturbing simulated state. The analyzer
// flags writes to state reachable from the receiver or from package
// scope:
//
//   - assignments, ++/--, delete/clear and copy-into through the
//     receiver, a package-level variable, or any local that aliases one
//     (pointer/slice/map/chan taint propagates through definitions)
//   - channel sends (a send is an effect regardless of target)
//   - pointer-receiver method calls rooted at tainted state, unless the
//     callee is itself annotated //sim:pure (value-receiver calls
//     operate on a copy and pass)
package purity

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/annot"
)

var Analyzer = &analysis.Analyzer{
	Name:        "purity",
	Doc:         "forbids receiver or package-state writes in //sim:pure functions",
	Contract:    "annotated probes are side-effect-free (safe to call zero or N times)",
	RuntimeTest: "TestFilterProbeSideEffectFree / cycle-skip differential on probe-heavy configs",
	Run:         run,
}

func run(pass *analysis.Pass) error {
	// Pure-annotated functions in this package, so pure probes may call
	// each other (Peek -> find) without tripping the callee rule.
	pure := make(map[types.Object]bool)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && pass.Annotations.FuncHas(fn, annot.KindPure) {
				if obj := pass.TypesInfo.Defs[fn.Name]; obj != nil {
					pure[obj] = true
				}
			}
		}
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !pass.Annotations.FuncHas(fn, annot.KindPure) {
				continue
			}
			checkPure(pass, fn, pure)
		}
	}
	return nil
}

func checkPure(pass *analysis.Pass, fn *ast.FuncDecl, pure map[types.Object]bool) {
	tainted := make(map[types.Object]bool)
	if fn.Recv != nil {
		for _, f := range fn.Recv.List {
			for _, name := range f.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					tainted[obj] = true
				}
			}
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkAssign(pass, fn, n, tainted)
		case *ast.IncDecStmt:
			if reason := writeTarget(pass, n.X, tainted); reason != "" {
				pass.Reportf(n.Pos(), "//sim:pure %s mutates %s: probes must be side-effect-free",
					fn.Name.Name, reason)
			}
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "//sim:pure %s sends on a channel: a send is a side effect "+
				"whether or not the target is local", fn.Name.Name)
		case *ast.CallExpr:
			checkCall(pass, fn, n, tainted, pure)
		}
		return true
	})
}

func checkAssign(pass *analysis.Pass, fn *ast.FuncDecl, a *ast.AssignStmt, tainted map[types.Object]bool) {
	for _, lhs := range a.Lhs {
		if a.Tok == token.DEFINE {
			continue // new binding, checked below for taint propagation
		}
		if reason := writeTarget(pass, lhs, tainted); reason != "" {
			pass.Reportf(a.Pos(), "//sim:pure %s writes %s: probes must be side-effect-free",
				fn.Name.Name, reason)
		}
	}
	// Taint propagation: a local defined from tainted state through a
	// reference-like type aliases that state.
	for i, lhs := range a.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || i >= len(a.Rhs) {
			continue
		}
		var obj types.Object
		if a.Tok == token.DEFINE {
			obj = pass.TypesInfo.Defs[id]
		} else {
			obj = pass.TypesInfo.Uses[id]
		}
		if obj == nil || !referenceLike(obj.Type()) {
			continue
		}
		if root := rootObj(pass, a.Rhs[i]); root != nil && (tainted[root] || isPackageVar(root)) {
			tainted[obj] = true
		}
	}
}

func checkCall(pass *analysis.Pass, fn *ast.FuncDecl, call *ast.CallExpr, tainted map[types.Object]bool, pure map[types.Object]bool) {
	// Builtins with write semantics.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "delete", "clear":
				if len(call.Args) > 0 {
					if reason := writeTarget(pass, call.Args[0], tainted); reason != "" {
						pass.Reportf(call.Pos(), "//sim:pure %s calls %s on %s: probes must be side-effect-free",
							fn.Name.Name, id.Name, reason)
					}
				}
			case "copy":
				if len(call.Args) > 0 {
					if reason := writeTarget(pass, call.Args[0], tainted); reason != "" {
						pass.Reportf(call.Pos(), "//sim:pure %s copies into %s: probes must be side-effect-free",
							fn.Name.Name, reason)
					}
				}
			}
		}
		return
	}
	// Pointer-receiver method calls rooted at tainted state: the callee
	// can mutate what this probe only observes, so it must be //sim:pure
	// itself.
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return
	}
	callee := analysis.CalleeFunc(pass.TypesInfo, call)
	if callee == nil || pure[callee] {
		return
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	if _, ptrRecv := sig.Recv().Type().(*types.Pointer); !ptrRecv {
		return // value receiver operates on a copy
	}
	root := rootObj(pass, sel.X)
	if root == nil || !(tainted[root] || isPackageVar(root)) {
		return
	}
	pass.Reportf(call.Pos(), "//sim:pure %s calls %s.%s, a pointer-receiver method on observed state: "+
		"annotate the callee //sim:pure or route the probe through read-only accessors",
		fn.Name.Name, types.ExprString(sel.X), callee.Name())
}

// writeTarget classifies lhs as a forbidden write target. It returns a
// human-readable description of the target, or "" if the write is to
// untainted local state.
func writeTarget(pass *analysis.Pass, lhs ast.Expr, tainted map[types.Object]bool) string {
	lhs = ast.Unparen(lhs)
	if id, ok := lhs.(*ast.Ident); ok {
		if id.Name == "_" {
			return ""
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			return ""
		}
		if isPackageVar(obj) {
			return "package variable " + id.Name
		}
		if tainted[obj] {
			// Rebinding the alias itself (s = s[1:]) does not write the
			// underlying state; only element/field writes do.
			return ""
		}
		return ""
	}
	root := rootObj(pass, lhs)
	if root == nil {
		return ""
	}
	if tainted[root] {
		return "receiver state (" + types.ExprString(lhs) + ")"
	}
	if isPackageVar(root) {
		return "package state (" + types.ExprString(lhs) + ")"
	}
	return ""
}

// rootObj unwraps selector / index / star / slice chains to the base
// identifier's object.
func rootObj(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			// A package-qualified selector (pkg.Var) roots at the selected
			// object, not the package name.
			if id, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := pass.TypesInfo.Uses[id].(*types.PkgName); isPkg {
					return pass.TypesInfo.Uses[x.Sel]
				}
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.CallExpr:
			return nil // value produced by a call: not a trackable root
		case *ast.Ident:
			return pass.TypesInfo.Uses[x]
		default:
			return nil
		}
	}
}

// isPackageVar reports whether obj is a package-scope variable.
func isPackageVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	return ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// referenceLike reports whether t aliases underlying storage when
// copied (so taint flows through a plain assignment).
func referenceLike(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Interface:
		return true
	}
	return false
}
