// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis surface that simlint needs. This module
// is deliberately dependency-free (no go.sum, no module proxy in the
// build environment), so the real framework cannot be imported; keeping
// the shapes source-compatible (Analyzer / Pass / Diagnostic) makes a
// future swap to x/tools mechanical.
//
// Two fields extend the x/tools shape: every Analyzer names the standing
// ROADMAP contract it enforces and the runtime test that would otherwise
// catch the drift, and every Diagnostic carries both — a simlint report
// is always traceable to the slow gate it replaces.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/annot"
)

// Analyzer describes one static contract checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics ([determinism] ...).
	Name string
	// Doc is the one-paragraph help text shown by simlint -list.
	Doc string
	// Contract names the ROADMAP standing contract this analyzer
	// enforces mechanically.
	Contract string
	// RuntimeTest points at the runtime gate that would otherwise catch
	// a violation — late, expensively, and only on exercised paths.
	RuntimeTest string
	// Run executes the analyzer on one package.
	Run func(*Pass) error
}

// Pass carries one package's syntax and type information to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Annotations indexes the package's //sim:* contract annotations.
	Annotations *annot.Index
	// Report delivers one diagnostic. The driver fills Contract and
	// RuntimeTest from the Analyzer when the diagnostic leaves them
	// empty.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
	// Contract / RuntimeTest default to the reporting analyzer's fields.
	Contract    string
	RuntimeTest string
	// Fix, when non-nil, is an insert-only suggested fix that simlint
	// -fix applies. Fixes never rewrite code — they only add a //sim:*
	// annotation line — so applying them is always behavior-preserving
	// ("-fix safe").
	Fix *SuggestedFix
}

// SuggestedFix is a purely additive edit: insert one annotation comment
// line above the diagnosed line, indented to match it.
type SuggestedFix struct {
	Message string
	// InsertLine is the comment line to add (without indentation),
	// e.g. "//sim:wallclock progress reporting only".
	InsertLine string
}

// PkgPathMatch reports whether a package import path lies in scope for a
// path fragment like "internal/exp": the fragment must appear on a path
// segment boundary, so "internal/exp" matches "repro/internal/exp" and
// "internal/exp/pool" but not "internal/export". Fixture packages under
// testdata roots use module-relative paths ("internal/exp"), which match
// the same fragments as the real repo paths ("repro/internal/exp").
func PkgPathMatch(pkgPath, fragment string) bool {
	if pkgPath == fragment {
		return true
	}
	for i := 0; i+len(fragment) <= len(pkgPath); i++ {
		if pkgPath[i:i+len(fragment)] != fragment {
			continue
		}
		startOK := i == 0 || pkgPath[i-1] == '/'
		end := i + len(fragment)
		endOK := end == len(pkgPath) || pkgPath[end] == '/'
		if startOK && endOK {
			return true
		}
	}
	return false
}

// CalleeFunc resolves a call expression to the *types.Func it invokes
// (package function or method), or nil for builtins, type conversions
// and calls through function-typed variables.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsBuiltin reports whether id denotes the named universe builtin
// (append, make, delete, ...). Builtin references are recorded in
// info.Uses as *types.Builtin, not as absent entries.
func IsBuiltin(info *types.Info, id *ast.Ident, name string) bool {
	if id.Name != name {
		return false
	}
	_, ok := info.Uses[id].(*types.Builtin)
	return ok
}

// FuncIsFrom reports whether fn is the named package-level function of
// the given package path (e.g. "time", "Now").
func FuncIsFrom(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if fn.Name() != name || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// NamedType unwraps pointers and returns the *types.Named behind t, or
// nil.
func NamedType(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// IsNamed reports whether t (possibly behind a pointer) is the named type
// pkgName.typeName, matching the package by name so fixture stubs under
// testdata satisfy the same predicate as the real package.
func IsNamed(t types.Type, pkgName, typeName string) bool {
	n := NamedType(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == typeName && n.Obj().Pkg().Name() == pkgName
}
