// Package exp is a determinism fixture on the results-JSON key path
// (its import path matches the analyzer's internal/exp scope fragment).
package exp

import (
	"sort"
	"time"
)

// Result mirrors the shape of a run's metrics map.
type Result struct{ Metrics map[string]int64 }

// Keys collects and sorts before iterating downstream.
func (r Result) Keys() []string {
	var keys []string
	for k := range r.Metrics { // ok: append-collect, sorted below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Fingerprint concatenates in map order — the order leaks into the value.
func (r Result) Fingerprint() string {
	s := ""
	for k := range r.Metrics { // want `unsorted map iteration on the results-JSON path`
		s += k
	}
	return s
}

// Count accumulates commutatively.
func (r Result) Count() int {
	n := 0
	for range r.Metrics { // ok: integer accumulation commutes
		n++
	}
	return n
}

// Stamp reads the clock with no audit annotation.
func (r Result) Stamp() int64 {
	return time.Now().Unix() // want `wall-clock read \(time\.Now\) on the results-JSON path`
}

// Started feeds the meta.json sidecar, outside the byte-identical contract.
//
//sim:wallclock audited: meta.json sidecar only
func Started() time.Time {
	return time.Now() // ok: function-level wallclock annotation
}

// Progress demonstrates the site-level annotation placement.
func Progress() int64 {
	//sim:wallclock audited: progress display only
	t := time.Now() // ok: annotation on the line above
	return t.Unix()
}
