// Package telemetry is a fixture stub mirroring the real recorder
// shape: a concrete struct whose methods are not nil-receiver-safe.
package telemetry

type Recorder struct{ n int }

func (r *Recorder) CycleSkip()            { r.n++ }
func (r *Recorder) FullWindowStall(n int) { r.n += n }
func (r *Recorder) Finish()               {}
