// Package workload is a seedpurity fixture: no rand source of any kind
// is legal here, locally seeded or not.
package workload

import (
	"math/rand"
	"time"
)

func shuffle(n int) int {
	return rand.Intn(n) // want `math/rand in a workload package`
}

func stamp() int64 {
	return time.Now().Unix() // want `wall-clock read in a workload package`
}
