package synth

import "testing"

func TestRawDraw(t *testing.T) {
	g := &rng{s: 1} // ok: test files drive the rng directly
	if g.intn(10) < 0 {
		t.Fatal("negative draw")
	}
}
