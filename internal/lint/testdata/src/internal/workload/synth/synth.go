// Package synth is a seedpurity fixture mirroring the real generator's
// shape: a splitmix64 rng, a sequenced draw helper, and a Space whose
// Sample is the one legal construction site.
package synth

type rng struct{ s uint64 }

func (g *rng) next() uint64 {
	g.s += 0x9e3779b97f4a7c15
	z := g.s
	z ^= z >> 31
	return z
}

func (g *rng) intn(n int) int { return int(g.next() % uint64(n)) }

// draw is the sequenced chokepoint: every sampling draw flows through
// its methods so new knobs append to the sequence.
type draw struct{ g *rng }

func (d draw) pick(n int) int { return d.g.intn(n) } // ok: the chokepoint may touch the rng

// Space is a minimal sampling space.
type Space struct{ Strides []int }

// Sample is the single legal rng construction site.
func (s Space) Sample(seed uint64) int {
	g := &rng{s: seed} // ok: Sample seeds the one generator
	d := draw{g: g}
	return s.Strides[d.pick(len(s.Strides))]
}

func (s Space) rogue(seed uint64) int {
	g := &rng{s: seed} // want `rng constructed outside Space\.Sample`
	return g.intn(10)  // want `raw rng\.intn draw outside the sequenced draw helper`
}
