// Package hot is a hotalloc fixture: annotated functions carry one of
// each forbidden construct, plus the allocation-free idioms that must
// pass.
package hot

import "fmt"

type sim struct {
	buf  []int
	hits int
}

// step is a per-cycle hot loop with every flagged construct.
//
//sim:hotpath
func (s *sim) step(vals []int) {
	var fresh []int
	for _, v := range vals {
		fresh = append(fresh, v) // want `append on fresh slice "fresh"`
	}
	_ = fresh
	m := map[int]int{} // want `map literal in hot path`
	_ = m
	c := make(map[int]bool) // want `make\(map\[int\]bool\) in hot path`
	_ = c
	fmt.Println(s.hits)               // want `fmt\.Println in hot path`
	f := func() int { return s.hits } // want `closure literal in hot path`
	_ = f
}

// box exercises the three interface-boxing flows.
//
//sim:hotpath
func (s *sim) box(v int) any {
	sink(v) // want `argument boxes concrete int`
	var a any
	a = v // want `assignment boxes concrete int`
	_ = a
	return v // want `return boxes concrete int`
}

func sink(v any) { _ = v }

// fine shows the allocation-free idioms the analyzer must accept.
//
//sim:hotpath
func (s *sim) fine(vals []int) int {
	out := make([]int, 0, len(vals))
	for _, v := range vals {
		out = append(out, v) // ok: preallocated capacity
	}
	s.buf = append(s.buf, vals...) // ok: reused field, not a fresh local
	sink(&s.hits)                  // ok: pointers box without allocating
	return len(out)
}

// cold is unannotated: nothing is restricted.
func (s *sim) cold() {
	_ = fmt.Sprint(s.hits)
}
