package extt_test

import (
	"testing"

	"extt"
)

func TestAnswer(t *testing.T) {
	if extt.Answer() != 42 {
		t.Fatal("wrong answer")
	}
}
