// Package extt exercises the loader's three compilation groups: package
// files, in-package test files, and an external _test package.
package extt

const one = 1

// Answer is referenced from both test variants.
func Answer() int { return 41 + one }
