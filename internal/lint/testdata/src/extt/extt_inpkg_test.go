package extt

// doubled is only visible in the test-augmented unit; the external test
// package must compile against that unit, not the pure variant.
func doubled() int { return Answer() * 2 }
