// Package offpath is a determinism fixture off the results-JSON key
// path: wall-clock and rand rules still apply, map iteration does not.
package offpath

import (
	crand "crypto/rand"
	"math/rand"
	"time"
)

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `wall-clock read \(time\.Since\) without //sim:wallclock`
}

func draw() int {
	return rand.Intn(6) // want `global math/rand state \(rand\.Intn\)`
}

func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // ok: locally seeded generator
	return r.Intn(6)
}

func entropy(b []byte) {
	crand.Read(b) // want `crypto/rand is entropy by construction`
}

func collect(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m { // ok: map iteration is unrestricted off the key path
		out[k] = v
	}
	return out
}
