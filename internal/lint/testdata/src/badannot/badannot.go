// Package badannot carries a typoed annotation kind for the driver's
// unknown-annotation reporting (the annotations pseudo-analyzer).
package badannot

//sim:hotpaths typo: trailing s, silently disables the contract
func Step() int { return 1 }
