// Package probe is a purity fixture: //sim:pure functions with each
// forbidden effect, plus the read-only shapes that must pass.
package probe

type counterT struct{ n int }

func (c *counterT) bump() { c.n++ }

var hits int

type cache struct {
	lines map[uint64]int
	stats counterT
}

// Peek is the canonical side-effect-free probe.
//
//sim:pure
func (c *cache) Peek(key uint64) (int, bool) {
	v, ok := c.lines[key]
	return v, ok // ok: reads only
}

//sim:pure
func (c *cache) badWrite(key uint64) int {
	c.lines[key] = 1 // want `writes receiver state \(c\.lines\[key\]\)`
	hits++           // want `mutates package variable hits`
	return len(c.lines)
}

//sim:pure
func (c *cache) badDelete(key uint64) {
	delete(c.lines, key) // want `calls delete on receiver state`
}

//sim:pure
func (c *cache) badAlias() {
	m := c.lines
	m[0] = 1 // want `writes receiver state \(m\[0\]\)`
}

//sim:pure
func (c *cache) badCallee() {
	c.stats.bump() // want `calls c\.stats\.bump, a pointer-receiver method on observed state`
}

//sim:pure
func (c *cache) badSend(ch chan int) {
	ch <- 1 // want `sends on a channel`
}

//sim:pure
func (c *cache) viaPure(key uint64) bool {
	_, ok := c.Peek(key) // ok: the callee is itself //sim:pure
	return ok
}

//sim:pure
func (c *cache) localScratch() int {
	scratch := map[int]int{}
	scratch[1] = 1 // ok: local map, no alias to receiver state
	total := 0
	for _, v := range scratch {
		total += v
	}
	return total
}

// reset is unannotated: writes are unrestricted.
func (c *cache) reset() {
	c.lines = map[uint64]int{}
	hits = 0
}
