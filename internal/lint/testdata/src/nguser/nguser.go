// Package nguser is a nilguard fixture: calls on a *telemetry.Recorder
// struct field with and without a dominating nil check.
package nguser

import "internal/telemetry"

type core struct {
	tel  *telemetry.Recorder
	name string
}

func (c *core) unguarded() {
	c.tel.CycleSkip() // want `unguarded c\.tel\.CycleSkip call`
}

func (c *core) guarded() {
	if c.tel != nil {
		c.tel.CycleSkip() // ok: positive guard
	}
	if c.tel != nil && c.name != "" {
		c.tel.FullWindowStall(3) // ok: guard inside an && chain
	}
}

func (c *core) earlyExit() {
	if c.tel == nil {
		return
	}
	c.tel.Finish() // ok: dominated by the early return
}

func (c *core) wrongField(other *core) {
	if c.tel != nil {
		other.tel.CycleSkip() // want `unguarded other\.tel\.CycleSkip call`
	}
}

func (c *core) closure() func() {
	if c.tel != nil {
		return func() {
			c.tel.CycleSkip() // want `unguarded c\.tel\.CycleSkip call`
		}
	}
	return nil
}

func (c *core) local() {
	tel := c.tel
	if tel != nil {
		tel.CycleSkip() // ok: checked local binding
	}
}
