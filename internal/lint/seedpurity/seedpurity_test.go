package seedpurity_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/seedpurity"
)

func TestSeedPurity(t *testing.T) {
	analysistest.Run(t, "../testdata/src", seedpurity.Analyzer, "internal/workload", "internal/workload/synth")
}
