// Package seedpurity enforces the scenario-seed contract in the
// workload packages (internal/workload and internal/workload/synth):
// seeds are a pure function of workload identity, never of the run.
//
// Three rules:
//
//  1. No per-run seed sources anywhere under internal/workload: time.Now
//     / time.Since, math/rand (global or locally seeded — generators
//     there must use the package's own splitmix64 rng so streams are a
//     pure function of their parameters) and crypto/rand are all
//     forbidden, with no annotation escape hatch.
//
//  2. In package synth, raw draws on the rng type (next / intn) are only
//     legal inside rng's own methods and the methods of the sequenced
//     draw helper (the draw type): every Space sampling draw flows
//     through one chokepoint, so adding a knob appends draws instead of
//     reordering them — draw order is part of the determinism contract.
//
//  3. In package synth, constructing an rng (composite literal) outside
//     Space.Sample and rng's own methods is flagged: a second generator
//     seeded mid-sample would fork the draw sequence. Test files are
//     exempt (property tests drive the rng directly).
package seedpurity

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "seedpurity",
	Doc: "forbids per-run seed sources in the workload packages and requires all " +
		"synth.Space sampling draws to flow through the sequenced draw helper",
	Contract:    "scenario seeds derive per workload identity; synth draw order is append-only",
	RuntimeTest: "TestScenarioFuzz artifact reproduction / synth determinism properties",
	Run:         run,
}

// drawHelpers are the receiver types whose methods may touch the raw rng:
// the rng itself and the sequenced draw chokepoint.
var drawHelpers = map[string]bool{"rng": true, "draw": true}

func run(pass *analysis.Pass) error {
	if !analysis.PkgPathMatch(pass.Pkg.Path(), "internal/workload") &&
		!analysis.PkgPathMatch(pass.Pkg.Path(), "internal/workload/synth") {
		return nil
	}
	isSynth := strings.TrimSuffix(pass.Pkg.Name(), "_test") == "synth"
	for _, file := range pass.Files {
		testFile := strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go")
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn, isSynth && !testFile)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, sequenced bool) {
	recv := receiverTypeName(fn)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[n]; obj != nil && obj.Pkg() != nil {
				switch obj.Pkg().Path() {
				case "math/rand", "math/rand/v2", "crypto/rand":
					pass.Report(analysis.Diagnostic{
						Pos: n.Pos(),
						Message: obj.Pkg().Path() + " in a workload package: generated streams must be " +
							"a pure function of workload identity (use the package splitmix64 rng)",
					})
				}
			}
		case *ast.CallExpr:
			if f := analysis.CalleeFunc(pass.TypesInfo, n); f != nil &&
				(analysis.FuncIsFrom(f, "time", "Now") || analysis.FuncIsFrom(f, "time", "Since")) {
				pass.Report(analysis.Diagnostic{
					Pos: n.Pos(),
					Message: "wall-clock read in a workload package: per-run seed sources break " +
						"scenario reproducibility (no //sim:wallclock escape here)",
				})
			}
			if sequenced {
				checkRawDraw(pass, n, recv)
			}
		case *ast.CompositeLit:
			if sequenced && analysis.IsNamed(pass.TypesInfo.Types[n].Type, "synth", "rng") &&
				recv != "rng" && !inFunc(fn, "Sample") {
				pass.Report(analysis.Diagnostic{
					Pos: n.Pos(),
					Message: "rng constructed outside Space.Sample: a generator seeded mid-sample " +
						"forks the sequenced draw order",
				})
			}
		}
		return true
	})
}

// checkRawDraw flags method calls on the rng type from outside the draw
// helpers.
func checkRawDraw(pass *analysis.Pass, call *ast.CallExpr, recv string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return
	}
	if !analysis.IsNamed(selection.Recv(), "synth", "rng") {
		return
	}
	if drawHelpers[recv] {
		return
	}
	pass.Report(analysis.Diagnostic{
		Pos: call.Pos(),
		Message: "raw rng." + sel.Sel.Name + " draw outside the sequenced draw helper: route the " +
			"draw through a draw method so new knobs append to the sequence instead of reordering it",
	})
}

// receiverTypeName returns the name of a method's receiver type, or "".
func receiverTypeName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return ""
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

func inFunc(fn *ast.FuncDecl, name string) bool { return fn.Name.Name == name }
