// Package analysistest runs an analyzer over a fixture tree and checks
// its diagnostics against // want "regexp" comments embedded in the
// fixture sources — the same convention as
// golang.org/x/tools/go/analysis/analysistest, reimplemented over the
// repo's stdlib-only loader.
//
// A want comment applies to the source line it appears on and may carry
// several quoted regexps, one per expected diagnostic:
//
//	m := time.Now() // want `wall-clock read`
//
// Every expectation must be matched by a diagnostic on its line, and
// every diagnostic must match an expectation; either direction failing
// fails the test.
package analysistest

import (
	"fmt"
	"go/ast"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/annot"
	"repro/internal/lint/loader"
)

// Run loads the fixture packages under root (a testdata/src-style tree
// addressed by relative import paths) and applies the analyzer to each,
// comparing diagnostics against the fixtures' want comments.
func Run(t *testing.T, root string, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	l, err := loader.New(loader.Config{Root: root, IncludeTests: true})
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkgs, err := l.Load(patterns...)
	if err != nil {
		t.Fatalf("loading fixtures under %s: %v", root, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no fixture packages under %s match %v", root, patterns)
	}
	for _, pkg := range pkgs {
		checkPackage(t, l, a, pkg)
	}
}

// expectation is one parsed want regexp, keyed to a file line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

func checkPackage(t *testing.T, l *loader.Loader, a *analysis.Analyzer, pkg *loader.Package) {
	t.Helper()
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:    a,
		Fset:        l.Fset(),
		Files:       pkg.Files,
		Pkg:         pkg.Types,
		TypesInfo:   pkg.Info,
		Annotations: annot.Collect(l.Fset(), pkg.Files),
		Report:      func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: analyzer %s: %v", pkg.Path, a.Name, err)
	}
	wants, err := collectWants(l, pkg.Files)
	if err != nil {
		t.Fatalf("%s: %v", pkg.Path, err)
	}
	// Match each diagnostic against an unconsumed expectation on its line.
	for _, d := range diags {
		pos := l.Fset().Position(d.Pos)
		found := false
		for _, w := range wants {
			if w.matched || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s: %s", pkg.Path, pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: %s:%d: no diagnostic matching %q", pkg.Path, w.file, w.line, w.raw)
		}
	}
}

// collectWants parses every // want comment in the files.
func collectWants(l *loader.Loader, files []*ast.File) ([]*expectation, error) {
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "want ")
				if !ok {
					continue
				}
				pos := l.Fset().Position(c.Pos())
				patterns, err := splitQuoted(rest)
				if err != nil {
					return nil, fmt.Errorf("%s: bad want comment: %v", pos, err)
				}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want regexp %q: %v", pos, p, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: p})
				}
			}
		}
	}
	return wants, nil
}

// splitQuoted parses a sequence of Go-quoted strings ("..." or `...`).
func splitQuoted(s string) ([]string, error) {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			break
		}
		q, err := strconv.QuotedPrefix(s)
		if err != nil {
			return nil, fmt.Errorf("expected quoted regexp at %q", s)
		}
		u, err := strconv.Unquote(q)
		if err != nil {
			return nil, err
		}
		out = append(out, u)
		s = s[len(q):]
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("want comment carries no patterns")
	}
	return out, nil
}
