// Package determinism flags nondeterminism sources that would break the
// byte-identical results-JSON contract: wall-clock reads (time.Now /
// time.Since) anywhere in the module without an audited //sim:wallclock
// annotation, global math/rand state (whose sequence depends on every
// other draw in the process) and crypto/rand everywhere, and unsorted
// map iteration inside the packages on the results-JSON/key path
// (internal/exp, internal/sim, internal/serve/cache, internal/report),
// where iteration order can leak into serialized artifacts.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/annot"
)

// keyPath lists the package-path fragments on the byte-identical
// results-JSON/key path. Fragments match on segment boundaries, so
// fixture packages ("internal/exp") and real ones ("repro/internal/exp")
// are both in scope.
var keyPath = []string{"internal/exp", "internal/sim", "internal/serve/cache", "internal/report"}

// globalRandAllowed lists the math/rand package functions that do NOT
// touch the shared global source: constructing a locally seeded
// generator is the deterministic idiom the tests use.
var globalRandAllowed = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "forbids wall-clock reads without //sim:wallclock, global math/rand state, " +
		"crypto/rand, and unsorted map iteration on the results-JSON path",
	Contract:    "results JSON is byte-identical at any worker count",
	RuntimeTest: "TestCycleSkipDifferential / CI sweep cmp",
	Run:         run,
}

func run(pass *analysis.Pass) error {
	onKeyPath := false
	for _, frag := range keyPath {
		if analysis.PkgPathMatch(pass.Pkg.Path(), frag) {
			onKeyPath = true
			break
		}
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn, onKeyPath)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, onKeyPath bool) {
	wallclockOK := pass.Annotations.FuncHas(fn, annot.KindWallclock)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, n, wallclockOK, onKeyPath)
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[n]; obj != nil && obj.Pkg() != nil &&
				obj.Pkg().Path() == "crypto/rand" {
				pass.Report(analysis.Diagnostic{
					Pos: n.Pos(),
					Message: "crypto/rand is entropy by construction: results can never be " +
						"byte-identical across runs",
				})
			}
		case *ast.RangeStmt:
			if onKeyPath {
				checkMapRange(pass, n)
			}
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, wallclockOK, onKeyPath bool) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	switch {
	case analysis.FuncIsFrom(fn, "time", "Now") || analysis.FuncIsFrom(fn, "time", "Since"):
		if wallclockOK || pass.Annotations.SiteHas(call.Pos(), annot.KindWallclock) {
			return
		}
		msg := "wall-clock read (time." + fn.Name() + ") without //sim:wallclock: " +
			"execution-environment facts belong in <name>.meta.json, outside the byte-identical contract"
		if onKeyPath {
			msg = "wall-clock read (time." + fn.Name() + ") on the results-JSON path: " +
				"only the meta.json sink may read the clock, and the site must carry //sim:wallclock"
		}
		pass.Report(analysis.Diagnostic{
			Pos:     call.Pos(),
			Message: msg,
			Fix: &analysis.SuggestedFix{
				Message:    "annotate the audited wall-clock read",
				InsertLine: "//sim:wallclock audited: justify why this clock read stays out of the results JSON",
			},
		})
	case fn.Pkg() != nil && (fn.Pkg().Path() == "math/rand" || fn.Pkg().Path() == "math/rand/v2"):
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			return // methods on a locally seeded *rand.Rand are deterministic
		}
		if globalRandAllowed[fn.Name()] {
			return
		}
		pass.Report(analysis.Diagnostic{
			Pos: call.Pos(),
			Message: "global math/rand state (rand." + fn.Name() + "): draw order depends on " +
				"every other global draw in the process; use rand.New(rand.NewSource(seed)) " +
				"with a workload-identity-derived seed",
		})
	}
}

// checkMapRange flags map iteration unless the loop body is one of the
// two order-insensitive idioms the repo uses: collecting keys/values
// into a slice that is sorted before use, or writing into another
// map/set. Anything else — arithmetic on floats, serialization, channel
// sends, appends of computed aggregates — can leak iteration order into
// the artifact.
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if bodyIsOrderInsensitive(pass, rng.Body.List) {
		return
	}
	pass.Report(analysis.Diagnostic{
		Pos: rng.Pos(),
		Message: "unsorted map iteration on the results-JSON path: collect keys, sort, " +
			"then iterate (map range order is randomized per run)",
	})
}

// bodyIsOrderInsensitive conservatively recognizes loop bodies whose
// effect is independent of iteration order.
func bodyIsOrderInsensitive(pass *analysis.Pass, stmts []ast.Stmt) bool {
	for _, s := range stmts {
		if !stmtIsOrderInsensitive(pass, s) {
			return false
		}
	}
	return true
}

func stmtIsOrderInsensitive(pass *analysis.Pass, s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.AssignStmt:
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return false
		}
		// n += v on integers — commutative accumulation (float sums are
		// order-sensitive and stay flagged).
		switch s.Tok {
		case token.ADD_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
			return exprIsInteger(pass, s.Lhs[0])
		}
		// m2[k] = v — building another map is order-insensitive.
		if ix, ok := s.Lhs[0].(*ast.IndexExpr); ok {
			tv, ok := pass.TypesInfo.Types[ix.X]
			if ok {
				_, isMap := tv.Type.Underlying().(*types.Map)
				return isMap
			}
			return false
		}
		// s = append(s, k) — collecting for a later sort.
		if call, ok := s.Rhs[0].(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok &&
				analysis.IsBuiltin(pass.TypesInfo, id, "append") {
				return true
			}
		}
		return false
	case *ast.IncDecStmt:
		return exprIsInteger(pass, s.X)
	case *ast.IfStmt:
		// Per-element filtering around an order-insensitive body.
		if s.Init != nil || s.Else != nil {
			return false
		}
		return bodyIsOrderInsensitive(pass, s.Body.List)
	case *ast.BranchStmt:
		return s.Tok.String() == "continue"
	case *ast.DeclStmt, *ast.EmptyStmt:
		return true
	case *ast.ExprStmt:
		// delete(m2, k) on another map.
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok &&
				analysis.IsBuiltin(pass.TypesInfo, id, "delete") {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// exprIsInteger reports whether e has an integer type (integer addition
// commutes; float accumulation does not).
func exprIsInteger(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
