package determinism_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "../testdata/src", determinism.Analyzer, "internal/exp", "offpath")
}
