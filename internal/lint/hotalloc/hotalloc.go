// Package hotalloc flags allocation-prone constructs inside functions
// annotated //sim:hotpath — the simulator's steady-state paths, which
// the zero-allocation contract (TestSteadyStateAllocs pins 0 allocs per
// simulated window) forbids from allocating per call:
//
//   - closure literals (a captured variable forces a heap-allocated
//     environment; the hot paths use prebuilt closures instead)
//   - fmt.* calls (formatting allocates and boxes every operand)
//   - map literals and make(map/chan) (always heap)
//   - append on a fresh, un-preallocated local slice (grows on the hot
//     path; pre-size with make(..., 0, cap) or reuse a field)
//   - boxing a concrete non-pointer value into an interface (argument,
//     assignment, return or conversion — the value escapes to the heap;
//     pointers box without allocating)
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/annot"
)

var Analyzer = &analysis.Analyzer{
	Name:        "hotalloc",
	Doc:         "flags allocation-prone constructs in //sim:hotpath functions",
	Contract:    "zero-allocation steady state in the simulator hot paths",
	RuntimeTest: "TestSteadyStateAllocs / bench-guard -benchmem smoke",
	Run:         run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if pass.Annotations.FuncHas(fn, annot.KindHotPath) {
				checkHot(pass, fn)
			}
		}
	}
	return nil
}

func checkHot(pass *analysis.Pass, fn *ast.FuncDecl) {
	fresh := freshSlices(pass, fn)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure literal in hot path: the captured environment heap-allocates per call; hoist to a prebuilt closure field")
			return false // the literal's body is not the hot path
		case *ast.CompositeLit:
			if tv, ok := pass.TypesInfo.Types[n]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					pass.Reportf(n.Pos(), "map literal in hot path: allocates; hoist to a reused field")
				}
			}
		case *ast.CallExpr:
			checkCall(pass, n, fresh)
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i < len(n.Rhs) {
					checkBoxing(pass, pass.TypesInfo.Types[lhs].Type, n.Rhs[i], "assignment")
				}
			}
		case *ast.ReturnStmt:
			sig, ok := pass.TypesInfo.Defs[fn.Name].Type().(*types.Signature)
			if !ok || sig.Results().Len() != len(n.Results) {
				return true
			}
			for i, res := range n.Results {
				checkBoxing(pass, sig.Results().At(i).Type(), res, "return")
			}
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, fresh map[types.Object]bool) {
	// Builtins: append on a fresh slice; make(map)/make(chan).
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok &&
		(analysis.IsBuiltin(pass.TypesInfo, id, "append") || analysis.IsBuiltin(pass.TypesInfo, id, "make")) {
		switch id.Name {
		case "append":
			if len(call.Args) > 0 {
				if base, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
					if obj := pass.TypesInfo.Uses[base]; obj != nil && fresh[obj] {
						pass.Reportf(call.Pos(), "append on fresh slice %q with no preallocated capacity: grows on the hot path; make(..., 0, cap) it or reuse a field", base.Name)
					}
				}
			}
		case "make":
			if len(call.Args) > 0 {
				if tv, ok := pass.TypesInfo.Types[call.Args[0]]; ok {
					switch tv.Type.Underlying().(type) {
					case *types.Map, *types.Chan:
						pass.Reportf(call.Pos(), "make(%s) in hot path: allocates; hoist to a reused field", tv.Type)
					}
				}
			}
		}
		return
	}
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "fmt.%s in hot path: formatting allocates and boxes every operand", fn.Name())
		return // operand boxing is subsumed by the fmt report
	}
	// Interface boxing through call arguments.
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return // conversion, not a call
	}
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // slice passed through, no per-element boxing
			}
			param = sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice).Elem()
		case i < sig.Params().Len():
			param = sig.Params().At(i).Type()
		default:
			continue
		}
		checkBoxing(pass, param, arg, "argument")
	}
}

// checkBoxing reports src flowing into an interface-typed destination
// when its concrete type would heap-allocate on conversion. Pointers
// (and pointer-shaped values: chan, func, unsafe.Pointer, map) fit in
// the interface word without allocating; nil and existing interface
// values convert freely.
func checkBoxing(pass *analysis.Pass, dst types.Type, src ast.Expr, what string) {
	if dst == nil {
		return
	}
	if _, isIface := dst.Underlying().(*types.Interface); !isIface {
		return
	}
	tv, ok := pass.TypesInfo.Types[src]
	if !ok || tv.Type == nil || tv.IsNil() || tv.Value != nil {
		return // nil or constant (constants may still box, but are rare and foldable)
	}
	switch tv.Type.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Signature, *types.Map:
		return
	}
	pass.Reportf(src.Pos(), "%s boxes concrete %s into %s: the value escapes to the heap on the hot path; pass a pointer or keep it concrete", what, tv.Type, dst)
}

// freshSlices collects local slice variables declared with no backing
// capacity: var s []T, s := []T{}, or s := make([]T, 0) without a cap.
func freshSlices(pass *analysis.Pass, fn *ast.FuncDecl) map[types.Object]bool {
	fresh := make(map[types.Object]bool)
	mark := func(id *ast.Ident) {
		if obj := pass.TypesInfo.Defs[id]; obj != nil {
			if _, ok := obj.Type().Underlying().(*types.Slice); ok {
				fresh[obj] = true
			}
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue
				}
				for _, name := range vs.Names {
					mark(name) // var s []T
				}
			}
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(n.Rhs) {
					continue
				}
				switch rhs := ast.Unparen(n.Rhs[i]).(type) {
				case *ast.CompositeLit:
					if len(rhs.Elts) == 0 {
						mark(id) // s := []T{}
					}
				case *ast.CallExpr:
					if mid, ok := ast.Unparen(rhs.Fun).(*ast.Ident); ok &&
						analysis.IsBuiltin(pass.TypesInfo, mid, "make") && len(rhs.Args) == 2 {
						mark(id) // s := make([]T, n) with no cap
					}
				}
			}
		}
		return true
	})
	return fresh
}
