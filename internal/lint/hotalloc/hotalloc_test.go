package hotalloc_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/hotalloc"
)

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, "../testdata/src", hotalloc.Analyzer, "hot")
}
