package core

import (
	"testing"

	"repro/internal/trace"
	"repro/internal/uarch"
	"repro/internal/workload"
)

// aluGen is a pure-ALU loop with a predictable branch: IPC should approach
// the pipeline width once warm.
type aluGen struct{ n uint64 }

func (g *aluGen) Name() string { return "alu" }
func (g *aluGen) Next(u *uarch.Uop) {
	slot := g.n % 8
	u.PC = 0x400000 + slot*4
	if slot == 7 {
		*u = uarch.Uop{PC: u.PC, Class: uarch.ClassBranch, Taken: true, Target: 0x400000,
			Src1: uarch.IntReg(0)}
	} else {
		// Independent ALU ops across 8 registers: plenty of ILP.
		*u = uarch.Uop{PC: u.PC, Class: uarch.ClassIntAlu,
			Dst: uarch.IntReg(int(slot)), Src1: uarch.IntReg(int(slot))}
	}
	g.n++
}

// serialLoadGen is a single pointer chase: every load depends on the
// previous one and misses the LLC.
type serialLoadGen struct {
	n     uint64
	state uint64
}

func (g *serialLoadGen) Name() string { return "serial-load" }
func (g *serialLoadGen) Next(u *uarch.Uop) {
	g.state = g.state*6364136223846793005 + 1442695040888963407
	line := g.state & (1<<18 - 1)
	*u = uarch.Uop{PC: 0x500000, Class: uarch.ClassLoad,
		Dst: uarch.IntReg(1), Src1: uarch.IntReg(1),
		Addr: 1<<32 + line*64, Size: 8}
	g.n++
}

func newCore(t *testing.T, mode Mode, gen trace.Generator) *Core {
	t.Helper()
	c, err := New(Default(mode), gen)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func run(t *testing.T, c *Core, n int64) {
	t.Helper()
	c.Run(n)
}

func TestConfigValidation(t *testing.T) {
	good := Default(ModeOoO)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	bad := Default(ModeOoO)
	bad.Width = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero width accepted")
	}
	bad = Default(ModeOoO)
	bad.FreeExit = true
	if err := bad.Validate(); err == nil {
		t.Error("FreeExit outside ModeRA accepted")
	}
	bad = Default(ModeRA)
	bad.FreeExit = true
	if err := bad.Validate(); err != nil {
		t.Errorf("FreeExit with ModeRA rejected: %v", err)
	}
}

func TestModeStringsAndParse(t *testing.T) {
	for _, m := range Modes() {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Errorf("round trip %v failed: %v %v", m, got, err)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Error("bogus mode accepted")
	}
}

func TestALULoopIPC(t *testing.T) {
	c := newCore(t, ModeOoO, &aluGen{})
	run(t, c, 2000) // warm up
	c.ResetStats()
	run(t, c, 20000)
	ipc := c.Stats().IPC()
	if ipc < 3.0 {
		t.Errorf("ALU-loop IPC = %.2f, want near width 4", ipc)
	}
	if c.Stats().Entries != 0 {
		t.Error("OoO mode must never enter runahead")
	}
}

func TestSerialLoadLatencyBound(t *testing.T) {
	c := newCore(t, ModeOoO, &serialLoadGen{state: 7})
	run(t, c, 50)
	c.ResetStats()
	run(t, c, 200)
	// Every load misses to DRAM (~200 cycles) serially.
	cpi := float64(c.Stats().Cycles) / float64(c.Stats().Committed)
	if cpi < 100 {
		t.Errorf("serial DRAM chase CPI = %.0f, want > 100", cpi)
	}
}

func TestFullWindowStallsDetected(t *testing.T) {
	w, _ := workload.ByName("libquantum")
	c := newCore(t, ModeOoO, w.New())
	run(t, c, 5000)
	c.ResetStats()
	run(t, c, 30000)
	if c.Stats().FullWindowStallCycles == 0 {
		t.Error("memory-bound workload must hit full-window stalls")
	}
}

func TestDeterminism(t *testing.T) {
	for _, mode := range Modes() {
		w, _ := workload.ByName("libquantum")
		c1 := newCore(t, mode, w.New())
		c2 := newCore(t, mode, w.New())
		run(t, c1, 20000)
		run(t, c2, 20000)
		if c1.Now() != c2.Now() {
			t.Errorf("%v: nondeterministic cycle counts %d vs %d", mode, c1.Now(), c2.Now())
		}
	}
}

func TestRAEntersAndExits(t *testing.T) {
	w, _ := workload.ByName("libquantum")
	c := newCore(t, ModeRA, w.New())
	run(t, c, 50000)
	s := c.Stats()
	if s.Entries == 0 {
		t.Fatal("RA never entered runahead on a memory-bound workload")
	}
	if s.Intervals.Count() != s.Entries {
		t.Errorf("intervals (%d) != entries (%d)", s.Intervals.Count(), s.Entries)
	}
	if s.Prefetches == 0 {
		t.Error("RA issued no prefetches")
	}
	if s.PseudoRetired == 0 {
		t.Error("RA pseudo-retired nothing")
	}
	if c.InRunahead() && s.RunaheadCycles == 0 {
		t.Error("runahead cycles not counted")
	}
}

func TestRABeatsOoOOnStreaming(t *testing.T) {
	w, _ := workload.ByName("libquantum")
	measure := func(mode Mode) float64 {
		c := newCore(t, mode, w.New())
		run(t, c, 10000)
		c.ResetStats()
		run(t, c, 60000)
		return c.Stats().IPC()
	}
	base := measure(ModeOoO)
	ra := measure(ModeRA)
	if ra <= base {
		t.Errorf("RA IPC %.3f must beat OoO %.3f on streaming", ra, base)
	}
}

func TestRARefillPenaltyMeasured(t *testing.T) {
	w, _ := workload.ByName("libquantum")
	c := newCore(t, ModeRA, w.New())
	run(t, c, 60000)
	s := c.Stats()
	if s.RefillPenalty.Count() == 0 {
		t.Fatal("no refill penalties measured")
	}
	mean := s.RefillPenalty.Mean()
	// Paper's estimate is ~56 cycles (8 FE + 48 ROB refill); our measured
	// definition (exit to first commit) should be the same order.
	if mean < 8 || mean > 300 {
		t.Errorf("mean refill penalty %.1f outside plausible range", mean)
	}
}

func TestRABufferExtractsAndReplays(t *testing.T) {
	w, _ := workload.ByName("libquantum")
	c := newCore(t, ModeRABuffer, w.New())
	run(t, c, 50000)
	s := c.Stats()
	if s.Entries == 0 {
		t.Fatal("RA-buffer never entered runahead")
	}
	if s.Prefetches == 0 {
		t.Error("RA-buffer replay issued no prefetches")
	}
}

func TestPREEntersWithoutFlushing(t *testing.T) {
	w, _ := workload.ByName("libquantum")
	c := newCore(t, ModePRE, w.New())
	run(t, c, 50000)
	s := c.Stats()
	if s.Entries == 0 {
		t.Fatal("PRE never entered runahead")
	}
	if s.PseudoRetired != 0 {
		t.Error("PRE must not pseudo-retire (ROB preserved)")
	}
	if c.SST().Len() == 0 {
		t.Error("SST learned nothing")
	}
	if s.Prefetches == 0 {
		t.Error("PRE issued no prefetches")
	}
	if s.RefillPenalty.Count() != 0 {
		t.Error("PRE must not incur flush-refill penalties")
	}
}

func TestPRESSTLearnsSlice(t *testing.T) {
	// libquantum's slice is {index add, load}: after some episodes the SST
	// must contain at least the load PC and its producer add PC.
	w, _ := workload.ByName("libquantum")
	c := newCore(t, ModePRE, w.New())
	run(t, c, 50000)
	if c.Stats().Entries == 0 {
		t.Skip("no runahead episodes; cannot check learning")
	}
	if c.SST().Len() < 2 {
		t.Errorf("SST has %d entries, want at least the load+add slice", c.SST().Len())
	}
}

func TestPREEMQRuns(t *testing.T) {
	w, _ := workload.ByName("libquantum")
	c := newCore(t, ModePREEMQ, w.New())
	run(t, c, 50000)
	s := c.Stats()
	if s.Entries == 0 {
		t.Fatal("PRE+EMQ never entered runahead")
	}
	if s.EMQDispatched == 0 {
		t.Error("EMQ re-dispatched nothing")
	}
}

func TestPREInvokesMoreOftenThanRA(t *testing.T) {
	// Section 5.1: PRE invokes runahead more frequently than RA (no
	// minimum-interval filter, no flush cost).
	w, _ := workload.ByName("libquantum")
	entries := func(mode Mode) int64 {
		c := newCore(t, mode, w.New())
		run(t, c, 10000)
		c.ResetStats()
		run(t, c, 60000)
		return c.Stats().Entries
	}
	ra := entries(ModeRA)
	pre := entries(ModePRE)
	if pre <= ra {
		t.Errorf("PRE entries %d must exceed RA entries %d", pre, ra)
	}
}

func TestAllModesOnAllArchetypes(t *testing.T) {
	// Smoke test: every mode completes on one workload of each archetype
	// without watchdog panics, and commits exactly what was asked.
	names := []string{"libquantum", "mcf", "lbm", "soplex", "omnetpp"}
	for _, name := range names {
		for _, mode := range Modes() {
			w, err := workload.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			c := newCore(t, mode, w.New())
			run(t, c, 15000)
			if c.Stats().Committed < 15000 {
				t.Errorf("%s/%v: committed %d < 15000", name, mode, c.Stats().Committed)
			}
		}
	}
}

func TestFreeExitAblationFasterThanRA(t *testing.T) {
	// E6: RA with snapshot-restore exit must outperform plain RA (the
	// difference is the discard/refill overhead).
	w, _ := workload.ByName("libquantum")
	measure := func(freeExit bool) float64 {
		cfg := Default(ModeRA)
		cfg.FreeExit = freeExit
		c, err := New(cfg, w.New())
		if err != nil {
			t.Fatal(err)
		}
		c.Run(10000)
		c.ResetStats()
		c.Run(60000)
		return c.Stats().IPC()
	}
	plain := measure(false)
	free := measure(true)
	if free <= plain {
		t.Errorf("FreeExit IPC %.3f must beat plain RA %.3f", free, plain)
	}
}

func TestRegisterConservationAcrossEpisodes(t *testing.T) {
	// After any amount of runahead activity, draining the pipeline must
	// leave exactly the initial number of free registers.
	for _, mode := range []Mode{ModeRA, ModeRABuffer, ModePRE, ModePREEMQ} {
		w, _ := workload.ByName("libquantum")
		c := newCore(t, mode, w.New())
		run(t, c, 40000)
		// Drain: stop fetching and let everything commit.
		c.fetch.Freeze()
		for i := 0; i < 3000 && (c.rob.len() > 0 || c.inRunahead); i++ {
			c.Step()
		}
		if c.inRunahead || c.rob.len() > 0 {
			t.Fatalf("%v: pipeline did not drain (rob=%d runahead=%v)", mode, c.rob.len(), c.inRunahead)
		}
		intFree, fpFree := c.ren.FreeCounts()
		total := intFree + fpFree
		want := (168 - uarch.NumIntRegs) + (168 - uarch.NumFPRegs)
		if total != want {
			t.Errorf("%v: %d free registers after drain, want %d (leak or double-free)",
				mode, total, want)
		}
	}
}

func TestEntrySkippedForShortIntervals(t *testing.T) {
	w, _ := workload.ByName("libquantum")
	cfg := Default(ModeRA)
	cfg.MinRunaheadCycles = 100000 // filter everything
	c, err := New(cfg, w.New())
	if err != nil {
		t.Fatal(err)
	}
	c.Run(40000)
	if c.Stats().Entries != 0 {
		t.Error("interval filter set to infinity must suppress all entries")
	}
	if c.Stats().EntriesSkipped == 0 {
		t.Error("skips not counted")
	}
}

func TestFreeResourceSnapshotsAtEntry(t *testing.T) {
	w, _ := workload.ByName("libquantum")
	c := newCore(t, ModePRE, w.New())
	run(t, c, 50000)
	s := c.Stats()
	if s.Entries == 0 {
		t.Skip("no entries")
	}
	if s.FreeIQAtEntry.Count() != s.Entries {
		t.Error("E7 snapshots missing")
	}
	frac := s.FreeIntRegAtEntry.Mean()
	if frac <= 0 || frac >= 1 {
		t.Errorf("free int register fraction %.2f implausible", frac)
	}
}

func TestStoreLoadForwarding(t *testing.T) {
	// store [X]; load [X] immediately after: the load must forward and
	// never reach DRAM even though the line is cold.
	g := &storeLoadGen{}
	c := newCore(t, ModeOoO, g)
	run(t, c, 2000)
	st := c.Hierarchy().DRAM().Stats()
	// Only the streaming stores themselves may touch DRAM (write
	// allocate); the forwarded loads add no read traffic beyond those
	// fills. Every load hitting DRAM separately would roughly double it.
	loads := c.Stats().IssuedLoad
	if loads == 0 {
		t.Fatal("no loads issued")
	}
	if st.Reads > int64(loads) {
		t.Errorf("forwarding broken: %d DRAM reads for %d loads", st.Reads, loads)
	}
}

// storeLoadGen emits {alu -> store [addr] ; load [addr]} with addr
// advancing one line per iteration.
type storeLoadGen struct{ n uint64 }

func (g *storeLoadGen) Name() string { return "store-load" }
func (g *storeLoadGen) Next(u *uarch.Uop) {
	iter := g.n / 3
	addr := 1<<33 + iter*64
	switch g.n % 3 {
	case 0:
		*u = uarch.Uop{PC: 0x600000, Class: uarch.ClassIntAlu, Dst: uarch.IntReg(2), Src1: uarch.IntReg(2)}
	case 1:
		*u = uarch.Uop{PC: 0x600004, Class: uarch.ClassStore, Src1: uarch.IntReg(2), Src2: uarch.IntReg(3), Addr: addr, Size: 8}
	case 2:
		*u = uarch.Uop{PC: 0x600008, Class: uarch.ClassLoad, Dst: uarch.IntReg(4), Src1: uarch.IntReg(3), Addr: addr, Size: 8}
	}
	g.n++
}

func TestMispredictPenaltyVisible(t *testing.T) {
	// omnetpp has ~5% mispredicted data-dependent branches; the predictor
	// must record them and IPC must still be finite/sane.
	w, _ := workload.ByName("omnetpp")
	c := newCore(t, ModeOoO, w.New())
	run(t, c, 30000)
	if c.Predictor().Mispredicts() == 0 {
		t.Error("omnetpp proxy must mispredict sometimes")
	}
}

func TestResetStatsClearsEverything(t *testing.T) {
	w, _ := workload.ByName("libquantum")
	c := newCore(t, ModePRE, w.New())
	run(t, c, 20000)
	c.ResetStats()
	s := c.Stats()
	if s.Cycles != 0 || s.Committed != 0 || s.Entries != 0 {
		t.Error("core stats not reset")
	}
	if c.Hierarchy().L1D().Stats().Accesses != 0 {
		t.Error("memory stats not reset")
	}
}
