package core

import (
	"repro/internal/frontend"
	"repro/internal/rename"
)

// pipeSnapshot captures the whole pipeline at runahead entry for the E6
// ablation (Section 2.4): "the speedup has the potential to reach up to
// 20.6 percent if the instructions that occupy the ROB when the core
// enters runahead mode are not discarded". With Config.FreeExit, ModeRA
// restores this snapshot at exit instead of flushing, modelling an
// idealized runahead with zero discard/refill cost. Memory-system state is
// deliberately NOT restored: the prefetches issued during runahead are the
// benefit being isolated.
//
// The core owns one pipeSnapshot (snapBuf) and refills it in place on
// every entry, so the per-episode snapshot costs no allocation once the
// buffers have grown to pipeline size.
// The issue queue needs no snapshot of its own: its content is exactly
// the sWaiting records of the snapshotted ROB, from which restoreSnapshot
// rebuilds occupancy, waiter registrations and the ready list.
type pipeSnapshot struct {
	robMeta []slotMeta
	robRec  []uopRec
	robHead int
	robSize int
	sqE     []sqEntry
	sqHead  int
	sqSize  int
	lqNorm  int
	ren     rename.FullSnapshot
	fetch   frontend.FetchSnapshot
}

// takeSnapshotInto deep-copies the pipeline into s, reusing its buffers
// (called at RA entry under FreeExit, before the stalling load is
// poisoned).
func (c *Core) takeSnapshotInto(s *pipeSnapshot) {
	s.robMeta = append(s.robMeta[:0], c.rob.meta...)
	s.robRec = append(s.robRec[:0], c.rob.rec...)
	s.robHead = c.rob.head
	s.robSize = c.rob.size
	s.sqE = append(s.sqE[:0], c.sq.e...)
	s.sqHead = c.sq.head
	s.sqSize = c.sq.size
	s.lqNorm = c.lqNorm
	c.ren.TakeFullSnapshotInto(&s.ren)
	c.fetch.TakeSnapshotInto(&s.fetch)
}

// restoreSnapshot reinstates the pipeline exactly as it was at entry, with
// two adjustments: all pending completion events are invalidated (slot
// generations advance) and re-scheduled from each issued µop's known
// completion time, and the runahead episode's in-flight transients are
// discarded.
func (c *Core) restoreSnapshot(s *pipeSnapshot) {
	c.iqDirty = true
	// Restore ROB contents, advancing every slot generation past both the
	// snapshot's and the current value so stale events cannot match.
	for i := range s.robMeta {
		cur := c.rob.meta[i].gen
		snap := s.robMeta[i].gen
		c.rob.meta[i] = s.robMeta[i]
		if cur > snap {
			c.rob.meta[i].gen = cur + 1
		} else {
			c.rob.meta[i].gen = snap + 1
		}
	}
	copy(c.rob.rec, s.robRec)
	c.rob.head = s.robHead
	c.rob.size = s.robSize

	c.sq.e = append(c.sq.e[:0], s.sqE...)
	c.sq.head = s.sqHead
	c.sq.size = s.sqSize
	c.sq.rebuildBloom()
	c.lqNorm = s.lqNorm
	c.lqPre = 0
	c.pre.flush()

	c.ren.RestoreFullSnapshot(&s.ren)
	c.fetch.RestoreSnapshot(&s.fetch, c.now+1)

	// Rebuild the IQ from the restored ROB: waiting entries in program
	// order (the snapshot was taken in RA mode, so only kROB µops existed).
	// Waiter registrations from the snapshotted episode were consumed, so
	// every waiting entry re-registers — necessarily after the renamer
	// restore above, which reinstates the ready bits srcWait is computed
	// from.
	c.iq.clear()
	for i := 0; i < c.rob.size; i++ {
		idx := c.rob.at(i)
		m := &c.rob.meta[idx]
		if m.st == sWaiting {
			c.enqueue(kROB, idx, m, &c.rob.rec[idx])
		}
	}

	// Re-schedule completions for issued-but-unfinished µops. Their memory
	// completion times were computed at issue and remain valid; anything
	// already past completes next cycle. The stalling load's data has
	// arrived (that is why we are exiting), so it completes immediately
	// and cleanly (never poisoned — the snapshot predates the INV mark).
	for i := 0; i < c.rob.size; i++ {
		idx := c.rob.at(i)
		m := &c.rob.meta[idx]
		if m.st != sIssued {
			continue
		}
		at := c.rob.rec[idx].readyAt
		if at <= c.now {
			at = c.now + 1
		}
		c.events.schedule(c.now, completion{cycle: at, kind: kROB, slot: int32(idx), gen: m.gen})
	}
}
