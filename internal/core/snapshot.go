package core

import (
	"repro/internal/frontend"
	"repro/internal/rename"
)

// pipeSnapshot captures the whole pipeline at runahead entry for the E6
// ablation (Section 2.4): "the speedup has the potential to reach up to
// 20.6 percent if the instructions that occupy the ROB when the core
// enters runahead mode are not discarded". With Config.FreeExit, ModeRA
// restores this snapshot at exit instead of flushing, modelling an
// idealized runahead with zero discard/refill cost. Memory-system state is
// deliberately NOT restored: the prefetches issued during runahead are the
// benefit being isolated.
type pipeSnapshot struct {
	robE    []uopRec
	robHead int
	robSize int
	iqRefs  []iqRef
	sqE     []sqEntry
	sqHead  int
	sqSize  int
	lqNorm  int
	ren     *rename.FullSnapshot
	fetch   *frontend.FetchSnapshot
}

// takeSnapshot deep-copies the pipeline (called at RA entry under
// FreeExit, before the stalling load is poisoned).
func (c *Core) takeSnapshot() *pipeSnapshot {
	return &pipeSnapshot{
		robE:    append([]uopRec(nil), c.rob.e...),
		robHead: c.rob.head,
		robSize: c.rob.size,
		iqRefs:  append([]iqRef(nil), c.iq.refs...),
		sqE:     append([]sqEntry(nil), c.sq.e...),
		sqHead:  c.sq.head,
		sqSize:  c.sq.size,
		lqNorm:  c.lqNorm,
		ren:     c.ren.TakeFullSnapshot(),
		fetch:   c.fetch.TakeSnapshot(),
	}
}

// restoreSnapshot reinstates the pipeline exactly as it was at entry, with
// two adjustments: all pending completion events are invalidated (slot
// generations advance) and re-scheduled from each issued µop's known
// completion time, and the runahead episode's in-flight transients are
// discarded.
func (c *Core) restoreSnapshot(s *pipeSnapshot) {
	// Restore ROB contents, advancing every slot generation past both the
	// snapshot's and the current value so stale events cannot match.
	for i := range s.robE {
		cur := c.rob.e[i].gen
		snap := s.robE[i].gen
		c.rob.e[i] = s.robE[i]
		if cur > snap {
			c.rob.e[i].gen = cur + 1
		} else {
			c.rob.e[i].gen = snap + 1
		}
	}
	c.rob.head = s.robHead
	c.rob.size = s.robSize

	// Rebuild the IQ from the restored ROB: waiting entries in program
	// order (the snapshot was taken in RA mode, so only kROB µops existed).
	c.iq.clear()
	for i := 0; i < c.rob.size; i++ {
		idx := c.rob.at(i)
		rec := &c.rob.e[idx]
		if rec.st == sWaiting {
			c.iq.push(iqRef{kind: kROB, slot: idx, gen: rec.gen})
		}
	}

	c.sq.e = append(c.sq.e[:0], s.sqE...)
	c.sq.head = s.sqHead
	c.sq.size = s.sqSize
	c.lqNorm = s.lqNorm
	c.lqPre = 0
	c.pre.flush()

	c.ren.RestoreFullSnapshot(s.ren)
	c.fetch.RestoreSnapshot(s.fetch, c.now+1)

	// Re-schedule completions for issued-but-unfinished µops. Their memory
	// completion times were computed at issue and remain valid; anything
	// already past completes next cycle. The stalling load's data has
	// arrived (that is why we are exiting), so it completes immediately
	// and cleanly (never poisoned — the snapshot predates the INV mark).
	for i := 0; i < c.rob.size; i++ {
		idx := c.rob.at(i)
		rec := &c.rob.e[idx]
		if rec.st != sIssued {
			continue
		}
		at := rec.readyAt
		if at <= c.now {
			at = c.now + 1
		}
		c.events.schedule(completion{cycle: at, kind: kROB, slot: idx, gen: rec.gen})
	}
}
