package core

import "repro/internal/stats"

// Stats aggregates the core's activity counters. Event counts feed the
// energy model; the histograms and snapshots feed the paper's analysis
// experiments (E4, E5, E7, E9).
type Stats struct {
	// Cycles is the measured-window cycle count.
	Cycles int64
	// Committed counts architecturally retired µops (IPC numerator).
	Committed int64

	// Front-end and pipeline activity (energy events).
	Decoded                                                     int64 // µops through decode (includes runahead re-decodes)
	Renamed                                                     int64 // µops through rename
	Dispatched                                                  int64
	IssuedALU, IssuedFPU, IssuedLoad, IssuedStore, IssuedBranch int64
	Completed                                                   int64
	PseudoRetired                                               int64 // RA/RA-buffer runahead retirement (no arch effect)
	EMQDispatched                                               int64 // µops re-dispatched from the EMQ (skip fetch+decode)

	// Stall accounting.
	FullWindowStallCycles int64 // normal-mode cycles with ROB full, head incomplete
	RobFullEvents         int64

	// SkippedAhead counts the simulated cycles Run advanced in bulk via
	// event-driven cycle skipping (already included in Cycles). Purely an
	// engineering diagnostic: it never feeds results JSON, and with
	// DisableCycleSkip it stays zero while every other counter is
	// unchanged.
	SkippedAhead int64

	// Runahead accounting.
	Entries          int64 // runahead invocations
	EntriesSkipped   int64 // RA/RAB entries suppressed by the interval filter
	RunaheadCycles   int64
	RunaheadExecuted int64 // µops executed in runahead mode
	RunaheadINV      int64 // runahead µops dropped/propagated as INV
	Prefetches       int64 // runahead loads sent to the hierarchy
	DivergenceStops  int64 // PRE scans stopped by unresolved mispredicts
	ReplayExhausted  int64 // RA-buffer replays that ran out of lookahead

	// Fast-runahead fidelity tier accounting (zero in the exact tier).
	EmulatedEpisodes   int64 // chain-cache-hit episodes emulated coarsely
	EmulatedPrefetches int64 // prefetches issued by episode emulation

	// Interval histogram (runahead interval lengths, cycles) — E5.
	Intervals *stats.Histogram
	// RefillPenalty accumulates, per RA/RAB exit, the cycles from exit
	// until the first post-exit commit — the paper's ~56-cycle estimate
	// (E4).
	RefillPenalty *stats.Running

	// Free-resource snapshots at runahead entry — E7 (Section 3.4).
	FreeIQAtEntry     *stats.Running
	FreeIntRegAtEntry *stats.Running
	FreeFPRegAtEntry  *stats.Running

	// Branch statistics.
	BranchMispredicts int64
}

// NewStats builds an empty stats block.
func NewStats() *Stats {
	return &Stats{
		Intervals:         stats.NewHistogram("runahead-interval", 10, 20, 50, 100, 200, 400, 800, 1600),
		RefillPenalty:     &stats.Running{},
		FreeIQAtEntry:     &stats.Running{},
		FreeIntRegAtEntry: &stats.Running{},
		FreeFPRegAtEntry:  &stats.Running{},
	}
}

// IPC returns committed µops per cycle over the measured window.
func (s *Stats) IPC() float64 {
	return stats.Ratio(float64(s.Committed), float64(s.Cycles))
}

// Reset zeroes all counters (measurement-window start).
func (s *Stats) Reset() {
	*s = *NewStats()
}
