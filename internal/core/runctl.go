package core

import (
	"repro/internal/frontend"
	"repro/internal/rename"
	"repro/internal/uarch"
)

// maybeEnterRunahead decides whether the full-window stall at head starts
// a runahead episode. (hm, hr) must be the (incomplete) ROB head entry.
func (c *Core) maybeEnterRunahead(hm *slotMeta, hr *uopRec) {
	if c.cfg.Mode == ModeOoO || c.inRunahead {
		return
	}
	if c.cfg.Mode == ModePREEMQ && c.emqDraining {
		// The EMQ is still re-dispatching the previous episode's µops;
		// entering now would interleave new buffered µops with old ones.
		return
	}
	// Only a long-latency load at the head triggers runahead. The
	// remaining-latency test (rather than the serving level) also covers
	// demand loads that merged onto a still-in-flight prefetch — they are
	// outstanding LLC misses in every sense that matters.
	if hm.st != sIssued || !hr.isLoad() {
		return
	}
	remaining := hr.readyAt - c.now
	if remaining <= 2 {
		return // returning this very moment; nothing to run ahead of
	}
	if c.cfg.Mode == ModeRA || c.cfg.Mode == ModeRABuffer {
		// Mutlu's short-interval filter, using the load's predicted
		// remaining latency (the simulator's readyAt stands in for the
		// MSHR-age estimate real hardware uses). PRE deliberately has no
		// such filter: entering costs it nothing, and short intervals are
		// extra prefetch opportunities (Section 2.4).
		if remaining < c.cfg.MinRunaheadCycles {
			if c.lastSkipSeq != hr.seq {
				c.stats.EntriesSkipped++
				c.lastSkipSeq = hr.seq
				c.progressed = true
			}
			return
		}
	}
	if c.chainCache != nil {
		// Fast-runahead fidelity tier: a chain-cache hit emulates the whole
		// episode in one step (see fastpath.go); a miss (or a periodic
		// verification hit) falls through to an exact episode with
		// prefetch-set learning armed.
		if c.fastEnter(hr) {
			return
		}
	}
	c.enterRunahead(hm, hr)
}

// enterRunahead performs the mode-specific entry sequence.
func (c *Core) enterRunahead(hm *slotMeta, hr *uopRec) {
	c.progressed = true
	c.iqDirty = true
	c.inRunahead = true
	c.entryCycle = c.now
	c.exitCycle = hr.readyAt
	c.stallSeq = hr.seq
	c.stallPC = hr.pc
	c.stallDstP = hr.out.DstP
	c.raDiverged = false
	c.stats.Entries++

	if c.tel != nil {
		c.tel.RunaheadEnter(c.now, hr.pc, hr.seq, c.cfg.Mode.String(), hr.readyAt-c.now)
		c.telDispatched = c.stats.Dispatched
		c.telPrefetches = c.stats.Prefetches
		c.telINV = c.stats.RunaheadINV
	}

	// E7: free-resource headroom at entry (Section 3.4).
	intFree, fpFree := c.ren.FreeCounts()
	c.stats.FreeIQAtEntry.Observe(float64(c.iq.freeSlots()) / float64(c.cfg.IQSize))
	c.stats.FreeIntRegAtEntry.Observe(float64(intFree) / float64(c.cfg.Rename.IntPRF))
	c.stats.FreeFPRegAtEntry.Observe(float64(fpFree) / float64(c.cfg.Rename.FPPRF))

	switch c.cfg.Mode {
	case ModeRA, ModeRABuffer:
		c.ren.CheckpointCommittedInto(&c.cpFullBuf)
		c.cpFull = &c.cpFullBuf
		c.pseudoRetire = true
		if c.cfg.FreeExit {
			c.takeSnapshotInto(&c.snapBuf)
			c.snap = &c.snapBuf
		}
		// The stalling load pseudo-completes with an INV result so the
		// window drains through pseudo-retirement.
		c.ren.MarkPoisoned(hr.out.DstP, true)
		c.wake(hr.out.DstP)
		hm.st = sDone
		hm.flags |= fInvResult
		// Everything in flight is now runahead work: its loads prefetch,
		// and — Mutlu's runahead semantics — every load already waiting on
		// a long-latency fill (its own miss or a merge onto one) converts
		// to an immediate INV completion; the fill keeps warming the
		// caches in the background.
		longLat := int64(c.cfg.Mem.L3.HitLatency)
		idx := c.rob.head
		for i := 0; i < c.rob.size; i++ {
			m, r := &c.rob.meta[idx], &c.rob.rec[idx]
			m.flags |= fInRunahead
			if m.st == sIssued && r.isLoad() && r.readyAt > c.now+longLat {
				m.flags |= fInvResult
				r.readyAt = c.now + 1
				c.events.schedule(c.now, completion{cycle: r.readyAt, kind: kROB, slot: int32(idx), gen: m.gen})
			}
			idx++
			if idx == len(c.rob.meta) {
				idx = 0
			}
		}
		if c.cfg.Mode == ModeRABuffer {
			c.initReplay()
		}
	case ModePRE, ModePREEMQ:
		// Section 3.1: checkpoint the RAT; discard nothing. The stalling
		// load's register is poisoned but NOT published: normal-mode
		// consumers keep waiting for the real data while runahead slice
		// µops observe INV at rename.
		c.ren.CheckpointSpecInto(&c.cpSpecBuf)
		c.cpSpec = &c.cpSpecBuf
		c.ren.BeginRunahead()
		c.ren.MarkPoisoned(hr.out.DstP, false)
		c.sst.Insert(c.stallPC)
		c.prdq.Clear()
		if !c.emqDraining {
			c.emq.Clear()
		}
		c.emqScan = 0
		c.preResumeSeq = -1
		c.preDiverged = 0
		c.preScanStop = false
	}
}

// exitRunahead returns to normal mode: the stalling load's data arrived.
func (c *Core) exitRunahead() {
	if c.epEmulated {
		c.exitEmulated()
		return
	}
	if c.epLearning {
		c.finishLearning()
	}
	c.iqDirty = true
	c.stats.Intervals.Observe(c.now - c.entryCycle)
	if c.tel != nil {
		c.tel.RunaheadExit(c.now,
			c.stats.Dispatched-c.telDispatched,
			c.stats.Prefetches-c.telPrefetches,
			c.stats.RunaheadINV-c.telINV)
	}
	switch c.cfg.Mode {
	case ModeRA, ModeRABuffer:
		if c.cfg.FreeExit && c.snap != nil {
			c.restoreSnapshot(c.snap)
			c.snap = nil
		} else {
			// Flush the entire pipeline and restart at the stalling load
			// (Section 2.4) — the flush/refill overhead PRE eliminates.
			c.rob.flush()
			c.iq.clear()
			c.pre.flush()
			c.sq.dropYoungerThan(c.stallSeq)
			c.lqNorm, c.lqPre = 0, 0
			c.ren.RestoreFull(c.cpFull)
			c.fetch.Rewind(c.stallSeq, c.now+1)
			c.refillFrom = c.now
			c.refillDispatched = 0
			c.measuringRefill = true
		}
		c.chain = nil
		c.replayPending = c.replayPending[:0]
	case ModePRE, ModePREEMQ:
		// Section 3.5: restore the RAT, drop runahead transients; the ROB
		// is intact, so commit restarts immediately once the head's
		// completion event lands (this cycle).
		c.iq.dropPRE()
		c.pre.flush()
		c.lqPre = 0
		c.prdq.Clear()
		c.ren.RestoreSpec(c.cpSpec)
		c.ren.ClearPoison(c.stallDstP)
		if c.cfg.Mode == ModePREEMQ {
			// Re-dispatch buffered µops instead of re-fetching them. The
			// fetch queue already continues exactly where the EMQ ends
			// (runahead popped µops into the EMQ in fetch order), so the
			// front-end needs no redirect at all — the paper's energy
			// saving.
			c.emqDraining = c.emq.Len() > 0
		} else if c.preResumeSeq >= 0 {
			// Re-fetch everything consumed during runahead.
			c.fetch.Rewind(c.preResumeSeq, c.now+1)
		}
	}
	c.inRunahead = false
	c.pseudoRetire = false
	c.raDiverged = false
	c.lastProgress = c.now // episode made progress by definition
}

// --- PRE runahead dispatch --------------------------------------------------

// dispatchPRE filters decoded µops through the SST at RunaheadWidth per
// cycle, executing hits on free resources. In PRE+EMQ mode every new
// decode is buffered into the EMQ; if a previous episode's EMQ was still
// draining at entry, the remaining buffered µops are scanned first (they
// are the immediate future of the instruction stream).
func (c *Core) dispatchPRE() {
	if c.preScanStop {
		return
	}
	useEMQ := c.cfg.Mode == ModePREEMQ
	for n := 0; n < c.cfg.RunaheadWidth; n++ {
		var seq int64
		var misp, fromEMQ bool
		if c.emqDraining && c.emqScan < c.emq.Len() {
			seq = c.emq.At(c.emqScan)
			fromEMQ = true
		} else {
			slot, ok := c.fetch.Peek(c.now)
			if !ok {
				return
			}
			if useEMQ && c.emq.Full() {
				// Paper: when the EMQ fills, the core stalls until the
				// stalling load returns.
				c.preScanStop = true
				c.progressed = true
				return
			}
			seq = slot.Seq
			misp = slot.Mispredicted
		}
		u := c.stream.At(seq)
		if c.sst.Lookup(u.PC) {
			c.learnProducers(u)
			if !c.preExecute(u, misp) {
				// Resources exhausted: leave the µop queued; retry. The
				// retry re-probes the SST (a counted lookup) every cycle,
				// so the cycle is not skippable.
				c.retryBlocked = true
				return
			}
		} else if misp {
			// A mispredicted branch that will not execute: charge a
			// redirect bubble and track divergence (the real front-end
			// would wander off-path).
			c.fetch.Bubble(c.now, int64(c.cfg.Fetch.Depth))
			c.preDiverged++
			if c.preDiverged > c.cfg.PREMaxDivergence {
				c.preScanStop = true
				c.stats.DivergenceStops++
			}
		}
		c.progressed = true
		if fromEMQ {
			c.emqScan++ // already decoded and buffered; nothing else to do
		} else {
			c.fetch.Pop(c.now)
			c.stats.Decoded++
			if c.preResumeSeq < 0 {
				c.preResumeSeq = seq
			}
			if useEMQ {
				c.emq.Push(seq)
			}
		}
		if c.preScanStop {
			return
		}
	}
}

// preExecute renames and dispatches one SST-hit µop in PRE runahead mode.
// It returns false when a resource (register, PRDQ, IQ, LQ, pool slot) is
// unavailable this cycle.
func (c *Core) preExecute(u *uarch.Uop, mispredicted bool) bool {
	// All checks precede all side effects.
	if !c.ren.CanRename(u.Dst) || c.prdq.Full() {
		return false
	}
	poisoned := c.ren.IsPoisoned(c.ren.Lookup(u.Src1)) ||
		c.ren.IsPoisoned(c.ren.Lookup(u.Src2))
	executable := !poisoned && !u.IsStore()
	if executable {
		if c.iq.full() {
			return false
		}
		if u.IsLoad() && c.lqNorm+c.lqPre >= c.cfg.LQSize {
			return false
		}
	}
	poolIdx := -1
	if executable {
		var ok bool
		poolIdx, ok = c.pre.alloc()
		if !ok {
			return false
		}
	}

	out, ok := c.ren.Rename(u, true)
	if !ok {
		if poolIdx >= 0 {
			c.pre.release(poolIdx)
		}
		return false
	}
	c.stats.Renamed++
	// PRDQ: record the old mapping; only runahead-epoch registers may be
	// recycled mid-episode (pre-entry mappings come back with the RAT).
	old := rename.PRegNone
	if c.ren.IsRunaheadAlloc(out.OldDstP) {
		old = out.OldDstP
	}
	ticket, ok := c.prdq.Alloc(old)
	if !ok {
		// Cannot happen: Full() was checked; defensive.
		ticket = -1
	}

	if !executable {
		// INV slice µop (poisoned source) or runahead store: absorbed at
		// rename. Poison propagates; the PRDQ entry completes instantly.
		if u.HasDst() {
			c.ren.MarkPoisoned(out.DstP, false)
		}
		if ticket >= 0 {
			c.prdq.MarkExecuted(ticket)
		}
		c.stats.RunaheadINV++
		return true
	}

	m, r := &c.pre.meta[poolIdx], &c.pre.rec[poolIdx]
	m.st = sWaiting // gen is preserved across slot reuse
	m.flags = fInRunahead
	if mispredicted {
		m.flags |= fMispredicted
	}
	r.seq = u.Seq
	r.pc = u.PC
	r.addr = u.Addr
	r.out = out
	r.prdq = ticket
	r.sqIdx = -1
	r.class = u.Class
	r.dst = u.Dst
	r.size = u.Size
	if u.IsLoad() {
		c.lqPre++
		m.flags |= fLQHeld
	}
	c.enqueue(kPRE, poolIdx, m, r)
	c.stats.Dispatched++
	return true
}

// --- EMQ drain ----------------------------------------------------------------

// dispatchFromEMQ re-dispatches buffered µops after a PRE+EMQ exit,
// skipping fetch and decode.
func (c *Core) dispatchFromEMQ() {
	for n := 0; n < c.cfg.Width; n++ {
		seq, ok := c.emq.Peek()
		if !ok {
			c.emqDraining = false
			c.progressed = true
			return
		}
		if c.rob.full() {
			c.onFullWindow()
			return
		}
		if !c.dispatchOne(frontend.Slot{Seq: seq}, false) {
			return
		}
		c.stats.Decoded-- // dispatchOne counted a decode; EMQ µops skip it
		c.stats.EMQDispatched++
		c.emq.Pop()
	}
}

// --- RA-buffer replay -----------------------------------------------------------

// initReplay extracts the stalling chain from the ROB (backward dataflow
// walk) and prepares the replay engine. The front-end is power-gated for
// the whole episode. The hardware walk scans the ROB at one entry per
// cycle ("expensive CAM lookups", Section 3.6), so replay dispatch only
// begins once the walk has finished.
func (c *Core) initReplay() {
	// The ROB no longer retains full µops; the trace stream still holds
	// every in-flight seq (nothing past the commit head is released), so
	// the walk window is rebuilt from the stream by seq.
	c.chainWindow = c.chainWindow[:0]
	idx := c.rob.head
	for i := 0; i < c.rob.size; i++ {
		c.chainWindow = append(c.chainWindow, *c.stream.At(c.rob.rec[idx].seq))
		idx++
		if idx == len(c.rob.meta) {
			idx = 0
		}
	}
	var walkCycles int
	c.chain, walkCycles = c.chainX.Extract(c.chainWindow, c.stallPC, c.cfg.ChainMaxLen)
	c.replayStart = c.now + int64(walkCycles)
	c.fetch.Freeze()
	c.replayCursor = c.stallSeq + 1
	c.replayPending = c.replayPending[:0]
	c.replayIdx = 0
	c.replayDead = len(c.chain) == 0
	if c.replayDead {
		c.stats.ReplayExhausted++
	}
}

// prepareReplayIteration locates the next dynamic instance of every chain
// µop in the instruction stream (one shared forward scan). Returns false
// when the lookahead budget is exhausted.
func (c *Core) prepareReplayIteration() bool {
	c.replayPending = c.replayPending[:0]
	c.replayIdx = 0
	q := c.replayCursor
	limit := c.replayCursor + c.cfg.ReplayLookahead
	for _, cu := range c.chain {
		found := int64(-1)
		// Scan the stream in contiguous spans (bulk-generated blocks)
		// instead of one At call per µop.
	scan:
		for q < limit {
			span := c.stream.Span(q, limit-q)
			for i := range span {
				u := &span[i]
				if u.Class == uarch.ClassJump {
					// Outer-loop transition: the frozen chain's address
					// pattern does not survive the phase change; replay
					// would extrapolate garbage from here on.
					c.replayDead = true
					c.stats.ReplayExhausted++
					return false
				}
				if u.PC == cu.PC {
					found = q + int64(i)
					q = found + 1
					break scan
				}
			}
			q += int64(len(span))
		}
		if found < 0 {
			c.replayDead = true
			c.stats.ReplayExhausted++
			return false
		}
		c.replayPending = append(c.replayPending, found)
	}
	c.replayCursor = q
	return true
}

// dispatchReplay feeds the pipeline from the runahead buffer: the chain's
// future dynamic instances, renamed and executed through the normal back
// end with pseudo-retirement.
func (c *Core) dispatchReplay() {
	if c.replayDead || c.now < c.replayStart {
		return
	}
	for n := 0; n < c.cfg.Width; n++ {
		if c.replayIdx >= len(c.replayPending) {
			// The stream scan mutates replay state either way.
			c.progressed = true
			if !c.prepareReplayIteration() {
				return
			}
		}
		if c.rob.full() {
			return
		}
		seq := c.replayPending[c.replayIdx]
		if !c.dispatchOne(frontend.Slot{Seq: seq}, true) {
			return
		}
		c.replayIdx++
	}
}
