package core

import (
	"repro/internal/mem"
	"repro/internal/rename"
	"repro/internal/uarch"
)

// uopState tracks a µop's progress through the back end.
type uopState uint8

const (
	// sWaiting: dispatched, sitting in the issue queue.
	sWaiting uopState = iota
	// sIssued: executing; a completion event is scheduled.
	sIssued
	// sDone: execution complete (commit-eligible for ROB entries).
	sDone
)

// recKind distinguishes the two µop spaces.
type recKind uint8

const (
	// kROB: a normal-path µop occupying a reorder-buffer slot. RA and
	// RA-buffer runahead µops are also kROB (they pseudo-retire through
	// the ROB).
	kROB recKind = iota
	// kPRE: a PRE runahead µop — executes without a ROB entry, tracked in
	// the transient pool and reclaimed via the PRDQ.
	kPRE
)

// uopRec is the in-flight record shared by ROB entries and PRE transients.
type uopRec struct {
	seq  int64
	uop  uarch.Uop
	out  rename.Out
	st   uopState
	gen  uint32 // slot generation, guards stale events/IQ refs
	prdq int64  // PRDQ ticket (kPRE only; -1 = none)

	mispredicted bool      // fetch-time misprediction flag
	invResult    bool      // completion publishes poison, not data
	inRunahead   bool      // executed under any runahead episode
	srcWait      uint8     // source pregs still pending (0 = issueable)
	readyAt      int64     // completion cycle once issued
	memLevel     mem.Level // loads: level that served the access
	sqIdx        int       // stores: SQ slot; loads: -1
	lqHeld       bool      // load-queue entry held
}

// --- ROB -----------------------------------------------------------------

// rob is a ring buffer of uopRec.
type rob struct {
	e          []uopRec
	head, size int
}

func newROB(n int) *rob { return &rob{e: make([]uopRec, n)} }

func (r *rob) full() bool  { return r.size == len(r.e) }
func (r *rob) empty() bool { return r.size == 0 }
func (r *rob) len() int    { return r.size }
func (r *rob) cap() int    { return len(r.e) }

// push allocates the tail slot and returns its index.
func (r *rob) push() int {
	idx := (r.head + r.size) % len(r.e)
	r.size++
	return idx
}

// headIdx returns the index of the oldest entry.
func (r *rob) headIdx() int { return r.head }

// pop releases the head slot.
func (r *rob) pop() {
	r.e[r.head].gen++ // invalidate stale references
	r.head = (r.head + 1) % len(r.e)
	r.size--
}

// at returns the i-th oldest entry's index.
func (r *rob) at(i int) int { return (r.head + i) % len(r.e) }

// flush drops everything, invalidating all slots.
func (r *rob) flush() {
	for i := 0; i < r.size; i++ {
		r.e[r.at(i)].gen++
	}
	r.head, r.size = 0, 0
}

// --- PRE transient pool ---------------------------------------------------

// prePool holds PRE runahead µops (no ROB slot). Slots are recycled via a
// free list; generations invalidate stale references on reuse and flush.
type prePool struct {
	e     []uopRec
	free  []int
	inUse []bool
	live  int
}

func newPrePool(n int) *prePool {
	p := &prePool{e: make([]uopRec, n), free: make([]int, 0, n), inUse: make([]bool, n)}
	for i := n - 1; i >= 0; i-- {
		p.free = append(p.free, i)
	}
	return p
}

func (p *prePool) alloc() (int, bool) {
	if len(p.free) == 0 {
		return 0, false
	}
	idx := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	p.inUse[idx] = true
	p.live++
	return idx, true
}

func (p *prePool) release(idx int) {
	p.e[idx].gen++
	p.free = append(p.free, idx)
	p.inUse[idx] = false
	p.live--
}

// flush releases every live slot.
func (p *prePool) flush() {
	if p.live == 0 {
		return
	}
	for i := range p.e {
		if p.inUse[i] {
			p.release(i)
		}
	}
}

// --- issue queue -----------------------------------------------------------

// iqRef points an issue-queue slot at an in-flight record.
type iqRef struct {
	kind recKind
	slot int
	gen  uint32
}

// wakeRef identifies a µop waiting on a physical register's data.
type wakeRef struct {
	kind recKind
	slot int
	gen  uint32
}

// readyRef is a waiting µop whose sources have all arrived, keyed by
// sequence number for program-ordered issue priority.
type readyRef struct {
	kind recKind
	slot int
	gen  uint32
	seq  int64
}

// issueQueue tracks issue-queue occupancy plus the program-ordered list
// of *ready* waiting µops. Entries with pending sources are represented
// only by their waiter-list registrations (Core.waiters) and by the
// occupancy count; they join the ready list when their last source
// completes. This keeps the per-cycle issue scan proportional to the
// handful of issueable µops instead of the whole 92-entry queue.
type issueQueue struct {
	ready  []readyRef // srcWait==0 waiting entries, seq-ascending
	count  int        // all waiting entries (ready + source-pending)
	preCnt int        // of those, kPRE transients (PRE-exit accounting)
	cap    int
}

func newIQ(n int) *issueQueue { return &issueQueue{ready: make([]readyRef, 0, n), cap: n} }

func (q *issueQueue) full() bool     { return q.count >= q.cap }
func (q *issueQueue) len() int       { return q.count }
func (q *issueQueue) freeSlots() int { return q.cap - q.count }

// add admits one waiting µop (ready or not) into the queue's occupancy.
func (q *issueQueue) add(kind recKind) {
	q.count++
	if kind == kPRE {
		q.preCnt++
	}
}

// issued releases one entry's occupancy (it left the queue by issuing).
func (q *issueQueue) issued(kind recKind) {
	q.count--
	if kind == kPRE {
		q.preCnt--
	}
}

// markReady files a µop whose sources are all available, keeping the
// ready list seq-sorted. Dispatch appends in program order (fast path);
// wake-ups insert older µops by binary search.
func (q *issueQueue) markReady(kind recKind, slot int, gen uint32, seq int64) {
	r := readyRef{kind: kind, slot: slot, gen: gen, seq: seq}
	n := len(q.ready)
	if n == 0 || q.ready[n-1].seq < seq {
		q.ready = append(q.ready, r)
		return
	}
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		if q.ready[mid].seq < seq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	q.ready = append(q.ready, readyRef{})
	copy(q.ready[lo+1:], q.ready[lo:])
	q.ready[lo] = r
}

// dropPRE removes every kPRE entry (PRE runahead exit: the transients are
// squashed wholesale; pending ones are gen-guarded in the waiter lists).
func (q *issueQueue) dropPRE() {
	out := q.ready[:0]
	for _, r := range q.ready {
		if r.kind == kROB {
			out = append(out, r)
		}
	}
	q.ready = out
	q.count -= q.preCnt
	q.preCnt = 0
}

func (q *issueQueue) clear() {
	q.ready = q.ready[:0]
	q.count, q.preCnt = 0, 0
}

// --- store queue ------------------------------------------------------------

// sqEntry is one store-queue slot, also serving as the post-commit write
// buffer entry until the store drains to the L1D.
type sqEntry struct {
	valid     bool
	seq       int64
	addr      uint64
	size      uint8
	dataReady bool
	committed bool
	runahead  bool // pseudo-retired runahead store: never drains
}

// storeQueue is a program-ordered ring of stores.
type storeQueue struct {
	e          []sqEntry
	head, size int
}

func newSQ(n int) *storeQueue { return &storeQueue{e: make([]sqEntry, n)} }

func (s *storeQueue) full() bool { return s.size == len(s.e) }
func (s *storeQueue) len() int   { return s.size }

// push appends a store, returning its slot index.
func (s *storeQueue) push(seq int64, addr uint64, size uint8, runahead bool) int {
	idx := (s.head + s.size) % len(s.e)
	s.e[idx] = sqEntry{valid: true, seq: seq, addr: addr, size: size, runahead: runahead}
	s.size++
	return idx
}

// forwardFrom finds the youngest store older than seq whose range overlaps
// [addr, addr+size). It returns (found, dataReady).
func (s *storeQueue) forwardFrom(seq int64, addr uint64, size uint8) (bool, bool) {
	for i := s.size - 1; i >= 0; i-- {
		e := &s.e[(s.head+i)%len(s.e)]
		if !e.valid || e.seq >= seq {
			continue
		}
		if addr < e.addr+uint64(e.size) && e.addr < addr+uint64(size) {
			return true, e.dataReady
		}
	}
	return false, false
}

// drainHead pops completed head entries; the caller drains each to memory.
// stop draining when fn returns false (e.g. MSHR rejection).
func (s *storeQueue) drainHead(fn func(*sqEntry) bool) {
	for s.size > 0 {
		e := &s.e[s.head]
		if !e.committed {
			return
		}
		if !e.runahead && !fn(e) {
			return
		}
		e.valid = false
		s.head = (s.head + 1) % len(s.e)
		s.size--
	}
}

// dropYoungerThan removes all stores with seq >= cutoff (flush).
func (s *storeQueue) dropYoungerThan(cutoff int64) {
	for s.size > 0 {
		tail := (s.head + s.size - 1) % len(s.e)
		if s.e[tail].seq < cutoff {
			return
		}
		s.e[tail].valid = false
		s.size--
	}
}

func (s *storeQueue) clearUncommitted() {
	s.dropYoungerThan(-1 << 62)
}

// --- completion events --------------------------------------------------

// completion schedules a µop's execution finish.
type completion struct {
	cycle int64
	kind  recKind
	slot  int
	gen   uint32
}

// eventQueue schedules completions. Nearly every completion is short
// (ALU 1 cycle, cache hits up to ~42 cycles), so near events go into a
// 64-slot calendar ring — O(1) schedule and pop, no heap churn — and only
// far events (DRAM-latency fills) use a hand-rolled min-heap. Same-cycle
// events carry no ordering contract (completion effects within a cycle
// are commutative; the differential and golden tests pin this).
//
// Slot aliasing is safe because events are always drained at their exact
// cycle: a slot can only hold one cycle's events at a time (a second
// cycle mapping to the same slot would be ≥ 64 cycles out, which is far).
type eventQueue struct {
	near    [eventRing][]completion
	nearCnt int
	far     eventHeap
}

const eventRing = 64

// schedule files a completion due at c.cycle, seen from cycle now.
func (q *eventQueue) schedule(now int64, c completion) {
	if c.cycle-now < eventRing {
		q.near[c.cycle&(eventRing-1)] = append(q.near[c.cycle&(eventRing-1)], c)
		q.nearCnt++
		return
	}
	q.far.push(c)
}

// popDue removes one event due at now, if any.
func (q *eventQueue) popDue(now int64) (completion, bool) {
	if q.nearCnt > 0 {
		slot := &q.near[now&(eventRing-1)]
		if n := len(*slot); n > 0 {
			c := (*slot)[n-1]
			*slot = (*slot)[:n-1]
			q.nearCnt--
			return c, true
		}
	}
	if len(q.far) > 0 && q.far[0].cycle <= now {
		return q.far.pop(), true
	}
	return completion{}, false
}

// nextAt returns the cycle of the earliest pending event at or after now,
// or ok=false when the queue is empty.
func (q *eventQueue) nextAt(now int64) (int64, bool) {
	best := int64(0)
	ok := false
	if q.nearCnt > 0 {
		for d := int64(0); d < eventRing; d++ {
			slot := q.near[(now+d)&(eventRing-1)]
			if len(slot) > 0 {
				best, ok = slot[0].cycle, true
				break
			}
		}
	}
	if len(q.far) > 0 && (!ok || q.far[0].cycle < best) {
		best, ok = q.far[0].cycle, true
	}
	return best, ok
}

func (q *eventQueue) len() int { return q.nearCnt + len(q.far) }

// eventHeap is a hand-rolled min-heap of completions ordered by cycle
// (no container/heap: interface boxing would allocate per event).
type eventHeap []completion

// push adds a completion (sift-up).
func (h *eventHeap) push(c completion) {
	*h = append(*h, c)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s[parent].cycle <= s[i].cycle {
			break
		}
		s[parent], s[i] = s[i], s[parent]
		i = parent
	}
}

// pop removes the minimum (sift-down).
func (h *eventHeap) pop() completion {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && s[l].cycle < s[min].cycle {
			min = l
		}
		if r < n && s[r].cycle < s[min].cycle {
			min = r
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return top
}

// --- functional units -----------------------------------------------------

// fuPools models per-cycle issue capacity per unit pool, plus unpipelined
// divide units.
type fuPools struct {
	aluCap, fpuCap, loadCap, storeCap, branchCap int
	alu, fpu, load, store, branch                int
	idivBusyUntil, fdivBusyUntil                 int64
}

func newFU(cfg *Config) *fuPools {
	return &fuPools{
		aluCap: cfg.IntALU, fpuCap: cfg.FPU,
		loadCap: cfg.LoadPorts, storeCap: cfg.StorePorts,
		branchCap: cfg.BranchUnits,
	}
}

// newCycle resets the per-cycle counters.
func (f *fuPools) newCycle() { f.alu, f.fpu, f.load, f.store, f.branch = 0, 0, 0, 0, 0 }

// nextDivFree returns the earliest cycle strictly after now at which an
// unpipelined divide unit frees up (ok=false when both are already free).
// A ready divide µop blocked on a busy unit retries identically until
// then.
func (f *fuPools) nextDivFree(now int64) (int64, bool) {
	var best int64
	ok := false
	if f.idivBusyUntil > now {
		best, ok = f.idivBusyUntil, true
	}
	if f.fdivBusyUntil > now && (!ok || f.fdivBusyUntil < best) {
		best, ok = f.fdivBusyUntil, true
	}
	return best, ok
}

// tryIssue consumes capacity for class c at cycle now; reports acceptance.
func (f *fuPools) tryIssue(c uarch.Class, now int64) bool {
	switch c {
	case uarch.ClassIntAlu, uarch.ClassIntMul, uarch.ClassNop:
		if f.alu >= f.aluCap {
			return false
		}
		f.alu++
	case uarch.ClassIntDiv:
		if f.alu >= f.aluCap || f.idivBusyUntil > now {
			return false
		}
		f.alu++
		f.idivBusyUntil = now + int64(uarch.ClassIntDiv.Latency())
	case uarch.ClassFPAdd, uarch.ClassFPMul:
		if f.fpu >= f.fpuCap {
			return false
		}
		f.fpu++
	case uarch.ClassFPDiv:
		if f.fpu >= f.fpuCap || f.fdivBusyUntil > now {
			return false
		}
		f.fpu++
		f.fdivBusyUntil = now + int64(uarch.ClassFPDiv.Latency())
	case uarch.ClassLoad:
		if f.load >= f.loadCap {
			return false
		}
		f.load++
	case uarch.ClassStore:
		if f.store >= f.storeCap {
			return false
		}
		f.store++
	case uarch.ClassBranch, uarch.ClassJump, uarch.ClassCall, uarch.ClassReturn:
		if f.branch >= f.branchCap {
			return false
		}
		f.branch++
	default:
		return false
	}
	return true
}
