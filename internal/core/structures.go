package core

import (
	"container/heap"

	"repro/internal/mem"
	"repro/internal/rename"
	"repro/internal/uarch"
)

// uopState tracks a µop's progress through the back end.
type uopState uint8

const (
	// sWaiting: dispatched, sitting in the issue queue.
	sWaiting uopState = iota
	// sIssued: executing; a completion event is scheduled.
	sIssued
	// sDone: execution complete (commit-eligible for ROB entries).
	sDone
)

// recKind distinguishes the two µop spaces.
type recKind uint8

const (
	// kROB: a normal-path µop occupying a reorder-buffer slot. RA and
	// RA-buffer runahead µops are also kROB (they pseudo-retire through
	// the ROB).
	kROB recKind = iota
	// kPRE: a PRE runahead µop — executes without a ROB entry, tracked in
	// the transient pool and reclaimed via the PRDQ.
	kPRE
)

// uopRec is the in-flight record shared by ROB entries and PRE transients.
type uopRec struct {
	seq  int64
	uop  uarch.Uop
	out  rename.Out
	st   uopState
	gen  uint32 // slot generation, guards stale events/IQ refs
	prdq int64  // PRDQ ticket (kPRE only; -1 = none)

	mispredicted bool      // fetch-time misprediction flag
	invResult    bool      // completion publishes poison, not data
	inRunahead   bool      // executed under any runahead episode
	readyAt      int64     // completion cycle once issued
	memLevel     mem.Level // loads: level that served the access
	sqIdx        int       // stores: SQ slot; loads: -1
	lqHeld       bool      // load-queue entry held
}

// --- ROB -----------------------------------------------------------------

// rob is a ring buffer of uopRec.
type rob struct {
	e          []uopRec
	head, size int
}

func newROB(n int) *rob { return &rob{e: make([]uopRec, n)} }

func (r *rob) full() bool  { return r.size == len(r.e) }
func (r *rob) empty() bool { return r.size == 0 }
func (r *rob) len() int    { return r.size }
func (r *rob) cap() int    { return len(r.e) }

// push allocates the tail slot and returns its index.
func (r *rob) push() int {
	idx := (r.head + r.size) % len(r.e)
	r.size++
	return idx
}

// headIdx returns the index of the oldest entry.
func (r *rob) headIdx() int { return r.head }

// pop releases the head slot.
func (r *rob) pop() {
	r.e[r.head].gen++ // invalidate stale references
	r.head = (r.head + 1) % len(r.e)
	r.size--
}

// at returns the i-th oldest entry's index.
func (r *rob) at(i int) int { return (r.head + i) % len(r.e) }

// flush drops everything, invalidating all slots.
func (r *rob) flush() {
	for i := 0; i < r.size; i++ {
		r.e[r.at(i)].gen++
	}
	r.head, r.size = 0, 0
}

// --- PRE transient pool ---------------------------------------------------

// prePool holds PRE runahead µops (no ROB slot). Slots are recycled via a
// free list; generations invalidate stale references on reuse and flush.
type prePool struct {
	e    []uopRec
	free []int
	live int
}

func newPrePool(n int) *prePool {
	p := &prePool{e: make([]uopRec, n), free: make([]int, 0, n)}
	for i := n - 1; i >= 0; i-- {
		p.free = append(p.free, i)
	}
	return p
}

func (p *prePool) alloc() (int, bool) {
	if len(p.free) == 0 {
		return 0, false
	}
	idx := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	p.live++
	return idx, true
}

func (p *prePool) release(idx int) {
	p.e[idx].gen++
	p.free = append(p.free, idx)
	p.live--
}

// flush releases every live slot.
func (p *prePool) flush() {
	if p.live == 0 {
		return
	}
	inFree := make([]bool, len(p.e))
	for _, i := range p.free {
		inFree[i] = true
	}
	for i := range p.e {
		if !inFree[i] {
			p.release(i)
		}
	}
}

// --- issue queue -----------------------------------------------------------

// iqRef points an issue-queue slot at an in-flight record.
type iqRef struct {
	kind recKind
	slot int
	gen  uint32
}

// issueQueue is a program-ordered list of waiting µops.
type issueQueue struct {
	refs []iqRef
	cap  int
}

func newIQ(n int) *issueQueue { return &issueQueue{refs: make([]iqRef, 0, n), cap: n} }

func (q *issueQueue) full() bool     { return len(q.refs) >= q.cap }
func (q *issueQueue) len() int       { return len(q.refs) }
func (q *issueQueue) freeSlots() int { return q.cap - len(q.refs) }

func (q *issueQueue) push(ref iqRef) { q.refs = append(q.refs, ref) }

// removeAt deletes the i-th entry preserving order.
func (q *issueQueue) removeAt(i int) {
	copy(q.refs[i:], q.refs[i+1:])
	q.refs = q.refs[:len(q.refs)-1]
}

// filter keeps only entries for which keep returns true.
func (q *issueQueue) filter(keep func(iqRef) bool) {
	out := q.refs[:0]
	for _, r := range q.refs {
		if keep(r) {
			out = append(out, r)
		}
	}
	q.refs = out
}

func (q *issueQueue) clear() { q.refs = q.refs[:0] }

// --- store queue ------------------------------------------------------------

// sqEntry is one store-queue slot, also serving as the post-commit write
// buffer entry until the store drains to the L1D.
type sqEntry struct {
	valid     bool
	seq       int64
	addr      uint64
	size      uint8
	dataReady bool
	committed bool
	runahead  bool // pseudo-retired runahead store: never drains
}

// storeQueue is a program-ordered ring of stores.
type storeQueue struct {
	e          []sqEntry
	head, size int
}

func newSQ(n int) *storeQueue { return &storeQueue{e: make([]sqEntry, n)} }

func (s *storeQueue) full() bool { return s.size == len(s.e) }
func (s *storeQueue) len() int   { return s.size }

// push appends a store, returning its slot index.
func (s *storeQueue) push(seq int64, addr uint64, size uint8, runahead bool) int {
	idx := (s.head + s.size) % len(s.e)
	s.e[idx] = sqEntry{valid: true, seq: seq, addr: addr, size: size, runahead: runahead}
	s.size++
	return idx
}

// forwardFrom finds the youngest store older than seq whose range overlaps
// [addr, addr+size). It returns (found, dataReady).
func (s *storeQueue) forwardFrom(seq int64, addr uint64, size uint8) (bool, bool) {
	for i := s.size - 1; i >= 0; i-- {
		e := &s.e[(s.head+i)%len(s.e)]
		if !e.valid || e.seq >= seq {
			continue
		}
		if addr < e.addr+uint64(e.size) && e.addr < addr+uint64(size) {
			return true, e.dataReady
		}
	}
	return false, false
}

// drainHead pops completed head entries; the caller drains each to memory.
// stop draining when fn returns false (e.g. MSHR rejection).
func (s *storeQueue) drainHead(fn func(*sqEntry) bool) {
	for s.size > 0 {
		e := &s.e[s.head]
		if !e.committed {
			return
		}
		if !e.runahead && !fn(e) {
			return
		}
		e.valid = false
		s.head = (s.head + 1) % len(s.e)
		s.size--
	}
}

// dropYoungerThan removes all stores with seq >= cutoff (flush).
func (s *storeQueue) dropYoungerThan(cutoff int64) {
	for s.size > 0 {
		tail := (s.head + s.size - 1) % len(s.e)
		if s.e[tail].seq < cutoff {
			return
		}
		s.e[tail].valid = false
		s.size--
	}
}

func (s *storeQueue) clearUncommitted() {
	s.dropYoungerThan(-1 << 62)
}

// --- completion events --------------------------------------------------

// completion schedules a µop's execution finish.
type completion struct {
	cycle int64
	kind  recKind
	slot  int
	gen   uint32
}

// eventHeap is a min-heap of completions ordered by cycle.
type eventHeap []completion

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return h[i].cycle < h[j].cycle }
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(completion)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// schedule pushes a completion event.
func (h *eventHeap) schedule(c completion) { heap.Push(h, c) }

// nextAt returns the cycle of the earliest pending event, or ok=false.
func (h eventHeap) nextAt() (int64, bool) {
	if len(h) == 0 {
		return 0, false
	}
	return h[0].cycle, true
}

// popDue removes and returns the earliest event if due at now.
func (h *eventHeap) popDue(now int64) (completion, bool) {
	if len(*h) == 0 || (*h)[0].cycle > now {
		return completion{}, false
	}
	return heap.Pop(h).(completion), true
}

// --- functional units -----------------------------------------------------

// fuPools models per-cycle issue capacity per unit pool, plus unpipelined
// divide units.
type fuPools struct {
	aluCap, fpuCap, loadCap, storeCap, branchCap int
	alu, fpu, load, store, branch                int
	idivBusyUntil, fdivBusyUntil                 int64
}

func newFU(cfg *Config) *fuPools {
	return &fuPools{
		aluCap: cfg.IntALU, fpuCap: cfg.FPU,
		loadCap: cfg.LoadPorts, storeCap: cfg.StorePorts,
		branchCap: cfg.BranchUnits,
	}
}

// newCycle resets the per-cycle counters.
func (f *fuPools) newCycle() { f.alu, f.fpu, f.load, f.store, f.branch = 0, 0, 0, 0, 0 }

// tryIssue consumes capacity for class c at cycle now; reports acceptance.
func (f *fuPools) tryIssue(c uarch.Class, now int64) bool {
	switch c {
	case uarch.ClassIntAlu, uarch.ClassIntMul, uarch.ClassNop:
		if f.alu >= f.aluCap {
			return false
		}
		f.alu++
	case uarch.ClassIntDiv:
		if f.alu >= f.aluCap || f.idivBusyUntil > now {
			return false
		}
		f.alu++
		f.idivBusyUntil = now + int64(uarch.ClassIntDiv.Latency())
	case uarch.ClassFPAdd, uarch.ClassFPMul:
		if f.fpu >= f.fpuCap {
			return false
		}
		f.fpu++
	case uarch.ClassFPDiv:
		if f.fpu >= f.fpuCap || f.fdivBusyUntil > now {
			return false
		}
		f.fpu++
		f.fdivBusyUntil = now + int64(uarch.ClassFPDiv.Latency())
	case uarch.ClassLoad:
		if f.load >= f.loadCap {
			return false
		}
		f.load++
	case uarch.ClassStore:
		if f.store >= f.storeCap {
			return false
		}
		f.store++
	case uarch.ClassBranch, uarch.ClassJump, uarch.ClassCall, uarch.ClassReturn:
		if f.branch >= f.branchCap {
			return false
		}
		f.branch++
	default:
		return false
	}
	return true
}
