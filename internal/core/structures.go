package core

import (
	"math/bits"

	"repro/internal/rename"
	"repro/internal/uarch"
)

// uopState tracks a µop's progress through the back end.
type uopState uint8

const (
	// sWaiting: dispatched, sitting in the issue queue.
	sWaiting uopState = iota
	// sIssued: executing; a completion event is scheduled.
	sIssued
	// sDone: execution complete (commit-eligible for ROB entries).
	sDone
)

// recKind distinguishes the two µop spaces.
type recKind uint8

const (
	// kROB: a normal-path µop occupying a reorder-buffer slot. RA and
	// RA-buffer runahead µops are also kROB (they pseudo-retire through
	// the ROB).
	kROB recKind = iota
	// kPRE: a PRE runahead µop — executes without a ROB entry, tracked in
	// the transient pool and reclaimed via the PRDQ.
	kPRE
)

// uopFlags packs a slot's boolean state into one byte.
type uopFlags uint8

const (
	// fMispredicted: fetch-time misprediction flag.
	fMispredicted uopFlags = 1 << iota
	// fInvResult: completion publishes poison, not data.
	fInvResult
	// fInRunahead: executed under any runahead episode.
	fInRunahead
	// fLQHeld: load-queue entry held.
	fLQHeld
)

// slotMeta is the hot half of a µop slot: the one 8-byte word the wake-up,
// completion-event and issue-scan probes touch. Keeping it in its own
// densely packed array (struct-of-arrays with uopRec) means a wake-up or a
// stale-event check reads 8 bytes instead of a whole record, and bulk
// scans (commit run, flush, runahead-entry conversion) walk 8 slots per
// cache line.
type slotMeta struct {
	gen     uint32   // slot generation, guards stale events/IQ refs
	st      uopState // back-end progress
	srcWait uint8    // source pregs still pending (0 = issueable)
	flags   uopFlags
	_       uint8
}

// uopRec is the cold half of a µop slot: everything the back end needs
// after dispatch that is not probed per wake-up. The fetched µop itself is
// not retained — only the fields the issue/complete/commit paths read
// (the full Uop stays resolvable through the trace stream by seq).
type uopRec struct {
	seq     int64
	pc      uint64
	addr    uint64 // loads/stores: effective address
	readyAt int64  // completion cycle once issued
	prdq    int64  // PRDQ ticket (kPRE only; -1 = none)
	out     rename.Out
	sqIdx   int32 // stores: SQ slot; otherwise -1
	class   uarch.Class
	dst     uarch.Reg // architectural destination (RegNone if none)
	size    uint8     // loads/stores: access size
}

func (r *uopRec) isLoad() bool  { return r.class == uarch.ClassLoad }
func (r *uopRec) isStore() bool { return r.class == uarch.ClassStore }
func (r *uopRec) hasDst() bool  { return r.dst != uarch.RegNone }

// --- ROB -----------------------------------------------------------------

// rob is a ring buffer of µop slots in struct-of-arrays layout.
type rob struct {
	meta       []slotMeta
	rec        []uopRec
	head, size int
}

func newROB(n int) *rob {
	return &rob{meta: make([]slotMeta, n), rec: make([]uopRec, n)}
}

func (r *rob) full() bool  { return r.size == len(r.meta) }
func (r *rob) empty() bool { return r.size == 0 }
func (r *rob) len() int    { return r.size }
func (r *rob) cap() int    { return len(r.meta) }

// push allocates the tail slot and returns its index.
func (r *rob) push() int {
	idx := r.head + r.size
	if idx >= len(r.meta) {
		idx -= len(r.meta)
	}
	r.size++
	return idx
}

// headIdx returns the index of the oldest entry.
func (r *rob) headIdx() int { return r.head }

// pop releases the head slot.
func (r *rob) pop() {
	r.meta[r.head].gen++ // invalidate stale references
	r.head++
	if r.head == len(r.meta) {
		r.head = 0
	}
	r.size--
}

// at returns the i-th oldest entry's index.
func (r *rob) at(i int) int {
	idx := r.head + i
	if idx >= len(r.meta) {
		idx -= len(r.meta)
	}
	return idx
}

// flush drops everything, invalidating all slots.
func (r *rob) flush() {
	for i := range r.meta {
		r.meta[i].gen++
	}
	r.head, r.size = 0, 0
}

// --- PRE transient pool ---------------------------------------------------

// prePool holds PRE runahead µops (no ROB slot). Slots are recycled via a
// free list; generations invalidate stale references on reuse and flush.
type prePool struct {
	meta  []slotMeta
	rec   []uopRec
	free  []int
	inUse []bool
	live  int
}

func newPrePool(n int) *prePool {
	p := &prePool{
		meta:  make([]slotMeta, n),
		rec:   make([]uopRec, n),
		free:  make([]int, 0, n),
		inUse: make([]bool, n),
	}
	for i := n - 1; i >= 0; i-- {
		p.free = append(p.free, i)
	}
	return p
}

func (p *prePool) alloc() (int, bool) {
	if len(p.free) == 0 {
		return 0, false
	}
	idx := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	p.inUse[idx] = true
	p.live++
	return idx, true
}

func (p *prePool) release(idx int) {
	p.meta[idx].gen++
	p.free = append(p.free, idx)
	p.inUse[idx] = false
	p.live--
}

// flush releases every live slot.
func (p *prePool) flush() {
	if p.live == 0 {
		return
	}
	for i := range p.inUse {
		if p.inUse[i] {
			p.release(i)
		}
	}
}

// --- issue queue -----------------------------------------------------------

// wakeRef identifies a µop waiting on a physical register's data. It
// carries the waiter's seq so a wake-up never has to touch the cold record
// to file the µop on the ready list.
type wakeRef struct {
	seq  int64
	gen  uint32
	slot int32
	kind recKind
}

// readyRef is a waiting µop whose sources have all arrived, keyed by
// sequence number for program-ordered issue priority.
type readyRef struct {
	seq  int64
	gen  uint32
	slot int32
	kind recKind
}

// issueQueue tracks issue-queue occupancy plus the program-ordered list
// of *ready* waiting µops. Entries with pending sources are represented
// only by their waiter-list registrations (Core.waiters) and by the
// occupancy count; they join the ready list when their last source
// completes. This keeps the per-cycle issue scan proportional to the
// handful of issueable µops instead of the whole 92-entry queue.
type issueQueue struct {
	ready  []readyRef // srcWait==0 waiting entries, seq-ascending
	count  int        // all waiting entries (ready + source-pending)
	preCnt int        // of those, kPRE transients (PRE-exit accounting)
	cap    int
}

func newIQ(n int) *issueQueue { return &issueQueue{ready: make([]readyRef, 0, n), cap: n} }

func (q *issueQueue) full() bool     { return q.count >= q.cap }
func (q *issueQueue) len() int       { return q.count }
func (q *issueQueue) freeSlots() int { return q.cap - q.count }

// add admits one waiting µop (ready or not) into the queue's occupancy.
func (q *issueQueue) add(kind recKind) {
	q.count++
	if kind == kPRE {
		q.preCnt++
	}
}

// issued releases one entry's occupancy (it left the queue by issuing).
func (q *issueQueue) issued(kind recKind) {
	q.count--
	if kind == kPRE {
		q.preCnt--
	}
}

// markReady files a µop whose sources are all available, keeping the
// ready list seq-sorted. Dispatch appends in program order (fast path);
// wake-ups insert older µops by binary search.
func (q *issueQueue) markReady(kind recKind, slot int, gen uint32, seq int64) {
	r := readyRef{kind: kind, slot: int32(slot), gen: gen, seq: seq}
	n := len(q.ready)
	if n == 0 || q.ready[n-1].seq < seq {
		q.ready = append(q.ready, r)
		return
	}
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		if q.ready[mid].seq < seq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	q.ready = append(q.ready, readyRef{})
	copy(q.ready[lo+1:], q.ready[lo:])
	q.ready[lo] = r
}

// dropPRE removes every kPRE entry (PRE runahead exit: the transients are
// squashed wholesale; pending ones are gen-guarded in the waiter lists).
func (q *issueQueue) dropPRE() {
	out := q.ready[:0]
	for _, r := range q.ready {
		if r.kind == kROB {
			out = append(out, r)
		}
	}
	q.ready = out
	q.count -= q.preCnt
	q.preCnt = 0
}

func (q *issueQueue) clear() {
	q.ready = q.ready[:0]
	q.count, q.preCnt = 0, 0
}

// --- store queue ------------------------------------------------------------

// sqEntry is one store-queue slot, also serving as the post-commit write
// buffer entry until the store drains to the L1D.
type sqEntry struct {
	valid     bool
	seq       int64
	addr      uint64
	size      uint8
	dataReady bool
	committed bool
	runahead  bool // pseudo-retired runahead store: never drains
}

// storeQueue is a program-ordered ring of stores, with a counting Bloom
// filter over the cache lines the live stores touch. Most loads alias no
// in-flight store; the filter rejects them in O(1) instead of the
// youngest-first overlap scan, which showed up as a flat per-load cost.
type storeQueue struct {
	e          []sqEntry
	head, size int
	bloomSet   uint64     // bit b set iff bloomCnt[b] > 0
	bloomCnt   [64]uint16 // live stores hashing to each bucket
}

func newSQ(n int) *storeQueue { return &storeQueue{e: make([]sqEntry, n)} }

func (s *storeQueue) full() bool { return s.size == len(s.e) }
func (s *storeQueue) len() int   { return s.size }

// bloomBits returns the filter mask for the cache lines [addr, addr+size)
// touches. Byte-range overlap implies a shared line, so the filter has no
// false negatives.
func bloomBits(addr uint64, size uint8) uint64 {
	first := addr >> 6
	last := (addr + uint64(size) - 1) >> 6
	b := uint64(1) << ((first * 0x9e3779b97f4a7c15) >> 58)
	if last != first {
		b |= uint64(1) << ((last * 0x9e3779b97f4a7c15) >> 58)
	}
	return b
}

func (s *storeQueue) bloomAdd(addr uint64, size uint8) {
	b := bloomBits(addr, size)
	s.bloomSet |= b
	for b != 0 {
		s.bloomCnt[bits.TrailingZeros64(b)]++
		b &= b - 1
	}
}

func (s *storeQueue) bloomRemove(addr uint64, size uint8) {
	b := bloomBits(addr, size)
	for b != 0 {
		i := bits.TrailingZeros64(b)
		s.bloomCnt[i]--
		if s.bloomCnt[i] == 0 {
			s.bloomSet &^= 1 << i
		}
		b &= b - 1
	}
}

// push appends a store, returning its slot index.
func (s *storeQueue) push(seq int64, addr uint64, size uint8, runahead bool) int {
	idx := s.head + s.size
	if idx >= len(s.e) {
		idx -= len(s.e)
	}
	s.e[idx] = sqEntry{valid: true, seq: seq, addr: addr, size: size, runahead: runahead}
	s.bloomAdd(addr, size)
	s.size++
	return idx
}

// forwardFrom finds the youngest store older than seq whose range overlaps
// [addr, addr+size). It returns (found, dataReady).
func (s *storeQueue) forwardFrom(seq int64, addr uint64, size uint8) (bool, bool) {
	if s.size == 0 || s.bloomSet&bloomBits(addr, size) == 0 {
		return false, false
	}
	idx := s.head + s.size - 1
	if idx >= len(s.e) {
		idx -= len(s.e)
	}
	for i := s.size - 1; i >= 0; i-- {
		e := &s.e[idx]
		if e.valid && e.seq < seq &&
			addr < e.addr+uint64(e.size) && e.addr < addr+uint64(size) {
			return true, e.dataReady
		}
		idx--
		if idx < 0 {
			idx = len(s.e) - 1
		}
	}
	return false, false
}

// drainHead pops completed head entries; the caller drains each to memory.
// stop draining when fn returns false (e.g. MSHR rejection).
func (s *storeQueue) drainHead(fn func(*sqEntry) bool) {
	for s.size > 0 {
		e := &s.e[s.head]
		if !e.committed {
			return
		}
		if !e.runahead && !fn(e) {
			return
		}
		e.valid = false
		s.bloomRemove(e.addr, e.size)
		s.head++
		if s.head == len(s.e) {
			s.head = 0
		}
		s.size--
	}
}

// dropYoungerThan removes all stores with seq >= cutoff (flush).
func (s *storeQueue) dropYoungerThan(cutoff int64) {
	for s.size > 0 {
		tail := s.head + s.size - 1
		if tail >= len(s.e) {
			tail -= len(s.e)
		}
		if s.e[tail].seq < cutoff {
			return
		}
		s.e[tail].valid = false
		s.bloomRemove(s.e[tail].addr, s.e[tail].size)
		s.size--
	}
}

func (s *storeQueue) clearUncommitted() {
	s.dropYoungerThan(-1 << 62)
}

// rebuildBloom recomputes the filter from the live entries (snapshot
// restore replaces the ring contents wholesale).
func (s *storeQueue) rebuildBloom() {
	s.bloomSet = 0
	s.bloomCnt = [64]uint16{}
	idx := s.head
	for i := 0; i < s.size; i++ {
		if s.e[idx].valid {
			s.bloomAdd(s.e[idx].addr, s.e[idx].size)
		}
		idx++
		if idx == len(s.e) {
			idx = 0
		}
	}
}

// --- completion events --------------------------------------------------

// completion schedules a µop's execution finish.
type completion struct {
	cycle int64
	gen   uint32
	slot  int32
	kind  recKind
}

// eventQueue schedules completions. Nearly every completion is short
// (ALU 1 cycle, cache hits up to ~42 cycles), so near events go into a
// 64-slot calendar ring — O(1) schedule and pop, no heap churn — and only
// far events (DRAM-latency fills) use a hand-rolled min-heap. Same-cycle
// events carry no ordering contract (completion effects within a cycle
// are commutative; the differential and golden tests pin this).
//
// Slot aliasing is safe because events are always drained at their exact
// cycle: a slot can only hold one cycle's events at a time (a second
// cycle mapping to the same slot would be ≥ 64 cycles out, which is far).
type eventQueue struct {
	near    [eventRing][]completion
	nearCnt int
	far     eventHeap
}

const eventRing = 64

// schedule files a completion due at c.cycle, seen from cycle now.
func (q *eventQueue) schedule(now int64, c completion) {
	if c.cycle-now < eventRing {
		q.near[c.cycle&(eventRing-1)] = append(q.near[c.cycle&(eventRing-1)], c)
		q.nearCnt++
		return
	}
	q.far.push(c)
}

// popDue removes one event due at now, if any.
func (q *eventQueue) popDue(now int64) (completion, bool) {
	if q.nearCnt > 0 {
		slot := &q.near[now&(eventRing-1)]
		if n := len(*slot); n > 0 {
			c := (*slot)[n-1]
			*slot = (*slot)[:n-1]
			q.nearCnt--
			return c, true
		}
	}
	if len(q.far) > 0 && q.far[0].cycle <= now {
		return q.far.pop(), true
	}
	return completion{}, false
}

// nextAt returns the cycle of the earliest pending event at or after now,
// or ok=false when the queue is empty.
func (q *eventQueue) nextAt(now int64) (int64, bool) {
	best := int64(0)
	ok := false
	if q.nearCnt > 0 {
		for d := int64(0); d < eventRing; d++ {
			slot := q.near[(now+d)&(eventRing-1)]
			if len(slot) > 0 {
				best, ok = slot[0].cycle, true
				break
			}
		}
	}
	if len(q.far) > 0 && (!ok || q.far[0].cycle < best) {
		best, ok = q.far[0].cycle, true
	}
	return best, ok
}

func (q *eventQueue) len() int { return q.nearCnt + len(q.far) }

// eventHeap is a hand-rolled min-heap of completions ordered by cycle
// (no container/heap: interface boxing would allocate per event).
type eventHeap []completion

// push adds a completion (sift-up).
func (h *eventHeap) push(c completion) {
	*h = append(*h, c)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s[parent].cycle <= s[i].cycle {
			break
		}
		s[parent], s[i] = s[i], s[parent]
		i = parent
	}
}

// pop removes the minimum (sift-down).
func (h *eventHeap) pop() completion {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && s[l].cycle < s[min].cycle {
			min = l
		}
		if r < n && s[r].cycle < s[min].cycle {
			min = r
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return top
}

// --- functional units -----------------------------------------------------

// Functional-unit pool indices (classPool maps classes onto them).
const (
	puALU = iota
	puFPU
	puLoad
	puStore
	puBranch
	numPools
)

// classPool maps every µop class to its issue-port pool, replacing the
// per-issue class switch with one table load.
var classPool = [uarch.NumClasses]uint8{
	uarch.ClassNop:    puALU,
	uarch.ClassIntAlu: puALU,
	uarch.ClassIntMul: puALU,
	uarch.ClassIntDiv: puALU,
	uarch.ClassFPAdd:  puFPU,
	uarch.ClassFPMul:  puFPU,
	uarch.ClassFPDiv:  puFPU,
	uarch.ClassLoad:   puLoad,
	uarch.ClassStore:  puStore,
	uarch.ClassBranch: puBranch,
	uarch.ClassJump:   puBranch,
	uarch.ClassCall:   puBranch,
	uarch.ClassReturn: puBranch,
}

// classLatency caches Class.Latency as a table (the method is a switch).
var classLatency = func() (t [uarch.NumClasses]int64) {
	for c := uarch.Class(0); c < uarch.NumClasses; c++ {
		t[c] = int64(c.Latency())
	}
	return
}()

// fuPools models per-cycle issue capacity per unit pool, plus unpipelined
// divide units.
type fuPools struct {
	caps                         [numPools]int32
	use                          [numPools]int32
	idivBusyUntil, fdivBusyUntil int64
}

func newFU(cfg *Config) *fuPools {
	f := &fuPools{}
	f.caps[puALU] = int32(cfg.IntALU)
	f.caps[puFPU] = int32(cfg.FPU)
	f.caps[puLoad] = int32(cfg.LoadPorts)
	f.caps[puStore] = int32(cfg.StorePorts)
	f.caps[puBranch] = int32(cfg.BranchUnits)
	return f
}

// newCycle resets the per-cycle counters.
func (f *fuPools) newCycle() { f.use = [numPools]int32{} }

// nextDivFree returns the earliest cycle strictly after now at which an
// unpipelined divide unit frees up (ok=false when both are already free).
// A ready divide µop blocked on a busy unit retries identically until
// then.
func (f *fuPools) nextDivFree(now int64) (int64, bool) {
	var best int64
	ok := false
	if f.idivBusyUntil > now {
		best, ok = f.idivBusyUntil, true
	}
	if f.fdivBusyUntil > now && (!ok || f.fdivBusyUntil < best) {
		best, ok = f.fdivBusyUntil, true
	}
	return best, ok
}

// tryIssue consumes capacity for class c at cycle now; reports acceptance.
func (f *fuPools) tryIssue(c uarch.Class, now int64) bool {
	if int(c) >= len(classPool) {
		return false
	}
	p := classPool[c]
	if f.use[p] >= f.caps[p] {
		return false
	}
	switch c {
	case uarch.ClassIntDiv:
		if f.idivBusyUntil > now {
			return false
		}
		f.idivBusyUntil = now + classLatency[uarch.ClassIntDiv]
	case uarch.ClassFPDiv:
		if f.fdivBusyUntil > now {
			return false
		}
		f.fdivBusyUntil = now + classLatency[uarch.ClassFPDiv]
	}
	f.use[p]++
	return true
}
