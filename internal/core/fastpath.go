package core

// The fast-runahead fidelity tier (Config.Fidelity =
// FidelityFastRunahead): instead of executing every runahead µop through
// fetch/rename/dispatch/issue, a chain-cache-hit episode is emulated in
// one step — the cached entry predicts the episode's prefetch set, the
// whole set is injected into the real memory hierarchy at entry, and the
// cycle skipper fast-forwards the quiesced machine to the episode exit.
//
// The cache learns from exact episodes: a stalling-load PC that misses
// the chain cache runs its episode exactly while the prefetch addresses
// it issues are recorded (line-deduped), and the set is inserted as
// stall-relative deltas at exit. Every chainVerifyEvery-th hit also runs
// exactly, scoring the entry's prediction against the episode's real set
// (Jaccard overlap at line granularity) and relearning the entry — the
// drift bound behind the fidelity harness's overlap numbers.
//
// The committed architectural stream is identical in both tiers by
// construction: commit is blocked during emulated episodes (inRunahead
// without pseudoRetire), no transient µops exist, and RA/RA-buffer
// emulated episodes end with the same flush-and-refetch exit as exact
// ones. What the tier approximates is timing — which prefetches an
// episode issues, and the pipeline activity statistics of the episode
// itself — bounded by the differential harness in fidelity_test.go.

import "repro/internal/runahead"

// chainVerifyEvery makes every N-th chain-cache hit a verification
// episode: run exactly, score the prediction, relearn the entry.
const chainVerifyEvery = 32

// fastEnter consults the chain cache for the runahead entry decision in
// the fast tier. It returns true when the episode was entered as a
// coarse emulation (the caller must not run the exact entry sequence);
// false means the episode must run exactly, with learning armed.
func (c *Core) fastEnter(hr *uopRec) bool {
	e := c.chainCache.Lookup(hr.pc)
	if e == nil {
		c.beginLearning(hr, nil)
		return false
	}
	if e.ExactOnly() {
		// Demoted entry: its predictions kept failing verification, so
		// every use runs the episode exactly. Only the periodic
		// verification hits pay for learning — scoring and relearning on
		// every use would make a demoted PC strictly more expensive than
		// the exact tier, and unpredictable PCs (data-dependent prefetch
		// sets) stay demoted indefinitely.
		if e.Uses()%chainVerifyEvery == 0 {
			c.beginLearning(hr, e)
		}
		return false
	}
	if e.Uses() <= runahead.ChainDemoteStrikes || e.Uses()%chainVerifyEvery == 0 {
		// Run this hit exactly and score the entry: either it is fresh
		// (probation — a new entry must survive its first
		// ChainDemoteStrikes verifications before it may emulate at all,
		// so a PC with unpredictable prefetch sets demotes without ever
		// having poisoned the caches) or this is the periodic
		// verification hit that bounds drift on trusted entries.
		c.beginLearning(hr, e)
		return false
	}
	c.enterEmulated(hr, e)
	return true
}

// beginLearning arms prefetch-set recording for the exact episode about
// to start. e is non-nil for a verification episode, whose predicted set
// is materialized for the exit-time overlap score.
func (c *Core) beginLearning(hr *uopRec, e *runahead.ChainEntry) {
	c.epLearning = true
	c.epVerify = e != nil
	c.epStallAddr = hr.addr
	c.epAddrs = c.epAddrs[:0]
	c.epPredicted = c.epPredicted[:0]
	if e != nil {
		for _, d := range e.Deltas() {
			c.epPredicted = append(c.epPredicted, hr.addr+uint64(d))
		}
	}
	// The entry's chain metadata comes from the same backward dataflow
	// walk the runahead buffer performs (RA-buffer repeats it in
	// initReplay; learning episodes are rare enough in steady state that
	// the double walk is noise).
	c.chainWindow = c.chainWindow[:0]
	idx := c.rob.head
	for i := 0; i < c.rob.size; i++ {
		c.chainWindow = append(c.chainWindow, *c.stream.At(c.rob.rec[idx].seq))
		idx++
		if idx == len(c.rob.meta) {
			idx = 0
		}
	}
	chain, _ := c.chainX.Extract(c.chainWindow, hr.pc, c.cfg.ChainMaxLen)
	c.epChainLen = len(chain)
	c.epMemDep = runahead.ChainHasLeadingDependence(chain)
}

// recordEpisodeAddr records one issued runahead prefetch address during a
// learning episode, deduplicating by cache line and truncating at the
// chain cache's per-entry capacity.
func (c *Core) recordEpisodeAddr(addr uint64) {
	if len(c.epAddrs) >= runahead.ChainCacheDeltaCap {
		return
	}
	line := addr >> 6
	for _, a := range c.epAddrs {
		if a>>6 == line {
			return
		}
	}
	c.epAddrs = append(c.epAddrs, addr)
}

// finishLearning closes a learning episode at exit: the verification
// overlap is scored, and the recorded set is (re)inserted as
// stall-relative deltas.
func (c *Core) finishLearning() {
	// Only stall-relative deltas inside ChainDeltaWindow are learnable:
	// they follow the stalling load's own access stream and translate to
	// future stall addresses. Out-of-window prefetches belong to other
	// streams at other phases — replaying their absolute positions later
	// would be pollution, so the model neither learns nor predicts them.
	var deltas [runahead.ChainCacheDeltaCap]int64
	nd := 0
	for _, a := range c.epAddrs {
		d := int64(a - c.epStallAddr)
		if d > runahead.ChainDeltaWindow || d < -runahead.ChainDeltaWindow {
			continue
		}
		deltas[nd] = d
		nd++
	}
	if c.epVerify {
		// Score the prediction against the learnable part of the actual
		// set — the part the delta model even attempts to cover. The
		// coverage lost to out-of-window streams is bounded end to end by
		// the fidelity harness's exact-vs-fast IPC differential instead.
		c.epActual = c.epActual[:0]
		for _, a := range c.epAddrs {
			d := int64(a - c.epStallAddr)
			if d > runahead.ChainDeltaWindow || d < -runahead.ChainDeltaWindow {
				continue
			}
			c.epActual = append(c.epActual, a)
		}
		j := lineJaccard(c.epPredicted, c.epActual)
		c.chainCache.ObserveOverlap(j)
		if e := c.chainCache.Peek(c.stallPC); e != nil {
			e.ScoreVerify(j)
		}
	}
	c.chainCache.Insert(c.stallPC, deltas[:nd], c.epChainLen, c.epMemDep)
	c.epLearning = false
	c.epVerify = false
}

// enterEmulated starts a coarse emulated episode from a chain-cache
// entry: full episode bookkeeping (so Stats/telemetry see a normal
// episode), the minimum mode-specific entry state the exit needs, and
// the predicted prefetch set injected into the hierarchy in one step.
func (c *Core) enterEmulated(hr *uopRec, e *runahead.ChainEntry) {
	c.progressed = true
	c.inRunahead = true
	c.epEmulated = true
	c.entryCycle = c.now
	c.exitCycle = hr.readyAt
	c.stallSeq = hr.seq
	c.stallPC = hr.pc
	c.stallDstP = hr.out.DstP
	c.raDiverged = false
	c.stats.Entries++
	c.stats.EmulatedEpisodes++

	if c.tel != nil {
		c.tel.RunaheadEnter(c.now, hr.pc, hr.seq, c.cfg.Mode.String(), hr.readyAt-c.now)
		c.tel.EmulatedEpisode(c.now, hr.pc, len(e.Deltas()))
		c.telDispatched = c.stats.Dispatched
		c.telPrefetches = c.stats.Prefetches
		c.telINV = c.stats.RunaheadINV
	}

	// E7 free-resource snapshots stay comparable across tiers.
	intFree, fpFree := c.ren.FreeCounts()
	c.stats.FreeIQAtEntry.Observe(float64(c.iq.freeSlots()) / float64(c.cfg.IQSize))
	c.stats.FreeIntRegAtEntry.Observe(float64(intFree) / float64(c.cfg.Rename.IntPRF))
	c.stats.FreeFPRegAtEntry.Observe(float64(fpFree) / float64(c.cfg.Rename.FPPRF))

	switch c.cfg.Mode {
	case ModeRA, ModeRABuffer:
		// An exact episode discards everything it executed when it exits:
		// flush, restore the committed RAT, refetch from the stalling
		// load. The emulation performs that flush at entry instead — the
		// flushed window µops' prefetch side effects are exactly what the
		// injected set below replays, and loads that already issued have
		// fire-and-forget fills in flight that land regardless — and
		// freezes the front-end, so the whole episode quiesces into one
		// cycle-skipper jump. Freeze (not Rewind): entry happens from
		// inside the dispatch loop, which still retires what it consumed
		// from the fetch queue this cycle — the queue must stay intact
		// until the exit-time Rewind discards it, as in the exact tier.
		c.ren.CheckpointCommittedInto(&c.cpFullBuf)
		c.cpFull = &c.cpFullBuf
		c.rob.flush()
		c.iq.clear()
		c.pre.flush()
		c.sq.dropYoungerThan(c.stallSeq)
		c.lqNorm, c.lqPre = 0, 0
		c.ren.RestoreFull(c.cpFull)
		c.fetch.Freeze()
	case ModePRE, ModePREEMQ:
		// No checkpoint, no poison, no transient µops: the window is
		// intact and commit resumes at exit, as in exact PRE. Only the
		// SST insert is kept, so SST contents track the exact tier's.
		c.sst.Insert(c.stallPC)
	}

	// The episode's whole effect: its predicted prefetch set, paced
	// across the episode span the way the exact tier's issue stream
	// would be. MSHR-exhausted predictions drop, matching runahead's
	// drop-don't-retry semantics.
	c.epInject = c.epInject[:0]
	for _, d := range e.Deltas() {
		c.epInject = append(c.epInject, hr.addr+uint64(d))
	}
	pace := int64(1)
	if n := int64(len(c.epInject)); n > 0 {
		if pace = (c.exitCycle - c.now) / (n + 1); pace < 1 {
			pace = 1
		} else if pace > 16 {
			pace = 16
		}
	}
	n := c.hier.InjectPrefetchSet(c.epInject, c.now, pace, c.injectFn)
	c.stats.Prefetches += int64(n)
	c.stats.EmulatedPrefetches += int64(n)
}

// exitEmulated ends a coarse emulated episode: the stalling load's data
// arrived (the Step exit check fired at its ready cycle).
func (c *Core) exitEmulated() {
	c.iqDirty = true
	c.stats.Intervals.Observe(c.now - c.entryCycle)
	if c.tel != nil {
		c.tel.RunaheadExit(c.now,
			c.stats.Dispatched-c.telDispatched,
			c.stats.Prefetches-c.telPrefetches,
			c.stats.RunaheadINV-c.telINV)
	}
	if c.cfg.Mode == ModeRA || c.cfg.Mode == ModeRABuffer {
		// The back-end flush already happened at entry; what remains of
		// the exact exit is the front-end restart and the refill-penalty
		// measurement — the fast tier preserves the flush/refill character
		// that separates RA from PRE. The Rewind thaws fetch at now+1,
		// exactly when an exact exit's would.
		c.fetch.Rewind(c.stallSeq, c.now+1)
		c.refillFrom = c.now
		c.refillDispatched = 0
		c.measuringRefill = true
	}
	// PRE/PRE+EMQ: nothing transient exists; the intact window's commit
	// resumes when the stalling load's completion lands this cycle.
	c.inRunahead = false
	c.epEmulated = false
	c.lastProgress = c.now
}

// lineJaccard returns the Jaccard overlap of two address sets at cache
// line granularity (1.0 when both are empty: an entry that predicted "no
// prefetches" for an episode that issued none is exactly right).
func lineJaccard(a, b []uint64) float64 {
	var la, lb [runahead.ChainCacheDeltaCap]uint64
	na := dedupLines(a, &la)
	nb := dedupLines(b, &lb)
	if na == 0 && nb == 0 {
		return 1
	}
	inter := 0
	for _, x := range la[:na] {
		for _, y := range lb[:nb] {
			if x == y {
				inter++
				break
			}
		}
	}
	return float64(inter) / float64(na+nb-inter)
}

// dedupLines writes the distinct cache-line addresses of addrs into out,
// returning how many were written (truncating at capacity).
func dedupLines(addrs []uint64, out *[runahead.ChainCacheDeltaCap]uint64) int {
	n := 0
outer:
	for _, a := range addrs {
		l := a >> 6
		for _, x := range out[:n] {
			if x == l {
				continue outer
			}
		}
		if n == len(out) {
			break
		}
		out[n] = l
		n++
	}
	return n
}
