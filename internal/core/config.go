// Package core implements the cycle-stepped out-of-order core model and
// the four runahead mechanisms the paper evaluates on top of it:
//
//   - ModeOoO:      the Table 1 baseline, no runahead.
//   - ModeRA:       traditional runahead (Mutlu et al.) with the
//     efficiency optimizations (short-interval filter): on a
//     full-window stall the pipeline keeps executing and
//     pseudo-retiring µops; at exit everything is flushed and
//     re-fetched from the stalling load.
//   - ModeRABuffer: filtered runahead (Hashemi et al.): a backward
//     dataflow walk extracts the stalling dependence chain,
//     which replays from a 32-µop buffer while the front-end
//     is power-gated; same flush/refill exit as ModeRA.
//   - ModePRE:      precise runahead execution (this paper): the ROB is
//     neither discarded nor flushed; the front-end keeps
//     running at 8 µops/cycle; only µops whose PCs hit the
//     SST execute, on free physical registers reclaimed
//     in-order by the PRDQ; at exit the RAT checkpoint is
//     restored and commit resumes immediately.
//   - ModePREEMQ:   PRE plus the Extended Micro-op Queue: all µops decoded
//     during runahead are buffered and re-dispatched from the
//     EMQ at exit instead of being re-fetched; runahead depth
//     is bounded by the EMQ capacity.
package core

import (
	"fmt"

	"repro/internal/frontend"
	"repro/internal/mem"
	"repro/internal/prefetch"
	"repro/internal/rename"
)

// Mode selects the runahead mechanism.
type Mode uint8

// Runahead mechanisms (see package comment).
const (
	ModeOoO Mode = iota
	ModeRA
	ModeRABuffer
	ModePRE
	ModePREEMQ
	numModes
)

var modeNames = [numModes]string{"OoO", "RA", "RA-buffer", "PRE", "PRE+EMQ"}

// String returns the paper's name for the mechanism.
func (m Mode) String() string {
	if int(m) < len(modeNames) {
		return modeNames[m]
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// ParseMode resolves a mechanism name as used in reports and CLI flags.
func ParseMode(s string) (Mode, error) {
	for m := ModeOoO; m < numModes; m++ {
		if modeNames[m] == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("core: unknown mode %q (want OoO, RA, RA-buffer, PRE, PRE+EMQ)", s)
}

// Modes lists all mechanisms in evaluation order.
func Modes() []Mode {
	return []Mode{ModeOoO, ModeRA, ModeRABuffer, ModePRE, ModePREEMQ}
}

// Fidelity selects the simulation fidelity tier. The default, exact,
// executes every runahead µop through the pipeline and is the tier all
// byte-identical contracts are pinned against. The fast-runahead tier
// trades fidelity for wall-clock: runahead episodes whose stalling-load
// PC hits the chain cache are emulated coarsely (the episode's predicted
// prefetch set is issued into the hierarchy in one step and the core
// fast-forwards to the episode exit) instead of being executed µop by
// µop. Fast-tier error is bounded by the differential fidelity harness;
// the committed architectural µop stream is identical in both tiers.
type Fidelity uint8

// Fidelity tiers.
const (
	FidelityExact Fidelity = iota
	FidelityFastRunahead
	numFidelities
)

var fidelityNames = [numFidelities]string{"exact", "fast-runahead"}

// String returns the tier's CLI/report name.
func (f Fidelity) String() string {
	if int(f) < len(fidelityNames) {
		return fidelityNames[f]
	}
	return fmt.Sprintf("fidelity(%d)", uint8(f))
}

// ParseFidelity resolves a fidelity tier name as used in CLI flags.
func ParseFidelity(s string) (Fidelity, error) {
	for f := FidelityExact; f < numFidelities; f++ {
		if fidelityNames[f] == s {
			return f, nil
		}
	}
	return 0, fmt.Errorf("core: unknown fidelity %q (want exact, fast-runahead)", s)
}

// Config is the full core configuration (Table 1 defaults via Default).
type Config struct {
	// Mode selects the runahead mechanism.
	Mode Mode

	// Width is the rename/dispatch/commit width (Table 1: 4).
	Width int
	// RunaheadWidth is the decode bandwidth into the SST filter during PRE
	// runahead (Methodology: up to 8 µops/cycle).
	RunaheadWidth int
	// ROBSize, IQSize, LQSize, SQSize size the window structures
	// (Table 1: 192, 92, 64, 64).
	ROBSize, IQSize, LQSize, SQSize int

	// IntALU, FPU, LoadPorts, StorePorts, BranchUnits are per-cycle issue
	// capacities per functional-unit pool.
	IntALU, FPU, LoadPorts, StorePorts, BranchUnits int

	// Rename configures the physical register files.
	Rename rename.Config
	// Fetch configures the front-end pipe.
	Fetch frontend.FetchConfig
	// Predictor configures branch prediction.
	Predictor frontend.PredictorConfig
	// Mem configures the cache hierarchy and DRAM.
	Mem mem.Config

	// SSTSize, PRDQSize, EMQSize size the paper's structures
	// (Table 1: 256, 192, 768).
	SSTSize, PRDQSize, EMQSize int
	// ChainMaxLen bounds the runahead buffer's extracted chain (32 µops,
	// as in the runahead-buffer paper).
	ChainMaxLen int
	// MinRunaheadCycles is the RA/RA-buffer short-interval filter: do not
	// enter runahead if the stalling load is predicted to return within
	// this many cycles (Mutlu's efficiency optimization: entering costs a
	// full pipeline discard and a ~56-cycle refill, so short intervals
	// are net losses; PRE enters unconditionally — one of its headline
	// advantages).
	MinRunaheadCycles int64
	// PREMaxDivergence stops PRE's runahead scan after this many
	// unresolved (non-executed) mispredicted branches in one interval,
	// modelling wrong-path divergence of the non-resolving front-end.
	PREMaxDivergence int
	// ReplayLookahead bounds how far (in µops) the runahead-buffer replay
	// engine searches the instruction stream for the next dynamic instance
	// of a chain µop.
	ReplayLookahead int64
	// FreeExit (ablation E6) makes ModeRA exit runahead by restoring the
	// pipeline snapshot taken at entry instead of flushing — the paper's
	// "what if the window were not discarded" estimate.
	FreeExit bool

	// Fidelity selects the simulation fidelity tier (exact by default).
	// FidelityFastRunahead emulates chain-cache-hit runahead episodes
	// coarsely instead of executing them µop by µop; it changes simulated
	// timing (bounded by the fidelity harness), never the committed
	// architectural stream. Ignored for ModeOoO (no runahead episodes)
	// and under FreeExit (the snapshot-restore ablation depends on the
	// exact in-episode pipeline state).
	Fidelity Fidelity
	// ChainCacheSize is the fast-runahead tier's chain-cache capacity in
	// entries (stalling-load PCs with learned prefetch-delta sets).
	ChainCacheSize int
}

// Default returns the paper's Table 1 configuration for the given mode.
func Default(mode Mode) Config {
	return Config{
		Mode:              mode,
		Width:             4,
		RunaheadWidth:     8,
		ROBSize:           192,
		IQSize:            92,
		LQSize:            64,
		SQSize:            64,
		IntALU:            3,
		FPU:               2,
		LoadPorts:         2,
		StorePorts:        1,
		BranchUnits:       1,
		Rename:            rename.DefaultConfig(),
		Fetch:             frontend.DefaultFetchConfig(),
		Predictor:         frontend.DefaultPredictorConfig(),
		Mem:               mem.Default(),
		SSTSize:           256,
		PRDQSize:          192,
		EMQSize:           768,
		ChainMaxLen:       32,
		MinRunaheadCycles: 64,
		PREMaxDivergence:  4,
		ReplayLookahead:   4096,
		ChainCacheSize:    64,
	}
}

// ApplyPrefetch installs a hardware-prefetcher variant into the memory
// configuration — the hook every PF-augmented simulation mode uses. Any
// runahead mode composes with any variant: "OoO + stride" and "PRE +
// adaptive" are both just Default(mode) plus ApplyPrefetch. The variant
// carries all three per-level engines plus the PRE-aware filter switch.
func (c *Config) ApplyPrefetch(v prefetch.Variant) {
	c.Mem.L1IPrefetch = v.L1I
	c.Mem.L1DPrefetch = v.L1D
	c.Mem.L2Prefetch = v.L2
	c.Mem.RunaheadFilter = v.Filter
}

// Validate checks the configuration for consistency.
func (c *Config) Validate() error {
	if c.Mode >= numModes {
		return fmt.Errorf("core: invalid mode %d", c.Mode)
	}
	if c.Width <= 0 || c.RunaheadWidth < c.Width {
		return fmt.Errorf("core: widths must satisfy 0 < Width <= RunaheadWidth")
	}
	if c.ROBSize <= 0 || c.IQSize <= 0 || c.LQSize <= 0 || c.SQSize <= 0 {
		return fmt.Errorf("core: non-positive window structure size")
	}
	if c.IntALU <= 0 || c.FPU <= 0 || c.LoadPorts <= 0 || c.StorePorts <= 0 || c.BranchUnits <= 0 {
		return fmt.Errorf("core: non-positive functional unit count")
	}
	if c.SSTSize <= 0 || c.PRDQSize <= 0 || c.EMQSize <= 0 || c.ChainMaxLen <= 0 {
		return fmt.Errorf("core: non-positive runahead structure size")
	}
	if c.MinRunaheadCycles < 0 || c.PREMaxDivergence < 0 || c.ReplayLookahead <= 0 {
		return fmt.Errorf("core: negative runahead parameter")
	}
	if c.FreeExit && c.Mode != ModeRA {
		return fmt.Errorf("core: FreeExit is an ablation of ModeRA only")
	}
	if c.Fidelity >= numFidelities {
		return fmt.Errorf("core: invalid fidelity %d", c.Fidelity)
	}
	if c.Fidelity == FidelityFastRunahead && c.ChainCacheSize <= 0 {
		return fmt.Errorf("core: fast-runahead fidelity needs a positive ChainCacheSize")
	}
	if err := c.Rename.Validate(); err != nil {
		return err
	}
	return c.Mem.Validate()
}
