package core

import (
	"repro/internal/cache"
	"repro/internal/frontend"
	"repro/internal/runahead"
)

// This file implements the second half of event-driven cycle skipping:
// fast-forwarding steady *retry* spans.
//
// skipAhead (core.go) handles provably inert cycles. But the dominant
// stall pattern on memory-bound workloads is not inert: a ready load (or
// store drain, or instruction fetch) retries a structurally blocked
// resource — usually exhausted MSHRs — every cycle, and each retry counts
// real statistics (cache accesses, misses, MSHR stalls). Those cycles
// cannot be elided, but they can be amortized: between wake-up events the
// machine's behavior is a constant function, so every retry cycle
// produces the *same* counter deltas. Run proves this empirically (two
// consecutive no-progress cycles with identical deltas and no
// state-changing activity) and then applies the per-cycle delta in bulk
// up to the next wake-up: the earliest completion event, runahead exit,
// replay start, fetch thaw / line arrival / decode readiness, occupied-
// MSHR release at any cache level, or divide-unit release. DRAM bank and
// bus times need no separate probe — the resource-reservation timing
// model bakes them into the fill-completion times the events and MSHRs
// already carry.
//
// The result is byte-identical to stepping every cycle (the differential
// tests pin this), at a small fraction of the host cost.

// cacheRetryStats is the per-level slice of a retry cycle's footprint.
type cacheRetryStats struct {
	accesses, hits, misses, mshrStalls int64
}

func cacheRetryOf(s cache.Stats) cacheRetryStats {
	return cacheRetryStats{accesses: s.Accesses, hits: s.Hits, misses: s.Misses, mshrStalls: s.MSHRStalls}
}

// retrySnap captures, as absolute values, every counter a steady retry
// cycle can legally touch — plus guard counters that must not move at all
// (any movement there means the cycle did something non-replicable and
// the span must not be amortized).
type retrySnap struct {
	// Bulk-replicable counters.
	cycles, runaheadCycles, fullWindowStall, robFullEvents int64
	freeze, icache                                         int64
	sstLookups, sstHits                                    int64
	l1i, l1d, l2, l3                                       cacheRetryStats

	// Guard counters: a nonzero delta vetoes amortization. Most imply
	// c.progressed structurally and just double-check the enumeration of
	// retry-path side effects; pfObserves is a real veto — the L2
	// prefetcher trains before the L2/L3 MSHR rejection, so a blocked
	// retry cycle can still mutate a prediction table and must be
	// re-executed, never replayed as a bulk delta.
	decoded, dispatched, renamed, committed, completed, pseudoRetired int64
	fetched, sstInserts, dramReads, dramWrites, pfObserves            int64
}

// captureRetry snapshots the retry-relevant counters.
func (c *Core) captureRetry(s *retrySnap) {
	st := c.stats
	s.cycles = st.Cycles
	s.runaheadCycles = st.RunaheadCycles
	s.fullWindowStall = st.FullWindowStallCycles
	s.robFullEvents = st.RobFullEvents
	s.decoded = st.Decoded
	s.dispatched = st.Dispatched
	s.renamed = st.Renamed
	s.committed = st.Committed
	s.completed = st.Completed
	s.pseudoRetired = st.PseudoRetired

	fe := c.fetch.Stats()
	s.freeze = fe.FreezeCycles
	s.icache = fe.ICacheStallCy
	s.fetched = fe.FetchedUops

	ss := c.sst.Stats()
	s.sstLookups = ss.Lookups
	s.sstHits = ss.Hits
	s.sstInserts = ss.Inserts

	s.l1i = cacheRetryOf(c.hier.L1I().Stats())
	s.l1d = cacheRetryOf(c.hier.L1D().Stats())
	s.l2 = cacheRetryOf(c.hier.L2().Stats())
	s.l3 = cacheRetryOf(c.hier.L3().Stats())

	dr := c.hier.DRAM().Stats()
	s.dramReads = dr.Reads
	s.dramWrites = dr.Writes
	s.pfObserves = c.hier.PFObserves()
}

// sub returns the componentwise difference s - o.
func (s *retrySnap) sub(o *retrySnap) retrySnap {
	d := retrySnap{
		cycles:          s.cycles - o.cycles,
		runaheadCycles:  s.runaheadCycles - o.runaheadCycles,
		fullWindowStall: s.fullWindowStall - o.fullWindowStall,
		robFullEvents:   s.robFullEvents - o.robFullEvents,
		freeze:          s.freeze - o.freeze,
		icache:          s.icache - o.icache,
		sstLookups:      s.sstLookups - o.sstLookups,
		sstHits:         s.sstHits - o.sstHits,
		decoded:         s.decoded - o.decoded,
		dispatched:      s.dispatched - o.dispatched,
		renamed:         s.renamed - o.renamed,
		committed:       s.committed - o.committed,
		completed:       s.completed - o.completed,
		pseudoRetired:   s.pseudoRetired - o.pseudoRetired,
		fetched:         s.fetched - o.fetched,
		sstInserts:      s.sstInserts - o.sstInserts,
		dramReads:       s.dramReads - o.dramReads,
		dramWrites:      s.dramWrites - o.dramWrites,
		pfObserves:      s.pfObserves - o.pfObserves,
	}
	subC := func(a, b cacheRetryStats) cacheRetryStats {
		return cacheRetryStats{
			accesses:   a.accesses - b.accesses,
			hits:       a.hits - b.hits,
			misses:     a.misses - b.misses,
			mshrStalls: a.mshrStalls - b.mshrStalls,
		}
	}
	d.l1i = subC(s.l1i, o.l1i)
	d.l1d = subC(s.l1d, o.l1d)
	d.l2 = subC(s.l2, o.l2)
	d.l3 = subC(s.l3, o.l3)
	return d
}

// replicable reports whether the delta describes a cycle safe to amortize:
// exactly one cycle elapsed, no guard counter moved, and no cache hit was
// recorded (a hit on any retry path implies a success, i.e. progress).
func (d *retrySnap) replicable() bool {
	return d.cycles == 1 &&
		d.decoded == 0 && d.dispatched == 0 && d.renamed == 0 &&
		d.committed == 0 && d.completed == 0 && d.pseudoRetired == 0 &&
		d.fetched == 0 && d.sstInserts == 0 &&
		d.dramReads == 0 && d.dramWrites == 0 && d.pfObserves == 0 &&
		d.l1i.hits == 0 && d.l1d.hits == 0 && d.l2.hits == 0 && d.l3.hits == 0
}

// applyRetryDelta accounts n repetitions of the per-cycle delta d.
func (c *Core) applyRetryDelta(d *retrySnap, n int64) {
	c.stats.Cycles += n * d.cycles
	c.stats.RunaheadCycles += n * d.runaheadCycles
	c.stats.FullWindowStallCycles += n * d.fullWindowStall
	c.stats.RobFullEvents += n * d.robFullEvents
	c.fetch.AddStats(frontend.Stats{FreezeCycles: n * d.freeze, ICacheStallCy: n * d.icache})
	if d.sstLookups != 0 || d.sstHits != 0 {
		c.sst.AddStats(runahead.SSTStats{Lookups: n * d.sstLookups, Hits: n * d.sstHits})
	}
	addC := func(cc *cache.Cache, cs cacheRetryStats) {
		if cs.accesses != 0 || cs.misses != 0 || cs.mshrStalls != 0 {
			cc.AddStats(cache.Stats{
				Accesses:   n * cs.accesses,
				Misses:     n * cs.misses,
				MSHRStalls: n * cs.mshrStalls,
			})
		}
	}
	addC(c.hier.L1I(), d.l1i)
	addC(c.hier.L1D(), d.l1d)
	addC(c.hier.L2(), d.l2)
	addC(c.hier.L3(), d.l3)
}

const horizon = int64(^uint64(0) >> 1)

// wakeBound returns the earliest cycle at or after c.now at which the
// machine's behavior could change for a reason other than a structural
// retry: a completion event, runahead exit, replay start, fetch thaw or
// line arrival, or the decode pipe's head clearing. c.now is the next
// cycle to execute; a bound at or before it simply means "do not skip".
func (c *Core) wakeBound() int64 {
	bound := horizon
	if t, ok := c.events.nextAt(c.now); ok && t < bound {
		bound = t
	}
	if c.inRunahead {
		if c.exitCycle < bound {
			bound = c.exitCycle
		}
		if c.cfg.Mode == ModeRABuffer && !c.replayDead && c.replayStart >= c.now && c.replayStart < bound {
			bound = c.replayStart
		}
	}
	// Evaluated at the cycle just executed (c.now-1) so a thaw or line
	// arrival scheduled for exactly c.now still registers.
	if t, ok := c.fetch.NextWakeAt(c.now - 1); ok && t < bound {
		bound = t
	}
	if t, ok := c.fetch.HeadReadyAt(); ok && t >= c.now && t < bound {
		bound = t
	}
	return bound
}

// skipAhead advances c.now to the next wake-up after a provably inert
// Step, replicating in bulk the per-cycle counters the skipped cycles
// would have incremented: Cycles, RunaheadCycles, the full-window stall
// counters (the idle cycle just executed proves whether the stall path
// counts, and nothing can change mid-span), and the fetch unit's freeze /
// I-cache-wait counters.
//
//sim:hotpath
func (c *Core) skipAhead() {
	bound := c.wakeBound()
	if bound <= c.now || bound == horizon {
		return // nothing to skip, or a wedged machine the watchdog must see
	}
	n := bound - c.now
	c.stats.Cycles += n
	c.stats.SkippedAhead += n
	if c.inRunahead {
		c.stats.RunaheadCycles += n
	}
	if c.stalledFW {
		c.stats.FullWindowStallCycles += n
		c.stats.RobFullEvents += n
	}
	if c.tel != nil {
		c.tel.CycleSkip(c.now, n, "idle")
		if c.stalledFW {
			c.tel.FullWindowStallN(c.now, n)
		}
	}
	c.fetch.SkipIdle(c.now, n)
	c.now = bound
}

// retrySkip fast-forwards a proven steady retry span: it bounds the span
// by every wake-up source (including occupied-MSHR releases and busy
// divide units, which inert skips never need), applies the per-cycle
// delta in bulk, and jumps. It reports whether any cycles were skipped.
func (c *Core) retrySkip(d *retrySnap) bool {
	bound := c.wakeBound()
	if t, ok := c.hier.NextMSHRRelease(c.now - 1); ok && t < bound {
		bound = t
	}
	if t, ok := c.fu.nextDivFree(c.now - 1); ok && t < bound {
		bound = t
	}
	if bound <= c.now || bound == horizon {
		return false
	}
	n := bound - c.now
	c.applyRetryDelta(d, n)
	c.stats.SkippedAhead += n
	if c.tel != nil {
		c.tel.CycleSkip(c.now, n, "retry")
		if d.fullWindowStall > 0 {
			// The proven per-cycle delta stalls every cycle of the span.
			c.tel.FullWindowStallN(c.now, n)
		}
	}
	c.now = bound
	return true
}
