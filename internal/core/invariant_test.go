package core

import (
	"testing"

	"repro/internal/workload"
)

// TestCommitSequenceContinuity is the strongest end-to-end invariant in
// the suite: under EVERY mechanism, architectural commits must be exactly
// the dynamic instruction stream in order — seq 0, 1, 2, ... with no
// skips, duplicates or reordering — no matter how much speculative
// runahead work was executed, flushed, replayed or re-dispatched from the
// EMQ in between.
func TestCommitSequenceContinuity(t *testing.T) {
	for _, name := range []string{"libquantum", "mcf", "lbm", "milc"} {
		for _, mode := range Modes() {
			w, _ := workload.ByName(name)
			c := newCore(t, mode, w.New())
			next := int64(0)
			broken := false
			c.OnCommit = func(seq int64) {
				if seq != next && !broken {
					t.Errorf("%s/%v: committed seq %d, expected %d", name, mode, seq, next)
					broken = true
				}
				next = seq + 1
			}
			c.Run(25_000)
			if broken {
				return
			}
			if next < 25_000 {
				t.Errorf("%s/%v: only %d µops committed", name, mode, next)
			}
		}
	}
}

// TestRunaheadNeverCommits verifies the architectural contract of
// runahead mode: the commit counter only advances in normal mode.
func TestRunaheadNeverCommits(t *testing.T) {
	for _, mode := range []Mode{ModeRA, ModeRABuffer, ModePRE, ModePREEMQ} {
		w, _ := workload.ByName("milc")
		c := newCore(t, mode, w.New())
		c.Run(5_000)
		prevCommitted := c.Stats().Committed
		sawRunahead := false
		wasIn := c.InRunahead()
		for i := 0; i < 300_000; i++ {
			c.Step()
			// Only steps that both began and ended inside runahead are
			// fully runahead cycles (entry/exit cycles legitimately commit
			// in their normal-mode portion).
			if wasIn && c.InRunahead() {
				sawRunahead = true
				if c.Stats().Committed != prevCommitted {
					t.Fatalf("%v: committed %d µops during runahead",
						mode, c.Stats().Committed-prevCommitted)
				}
			}
			prevCommitted = c.Stats().Committed
			wasIn = c.InRunahead()
			if sawRunahead && !wasIn && i > 50_000 {
				break
			}
		}
		if !sawRunahead {
			t.Errorf("%v: no runahead observed on milc", mode)
		}
	}
}

// TestExitRestoresFreeLists verifies PRE's episode-neutrality: every
// runahead episode returns the register free lists to their entry state
// (the paper's wholesale RAT + free-list restore).
func TestExitRestoresFreeLists(t *testing.T) {
	w, _ := workload.ByName("libquantum")
	c := newCore(t, ModePRE, w.New())
	c.Run(5_000)
	checked := 0
	for i := 0; i < 500_000 && checked < 5; i++ {
		// Advance to an entry.
		for j := 0; j < 500_000 && !c.InRunahead(); j++ {
			c.Step()
		}
		if !c.InRunahead() {
			break
		}
		intAtEntry, fpAtEntry := c.ren.FreeCounts()
		// Runahead allocations may already be in flight when we observe
		// the entry state, and the entry cycle's commits freed registers
		// before the checkpoint was taken — so the restored exit state may
		// exceed the observation by at most one commit-width's worth, and
		// must never be BELOW it (that would be a leak into the episode).
		for c.InRunahead() {
			c.Step()
		}
		intAtExit, fpAtExit := c.ren.FreeCounts()
		if intAtExit < intAtEntry || fpAtExit < fpAtEntry {
			t.Fatalf("episode %d: registers leaked: (%d,%d) at entry vs (%d,%d) at exit",
				checked, intAtEntry, fpAtEntry, intAtExit, fpAtExit)
		}
		if intAtExit > intAtEntry+c.cfg.Width || fpAtExit > fpAtEntry+c.cfg.Width {
			t.Fatalf("episode %d: free lists over-restored: (%d,%d) -> (%d,%d)",
				checked, intAtEntry, fpAtEntry, intAtExit, fpAtExit)
		}
		checked++
	}
	if checked == 0 {
		t.Skip("no episodes observed")
	}
}

// TestDivergenceStopsPrefetching verifies the INV-branch divergence rule:
// after an unresolvable mispredict in traditional runahead, no further
// prefetches are issued in that episode.
func TestDivergenceStopsPrefetching(t *testing.T) {
	// omnetpp's data-dependent branches read loaded (INV in runahead)
	// values and mispredict ~5% of the time.
	w, _ := workload.ByName("omnetpp")
	c := newCore(t, ModeRA, w.New())
	c.Run(40_000)
	if c.Stats().DivergenceStops == 0 {
		t.Error("omnetpp RA must hit unresolvable mispredicts")
	}
}

// TestWalkDelaysReplay verifies the runahead buffer pays its backward
// dataflow walk before the first replay µop dispatches.
func TestWalkDelaysReplay(t *testing.T) {
	w, _ := workload.ByName("libquantum")
	c := newCore(t, ModeRABuffer, w.New())
	c.Run(10_000)
	for i := 0; i < 500_000 && !c.InRunahead(); i++ {
		c.Step()
	}
	if !c.InRunahead() {
		t.Skip("no episode observed")
	}
	if c.replayStart <= c.entryCycle {
		t.Errorf("replay starts at %d, entry at %d: walk cost missing",
			c.replayStart, c.entryCycle)
	}
	if c.replayStart-c.entryCycle > int64(c.cfg.ROBSize)+8 {
		t.Errorf("walk cost %d exceeds one ROB scan", c.replayStart-c.entryCycle)
	}
}

// TestEMQDeferredEntry verifies PRE+EMQ does not re-enter runahead while
// the EMQ is still re-dispatching the previous episode.
func TestEMQDeferredEntry(t *testing.T) {
	w, _ := workload.ByName("milc")
	c := newCore(t, ModePREEMQ, w.New())
	c.Run(5_000)
	for i := 0; i < 2_000_000; i++ {
		c.Step()
		if c.InRunahead() && c.emqDraining && c.emqScan == 0 && c.emq.Len() > 0 {
			// Entering while draining is only legal through the scan path;
			// with deferral active this state must not occur at entry.
			// (The emqScan cursor is 0 only right at entry.)
			t.Fatal("entered runahead while the EMQ was draining")
		}
		if c.Stats().Entries > 50 {
			return
		}
	}
}
