package core

import (
	"fmt"

	"repro/internal/frontend"
	"repro/internal/mem"
	"repro/internal/rename"
	"repro/internal/runahead"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/uarch"
)

// Core is one simulated out-of-order core plus its runahead controller.
// Build with New; drive with Run or Step. Not safe for concurrent use.
type Core struct {
	cfg   Config
	stats *Stats

	hier   *mem.Hierarchy
	stream *trace.Stream
	pred   *frontend.Predictor
	fetch  *frontend.FetchUnit
	ren    *rename.Renamer

	rob    *rob
	iq     *issueQueue
	sq     *storeQueue
	pre    *prePool
	events eventQueue
	fu     *fuPools

	lqNorm, lqPre int // load-queue occupancy (normal / PRE transient)

	sst  *runahead.SST
	prdq *runahead.PRDQ
	emq  *runahead.EMQ

	now int64

	// Runahead episode state.
	inRunahead   bool
	pseudoRetire bool // RA / RA-buffer
	entryCycle   int64
	exitCycle    int64
	stallSeq     int64
	stallPC      uint64
	stallDstP    rename.PReg
	cpFull       *rename.Checkpoint // RA / RA-buffer (committed state)
	cpSpec       *rename.Checkpoint // PRE (speculative RAT + free lists)
	lastSkipSeq  int64              // interval-filter skip deduplication

	// PRE episode state.
	preResumeSeq int64 // first µop consumed during runahead (-1 = none)
	preDiverged  int
	preScanStop  bool
	emqDraining  bool
	emqScan      int // scan cursor into a still-draining EMQ at re-entry

	// RA-buffer replay state.
	chain         []uarch.Uop
	replayCursor  int64
	replayPending []int64
	replayIdx     int
	replayDead    bool
	replayStart   int64 // replay begins after the backward walk finishes

	// raDiverged: an unresolvable (INV-source) mispredicted branch sent
	// traditional runahead off-path; further prefetches this episode are
	// suppressed.
	raDiverged bool

	// E6 (FreeExit) snapshot.
	snap *pipeSnapshot

	// Fast-runahead fidelity tier (nil chainCache = exact tier; see
	// Config.Fidelity). epEmulated marks the current episode as a coarse
	// chain-cache emulation; epLearning marks an exact episode recording
	// its prefetch set for insertion at exit; epVerify marks a learning
	// episode that re-checks an existing entry, scoring its predicted set
	// against the episode's real one.
	chainCache  *runahead.ChainCache
	epEmulated  bool
	epLearning  bool
	epVerify    bool
	epStallAddr uint64
	epChainLen  int
	epMemDep    bool
	epAddrs     []uint64          // learning: line-deduped prefetch addresses
	epPredicted []uint64          // verify: the entry's predicted addresses
	epActual    []uint64          // verify: in-window subset of epAddrs
	epInject    []uint64          // emulation: materialized injection batch
	injectFn    func(addr uint64) // pre-bound InjectPrefetchSet callback

	// Refill-penalty measurement (E4): after a flush-exit, count the
	// cycles until a full window's worth of µops has been re-dispatched —
	// the paper's "8 cycles front-end + 48 cycles ROB refill" estimate.
	refillFrom       int64
	refillDispatched int64
	measuringRefill  bool

	// Deadlock watchdog.
	lastProgress int64

	// Cycle-skip bookkeeping (see Run). progressed is set by any stage
	// that mutates machine state in a way later cycles could observe;
	// retryBlocked is set when something is retrying a time-dependent
	// resource (MSHR-full load, busy divider, I-cache MSHR) whose retry
	// attempt is itself a counted event every cycle. A Step that sets
	// neither is provably idle until the next scheduled wake-up, so Run
	// advances time in bulk with exactly the per-cycle accounting the
	// skipped cycles would have performed.
	progressed   bool
	retryBlocked bool
	stalledFW    bool // onFullWindow counted a stall this cycle

	// Issue-queue quiescence: iqDirty is set by anything that could make
	// a waiting µop issueable (or an IQ ref stale) — wake-ups, pushes of
	// ready µops, runahead transitions; iqRetry records that the last
	// scan left a ready-but-blocked µop (port/MSHR/divider), which must
	// re-attempt every cycle. When both are clear the scan provably does
	// nothing and issueStage returns immediately.
	iqDirty bool
	iqRetry bool

	// Wake-up scheduling: waiters[p] lists the in-flight µops waiting on
	// physical register p; completion decrements each waiter's srcWait
	// instead of the issue stage re-polling every source every cycle.
	// Stale entries (squashed µops) are filtered by slot generation.
	waiters [][]wakeRef

	// Pre-bound closures for the per-cycle hot path (building these
	// inline would allocate a funcval every cycle).
	sqDrainFn func(*sqEntry) bool
	renFree   func(rename.PReg)

	// dispatchRun is the reusable per-cycle buffer the decode-pipe head
	// run is copied into (one fetch-queue scan per cycle).
	dispatchRun []frontend.Slot

	// Reusable per-episode buffers (zero-allocation steady state).
	cpFullBuf   rename.Checkpoint
	cpSpecBuf   rename.Checkpoint
	snapBuf     pipeSnapshot
	chainX      runahead.ChainExtractor
	chainWindow []uarch.Uop

	// DisableCycleSkip forces Run to execute every simulated cycle
	// individually instead of skipping provably idle spans — the debug
	// knob behind the skip-vs-no-skip differential tests. Results are
	// byte-identical either way; only wall-clock differs.
	DisableCycleSkip bool

	// OnCommit, when set, is invoked with each architecturally committed
	// µop's sequence number — an instrumentation hook for tests and
	// tracing tools (pseudo-retirement does not trigger it).
	OnCommit func(seq int64)

	// OnPrefetch, when set, is invoked with each runahead prefetch
	// address actually issued into the hierarchy — per-µop issues and
	// emulated-episode injections alike. The fidelity harness uses it to
	// compare exact-vs-fast prefetch sets.
	OnPrefetch func(addr uint64)

	// tel, when attached, receives timeline events (runahead episodes,
	// stall spans, cycle skips). It is a concrete pointer, not an
	// interface, so every hook site is a single nil check on the disabled
	// path — telemetry must never cost the zero-allocation steady state
	// anything, and must never perturb results (it only reads).
	tel *telemetry.Recorder
	// Episode-entry stat baselines for the exit event's deltas; only
	// written when tel is attached.
	telDispatched, telPrefetches, telINV int64
}

// New builds a core in the given mode over a fresh trace stream.
func New(cfg Config, gen trace.Generator) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	stream := trace.NewStream(gen)
	if cfg.Mode == ModeRABuffer {
		// The replay engine's cursor keeps moving forward within an
		// episode, and each prepared iteration scans ReplayLookahead µops
		// past it, all while commit (and hence trace release) is stalled on
		// the blocking load. The live span of the trace ring is therefore
		// several lookahead windows deep on long DRAM stalls. Pre-size the
		// ring generously so the steady state never triggers a grow — the
		// last allocation on the hot path.
		window := 8*int(cfg.ReplayLookahead) + cfg.ROBSize + cfg.Fetch.QueueSize
		stream = trace.NewStreamSized(gen, window)
	}
	hier := mem.New(cfg.Mem)
	pred := frontend.NewPredictor(cfg.Predictor)
	c := &Core{
		cfg:          cfg,
		stats:        NewStats(),
		hier:         hier,
		stream:       stream,
		pred:         pred,
		fetch:        frontend.NewFetchUnit(cfg.Fetch, stream, pred, hier),
		ren:          rename.New(cfg.Rename),
		rob:          newROB(cfg.ROBSize),
		iq:           newIQ(cfg.IQSize),
		sq:           newSQ(cfg.SQSize),
		pre:          newPrePool(cfg.IQSize + cfg.ROBSize),
		fu:           newFU(&cfg),
		sst:          runahead.NewSST(cfg.SSTSize),
		prdq:         runahead.NewPRDQ(cfg.PRDQSize),
		emq:          runahead.NewEMQ(cfg.EMQSize),
		preResumeSeq: -1,
		lastSkipSeq:  -1,
		chainWindow:  make([]uarch.Uop, 0, cfg.ROBSize),
		iqDirty:      true,
	}
	c.dispatchRun = make([]frontend.Slot, cfg.Width)
	// Far (DRAM-latency) completions are bounded by the number of
	// outstanding misses the MSHRs allow; pre-sizing the heap keeps the
	// steady state allocation-free.
	c.events.far = make(eventHeap, 0, 256)
	// Per-preg waiter lists: sized so the deterministic test workloads
	// never outgrow them post-warmup (lists are drained to length 0 on
	// wake-up but keep their capacity, so growth is a high-water effect).
	const waiterCap = 64
	c.waiters = make([][]wakeRef, 1+cfg.Rename.IntPRF+cfg.Rename.FPPRF)
	waiterBacking := make([]wakeRef, len(c.waiters)*waiterCap)
	for i := range c.waiters {
		c.waiters[i] = waiterBacking[i*waiterCap : i*waiterCap : (i+1)*waiterCap]
	}
	for i := range c.events.near {
		c.events.near[i] = make([]completion, 0, 16)
	}
	if cfg.Fidelity == FidelityFastRunahead && cfg.Mode != ModeOoO && !cfg.FreeExit {
		// The fast tier only changes behavior where runahead episodes
		// exist; OoO has none, and the FreeExit ablation depends on exact
		// in-episode pipeline state, so both run exact (and their results
		// stay byte-identical to the exact tier by construction).
		c.chainCache = runahead.NewChainCache(cfg.ChainCacheSize)
		c.epAddrs = make([]uint64, 0, runahead.ChainCacheDeltaCap)
		c.epPredicted = make([]uint64, 0, runahead.ChainCacheDeltaCap)
		c.epActual = make([]uint64, 0, runahead.ChainCacheDeltaCap)
		c.epInject = make([]uint64, 0, runahead.ChainCacheDeltaCap)
		c.injectFn = func(addr uint64) {
			if c.OnPrefetch != nil {
				c.OnPrefetch(addr)
			}
		}
	}
	c.sqDrainFn = func(e *sqEntry) bool {
		_, ok := c.hier.StoreCommit(e.addr, c.now)
		if !ok {
			// The retry attempt itself counts an MSHR stall each cycle.
			c.retryBlocked = true
		}
		return ok
	}
	c.renFree = c.ren.Free
	return c, nil
}

// Stats returns the live stats block.
func (c *Core) Stats() *Stats { return c.stats }

// Hierarchy returns the memory system (for reports).
func (c *Core) Hierarchy() *mem.Hierarchy { return c.hier }

// Predictor returns the branch predictor (for reports).
func (c *Core) Predictor() *frontend.Predictor { return c.pred }

// FetchUnit returns the front end (for reports).
func (c *Core) FetchUnit() *frontend.FetchUnit { return c.fetch }

// Renamer returns the rename stage (for reports).
func (c *Core) Renamer() *rename.Renamer { return c.ren }

// SST returns the stalling slice table (for reports).
func (c *Core) SST() *runahead.SST { return c.sst }

// PRDQ returns the register deallocation queue (for reports).
func (c *Core) PRDQ() *runahead.PRDQ { return c.prdq }

// EMQ returns the extended micro-op queue (for reports).
func (c *Core) EMQ() *runahead.EMQ { return c.emq }

// ChainCache returns the fast-runahead tier's chain cache, or nil in the
// exact tier (the gather path keys fast-tier result fields off this).
func (c *Core) ChainCache() *runahead.ChainCache { return c.chainCache }

// Now returns the current cycle.
func (c *Core) Now() int64 { return c.now }

// AttachTelemetry wires a trace recorder into the core's hook sites (nil
// detaches). Attach after warmup/ResetStats so episode deltas are
// measured against the window's counters; the recorder tolerates an exit
// with no recorded entry (a warmup-spanning episode).
func (c *Core) AttachTelemetry(rec *telemetry.Recorder) { c.tel = rec }

// InRunahead reports whether a runahead episode is active.
func (c *Core) InRunahead() bool { return c.inRunahead }

// ResetStats opens a measurement window: core, memory, predictor and
// structure counters all restart; microarchitectural state is preserved.
func (c *Core) ResetStats() {
	c.stats.Reset()
	c.hier.ResetStats()
	c.pred.ResetStats()
	c.fetch.ResetStats()
	c.ren.ResetStats()
	c.sst.ResetStats()
	c.prdq.ResetStats()
	c.emq.ResetStats()
	if c.chainCache != nil {
		// Counters and distributions restart; learned entries survive —
		// warmup learning is the fast tier's point.
		c.chainCache.ResetStats()
	}
}

// Run advances the core until n more µops have committed, returning the
// cycles spent. It panics if the machine stops making progress (a model
// bug, not a workload property).
//
// Run is event-driven. Two mechanisms avoid burning a host iteration per
// simulated stall cycle, both producing statistics byte-identical to
// stepping every cycle (set DisableCycleSkip to verify):
//
//   - Inert skip: a Step that made no progress and has nothing retrying
//     is provably inert until the next wake-up (completion event,
//     runahead exit, fetch thaw/line arrival, decode-pipe readiness,
//     replay start); time jumps there with per-cycle counters
//     bulk-incremented (skipAhead).
//
//   - Retry amortization: a Step that only re-attempted structurally
//     blocked resources (e.g. loads on exhausted MSHRs) repeats with
//     identical counter deltas until a wake-up, an MSHR release or a
//     divider frees. Run proves the repetition on two consecutive
//     cycles, then applies the delta in bulk (retrySkip, see skip.go).
func (c *Core) Run(n int64) int64 {
	start := c.now
	target := c.stats.Committed + n
	var pre, post, prevDelta retrySnap
	fpArmed, prevValid := false, false
	for c.stats.Committed < target {
		if fpArmed {
			c.captureRetry(&pre)
		}
		c.Step()
		switch {
		case c.DisableCycleSkip || c.progressed:
			fpArmed, prevValid = false, false
		case !c.retryBlocked:
			c.skipAhead()
			fpArmed, prevValid = false, false
		case fpArmed:
			c.captureRetry(&post)
			delta := post.sub(&pre)
			if prevValid && delta == prevDelta && delta.replicable() {
				if c.retrySkip(&delta) {
					// State at the wake-up cycle may differ; re-prove.
					fpArmed, prevValid = false, false
				}
				// A no-op retrySkip leaves the proven delta valid.
			} else {
				prevDelta, prevValid = delta, true
			}
		default:
			fpArmed = true // start measuring deltas next cycle
		}
		if c.now-c.lastProgress > watchdogCycles {
			panic(fmt.Sprintf("core: no commit in %d cycles at cycle %d (mode %v, runahead=%v, rob=%d/%d, iq=%d)",
				watchdogCycles, c.now, c.cfg.Mode, c.inRunahead, c.rob.len(), c.rob.cap(), c.iq.len()))
		}
	}
	return c.now - start
}

// watchdogCycles bounds commit-to-commit distance; DRAM worst cases are
// thousands of cycles, so a million means a wedged pipeline.
const watchdogCycles = 1_000_000

// Step advances the machine by one cycle.
//
//sim:hotpath
func (c *Core) Step() {
	c.progressed = false
	c.retryBlocked = false
	c.stalledFW = false

	// Runahead exit has priority: the stalling load returns this cycle.
	if c.inRunahead && c.now >= c.exitCycle {
		c.exitRunahead()
		c.progressed = true
	}

	c.completeStage()
	c.commitStage()
	c.issueStage()
	if sqBefore := c.sq.size; sqBefore > 0 {
		c.sq.drainHead(c.sqDrainFn)
		if c.sq.size != sqBefore {
			c.progressed = true
		}
	}
	c.dispatchStage()
	switch c.fetch.Cycle(c.now) {
	case frontend.CycleFetched, frontend.CycleLineMiss:
		c.progressed = true
	case frontend.CycleMSHRBlocked:
		c.retryBlocked = true
	}

	if c.inRunahead {
		c.stats.RunaheadCycles++
	}
	c.stats.Cycles++
	c.now++
}

// --- completion -----------------------------------------------------------

// slotRef returns both halves of a slot's struct-of-arrays record.
func (c *Core) slotRef(kind recKind, slot int) (*slotMeta, *uopRec) {
	if kind == kROB {
		return &c.rob.meta[slot], &c.rob.rec[slot]
	}
	return &c.pre.meta[slot], &c.pre.rec[slot]
}

// meta returns only the hot half — the 8-byte word probes touch.
func (c *Core) meta(kind recKind, slot int) *slotMeta {
	if kind == kROB {
		return &c.rob.meta[slot]
	}
	return &c.pre.meta[slot]
}

// enqueue admits a freshly dispatched µop into the issue queue: its
// not-yet-ready sources register in the waiter lists; with zero pending
// sources the entry goes straight onto the ready list.
func (c *Core) enqueue(kind recKind, slot int, m *slotMeta, r *uopRec) {
	c.iq.add(kind)
	wait := uint8(0)
	if p := r.out.Src1P; p != rename.PRegNone && !c.ren.IsReady(p) {
		wait++
		c.waiters[p] = append(c.waiters[p], wakeRef{seq: r.seq, kind: kind, slot: int32(slot), gen: m.gen})
	}
	if p := r.out.Src2P; p != rename.PRegNone && !c.ren.IsReady(p) {
		wait++
		c.waiters[p] = append(c.waiters[p], wakeRef{seq: r.seq, kind: kind, slot: int32(slot), gen: m.gen})
	}
	m.srcWait = wait
	if wait == 0 {
		c.iq.markReady(kind, slot, m.gen, r.seq)
		c.iqDirty = true
	}
}

// wake publishes p's data to its waiters: each live waiter's srcWait
// drops, and any that reach zero make the issue queue worth scanning.
// While a consumer sits unissued in the window, p cannot be freed and
// re-allocated (in-order commit and in-order PRDQ drain guarantee it), so
// readiness is monotone and a single wake per completion suffices; stale
// entries from squashed µops are rejected by the slot generation. Only
// slotMeta is touched per waiter (the wakeRef carries the seq).
//
//sim:hotpath
func (c *Core) wake(p rename.PReg) {
	if p == rename.PRegNone {
		return
	}
	ws := c.waiters[p]
	if len(ws) == 0 {
		return
	}
	for i := range ws {
		w := &ws[i]
		m := c.meta(w.kind, int(w.slot))
		if m.gen == w.gen && m.st == sWaiting && m.srcWait > 0 {
			m.srcWait--
			if m.srcWait == 0 {
				c.iq.markReady(w.kind, int(w.slot), w.gen, w.seq)
				c.iqDirty = true
			}
		}
	}
	c.waiters[p] = ws[:0]
}

// completeStage drains every completion due this cycle. The near-ring
// bucket for the current cycle is taken wholesale (one slice grab instead
// of one popDue probe per event plus a final miss), preserving popDue's
// LIFO-within-bucket order; far-heap events due now follow, as before.
func (c *Core) completeStage() {
	q := &c.events
	if q.nearCnt > 0 {
		bucket := &q.near[c.now&(eventRing-1)]
		if n := len(*bucket); n > 0 {
			c.progressed = true
			evs := *bucket
			for i := n - 1; i >= 0; i-- {
				c.completeOne(evs[i])
			}
			*bucket = evs[:0]
			q.nearCnt -= n
		}
	}
	for len(q.far) > 0 && q.far[0].cycle <= c.now {
		c.progressed = true
		c.completeOne(q.far.pop())
	}
}

//sim:hotpath
func (c *Core) completeOne(ev completion) {
	m, r := c.slotRef(ev.kind, int(ev.slot))
	if m.gen != ev.gen || m.st != sIssued {
		return // squashed
	}
	m.st = sDone
	c.stats.Completed++
	if r.hasDst() {
		if m.flags&fInvResult != 0 {
			c.ren.MarkPoisoned(r.out.DstP, true)
		} else {
			c.ren.MarkReady(r.out.DstP)
		}
		c.wake(r.out.DstP)
	}
	if r.isStore() && r.sqIdx >= 0 {
		c.sq.e[r.sqIdx].dataReady = true
	}
	if m.flags&fMispredicted != 0 {
		c.stats.BranchMispredicts++
		m.flags &^= fMispredicted
		switch {
		case c.inRunahead && c.cfg.Mode == ModeRABuffer:
			// Front-end is power-gated; nothing to redirect.
		case c.inRunahead && c.pseudoRetire && m.flags&fInvResult != 0:
			// An INV-source branch cannot actually be resolved:
			// traditional runahead wanders off the correct path. The
			// front-end stays frozen (no more useful µop supply) and
			// any still-queued runahead loads stop prefetching.
			c.raDiverged = true
			c.stats.DivergenceStops++
		default:
			c.fetch.Redirect(c.now + 1)
		}
	}
	if ev.kind == kPRE {
		if r.prdq >= 0 {
			c.prdq.MarkExecuted(r.prdq)
		}
		if m.flags&fLQHeld != 0 {
			c.lqPre--
			m.flags &^= fLQHeld
		}
		c.pre.release(int(ev.slot))
	}
}

// --- commit ---------------------------------------------------------------

//sim:hotpath
func (c *Core) commitStage() {
	if c.inRunahead && !c.pseudoRetire {
		return // PRE: no commits during runahead (Section 3.1)
	}
	// Batched head scan: measure the commit-eligible run in the hot meta
	// array (up to Width entries whose state is sDone), then retire it in
	// one pass over the cold records.
	n := c.cfg.Width
	if n > c.rob.size {
		n = c.rob.size
	}
	run := 0
	idx := c.rob.head
	for run < n && c.rob.meta[idx].st == sDone {
		run++
		idx++
		if idx == len(c.rob.meta) {
			idx = 0
		}
	}
	if run == 0 {
		return
	}
	released := int64(-1)
	idx = c.rob.head
	for k := 0; k < run; k++ {
		m, r := &c.rob.meta[idx], &c.rob.rec[idx]
		if r.isStore() && r.sqIdx >= 0 {
			c.sq.e[r.sqIdx].committed = true
		}
		if r.isLoad() && m.flags&fLQHeld != 0 {
			c.lqNorm--
			m.flags &^= fLQHeld
		}
		c.ren.Commit(r.dst, r.out.DstP)
		if c.pseudoRetire {
			c.stats.PseudoRetired++
		} else {
			c.stats.Committed++
			c.lastProgress = c.now
			if c.OnCommit != nil {
				c.OnCommit(r.seq)
			}
			released = r.seq // older µops are dead; release once below
		}
		m.gen++ // invalidate stale references (ring pop)
		idx++
		if idx == len(c.rob.meta) {
			idx = 0
		}
	}
	c.rob.head = idx
	c.rob.size -= run
	c.progressed = true
	if released >= 0 {
		c.stream.Release(released)
	}
}

// --- issue ------------------------------------------------------------------

//sim:hotpath
func (c *Core) issueStage() {
	if !c.iqDirty && !c.iqRetry {
		return // nothing became ready and nothing is retrying: no-op scan
	}
	// Per-cycle FU counters reset lazily, at scan time: cycles that skip
	// the scan issue nothing, so their counters are never read.
	c.fu.newCycle()
	c.iqDirty = false
	c.iqRetry = false
	// Single program-order pass over the ready list, compacting
	// issued/stale entries away. Source-pending µops are never visited:
	// their completion wake-up files them here.
	out := c.iq.ready[:0]
	for _, ref := range c.iq.ready {
		m, r := c.slotRef(ref.kind, int(ref.slot))
		if m.gen != ref.gen || m.st != sWaiting {
			c.progressed = true // squashed under us; occupancy was reset by the flush
			continue
		}
		if c.tryIssueRec(ref.kind, int(ref.slot), m, r) {
			c.iq.issued(ref.kind)
			c.progressed = true
			continue
		}
		out = append(out, ref)
	}
	c.iq.ready = out
}

// tryIssueRec attempts to issue one µop whose sources are all ready
// (srcWait == 0, maintained by the wake-up lists); it returns true when
// the µop left the IQ.
//
//sim:hotpath
func (c *Core) tryIssueRec(kind recKind, slot int, m *slotMeta, r *uopRec) bool {
	// INV propagation (traditional runahead semantics): a runahead µop
	// with a poisoned source completes immediately with a poisoned result
	// and performs no memory access.
	inv := m.flags&fInRunahead != 0 &&
		(c.ren.IsPoisoned(r.out.Src1P) || c.ren.IsPoisoned(r.out.Src2P))

	if !c.fu.tryIssue(r.class, c.now) {
		// Ready sources but no unit (per-cycle capacity or a busy
		// divider): the retry outcome depends on the cycle number.
		c.retryBlocked = true
		c.iqRetry = true
		return false
	}
	switch {
	case inv:
		m.flags |= fInvResult
		r.readyAt = c.now + 1
		c.stats.RunaheadINV++
	case r.isLoad():
		ready, invLoad, ok := c.issueLoad(m, r)
		if !ok {
			// Port consumed but the access could not start (forwarding
			// data pending or MSHRs full): retry next cycle. The failed
			// attempt mutated memory-system stall counters, so the cycle
			// is not skippable.
			c.retryBlocked = true
			c.iqRetry = true
			return false
		}
		r.readyAt = ready
		if invLoad {
			m.flags |= fInvResult
		}
	default:
		// Stores do address generation + data capture here; the memory
		// write happens at commit via the store queue.
		r.readyAt = c.now + classLatency[r.class]
	}
	m.st = sIssued
	c.events.schedule(c.now, completion{cycle: r.readyAt, kind: kind, slot: int32(slot), gen: m.gen})
	c.countIssue(r.class)
	if m.flags&fInRunahead != 0 {
		c.stats.RunaheadExecuted++
	}
	if kind == kPRE && r.prdq >= 0 {
		// The PRDQ "execute" bit guards freeing the µop's PREVIOUS
		// destination mapping, which only requires that this µop has read
		// its sources — true once it issues. Waiting for a slice load's
		// fill instead would head-of-line-block reclamation for the whole
		// memory latency and strangle runahead's register supply.
		c.prdq.MarkExecuted(r.prdq)
	}
	return true
}

// issueLoad starts a load's memory access, returning its data-ready cycle
// and whether the result is INV (runahead load that would wait on DRAM).
//
//sim:hotpath
func (c *Core) issueLoad(m *slotMeta, r *uopRec) (ready int64, inv, ok bool) {
	// Traditional runahead never waits (Mutlu): in pseudo-retire mode a
	// load either gets its data quickly, or it starts a prefetch and
	// completes immediately with an INV result — including when no MSHR is
	// even available to start one. PRE instead executes slices with real
	// data (dependent slice loads need loaded values as addresses), so its
	// runahead loads wait for actual fills and retry on structural hazards.
	inRunahead := m.flags&fInRunahead != 0
	neverWait := c.pseudoRetire && inRunahead

	// Store-to-load forwarding from older in-flight stores.
	if found, dataReady := c.sq.forwardFrom(r.seq, r.addr, r.size); found {
		if !dataReady {
			if neverWait {
				return c.now + 1, true, true
			}
			return 0, false, false // store data not captured yet; retry
		}
		return c.now + int64(c.hier.L1D().HitLatency()), false, true
	}
	var res mem.Result
	if inRunahead {
		if c.raDiverged {
			// Off the correct path after an unresolvable mispredict:
			// addresses are no longer trustworthy, so stop prefetching.
			return c.now + 1, true, true
		}
		res, ok = c.hier.Prefetch(r.addr, c.now)
		if ok {
			c.stats.Prefetches++
			if c.OnPrefetch != nil {
				c.OnPrefetch(r.addr)
			}
			if c.epLearning {
				c.recordEpisodeAddr(r.addr)
			}
		}
	} else {
		res, ok = c.hier.LoadPC(r.addr, r.pc, c.now)
	}
	if !ok {
		if neverWait {
			return c.now + 1, true, true // prefetch dropped; do not stall
		}
		return 0, false, false // MSHRs exhausted; retry
	}
	// "Long latency" includes merges onto still-in-flight lines, which
	// report the level they hit but carry the fill's completion time.
	if neverWait && res.Ready > c.now+int64(c.cfg.Mem.L3.HitLatency) {
		return c.now + 1, true, true
	}
	return res.Ready, false, true
}

func (c *Core) countIssue(class uarch.Class) {
	switch class {
	case uarch.ClassLoad:
		c.stats.IssuedLoad++
	case uarch.ClassStore:
		c.stats.IssuedStore++
	case uarch.ClassFPAdd, uarch.ClassFPMul, uarch.ClassFPDiv:
		c.stats.IssuedFPU++
	case uarch.ClassBranch, uarch.ClassJump, uarch.ClassCall, uarch.ClassReturn:
		c.stats.IssuedBranch++
	default:
		c.stats.IssuedALU++
	}
}

// --- dispatch ----------------------------------------------------------------

func (c *Core) dispatchStage() {
	if c.inRunahead {
		if c.epEmulated {
			// Coarse emulation: the episode's entire effect (its predicted
			// prefetch set) was injected at entry; no runahead µops are
			// fetched, renamed or dispatched. The cycle skipper fast-forwards
			// the quiesced machine to the episode exit.
			return
		}
		switch c.cfg.Mode {
		case ModeRA:
			c.dispatchNormal(true)
		case ModeRABuffer:
			c.dispatchReplay()
		case ModePRE, ModePREEMQ:
			c.dispatchPRE()
		}
		// PRE frees runahead registers as the PRDQ drains in order.
		if c.cfg.Mode == ModePRE || c.cfg.Mode == ModePREEMQ {
			if c.prdq.Drain(c.renFree) > 0 {
				c.progressed = true // freed registers can unblock dispatch
			}
		}
		return
	}
	if c.emqDraining {
		c.dispatchFromEMQ()
		return
	}
	c.dispatchNormal(false)
}

// dispatchNormal renames and dispatches from the fetch queue; runahead=true
// is traditional runahead mode (µops tagged for prefetch semantics and
// pseudo-retirement). The decode-pipe head run is pulled once per cycle
// (one ring scan) instead of a Peek/Pop pair per µop.
func (c *Core) dispatchNormal(inRunahead bool) {
	if c.rob.full() {
		if !inRunahead {
			c.onFullWindow()
		}
		return
	}
	n := c.fetch.ReadyRun(c.now, c.dispatchRun[:c.cfg.Width])
	consumed := 0
	for consumed < n {
		if !c.dispatchOne(c.dispatchRun[consumed], inRunahead) {
			break
		}
		consumed++
		if c.rob.full() {
			if consumed < c.cfg.Width && !inRunahead {
				c.onFullWindow()
			}
			break
		}
	}
	c.fetch.PopN(consumed)
}

// dispatchOne admits one µop into the back end (ROB path); it returns
// false if a resource is unavailable (retry next cycle).
//
//sim:hotpath
func (c *Core) dispatchOne(slot frontend.Slot, inRunahead bool) bool {
	u := c.stream.At(slot.Seq)
	if c.iq.full() || !c.ren.CanRename(u.Dst) {
		return false
	}
	if u.IsLoad() && c.lqNorm+c.lqPre >= c.cfg.LQSize {
		return false
	}
	if u.IsStore() && c.sq.full() {
		return false
	}

	out, ok := c.ren.Rename(u, inRunahead)
	if !ok {
		return false
	}
	idx := c.rob.push()
	m, r := &c.rob.meta[idx], &c.rob.rec[idx]
	m.st = sWaiting // gen is preserved across slot reuse
	m.flags = 0
	if slot.Mispredicted {
		m.flags = fMispredicted
	}
	if inRunahead {
		m.flags |= fInRunahead
	}
	r.seq = u.Seq
	r.pc = u.PC
	r.addr = u.Addr
	r.out = out
	r.prdq = -1
	r.sqIdx = -1
	r.class = u.Class
	r.dst = u.Dst
	r.size = u.Size
	if u.IsLoad() {
		c.lqNorm++
		m.flags |= fLQHeld
	}
	if u.IsStore() {
		r.sqIdx = int32(c.sq.push(u.Seq, u.Addr, u.Size, inRunahead))
	}
	c.enqueue(kROB, idx, m, r)
	c.stats.Decoded++
	c.stats.Renamed++
	c.stats.Dispatched++
	if c.measuringRefill {
		c.refillDispatched++
		if c.refillDispatched >= int64(c.cfg.ROBSize) {
			c.stats.RefillPenalty.Observe(float64(c.now - c.refillFrom))
			c.measuringRefill = false
		}
	}

	// PRE's SST learns in normal mode too: every decoded µop probes the
	// SST; hits pull their producers' PCs in (Section 3.2).
	if c.cfg.Mode == ModePRE || c.cfg.Mode == ModePREEMQ {
		if c.sst.Lookup(u.PC) {
			c.learnProducers(u)
		}
	}
	c.progressed = true
	return true
}

// learnProducers inserts the PCs of u's source producers into the SST,
// using the RAT's last-producer-PC extension.
func (c *Core) learnProducers(u *uarch.Uop) {
	for _, src := range [2]uarch.Reg{u.Src1, u.Src2} {
		if src == uarch.RegNone {
			continue
		}
		if pc := c.ren.ProducerPC(src); pc != 0 {
			c.sst.Insert(pc)
		}
	}
}

// onFullWindow runs once per cycle when dispatch is blocked by a full ROB;
// it accounts the stall and may trigger a runahead entry.
func (c *Core) onFullWindow() {
	m := &c.rob.meta[c.rob.head]
	if m.st == sDone {
		return // commit-bandwidth limited, not a stall
	}
	c.stats.FullWindowStallCycles++
	c.stats.RobFullEvents++
	// A stall cycle repeats identically until the head's completion event:
	// flag it so skipped cycles replicate these counters in bulk.
	c.stalledFW = true
	if c.tel != nil {
		c.tel.FullWindowStall(c.now)
	}
	c.maybeEnterRunahead(m, &c.rob.rec[c.rob.head])
}
