package core

import (
	"fmt"

	"repro/internal/frontend"
	"repro/internal/mem"
	"repro/internal/rename"
	"repro/internal/runahead"
	"repro/internal/trace"
	"repro/internal/uarch"
)

// Core is one simulated out-of-order core plus its runahead controller.
// Build with New; drive with Run or Step. Not safe for concurrent use.
type Core struct {
	cfg   Config
	stats *Stats

	hier   *mem.Hierarchy
	stream *trace.Stream
	pred   *frontend.Predictor
	fetch  *frontend.FetchUnit
	ren    *rename.Renamer

	rob    *rob
	iq     *issueQueue
	sq     *storeQueue
	pre    *prePool
	events eventHeap
	fu     *fuPools

	lqNorm, lqPre int // load-queue occupancy (normal / PRE transient)

	sst  *runahead.SST
	prdq *runahead.PRDQ
	emq  *runahead.EMQ

	now int64

	// Runahead episode state.
	inRunahead   bool
	pseudoRetire bool // RA / RA-buffer
	entryCycle   int64
	exitCycle    int64
	stallSeq     int64
	stallPC      uint64
	stallDstP    rename.PReg
	cpFull       *rename.Checkpoint // RA / RA-buffer (committed state)
	cpSpec       *rename.Checkpoint // PRE (speculative RAT + free lists)
	lastSkipSeq  int64              // interval-filter skip deduplication

	// PRE episode state.
	preResumeSeq int64 // first µop consumed during runahead (-1 = none)
	preDiverged  int
	preScanStop  bool
	emqDraining  bool
	emqScan      int // scan cursor into a still-draining EMQ at re-entry

	// RA-buffer replay state.
	chain         []uarch.Uop
	replayCursor  int64
	replayPending []int64
	replayIdx     int
	replayDead    bool
	replayStart   int64 // replay begins after the backward walk finishes

	// raDiverged: an unresolvable (INV-source) mispredicted branch sent
	// traditional runahead off-path; further prefetches this episode are
	// suppressed.
	raDiverged bool

	// E6 (FreeExit) snapshot.
	snap *pipeSnapshot

	// Refill-penalty measurement (E4): after a flush-exit, count the
	// cycles until a full window's worth of µops has been re-dispatched —
	// the paper's "8 cycles front-end + 48 cycles ROB refill" estimate.
	refillFrom       int64
	refillDispatched int64
	measuringRefill  bool

	// Deadlock watchdog.
	lastProgress int64

	// OnCommit, when set, is invoked with each architecturally committed
	// µop's sequence number — an instrumentation hook for tests and
	// tracing tools (pseudo-retirement does not trigger it).
	OnCommit func(seq int64)
}

// New builds a core in the given mode over a fresh trace stream.
func New(cfg Config, gen trace.Generator) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	stream := trace.NewStream(gen)
	hier := mem.New(cfg.Mem)
	pred := frontend.NewPredictor(cfg.Predictor)
	c := &Core{
		cfg:          cfg,
		stats:        NewStats(),
		hier:         hier,
		stream:       stream,
		pred:         pred,
		fetch:        frontend.NewFetchUnit(cfg.Fetch, stream, pred, hier),
		ren:          rename.New(cfg.Rename),
		rob:          newROB(cfg.ROBSize),
		iq:           newIQ(cfg.IQSize),
		sq:           newSQ(cfg.SQSize),
		pre:          newPrePool(cfg.IQSize + cfg.ROBSize),
		fu:           newFU(&cfg),
		sst:          runahead.NewSST(cfg.SSTSize),
		prdq:         runahead.NewPRDQ(cfg.PRDQSize),
		emq:          runahead.NewEMQ(cfg.EMQSize),
		preResumeSeq: -1,
		lastSkipSeq:  -1,
	}
	return c, nil
}

// Stats returns the live stats block.
func (c *Core) Stats() *Stats { return c.stats }

// Hierarchy returns the memory system (for reports).
func (c *Core) Hierarchy() *mem.Hierarchy { return c.hier }

// Predictor returns the branch predictor (for reports).
func (c *Core) Predictor() *frontend.Predictor { return c.pred }

// FetchUnit returns the front end (for reports).
func (c *Core) FetchUnit() *frontend.FetchUnit { return c.fetch }

// Renamer returns the rename stage (for reports).
func (c *Core) Renamer() *rename.Renamer { return c.ren }

// SST returns the stalling slice table (for reports).
func (c *Core) SST() *runahead.SST { return c.sst }

// PRDQ returns the register deallocation queue (for reports).
func (c *Core) PRDQ() *runahead.PRDQ { return c.prdq }

// EMQ returns the extended micro-op queue (for reports).
func (c *Core) EMQ() *runahead.EMQ { return c.emq }

// Now returns the current cycle.
func (c *Core) Now() int64 { return c.now }

// InRunahead reports whether a runahead episode is active.
func (c *Core) InRunahead() bool { return c.inRunahead }

// ResetStats opens a measurement window: core, memory, predictor and
// structure counters all restart; microarchitectural state is preserved.
func (c *Core) ResetStats() {
	c.stats.Reset()
	c.hier.ResetStats()
	c.pred.ResetStats()
	c.fetch.ResetStats()
	c.ren.ResetStats()
	c.sst.ResetStats()
	c.prdq.ResetStats()
	c.emq.ResetStats()
}

// Run advances the core until n more µops have committed, returning the
// cycles spent. It panics if the machine stops making progress (a model
// bug, not a workload property).
func (c *Core) Run(n int64) int64 {
	start := c.now
	target := c.stats.Committed + n
	for c.stats.Committed < target {
		c.Step()
		if c.now-c.lastProgress > watchdogCycles {
			panic(fmt.Sprintf("core: no commit in %d cycles at cycle %d (mode %v, runahead=%v, rob=%d/%d, iq=%d)",
				watchdogCycles, c.now, c.cfg.Mode, c.inRunahead, c.rob.len(), c.rob.cap(), c.iq.len()))
		}
	}
	return c.now - start
}

// watchdogCycles bounds commit-to-commit distance; DRAM worst cases are
// thousands of cycles, so a million means a wedged pipeline.
const watchdogCycles = 1_000_000

// Step advances the machine by one cycle.
func (c *Core) Step() {
	// Runahead exit has priority: the stalling load returns this cycle.
	if c.inRunahead && c.now >= c.exitCycle {
		c.exitRunahead()
	}

	c.completeStage()
	c.commitStage()
	c.issueStage()
	c.sq.drainHead(func(e *sqEntry) bool {
		_, ok := c.hier.StoreCommit(e.addr, c.now)
		return ok
	})
	c.dispatchStage()
	c.fetch.Cycle(c.now)

	if c.inRunahead {
		c.stats.RunaheadCycles++
	}
	c.stats.Cycles++
	c.now++
}

// --- completion -----------------------------------------------------------

func (c *Core) resolve(kind recKind, slot int) *uopRec {
	if kind == kROB {
		return &c.rob.e[slot]
	}
	return &c.pre.e[slot]
}

func (c *Core) completeStage() {
	for {
		ev, ok := c.events.popDue(c.now)
		if !ok {
			return
		}
		rec := c.resolve(ev.kind, ev.slot)
		if rec.gen != ev.gen || rec.st != sIssued {
			continue // squashed
		}
		rec.st = sDone
		c.stats.Completed++
		if rec.uop.HasDst() {
			if rec.invResult {
				c.ren.MarkPoisoned(rec.out.DstP, true)
			} else {
				c.ren.MarkReady(rec.out.DstP)
			}
		}
		if rec.uop.IsStore() && rec.sqIdx >= 0 {
			c.sq.e[rec.sqIdx].dataReady = true
		}
		if rec.mispredicted {
			c.stats.BranchMispredicts++
			rec.mispredicted = false
			switch {
			case c.inRunahead && c.cfg.Mode == ModeRABuffer:
				// Front-end is power-gated; nothing to redirect.
			case c.inRunahead && c.pseudoRetire && rec.invResult:
				// An INV-source branch cannot actually be resolved:
				// traditional runahead wanders off the correct path. The
				// front-end stays frozen (no more useful µop supply) and
				// any still-queued runahead loads stop prefetching.
				c.raDiverged = true
				c.stats.DivergenceStops++
			default:
				c.fetch.Redirect(c.now + 1)
			}
		}
		if ev.kind == kPRE {
			if rec.prdq >= 0 {
				c.prdq.MarkExecuted(rec.prdq)
			}
			if rec.lqHeld {
				c.lqPre--
				rec.lqHeld = false
			}
			c.pre.release(ev.slot)
		}
	}
}

// --- commit ---------------------------------------------------------------

func (c *Core) commitStage() {
	if c.inRunahead && !c.pseudoRetire {
		return // PRE: no commits during runahead (Section 3.1)
	}
	for n := 0; n < c.cfg.Width && !c.rob.empty(); n++ {
		rec := &c.rob.e[c.rob.headIdx()]
		if rec.st != sDone {
			return
		}
		if rec.uop.IsStore() && rec.sqIdx >= 0 {
			c.sq.e[rec.sqIdx].committed = true
		}
		if rec.uop.IsLoad() && rec.lqHeld {
			c.lqNorm--
			rec.lqHeld = false
		}
		c.ren.Commit(rec.uop.Dst, rec.out.DstP)
		if c.pseudoRetire {
			c.stats.PseudoRetired++
		} else {
			c.stats.Committed++
			c.lastProgress = c.now
			if c.OnCommit != nil {
				c.OnCommit(rec.seq)
			}
			c.stream.Release(rec.seq) // older µops are dead
		}
		c.rob.pop()
	}
}

// --- issue ------------------------------------------------------------------

func (c *Core) issueStage() {
	c.fu.newCycle()
	for i := 0; i < c.iq.len(); {
		ref := c.iq.refs[i]
		rec := c.resolve(ref.kind, ref.slot)
		if rec.gen != ref.gen || rec.st != sWaiting {
			c.iq.removeAt(i) // squashed or stale
			continue
		}
		if c.tryIssueRec(ref, rec) {
			c.iq.removeAt(i)
			continue
		}
		i++
	}
}

// tryIssueRec attempts to issue one µop; returns true when it left the IQ.
func (c *Core) tryIssueRec(ref iqRef, rec *uopRec) bool {
	if !c.ren.IsReady(rec.out.Src1P) || !c.ren.IsReady(rec.out.Src2P) {
		return false
	}
	u := &rec.uop

	// INV propagation (traditional runahead semantics): a runahead µop
	// with a poisoned source completes immediately with a poisoned result
	// and performs no memory access.
	inv := rec.inRunahead &&
		(c.ren.IsPoisoned(rec.out.Src1P) || c.ren.IsPoisoned(rec.out.Src2P))

	if !c.fu.tryIssue(u.Class, c.now) {
		return false
	}
	lat := int64(u.Class.Latency())
	switch {
	case inv:
		rec.invResult = true
		rec.readyAt = c.now + 1
		c.stats.RunaheadINV++
	case u.IsLoad():
		ready, invLoad, ok := c.issueLoad(rec)
		if !ok {
			// Port consumed but the access could not start (forwarding
			// data pending or MSHRs full): retry next cycle.
			return false
		}
		rec.readyAt = ready
		rec.invResult = invLoad
	case u.IsStore():
		// Address generation + data capture; the memory write happens at
		// commit via the store queue.
		rec.readyAt = c.now + lat
	default:
		rec.readyAt = c.now + lat
	}
	rec.st = sIssued
	c.events.schedule(completion{cycle: rec.readyAt, kind: ref.kind, slot: ref.slot, gen: rec.gen})
	c.countIssue(u.Class)
	if rec.inRunahead {
		c.stats.RunaheadExecuted++
	}
	if ref.kind == kPRE && rec.prdq >= 0 {
		// The PRDQ "execute" bit guards freeing the µop's PREVIOUS
		// destination mapping, which only requires that this µop has read
		// its sources — true once it issues. Waiting for a slice load's
		// fill instead would head-of-line-block reclamation for the whole
		// memory latency and strangle runahead's register supply.
		c.prdq.MarkExecuted(rec.prdq)
	}
	return true
}

// issueLoad starts a load's memory access, returning its data-ready cycle
// and whether the result is INV (runahead load that would wait on DRAM).
func (c *Core) issueLoad(rec *uopRec) (ready int64, inv, ok bool) {
	u := &rec.uop
	// Traditional runahead never waits (Mutlu): in pseudo-retire mode a
	// load either gets its data quickly, or it starts a prefetch and
	// completes immediately with an INV result — including when no MSHR is
	// even available to start one. PRE instead executes slices with real
	// data (dependent slice loads need loaded values as addresses), so its
	// runahead loads wait for actual fills and retry on structural hazards.
	neverWait := c.pseudoRetire && rec.inRunahead

	// Store-to-load forwarding from older in-flight stores.
	if found, dataReady := c.sq.forwardFrom(rec.seq, u.Addr, u.Size); found {
		if !dataReady {
			if neverWait {
				return c.now + 1, true, true
			}
			return 0, false, false // store data not captured yet; retry
		}
		rec.memLevel = mem.LevelL1
		return c.now + int64(c.hier.L1D().HitLatency()), false, true
	}
	var res mem.Result
	if rec.inRunahead {
		if c.raDiverged {
			// Off the correct path after an unresolvable mispredict:
			// addresses are no longer trustworthy, so stop prefetching.
			return c.now + 1, true, true
		}
		res, ok = c.hier.Prefetch(u.Addr, c.now)
		if ok {
			c.stats.Prefetches++
		}
	} else {
		res, ok = c.hier.LoadPC(u.Addr, u.PC, c.now)
	}
	if !ok {
		if neverWait {
			return c.now + 1, true, true // prefetch dropped; do not stall
		}
		return 0, false, false // MSHRs exhausted; retry
	}
	rec.memLevel = res.Level
	// "Long latency" includes merges onto still-in-flight lines, which
	// report the level they hit but carry the fill's completion time.
	if neverWait && res.Ready > c.now+int64(c.cfg.Mem.L3.HitLatency) {
		return c.now + 1, true, true
	}
	return res.Ready, false, true
}

func (c *Core) countIssue(class uarch.Class) {
	switch class {
	case uarch.ClassLoad:
		c.stats.IssuedLoad++
	case uarch.ClassStore:
		c.stats.IssuedStore++
	case uarch.ClassFPAdd, uarch.ClassFPMul, uarch.ClassFPDiv:
		c.stats.IssuedFPU++
	case uarch.ClassBranch, uarch.ClassJump, uarch.ClassCall, uarch.ClassReturn:
		c.stats.IssuedBranch++
	default:
		c.stats.IssuedALU++
	}
}

// --- dispatch ----------------------------------------------------------------

func (c *Core) dispatchStage() {
	if c.inRunahead {
		switch c.cfg.Mode {
		case ModeRA:
			c.dispatchNormal(true)
		case ModeRABuffer:
			c.dispatchReplay()
		case ModePRE, ModePREEMQ:
			c.dispatchPRE()
		}
		// PRE frees runahead registers as the PRDQ drains in order.
		if c.cfg.Mode == ModePRE || c.cfg.Mode == ModePREEMQ {
			c.prdq.Drain(c.ren.Free)
		}
		return
	}
	if c.emqDraining {
		c.dispatchFromEMQ()
		return
	}
	c.dispatchNormal(false)
}

// dispatchNormal renames and dispatches from the fetch queue; runahead=true
// is traditional runahead mode (µops tagged for prefetch semantics and
// pseudo-retirement).
func (c *Core) dispatchNormal(inRunahead bool) {
	for n := 0; n < c.cfg.Width; n++ {
		if c.rob.full() {
			if !inRunahead {
				c.onFullWindow()
			}
			return
		}
		slot, ok := c.fetch.Peek(c.now)
		if !ok {
			return
		}
		if !c.dispatchOne(slot, inRunahead) {
			return
		}
		c.fetch.Pop(c.now)
	}
}

// dispatchOne admits one µop into the back end (ROB path); it returns
// false if a resource is unavailable (retry next cycle).
func (c *Core) dispatchOne(slot frontend.Slot, inRunahead bool) bool {
	u := c.stream.At(slot.Seq)
	if c.iq.full() || !c.ren.CanRename(u.Dst) {
		return false
	}
	if u.IsLoad() && c.lqNorm+c.lqPre >= c.cfg.LQSize {
		return false
	}
	if u.IsStore() && c.sq.full() {
		return false
	}

	out, ok := c.ren.Rename(u, inRunahead)
	if !ok {
		return false
	}
	idx := c.rob.push()
	rec := &c.rob.e[idx]
	gen := rec.gen
	*rec = uopRec{
		seq: u.Seq, uop: *u, out: out, st: sWaiting, gen: gen,
		prdq: -1, sqIdx: -1,
		mispredicted: slot.Mispredicted,
		inRunahead:   inRunahead,
	}
	if u.IsLoad() {
		c.lqNorm++
		rec.lqHeld = true
	}
	if u.IsStore() {
		rec.sqIdx = c.sq.push(u.Seq, u.Addr, u.Size, inRunahead)
	}
	c.iq.push(iqRef{kind: kROB, slot: idx, gen: gen})
	c.stats.Decoded++
	c.stats.Renamed++
	c.stats.Dispatched++
	if c.measuringRefill {
		c.refillDispatched++
		if c.refillDispatched >= int64(c.cfg.ROBSize) {
			c.stats.RefillPenalty.Observe(float64(c.now - c.refillFrom))
			c.measuringRefill = false
		}
	}

	// PRE's SST learns in normal mode too: every decoded µop probes the
	// SST; hits pull their producers' PCs in (Section 3.2).
	if c.cfg.Mode == ModePRE || c.cfg.Mode == ModePREEMQ {
		if c.sst.Lookup(u.PC) {
			c.learnProducers(u)
		}
	}
	return true
}

// learnProducers inserts the PCs of u's source producers into the SST,
// using the RAT's last-producer-PC extension.
func (c *Core) learnProducers(u *uarch.Uop) {
	for _, src := range [2]uarch.Reg{u.Src1, u.Src2} {
		if src == uarch.RegNone {
			continue
		}
		if pc := c.ren.ProducerPC(src); pc != 0 {
			c.sst.Insert(pc)
		}
	}
}

// onFullWindow runs once per cycle when dispatch is blocked by a full ROB;
// it accounts the stall and may trigger a runahead entry.
func (c *Core) onFullWindow() {
	head := &c.rob.e[c.rob.headIdx()]
	if head.st == sDone {
		return // commit-bandwidth limited, not a stall
	}
	c.stats.FullWindowStallCycles++
	c.stats.RobFullEvents++
	c.maybeEnterRunahead(head)
}
