package core

import "repro/internal/telemetry"

// PublishMetrics snapshots the core's measured-window counters into the
// telemetry registry under the "core/" namespace (plus the runahead
// structures under "runahead/"). It runs once, after the measured
// window — never on the simulation hot path — and is purely a read of
// existing statistics, so publishing cannot perturb results.
func (c *Core) PublishMetrics(reg *telemetry.Registry) {
	s := c.stats
	reg.Counter("core/cycles", s.Cycles)
	reg.Counter("core/committed", s.Committed)
	reg.Gauge("core/ipc", s.IPC())
	reg.Counter("core/decoded", s.Decoded)
	reg.Counter("core/renamed", s.Renamed)
	reg.Counter("core/dispatched", s.Dispatched)
	reg.Counter("core/issued/alu", s.IssuedALU)
	reg.Counter("core/issued/fpu", s.IssuedFPU)
	reg.Counter("core/issued/load", s.IssuedLoad)
	reg.Counter("core/issued/store", s.IssuedStore)
	reg.Counter("core/issued/branch", s.IssuedBranch)
	reg.Counter("core/completed", s.Completed)
	reg.Counter("core/pseudo_retired", s.PseudoRetired)
	reg.Counter("core/branch_mispredicts", s.BranchMispredicts)

	reg.Counter("core/stall/full_window_cycles", s.FullWindowStallCycles)
	reg.Counter("core/stall/rob_full_events", s.RobFullEvents)

	reg.Counter("core/skip/cycles", s.SkippedAhead)

	reg.Counter("core/runahead/entries", s.Entries)
	reg.Counter("core/runahead/entries_skipped", s.EntriesSkipped)
	reg.Counter("core/runahead/cycles", s.RunaheadCycles)
	reg.Counter("core/runahead/executed", s.RunaheadExecuted)
	reg.Counter("core/runahead/inv", s.RunaheadINV)
	reg.Counter("core/runahead/prefetches", s.Prefetches)
	reg.Counter("core/runahead/divergence_stops", s.DivergenceStops)
	reg.Counter("core/runahead/replay_exhausted", s.ReplayExhausted)
	reg.Counter("core/runahead/emq_dispatched", s.EMQDispatched)
	reg.Histogram("core/runahead/interval_cycles", s.Intervals)
	reg.Gauge("core/runahead/refill_penalty_mean", s.RefillPenalty.Mean())
	reg.Gauge("core/runahead/free_iq_at_entry", s.FreeIQAtEntry.Mean())
	reg.Gauge("core/runahead/free_int_at_entry", s.FreeIntRegAtEntry.Mean())
	reg.Gauge("core/runahead/free_fp_at_entry", s.FreeFPRegAtEntry.Mean())

	fe := c.fetch.Stats()
	reg.Counter("core/fetch/uops", fe.FetchedUops)
	reg.Counter("core/fetch/freeze_cycles", fe.FreezeCycles)
	reg.Counter("core/fetch/icache_stall_cycles", fe.ICacheStallCy)

	c.sst.PublishMetrics(reg)
	c.prdq.PublishMetrics(reg)
	c.emq.PublishMetrics(reg)
	if c.chainCache != nil {
		reg.Counter("core/runahead/emulated_episodes", s.EmulatedEpisodes)
		reg.Counter("core/runahead/emulated_prefetches", s.EmulatedPrefetches)
		c.chainCache.PublishMetrics(reg)
	}
}
