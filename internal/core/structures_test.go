package core

import (
	"testing"
	"testing/quick"

	"repro/internal/uarch"
)

func TestROBRingLifecycle(t *testing.T) {
	r := newROB(4)
	if !r.empty() || r.full() {
		t.Fatal("fresh ROB state wrong")
	}
	idx := make([]int, 0, 4)
	for i := 0; i < 4; i++ {
		j := r.push()
		r.rec[j].seq = int64(i)
		idx = append(idx, j)
	}
	if !r.full() || r.len() != 4 {
		t.Fatal("ROB must be full after 4 pushes")
	}
	if r.headIdx() != idx[0] {
		t.Error("head index wrong")
	}
	// at(i) walks oldest -> youngest.
	for i := 0; i < 4; i++ {
		if r.rec[r.at(i)].seq != int64(i) {
			t.Errorf("at(%d).seq = %d", i, r.rec[r.at(i)].seq)
		}
	}
	gen := r.meta[idx[0]].gen
	r.pop()
	if r.meta[idx[0]].gen != gen+1 {
		t.Error("pop must invalidate the slot generation")
	}
	if r.len() != 3 {
		t.Error("pop did not shrink")
	}
	// Wraparound: push reuses the freed slot.
	j := r.push()
	if j != idx[0] {
		t.Errorf("push reused slot %d, want %d", j, idx[0])
	}
}

func TestROBFlushInvalidatesAll(t *testing.T) {
	r := newROB(8)
	var gens []uint32
	for i := 0; i < 5; i++ {
		j := r.push()
		gens = append(gens, r.meta[j].gen)
	}
	r.flush()
	if !r.empty() {
		t.Fatal("flush must empty the ROB")
	}
	for i := 0; i < 5; i++ {
		if r.meta[i].gen == gens[i] {
			t.Errorf("slot %d generation not bumped by flush", i)
		}
	}
}

func TestPrePoolAllocReleaseFlush(t *testing.T) {
	p := newPrePool(3)
	a, ok1 := p.alloc()
	b, ok2 := p.alloc()
	c, ok3 := p.alloc()
	if !ok1 || !ok2 || !ok3 {
		t.Fatal("allocs failed")
	}
	if _, ok := p.alloc(); ok {
		t.Fatal("pool overflow")
	}
	genB := p.meta[b].gen
	p.release(b)
	if p.meta[b].gen != genB+1 {
		t.Error("release must bump generation")
	}
	d, ok := p.alloc()
	if !ok || d != b {
		t.Errorf("expected freed slot %d reused, got %d", b, d)
	}
	p.flush()
	if p.live != 0 {
		t.Errorf("flush left %d live", p.live)
	}
	// All three slots allocatable again.
	for i := 0; i < 3; i++ {
		if _, ok := p.alloc(); !ok {
			t.Fatalf("post-flush alloc %d failed", i)
		}
	}
	_ = a
	_ = c
}

func TestIssueQueueOrderAndFilter(t *testing.T) {
	q := newIQ(4)
	for i := 0; i < 3; i++ {
		q.add(kROB)
	}
	q.add(kPRE)
	if !q.full() || q.freeSlots() != 0 {
		t.Fatal("IQ must be full")
	}
	// Ready-list ordering: appends in program order, wake-up insertions
	// in the middle keep seq-ascending order.
	q.markReady(kROB, 0, 0, 10)
	q.markReady(kROB, 2, 0, 30)
	q.markReady(kPRE, 1, 0, 20) // woken later, but older than slot 2
	if len(q.ready) != 3 || q.ready[0].seq != 10 || q.ready[1].seq != 20 || q.ready[2].seq != 30 {
		t.Errorf("ready order %v", q.ready)
	}
	q.issued(kROB)
	if q.len() != 3 || q.full() {
		t.Errorf("issued must free a slot: len=%d", q.len())
	}
	q.dropPRE()
	if q.len() != 2 {
		t.Errorf("dropPRE left %d entries", q.len())
	}
	for _, r := range q.ready {
		if r.kind != kROB {
			t.Error("dropPRE left a kPRE ready entry")
		}
	}
	q.clear()
	if q.len() != 0 || len(q.ready) != 0 {
		t.Error("clear failed")
	}
}

func TestStoreQueueForwarding(t *testing.T) {
	s := newSQ(8)
	i1 := s.push(10, 0x1000, 8, false)
	s.push(20, 0x2000, 8, false)
	// Younger load at 0x1000 sees the store but data not ready.
	found, ready := s.forwardFrom(30, 0x1000, 8)
	if !found || ready {
		t.Fatalf("forward = (%v,%v), want (true,false)", found, ready)
	}
	s.e[i1].dataReady = true
	if _, ready = s.forwardFrom(30, 0x1000, 8); !ready {
		t.Error("data-ready store must forward")
	}
	// An OLDER load (seq 5) must not see the store.
	if found, _ := s.forwardFrom(5, 0x1000, 8); found {
		t.Error("older load forwarded from younger store")
	}
	// Partial overlap forwards too (byte ranges intersect).
	if found, _ := s.forwardFrom(30, 0x1004, 8); !found {
		t.Error("overlapping range must match")
	}
	// Disjoint address does not.
	if found, _ := s.forwardFrom(30, 0x1008, 8); found {
		t.Error("disjoint range matched")
	}
}

func TestStoreQueueYoungestWins(t *testing.T) {
	s := newSQ(8)
	a := s.push(10, 0x1000, 8, false)
	b := s.push(20, 0x1000, 8, false)
	s.e[a].dataReady = true // older ready, younger not
	_, ready := s.forwardFrom(30, 0x1000, 8)
	if ready {
		t.Error("youngest matching store governs forwarding")
	}
	s.e[b].dataReady = true
	if _, ready = s.forwardFrom(30, 0x1000, 8); !ready {
		t.Error("ready youngest store must forward")
	}
}

func TestStoreQueueDrainAndDrop(t *testing.T) {
	s := newSQ(4)
	i1 := s.push(1, 0x100, 8, false)
	i2 := s.push(2, 0x200, 8, true) // runahead store: never drains to memory
	i3 := s.push(3, 0x300, 8, false)
	s.e[i1].committed = true
	s.e[i2].committed = true
	var drained []uint64
	s.drainHead(func(e *sqEntry) bool {
		drained = append(drained, e.addr)
		return true
	})
	// i1 drains to memory; i2 (runahead) pops silently; i3 uncommitted stops.
	if len(drained) != 1 || drained[0] != 0x100 {
		t.Errorf("drained %v, want [0x100]", drained)
	}
	if s.len() != 1 {
		t.Errorf("SQ len %d, want 1", s.len())
	}
	// Rejection (MSHR full) stops draining and keeps the entry.
	s.e[i3].committed = true
	s.drainHead(func(e *sqEntry) bool { return false })
	if s.len() != 1 {
		t.Error("rejected drain must keep the entry")
	}
	// Flush semantics: drop younger-than cutoff.
	s.push(9, 0x900, 8, false)
	s.dropYoungerThan(5)
	if s.len() != 1 {
		t.Errorf("dropYoungerThan left %d, want 1", s.len())
	}
}

func TestEventQueueOrdering(t *testing.T) {
	var q eventQueue
	// One near event (ring) and two far events (heap).
	q.schedule(0, completion{cycle: 30, slot: 3})
	q.schedule(0, completion{cycle: 200, slot: 4})
	q.schedule(0, completion{cycle: 10, slot: 1})
	q.schedule(0, completion{cycle: 100, slot: 2})
	if at, ok := q.nextAt(0); !ok || at != 10 {
		t.Fatalf("nextAt = %d,%v", at, ok)
	}
	if _, ok := q.popDue(5); ok {
		t.Fatal("nothing due at 5")
	}
	order := []int32{}
	for now := int64(0); now <= 200; now++ {
		for {
			ev, ok := q.popDue(now)
			if !ok {
				break
			}
			if ev.cycle != now {
				t.Fatalf("event for cycle %d popped at %d", ev.cycle, now)
			}
			order = append(order, ev.slot)
		}
	}
	if len(order) != 4 || order[0] != 1 || order[1] != 3 || order[2] != 2 || order[3] != 4 {
		t.Errorf("pop order %v", order)
	}
	if q.len() != 0 {
		t.Errorf("queue not drained: %d left", q.len())
	}
}

// Property: drained cycle-by-cycle (the core's contract — time never jumps
// past a pending event), the event queue pops completions in nondecreasing
// cycle order and loses none.
func TestEventQueueProperty(t *testing.T) {
	f := func(cycles []uint16) bool {
		var q eventQueue
		for i, c := range cycles {
			q.schedule(0, completion{cycle: int64(c), slot: int32(i)})
		}
		last := int64(-1)
		popped := 0
		for now := int64(0); now <= 1<<16; now++ {
			for {
				ev, ok := q.popDue(now)
				if !ok {
					break
				}
				if ev.cycle < last {
					return false
				}
				last = ev.cycle
				popped++
			}
		}
		return popped == len(cycles) && q.len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestFUPoolCapacities(t *testing.T) {
	cfg := Default(ModeOoO)
	fu := newFU(&cfg)
	fu.newCycle()
	// 3 ALU ops fit, the 4th does not.
	for i := 0; i < 3; i++ {
		if !fu.tryIssue(uarch.ClassIntAlu, 0) {
			t.Fatalf("alu %d rejected", i)
		}
	}
	if fu.tryIssue(uarch.ClassIntAlu, 0) {
		t.Error("4th ALU op must be rejected")
	}
	// Loads use a separate pool.
	if !fu.tryIssue(uarch.ClassLoad, 0) || !fu.tryIssue(uarch.ClassLoad, 0) {
		t.Error("load ports must be free")
	}
	if fu.tryIssue(uarch.ClassLoad, 0) {
		t.Error("3rd load must be rejected")
	}
	fu.newCycle()
	if !fu.tryIssue(uarch.ClassIntAlu, 1) {
		t.Error("newCycle must reset per-cycle counters")
	}
}

func TestFUPoolUnpipelinedDivide(t *testing.T) {
	cfg := Default(ModeOoO)
	fu := newFU(&cfg)
	fu.newCycle()
	if !fu.tryIssue(uarch.ClassIntDiv, 0) {
		t.Fatal("first divide rejected")
	}
	fu.newCycle()
	if fu.tryIssue(uarch.ClassIntDiv, 1) {
		t.Error("divide unit must be busy for its full latency")
	}
	after := int64(uarch.ClassIntDiv.Latency())
	fu.newCycle()
	if !fu.tryIssue(uarch.ClassIntDiv, after) {
		t.Error("divide unit must free after latency")
	}
}
