package core

import (
	"reflect"
	"testing"

	"repro/internal/prefetch"
	"repro/internal/trace"
	"repro/internal/workload"
	"repro/internal/workload/synth"
)

// skipTestCases pairs each mechanism with a memory-bound workload whose
// stall pattern exercises both skip mechanisms (inert spans and steady
// retry spans). The PF-augmented cases matter independently: hardware
// prefetchers add L2/L3 MSHR pressure (deep-level blocking probes run
// ahead of `now` by the hit-latency leads) and train prediction tables
// on traffic that is later rejected — both are wake-up/guard sources the
// skipper must honor.
var skipTestCases = []struct {
	wl   string
	mode Mode
	pf   string // prefetch variant name ("" = none)
}{
	{"libquantum", ModeOoO, ""},
	{"mcf", ModeOoO, ""},
	{"omnetpp", ModeRA, ""},
	{"milc", ModeRABuffer, ""},
	{"lbm", ModePRE, ""},
	{"milc", ModePREEMQ, ""},
	{"lbm", ModePREEMQ, "best-offset"},
	{"libquantum", ModeOoO, "stride+bo"},
	// The adaptive layer: throttled degrees change on feedback epochs
	// (training-guarded), the PRE-aware filter probes MSHR/line sources,
	// and lbm's deep stencil misses keep runahead fills in flight when
	// the HW engines drain — the interference case the filter exists for.
	{"lbm", ModePRE, "adaptive"},
	{"milc", ModePRE, "filtered"},
}

// TestCycleSkipLockstep is the strongest skip-correctness check: a
// reference core is stepped one cycle at a time, recording which cycles
// made progress or retried; a second core runs with skipping enabled, and
// every span it skips is checked against the reference — covering an
// active reference cycle means a wake-up source is missing from
// wakeBound/retrySkip. At the end, the complete statistics of both cores
// (pipeline, caches, DRAM, front end, runahead structures, rename) must
// be identical.
func TestCycleSkipLockstep(t *testing.T) {
	for _, tc := range skipTestCases {
		tc := tc
		name := tc.wl + "/" + tc.mode.String()
		if tc.pf != "" {
			name += "+" + tc.pf
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			w, err := workload.ByName(tc.wl)
			if err != nil {
				t.Fatal(err)
			}
			cfg := Default(tc.mode)
			if tc.pf != "" {
				v, err := prefetch.VariantByName(tc.pf)
				if err != nil {
					t.Fatal(err)
				}
				cfg.ApplyPrefetch(v)
			}
			lockstepCompare(t, cfg, w.New)
		})
	}
}

// TestCycleSkipLockstepSynth extends the lockstep contract to the
// stochastic scenario engine: a sampled multi-phase scenario (date-pinned
// seed, the same population the CI scenario-fuzz gate draws from) must
// skip without covering a single active reference cycle. Phase switches
// are exactly the discontinuities a stale wake-up bound would mishandle.
func TestCycleSkipLockstepSynth(t *testing.T) {
	sc, err := synth.DefaultSpace().Sample(synth.NthSeed(synth.DefaultBaseSeed, 0))
	if err != nil {
		t.Fatal(err)
	}
	// RA-buffer matters here independently: its replay engine scans far
	// ahead of the stalled window with the front end power-gated, so a
	// sampled scenario's phase switch can land mid-episode — the replay
	// cursor crosses the phase boundary (a ClassJump kills the chain) in
	// ways the fixed suite proxies never schedule.
	for _, mode := range []Mode{ModeOoO, ModeRABuffer, ModePRE} {
		mode := mode
		t.Run(sc.Name()+"/"+mode.String(), func(t *testing.T) {
			t.Parallel()
			lockstepCompare(t, Default(mode), sc.NewGenerator)
		})
	}

	// Front-end-bound scenario under the full adaptive PF stack: the L1I
	// engine trains and drains on the fetch path, so fetch-side retry
	// spans now have prefetch wake-up/guard sources too.
	fe, err := synth.FrontEndSpace().Sample(synth.NthSeed(synth.DefaultBaseSeed, 0))
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := prefetch.VariantByName("adaptive")
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{ModeOoO, ModePRE} {
		mode := mode
		t.Run(fe.Name()+"/frontend/"+mode.String()+"+adaptive", func(t *testing.T) {
			t.Parallel()
			cfg := Default(mode)
			cfg.ApplyPrefetch(adaptive)
			lockstepCompare(t, cfg, fe.NewGenerator)
		})
	}
}

// lockstepCompare runs the reference (skip-disabled) core cycle by cycle,
// then validates every span a skipping core jumps over, and finally
// requires all reported statistics to be identical.
func lockstepCompare(t *testing.T, cfg Config, newGen func() trace.Generator) {
	const commits = 25_000
	ref, _ := New(cfg, newGen())
	ref.DisableCycleSkip = true
	type cyc struct{ progressed, retry bool }
	rec := map[int64]cyc{}
	for ref.stats.Committed < commits+1000 {
		ref.Step()
		rec[ref.now-1] = cyc{ref.progressed, ref.retryBlocked}
	}

	c, _ := New(cfg, newGen())
	var pre, post, prevDelta retrySnap
	fpArmed, prevValid := false, false
	check := func(from, to int64, kind string) {
		for t2 := from; t2 < to; t2++ {
			if r, ok := rec[t2]; ok && (r.progressed || r.retry) {
				t.Fatalf("%s-skipped span [%d,%d) covers active cycle %d (progressed=%v retry=%v): missing wake-up source",
					kind, from, to, t2, r.progressed, r.retry)
			}
		}
	}
	// Mirror Run's skip loop so each span can be validated.
	for c.stats.Committed < commits {
		if fpArmed {
			c.captureRetry(&pre)
		}
		c.Step()
		switch {
		case c.progressed:
			fpArmed, prevValid = false, false
		case !c.retryBlocked:
			from := c.now
			c.skipAhead()
			check(from, c.now, "inert")
			fpArmed, prevValid = false, false
		case fpArmed:
			c.captureRetry(&post)
			delta := post.sub(&pre)
			if prevValid && delta == prevDelta && delta.replicable() {
				from := c.now
				if c.retrySkip(&delta) {
					fpArmed, prevValid = false, false
				}
				// Retry-skipped cycles must all have been retry
				// cycles in the reference (not progress).
				for t2 := from; t2 < c.now; t2++ {
					if r, ok := rec[t2]; ok && r.progressed {
						t.Fatalf("retry-skipped span [%d,%d) covers progress cycle %d", from, c.now, t2)
					}
				}
			} else {
				prevDelta, prevValid = delta, true
			}
		default:
			fpArmed = true
		}
	}
	if c.stats.SkippedAhead == 0 {
		t.Error("cycle skipping never engaged on a memory-bound workload")
	}

	// Drive the reference to the same committed count, then compare
	// every statistic the simulator reports.
	refC, _ := New(cfg, newGen())
	refC.DisableCycleSkip = true
	refC.Run(c.stats.Committed)

	skipped := c.stats.SkippedAhead
	c.stats.SkippedAhead = 0 // the only counter allowed to differ
	if !reflect.DeepEqual(*refC.stats, *c.stats) {
		t.Errorf("core stats diverge:\n  ref:  %+v\n  skip: %+v", *refC.stats, *c.stats)
	}
	c.stats.SkippedAhead = skipped
	if refC.now != c.now {
		t.Errorf("cycle count diverges: ref %d, skip %d", refC.now, c.now)
	}
	type pair struct {
		name      string
		ref, skip interface{}
	}
	for _, p := range []pair{
		{"L1I", refC.hier.L1I().Stats(), c.hier.L1I().Stats()},
		{"L1D", refC.hier.L1D().Stats(), c.hier.L1D().Stats()},
		{"L2", refC.hier.L2().Stats(), c.hier.L2().Stats()},
		{"L3", refC.hier.L3().Stats(), c.hier.L3().Stats()},
		{"DRAM", refC.hier.DRAM().Stats(), c.hier.DRAM().Stats()},
		{"fetch", refC.fetch.Stats(), c.fetch.Stats()},
		{"SST", refC.sst.Stats(), c.sst.Stats()},
		{"PRDQ", refC.prdq.Stats(), c.prdq.Stats()},
		{"EMQ", refC.emq.Stats(), c.emq.Stats()},
		{"rename", refC.ren.Stats(), c.ren.Stats()},
	} {
		if !reflect.DeepEqual(p.ref, p.skip) {
			t.Errorf("%s stats diverge:\n  ref:  %+v\n  skip: %+v", p.name, p.ref, p.skip)
		}
	}
}

// TestCycleSkipEngagement pins that skipping actually pays: on the
// memory-bound suite representatives the skipped fraction of simulated
// cycles must be substantial under the stall-heavy baseline.
func TestCycleSkipEngagement(t *testing.T) {
	w, err := workload.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	c, _ := New(Default(ModeOoO), w.New())
	c.Run(100_000)
	s := c.Stats()
	if frac := float64(s.SkippedAhead) / float64(s.Cycles); frac < 0.5 {
		t.Errorf("mcf/OoO skipped only %.0f%% of cycles (want >= 50%%): event-driven skipping regressed", 100*frac)
	}
}
