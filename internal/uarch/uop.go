// Package uarch defines the shared micro-architectural vocabulary used by
// every other package in the simulator: micro-ops (µops), architectural
// register identifiers, operation classes, and execution latencies.
//
// The simulator is trace-driven: workload generators emit a deterministic
// dynamic stream of Uop values (the "true path"), and the core model times
// their flow through the pipeline. Register values are opaque — data
// dependencies are expressed through architectural register numbers and
// memory addresses are carried directly on the µop.
package uarch

import "fmt"

// Reg identifies an architectural register. The zero value means "no
// register" (an absent source or destination operand).
//
// The architectural register file is split into an integer half and a
// floating-point half, mirroring the paper's 64-entry RAT (Table 1 uses
// 168 int + 168 fp physical registers behind a 64-entry architectural
// map). Integer registers occupy [IntRegBase, IntRegBase+NumIntRegs) and
// floating-point registers occupy [FPRegBase, FPRegBase+NumFPRegs).
type Reg uint8

// Architectural register-file geometry.
const (
	// RegNone marks an absent operand.
	RegNone Reg = 0
	// NumIntRegs is the number of integer architectural registers.
	NumIntRegs = 32
	// NumFPRegs is the number of floating-point architectural registers.
	NumFPRegs = 32
	// NumArchRegs is the total architectural register count (the RAT size).
	NumArchRegs = NumIntRegs + NumFPRegs
	// IntRegBase is the first integer register identifier.
	IntRegBase Reg = 1
	// FPRegBase is the first floating-point register identifier.
	FPRegBase Reg = IntRegBase + NumIntRegs
	// RegLimit is one past the largest valid register identifier.
	RegLimit Reg = FPRegBase + NumFPRegs
)

// IntReg returns the i-th integer architectural register.
// It panics if i is out of range; workload generators are expected to
// stay within [0, NumIntRegs).
func IntReg(i int) Reg {
	if i < 0 || i >= NumIntRegs {
		panic(fmt.Sprintf("uarch: integer register index %d out of range", i))
	}
	return IntRegBase + Reg(i)
}

// FPReg returns the i-th floating-point architectural register.
func FPReg(i int) Reg {
	if i < 0 || i >= NumFPRegs {
		panic(fmt.Sprintf("uarch: fp register index %d out of range", i))
	}
	return FPRegBase + Reg(i)
}

// Valid reports whether r names an actual architectural register.
func (r Reg) Valid() bool { return r >= IntRegBase && r < RegLimit }

// IsInt reports whether r is an integer architectural register.
func (r Reg) IsInt() bool { return r >= IntRegBase && r < FPRegBase }

// IsFP reports whether r is a floating-point architectural register.
func (r Reg) IsFP() bool { return r >= FPRegBase && r < RegLimit }

// String renders the register in assembly-like notation (r3, f7, -).
func (r Reg) String() string {
	switch {
	case r == RegNone:
		return "-"
	case r.IsInt():
		return fmt.Sprintf("r%d", int(r-IntRegBase))
	case r.IsFP():
		return fmt.Sprintf("f%d", int(r-FPRegBase))
	default:
		return fmt.Sprintf("reg(%d)", uint8(r))
	}
}

// Class categorizes a µop by the functional unit it needs and, for memory
// and control operations, by its pipeline-visible side effects.
type Class uint8

// Operation classes.
const (
	// ClassNop does nothing but occupy pipeline slots.
	ClassNop Class = iota
	// ClassIntAlu is a single-cycle integer operation (add, shift, logic).
	ClassIntAlu
	// ClassIntMul is a pipelined integer multiply.
	ClassIntMul
	// ClassIntDiv is an unpipelined integer divide.
	ClassIntDiv
	// ClassFPAdd is a pipelined floating-point add/sub/convert.
	ClassFPAdd
	// ClassFPMul is a pipelined floating-point multiply.
	ClassFPMul
	// ClassFPDiv is an unpipelined floating-point divide/sqrt.
	ClassFPDiv
	// ClassLoad reads memory at Uop.Addr.
	ClassLoad
	// ClassStore writes memory at Uop.Addr when it commits.
	ClassStore
	// ClassBranch is a conditional branch with a predictor-visible outcome.
	ClassBranch
	// ClassJump is an unconditional direct jump (always taken).
	ClassJump
	// ClassCall is a call: pushes a return address on the RAS.
	ClassCall
	// ClassReturn pops the RAS.
	ClassReturn
	// NumClasses counts the operation classes.
	NumClasses
)

var classNames = [NumClasses]string{
	"nop", "ialu", "imul", "idiv", "fadd", "fmul", "fdiv",
	"load", "store", "branch", "jump", "call", "ret",
}

// String returns the short mnemonic for the class.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// IsMem reports whether the class accesses data memory.
func (c Class) IsMem() bool { return c == ClassLoad || c == ClassStore }

// IsCtl reports whether the class redirects control flow.
func (c Class) IsCtl() bool {
	return c == ClassBranch || c == ClassJump || c == ClassCall || c == ClassReturn
}

// Latency returns the execution latency in cycles for non-memory classes.
// Memory latency is determined by the cache hierarchy, so ClassLoad
// returns only its address-generation component. The values follow the
// Haswell-era latencies used by Sniper's core model.
func (c Class) Latency() int {
	switch c {
	case ClassNop:
		return 1
	case ClassIntAlu:
		return 1
	case ClassIntMul:
		return 3
	case ClassIntDiv:
		return 18
	case ClassFPAdd:
		return 3
	case ClassFPMul:
		return 5
	case ClassFPDiv:
		return 18
	case ClassLoad, ClassStore:
		return 1 // address generation; memory time is added by the hierarchy
	case ClassBranch, ClassJump, ClassCall, ClassReturn:
		return 1
	default:
		return 1
	}
}

// Pipelined reports whether the functional unit for this class accepts a
// new µop every cycle (true) or is busy for the full latency (false).
func (c Class) Pipelined() bool {
	return c != ClassIntDiv && c != ClassFPDiv
}

// Uop is one dynamic micro-operation in the instruction stream.
//
// Seq is the dynamic instruction index (position in the true path) and is
// assigned by the trace machinery, not by workload generators. PC is the
// static program counter, used by the branch predictor, the SST, and the
// runahead-buffer slice walker to recognize repeated instances of the
// same static operation.
type Uop struct {
	// Seq is the dynamic sequence number (0-based position in the stream).
	Seq int64
	// PC is the static program counter of the instruction this µop
	// belongs to. Distinct static operations must use distinct PCs.
	PC uint64
	// Class selects the functional unit and side-effect semantics.
	Class Class
	// Src1 and Src2 are architectural source registers (RegNone if unused).
	Src1, Src2 Reg
	// Dst is the architectural destination register (RegNone if none).
	Dst Reg
	// Addr is the effective byte address for loads and stores.
	Addr uint64
	// Size is the access size in bytes for loads and stores.
	Size uint8
	// Taken is the true outcome for conditional branches; jumps, calls and
	// returns are always taken.
	Taken bool
	// Target is the taken-path target PC for control µops.
	Target uint64
}

// HasDst reports whether the µop writes an architectural register.
func (u *Uop) HasDst() bool { return u.Dst != RegNone }

// IsLoad reports whether the µop is a load.
func (u *Uop) IsLoad() bool { return u.Class == ClassLoad }

// IsStore reports whether the µop is a store.
func (u *Uop) IsStore() bool { return u.Class == ClassStore }

// IsBranch reports whether the µop is any control-flow operation.
func (u *Uop) IsBranch() bool { return u.Class.IsCtl() }

// CacheLine returns the 64-byte line address of the µop's memory access.
func (u *Uop) CacheLine() uint64 { return u.Addr &^ 63 }

// String renders a compact single-line disassembly, useful in tests and
// debug traces.
func (u *Uop) String() string {
	switch {
	case u.Class == ClassLoad:
		return fmt.Sprintf("#%d pc=%#x load %s <- [%#x](%s,%s)", u.Seq, u.PC, u.Dst, u.Addr, u.Src1, u.Src2)
	case u.Class == ClassStore:
		return fmt.Sprintf("#%d pc=%#x store [%#x] <- %s,%s", u.Seq, u.PC, u.Addr, u.Src1, u.Src2)
	case u.Class.IsCtl():
		return fmt.Sprintf("#%d pc=%#x %s taken=%v -> %#x (%s,%s)", u.Seq, u.PC, u.Class, u.Taken, u.Target, u.Src1, u.Src2)
	default:
		return fmt.Sprintf("#%d pc=%#x %s %s <- %s,%s", u.Seq, u.PC, u.Class, u.Dst, u.Src1, u.Src2)
	}
}

// LineSize is the cache line size in bytes used throughout the simulator.
const LineSize = 64

// LineAddr returns addr rounded down to a cache-line boundary.
func LineAddr(addr uint64) uint64 { return addr &^ (LineSize - 1) }
