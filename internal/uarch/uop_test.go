package uarch

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRegPartition(t *testing.T) {
	if RegNone.Valid() {
		t.Error("RegNone must not be valid")
	}
	for i := 0; i < NumIntRegs; i++ {
		r := IntReg(i)
		if !r.Valid() || !r.IsInt() || r.IsFP() {
			t.Errorf("IntReg(%d)=%v misclassified", i, r)
		}
	}
	for i := 0; i < NumFPRegs; i++ {
		r := FPReg(i)
		if !r.Valid() || !r.IsFP() || r.IsInt() {
			t.Errorf("FPReg(%d)=%v misclassified", i, r)
		}
	}
}

func TestRegPartitionDisjoint(t *testing.T) {
	seen := map[Reg]bool{}
	for i := 0; i < NumIntRegs; i++ {
		r := IntReg(i)
		if seen[r] {
			t.Fatalf("duplicate register id %v", r)
		}
		seen[r] = true
	}
	for i := 0; i < NumFPRegs; i++ {
		r := FPReg(i)
		if seen[r] {
			t.Fatalf("fp register id %v collides with int space", r)
		}
		seen[r] = true
	}
	if len(seen) != NumArchRegs {
		t.Fatalf("expected %d distinct registers, got %d", NumArchRegs, len(seen))
	}
}

func TestRegOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("IntReg(NumIntRegs) must panic")
		}
	}()
	IntReg(NumIntRegs)
}

func TestFPRegOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FPReg(-1) must panic")
		}
	}()
	FPReg(-1)
}

func TestRegString(t *testing.T) {
	cases := []struct {
		r    Reg
		want string
	}{
		{RegNone, "-"},
		{IntReg(0), "r0"},
		{IntReg(5), "r5"},
		{FPReg(0), "f0"},
		{FPReg(7), "f7"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("Reg(%d).String() = %q, want %q", uint8(c.r), got, c.want)
		}
	}
}

func TestClassPredicates(t *testing.T) {
	if !ClassLoad.IsMem() || !ClassStore.IsMem() {
		t.Error("load/store must be memory classes")
	}
	if ClassIntAlu.IsMem() {
		t.Error("ialu is not memory")
	}
	for _, c := range []Class{ClassBranch, ClassJump, ClassCall, ClassReturn} {
		if !c.IsCtl() {
			t.Errorf("%v must be a control class", c)
		}
	}
	if ClassLoad.IsCtl() {
		t.Error("load is not control")
	}
}

func TestClassLatencyPositive(t *testing.T) {
	for c := Class(0); c < NumClasses; c++ {
		if c.Latency() <= 0 {
			t.Errorf("class %v latency %d must be positive", c, c.Latency())
		}
	}
}

func TestUnpipelinedClasses(t *testing.T) {
	if ClassIntDiv.Pipelined() || ClassFPDiv.Pipelined() {
		t.Error("divides must be unpipelined")
	}
	if !ClassIntAlu.Pipelined() || !ClassLoad.Pipelined() {
		t.Error("alu and load must be pipelined")
	}
}

func TestClassStrings(t *testing.T) {
	for c := Class(0); c < NumClasses; c++ {
		if s := c.String(); s == "" || strings.HasPrefix(s, "class(") {
			t.Errorf("class %d has no name", uint8(c))
		}
	}
}

func TestUopPredicates(t *testing.T) {
	ld := Uop{Class: ClassLoad, Dst: IntReg(1), Addr: 0x1043}
	if !ld.IsLoad() || ld.IsStore() || ld.IsBranch() || !ld.HasDst() {
		t.Error("load predicates wrong")
	}
	if ld.CacheLine() != 0x1040 {
		t.Errorf("CacheLine = %#x, want 0x1040", ld.CacheLine())
	}
	st := Uop{Class: ClassStore, Addr: 64}
	if !st.IsStore() || st.HasDst() {
		t.Error("store predicates wrong")
	}
	br := Uop{Class: ClassBranch, Taken: true}
	if !br.IsBranch() {
		t.Error("branch predicate wrong")
	}
}

func TestLineAddrProperty(t *testing.T) {
	f := func(addr uint64) bool {
		l := LineAddr(addr)
		return l%LineSize == 0 && l <= addr && addr-l < LineSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUopStringCoverage(t *testing.T) {
	uops := []Uop{
		{Class: ClassLoad, Dst: IntReg(1), Src1: IntReg(2), Addr: 0x100},
		{Class: ClassStore, Src1: IntReg(1), Src2: IntReg(2), Addr: 0x200},
		{Class: ClassBranch, Taken: true, Target: 0x300, Src1: IntReg(3)},
		{Class: ClassIntAlu, Dst: IntReg(4), Src1: IntReg(5), Src2: IntReg(6)},
	}
	for _, u := range uops {
		if u.String() == "" {
			t.Errorf("empty String() for %v class", u.Class)
		}
	}
}
