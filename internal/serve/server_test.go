package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/serve/cache"
	"repro/internal/sim"
)

// testSpec is the canonical small job: a sampled synth population under
// two modes, the same shape the CI scenario-fuzz job submits.
func testSpec(seeds int) JobSpec {
	return JobSpec{
		Name:  "e2e",
		Modes: []string{"OoO", "PRE"},
		Population: &PopulationSpec{
			SpaceName: "default",
			Count:     seeds,
		},
		WarmupUops:  1_000,
		MeasureUops: 4_000,
	}
}

type testEnv struct {
	srv *Server
	ts  *httptest.Server
}

func newEnv(t *testing.T, cfg Config) *testEnv {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return &testEnv{srv: srv, ts: ts}
}

func (e *testEnv) submit(t *testing.T, spec JobSpec) JobStatus {
	t.Helper()
	b, _ := json.Marshal(spec)
	resp, err := http.Post(e.ts.URL+"/v1/jobs", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var msg bytes.Buffer
		msg.ReadFrom(resp.Body)
		t.Fatalf("submit: status %d: %s", resp.StatusCode, msg.String())
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// streamEvents reads the NDJSON stream to its end and returns every
// event. The stream only ends when the job is terminal, so this doubles
// as "wait for the job".
func (e *testEnv) streamEvents(t *testing.T, id string) []Event {
	t.Helper()
	resp, err := http.Get(e.ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("events content type = %q", ct)
	}
	var evs []Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		evs = append(evs, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return evs
}

func (e *testEnv) result(t *testing.T, id string) ([]byte, int) {
	t.Helper()
	resp, err := http.Get(e.ts.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return buf.Bytes(), resp.StatusCode
}

func (e *testEnv) stats(t *testing.T) Stats {
	t.Helper()
	resp, err := http.Get(e.ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// The headline flow: the same sweep submitted twice. The second run must
// be served from cache (>= 90% hits — here 100%) and return the exact
// bytes of the first.
func TestServerDoubleSubmitByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	c, err := cache.New(256, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	env := newEnv(t, Config{Cache: c, SimWorkers: 2})

	spec := testSpec(4)
	st1 := env.submit(t, spec)
	if st1.State != StateQueued {
		t.Fatalf("submitted job state = %q", st1.State)
	}
	evs1 := env.streamEvents(t, st1.ID)
	if last := evs1[len(evs1)-1]; last.Type != StateDone {
		t.Fatalf("job 1 terminal event = %+v", last)
	}
	res1, code := env.result(t, st1.ID)
	if code != http.StatusOK {
		t.Fatalf("result 1: status %d: %s", code, res1)
	}

	st2 := env.submit(t, spec)
	evs2 := env.streamEvents(t, st2.ID)
	if last := evs2[len(evs2)-1]; last.Type != StateDone {
		t.Fatalf("job 2 terminal event = %+v", last)
	}
	res2, code := env.result(t, st2.ID)
	if code != http.StatusOK {
		t.Fatalf("result 2: status %d", code)
	}
	if !bytes.Equal(res1, res2) {
		t.Fatal("cached resubmission is not byte-identical to the cold run")
	}

	// Every cell event of run 2 must be a cache hit.
	var cells2, cached2 int
	for _, ev := range evs2 {
		if ev.Type == "cell" {
			cells2++
			if ev.Cached {
				cached2++
			}
		}
	}
	if cells2 == 0 || cached2 != cells2 {
		t.Errorf("run 2 cached cells = %d/%d, want all cached", cached2, cells2)
	}

	final, ok := env.srv.Job(st2.ID)
	if !ok || final.State != StateDone {
		t.Fatalf("job 2 final status: %+v", final)
	}
	if final.CacheHits != final.NumUnique {
		t.Errorf("job 2 cache hits = %d, want %d", final.CacheHits, final.NumUnique)
	}
	if final.Meta == nil || final.Meta.CacheHits != final.NumUnique {
		t.Errorf("job 2 meta missing hit accounting: %+v", final.Meta)
	}

	stats := env.stats(t)
	if stats.JobsCompleted != 2 || stats.JobsSubmitted != 2 {
		t.Errorf("stats jobs = %+v", stats)
	}
	if stats.CacheHitRate < 0.45 { // run1 all misses, run2 all hits => 0.5
		t.Errorf("stats hit rate = %v, want ~0.5", stats.CacheHitRate)
	}
	if len(stats.Jobs) != 2 {
		t.Fatalf("stats.Jobs = %+v, want 2 timings", stats.Jobs)
	}
	for _, jt := range stats.Jobs {
		if jt.WallClockSeconds <= 0 {
			t.Errorf("job %s wall clock = %v, want > 0", jt.ID, jt.WallClockSeconds)
		}
	}
}

func TestServerHealthAndMetrics(t *testing.T) {
	env := newEnv(t, Config{})
	resp, err := http.Get(env.ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: status %d", resp.StatusCode)
	}

	resp, err = http.Get(env.ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	for _, name := range []string{"serve/cache/hits", "serve/jobs/submitted", "serve/queue/depth"} {
		if !strings.Contains(buf.String(), name) {
			t.Errorf("metrics missing %q:\n%s", name, buf.String())
		}
	}
}

func TestServerRejectsBadSpecs(t *testing.T) {
	env := newEnv(t, Config{})
	bad := []struct {
		name string
		body string
	}{
		{"not json", "{nope"},
		{"no modes", `{"workloads":["mcf"],"measure_uops":1000}`},
		{"unknown mode", `{"modes":["warp-drive"],"workloads":["mcf"],"measure_uops":1000}`},
		{"no workloads", `{"modes":["OoO"],"measure_uops":1000}`},
		{"no window", `{"modes":["OoO"],"workloads":["mcf"]}`},
		{"unknown knob", `{"modes":["OoO"],"workloads":["mcf"],"measure_uops":1000,"points":[{"name":"p","knobs":{"warp_factor":9}}]}`},
		{"unknown space", `{"modes":["OoO"],"measure_uops":1000,"population":{"space_name":"nope","count":2}}`},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(env.ts.URL+"/v1/jobs", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("status = %d, want 400", resp.StatusCode)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
				t.Errorf("400 body lacks an error message (%v)", err)
			}
		})
	}
}

func TestServerUnknownJob(t *testing.T) {
	env := newEnv(t, Config{})
	for _, req := range []struct{ method, path string }{
		{"GET", "/v1/jobs/nope"},
		{"GET", "/v1/jobs/nope/events"},
		{"GET", "/v1/jobs/nope/result"},
		{"DELETE", "/v1/jobs/nope"},
	} {
		r, _ := http.NewRequest(req.method, env.ts.URL+req.path, nil)
		resp, err := http.DefaultClient.Do(r)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s %s: status %d, want 404", req.method, req.path, resp.StatusCode)
		}
	}
}

// Cancellation: a running job cancelled over HTTP must converge to the
// cancelled state with a clean terminal event, and its result endpoint
// must report the state instead of hanging or returning partial data.
//
//sim:wallclock test start-up deadline polling only
func TestServerCancelRunningJob(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	env := newEnv(t, Config{SimWorkers: 1})
	spec := testSpec(4)
	spec.MeasureUops = 2_000_000 // long enough to still be running when cancelled
	st := env.submit(t, spec)

	// Wait until it actually starts.
	deadline := time.Now().Add(10 * time.Second)
	for {
		cur, ok := env.srv.Job(st.ID)
		if !ok {
			t.Fatal("job vanished")
		}
		if cur.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started: %+v", cur)
		}
		time.Sleep(5 * time.Millisecond)
	}

	r, _ := http.NewRequest("DELETE", env.ts.URL+"/v1/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(r)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("cancel: status %d", resp.StatusCode)
	}

	evs := env.streamEvents(t, st.ID) // ends only at the terminal event
	last := evs[len(evs)-1]
	if last.Type != StateCancelled {
		t.Fatalf("terminal event = %+v, want cancelled", last)
	}
	if last.Error == "" || !strings.Contains(last.Error, "cancelled") {
		t.Errorf("cancelled event error = %q, want a clean cancellation message", last.Error)
	}
	if _, code := env.result(t, st.ID); code != http.StatusConflict {
		t.Errorf("result of cancelled job: status %d, want 409", code)
	}
	if s := env.stats(t); s.JobsCancelled != 1 {
		t.Errorf("stats cancelled = %d, want 1", s.JobsCancelled)
	}
}

// Backpressure: with the single worker pinned on a long job and the
// queue full, further submissions are rejected with 503 instead of
// queueing without bound.
//
//sim:wallclock test start-up deadline polling only
func TestServerQueueFull(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	env := newEnv(t, Config{SimWorkers: 1, QueueDepth: 1, JobWorkers: 1})
	long := testSpec(1)
	long.MeasureUops = 2_000_000

	st := env.submit(t, long)
	defer env.srv.Cancel(st.ID)
	deadline := time.Now().Add(10 * time.Second)
	for {
		cur, _ := env.srv.Job(st.ID)
		if cur.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started: %+v", cur)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Worker busy; depth-1 queue takes exactly one more.
	st2 := env.submit(t, testSpec(1))
	defer env.srv.Cancel(st2.ID)

	b, _ := json.Marshal(testSpec(1))
	resp, err := http.Post(env.ts.URL+"/v1/jobs", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-full submit: status %d, want 503", resp.StatusCode)
	}
}

// Re-verification: with VerifyFraction=1 every hit re-simulates. A clean
// cache passes; a poisoned entry fails the job with a mismatch error.
func TestServerReVerification(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	c, err := cache.New(256, "")
	if err != nil {
		t.Fatal(err)
	}
	env := newEnv(t, Config{Cache: c, SimWorkers: 2, VerifyFraction: 1})

	spec := testSpec(2)
	st1 := env.submit(t, spec)
	env.streamEvents(t, st1.ID)
	res1, code := env.result(t, st1.ID)
	if code != http.StatusOK {
		t.Fatalf("cold run failed: %s", res1)
	}

	// Clean cache: full re-verification passes and matches bytes.
	st2 := env.submit(t, spec)
	env.streamEvents(t, st2.ID)
	res2, code := env.result(t, st2.ID)
	if code != http.StatusOK {
		t.Fatalf("verified run failed: %s", res2)
	}
	if !bytes.Equal(res1, res2) {
		t.Fatal("verified run not byte-identical")
	}
	if s := env.stats(t); s.VerifiedHits == 0 || s.VerifyFailures != 0 {
		t.Fatalf("verify counters after clean runs: %+v", s)
	}

	// Poison one entry: same key, wrong result. The next submission must
	// detect the divergence and fail.
	m, err := spec.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	k := plan.Key(0)
	c.Put(k, sim.Result{Workload: k.Workload, Cycles: 123456789})

	st3 := env.submit(t, spec)
	evs := env.streamEvents(t, st3.ID)
	last := evs[len(evs)-1]
	if last.Type != StateFailed {
		t.Fatalf("poisoned-cache job terminal event = %+v, want failed", last)
	}
	if !strings.Contains(last.Error, "re-verification mismatch") {
		t.Errorf("failure message = %q, want a re-verification mismatch", last.Error)
	}
	if s := env.stats(t); s.VerifyFailures == 0 {
		t.Errorf("verify failures not counted: %+v", s)
	}
}

// The declarative spec must reach every compile path: fixed workloads,
// points with variants and knobs, baseline injection.
func TestJobSpecCompilesFullMatrix(t *testing.T) {
	spec := JobSpec{
		Name:      "full",
		Workloads: []string{"mcf", "libquantum"},
		Modes:     []string{"PRE"},
		Points: []PointSpec{
			{Name: "base"},
			{Name: "sst=256", Knobs: map[string]int64{"sst_size": 256}},
			{Name: "stride", PrefetchVariant: "stride"},
		},
		MeasureUops: 10_000,
		AddBaseline: true,
	}
	m, err := spec.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// 3 points x 2 workloads x PRE = 6 cells; the injected OoO baselines
	// are extra unique runs (one per point x workload), not cells.
	if got := plan.NumCells(); got != 6 {
		t.Errorf("cells = %d, want 6", got)
	}
	// Injected baselines add unique runs beyond the cells (dedup may
	// collapse baselines whose canonical OoO configs coincide).
	if plan.NumUnique() <= plan.NumCells() {
		t.Errorf("unique runs = %d, want > %d (baselines injected)", plan.NumUnique(), plan.NumCells())
	}
	// The knob must actually land in the config of its point's cells.
	found := false
	for ui := 0; ui < plan.NumUnique(); ui++ {
		k := plan.Key(ui)
		if k.Config.SSTSize == 256 {
			found = true
		}
	}
	if !found {
		t.Error("sst_size knob never reached a cell config")
	}
	if _, err := json.Marshal(spec); err != nil {
		t.Errorf("spec must round-trip as JSON: %v", err)
	}
}

func TestKnobNamesSortedAndComplete(t *testing.T) {
	names := KnobNames()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("KnobNames not sorted: %v", names)
		}
	}
	if len(names) != len(knobSetters) {
		t.Fatalf("KnobNames incomplete: %v", names)
	}
}
