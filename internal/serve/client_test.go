package serve

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/serve/cache"
)

// The client and server share one set of wire types; this drives the
// whole submit -> stream -> result -> stats round trip through Client.
func TestClientRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	c, err := cache.New(64, "")
	if err != nil {
		t.Fatal(err)
	}
	env := newEnv(t, Config{Cache: c, SimWorkers: 2})
	cl := NewClient(env.ts.URL)
	ctx := context.Background()

	st, err := cl.Submit(ctx, testSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	var cells int
	final, err := cl.Wait(ctx, st.ID, func(ev Event) error {
		if ev.Type == "cell" {
			cells++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || cells != final.NumUnique {
		t.Fatalf("final = %+v, cells streamed = %d", final, cells)
	}
	res1, err := cl.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}

	// Resubmission through the client: cached, byte-identical.
	st2, err := cl.Submit(ctx, testSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	final2, err := cl.Wait(ctx, st2.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final2.CacheHits != final2.NumUnique {
		t.Errorf("resubmission hits = %d/%d", final2.CacheHits, final2.NumUnique)
	}
	res2, err := cl.Result(ctx, st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res1, res2) {
		t.Fatal("client-fetched results not byte-identical across resubmission")
	}

	stats, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.JobsCompleted != 2 {
		t.Errorf("stats.JobsCompleted = %d, want 2", stats.JobsCompleted)
	}
}

// Server-side errors must come back as errors carrying the server's
// message, not as silent zero values.
func TestClientSurfacesServerErrors(t *testing.T) {
	env := newEnv(t, Config{})
	cl := NewClient(env.ts.URL)
	ctx := context.Background()

	if _, err := cl.Submit(ctx, JobSpec{}); err == nil || !strings.Contains(err.Error(), "modes") {
		t.Errorf("empty spec error = %v, want a modes validation message", err)
	}
	if _, err := cl.Job(ctx, "nope"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("unknown job error = %v, want 404", err)
	}
	if err := cl.Cancel(ctx, "nope"); err == nil {
		t.Error("cancelling an unknown job must error")
	}
	if _, err := cl.Result(ctx, "nope"); err == nil {
		t.Error("result of an unknown job must error")
	}
}
