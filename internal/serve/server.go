// Package serve is the simulation job server behind cmd/simd: sweeps as
// a service. Clients POST a declarative JobSpec, the server expands it
// through the same orchestrator every local sweep uses (internal/exp),
// runs only the cells the content-addressed result cache cannot supply,
// and streams per-cell completion events over NDJSON while the job runs.
// Because results JSON is byte-identical at any worker count and a cache
// key identifies a run completely (exp.CellKey), a cached job's document
// is byte-for-byte the document a cold run would have produced — which
// the opt-in re-verification mode spot-checks by re-simulating a sampled
// fraction of hits and failing the job on any divergence.
//
// Endpoints:
//
//	POST   /v1/jobs             submit a JobSpec, get a JobStatus
//	GET    /v1/jobs/{id}        poll one job's JobStatus
//	GET    /v1/jobs/{id}/events NDJSON per-cell event stream (ends with
//	                            a terminal done/failed/cancelled event)
//	GET    /v1/jobs/{id}/result the schema-versioned results JSON
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/stats            queue depth, cache hit rate, timings
//	GET    /v1/metrics          the same, as a telemetry metrics snapshot
//	GET    /healthz             liveness
package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"context"

	"repro/internal/exp"
	"repro/internal/serve/cache"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Job states.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// Config parameterizes a Server.
type Config struct {
	// Cache is the shared result cache; nil runs every cell cold.
	Cache *cache.Cache
	// SimWorkers is the per-job simulation pool width (0 = one per CPU).
	SimWorkers int
	// QueueDepth bounds the number of jobs waiting to run; submissions
	// beyond it are rejected with 503 instead of queueing unboundedly.
	// 0 selects a default of 64.
	QueueDepth int
	// JobWorkers is the number of jobs executing concurrently (each with
	// its own SimWorkers-wide pool). 0 selects 1 — jobs queue FIFO and
	// each saturates the machine in turn.
	JobWorkers int
	// VerifyFraction re-simulates roughly this fraction of cache hits
	// (deterministically sampled by key hash) and fails the job if a
	// re-simulated result diverges from the cached one. 0 disables
	// re-verification; 1 re-simulates every hit.
	VerifyFraction float64
}

// Event is one NDJSON line of a job's event stream. Type "cell" reports
// a completed unique run; the terminal types "done", "failed" and
// "cancelled" are always the last line.
type Event struct {
	Type           string  `json:"type"`
	Done           int     `json:"done,omitempty"`
	Total          int     `json:"total,omitempty"`
	Workload       string  `json:"workload,omitempty"`
	Mode           string  `json:"mode,omitempty"`
	Cached         bool    `json:"cached,omitempty"`
	Seconds        float64 `json:"seconds,omitempty"`
	ElapsedSeconds float64 `json:"elapsed_seconds,omitempty"`
	Error          string  `json:"error,omitempty"`
}

// JobStatus is the polled view of one job.
type JobStatus struct {
	ID    string `json:"id"`
	Name  string `json:"name,omitempty"`
	State string `json:"state"`
	// NumCells and NumUnique mirror the plan; DoneCells counts completed
	// unique runs so far.
	NumCells  int `json:"num_cells"`
	NumUnique int `json:"num_unique"`
	DoneCells int `json:"done_cells"`
	// CacheHits / CacheMisses split the completed unique runs.
	CacheHits   int `json:"cache_hits"`
	CacheMisses int `json:"cache_misses"`
	// Error is set for failed jobs.
	Error string `json:"error,omitempty"`
	// Meta carries the run's execution record once the job is done —
	// wall-clock, pool width, per-cell timing aggregates, utilization.
	Meta *exp.RunMeta `json:"meta,omitempty"`
}

// JobTiming is one completed job's timing summary, reported by /v1/stats
// so hot-vs-cold wall-clock is comparable without fetching each job.
type JobTiming struct {
	ID               string  `json:"id"`
	Name             string  `json:"name,omitempty"`
	State            string  `json:"state"`
	UniqueRuns       int     `json:"unique_runs"`
	CacheHits        int     `json:"cache_hits"`
	WallClockSeconds float64 `json:"wall_clock_seconds"`
}

// Stats is the /v1/stats document.
type Stats struct {
	QueueDepth     int         `json:"queue_depth"`
	RunningJobs    int         `json:"running_jobs"`
	JobsSubmitted  int64       `json:"jobs_submitted"`
	JobsCompleted  int64       `json:"jobs_completed"`
	JobsFailed     int64       `json:"jobs_failed"`
	JobsCancelled  int64       `json:"jobs_cancelled"`
	Cache          cache.Stats `json:"cache"`
	CacheHitRate   float64     `json:"cache_hit_rate"`
	VerifiedHits   int64       `json:"verified_hits"`
	VerifyFailures int64       `json:"verify_failures"`
	// CellSecondsTotal and WallClockSecondsTotal aggregate the RunMeta
	// timings of every completed job.
	CellSecondsTotal      float64 `json:"cell_seconds_total"`
	WallClockSecondsTotal float64 `json:"wall_clock_seconds_total"`
	// Jobs lists recent completed/failed/cancelled jobs, newest last
	// (bounded; see maxTimings).
	Jobs []JobTiming `json:"jobs,omitempty"`
}

// maxTimings bounds Stats.Jobs.
const maxTimings = 50

// job is the server-side state of one submission.
type job struct {
	id     string
	spec   JobSpec
	plan   *exp.Plan
	ctx    context.Context
	cancel context.CancelFunc

	mu         sync.Mutex
	state      string
	events     []Event
	errMsg     string
	resultJSON []byte
	meta       *exp.RunMeta
	hits, miss int
	// pendingVerify holds cached results whose keys were sampled for
	// re-verification: the lookup returned "miss" to force a fresh
	// simulation, and the store compares it against this expectation.
	pendingVerify map[string]sim.Result
	verifyErr     error
	startedAt     time.Time
}

// Server runs jobs from a bounded queue on a fixed set of job workers.
type Server struct {
	cfg   Config
	mu    sync.Mutex
	jobs  map[string]*job
	order []string
	next  int

	submitted, completed, failed, cancelled int64
	verifiedHits, verifyFailures            int64
	cellSecondsTotal, wallSecondsTotal      float64
	running                                 int
	timings                                 []JobTiming

	queue chan *job
	quit  chan struct{}
	wg    sync.WaitGroup
}

// New builds a Server and starts its job workers. Close releases them.
func New(cfg Config) *Server {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.JobWorkers <= 0 {
		cfg.JobWorkers = 1
	}
	s := &Server{
		cfg:   cfg,
		jobs:  make(map[string]*job),
		queue: make(chan *job, cfg.QueueDepth),
		quit:  make(chan struct{}),
	}
	for i := 0; i < cfg.JobWorkers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				select {
				case <-s.quit:
					return
				case j := <-s.queue:
					s.runJob(j)
				}
			}
		}()
	}
	return s
}

// Close cancels every job and stops the workers after their current job.
func (s *Server) Close() {
	s.mu.Lock()
	for _, id := range s.order {
		s.jobs[id].cancel()
	}
	s.mu.Unlock()
	close(s.quit)
	s.wg.Wait()
}

// Submit validates a spec, expands it, and enqueues the job. It returns
// the queued job's status; spec errors come back unwrapped so HTTP can
// report them as 400s.
func (s *Server) Submit(spec JobSpec) (JobStatus, error) {
	m, err := spec.Matrix()
	if err != nil {
		return JobStatus{}, err
	}
	plan, err := m.Expand()
	if err != nil {
		return JobStatus{}, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		spec: spec, plan: plan, ctx: ctx, cancel: cancel,
		state:         StateQueued,
		pendingVerify: make(map[string]sim.Result),
	}
	s.mu.Lock()
	s.next++
	j.id = "j" + strconv.Itoa(s.next)
	select {
	case s.queue <- j:
	default:
		s.mu.Unlock()
		cancel()
		return JobStatus{}, errQueueFull
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.submitted++
	s.mu.Unlock()
	return j.status(), nil
}

// errQueueFull distinguishes backpressure (503) from bad specs (400).
var errQueueFull = fmt.Errorf("serve: job queue full, retry later")

// Job returns the status of one job.
func (s *Server) Job(id string) (JobStatus, bool) {
	if j := s.job(id); j != nil {
		return j.status(), true
	}
	return JobStatus{}, false
}

// Cancel cancels a queued or running job. Cancelling a finished job is a
// no-op; unknown ids report false.
func (s *Server) Cancel(id string) bool {
	j := s.job(id)
	if j == nil {
		return false
	}
	j.cancel()
	return true
}

// Result returns a finished job's results document.
func (s *Server) Result(id string) ([]byte, error) {
	j := s.job(id)
	if j == nil {
		return nil, fmt.Errorf("serve: unknown job %q", id)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateDone:
		return j.resultJSON, nil
	case StateFailed, StateCancelled:
		return nil, fmt.Errorf("serve: job %s %s: %s", id, j.state, j.errMsg)
	default:
		return nil, fmt.Errorf("serve: job %s still %s", id, j.state)
	}
}

func (s *Server) job(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// Stats snapshots the server-wide counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		QueueDepth:            len(s.queue),
		RunningJobs:           s.running,
		JobsSubmitted:         s.submitted,
		JobsCompleted:         s.completed,
		JobsFailed:            s.failed,
		JobsCancelled:         s.cancelled,
		VerifiedHits:          s.verifiedHits,
		VerifyFailures:        s.verifyFailures,
		CellSecondsTotal:      s.cellSecondsTotal,
		WallClockSecondsTotal: s.wallSecondsTotal,
		Jobs:                  append([]JobTiming(nil), s.timings...),
	}
	if s.cfg.Cache != nil {
		st.Cache = s.cfg.Cache.Stats()
		st.CacheHitRate = st.Cache.HitRate()
	}
	return st
}

// Metrics publishes the server's counters into a fresh telemetry
// registry — the same namespace idiom the simulator's own counters use,
// so one scrape format covers both.
func (s *Server) Metrics() *telemetry.Registry {
	st := s.Stats()
	reg := telemetry.NewRegistry()
	reg.Counter("serve/jobs/submitted", st.JobsSubmitted)
	reg.Counter("serve/jobs/completed", st.JobsCompleted)
	reg.Counter("serve/jobs/failed", st.JobsFailed)
	reg.Counter("serve/jobs/cancelled", st.JobsCancelled)
	reg.Counter("serve/queue/depth", int64(st.QueueDepth))
	reg.Counter("serve/queue/running", int64(st.RunningJobs))
	reg.Counter("serve/cache/hits", st.Cache.Hits)
	reg.Counter("serve/cache/misses", st.Cache.Misses)
	reg.Counter("serve/cache/evictions", st.Cache.Evictions)
	reg.Counter("serve/cache/disk_hits", st.Cache.DiskHits)
	reg.Counter("serve/cache/disk_writes", st.Cache.DiskWrites)
	reg.Counter("serve/cache/corrupt_rejected", st.Cache.CorruptRejected)
	reg.Counter("serve/verify/hits", st.VerifiedHits)
	reg.Counter("serve/verify/failures", st.VerifyFailures)
	reg.Gauge("serve/cache/hit_rate", st.CacheHitRate)
	reg.Gauge("serve/time/cell_seconds_total", st.CellSecondsTotal)
	reg.Gauge("serve/time/wall_clock_seconds_total", st.WallClockSecondsTotal)
	return reg
}

// shouldVerify deterministically samples keys for hit re-verification:
// the leading 8 hex digits of the content address, as a fraction of the
// 32-bit space. Deterministic sampling keeps cached sweeps reproducible
// — the same hits are re-checked on every run.
func (s *Server) shouldVerify(k exp.CellKey) bool {
	f := s.cfg.VerifyFraction
	if f <= 0 {
		return false
	}
	if f >= 1 {
		return true
	}
	v, err := strconv.ParseUint(k.Hash()[:8], 16, 64)
	if err != nil {
		return false
	}
	return float64(v) < f*float64(1<<32)
}

// runJob executes one job end to end on a worker goroutine.
func (s *Server) runJob(j *job) {
	if j.ctx.Err() != nil {
		s.finish(j, StateCancelled, nil, nil, "cancelled while queued")
		return
	}
	j.mu.Lock()
	j.state = StateRunning
	j.startedAt = time.Now() //sim:wallclock job timing for JobTiming/meta, not results
	j.mu.Unlock()
	s.mu.Lock()
	s.running++
	s.mu.Unlock()

	opts := exp.RunOptions{
		Workers: s.cfg.SimWorkers,
		Context: j.ctx,
		Progress: func(ev exp.ProgressEvent) {
			j.addEvent(Event{
				Type: "cell", Done: ev.Done, Total: ev.Total,
				Workload: ev.Workload, Mode: ev.Mode.String(),
				Cached: ev.Cached, Seconds: ev.Seconds,
				ElapsedSeconds: ev.ElapsedSeconds,
			}, ev.Cached)
		},
	}
	if c := s.cfg.Cache; c != nil {
		opts.Lookup = func(k exp.CellKey) (sim.Result, bool) {
			r, ok := c.Get(k)
			if !ok {
				return r, false
			}
			if s.shouldVerify(k) {
				// Force a fresh simulation; Store compares it against
				// this expectation. The forced run reports as a miss in
				// the job's hit accounting — it really did simulate.
				j.mu.Lock()
				j.pendingVerify[k.Hash()] = r
				j.mu.Unlock()
				return sim.Result{}, false
			}
			return r, true
		}
		opts.Store = func(k exp.CellKey, r sim.Result) {
			j.mu.Lock()
			expected, pending := j.pendingVerify[k.Hash()]
			delete(j.pendingVerify, k.Hash())
			j.mu.Unlock()
			if pending {
				s.mu.Lock()
				s.verifiedHits++
				if expected != r {
					s.verifyFailures++
				}
				s.mu.Unlock()
				if expected != r {
					j.mu.Lock()
					if j.verifyErr == nil {
						j.verifyErr = fmt.Errorf(
							"re-verification mismatch for %s/%s (key %s): cached result diverges from fresh simulation",
							r.Workload, r.Mode, k.Hash()[:12])
					}
					j.mu.Unlock()
					// Re-store the fresh result: on divergence the new
					// simulation is ground truth.
				}
			}
			c.Put(k, r)
		}
	}

	set, err := j.plan.RunOpts(opts)
	if err != nil {
		state := StateFailed
		if j.ctx.Err() != nil {
			state = StateCancelled
		}
		s.finish(j, state, nil, nil, err.Error())
		return
	}
	j.mu.Lock()
	verifyErr := j.verifyErr
	j.mu.Unlock()
	if verifyErr != nil {
		s.finish(j, StateFailed, nil, nil, verifyErr.Error())
		return
	}
	var buf bytes.Buffer
	if err := set.WriteJSON(&buf); err != nil {
		s.finish(j, StateFailed, nil, nil, err.Error())
		return
	}
	meta := set.Meta()
	s.finish(j, StateDone, buf.Bytes(), &meta, "")
}

// finish moves a job to a terminal state, appends the terminal event,
// and updates the server aggregates.
func (s *Server) finish(j *job, state string, result []byte, meta *exp.RunMeta, errMsg string) {
	j.mu.Lock()
	wasRunning := j.state == StateRunning
	j.state = state
	j.resultJSON = result
	j.meta = meta
	j.errMsg = errMsg
	ev := Event{Type: state}
	if errMsg != "" && state != StateDone {
		ev.Error = errMsg
	}
	j.events = append(j.events, ev)
	timing := JobTiming{
		ID: j.id, Name: j.spec.Name, State: state,
		UniqueRuns: j.plan.NumUnique(), CacheHits: j.hits,
	}
	if meta != nil {
		timing.WallClockSeconds = meta.WallClockSeconds
	} else if wasRunning {
		timing.WallClockSeconds = time.Since(j.startedAt).Seconds() //sim:wallclock job timing for JobTiming/meta, not results
	}
	j.mu.Unlock()

	s.mu.Lock()
	if wasRunning {
		s.running--
	}
	switch state {
	case StateDone:
		s.completed++
	case StateFailed:
		s.failed++
	case StateCancelled:
		s.cancelled++
	}
	if meta != nil {
		s.cellSecondsTotal += meta.CellSecondsTotal
		s.wallSecondsTotal += meta.WallClockSeconds
	}
	s.timings = append(s.timings, timing)
	if len(s.timings) > maxTimings {
		s.timings = s.timings[len(s.timings)-maxTimings:]
	}
	s.mu.Unlock()
}

// addEvent appends a cell event and updates hit accounting.
func (j *job) addEvent(ev Event, cached bool) {
	j.mu.Lock()
	j.events = append(j.events, ev)
	if cached {
		j.hits++
	} else {
		j.miss++
	}
	j.mu.Unlock()
}

// eventsSince returns events[from:] and whether the stream is complete
// (the job is terminal and every event has been handed out).
func (j *job) eventsSince(from int) ([]Event, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	evs := append([]Event(nil), j.events[from:]...)
	terminal := j.state == StateDone || j.state == StateFailed || j.state == StateCancelled
	return evs, terminal && from+len(evs) == len(j.events)
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		ID: j.id, Name: j.spec.Name, State: j.state,
		NumCells: j.plan.NumCells(), NumUnique: j.plan.NumUnique(),
		DoneCells: j.hits + j.miss,
		CacheHits: j.hits, CacheMisses: j.miss,
		Error: j.errMsg,
		Meta:  j.meta,
	}
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec JobSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("decoding job spec: %w", err))
			return
		}
		st, err := s.Submit(spec)
		if err == errQueueFull {
			httpError(w, http.StatusServiceUnavailable, err)
			return
		}
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusAccepted, st)
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, ok := s.Job(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		if !s.Cancel(r.PathValue("id")) {
			httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		b, err := s.Result(id)
		if err != nil {
			code := http.StatusConflict
			if _, ok := s.Job(id); !ok {
				code = http.StatusNotFound
			}
			httpError(w, code, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(b)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Metrics())
	})
	return mux
}

// handleEvents streams a job's events as NDJSON: everything recorded so
// far, then live events until the terminal one. The stream is the
// natural "wait for completion" primitive — it ends exactly when the job
// does.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	from := 0
	for {
		evs, complete := j.eventsSince(from)
		for _, ev := range evs {
			if err := enc.Encode(ev); err != nil {
				return
			}
		}
		from += len(evs)
		if len(evs) > 0 && fl != nil {
			fl.Flush()
		}
		if complete {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-time.After(25 * time.Millisecond):
		}
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintf(w, `{"error":%q}`, err.Error())
		return
	}
	w.Write(append(b, '\n'))
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
