// The wire job spec: a fully declarative, JSON-serializable description
// of one experiment matrix. exp.Matrix itself carries function hooks
// (Point.Apply, Options.Configure) and so cannot cross a socket; JobSpec
// is the closed-world equivalent — named suite workloads, named modes,
// named prefetch variants, a whitelisted knob table, and a synth
// population — that both the server and presim.Client share, so the CLI,
// the examples, and remote users all speak one API.
package serve

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/workload/synth"
)

// JobSpec declares one experiment: the cross-product of Points x
// (Workloads + Population) x Modes under one measurement window. It maps
// 1:1 onto exp.Matrix; everything here is plain data.
type JobSpec struct {
	// Name labels the job in results documents and logs.
	Name string `json:"name,omitempty"`
	// Workloads names fixed suite proxies ("mcf", "libquantum", ...).
	// Either Workloads or Population (or both) must be present.
	Workloads []string `json:"workloads,omitempty"`
	// Modes names the mechanisms to simulate ("OoO", "RA", "RA-buffer",
	// "PRE", "PRE+EMQ"). Required.
	Modes []string `json:"modes"`
	// Points are the configuration points; empty means a single default
	// point.
	Points []PointSpec `json:"points,omitempty"`
	// Population adds a sampled synthetic workload axis.
	Population *PopulationSpec `json:"population,omitempty"`
	// WarmupUops and MeasureUops set the simulation window. MeasureUops
	// is required (> 0); WarmupUops defaults to 0.
	WarmupUops  int64 `json:"warmup_uops,omitempty"`
	MeasureUops int64 `json:"measure_uops"`
	// Fidelity selects the simulation tier ("exact" by default,
	// "fast-runahead" for the approximate sweep tier).
	Fidelity string `json:"fidelity,omitempty"`
	// Baseline names the speedup denominator mode (default "OoO").
	Baseline string `json:"baseline,omitempty"`
	// AddBaseline forces a baseline run per (point, workload) even when
	// Baseline is not in Modes.
	AddBaseline bool `json:"add_baseline,omitempty"`
}

// PointSpec is one declarative configuration point: an optional named
// hardware-prefetcher variant plus whitelisted integer knob overrides,
// applied in that order.
type PointSpec struct {
	// Name labels the point ("sst=256", "adaptive"); required.
	Name string `json:"name"`
	// PrefetchVariant names a standard PF grid point ("no-pf", "stride",
	// "best-offset", "adaptive", ...); empty applies no variant.
	PrefetchVariant string `json:"prefetch_variant,omitempty"`
	// Knobs are whitelisted configuration overrides by name (see
	// KnobNames): {"sst_size": 256}. Unknown names are rejected at
	// submission, not deep inside the run.
	Knobs map[string]int64 `json:"knobs,omitempty"`
}

// PopulationSpec declares a sampled scenario axis.
type PopulationSpec struct {
	// SpaceName selects a named sampling space ("default", "frontend");
	// mutually exclusive with Space.
	SpaceName string `json:"space_name,omitempty"`
	// Space is an explicit sampling space, for populations beyond the
	// named ones.
	Space *synth.Space `json:"space,omitempty"`
	// Count is the number of seeded scenarios; required (> 0).
	Count int `json:"count"`
	// BaseSeed roots the scenario seed sequence, in hex; empty selects
	// the date-pinned default.
	BaseSeed string `json:"base_seed,omitempty"`
}

// knobSetters is the closed set of remotely settable configuration
// knobs. Only knobs that are part of a published sweep axis belong here;
// everything else stays server-side so a job spec can never construct an
// un-vetted configuration.
var knobSetters = map[string]func(*core.Config, int64){
	"sst_size":            func(c *core.Config, v int64) { c.SSTSize = int(v) },
	"emq_size":            func(c *core.Config, v int64) { c.EMQSize = int(v) },
	"prdq_size":           func(c *core.Config, v int64) { c.PRDQSize = int(v) },
	"runahead_width":      func(c *core.Config, v int64) { c.RunaheadWidth = int(v) },
	"min_runahead_cycles": func(c *core.Config, v int64) { c.MinRunaheadCycles = v },
	"chain_max_len":       func(c *core.Config, v int64) { c.ChainMaxLen = int(v) },
	"chain_cache_size":    func(c *core.Config, v int64) { c.ChainCacheSize = int(v) },
	"replay_lookahead":    func(c *core.Config, v int64) { c.ReplayLookahead = v },
	"pre_max_divergence":  func(c *core.Config, v int64) { c.PREMaxDivergence = int(v) },
	"l1d_mshrs":           func(c *core.Config, v int64) { c.Mem.L1D.MSHRs = int(v) },
}

// KnobNames lists the remotely settable knob names, sorted.
func KnobNames() []string {
	names := make([]string, 0, len(knobSetters))
	for n := range knobSetters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Matrix validates the spec and builds the executable exp.Matrix.
// Validation errors name the offending field so a remote submitter can
// fix the spec without reading server logs.
func (s JobSpec) Matrix() (exp.Matrix, error) {
	var m exp.Matrix
	m.Name = s.Name
	if len(s.Modes) == 0 {
		return m, fmt.Errorf("spec: modes is required")
	}
	for _, name := range s.Modes {
		mode, err := core.ParseMode(name)
		if err != nil {
			return m, fmt.Errorf("spec: modes: %w", err)
		}
		m.Modes = append(m.Modes, mode)
	}
	for _, name := range s.Workloads {
		w, err := workload.ByName(name)
		if err != nil {
			return m, fmt.Errorf("spec: workloads: %w", err)
		}
		m.Workloads = append(m.Workloads, w)
	}
	for _, pt := range s.Points {
		p, err := pt.point()
		if err != nil {
			return m, err
		}
		m.Points = append(m.Points, p)
	}
	if s.Population != nil {
		pop, err := s.Population.population()
		if err != nil {
			return m, err
		}
		m.Population = pop
	}
	if len(m.Workloads) == 0 && m.Population == nil {
		return m, fmt.Errorf("spec: needs workloads, a population, or both")
	}
	if s.MeasureUops <= 0 {
		return m, fmt.Errorf("spec: measure_uops must be positive (got %d)", s.MeasureUops)
	}
	if s.WarmupUops < 0 {
		return m, fmt.Errorf("spec: warmup_uops must be non-negative (got %d)", s.WarmupUops)
	}
	m.Options = sim.Options{WarmupUops: s.WarmupUops, MeasureUops: s.MeasureUops}
	if s.Fidelity != "" {
		fid, err := core.ParseFidelity(s.Fidelity)
		if err != nil {
			return m, fmt.Errorf("spec: fidelity: %w", err)
		}
		m.Options.Fidelity = fid
	}
	if s.Baseline != "" {
		base, err := core.ParseMode(s.Baseline)
		if err != nil {
			return m, fmt.Errorf("spec: baseline: %w", err)
		}
		m.Baseline = base
	}
	m.AddBaseline = s.AddBaseline
	return m, nil
}

// point compiles one declarative point into an exp.Point whose Apply
// closure replays the variant and knobs deterministically (knobs in
// sorted name order, so the applied configuration never depends on map
// iteration).
func (pt PointSpec) point() (exp.Point, error) {
	if pt.Name == "" {
		return exp.Point{}, fmt.Errorf("spec: point with empty name")
	}
	var variant *prefetch.Variant
	if pt.PrefetchVariant != "" {
		v, err := prefetch.VariantByName(pt.PrefetchVariant)
		if err != nil {
			return exp.Point{}, fmt.Errorf("spec: point %q: %w", pt.Name, err)
		}
		variant = &v
	}
	type knob struct {
		set func(*core.Config, int64)
		v   int64
	}
	names := make([]string, 0, len(pt.Knobs))
	for name := range pt.Knobs {
		if knobSetters[name] == nil {
			return exp.Point{}, fmt.Errorf("spec: point %q: unknown knob %q (known: %v)",
				pt.Name, name, KnobNames())
		}
		names = append(names, name)
	}
	sort.Strings(names)
	knobs := make([]knob, len(names))
	for i, name := range names {
		knobs[i] = knob{set: knobSetters[name], v: pt.Knobs[name]}
	}
	return exp.Point{
		Name: pt.Name,
		Apply: func(c *core.Config) {
			if variant != nil {
				c.ApplyPrefetch(*variant)
			}
			for _, k := range knobs {
				k.set(c, k.v)
			}
		},
	}, nil
}

// population compiles the population spec, resolving named spaces.
func (ps PopulationSpec) population() (*exp.Population, error) {
	pop := &exp.Population{Count: ps.Count}
	switch {
	case ps.Space != nil && ps.SpaceName != "":
		return nil, fmt.Errorf("spec: population: space and space_name are mutually exclusive")
	case ps.Space != nil:
		pop.Space = *ps.Space
	case ps.SpaceName == "" || ps.SpaceName == "default":
		pop.Space = synth.DefaultSpace()
	case ps.SpaceName == "frontend":
		pop.Space = synth.FrontEndSpace()
	default:
		return nil, fmt.Errorf("spec: population: unknown space_name %q (known: default, frontend)", ps.SpaceName)
	}
	if ps.Count <= 0 {
		return nil, fmt.Errorf("spec: population: count must be positive (got %d)", ps.Count)
	}
	if ps.BaseSeed != "" {
		seed, err := strconv.ParseUint(ps.BaseSeed, 16, 64)
		if err != nil {
			return nil, fmt.Errorf("spec: population: base_seed must be hex: %w", err)
		}
		pop.BaseSeed = seed
	}
	return pop, nil
}
