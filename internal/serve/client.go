package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Client talks to a simulation server (cmd/simd) over its HTTP API,
// speaking the same wire types the server defines in this package —
// there is no second schema to drift.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8723".
	BaseURL string
	// HTTP overrides the transport; nil uses http.DefaultClient. Event
	// streams can outlive any fixed client timeout, so a custom client
	// should bound requests via the context, not Client.Timeout.
	HTTP *http.Client
}

// NewClient returns a client for the server at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// do issues one request and decodes the JSON response into out (skipped
// when out is nil). Non-2xx responses come back as errors carrying the
// server's message.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("client: encoding request: %w", err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeError(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// decodeError turns a non-2xx response into an error with the server's
// {"error": ...} message when present.
func decodeError(resp *http.Response) error {
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(b, &e) == nil && e.Error != "" {
		return fmt.Errorf("client: server returned %d: %s", resp.StatusCode, e.Error)
	}
	return fmt.Errorf("client: server returned %d: %s", resp.StatusCode, bytes.TrimSpace(b))
}

// Submit submits a job spec and returns the queued job's status.
func (c *Client) Submit(ctx context.Context, spec JobSpec) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/jobs", spec, &st)
	return st, err
}

// Job polls one job's status.
func (c *Client) Job(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Cancel cancels a queued or running job.
func (c *Client) Cancel(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, nil)
}

// Result fetches a finished job's schema-versioned results JSON — the
// exact bytes a local run of the same matrix would have written.
func (c *Client) Result(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs/"+id+"/result", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	return io.ReadAll(resp.Body)
}

// Stats fetches the server-wide queue/cache/timing counters.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var st Stats
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &st)
	return st, err
}

// Events streams a job's NDJSON events, invoking fn per event, until the
// terminal event arrives (the normal return), fn returns an error, or
// ctx is cancelled. The final event of a complete stream has Type done,
// failed or cancelled.
func (c *Client) Events(ctx context.Context, id string, fn func(Event) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return fmt.Errorf("client: bad event line %q: %w", sc.Text(), err)
		}
		if fn != nil {
			if err := fn(ev); err != nil {
				return err
			}
		}
	}
	return sc.Err()
}

// Wait streams the job's events (discarding them, or forwarding to fn
// when non-nil) until the job is terminal, then returns its final
// status. A job that failed or was cancelled returns both the status and
// an error describing the terminal state.
func (c *Client) Wait(ctx context.Context, id string, fn func(Event) error) (JobStatus, error) {
	if err := c.Events(ctx, id, fn); err != nil {
		return JobStatus{}, err
	}
	st, err := c.Job(ctx, id)
	if err != nil {
		return st, err
	}
	switch st.State {
	case StateDone:
		return st, nil
	case StateFailed, StateCancelled:
		return st, fmt.Errorf("client: job %s %s: %s", id, st.State, st.Error)
	default:
		// The event stream ended without a terminal state: the connection
		// dropped or the server went away mid-job.
		return st, fmt.Errorf("client: event stream for job %s ended while %s", id, st.State)
	}
}
