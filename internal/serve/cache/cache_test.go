package cache

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/sim"
	"repro/internal/workload/synth"
)

// testKey builds a distinct valid key per workload name.
func testKey(w string) exp.CellKey {
	return exp.CellKeyFor(w, nil, sim.Options{WarmupUops: 1, MeasureUops: 2}, core.Default(core.ModeOoO))
}

func testResult(w string, cycles int64) sim.Result {
	return sim.Result{Workload: w, Cycles: cycles, IPC: 1.25}
}

func TestHitMissAndLRUEviction(t *testing.T) {
	c, err := New(2, "")
	if err != nil {
		t.Fatal(err)
	}
	ka, kb, kc := testKey("a"), testKey("b"), testKey("c")
	if _, ok := c.Get(ka); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(ka, testResult("a", 1))
	c.Put(kb, testResult("b", 2))
	if r, ok := c.Get(ka); !ok || r.Cycles != 1 {
		t.Fatalf("Get(a) = %+v, %v", r, ok)
	}
	// a was just touched, so inserting c must evict b (LRU), not a.
	c.Put(kc, testResult("c", 3))
	if _, ok := c.Get(kb); ok {
		t.Error("b survived eviction; LRU order wrong")
	}
	if _, ok := c.Get(ka); !ok {
		t.Error("a evicted despite being most recently used")
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	if st.Hits != 2 || st.Misses != 2 {
		t.Errorf("hits/misses = %d/%d, want 2/2", st.Hits, st.Misses)
	}
	if got := st.HitRate(); got != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", got)
	}
}

func TestDiskPersistenceAcrossInstances(t *testing.T) {
	dir := t.TempDir()
	c1, err := New(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey("persist")
	want := testResult("persist", 77)
	c1.Put(k, want)

	// A fresh instance (cold memory) must serve the entry from disk.
	c2, err := New(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Get(k)
	if !ok {
		t.Fatal("disk entry not found by fresh instance")
	}
	if got != want {
		t.Fatalf("disk round-trip changed the result:\n got %+v\nwant %+v", got, want)
	}
	if st := c2.Stats(); st.DiskHits != 1 {
		t.Errorf("disk_hits = %d, want 1", st.DiskHits)
	}
	// Promoted to memory: the second Get must not touch disk again.
	if _, ok := c2.Get(k); !ok {
		t.Fatal("promoted entry missing from memory")
	}
	if st := c2.Stats(); st.DiskHits != 1 {
		t.Errorf("disk_hits after promotion = %d, want still 1", st.DiskHits)
	}
}

// Corrupt on-disk entries — flipped payload bytes, a payload stored
// under the wrong content address, or plain garbage — must be rejected
// as misses and removed, never served.
func TestCorruptDiskEntryRejected(t *testing.T) {
	k := testKey("victim")
	donor := testKey("donor")

	corrupt := []struct {
		name    string
		breakIt func(t *testing.T, dir string)
	}{
		{"flipped result byte", func(t *testing.T, dir string) {
			path := filepath.Join(dir, k.Hash()+".json")
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			i := bytes.Index(b, []byte(`"Cycles":`))
			if i < 0 {
				t.Fatal("no Cycles field in disk entry")
			}
			b[i+len(`"Cycles":`)] = '9'
			os.WriteFile(path, b, 0o644)
		}},
		{"entry under wrong hash", func(t *testing.T, dir string) {
			// Simulate content-address aliasing: donor's (valid,
			// checksummed) entry copied over victim's file. The embedded
			// key string must expose the mismatch.
			b, err := os.ReadFile(filepath.Join(dir, donor.Hash()+".json"))
			if err != nil {
				t.Fatal(err)
			}
			os.WriteFile(filepath.Join(dir, k.Hash()+".json"), b, 0o644)
		}},
		{"garbage file", func(t *testing.T, dir string) {
			os.WriteFile(filepath.Join(dir, k.Hash()+".json"), []byte("{not json"), 0o644)
		}},
	}
	for _, tc := range corrupt {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			c, err := New(0, dir) // capacity 0: every Get goes to disk
			if err != nil {
				t.Fatal(err)
			}
			c.Put(k, testResult("victim", 1))
			c.Put(donor, testResult("donor", 2))
			tc.breakIt(t, dir)
			if r, ok := c.Get(k); ok {
				t.Fatalf("corrupt entry served: %+v", r)
			}
			if st := c.Stats(); st.CorruptRejected != 1 {
				t.Errorf("corrupt_rejected = %d, want 1", st.CorruptRejected)
			}
			if _, err := os.Stat(filepath.Join(dir, k.Hash()+".json")); !os.IsNotExist(err) {
				t.Error("corrupt file not removed")
			}
		})
	}
}

// synthMatrix is a small sampled-population matrix: the cached-vs-cold
// differential below runs it through real simulations.
func synthMatrix(seeds int) exp.Matrix {
	return exp.Matrix{
		Name:  "cache_differential",
		Modes: []core.Mode{core.ModeOoO, core.ModePRE},
		Population: &exp.Population{
			Space: synth.DefaultSpace(), Count: seeds,
		},
		Options: sim.Options{WarmupUops: 2_000, MeasureUops: 8_000},
	}
}

// docBytes expands and runs a matrix with the cache wired in (nil cache
// = cold) and returns the serialized results document.
func docBytes(t *testing.T, m exp.Matrix, c *Cache, workers int) ([]byte, exp.RunMeta) {
	t.Helper()
	plan, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	opts := exp.RunOptions{Workers: workers}
	if c != nil {
		opts.Lookup = c.Get
		opts.Store = c.Put
	}
	set, err := plan.RunOpts(opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := set.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), set.Meta()
}

// The headline contract: a sweep served from cache (memory or disk) is
// byte-identical to a cold run of the same matrix.
func TestCachedVsColdByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	m := synthMatrix(3)
	cold, _ := docBytes(t, m, nil, 2)

	dir := t.TempDir()
	c, err := New(64, dir)
	if err != nil {
		t.Fatal(err)
	}
	warm1, meta1 := docBytes(t, m, c, 2)
	if meta1.CacheHits != 0 {
		t.Fatalf("first cached run reported %d hits on an empty cache", meta1.CacheHits)
	}
	if !bytes.Equal(cold, warm1) {
		t.Fatal("store-through run differs from cold run")
	}
	warm2, meta2 := docBytes(t, m, c, 4)
	if !bytes.Equal(cold, warm2) {
		t.Fatal("memory-cache-served run not byte-identical to cold run")
	}
	plan, _ := m.Expand()
	if meta2.CacheHits != plan.NumUnique() {
		t.Errorf("second run hits = %d, want all %d unique runs", meta2.CacheHits, plan.NumUnique())
	}

	// Fresh instance over the same directory: results now round-trip
	// through JSON on disk, including every float64 — still identical.
	c2, err := New(64, dir)
	if err != nil {
		t.Fatal(err)
	}
	warm3, _ := docBytes(t, m, c2, 2)
	if !bytes.Equal(cold, warm3) {
		t.Fatal("disk-cache-served run not byte-identical to cold run (float round-trip?)")
	}
	if st := c2.Stats(); st.DiskHits == 0 {
		t.Error("fresh instance served no disk hits")
	}
}

// Concurrent submitters running overlapping matrices through one shared
// cache must each assemble complete, correct results — no torn entries,
// no cross-talk. The matrices overlap on the population cells (same
// space, same seeds) but differ in mode sets.
func TestConcurrentOverlappingSubmitters(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	c, err := New(128, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	modeSets := [][]core.Mode{
		{core.ModeOoO, core.ModePRE},
		{core.ModeOoO, core.ModeRA},
		{core.ModeOoO, core.ModePRE, core.ModeRA},
	}
	// Cold reference documents, one per submitter, computed serially.
	refs := make([][]byte, len(modeSets))
	for i, modes := range modeSets {
		m := synthMatrix(2)
		m.Modes = modes
		refs[i], _ = docBytes(t, m, nil, 1)
	}
	const rounds = 2 // second round hits what the first populated
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		got := make([][]byte, len(modeSets))
		for i, modes := range modeSets {
			wg.Add(1)
			go func() {
				defer wg.Done()
				m := synthMatrix(2)
				m.Modes = modes
				got[i], _ = docBytes(t, m, c, 2)
			}()
		}
		wg.Wait()
		for i := range modeSets {
			if !bytes.Equal(got[i], refs[i]) {
				t.Fatalf("round %d: submitter %d assembled a wrong document", round, i)
			}
		}
	}
	if st := c.Stats(); st.Hits == 0 {
		t.Error("overlapping submitters produced no cache hits")
	}
}

// Results survive the disk JSON round-trip exactly, floats included —
// spot-checked directly since byte identity of whole documents depends
// on it.
func TestResultJSONRoundTripExact(t *testing.T) {
	r := sim.Result{Workload: "x", IPC: 0.30000000000000004, HWPFAccuracy: 1.0 / 3.0}
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back sim.Result
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != r {
		t.Fatalf("round trip changed result:\n got %+v\nwant %+v", back, r)
	}
}
