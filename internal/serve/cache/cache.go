// Package cache is the content-addressed result cache behind the
// simulation server (internal/serve): per-cell sim.Results stored under
// their exp.CellKey. Two runs with equal keys produce equal Results —
// that is the orchestrator's dedup contract, promoted to a persistent
// store — so a hit is substitutable for a simulation, and a sweep
// assembled from hits is byte-identical to a cold run.
//
// Layout: a fixed-capacity in-memory LRU in front of an optional on-disk
// directory. Disk entries are self-verifying — the file name is the
// key's SHA-256 content address, and the payload embeds the full key
// string plus a checksum over key and result bytes — so a corrupt,
// truncated, or hash-colliding entry is detected on read and treated as
// a miss (and removed), never served.
package cache

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/exp"
	"repro/internal/sim"
)

// Stats counts cache traffic. Hits/Misses are the top-level outcomes;
// DiskHits counts hits served from the directory (a subset of Hits),
// CorruptRejected counts on-disk entries discarded on integrity failure.
type Stats struct {
	Hits            int64 `json:"hits"`
	Misses          int64 `json:"misses"`
	Evictions       int64 `json:"evictions"`
	DiskHits        int64 `json:"disk_hits"`
	DiskWrites      int64 `json:"disk_writes"`
	CorruptRejected int64 `json:"corrupt_rejected"`
}

// HitRate returns Hits / (Hits + Misses), or 0 before any traffic.
func (s Stats) HitRate() float64 {
	if total := s.Hits + s.Misses; total > 0 {
		return float64(s.Hits) / float64(total)
	}
	return 0
}

// Cache is a content-addressed result store: an in-memory LRU over an
// optional on-disk directory. Safe for concurrent use.
type Cache struct {
	mu       sync.Mutex
	capacity int
	dir      string // "" = memory only
	entries  map[string]*list.Element
	lru      *list.List // front = most recent
	stats    Stats
}

// entry is one resident cache line.
type entry struct {
	hash string
	key  string // full key string, kept to reject hash collisions
	res  sim.Result
}

// diskEntry is the serialized on-disk form. Sum covers Key and the
// result bytes, so bit rot anywhere in the file fails verification.
type diskEntry struct {
	Key    string          `json:"key"`
	Sum    string          `json:"sum"`
	Result json.RawMessage `json:"result"`
}

// New builds a cache holding up to capacity results in memory (capacity
// <= 0 means memory is a pure pass-through to disk), persisting to dir
// when dir is non-empty (created if needed).
func New(capacity int, dir string) (*Cache, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("cache: %w", err)
		}
	}
	return &Cache{
		capacity: capacity,
		dir:      dir,
		entries:  make(map[string]*list.Element),
		lru:      list.New(),
	}, nil
}

// Get returns the cached result for k, consulting memory then disk.
// Disk hits are promoted into memory.
func (c *Cache) Get(k exp.CellKey) (sim.Result, bool) {
	hash, key := k.Hash(), k.String()
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[hash]; ok {
		e := el.Value.(*entry)
		// A SHA-256 collision is not a realistic event, but the key
		// string is already resident — comparing it makes the hit
		// exact rather than probabilistic.
		if e.key == key {
			c.lru.MoveToFront(el)
			c.stats.Hits++
			return e.res, true
		}
	}
	if res, ok := c.diskGet(hash, key); ok {
		c.stats.Hits++
		c.stats.DiskHits++
		c.insert(hash, key, res)
		return res, true
	}
	c.stats.Misses++
	return sim.Result{}, false
}

// Put stores r under k in memory and, when configured, on disk.
func (c *Cache) Put(k exp.CellKey, r sim.Result) {
	hash, key := k.Hash(), k.String()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.insert(hash, key, r)
	c.diskPut(hash, key, r)
}

// Stats returns a snapshot of the traffic counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Len returns the number of memory-resident entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// insert adds or refreshes a memory entry, evicting from the LRU tail.
// Caller holds c.mu.
func (c *Cache) insert(hash, key string, r sim.Result) {
	if c.capacity <= 0 {
		return
	}
	if el, ok := c.entries[hash]; ok {
		el.Value.(*entry).res = r
		el.Value.(*entry).key = key
		c.lru.MoveToFront(el)
		return
	}
	c.entries[hash] = c.lru.PushFront(&entry{hash: hash, key: key, res: r})
	for c.lru.Len() > c.capacity {
		tail := c.lru.Back()
		e := tail.Value.(*entry)
		c.lru.Remove(tail)
		delete(c.entries, e.hash)
		c.stats.Evictions++
	}
}

// path returns the content-addressed file of a key hash.
func (c *Cache) path(hash string) string {
	return filepath.Join(c.dir, hash+".json")
}

// checksum covers the key string and the serialized result together.
func checksum(key string, result []byte) string {
	h := sha256.New()
	h.Write([]byte(key))
	h.Write([]byte{'\n'})
	h.Write(result)
	return hex.EncodeToString(h.Sum(nil))
}

// diskGet loads and verifies an on-disk entry. Any integrity failure —
// unparsable file, key mismatch, checksum mismatch, undecodable result —
// removes the file and reports a miss. Caller holds c.mu.
func (c *Cache) diskGet(hash, key string) (sim.Result, bool) {
	if c.dir == "" {
		return sim.Result{}, false
	}
	b, err := os.ReadFile(c.path(hash))
	if err != nil {
		return sim.Result{}, false // absent: a plain miss, not corruption
	}
	var de diskEntry
	var res sim.Result
	ok := json.Unmarshal(b, &de) == nil &&
		de.Key == key &&
		de.Sum == checksum(de.Key, de.Result) &&
		json.Unmarshal(de.Result, &res) == nil
	if !ok {
		c.stats.CorruptRejected++
		os.Remove(c.path(hash))
		return sim.Result{}, false
	}
	return res, true
}

// diskPut persists an entry via write-to-temp + rename, so a crashed or
// concurrent writer can never leave a half-written file under the final
// name. Persistence is best-effort: an I/O error degrades the cache, it
// does not fail the simulation that produced the result. Caller holds
// c.mu.
func (c *Cache) diskPut(hash, key string, r sim.Result) {
	if c.dir == "" {
		return
	}
	rb, err := json.Marshal(r)
	if err != nil {
		return
	}
	b, err := json.Marshal(diskEntry{Key: key, Sum: checksum(key, rb), Result: rb})
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(c.dir, "put-*")
	if err != nil {
		return
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), c.path(hash)); err != nil {
		os.Remove(tmp.Name())
		return
	}
	c.stats.DiskWrites++
}
