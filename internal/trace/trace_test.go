package trace

import (
	"testing"
	"testing/quick"

	"repro/internal/uarch"
)

// countGen emits ialu µops whose Addr field records their creation order,
// letting tests verify identity and replay stability.
type countGen struct{ n uint64 }

func (g *countGen) Name() string { return "count" }
func (g *countGen) Next(u *uarch.Uop) {
	// Per the Generator contract, fully overwrite *u (the Stream does not
	// zero recycled ring slots).
	*u = uarch.Uop{
		Class: uarch.ClassIntAlu,
		PC:    0x400000 + (g.n%7)*4, // 7 static PCs cycling
		Addr:  g.n,
	}
	g.n++
}

func TestAtAssignsSequentialSeq(t *testing.T) {
	s := NewStream(&countGen{})
	for i := int64(0); i < 100; i++ {
		u := s.At(i)
		if u.Seq != i || u.Addr != uint64(i) {
			t.Fatalf("At(%d) = seq %d addr %d", i, u.Seq, u.Addr)
		}
	}
}

func TestAtRandomAccessWithinWindow(t *testing.T) {
	s := NewStream(&countGen{})
	s.At(50)
	// Going back within the window returns the identical µop.
	if u := s.At(10); u.Addr != 10 {
		t.Fatalf("At(10).Addr = %d", u.Addr)
	}
	if s.Generated() != 51 {
		t.Errorf("Generated = %d, want 51", s.Generated())
	}
}

func TestReleaseAdvancesWindow(t *testing.T) {
	s := NewStream(&countGen{})
	s.At(100)
	s.Release(40)
	if s.WindowStart() != 40 {
		t.Errorf("WindowStart = %d, want 40", s.WindowStart())
	}
	if s.WindowLen() != 61 {
		t.Errorf("WindowLen = %d, want 61", s.WindowLen())
	}
	// Window contents unchanged.
	if u := s.At(40); u.Addr != 40 {
		t.Errorf("At(40).Addr = %d", u.Addr)
	}
}

func TestReleaseBeyondGeneratedClamps(t *testing.T) {
	s := NewStream(&countGen{})
	s.At(5)
	s.Release(1000)
	if s.WindowStart() != s.Generated() {
		t.Errorf("start %d != generated %d", s.WindowStart(), s.Generated())
	}
	// Generation continues normally afterwards.
	if u := s.At(s.Generated()); u.Seq != u.Seq {
		t.Fatal("unreachable")
	}
}

func TestReleaseBackwardsIgnored(t *testing.T) {
	s := NewStream(&countGen{})
	s.At(100)
	s.Release(50)
	s.Release(10) // must not move the window backwards
	if s.WindowStart() != 50 {
		t.Errorf("WindowStart = %d, want 50", s.WindowStart())
	}
}

func TestAtReleasedPanics(t *testing.T) {
	s := NewStream(&countGen{})
	s.At(100)
	s.Release(50)
	defer func() {
		if recover() == nil {
			t.Fatal("At(49) after Release(50) must panic")
		}
	}()
	s.At(49)
}

func TestWindowGrowthPreservesContents(t *testing.T) {
	s := NewStream(&countGen{})
	// Generate far beyond the initial window without releasing.
	last := int64(initialWindow*4 + 17)
	s.At(last)
	for _, q := range []int64{0, 1, initialWindow - 1, initialWindow, last / 2, last} {
		if u := s.At(q); u.Addr != uint64(q) || u.Seq != q {
			t.Fatalf("after growth At(%d) = seq %d addr %d", q, u.Seq, u.Addr)
		}
	}
}

func TestFindNextPC(t *testing.T) {
	s := NewStream(&countGen{})
	// PCs cycle with period 7: pc of seq q is 0x400000 + (q%7)*4.
	got := s.FindNextPC(0x400000+3*4, 0, 100)
	if got != 3 {
		t.Errorf("FindNextPC = %d, want 3", got)
	}
	got = s.FindNextPC(0x400000+3*4, 4, 100)
	if got != 10 {
		t.Errorf("FindNextPC from 4 = %d, want 10", got)
	}
	if got := s.FindNextPC(0xdead, 0, 50); got != -1 {
		t.Errorf("missing PC must return -1, got %d", got)
	}
}

func TestFindNextPCLimitExclusive(t *testing.T) {
	s := NewStream(&countGen{})
	// Target at seq 10; searching [4, 4+6) must miss it, [4, 4+7) finds it.
	if got := s.FindNextPC(0x400000+3*4, 4, 6); got != -1 {
		t.Errorf("limit must be exclusive, got %d", got)
	}
	if got := s.FindNextPC(0x400000+3*4, 4, 7); got != 10 {
		t.Errorf("want 10, got %d", got)
	}
}

func TestNamePassthrough(t *testing.T) {
	if NewStream(&countGen{}).Name() != "count" {
		t.Error("Name passthrough failed")
	}
}

// Property: a rewind (re-reading an old seq still in the window) always
// yields the identical µop, across arbitrary access/release interleavings.
func TestPropertyReplayIdentity(t *testing.T) {
	f := func(ops []uint16) bool {
		s := NewStream(&countGen{})
		maxSeen := int64(-1)
		for _, op := range ops {
			seq := int64(op % 2048)
			if seq < s.WindowStart() {
				seq = s.WindowStart()
			}
			u := s.At(seq)
			if u.Seq != seq || u.Addr != uint64(seq) {
				return false
			}
			if seq > maxSeen {
				maxSeen = seq
			}
			if op%5 == 0 && maxSeen > 64 {
				s.Release(maxSeen - 64)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
