// Package trace supplies the dynamic micro-op stream to the core.
//
// Workloads implement Generator, a deterministic producer of the "true
// path" µop sequence. The core never consumes a Generator directly;
// it reads through a Stream, which buffers a sliding window of generated
// µops so that the pipeline can
//
//   - fetch ahead of commit (normal operation),
//   - run ahead of the stalled window (runahead modes read far past the
//     newest fetched µop), and
//   - rewind to the stalling load after a runahead flush (traditional
//     runahead and runahead buffer re-fetch the discarded window).
//
// µops older than the release point (typically the commit head) are
// discarded, keeping memory bounded regardless of run length.
package trace

import (
	"fmt"

	"repro/internal/uarch"
)

// Generator produces an infinite deterministic µop stream. Implementations
// fill in every Uop field except Seq, which the Stream assigns.
type Generator interface {
	// Name identifies the workload (for reports).
	Name() string
	// Next writes the next µop of the stream into u. It must fully
	// overwrite *u (assign a complete Uop value, as the archetype
	// generators do): the Stream does not zero the buffer slot between
	// generations, so leftover fields from a recycled µop would leak.
	Next(u *uarch.Uop)
}

// BlockGenerator is an optional Generator extension. Generators that can
// emit µops in bulk implement NextBlock to amortize the per-µop interface
// call: the Stream fills its ring in contiguous blocks instead of one
// Next call per µop. NextBlock must fully overwrite every element of dst,
// exactly as Next must fully overwrite *u, and must leave the generator
// in the same state len(dst) Next calls would have.
type BlockGenerator interface {
	Generator
	NextBlock(dst []uarch.Uop)
}

// Stream adapts a Generator into a random-access sliding window.
type Stream struct {
	gen   Generator
	block BlockGenerator // gen, if it supports bulk emission (else nil)
	buf   []uarch.Uop    // ring buffer
	mask  int64          // len(buf)-1 (len is a power of two)
	start int64          // seq of the oldest retained µop
	next  int64          // seq of the next µop to be generated
}

const initialWindow = 1 << 12

// NewStream wraps gen in a fresh window starting at sequence 0.
func NewStream(gen Generator) *Stream {
	return NewStreamSized(gen, initialWindow)
}

// NewStreamSized wraps gen in a fresh window whose ring holds at least
// window µops before the first amortized doubling. Consumers that read
// far ahead of the release point (the runahead-buffer replay engine) size
// the ring up front so the steady state never grows it.
func NewStreamSized(gen Generator, window int) *Stream {
	n := initialWindow
	for n < window {
		n *= 2
	}
	s := &Stream{gen: gen, buf: make([]uarch.Uop, n), mask: int64(n) - 1}
	s.block, _ = gen.(BlockGenerator)
	return s
}

// Name returns the underlying generator's name.
func (s *Stream) Name() string { return s.gen.Name() }

// At returns the µop with the given sequence number, generating forward as
// needed. seq must be at or after the current window start; asking for a
// released µop is a programming error and panics. The already-generated
// case is kept small enough to inline — At is on the fetch, dispatch and
// runahead-scan hot paths, several calls per simulated µop.
func (s *Stream) At(seq int64) *uarch.Uop {
	if seq >= s.start && seq < s.next {
		return &s.buf[seq&s.mask]
	}
	return s.atSlow(seq)
}

func (s *Stream) atSlow(seq int64) *uarch.Uop {
	if seq < s.start {
		panic(fmt.Sprintf("trace: seq %d already released (window starts at %d)", seq, s.start))
	}
	s.extend(seq + 1)
	return &s.buf[seq&s.mask]
}

// extend generates forward until want µops exist ([0, want) all valid).
// With a BlockGenerator the ring fills in contiguous segments — bounded
// by the request, the ring wrap and the retained-window capacity — so the
// per-µop interface dispatch is paid once per block, not once per µop.
func (s *Stream) extend(want int64) {
	for s.next < want {
		if s.next-s.start >= int64(len(s.buf)) {
			s.grow()
		}
		if s.block == nil {
			u := &s.buf[s.next&s.mask]
			s.gen.Next(u) // contract: Next fully overwrites *u
			u.Seq = s.next
			s.next++
			continue
		}
		n := want - s.next
		if room := int64(len(s.buf)) - (s.next - s.start); n > room {
			n = room
		}
		if wrap := int64(len(s.buf)) - (s.next & s.mask); n > wrap {
			n = wrap
		}
		seg := s.buf[s.next&s.mask:][:n]
		s.block.NextBlock(seg) // contract: fully overwrites every element
		for i := range seg {
			seg[i].Seq = s.next + int64(i)
		}
		s.next += n
	}
}

// Span returns a contiguous slice of the stream starting at seq, holding
// at least 1 and at most max µops (the run is cut at the ring wrap),
// generating forward in bulk as needed. The returned slice aliases the
// ring: it is invalidated by the next grow (any At/Span that generates).
// Callers iterate spans instead of issuing one At call per µop on scan
// paths (fetch, replay chain search).
func (s *Stream) Span(seq, max int64) []uarch.Uop {
	if seq < s.start {
		panic(fmt.Sprintf("trace: seq %d already released (window starts at %d)", seq, s.start))
	}
	if max < 1 {
		max = 1
	}
	end := seq + max
	if end > s.next {
		s.extend(end)
	}
	n := end - seq
	if wrap := int64(len(s.buf)) - (seq & s.mask); n > wrap {
		n = wrap
	}
	return s.buf[seq&s.mask:][:n]
}

// grow doubles the ring, preserving the retained window.
func (s *Stream) grow() {
	nbuf := make([]uarch.Uop, len(s.buf)*2)
	nmask := int64(len(nbuf) - 1)
	for seq := s.start; seq < s.next; seq++ {
		nbuf[seq&nmask] = s.buf[seq&s.mask]
	}
	s.buf = nbuf
	s.mask = nmask
}

// Release discards all µops with sequence numbers below seq. Pointers
// previously returned by At for released µops become invalid.
func (s *Stream) Release(seq int64) {
	if seq > s.next {
		seq = s.next
	}
	if seq > s.start {
		s.start = seq
	}
}

// WindowStart returns the oldest retained sequence number.
func (s *Stream) WindowStart() int64 { return s.start }

// Generated returns the number of µops generated so far (the exclusive
// upper bound of valid history).
func (s *Stream) Generated() int64 { return s.next }

// WindowLen returns the current number of retained µops.
func (s *Stream) WindowLen() int64 { return s.next - s.start }

// FindNextPC scans forward from seq (inclusive) for the next µop whose PC
// matches pc, generating as needed, up to limit µops ahead. It returns the
// matching sequence number or -1. The runahead-buffer replay engine uses
// this to locate future dynamic instances of slice instructions.
func (s *Stream) FindNextPC(pc uint64, seq, limit int64) int64 {
	end := seq + limit
	for q := seq; q < end; q++ {
		if s.At(q).PC == pc {
			return q
		}
	}
	return -1
}
