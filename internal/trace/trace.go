// Package trace supplies the dynamic micro-op stream to the core.
//
// Workloads implement Generator, a deterministic producer of the "true
// path" µop sequence. The core never consumes a Generator directly;
// it reads through a Stream, which buffers a sliding window of generated
// µops so that the pipeline can
//
//   - fetch ahead of commit (normal operation),
//   - run ahead of the stalled window (runahead modes read far past the
//     newest fetched µop), and
//   - rewind to the stalling load after a runahead flush (traditional
//     runahead and runahead buffer re-fetch the discarded window).
//
// µops older than the release point (typically the commit head) are
// discarded, keeping memory bounded regardless of run length.
package trace

import (
	"fmt"

	"repro/internal/uarch"
)

// Generator produces an infinite deterministic µop stream. Implementations
// fill in every Uop field except Seq, which the Stream assigns.
type Generator interface {
	// Name identifies the workload (for reports).
	Name() string
	// Next writes the next µop of the stream into u. It must fully
	// overwrite *u (assign a complete Uop value, as the archetype
	// generators do): the Stream does not zero the buffer slot between
	// generations, so leftover fields from a recycled µop would leak.
	Next(u *uarch.Uop)
}

// Stream adapts a Generator into a random-access sliding window.
type Stream struct {
	gen   Generator
	buf   []uarch.Uop // ring buffer
	mask  int64       // len(buf)-1 (len is a power of two)
	start int64       // seq of the oldest retained µop
	next  int64       // seq of the next µop to be generated
}

const initialWindow = 1 << 12

// NewStream wraps gen in a fresh window starting at sequence 0.
func NewStream(gen Generator) *Stream {
	return &Stream{gen: gen, buf: make([]uarch.Uop, initialWindow), mask: initialWindow - 1}
}

// Name returns the underlying generator's name.
func (s *Stream) Name() string { return s.gen.Name() }

// At returns the µop with the given sequence number, generating forward as
// needed. seq must be at or after the current window start; asking for a
// released µop is a programming error and panics. The already-generated
// case is kept small enough to inline — At is on the fetch, dispatch and
// runahead-scan hot paths, several calls per simulated µop.
func (s *Stream) At(seq int64) *uarch.Uop {
	if seq >= s.start && seq < s.next {
		return &s.buf[seq&s.mask]
	}
	return s.atSlow(seq)
}

func (s *Stream) atSlow(seq int64) *uarch.Uop {
	if seq < s.start {
		panic(fmt.Sprintf("trace: seq %d already released (window starts at %d)", seq, s.start))
	}
	for s.next <= seq {
		if s.next-s.start >= int64(len(s.buf)) {
			s.grow()
		}
		u := &s.buf[s.next&s.mask]
		s.gen.Next(u) // contract: Next fully overwrites *u
		u.Seq = s.next
		s.next++
	}
	return &s.buf[seq&s.mask]
}

// grow doubles the ring, preserving the retained window.
func (s *Stream) grow() {
	nbuf := make([]uarch.Uop, len(s.buf)*2)
	nmask := int64(len(nbuf) - 1)
	for seq := s.start; seq < s.next; seq++ {
		nbuf[seq&nmask] = s.buf[seq&s.mask]
	}
	s.buf = nbuf
	s.mask = nmask
}

// Release discards all µops with sequence numbers below seq. Pointers
// previously returned by At for released µops become invalid.
func (s *Stream) Release(seq int64) {
	if seq > s.next {
		seq = s.next
	}
	if seq > s.start {
		s.start = seq
	}
}

// WindowStart returns the oldest retained sequence number.
func (s *Stream) WindowStart() int64 { return s.start }

// Generated returns the number of µops generated so far (the exclusive
// upper bound of valid history).
func (s *Stream) Generated() int64 { return s.next }

// WindowLen returns the current number of retained µops.
func (s *Stream) WindowLen() int64 { return s.next - s.start }

// FindNextPC scans forward from seq (inclusive) for the next µop whose PC
// matches pc, generating as needed, up to limit µops ahead. It returns the
// matching sequence number or -1. The runahead-buffer replay engine uses
// this to locate future dynamic instances of slice instructions.
func (s *Stream) FindNextPC(pc uint64, seq, limit int64) int64 {
	end := seq + limit
	for q := seq; q < end; q++ {
		if s.At(q).PC == pc {
			return q
		}
	}
	return -1
}
