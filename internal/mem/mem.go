// Package mem wires the cache levels and the DRAM model into the memory
// hierarchy of Table 1: split 32 KB L1I / 32 KB L1D, a private 256 KB L2,
// a 1 MB shared L3, and DDR3-1600 main memory.
//
// The hierarchy implements the multi-level access protocol: demand loads
// and instruction fetches walk down until they hit, allocate MSHRs at each
// missing level, and fill lines upward with the appropriate arrival times.
// Runahead prefetches use the same path (so they consume real MSHR, bank
// and bus resources — the contention that bounds runahead's usable MLP)
// but are tagged so coverage statistics can distinguish them.
//
// Hardware prefetchers (internal/prefetch) hang off the L1I, the L1D and
// the L2: the L1I prefetcher observes the instruction-fetch stream, the
// L1D prefetcher observes the demand-load stream, the L2 prefetcher
// observes the data traffic that reaches the L2. Their requests walk the
// same multi-level path as demand and runahead traffic — consuming the
// same MSHRs, DRAM banks and bus slots — but carry their own fill tag
// (cache.SrcHW), so runahead coverage and hardware-prefetch accuracy are
// separately attributable.
//
// Two adaptive pieces close the loop between the engines and the rest of
// the machine. The PRE-aware filter (Config.RunaheadFilter) drops
// hardware prefetch requests whose line already has an in-flight
// runahead-tagged MSHR at any level, counting them separately
// (PFStats.FilteredRA) — the direct measurement of the interference term
// between runahead requests and HW prefetch traffic. And engines
// configured with a ThrottleEpoch receive epoch-sampled accuracy/late
// feedback (prefetch.Adaptive) from their fill level's lifetime counters,
// which drives their effective-degree throttling.
//
// Latency convention: a hit at level k costs the sum of the hit latencies
// of levels 1..k (L1 4, L2 4+8, L3 4+8+30 for data), matching how Sniper
// composes its load-to-use latencies from Table 1.
package mem

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/prefetch"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// Level identifies where an access was served.
type Level uint8

// Hierarchy levels.
const (
	// LevelL1 is a first-level hit (L1D for loads, L1I for fetches).
	LevelL1 Level = 1
	// LevelL2 is a second-level hit.
	LevelL2 Level = 2
	// LevelL3 is a last-level-cache hit.
	LevelL3 Level = 3
	// LevelMem is a DRAM access.
	LevelMem Level = 4
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelL3:
		return "L3"
	case LevelMem:
		return "MEM"
	default:
		return fmt.Sprintf("level(%d)", uint8(l))
	}
}

// Config collects the per-level configurations.
type Config struct {
	L1I, L1D, L2, L3 cache.Config
	DRAM             dram.Config

	// L1IPrefetch configures the hardware prefetcher observing the
	// instruction-fetch stream at the L1I (prefetch.KindNone disables it,
	// the default) — front-end-bound workloads' PF coverage.
	L1IPrefetch prefetch.Config
	// L1DPrefetch configures the hardware prefetcher observing demand
	// loads at the L1D (prefetch.KindNone disables it, the default).
	L1DPrefetch prefetch.Config
	// L2Prefetch configures the hardware prefetcher observing data
	// traffic at the L2; its fills stop at the L2/L3.
	L2Prefetch prefetch.Config
	// RunaheadFilter enables the PRE-aware prefetch filter: hardware
	// prefetch requests whose line already has an in-flight
	// runahead-tagged MSHR (at the engine's level or deeper) are dropped
	// and counted in PFStats.FilteredRA instead of being issued or lumped
	// into Redundant.
	RunaheadFilter bool
}

// Default returns the paper's Table 1 memory hierarchy. MSHR counts are
// Haswell-generation (10 L1D line-fill buffers, a 16-entry L2 superqueue);
// they bound the memory-level parallelism any mechanism — demand window or
// runahead prefetching — can expose, which is what keeps the runahead
// buffer's deep single-chain replay from outrunning its fair share.
// Hardware prefetchers are disabled by default; the PF-augmented
// configurations enable them per level.
func Default() Config {
	return Config{
		L1I:  cache.Config{Name: "L1I", SizeBytes: 32 << 10, Assoc: 4, HitLatency: 2, MSHRs: 8},
		L1D:  cache.Config{Name: "L1D", SizeBytes: 32 << 10, Assoc: 8, HitLatency: 4, MSHRs: 10},
		L2:   cache.Config{Name: "L2", SizeBytes: 256 << 10, Assoc: 8, HitLatency: 8, MSHRs: 16},
		L3:   cache.Config{Name: "L3", SizeBytes: 1 << 20, Assoc: 16, HitLatency: 30, MSHRs: 32},
		DRAM: dram.Default(),
	}
}

// Validate checks every level.
func (c *Config) Validate() error {
	for _, cc := range []*cache.Config{&c.L1I, &c.L1D, &c.L2, &c.L3} {
		if err := cc.Validate(); err != nil {
			return err
		}
	}
	for _, pc := range []*prefetch.Config{&c.L1IPrefetch, &c.L1DPrefetch, &c.L2Prefetch} {
		if err := pc.Validate(); err != nil {
			return err
		}
	}
	return c.DRAM.Validate()
}

// Result describes a completed (issued) memory access.
type Result struct {
	// Ready is the core cycle at which the data is usable.
	Ready int64
	// Level is where the access was served from.
	Level Level
}

// PFStats aggregates one hardware prefetcher's issue-side counters with
// the usefulness counters its fill level accumulated. Derived metrics
// follow the standard definitions: accuracy (what fraction of issued
// prefetches turned into demand hits), coverage (what fraction of the
// would-be demand misses the prefetcher absorbed) and timeliness (what
// fraction of the useful prefetches had fully arrived when demanded).
type PFStats struct {
	// Issued counts prefetch requests injected into the hierarchy.
	Issued int64
	// Dropped counts requests rejected because no MSHR was free.
	Dropped int64
	// Redundant counts requests whose target line was already cached or
	// in flight (other than runahead-in-flight when the filter is on).
	Redundant int64
	// FilteredRA counts requests dropped by the PRE-aware filter because
	// their line already had an in-flight runahead-tagged MSHR — the
	// directly-measured interference term between HW prefetch traffic and
	// runahead requests. Zero when Config.RunaheadFilter is off (such
	// duplicates then issue or land in Redundant, as hardware without the
	// filter would behave).
	FilteredRA int64
	// Overflowed counts requests the engine generated but discarded
	// because its pending queue was full — coverage lost before the
	// hierarchy ever saw the request.
	Overflowed int64
	// Fills counts lines the prefetcher installed at its fill level.
	Fills int64
	// Useful counts demand hits on prefetched lines.
	Useful int64
	// Late counts useful hits that still waited on the in-flight fill.
	Late int64
	// DemandMisses counts demand misses at the fill level — the coverage
	// denominator's "missed anyway" term.
	DemandMisses int64
}

// Add accumulates o into s (for combining per-level prefetcher stats).
func (s PFStats) Add(o PFStats) PFStats {
	return PFStats{
		Issued:       s.Issued + o.Issued,
		Dropped:      s.Dropped + o.Dropped,
		Redundant:    s.Redundant + o.Redundant,
		FilteredRA:   s.FilteredRA + o.FilteredRA,
		Overflowed:   s.Overflowed + o.Overflowed,
		Fills:        s.Fills + o.Fills,
		Useful:       s.Useful + o.Useful,
		Late:         s.Late + o.Late,
		DemandMisses: s.DemandMisses + o.DemandMisses,
	}
}

// Accuracy returns Useful/Issued (0 when nothing was issued).
func (s PFStats) Accuracy() float64 {
	return stats.Ratio(float64(s.Useful), float64(s.Issued))
}

// Coverage returns Useful/(Useful+DemandMisses): the fraction of would-be
// misses at the fill level the prefetcher converted into hits.
func (s PFStats) Coverage() float64 {
	return stats.Ratio(float64(s.Useful), float64(s.Useful+s.DemandMisses))
}

// Timeliness returns the fraction of useful prefetches whose data had
// fully arrived by the time demand consumed them.
func (s PFStats) Timeliness() float64 {
	return stats.Ratio(float64(s.Useful-s.Late), float64(s.Useful))
}

// pfCounters is the mutable issue-side counter block per prefetcher.
type pfCounters struct {
	issued, dropped, redundant, filteredRA int64
}

// engine binds one hardware prefetcher to its level: the prefetcher, its
// measurement-window issue counters, and the never-reset feedback state
// the adaptive throttle consumes. pf is nil when the level has no engine.
type engine struct {
	pf prefetch.Prefetcher
	ad prefetch.Adaptive // non-nil when pf adapts to feedback
	// level labels the engine's observing level ("l1i", "l1d", "l2") in
	// telemetry events; it carries no simulation meaning.
	level string
	// epoch is the feedback sampling interval in training observations
	// (Config.ThrottleEpoch; 0 = never sample).
	epoch int64
	cnt   pfCounters
	// overflowBase is the engine's cumulative overflow count at the last
	// stats reset; the window's Overflowed is the difference.
	overflowBase int64
	// lifeObserves and lifeIssued are lifetime counters (never reset —
	// adaptation must be oblivious to measurement windows).
	lifeObserves, lifeIssued int64
}

func newEngine(cfg prefetch.Config, level string) engine {
	e := engine{pf: cfg.New(), level: level, epoch: int64(cfg.ThrottleEpoch)}
	e.ad, _ = e.pf.(prefetch.Adaptive)
	return e
}

// observed accounts one training observation and, on an epoch boundary,
// pushes the cumulative feedback sample (issue counts plus the fill
// level's lifetime usefulness counters) to an adaptive engine. now is the
// core cycle of the observation, used only to timestamp the telemetry
// throttle-decision event; the feedback itself is cycle-oblivious.
func (e *engine) observed(h *Hierarchy, fillLevel *cache.Cache, now int64) {
	h.pfObserves++
	e.lifeObserves++
	if e.epoch > 0 && e.ad != nil && e.lifeObserves%e.epoch == 0 {
		useful, late := fillLevel.LifetimeHWPref()
		f := prefetch.Feedback{Issued: e.lifeIssued, Useful: useful, Late: late}
		if h.tel != nil {
			// Sample the effective degree around the feedback call so the
			// trace shows every throttle decision, including holds.
			if dr, ok := e.ad.(prefetch.DegreeReporter); ok {
				before := dr.Degree()
				e.ad.Feedback(f)
				h.tel.Throttle(now, e.level, before, dr.Degree(),
					stats.Ratio(float64(f.Useful), float64(f.Issued)))
				return
			}
		}
		e.ad.Feedback(f)
	}
}

// windowStats assembles the engine's measurement-window PFStats against
// its fill level's counters. With no engine configured the issue-side
// counters are zero and only the level's own demand/fill statistics
// carry through (the historical per-level behavior).
func (e *engine) windowStats(fillLevel *cache.Cache) PFStats {
	cs := fillLevel.Stats()
	s := PFStats{
		Issued: e.cnt.issued, Dropped: e.cnt.dropped,
		Redundant: e.cnt.redundant, FilteredRA: e.cnt.filteredRA,
		Fills: cs.HWPrefFills, Useful: cs.HWPrefUseful, Late: cs.HWPrefLate,
		DemandMisses: cs.Misses,
	}
	if e.pf != nil {
		s.Overflowed = e.pf.Overflowed() - e.overflowBase
	}
	return s
}

// resetWindow opens a new measurement window: issue counters restart and
// the overflow baseline re-anchors; lifetime feedback state survives.
func (e *engine) resetWindow() {
	e.cnt = pfCounters{}
	if e.pf != nil {
		e.overflowBase = e.pf.Overflowed()
	}
}

// Hierarchy is the assembled memory system. Not safe for concurrent use.
type Hierarchy struct {
	cfg Config
	l1i *cache.Cache
	l1d *cache.Cache
	l2  *cache.Cache
	l3  *cache.Cache
	ram *dram.DRAM

	// Hardware prefetch engines per observing level (pf nil when
	// disabled).
	pfI, pfD, pf2 engine

	// tel is the optional trace recorder (nil when tracing is off). Every
	// hook nil-checks it, and the recorder only ever *reads* hierarchy
	// state, so the traced and untraced machines are byte-identical.
	tel *telemetry.Recorder

	// pfObserves counts every Observe fed to any prefetcher. It is
	// engineering bookkeeping, not a reported statistic: the core's
	// retry-span amortizer treats any training during a candidate span
	// as hidden state change and refuses to fast-forward (the L2
	// prefetcher trains *before* the L2/L3 MSHR rejection, so a blocked
	// retry can still be a training event). Feedback-driven degree
	// changes ride the same guard: they only ever happen on an Observe.
	pfObserves int64
}

// New assembles a hierarchy, panicking on invalid configuration (the
// public API validates first).
func New(cfg Config) *Hierarchy {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Hierarchy{
		cfg: cfg,
		l1i: cache.New(cfg.L1I),
		l1d: cache.New(cfg.L1D),
		l2:  cache.New(cfg.L2),
		l3:  cache.New(cfg.L3),
		ram: dram.New(cfg.DRAM),
		pfI: newEngine(cfg.L1IPrefetch, "l1i"),
		pfD: newEngine(cfg.L1DPrefetch, "l1d"),
		pf2: newEngine(cfg.L2Prefetch, "l2"),
	}
}

// AttachTelemetry points the hierarchy's event hooks at a trace recorder.
// Attach after warmup (alongside ResetStats) so the trace covers exactly
// the measured window; pass nil to detach.
func (h *Hierarchy) AttachTelemetry(rec *telemetry.Recorder) { h.tel = rec }

// L1I returns the instruction cache (stats access).
func (h *Hierarchy) L1I() *cache.Cache { return h.l1i }

// L1D returns the data cache (stats access).
func (h *Hierarchy) L1D() *cache.Cache { return h.l1d }

// L2 returns the second-level cache (stats access).
func (h *Hierarchy) L2() *cache.Cache { return h.l2 }

// L3 returns the last-level cache (stats access).
func (h *Hierarchy) L3() *cache.Cache { return h.l3 }

// DRAM returns the memory model (stats access).
func (h *Hierarchy) DRAM() *dram.DRAM { return h.ram }

// PFStatsL1I returns the L1I hardware prefetcher's aggregated statistics.
func (h *Hierarchy) PFStatsL1I() PFStats { return h.pfI.windowStats(h.l1i) }

// PFStatsL1D returns the L1D hardware prefetcher's aggregated statistics.
func (h *Hierarchy) PFStatsL1D() PFStats { return h.pfD.windowStats(h.l1d) }

// PFStatsL2 returns the L2 hardware prefetcher's aggregated statistics.
func (h *Hierarchy) PFStatsL2() PFStats { return h.pf2.windowStats(h.l2) }

// PFStats returns the combined hardware-prefetch statistics — the
// headline accuracy/coverage/timeliness numbers of a PF-augmented run.
// Only levels with an enabled engine contribute: with a single engine
// the combined numbers are exactly that engine's, and with several the
// coverage denominator pools each engine's own miss stream.
func (h *Hierarchy) PFStats() PFStats {
	var s PFStats
	if h.pfI.pf != nil {
		s = s.Add(h.PFStatsL1I())
	}
	if h.pfD.pf != nil {
		s = s.Add(h.PFStatsL1D())
	}
	if h.pf2.pf != nil {
		s = s.Add(h.PFStatsL2())
	}
	return s
}

// ResetStats opens a measurement window across all levels. Prefetcher
// prediction state (like cache contents) deliberately survives: warmup
// trains the tables. The adaptive throttles' feedback state also
// survives — machine behavior must not depend on where the measurement
// window opens.
func (h *Hierarchy) ResetStats() {
	h.l1i.ResetStats()
	h.l1d.ResetStats()
	h.l2.ResetStats()
	h.l3.ResetStats()
	h.ram.ResetStats()
	h.pfI.resetWindow()
	h.pfD.resetWindow()
	h.pf2.resetWindow()
}

// writeback pushes a dirty victim from level k into level k+1. It costs no
// pipeline time (write-back buffers are assumed) but marks lines dirty so
// dirty data eventually reaches DRAM as write traffic.
func (h *Hierarchy) writeback(from Level, ev cache.Eviction, now int64) {
	if !ev.Valid || !ev.Dirty {
		return
	}
	switch from {
	case LevelL1:
		if h.l2.Contains(ev.Addr) {
			h.l2.MarkDirty(ev.Addr)
			return
		}
		ev2 := h.l2.Insert(ev.Addr, now, cache.SrcDemand)
		h.l2.MarkDirty(ev.Addr)
		h.writeback(LevelL2, ev2, now)
	case LevelL2:
		if h.l3.Contains(ev.Addr) {
			h.l3.MarkDirty(ev.Addr)
			return
		}
		ev3 := h.l3.Insert(ev.Addr, now, cache.SrcDemand)
		h.l3.MarkDirty(ev.Addr)
		h.writeback(LevelL3, ev3, now)
	case LevelL3:
		h.ram.Access(ev.Addr, now, true)
	}
}

// access runs the generic L1→L2→L3→DRAM protocol starting from the given
// L1 cache. demand=false excludes the lookup from demand statistics; src
// tags any fills (runahead or hardware prefetches). ok=false means the
// access could not even start because the first-level MSHRs are
// exhausted; the caller must retry on a later cycle.
//
//sim:hotpath
func (h *Hierarchy) access(l1 *cache.Cache, addr uint64, now int64, demand bool, src cache.Source) (Result, bool) {
	// L1.
	if hit, ready := l1.Lookup(addr, now, demand); hit {
		return Result{Ready: ready, Level: LevelL1}, true
	}
	if fill, ok := l1.MSHRLookup(addr, now); ok {
		// Secondary miss: merge into the outstanding fill.
		return Result{Ready: fill, Level: LevelMem}, true
	}
	if l1.MSHRFree(now) == 0 {
		l1.MSHRAlloc(addr, now, 0, src) // records the stall; allocation fails
		return Result{}, false
	}
	t := now + int64(l1.HitLatency())

	// A hardware prefetch is attributed at its engine's fill level only:
	// the L1D engine's copies installed en route into L2/L3 are untagged
	// (like demand fills), so each level's HWPref counters describe
	// exactly the engine attached to that level.
	downSrc := src
	if src == cache.SrcHW {
		downSrc = cache.SrcDemand
	}
	// The L2 prefetcher observes the data traffic that escapes the L1D.
	res, ok := h.accessL2(addr, t, demand, demand && l1 == h.l1d, downSrc)
	if !ok {
		return Result{}, false
	}
	h.fill(l1, addr, res.Ready, src, now)
	return res, true
}

// accessL2 runs the L2→L3→DRAM part of the protocol; t is the cycle the
// request reaches the L2. train feeds the access into the L2 hardware
// prefetcher (demand data traffic only). The caller owns the L1 fill.
//
//sim:hotpath
func (h *Hierarchy) accessL2(addr uint64, t int64, demand, train bool, src cache.Source) (Result, bool) {
	hit, ready := h.l2.Lookup(addr, t, demand)
	if train && h.pf2.pf != nil {
		h.pf2.pf.Observe(prefetch.Access{Addr: addr, Hit: hit, Cycle: t})
		h.pf2.observed(h, h.l2, t)
	}
	if hit {
		return Result{Ready: ready, Level: LevelL2}, true
	}
	if fill, ok := h.l2.MSHRLookup(addr, t); ok {
		return Result{Ready: fill, Level: LevelMem}, true
	}
	if h.l2.MSHRFree(t) == 0 {
		h.l2.MSHRAlloc(addr, t, 0, src)
		return Result{}, false
	}
	t2 := t + int64(h.l2.HitLatency())

	// L3.
	if hit, ready := h.l3.Lookup(addr, t2, demand); hit {
		h.fillL2(addr, ready, src, t)
		h.l2.MSHRAlloc(addr, t, ready, src)
		return Result{Ready: ready, Level: LevelL3}, true
	}
	if fill, ok := h.l3.MSHRLookup(addr, t2); ok {
		h.fillL2(addr, fill, src, t)
		h.l2.MSHRAlloc(addr, t, fill, src)
		return Result{Ready: fill, Level: LevelMem}, true
	}
	if h.l3.MSHRFree(t2) == 0 {
		h.l3.MSHRAlloc(addr, t2, 0, src)
		return Result{}, false
	}
	t3 := t2 + int64(h.l3.HitLatency())

	// DRAM.
	done, _ := h.ram.Access(addr, t3, false)

	// As in access: the L2 engine's fill level is the L2, so its L3
	// en-route copy is untagged.
	l3Src := src
	if src == cache.SrcHW {
		l3Src = cache.SrcDemand
	}
	ev3 := h.l3.Insert(addr, done, l3Src)
	h.writeback(LevelL3, ev3, done)
	h.l3.MSHRAlloc(addr, t2, done, src)
	h.fillL2(addr, done, src, t)
	h.l2.MSHRAlloc(addr, t, done, src)
	return Result{Ready: done, Level: LevelMem}, true
}

// fill installs a line into an L1, allocating its MSHR for the in-flight
// window and handling the victim writeback.
func (h *Hierarchy) fill(l1 *cache.Cache, addr uint64, ready int64, src cache.Source, now int64) {
	ev := l1.Insert(addr, ready, src)
	h.writeback(LevelL1, ev, ready)
	l1.MSHRAlloc(addr, now, ready, src)
}

// fillL2 installs a line into the L2 on its way up.
func (h *Hierarchy) fillL2(addr uint64, ready int64, src cache.Source, now int64) {
	ev := h.l2.Insert(addr, ready, src)
	h.writeback(LevelL2, ev, ready)
	_ = now
}

// Load issues a demand data load for the line containing addr, with no
// program counter attached (PC-indexed prefetchers skip training). The
// core issues loads through LoadPC; Load remains for PC-less callers.
// ok=false means MSHRs were exhausted and the load must retry later.
func (h *Hierarchy) Load(addr uint64, now int64) (Result, bool) {
	return h.LoadPC(addr, 0, now)
}

// LoadPC issues a demand data load for the line containing addr on behalf
// of the load instruction at pc. The access trains the hardware
// prefetchers and drains their request queues into the hierarchy.
// ok=false means MSHRs were exhausted and the load must retry later.
//
//sim:hotpath
func (h *Hierarchy) LoadPC(addr, pc uint64, now int64) (Result, bool) {
	res, ok := h.access(h.l1d, addr, now, true, cache.SrcDemand)
	if ok {
		if h.pfD.pf != nil {
			h.pfD.pf.Observe(prefetch.Access{Addr: addr, PC: pc, Hit: res.Level == LevelL1, Cycle: now})
			h.pfD.observed(h, h.l1d, now)
		}
		h.drainPrefetchers(now)
	}
	return res, ok
}

// PFObserves returns the total number of training events fed to the
// hardware prefetchers — the cycle skipper's guard against amortizing a
// span that is still training a prediction table.
func (h *Hierarchy) PFObserves() int64 { return h.pfObserves }

// Prefetch issues a runahead prefetch for the line containing addr. It
// uses the same resources as a demand load but is excluded from demand
// statistics and its fills are tagged for coverage accounting. Runahead
// prefetches do not train the hardware prefetchers (they are not demand
// traffic).
func (h *Hierarchy) Prefetch(addr uint64, now int64) (Result, bool) {
	return h.access(h.l1d, addr, now, false, cache.SrcRunahead)
}

// InjectPrefetchSet issues a batch of runahead prefetches spaced pace
// cycles apart starting at now — the fast-runahead fidelity tier's
// episode emulation path. Each address walks the same SrcRunahead access
// path as Prefetch; addresses that find the MSHRs exhausted are dropped,
// matching runahead's drop-don't-retry semantics. onIssued (may be nil)
// is called for each address actually issued. Returns the number issued.
func (h *Hierarchy) InjectPrefetchSet(addrs []uint64, now, pace int64, onIssued func(addr uint64)) int {
	issued := 0
	t := now
	for _, addr := range addrs {
		if _, ok := h.access(h.l1d, addr, t, false, cache.SrcRunahead); ok {
			issued++
			if onIssued != nil {
				onIssued(addr)
			}
		}
		// Successive injections step forward in time, modelling the paced
		// issue stream of a real episode: MSHRs freed by near-level fills
		// mid-episode become available to later prefetches, exactly as
		// they would µop by µop. Every timing structure downstream
		// (MSHR retirement, DRAM bank/bus reservation) is indexed by the
		// access time, so forward-dated accesses compose safely.
		t += pace
	}
	return issued
}

// Fetch issues an instruction fetch for the line containing addr. The
// access trains the L1I hardware prefetcher on the fetch stream and
// drains its request queue into the hierarchy.
func (h *Hierarchy) Fetch(addr uint64, now int64) (Result, bool) {
	res, ok := h.access(h.l1i, addr, now, true, cache.SrcDemand)
	if ok && h.pfI.pf != nil {
		h.pfI.pf.Observe(prefetch.Access{Addr: addr, Hit: res.Level == LevelL1, Cycle: now})
		h.pfI.observed(h, h.l1i, now)
		h.drainL1(&h.pfI, h.l1i, now)
	}
	return res, ok
}

// StoreCommit retires a store to the line containing addr. A hit marks the
// L1D line dirty. A miss write-allocates via the normal load path (the
// store buffer fetches ownership); the returned Ready is when the line
// arrives — the store-queue entry is held until then, but commit itself
// does not stall. ok=false means MSHRs were exhausted; retry.
func (h *Hierarchy) StoreCommit(addr uint64, now int64) (Result, bool) {
	if hit, ready := h.l1d.Lookup(addr, now, true); hit {
		h.l1d.MarkDirty(addr)
		return Result{Ready: ready, Level: LevelL1}, true
	}
	res, ok := h.access(h.l1d, addr, now, false, cache.SrcDemand)
	if ok {
		h.l1d.MarkDirty(addr)
	}
	return res, ok
}

// drainPrefetchers empties the data-side request queues into the
// hierarchy. Each request walks the real multi-level path — consuming
// MSHRs, DRAM banks and bus slots exactly like demand and runahead
// traffic — or is dropped (never retried) when its level's MSHRs are
// exhausted, the standard drop-on-contention policy of hardware prefetch
// engines. (The L1I engine drains on the fetch path, see Fetch.)
func (h *Hierarchy) drainPrefetchers(now int64) {
	if h.pfD.pf != nil {
		h.drainL1(&h.pfD, h.l1d, now)
	}
	if h.pf2.pf != nil {
		issued := int64(0)
		for _, addr := range h.pf2.pf.Requests() {
			switch {
			case h.filteredByRunahead(addr, now, h.l2, h.l3):
				h.pf2.cnt.filteredRA++
			case h.l2.Contains(addr) || h.l3.Contains(addr):
				h.pf2.cnt.redundant++
			case h.inFlight(h.l2, addr, now):
				h.pf2.cnt.redundant++
			default:
				if _, ok := h.accessL2(addr, now, false, false, cache.SrcHW); ok {
					h.pf2.cnt.issued++
					h.pf2.lifeIssued++
					issued++
				} else {
					h.pf2.cnt.dropped++
				}
			}
		}
		if h.tel != nil && issued > 0 {
			h.tel.PrefetchTrain(now, h.pf2.level, int(issued))
		}
	}
}

// drainL1 empties one first-level engine's request queue through the full
// multi-level path starting at its L1 (the L1D data path or the L1I fetch
// path).
func (h *Hierarchy) drainL1(e *engine, l1 *cache.Cache, now int64) {
	issued := int64(0)
	for _, addr := range e.pf.Requests() {
		switch {
		case h.filteredByRunahead(addr, now, l1, h.l2, h.l3):
			e.cnt.filteredRA++
		case l1.Contains(addr):
			e.cnt.redundant++
		case h.inFlight(l1, addr, now):
			e.cnt.redundant++
		default:
			if _, ok := h.access(l1, addr, now, false, cache.SrcHW); ok {
				e.cnt.issued++
				e.lifeIssued++
				issued++
			} else {
				e.cnt.dropped++
			}
		}
	}
	if h.tel != nil && issued > 0 {
		h.tel.PrefetchTrain(now, e.level, int(issued))
	}
}

// filteredByRunahead implements the PRE-aware filter: it reports whether
// a hardware prefetch request should be dropped as a duplicate of an
// in-flight runahead fill at the engine's own level or any deeper one. A
// runahead fill in flight is visible two ways — as a tag-present line
// whose data has not arrived (the resource-reservation model installs
// lines at miss issue) or, after an eviction, as a bare runahead-tagged
// MSHR — and both probes are side-effect free. Counting these separately
// from Redundant is what makes the runahead/HW-prefetch interference
// term directly measurable; checking the deeper levels additionally
// stops requests that would otherwise issue and tie up the engine
// level's MSHR merging into a fill runahead already started.
//
//sim:pure
func (h *Hierarchy) filteredByRunahead(addr uint64, now int64, levels ...*cache.Cache) bool {
	if !h.cfg.RunaheadFilter {
		return false
	}
	for _, c := range levels {
		if src, ok := c.InFlightSource(addr, now); ok && src == cache.SrcRunahead {
			return true
		}
		if src, ok := c.MSHRSource(addr, now); ok && src == cache.SrcRunahead {
			return true
		}
	}
	return false
}

// inFlight reports whether a fill for addr's line is already outstanding
// at the given cache.
func (h *Hierarchy) inFlight(c *cache.Cache, addr uint64, now int64) bool {
	_, ok := c.MSHRLookup(addr, now)
	return ok
}

// NextMSHRRelease returns the earliest core cycle strictly after now at
// which an occupied MSHR anywhere in the hierarchy becomes *effective*
// for a retrying access. A blocked (MSHR-exhausted) access retries with
// an identical outcome every cycle until then, which is what lets the
// core fast-forward steady retry spans.
//
// The subtlety is that a retry probes deeper levels at future cycles —
// the L2 at now plus the L1 hit latency, the L3 another L2 hit latency
// later — so a level-k MSHR whose fill completes at cycle f already
// changes a retry issued lead(k) cycles earlier. Each level's releases
// are therefore shifted back by its maximal probe lead (the I-side and
// D-side leads differ; the larger one is used, which can only wake the
// core early — harmless — never late).
//
// DRAM bank and bus busy times need no separate probe: they are embedded
// in the fill-completion times the MSHRs already carry (the timing model
// computes completions analytically at issue).
func (h *Hierarchy) NextMSHRRelease(now int64) (int64, bool) {
	lead1 := int64(h.l1i.HitLatency())
	if l := int64(h.l1d.HitLatency()); l > lead1 {
		lead1 = l
	}
	lead2 := lead1 + int64(h.l2.HitLatency())
	var best int64
	ok := false
	consider := func(c *cache.Cache, lead int64) {
		if t, tok := c.NextMSHRRelease(now + lead); tok {
			if cand := t - lead; !ok || cand < best {
				best, ok = cand, true
			}
		}
	}
	consider(h.l1i, 0)
	consider(h.l1d, 0)
	consider(h.l2, lead1)
	consider(h.l3, lead2)
	return best, ok
}

// PublishMetrics snapshots the hierarchy's measured-window counters into
// the telemetry registry: per-level cache statistics under "mem/<level>/",
// DRAM statistics under "mem/dram/", and per-engine hardware-prefetch
// statistics under "pf/<level>/". It is a post-run read of existing
// statistics — never called on the simulation hot path.
func (h *Hierarchy) PublishMetrics(reg *telemetry.Registry) {
	pubCache := func(name string, c *cache.Cache) {
		s := c.Stats()
		reg.Counter("mem/"+name+"/accesses", s.Accesses)
		reg.Counter("mem/"+name+"/hits", s.Hits)
		reg.Counter("mem/"+name+"/misses", s.Misses)
		reg.Counter("mem/"+name+"/mshr_stalls", s.MSHRStalls)
		reg.Counter("mem/"+name+"/evictions", s.Evictions)
		reg.Counter("mem/"+name+"/writebacks", s.Writebacks)
		reg.Counter("mem/"+name+"/ra_pf_fills", s.PrefetchFills)
		reg.Counter("mem/"+name+"/ra_pf_useful", s.PrefetchUseful)
		reg.Counter("mem/"+name+"/hw_pf_fills", s.HWPrefFills)
		reg.Counter("mem/"+name+"/hw_pf_useful", s.HWPrefUseful)
		reg.Counter("mem/"+name+"/hw_pf_late", s.HWPrefLate)
	}
	pubCache("l1i", h.l1i)
	pubCache("l1d", h.l1d)
	pubCache("l2", h.l2)
	pubCache("l3", h.l3)

	ds := h.ram.Stats()
	reg.Counter("mem/dram/reads", ds.Reads)
	reg.Counter("mem/dram/writes", ds.Writes)
	reg.Counter("mem/dram/row_hits", ds.RowHits)
	reg.Counter("mem/dram/row_misses", ds.RowMisses)
	reg.Counter("mem/dram/row_conflicts", ds.RowConflict)
	reg.Counter("mem/dram/bus_busy_cycles", ds.BusBusyCyc)

	pubPF := func(e *engine, s PFStats) {
		if e.pf == nil {
			return
		}
		p := "pf/" + e.level + "/"
		reg.Counter(p+"issued", s.Issued)
		reg.Counter(p+"dropped", s.Dropped)
		reg.Counter(p+"redundant", s.Redundant)
		reg.Counter(p+"filtered_ra", s.FilteredRA)
		reg.Counter(p+"overflowed", s.Overflowed)
		reg.Counter(p+"fills", s.Fills)
		reg.Counter(p+"useful", s.Useful)
		reg.Counter(p+"late", s.Late)
		reg.Gauge(p+"accuracy", s.Accuracy())
		reg.Gauge(p+"coverage", s.Coverage())
		reg.Gauge(p+"timeliness", s.Timeliness())
		if dr, ok := e.pf.(prefetch.DegreeReporter); ok {
			reg.Counter(p+"degree", int64(dr.Degree()))
		}
	}
	pubPF(&h.pfI, h.pfI.windowStats(h.l1i))
	pubPF(&h.pfD, h.pfD.windowStats(h.l1d))
	pubPF(&h.pf2, h.pf2.windowStats(h.l2))
}

// DemandLoadWouldMissLLC reports whether a load of addr would miss every
// cache level right now, without perturbing state or statistics. The
// runahead controllers use it to decide whether a runahead load is worth
// issuing as a prefetch.
func (h *Hierarchy) DemandLoadWouldMissLLC(addr uint64) bool {
	return !h.l1d.Contains(addr) && !h.l2.Contains(addr) && !h.l3.Contains(addr)
}
