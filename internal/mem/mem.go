// Package mem wires the cache levels and the DRAM model into the memory
// hierarchy of Table 1: split 32 KB L1I / 32 KB L1D, a private 256 KB L2,
// a 1 MB shared L3, and DDR3-1600 main memory.
//
// The hierarchy implements the multi-level access protocol: demand loads
// and instruction fetches walk down until they hit, allocate MSHRs at each
// missing level, and fill lines upward with the appropriate arrival times.
// Runahead prefetches use the same path (so they consume real MSHR, bank
// and bus resources — the contention that bounds runahead's usable MLP)
// but are tagged so coverage statistics can distinguish them.
//
// Latency convention: a hit at level k costs the sum of the hit latencies
// of levels 1..k (L1 4, L2 4+8, L3 4+8+30 for data), matching how Sniper
// composes its load-to-use latencies from Table 1.
package mem

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/dram"
)

// Level identifies where an access was served.
type Level uint8

// Hierarchy levels.
const (
	// LevelL1 is a first-level hit (L1D for loads, L1I for fetches).
	LevelL1 Level = 1
	// LevelL2 is a second-level hit.
	LevelL2 Level = 2
	// LevelL3 is a last-level-cache hit.
	LevelL3 Level = 3
	// LevelMem is a DRAM access.
	LevelMem Level = 4
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelL3:
		return "L3"
	case LevelMem:
		return "MEM"
	default:
		return fmt.Sprintf("level(%d)", uint8(l))
	}
}

// Config collects the per-level configurations.
type Config struct {
	L1I, L1D, L2, L3 cache.Config
	DRAM             dram.Config
}

// Default returns the paper's Table 1 memory hierarchy. MSHR counts are
// Haswell-generation (10 L1D line-fill buffers, a 16-entry L2 superqueue);
// they bound the memory-level parallelism any mechanism — demand window or
// runahead prefetching — can expose, which is what keeps the runahead
// buffer's deep single-chain replay from outrunning its fair share.
func Default() Config {
	return Config{
		L1I:  cache.Config{Name: "L1I", SizeBytes: 32 << 10, Assoc: 4, HitLatency: 2, MSHRs: 8},
		L1D:  cache.Config{Name: "L1D", SizeBytes: 32 << 10, Assoc: 8, HitLatency: 4, MSHRs: 10},
		L2:   cache.Config{Name: "L2", SizeBytes: 256 << 10, Assoc: 8, HitLatency: 8, MSHRs: 16},
		L3:   cache.Config{Name: "L3", SizeBytes: 1 << 20, Assoc: 16, HitLatency: 30, MSHRs: 32},
		DRAM: dram.Default(),
	}
}

// Validate checks every level.
func (c *Config) Validate() error {
	for _, cc := range []*cache.Config{&c.L1I, &c.L1D, &c.L2, &c.L3} {
		if err := cc.Validate(); err != nil {
			return err
		}
	}
	return c.DRAM.Validate()
}

// Result describes a completed (issued) memory access.
type Result struct {
	// Ready is the core cycle at which the data is usable.
	Ready int64
	// Level is where the access was served from.
	Level Level
}

// Hierarchy is the assembled memory system. Not safe for concurrent use.
type Hierarchy struct {
	cfg Config
	l1i *cache.Cache
	l1d *cache.Cache
	l2  *cache.Cache
	l3  *cache.Cache
	ram *dram.DRAM
}

// New assembles a hierarchy, panicking on invalid configuration (the
// public API validates first).
func New(cfg Config) *Hierarchy {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Hierarchy{
		cfg: cfg,
		l1i: cache.New(cfg.L1I),
		l1d: cache.New(cfg.L1D),
		l2:  cache.New(cfg.L2),
		l3:  cache.New(cfg.L3),
		ram: dram.New(cfg.DRAM),
	}
}

// L1I returns the instruction cache (stats access).
func (h *Hierarchy) L1I() *cache.Cache { return h.l1i }

// L1D returns the data cache (stats access).
func (h *Hierarchy) L1D() *cache.Cache { return h.l1d }

// L2 returns the second-level cache (stats access).
func (h *Hierarchy) L2() *cache.Cache { return h.l2 }

// L3 returns the last-level cache (stats access).
func (h *Hierarchy) L3() *cache.Cache { return h.l3 }

// DRAM returns the memory model (stats access).
func (h *Hierarchy) DRAM() *dram.DRAM { return h.ram }

// ResetStats opens a measurement window across all levels.
func (h *Hierarchy) ResetStats() {
	h.l1i.ResetStats()
	h.l1d.ResetStats()
	h.l2.ResetStats()
	h.l3.ResetStats()
	h.ram.ResetStats()
}

// writeback pushes a dirty victim from level k into level k+1. It costs no
// pipeline time (write-back buffers are assumed) but marks lines dirty so
// dirty data eventually reaches DRAM as write traffic.
func (h *Hierarchy) writeback(from Level, ev cache.Eviction, now int64) {
	if !ev.Valid || !ev.Dirty {
		return
	}
	switch from {
	case LevelL1:
		if h.l2.Contains(ev.Addr) {
			h.l2.MarkDirty(ev.Addr)
			return
		}
		ev2 := h.l2.Insert(ev.Addr, now, false)
		h.l2.MarkDirty(ev.Addr)
		h.writeback(LevelL2, ev2, now)
	case LevelL2:
		if h.l3.Contains(ev.Addr) {
			h.l3.MarkDirty(ev.Addr)
			return
		}
		ev3 := h.l3.Insert(ev.Addr, now, false)
		h.l3.MarkDirty(ev.Addr)
		h.writeback(LevelL3, ev3, now)
	case LevelL3:
		h.ram.Access(ev.Addr, now, true)
	}
}

// access runs the generic L1→L2→L3→DRAM protocol starting from the given
// L1 cache. demand=false marks runahead prefetches. ok=false means the
// access could not even start because the first-level MSHRs are exhausted;
// the caller must retry on a later cycle.
func (h *Hierarchy) access(l1 *cache.Cache, addr uint64, now int64, demand, prefetch bool) (Result, bool) {
	// L1.
	if hit, ready := l1.Lookup(addr, now, demand); hit {
		return Result{Ready: ready, Level: LevelL1}, true
	}
	if fill, ok := l1.MSHRLookup(addr, now); ok {
		// Secondary miss: merge into the outstanding fill.
		return Result{Ready: fill, Level: LevelMem}, true
	}
	if l1.MSHRFree(now) == 0 {
		l1.MSHRAlloc(addr, now, 0) // records the stall; allocation fails
		return Result{}, false
	}
	t := now + int64(l1.HitLatency())

	// L2.
	if hit, ready := h.l2.Lookup(addr, t, demand); hit {
		h.fill(l1, addr, ready, prefetch, now)
		return Result{Ready: ready, Level: LevelL2}, true
	}
	if fill, ok := h.l2.MSHRLookup(addr, t); ok {
		h.fill(l1, addr, fill, prefetch, now)
		return Result{Ready: fill, Level: LevelMem}, true
	}
	if h.l2.MSHRFree(t) == 0 {
		h.l2.MSHRAlloc(addr, t, 0)
		return Result{}, false
	}
	t2 := t + int64(h.l2.HitLatency())

	// L3.
	if hit, ready := h.l3.Lookup(addr, t2, demand); hit {
		h.fillL2(addr, ready, prefetch, t)
		h.fill(l1, addr, ready, prefetch, now)
		h.l2.MSHRAlloc(addr, t, ready)
		return Result{Ready: ready, Level: LevelL3}, true
	}
	if fill, ok := h.l3.MSHRLookup(addr, t2); ok {
		h.fillL2(addr, fill, prefetch, t)
		h.fill(l1, addr, fill, prefetch, now)
		h.l2.MSHRAlloc(addr, t, fill)
		return Result{Ready: fill, Level: LevelMem}, true
	}
	if h.l3.MSHRFree(t2) == 0 {
		h.l3.MSHRAlloc(addr, t2, 0)
		return Result{}, false
	}
	t3 := t2 + int64(h.l3.HitLatency())

	// DRAM.
	done, _ := h.ram.Access(addr, t3, false)

	ev3 := h.l3.Insert(addr, done, prefetch)
	h.writeback(LevelL3, ev3, done)
	h.l3.MSHRAlloc(addr, t2, done)
	h.fillL2(addr, done, prefetch, t)
	h.l2.MSHRAlloc(addr, t, done)
	h.fill(l1, addr, done, prefetch, now)
	return Result{Ready: done, Level: LevelMem}, true
}

// fill installs a line into an L1, allocating its MSHR for the in-flight
// window and handling the victim writeback.
func (h *Hierarchy) fill(l1 *cache.Cache, addr uint64, ready int64, prefetch bool, now int64) {
	ev := l1.Insert(addr, ready, prefetch)
	h.writeback(LevelL1, ev, ready)
	l1.MSHRAlloc(addr, now, ready)
}

// fillL2 installs a line into the L2 on its way up.
func (h *Hierarchy) fillL2(addr uint64, ready int64, prefetch bool, now int64) {
	ev := h.l2.Insert(addr, ready, prefetch)
	h.writeback(LevelL2, ev, ready)
	_ = now
}

// Load issues a demand data load for the line containing addr.
// ok=false means MSHRs were exhausted and the load must retry later.
func (h *Hierarchy) Load(addr uint64, now int64) (Result, bool) {
	return h.access(h.l1d, addr, now, true, false)
}

// Prefetch issues a runahead prefetch for the line containing addr. It
// uses the same resources as a demand load but is excluded from demand
// statistics and its fills are tagged for coverage accounting.
func (h *Hierarchy) Prefetch(addr uint64, now int64) (Result, bool) {
	return h.access(h.l1d, addr, now, false, true)
}

// Fetch issues an instruction fetch for the line containing addr.
func (h *Hierarchy) Fetch(addr uint64, now int64) (Result, bool) {
	return h.access(h.l1i, addr, now, true, false)
}

// StoreCommit retires a store to the line containing addr. A hit marks the
// L1D line dirty. A miss write-allocates via the normal load path (the
// store buffer fetches ownership); the returned Ready is when the line
// arrives — the store-queue entry is held until then, but commit itself
// does not stall. ok=false means MSHRs were exhausted; retry.
func (h *Hierarchy) StoreCommit(addr uint64, now int64) (Result, bool) {
	if hit, ready := h.l1d.Lookup(addr, now, true); hit {
		h.l1d.MarkDirty(addr)
		return Result{Ready: ready, Level: LevelL1}, true
	}
	res, ok := h.access(h.l1d, addr, now, false, false)
	if ok {
		h.l1d.MarkDirty(addr)
	}
	return res, ok
}

// DemandLoadWouldMissLLC reports whether a load of addr would miss every
// cache level right now, without perturbing state or statistics. The
// runahead controllers use it to decide whether a runahead load is worth
// issuing as a prefetch.
func (h *Hierarchy) DemandLoadWouldMissLLC(addr uint64) bool {
	return !h.l1d.Contains(addr) && !h.l2.Contains(addr) && !h.l3.Contains(addr)
}
