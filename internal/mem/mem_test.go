package mem

import (
	"testing"
	"testing/quick"
)

func TestDefaultConfigValid(t *testing.T) {
	cfg := Default()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestLevelString(t *testing.T) {
	for l, want := range map[Level]string{LevelL1: "L1", LevelL2: "L2", LevelL3: "L3", LevelMem: "MEM"} {
		if l.String() != want {
			t.Errorf("%d.String() = %q, want %q", l, l.String(), want)
		}
	}
}

func TestColdLoadGoesToDRAM(t *testing.T) {
	h := New(Default())
	res, ok := h.Load(0x100000, 0)
	if !ok {
		t.Fatal("cold load must issue")
	}
	if res.Level != LevelMem {
		t.Errorf("level = %v, want MEM", res.Level)
	}
	// Path: L1(4) + L2(8) + L3(30) + DRAM(ctrl 16 + tRCD 37 + tCL 37 + burst 14).
	want := int64(4 + 8 + 30 + 80 + 37 + 37 + 14)
	if res.Ready != want {
		t.Errorf("ready = %d, want %d", res.Ready, want)
	}
}

func TestSecondLoadHitsL1(t *testing.T) {
	h := New(Default())
	first, _ := h.Load(0x100000, 0)
	res, ok := h.Load(0x100000, first.Ready+1)
	if !ok || res.Level != LevelL1 {
		t.Fatalf("warm load: level=%v ok=%v, want L1 hit", res.Level, ok)
	}
	if res.Ready != first.Ready+1+4 {
		t.Errorf("L1 hit latency wrong: %d", res.Ready-first.Ready-1)
	}
}

func TestSecondaryMissMerges(t *testing.T) {
	h := New(Default())
	first, _ := h.Load(0x100000, 0)
	// Another load to the same line while in flight merges, completing at
	// the same fill time, without a second DRAM access.
	res, ok := h.Load(0x100008, 10)
	if !ok {
		t.Fatal("secondary miss must not be rejected")
	}
	if res.Ready != first.Ready {
		t.Errorf("secondary ready = %d, want primary fill %d", res.Ready, first.Ready)
	}
	if h.DRAM().Stats().Reads != 1 {
		t.Errorf("DRAM reads = %d, want 1 (merged)", h.DRAM().Stats().Reads)
	}
}

func TestDifferentLinesOverlapInDRAM(t *testing.T) {
	h := New(Default())
	r1, _ := h.Load(0x100000, 0)
	r2, _ := h.Load(0x200000, 0) // different bank
	serial := 2 * (r1.Ready - 0)
	if r2.Ready >= serial {
		t.Errorf("no MLP: second load ready at %d, serial would be %d", r2.Ready, serial)
	}
}

func TestMSHRExhaustionRejects(t *testing.T) {
	h := New(Default()) // L1D has 10 MSHRs
	issued := 0
	for i := 0; i < 24; i++ {
		_, ok := h.Load(uint64(i)*0x10000, 0)
		if ok {
			issued++
		}
	}
	if issued != 10 {
		t.Errorf("issued %d concurrent misses, want 10 (L1D MSHR bound)", issued)
	}
	if h.L1D().Stats().MSHRStalls == 0 {
		t.Error("MSHR stalls not recorded")
	}
}

func TestMSHRRecycleAllowsRetry(t *testing.T) {
	h := New(Default())
	var lastReady int64
	for i := 0; i < 10; i++ {
		r, _ := h.Load(uint64(i)*0x10000, 0)
		lastReady = max64(lastReady, r.Ready)
	}
	if _, ok := h.Load(0xFF0000, 0); ok {
		t.Fatal("11th miss must be rejected")
	}
	if _, ok := h.Load(0xFF0000, lastReady+1); !ok {
		t.Fatal("retry after fills complete must succeed")
	}
}

func TestPrefetchWarmsHierarchy(t *testing.T) {
	h := New(Default())
	pre, ok := h.Prefetch(0x300000, 0)
	if !ok || pre.Level != LevelMem {
		t.Fatalf("prefetch: %+v ok=%v", pre, ok)
	}
	// Demand load after the fill is an L1 hit.
	res, _ := h.Load(0x300000, pre.Ready+1)
	if res.Level != LevelL1 {
		t.Errorf("post-prefetch level = %v, want L1", res.Level)
	}
	if h.L1D().Stats().PrefetchUseful != 1 {
		t.Errorf("prefetch usefulness = %d, want 1", h.L1D().Stats().PrefetchUseful)
	}
}

func TestPrefetchInFlightDemandMerge(t *testing.T) {
	h := New(Default())
	pre, _ := h.Prefetch(0x300000, 0)
	// Demand load issued while the prefetch is in flight: data ready at the
	// prefetch's fill time (partial coverage), not a new DRAM trip.
	res, ok := h.Load(0x300000, 50)
	if !ok {
		t.Fatal("merged demand load rejected")
	}
	if res.Ready != pre.Ready {
		t.Errorf("demand ready %d, want merge at %d", res.Ready, pre.Ready)
	}
	if h.DRAM().Stats().Reads != 1 {
		t.Errorf("DRAM reads = %d, want 1", h.DRAM().Stats().Reads)
	}
}

func TestPrefetchDoesNotPolluteDemandStats(t *testing.T) {
	h := New(Default())
	h.Prefetch(0x300000, 0)
	s := h.L1D().Stats()
	if s.Accesses != 0 || s.Misses != 0 {
		t.Errorf("prefetch polluted demand stats: %+v", s)
	}
	if s.PrefetchFills != 1 {
		t.Errorf("prefetch fills = %d, want 1", s.PrefetchFills)
	}
}

func TestFetchUsesL1I(t *testing.T) {
	h := New(Default())
	res, ok := h.Fetch(0x400000, 0)
	if !ok || res.Level != LevelMem {
		t.Fatalf("cold fetch: %+v", res)
	}
	res2, _ := h.Fetch(0x400000, res.Ready+1)
	if res2.Level != LevelL1 {
		t.Errorf("warm fetch level = %v, want L1", res2.Level)
	}
	if res2.Ready-(res.Ready+1) != 2 {
		t.Errorf("L1I latency = %d, want 2", res2.Ready-(res.Ready+1))
	}
	if h.L1D().Stats().Accesses != 0 {
		t.Error("fetch must not touch L1D")
	}
}

func TestStoreCommitHitMarksDirty(t *testing.T) {
	h := New(Default())
	r, _ := h.Load(0x500000, 0)
	res, ok := h.StoreCommit(0x500000, r.Ready+1)
	if !ok || res.Level != LevelL1 {
		t.Fatalf("store to resident line: %+v", res)
	}
	// Force eviction pressure later: the dirty line must eventually write
	// back. Directly check the dirty bit via invalidate.
	_, dirty := h.L1D().Invalidate(0x500000)
	if !dirty {
		t.Error("store commit did not mark line dirty")
	}
}

func TestStoreCommitMissWriteAllocates(t *testing.T) {
	h := New(Default())
	res, ok := h.StoreCommit(0x600000, 0)
	if !ok {
		t.Fatal("store miss must issue")
	}
	if res.Level != LevelMem {
		t.Errorf("store-miss level = %v, want MEM", res.Level)
	}
	if !h.L1D().Contains(0x600000) {
		t.Error("write-allocate did not install line")
	}
	_, dirty := h.L1D().Invalidate(0x600000)
	if !dirty {
		t.Error("allocated store line not dirty")
	}
}

func TestDemandLoadWouldMissLLC(t *testing.T) {
	h := New(Default())
	if !h.DemandLoadWouldMissLLC(0x700000) {
		t.Error("cold line must report LLC miss")
	}
	r, _ := h.Load(0x700000, 0)
	_ = r
	if h.DemandLoadWouldMissLLC(0x700000) {
		t.Error("loaded line must not report LLC miss")
	}
}

func TestL3HitLatency(t *testing.T) {
	h := New(Default())
	r, _ := h.Load(0x800000, 0)
	// Evict from L1 and L2 but not L3, then re-load: must be an L3 hit.
	h.L1D().Invalidate(0x800000)
	h.L2().Invalidate(0x800000)
	now := r.Ready + 10
	res, _ := h.Load(0x800000, now)
	if res.Level != LevelL3 {
		t.Fatalf("level = %v, want L3", res.Level)
	}
	if res.Ready-now != 4+8+30 {
		t.Errorf("L3 hit latency = %d, want 42", res.Ready-now)
	}
}

func TestL2HitLatency(t *testing.T) {
	h := New(Default())
	r, _ := h.Load(0x900000, 0)
	h.L1D().Invalidate(0x900000)
	now := r.Ready + 10
	res, _ := h.Load(0x900000, now)
	if res.Level != LevelL2 {
		t.Fatalf("level = %v, want L2", res.Level)
	}
	if res.Ready-now != 4+8 {
		t.Errorf("L2 hit latency = %d, want 12", res.Ready-now)
	}
}

func TestResetStats(t *testing.T) {
	h := New(Default())
	h.Load(0x100000, 0)
	h.Fetch(0x200000, 0)
	h.ResetStats()
	if h.L1D().Stats().Accesses != 0 || h.L1I().Stats().Accesses != 0 ||
		h.DRAM().Stats().Reads != 0 {
		t.Error("ResetStats incomplete")
	}
}

// Property: a load's ready time is always strictly later than issue, and
// hits get faster (or equal) as lines move up the hierarchy.
func TestPropertyLoadLatencyOrdering(t *testing.T) {
	f := func(lineSel uint16) bool {
		addr := (uint64(lineSel) << 6) | 0x1000000
		h := New(Default())
		cold, ok := h.Load(addr, 0)
		if !ok || cold.Ready <= 0 {
			return false
		}
		warm, ok := h.Load(addr, cold.Ready+1)
		if !ok {
			return false
		}
		return warm.Ready-(cold.Ready+1) <= cold.Ready-0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
