package mem

import (
	"testing"
	"testing/quick"

	"repro/internal/prefetch"
	"repro/internal/uarch"
)

func TestDefaultConfigValid(t *testing.T) {
	cfg := Default()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestLevelString(t *testing.T) {
	for l, want := range map[Level]string{LevelL1: "L1", LevelL2: "L2", LevelL3: "L3", LevelMem: "MEM"} {
		if l.String() != want {
			t.Errorf("%d.String() = %q, want %q", l, l.String(), want)
		}
	}
}

func TestColdLoadGoesToDRAM(t *testing.T) {
	h := New(Default())
	res, ok := h.Load(0x100000, 0)
	if !ok {
		t.Fatal("cold load must issue")
	}
	if res.Level != LevelMem {
		t.Errorf("level = %v, want MEM", res.Level)
	}
	// Path: L1(4) + L2(8) + L3(30) + DRAM(ctrl 16 + tRCD 37 + tCL 37 + burst 14).
	want := int64(4 + 8 + 30 + 80 + 37 + 37 + 14)
	if res.Ready != want {
		t.Errorf("ready = %d, want %d", res.Ready, want)
	}
}

func TestSecondLoadHitsL1(t *testing.T) {
	h := New(Default())
	first, _ := h.Load(0x100000, 0)
	res, ok := h.Load(0x100000, first.Ready+1)
	if !ok || res.Level != LevelL1 {
		t.Fatalf("warm load: level=%v ok=%v, want L1 hit", res.Level, ok)
	}
	if res.Ready != first.Ready+1+4 {
		t.Errorf("L1 hit latency wrong: %d", res.Ready-first.Ready-1)
	}
}

func TestSecondaryMissMerges(t *testing.T) {
	h := New(Default())
	first, _ := h.Load(0x100000, 0)
	// Another load to the same line while in flight merges, completing at
	// the same fill time, without a second DRAM access.
	res, ok := h.Load(0x100008, 10)
	if !ok {
		t.Fatal("secondary miss must not be rejected")
	}
	if res.Ready != first.Ready {
		t.Errorf("secondary ready = %d, want primary fill %d", res.Ready, first.Ready)
	}
	if h.DRAM().Stats().Reads != 1 {
		t.Errorf("DRAM reads = %d, want 1 (merged)", h.DRAM().Stats().Reads)
	}
}

func TestDifferentLinesOverlapInDRAM(t *testing.T) {
	h := New(Default())
	r1, _ := h.Load(0x100000, 0)
	r2, _ := h.Load(0x200000, 0) // different bank
	serial := 2 * (r1.Ready - 0)
	if r2.Ready >= serial {
		t.Errorf("no MLP: second load ready at %d, serial would be %d", r2.Ready, serial)
	}
}

func TestMSHRExhaustionRejects(t *testing.T) {
	h := New(Default()) // L1D has 10 MSHRs
	issued := 0
	for i := 0; i < 24; i++ {
		_, ok := h.Load(uint64(i)*0x10000, 0)
		if ok {
			issued++
		}
	}
	if issued != 10 {
		t.Errorf("issued %d concurrent misses, want 10 (L1D MSHR bound)", issued)
	}
	if h.L1D().Stats().MSHRStalls == 0 {
		t.Error("MSHR stalls not recorded")
	}
}

func TestMSHRRecycleAllowsRetry(t *testing.T) {
	h := New(Default())
	var lastReady int64
	for i := 0; i < 10; i++ {
		r, _ := h.Load(uint64(i)*0x10000, 0)
		lastReady = max64(lastReady, r.Ready)
	}
	if _, ok := h.Load(0xFF0000, 0); ok {
		t.Fatal("11th miss must be rejected")
	}
	if _, ok := h.Load(0xFF0000, lastReady+1); !ok {
		t.Fatal("retry after fills complete must succeed")
	}
}

func TestPrefetchWarmsHierarchy(t *testing.T) {
	h := New(Default())
	pre, ok := h.Prefetch(0x300000, 0)
	if !ok || pre.Level != LevelMem {
		t.Fatalf("prefetch: %+v ok=%v", pre, ok)
	}
	// Demand load after the fill is an L1 hit.
	res, _ := h.Load(0x300000, pre.Ready+1)
	if res.Level != LevelL1 {
		t.Errorf("post-prefetch level = %v, want L1", res.Level)
	}
	if h.L1D().Stats().PrefetchUseful != 1 {
		t.Errorf("prefetch usefulness = %d, want 1", h.L1D().Stats().PrefetchUseful)
	}
}

func TestPrefetchInFlightDemandMerge(t *testing.T) {
	h := New(Default())
	pre, _ := h.Prefetch(0x300000, 0)
	// Demand load issued while the prefetch is in flight: data ready at the
	// prefetch's fill time (partial coverage), not a new DRAM trip.
	res, ok := h.Load(0x300000, 50)
	if !ok {
		t.Fatal("merged demand load rejected")
	}
	if res.Ready != pre.Ready {
		t.Errorf("demand ready %d, want merge at %d", res.Ready, pre.Ready)
	}
	if h.DRAM().Stats().Reads != 1 {
		t.Errorf("DRAM reads = %d, want 1", h.DRAM().Stats().Reads)
	}
}

func TestPrefetchDoesNotPolluteDemandStats(t *testing.T) {
	h := New(Default())
	h.Prefetch(0x300000, 0)
	s := h.L1D().Stats()
	if s.Accesses != 0 || s.Misses != 0 {
		t.Errorf("prefetch polluted demand stats: %+v", s)
	}
	if s.PrefetchFills != 1 {
		t.Errorf("prefetch fills = %d, want 1", s.PrefetchFills)
	}
}

func TestFetchUsesL1I(t *testing.T) {
	h := New(Default())
	res, ok := h.Fetch(0x400000, 0)
	if !ok || res.Level != LevelMem {
		t.Fatalf("cold fetch: %+v", res)
	}
	res2, _ := h.Fetch(0x400000, res.Ready+1)
	if res2.Level != LevelL1 {
		t.Errorf("warm fetch level = %v, want L1", res2.Level)
	}
	if res2.Ready-(res.Ready+1) != 2 {
		t.Errorf("L1I latency = %d, want 2", res2.Ready-(res.Ready+1))
	}
	if h.L1D().Stats().Accesses != 0 {
		t.Error("fetch must not touch L1D")
	}
}

func TestStoreCommitHitMarksDirty(t *testing.T) {
	h := New(Default())
	r, _ := h.Load(0x500000, 0)
	res, ok := h.StoreCommit(0x500000, r.Ready+1)
	if !ok || res.Level != LevelL1 {
		t.Fatalf("store to resident line: %+v", res)
	}
	// Force eviction pressure later: the dirty line must eventually write
	// back. Directly check the dirty bit via invalidate.
	_, dirty := h.L1D().Invalidate(0x500000)
	if !dirty {
		t.Error("store commit did not mark line dirty")
	}
}

func TestStoreCommitMissWriteAllocates(t *testing.T) {
	h := New(Default())
	res, ok := h.StoreCommit(0x600000, 0)
	if !ok {
		t.Fatal("store miss must issue")
	}
	if res.Level != LevelMem {
		t.Errorf("store-miss level = %v, want MEM", res.Level)
	}
	if !h.L1D().Contains(0x600000) {
		t.Error("write-allocate did not install line")
	}
	_, dirty := h.L1D().Invalidate(0x600000)
	if !dirty {
		t.Error("allocated store line not dirty")
	}
}

func TestDemandLoadWouldMissLLC(t *testing.T) {
	h := New(Default())
	if !h.DemandLoadWouldMissLLC(0x700000) {
		t.Error("cold line must report LLC miss")
	}
	r, _ := h.Load(0x700000, 0)
	_ = r
	if h.DemandLoadWouldMissLLC(0x700000) {
		t.Error("loaded line must not report LLC miss")
	}
}

func TestL3HitLatency(t *testing.T) {
	h := New(Default())
	r, _ := h.Load(0x800000, 0)
	// Evict from L1 and L2 but not L3, then re-load: must be an L3 hit.
	h.L1D().Invalidate(0x800000)
	h.L2().Invalidate(0x800000)
	now := r.Ready + 10
	res, _ := h.Load(0x800000, now)
	if res.Level != LevelL3 {
		t.Fatalf("level = %v, want L3", res.Level)
	}
	if res.Ready-now != 4+8+30 {
		t.Errorf("L3 hit latency = %d, want 42", res.Ready-now)
	}
}

func TestL2HitLatency(t *testing.T) {
	h := New(Default())
	r, _ := h.Load(0x900000, 0)
	h.L1D().Invalidate(0x900000)
	now := r.Ready + 10
	res, _ := h.Load(0x900000, now)
	if res.Level != LevelL2 {
		t.Fatalf("level = %v, want L2", res.Level)
	}
	if res.Ready-now != 4+8 {
		t.Errorf("L2 hit latency = %d, want 12", res.Ready-now)
	}
}

func TestResetStats(t *testing.T) {
	h := New(Default())
	h.Load(0x100000, 0)
	h.Fetch(0x200000, 0)
	h.ResetStats()
	if h.L1D().Stats().Accesses != 0 || h.L1I().Stats().Accesses != 0 ||
		h.DRAM().Stats().Reads != 0 {
		t.Error("ResetStats incomplete")
	}
}

// Property: a load's ready time is always strictly later than issue, and
// hits get faster (or equal) as lines move up the hierarchy.
func TestPropertyLoadLatencyOrdering(t *testing.T) {
	f := func(lineSel uint16) bool {
		addr := (uint64(lineSel) << 6) | 0x1000000
		h := New(Default())
		cold, ok := h.Load(addr, 0)
		if !ok || cold.Ready <= 0 {
			return false
		}
		warm, ok := h.Load(addr, cold.Ready+1)
		if !ok {
			return false
		}
		return warm.Ready-(cold.Ready+1) <= cold.Ready-0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// --- hardware prefetcher integration ---------------------------------------

func strideConfig() Config {
	cfg := Default()
	cfg.L1DPrefetch = prefetch.DefaultStride()
	return cfg
}

// A strided demand stream must train the L1D prefetcher, whose fills turn
// later demand loads into L1 hits tagged as hardware-prefetch usefulness.
func TestStridePrefetcherCoversStream(t *testing.T) {
	h := New(strideConfig())
	const pc = 0x400100
	addr := uint64(1 << 24)
	now := int64(0)
	hwHits := 0
	for i := 0; i < 64; i++ {
		res, ok := h.LoadPC(addr, pc, now)
		if !ok {
			now += 50 // MSHR pressure: retry later
			continue
		}
		if res.Level == LevelL1 {
			hwHits++
		}
		now = res.Ready + 1
		addr += uarch.LineSize
	}
	pf := h.PFStatsL1D()
	if pf.Issued == 0 {
		t.Fatal("stride prefetcher never issued into the hierarchy")
	}
	if pf.Fills == 0 || pf.Useful == 0 {
		t.Errorf("prefetches filled %d lines, %d useful — stream not covered", pf.Fills, pf.Useful)
	}
	if pf.Accuracy() <= 0 || pf.Accuracy() > 1 {
		t.Errorf("accuracy %.2f out of range", pf.Accuracy())
	}
	if pf.Coverage() <= 0 || pf.Coverage() > 1 {
		t.Errorf("coverage %.2f out of range", pf.Coverage())
	}
	if hwHits == 0 {
		t.Error("no demand load ever hit a prefetched line")
	}
}

// Hardware prefetches consume real L1D MSHRs: with the prefetcher eating
// into the 10 line-fill buffers, fewer concurrent demand misses fit.
func TestHWPrefetchConsumesMSHRs(t *testing.T) {
	h := New(strideConfig())
	// Train the prefetcher so its requests are in flight.
	const pc = 0x400100
	addr := uint64(1 << 24)
	for i := 0; i < 8; i++ {
		h.LoadPC(addr, pc, 0)
		addr += uarch.LineSize
	}
	if h.PFStatsL1D().Issued == 0 {
		t.Fatal("prefetcher did not issue during training")
	}
	free := h.L1D().MSHRFree(0)
	if free >= h.L1D().Config().MSHRs {
		t.Errorf("MSHRs free = %d, want fewer than %d (prefetches must occupy them)",
			free, h.L1D().Config().MSHRs)
	}
}

// When MSHRs are exhausted, prefetch requests are dropped (never retried)
// and counted, instead of wedging the access path.
func TestHWPrefetchDropsOnMSHRExhaustion(t *testing.T) {
	cfg := strideConfig()
	cfg.L1DPrefetch.Degree = 8
	cfg.L1D.MSHRs = 2
	h := New(cfg)
	const pc = 0x400100
	addr := uint64(1 << 24)
	now := int64(0)
	for i := 0; i < 32; i++ {
		// Wait for each fill so the demand load always starts (training
		// happens) while its own MSHR plus one prefetch exhaust the pool:
		// the rest of the degree-8 burst must drop.
		res, ok := h.LoadPC(addr, pc, now)
		if ok {
			now = res.Ready + 1
		} else {
			now += 300
		}
		addr += uarch.LineSize
	}
	pf := h.PFStatsL1D()
	if pf.Dropped == 0 {
		t.Error("no prefetches dropped under MSHR starvation")
	}
}

// The L2 best-offset prefetcher fills the L2, not the L1: a covered
// demand load becomes an L2 hit.
func TestBestOffsetFillsL2(t *testing.T) {
	cfg := Default()
	cfg.L2Prefetch = prefetch.DefaultBestOffset()
	h := New(cfg)
	addr := uint64(1 << 26)
	now := int64(0)
	for i := 0; i < 256; i++ {
		res, ok := h.Load(addr, now) // PC-less: best-offset trains on addresses
		if ok {
			now = res.Ready + 1
		} else {
			now += 50
		}
		addr += uarch.LineSize
	}
	pf := h.PFStatsL2()
	if pf.Issued == 0 || pf.Fills == 0 {
		t.Fatalf("L2 prefetcher issued=%d fills=%d on a sequential stream", pf.Issued, pf.Fills)
	}
	if pf.Useful == 0 {
		t.Error("no L2 demand hit on a prefetched line")
	}
	if got := h.L1D().Stats().HWPrefFills; got != 0 {
		t.Errorf("L2 prefetcher filled %d lines into the L1D", got)
	}
}

// HW prefetch fills are attributed at the engine's own level only: with
// just the L1D engine enabled, the L2/L3 copies installed en route stay
// untagged, and the combined PFStats equal the L1D engine's.
func TestHWPrefetchAttributedPerEngine(t *testing.T) {
	h := New(strideConfig()) // L1D stride only, no L2 engine
	const pc = 0x400100
	addr := uint64(1 << 24)
	now := int64(0)
	for i := 0; i < 64; i++ {
		if res, ok := h.LoadPC(addr, pc, now); ok {
			now = res.Ready + 1
		} else {
			now += 50
		}
		addr += uarch.LineSize
	}
	l1 := h.PFStatsL1D()
	if l1.Fills == 0 {
		t.Fatal("L1D engine filled nothing")
	}
	if got := h.L2().Stats().HWPrefFills; got != 0 {
		t.Errorf("disabled L2 engine credited with %d fills (L1D en-route copies tagged)", got)
	}
	if got := h.L3().Stats().HWPrefFills; got != 0 {
		t.Errorf("L3 credited with %d HW fills", got)
	}
	if combined := h.PFStats(); combined != l1 {
		t.Errorf("combined stats %+v != L1D engine stats %+v with a single engine", combined, l1)
	}
}

// Runahead and hardware prefetch fills are attributed separately.
func TestRunaheadAndHWPrefetchSeparated(t *testing.T) {
	h := New(strideConfig())
	pre, _ := h.Prefetch(1<<30, 0)
	h.Load(1<<30, pre.Ready+1)
	l1d := h.L1D().Stats()
	if l1d.PrefetchFills != 1 || l1d.PrefetchUseful != 1 {
		t.Errorf("runahead fills/useful = %d/%d, want 1/1", l1d.PrefetchFills, l1d.PrefetchUseful)
	}
	if l1d.HWPrefUseful != 0 {
		t.Error("runahead fill counted as hardware-prefetch usefulness")
	}
}

// Redundant requests (line already cached or in flight) never re-access
// the hierarchy.
func TestHWPrefetchRedundantFiltered(t *testing.T) {
	h := New(strideConfig())
	const pc = 0x400100
	// Walk the same tiny region twice: the second pass's prefetch targets
	// are all resident.
	for pass := 0; pass < 2; pass++ {
		addr := uint64(1 << 24)
		now := int64(100_000 * pass)
		for i := 0; i < 16; i++ {
			if res, ok := h.LoadPC(addr, pc, now); ok {
				now = res.Ready + 1
			}
			addr += uarch.LineSize
		}
	}
	if h.PFStatsL1D().Redundant == 0 {
		t.Error("no redundant prefetches filtered on a re-walk")
	}
}

// With prefetching disabled the PF statistics stay zero and ResetStats
// clears the issue counters.
func TestPFStatsDisabledAndReset(t *testing.T) {
	h := New(Default())
	for i := 0; i < 16; i++ {
		h.LoadPC(uint64(1<<24)+uint64(i)*uarch.LineSize, 0x400100, int64(i)*400)
	}
	if s := h.PFStats(); s != (PFStats{DemandMisses: s.DemandMisses}) {
		t.Errorf("disabled prefetcher accumulated stats: %+v", s)
	}
	h2 := New(strideConfig())
	for i := 0; i < 16; i++ {
		h2.LoadPC(uint64(1<<24)+uint64(i)*uarch.LineSize, 0x400100, int64(i)*400)
	}
	h2.ResetStats()
	s := h2.PFStatsL1D()
	if s.Issued != 0 || s.Fills != 0 || s.Useful != 0 {
		t.Errorf("ResetStats left PF stats: %+v", s)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// --- adaptive prefetching layer ---------------------------------------------

// l1iConfig enables the fetch-stream next-line engine.
func l1iConfig() Config {
	cfg := Default()
	cfg.L1IPrefetch = prefetch.DefaultL1INextLine()
	return cfg
}

// TestL1IPrefetchCoversFetchStream drives a sequential instruction sweep
// (the codewalk pattern) and requires the L1I engine to issue, fill and
// convert would-be fetch misses into hits.
func TestL1IPrefetchCoversFetchStream(t *testing.T) {
	h := New(l1iConfig())
	addr := uint64(0x10000000)
	now := int64(0)
	for i := 0; i < 64; i++ {
		res, ok := h.Fetch(addr, now)
		if !ok {
			now += 50
			continue
		}
		now = res.Ready + 1
		addr += uarch.LineSize
	}
	pf := h.PFStatsL1I()
	if pf.Issued == 0 {
		t.Fatal("L1I prefetcher never issued on a sequential fetch sweep")
	}
	if pf.Fills == 0 || pf.Useful == 0 {
		t.Errorf("L1I prefetches filled %d lines, %d useful — fetch stream not covered", pf.Fills, pf.Useful)
	}
	if got := h.PFStats(); got != pf {
		t.Errorf("combined PFStats %+v != L1I stats %+v with only the L1I engine enabled", got, pf)
	}
}

// TestRunaheadFilterCountsSeparately pins the PRE-aware filter semantics:
// a hardware prefetch request whose line is an in-flight runahead fill is
// dropped as FilteredRA with the filter on, and stays lumped into
// Redundant (exact legacy behavior) with it off.
func TestRunaheadFilterCountsSeparately(t *testing.T) {
	for _, filter := range []bool{true, false} {
		cfg := strideConfig()
		cfg.RunaheadFilter = filter
		h := New(cfg)
		const pc = 0x400100
		base := uint64(1 << 24)
		// Two loads build stride confidence without triggering (conf 2 is
		// reached on the second observed stride).
		now := int64(0)
		for i := 0; i < 2; i++ {
			if _, ok := h.LoadPC(base+uint64(i)*uarch.LineSize, pc, now); !ok {
				t.Fatal("training load rejected")
			}
			now += 400 // let fills complete so MSHRs stay free
		}
		// The next load will request lines (2+16) and (2+17) ahead of
		// base. Make the first of those an in-flight runahead fill.
		target := base + uint64(2+16)*uarch.LineSize
		if _, ok := h.Prefetch(target, now); !ok {
			t.Fatal("runahead prefetch rejected")
		}
		if _, ok := h.LoadPC(base+2*uarch.LineSize, pc, now); !ok {
			t.Fatal("triggering load rejected")
		}
		pf := h.PFStatsL1D()
		if filter {
			if pf.FilteredRA != 1 {
				t.Errorf("filter on: FilteredRA = %d, want 1 (%+v)", pf.FilteredRA, pf)
			}
			if pf.Redundant != 0 {
				t.Errorf("filter on: Redundant = %d, want 0 (%+v)", pf.Redundant, pf)
			}
		} else {
			if pf.FilteredRA != 0 {
				t.Errorf("filter off: FilteredRA = %d, want 0 (%+v)", pf.FilteredRA, pf)
			}
			if pf.Redundant != 1 {
				t.Errorf("filter off: Redundant = %d, want 1 (%+v)", pf.Redundant, pf)
			}
		}
	}
}

// TestRunaheadFilterIgnoresDemandFills: only runahead-tagged in-flight
// lines are filtered — a demand fill in flight stays Redundant even with
// the filter on.
func TestRunaheadFilterIgnoresDemandFills(t *testing.T) {
	cfg := strideConfig()
	cfg.RunaheadFilter = true
	h := New(cfg)
	const pc = 0x400100
	base := uint64(1 << 24)
	now := int64(0)
	for i := 0; i < 2; i++ {
		h.LoadPC(base+uint64(i)*uarch.LineSize, pc, now)
		now += 400
	}
	// A PC-less demand load (no training) puts the future stride target
	// in flight as a demand fill.
	target := base + uint64(2+16)*uarch.LineSize
	if _, ok := h.Load(target, now); !ok {
		t.Fatal("demand load rejected")
	}
	h.LoadPC(base+2*uarch.LineSize, pc, now)
	pf := h.PFStatsL1D()
	if pf.FilteredRA != 0 {
		t.Errorf("demand in-flight line counted as FilteredRA (%+v)", pf)
	}
	if pf.Redundant == 0 {
		t.Errorf("demand in-flight duplicate not counted Redundant (%+v)", pf)
	}
}

// TestThrottleFeedbackReducesDegree drives a throttled L1D stride engine
// with a pattern that trains confidently but never consumes its
// prefetches (the stream re-bases before reaching the prefetch distance),
// and requires the effective degree to fall — fewer requests per trigger
// than the configured maximum once feedback accumulates.
func TestThrottleFeedbackReducesDegree(t *testing.T) {
	cfg := Default()
	cfg.L1DPrefetch = prefetch.ThrottledStride()
	cfg.L1DPrefetch.ThrottleEpoch = 32
	h := New(cfg)
	const pc = 0x400100
	now := int64(0)
	// Many short bursts in fresh regions: stride confidence holds within
	// a burst (constant stride), prefetches land 16 strides ahead, but
	// the burst ends long before the stream gets there — accuracy ~0.
	for burst := uint64(0); burst < 64; burst++ {
		base := uint64(1<<24) + burst<<20
		for i := uint64(0); i < 8; i++ {
			if _, ok := h.LoadPC(base+i*uarch.LineSize, pc, now); !ok {
				now += 200
				continue
			}
			now += 400
		}
	}
	type degreer interface{ Degree() int }
	d, ok := h.pfD.pf.(degreer)
	if !ok {
		t.Fatal("throttled config did not build a degree-controlled engine")
	}
	if d.Degree() >= cfg.L1DPrefetch.Degree {
		t.Errorf("effective degree %d did not drop below max %d on a useless-prefetch pattern",
			d.Degree(), cfg.L1DPrefetch.Degree)
	}
	if d.Degree() < 1 {
		t.Errorf("effective degree %d fell below 1", d.Degree())
	}
}

// TestPFStatsAddCombinesNewCounters pins the new fields through the
// PFStats combinator.
func TestPFStatsAddCombinesNewCounters(t *testing.T) {
	a := PFStats{Issued: 1, FilteredRA: 2, Overflowed: 3}
	b := PFStats{Issued: 10, FilteredRA: 20, Overflowed: 30}
	got := a.Add(b)
	if got.Issued != 11 || got.FilteredRA != 22 || got.Overflowed != 33 {
		t.Errorf("Add dropped counters: %+v", got)
	}
}

// TestPerLevelPFStatsSafeWithoutEngine: querying a level's PF stats when
// no engine is configured must return zero issue counters (plus the
// level's own demand statistics), not crash.
func TestPerLevelPFStatsSafeWithoutEngine(t *testing.T) {
	h := New(Default())
	h.Load(0x1000, 0)
	for _, s := range []PFStats{h.PFStatsL1I(), h.PFStatsL1D(), h.PFStatsL2()} {
		if s.Issued != 0 || s.Overflowed != 0 || s.FilteredRA != 0 {
			t.Errorf("engine-less level reports PF activity: %+v", s)
		}
	}
	if s := h.PFStatsL1D(); s.DemandMisses == 0 {
		t.Errorf("engine-less level lost its demand statistics: %+v", s)
	}
}
