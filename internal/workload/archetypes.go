package workload

import (
	"repro/internal/trace"
	"repro/internal/uarch"
)

// --- shared emission helpers ------------------------------------------------
//
// Register plan shared by all archetypes:
//   r0..r5   kernel state (indices, pointers)
//   r3..r8   secondary kernel state where needed
//   r9       hash/address temporaries
//   r10..r13 integer filler scratch
//   r14      hot-block index
//   r15      hot-block integer destination
//   f0..f5   loaded values
//   f6..f7   FP accumulators / hot-block FP destination
//
// Destination density matters: the 168-entry physical register files back
// a 192-entry ROB only because real code writes a register on roughly half
// its µops (compares, tests, stores, branches do not). The filler helpers
// interleave flag-setting compares so the ROB — not the PRF — is the first
// structure to fill on a long-latency miss, as in the paper's baseline.

// aluFiller emits n integer scratch ops; odd slots are no-destination
// compares.
func (e *emitQ) aluFiller(pc uint64, n int) uint64 {
	for i := 0; i < n; i++ {
		d := uarch.IntReg(10 + i%4)
		s := uarch.IntReg(10 + (i+1)%4)
		if i%2 == 1 {
			e.cmp(pc, d, s)
		} else {
			e.alu(pc, d, d, s)
		}
		pc += 4
	}
	return pc
}

// fpFiller emits n FP ops. One third are consumers folding loaded values
// (src(i)) into the f6/f7 reduction chains — these genuinely wait on
// memory. The rest compute on the independent f8..f11 accumulators
// (loop-invariant coefficients, address arithmetic in FP form), matching
// real FP kernels where only part of the arithmetic sits on the load's
// critical path. Without that split every FP op transitively waits on
// DRAM and the 92-entry issue queue fills long before the 192-entry ROB —
// and the full-window stalls the paper's mechanisms key on never happen.
func (e *emitQ) fpFiller(pc uint64, n int, src func(i int) uarch.Reg) uint64 {
	for i := 0; i < n; i++ {
		switch i % 3 {
		case 0: // consumer: fold a loaded value into a reduction chain
			d := uarch.FPReg(6 + (i/3)%2)
			e.fadd(pc, d, d, src(i))
		case 1: // independent multiply chain
			d := uarch.FPReg(8 + i%4)
			e.fmul(pc, d, d, uarch.FPReg(8+(i+1)%4))
		default: // no-destination compare on independent accumulators
			e.push(uarch.Uop{PC: pc, Class: uarch.ClassFPAdd,
				Src1: uarch.FPReg(8 + i%4), Src2: uarch.FPReg(8 + (i+2)%4)})
		}
		pc += 4
	}
	return pc
}

// hotBlock emits one index advance plus n L1-resident loads, alternating
// integer and FP destinations to spread register-file pressure.
func (e *emitQ) hotBlock(pc uint64, n int, base, salt uint64) uint64 {
	if n == 0 {
		return pc
	}
	idx := uarch.IntReg(14)
	e.alu(pc, idx, idx, uarch.RegNone)
	pc += 4
	for i := 0; i < n; i++ {
		dst := uarch.IntReg(15)
		if i%2 == 1 {
			dst = uarch.FPReg(15)
		}
		e.load(pc, dst, idx, base+(salt+uint64(i)*8)%8192)
		pc += 4
	}
	return pc
}

// --- stream -------------------------------------------------------------------

// StreamParams configures the streaming archetype: one or more strided
// walks over large arrays. Each stream's stalling slice is the pair
// {index += stride; load A[index]}, which is independent across
// iterations — exactly the structure the runahead buffer replays deeply.
type StreamParams struct {
	KernelID int
	// Streams is the number of independent strided walks (1 models
	// libquantum's single dominant slice).
	Streams int
	// StrideBytes is the per-iteration advance of each stream; 64 touches
	// a new cache line every iteration.
	StrideBytes uint64
	// ALUWork and FPWork are filler operations per iteration consuming the
	// loaded values.
	ALUWork, FPWork int
	// HotLoads per iteration hit a small L1-resident array.
	HotLoads int
	// StorePeriod stores back to stream 0's current line every N
	// iterations (0 = never) — an update-in-place pattern, so stores hit
	// the line the load just filled rather than adding a write stream.
	StorePeriod int
	// PhaseIters, when non-zero, ends an inner loop every N iterations:
	// the kernel emits an outer-loop jump and every stream re-bases to a
	// fresh region — real kernels sweep finite rows/planes, and a frozen
	// replayed chain extrapolates garbage past such a boundary while
	// mechanisms that fetch real instructions follow it.
	PhaseIters int
}

// NewStream builds a streaming generator.
func NewStream(p StreamParams) trace.Generator {
	if p.Streams < 1 || p.Streams > 6 {
		panic("workload: Streams must be in [1,6]")
	}
	base := pcBase(p.KernelID)
	hotBase := dataBase(p.KernelID, 0)
	streamBase := make([]uint64, p.Streams)
	for s := range streamBase {
		streamBase[s] = dataBase(p.KernelID, 2+s)
	}
	var iter uint64
	pos := make([]uint64, p.Streams)

	return &kernelGen{name: "stream", emit: func(e *emitQ) {
		pc := base
		for s := 0; s < p.Streams; s++ {
			idx := uarch.IntReg(s)
			val := uarch.FPReg(s)
			pos[s] += p.StrideBytes
			e.alu(pc, idx, idx, uarch.RegNone) // index += stride
			pc += 4
			e.load(pc, val, idx, streamBase[s]+pos[s])
			pc += 4
		}
		pc = e.fpFiller(pc, p.FPWork, func(i int) uarch.Reg { return uarch.FPReg(i % p.Streams) })
		pc = e.aluFiller(pc, p.ALUWork)
		pc = e.hotBlock(pc, p.HotLoads, hotBase, iter*64)
		if p.StorePeriod > 0 && iter%uint64(p.StorePeriod) == 0 {
			// Update in place: hits the line stream 0 just loaded.
			e.store(pc, uarch.FPReg(0), uarch.IntReg(0), streamBase[0]+pos[0])
		}
		pc += 4
		iter++
		if p.PhaseIters > 0 && iter%uint64(p.PhaseIters) == 0 {
			// Inner loop done: fall through the loop branch (not taken)
			// and jump from the outer loop back in, re-basing every
			// stream onto the next region.
			e.branch(pc, uarch.IntReg(0), false, base)
			e.jump(pc+4, base)
			for s := range pos {
				pos[s] += 1 << 22
			}
			return
		}
		e.branch(pc, uarch.IntReg(0), true, base) // loop back, predictable
	}}
}

// --- pointer chase ---------------------------------------------------------------

// PtrChaseParams configures the pointer-chasing archetype: several
// interleaved random permutation walks where each load's address is the
// previous load's data (load r <- [r]). A single chain is unprefetchable
// ahead of its own data; MLP exists only ACROSS chains, so mechanisms that
// execute all slices (PRE, traditional RA) find it and the single-slice
// runahead buffer does not.
type PtrChaseParams struct {
	KernelID int
	// Chains is the number of independent pointer chains.
	Chains int
	// FootprintLines is the per-chain walk footprint in cache lines
	// (power of two).
	FootprintLines uint64
	// ALUWork and HotLoads are per-iteration filler.
	ALUWork, HotLoads int
	// BranchNoise adds a data-dependent branch with ~6% mispredicts.
	BranchNoise bool
}

// NewPtrChase builds a pointer-chasing generator.
func NewPtrChase(p PtrChaseParams) trace.Generator {
	if p.Chains < 1 || p.Chains > 6 {
		panic("workload: Chains must be in [1,6]")
	}
	if p.FootprintLines&(p.FootprintLines-1) != 0 {
		panic("workload: FootprintLines must be a power of two")
	}
	base := pcBase(p.KernelID)
	hotBase := dataBase(p.KernelID, 0)
	chainBase := make([]uint64, p.Chains)
	state := make([]uint64, p.Chains)
	for c := range chainBase {
		chainBase[c] = dataBase(p.KernelID, 1+c)
		state[c] = uint64(c)*977 + 13
	}
	r := &rng{s: uint64(p.KernelID)*2654435761 + 1}
	var iter uint64

	return &kernelGen{name: "ptrchase", emit: func(e *emitQ) {
		pc := base
		for c := 0; c < p.Chains; c++ {
			ptr := uarch.IntReg(c)
			state[c] = lcgStep(state[c], p.FootprintLines)
			// load ptr <- [ptr]: the slice is the load itself.
			e.load(pc, ptr, ptr, chainBase[c]+state[c]*uarch.LineSize)
			pc += 4
		}
		pc = e.aluFiller(pc, p.ALUWork)
		pc = e.hotBlock(pc, p.HotLoads, hotBase, iter*32)
		if p.BranchNoise {
			// Data-dependent branch: taken ~94% of the time.
			e.branch(pc, uarch.IntReg(0), !r.below(6, 100), base+0x100)
		}
		pc += 4
		e.branch(pc, uarch.IntReg(10), true, base)
		iter++
	}}
}

// --- indirect ---------------------------------------------------------------------

// IndirectParams configures the two-level indirection archetype:
// A[col[i]] sparse access. The column stream is sequential (mostly cache
// resident) while the data stream scatters over a large footprint. The
// slice {i += 1; load col; load A[col]} contains an intermediate load that
// usually hits, so replay mechanisms can still run ahead. Models soplex,
// milc, sphinx3.
type IndirectParams struct {
	KernelID int
	// Lanes is the number of independent indirection streams.
	Lanes int
	// TargetLines is the scattered footprint in lines (power of two).
	TargetLines uint64
	// FPWork, ALUWork, HotLoads are per-iteration filler.
	FPWork, ALUWork, HotLoads int
	// StorePeriod stores a result every N iterations (0 = never).
	StorePeriod int
}

// NewIndirect builds a two-level indirection generator.
func NewIndirect(p IndirectParams) trace.Generator {
	if p.Lanes < 1 || p.Lanes > 3 {
		panic("workload: Lanes must be in [1,3]")
	}
	if p.TargetLines&(p.TargetLines-1) != 0 {
		panic("workload: TargetLines must be a power of two")
	}
	base := pcBase(p.KernelID)
	hotBase := dataBase(p.KernelID, 0)
	outBase := dataBase(p.KernelID, 1)
	colBase := make([]uint64, p.Lanes)
	tgtBase := make([]uint64, p.Lanes)
	state := make([]uint64, p.Lanes)
	for l := range colBase {
		colBase[l] = dataBase(p.KernelID, 2+2*l)
		tgtBase[l] = dataBase(p.KernelID, 3+2*l)
		state[l] = uint64(l)*7919 + 3
	}
	var iter uint64

	return &kernelGen{name: "indirect", emit: func(e *emitQ) {
		pc := base
		for l := 0; l < p.Lanes; l++ {
			idx := uarch.IntReg(l)
			col := uarch.IntReg(3 + l)
			val := uarch.FPReg(l)
			e.alu(pc, idx, idx, uarch.RegNone) // i += 1
			pc += 4
			// Sequential column stream: 8 B per iteration, one new line
			// every 8 iterations.
			e.load(pc, col, idx, colBase[l]+iter*8)
			pc += 4
			state[l] = lcgStep(state[l], p.TargetLines)
			// Scattered data load; address depends on the column value.
			e.load(pc, val, col, tgtBase[l]+state[l]*uarch.LineSize)
			pc += 4
		}
		pc = e.fpFiller(pc, p.FPWork, func(i int) uarch.Reg { return uarch.FPReg(i % p.Lanes) })
		pc = e.aluFiller(pc, p.ALUWork)
		pc = e.hotBlock(pc, p.HotLoads, hotBase, iter*48)
		if p.StorePeriod > 0 && iter%uint64(p.StorePeriod) == 0 {
			e.store(pc, uarch.FPReg(0), uarch.IntReg(0), outBase+iter*8)
		}
		pc += 4
		e.branch(pc, uarch.IntReg(0), true, base)
		iter++
	}}
}

// --- stencil -----------------------------------------------------------------------

// StencilParams configures the stencil archetype: several read streams at
// fixed offsets from a single advancing index, plus a write stream —
// one slice (the index add) feeding many load PCs. The runahead buffer's
// backward walk from one stalling load only reconstructs {add, that load},
// covering a single stream, while the SST accumulates every load PC.
// Models lbm, cactusADM, GemsFDTD, leslie3d, zeusmp.
type StencilParams struct {
	KernelID int
	// ReadStreams is the number of read planes (offsets off the index).
	ReadStreams int
	// PlaneStrideLines separates the planes; large values land planes in
	// distinct DRAM rows (row-buffer conflicts).
	PlaneStrideLines uint64
	// StrideBytes is the per-iteration index advance.
	StrideBytes uint64
	// FPWork, ALUWork, HotLoads are per-iteration filler.
	FPWork, ALUWork, HotLoads int
	// WriteStream adds a store stream when true.
	WriteStream bool
	// PhaseIters, when non-zero, ends the inner row sweep every N
	// iterations (outer-loop jump + grid re-base); see StreamParams.
	PhaseIters int
}

// NewStencil builds a stencil generator.
func NewStencil(p StencilParams) trace.Generator {
	if p.ReadStreams < 1 || p.ReadStreams > 6 {
		panic("workload: ReadStreams must be in [1,6]")
	}
	base := pcBase(p.KernelID)
	hotBase := dataBase(p.KernelID, 0)
	gridBase := dataBase(p.KernelID, 1)
	outBase := dataBase(p.KernelID, 2)
	var iter, pos uint64

	return &kernelGen{name: "stencil", emit: func(e *emitQ) {
		pc := base
		idx := uarch.IntReg(0)
		pos += p.StrideBytes
		e.alu(pc, idx, idx, uarch.RegNone) // index advance: the shared slice root
		pc += 4
		for s := 0; s < p.ReadStreams; s++ {
			val := uarch.FPReg(s)
			off := uint64(s) * p.PlaneStrideLines * uarch.LineSize
			e.load(pc, val, idx, gridBase+off+pos)
			pc += 4
		}
		pc = e.fpFiller(pc, p.FPWork, func(i int) uarch.Reg { return uarch.FPReg(i % p.ReadStreams) })
		pc = e.aluFiller(pc, p.ALUWork)
		pc = e.hotBlock(pc, p.HotLoads, hotBase, iter*24)
		if p.WriteStream {
			e.store(pc, uarch.FPReg(6), idx, outBase+pos)
		}
		pc += 4
		iter++
		if p.PhaseIters > 0 && iter%uint64(p.PhaseIters) == 0 {
			// Row sweep done: fall through the loop branch and jump from
			// the outer loop back in, moving to the next grid region.
			e.branch(pc, idx, false, base)
			e.jump(pc+4, base)
			pos += 1 << 22
			return
		}
		e.branch(pc, idx, true, base)
	}}
}

// --- hash walk ----------------------------------------------------------------------

// HashWalkParams configures the hash/graph-walk archetype: a computed
// index selects a bucket (first scattered load, address computable ahead
// of data) whose contents point at a node (dependent second load),
// followed by a data-dependent branch. The slice is long and contains a
// load-load dependence; branches inject runahead divergence. With several
// lanes it models mcf's arc-array walk with node dereferences; with one
// lane it models omnetpp's event-queue lookups.
type HashWalkParams struct {
	KernelID int
	// Lanes is the number of independent walk lanes (1-3).
	Lanes int
	// BucketLines is the hash-table footprint in lines (power of two).
	BucketLines uint64
	// NodeLines is the node-pool footprint in lines (power of two).
	NodeLines uint64
	// ALUWork, HotLoads are per-iteration filler.
	ALUWork, HotLoads int
	// MispredictPermille is the data-dependent branch misprediction rate
	// in 1/1000 units (e.g. 60 = 6%).
	MispredictPermille uint64
	// StorePeriod stores a node update every N iterations (0 = never).
	StorePeriod int
}

// NewHashWalk builds a hash/graph-walk generator.
func NewHashWalk(p HashWalkParams) trace.Generator {
	if p.Lanes < 1 || p.Lanes > 3 {
		panic("workload: Lanes must be in [1,3]")
	}
	if p.BucketLines&(p.BucketLines-1) != 0 || p.NodeLines&(p.NodeLines-1) != 0 {
		panic("workload: footprints must be powers of two")
	}
	base := pcBase(p.KernelID)
	hotBase := dataBase(p.KernelID, 0)
	bktBase := make([]uint64, p.Lanes)
	nodeBase := make([]uint64, p.Lanes)
	bktState := make([]uint64, p.Lanes)
	nodeState := make([]uint64, p.Lanes)
	for l := 0; l < p.Lanes; l++ {
		bktBase[l] = dataBase(p.KernelID, 1+2*l)
		nodeBase[l] = dataBase(p.KernelID, 2+2*l)
		bktState[l] = uint64(l)*131 + 11
		nodeState[l] = uint64(l)*151 + 29
	}
	r := &rng{s: uint64(p.KernelID)*1099511628211 + 7}
	var iter uint64

	return &kernelGen{name: "hashwalk", emit: func(e *emitQ) {
		pc := base
		for l := 0; l < p.Lanes; l++ {
			i := uarch.IntReg(l)
			h := uarch.IntReg(9)
			bkt := uarch.IntReg(3 + l)
			node := uarch.IntReg(6 + l)
			e.alu(pc, i, i, uarch.RegNone) // i++
			pc += 4
			e.alu(pc, h, i, uarch.RegNone) // h = scale(i)
			pc += 4
			bktState[l] = lcgStep(bktState[l], p.BucketLines)
			e.load(pc, bkt, h, bktBase[l]+bktState[l]*uarch.LineSize) // bucket lookup
			pc += 4
			nodeState[l] = lcgStep(nodeState[l], p.NodeLines)
			e.load(pc, node, bkt, nodeBase[l]+nodeState[l]*uarch.LineSize) // dependent deref
			pc += 4
			// Data-dependent branch on the node contents: not-taken with
			// probability MispredictPermille/1000. The predictor converges
			// on "taken", so the not-taken rate is the misprediction rate.
			taken := !r.below(p.MispredictPermille, 1000)
			e.branch(pc, node, taken, base+0x200+uint64(l)*0x10)
			pc += 4
		}
		pc = e.aluFiller(pc, p.ALUWork)
		pc = e.hotBlock(pc, p.HotLoads, hotBase, iter*40)
		if p.StorePeriod > 0 && iter%uint64(p.StorePeriod) == 0 {
			e.store(pc, uarch.IntReg(6), uarch.IntReg(3), nodeBase[0]+nodeState[0]*uarch.LineSize)
		}
		pc += 4
		e.branch(pc, uarch.IntReg(0), true, base)
		iter++
	}}
}

// --- code walk ---------------------------------------------------------------

// CodeWalkParams configures the front-end-bound archetype: straight-line
// code sweeping an instruction footprint far larger than the L1I, so the
// bottleneck is the fetch stream, not the data stream. Each basic block
// is mostly integer filler; every LoadPeriod-th block adds one strided
// data load (rotating over Lanes independent streams) so the memory
// hierarchy sees light, prefetchable data traffic. The sweep is perfectly
// sequential — the pattern an L1I next-line prefetcher exists for — and
// ends in a single always-taken jump back to the top.
type CodeWalkParams struct {
	KernelID int
	// CodeLines is the instruction footprint in cache lines; the 32 KB
	// L1I holds 512.
	CodeLines int
	// Lanes is the number of independent data streams fed by the sparse
	// loads.
	Lanes int
	// LoadPeriod emits one strided data load every N blocks (0 = pure
	// code, no data traffic).
	LoadPeriod int
	// ALUWork is the integer filler per block (the block "body").
	ALUWork int
	// HotLoads per block hit a small L1-resident array.
	HotLoads int
}

// codeBase assigns codewalk kernels a disjoint, wide code region: the
// shared pcBase scheme spaces kernels 64 KB apart, which a code-footprint
// archetype would overrun.
func codeBase(kernelID int) uint64 { return 0x10000000 + uint64(kernelID)<<24 }

// NewCodeWalk builds a front-end-bound generator.
func NewCodeWalk(p CodeWalkParams) trace.Generator {
	if p.Lanes < 1 || p.Lanes > 3 {
		panic("workload: codewalk Lanes must be in [1,3]")
	}
	if p.ALUWork < 1 {
		panic("workload: codewalk needs ALUWork >= 1")
	}
	// Fixed block geometry: every PC must carry the same µop shape across
	// sweeps (the SST, stride prefetcher and BTB key on PC identity), so
	// a block's content depends only on its position in the code region,
	// never on elapsed iterations.
	blockUops := p.ALUWork
	if p.LoadPeriod > 0 {
		blockUops += 2 // index advance + load in the load-carrying blocks
	}
	if p.HotLoads > 0 {
		blockUops += 1 + p.HotLoads
	}
	blockBytes := uint64(blockUops+1) * 4 // +1: the final block's jump slot
	numBlocks := uint64(p.CodeLines) * uarch.LineSize / blockBytes
	if numBlocks < 2 {
		panic("workload: codewalk CodeLines too small for its block size")
	}
	base := codeBase(p.KernelID)
	hotBase := dataBase(p.KernelID, 0)
	streamBase := make([]uint64, p.Lanes)
	for s := range streamBase {
		streamBase[s] = dataBase(p.KernelID, 2+s)
	}
	pos := make([]uint64, p.Lanes)
	var block uint64

	return &kernelGen{name: "codewalk", emit: func(e *emitQ) {
		pc := base + block*blockBytes
		if p.LoadPeriod > 0 && block%uint64(p.LoadPeriod) == 0 {
			s := int(block/uint64(p.LoadPeriod)) % p.Lanes
			idx := uarch.IntReg(s)
			pos[s] += uarch.LineSize
			e.alu(pc, idx, idx, uarch.RegNone) // index += stride
			pc += 4
			e.load(pc, uarch.FPReg(s), idx, streamBase[s]+pos[s])
			pc += 4
		} else if p.LoadPeriod > 0 {
			// Keep the block shape fixed: non-load blocks spend the two
			// slots on extra filler at their own PCs.
			pc = e.aluFiller(pc, 2)
		}
		pc = e.aluFiller(pc, p.ALUWork)
		pc = e.hotBlock(pc, p.HotLoads, hotBase, block*64)
		block++
		if block == numBlocks {
			e.jump(pc, base)
			block = 0
		}
	}}
}
