package synth

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/workload"
)

// sample materializes one default-space scenario or fails the test.
func sample(t testing.TB, seed uint64) Scenario {
	t.Helper()
	sc, err := DefaultSpace().Sample(seed)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// fuzzSeeds is a spread of test seeds derived from the date-pinned base.
func fuzzSeeds(n int) []uint64 {
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = NthSeed(DefaultBaseSeed, i)
	}
	return seeds
}

// TestSampleDeterminism is the core property: Sample is a pure function
// of (Space, seed) — equal params and byte-equal µop streams on every
// call, including across independently-sampled scenarios.
func TestSampleDeterminism(t *testing.T) {
	for _, seed := range fuzzSeeds(8) {
		a, b := sample(t, seed), sample(t, seed)
		if !reflect.DeepEqual(a.Params, b.Params) {
			t.Fatalf("seed %016x: params differ across samples:\n%+v\n%+v", seed, a.Params, b.Params)
		}
		ua := workload.Drain(a.NewGenerator(), 30000)
		ub := workload.Drain(b.NewGenerator(), 30000)
		for i := range ua {
			if ua[i] != ub[i] {
				t.Fatalf("seed %016x: µop %d differs between fresh generators:\n%v\n%v",
					seed, i, &ua[i], &ub[i])
			}
		}
	}
}

// TestSampleDistinctSeeds guards against a degenerate sampler: distinct
// seeds must (at least sometimes) produce distinct scenarios.
func TestSampleDistinctSeeds(t *testing.T) {
	seen := map[string]bool{}
	distinct := 0
	for _, seed := range fuzzSeeds(16) {
		sc := sample(t, seed)
		raw, err := json.Marshal(sc.Params.Phases)
		if err != nil {
			t.Fatal(err)
		}
		if !seen[string(raw)] {
			seen[string(raw)] = true
			distinct++
		}
	}
	if distinct < 12 {
		t.Errorf("only %d/16 seeds produced distinct phase sets; sampler is degenerate", distinct)
	}
}

// TestSampleWellFormed reuses the suite's structural verification on
// sampled scenarios: every generated µop must satisfy the same contract
// the hand-built proxies do, across phase boundaries included.
func TestSampleWellFormed(t *testing.T) {
	for _, seed := range fuzzSeeds(10) {
		sc := sample(t, seed)
		uops := workload.Drain(sc.NewGenerator(), 60000)
		if err := workload.VerifyUops(uops); err != nil {
			t.Errorf("seed %016x: %v (params %+v)", seed, err, sc.Params)
		}
		if err := workload.VerifyStablePCs(uops); err != nil {
			t.Errorf("seed %016x: %v (params %+v)", seed, err, sc.Params)
		}
	}
}

// TestSampleWithinBounds checks every sampled parameter lands inside the
// configured distribution: phase counts, phase lengths, MLP clamped to
// each archetype's legal bound, and only positively-weighted archetypes.
func TestSampleWithinBounds(t *testing.T) {
	s := DefaultSpace()
	counts := map[string]int{}
	for _, seed := range fuzzSeeds(40) {
		sc, err := s.Sample(seed)
		if err != nil {
			t.Fatal(err)
		}
		n := len(sc.Params.Phases)
		if n < s.Phases.Min || n > s.Phases.Max {
			t.Fatalf("seed %016x: %d phases outside [%d,%d]", seed, n, s.Phases.Min, s.Phases.Max)
		}
		for _, ph := range sc.Params.Phases {
			counts[ph.Archetype]++
			if ph.Uops < s.PhaseUops.Min || ph.Uops > s.PhaseUops.Max {
				t.Errorf("seed %016x: phase length %d outside [%d,%d]",
					seed, ph.Uops, s.PhaseUops.Min, s.PhaseUops.Max)
			}
			if ph.Lanes < 1 || ph.Lanes > s.MLP.Max {
				t.Errorf("seed %016x: %s lanes %d outside [1,%d]", seed, ph.Archetype, ph.Lanes, s.MLP.Max)
			}
			if (ph.Archetype == ArchIndirect || ph.Archetype == ArchHashWalk) && ph.Lanes > 3 {
				t.Errorf("seed %016x: %s lanes %d above archetype bound 3", seed, ph.Archetype, ph.Lanes)
			}
			if err := ph.validate(); err != nil {
				t.Errorf("seed %016x: sampled invalid phase: %v", seed, err)
			}
		}
	}
	for arch, c := range counts {
		if c == 0 {
			t.Errorf("archetype %s never sampled over 40 seeds", arch)
		}
	}

	// A single-archetype space must only ever produce that archetype.
	only := s
	only.Weights = Weights{Stream: 1}
	for _, seed := range fuzzSeeds(12) {
		sc, err := only.Sample(seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, ph := range sc.Params.Phases {
			if ph.Archetype != ArchStream {
				t.Fatalf("seed %016x: zero-weight archetype %s sampled", seed, ph.Archetype)
			}
		}
	}
}

// TestFromParamsRoundTrip pins the artifact-reproducibility contract: the
// params recorded in a results document rebuild a generator whose stream
// is byte-identical to the originally sampled scenario's.
func TestFromParamsRoundTrip(t *testing.T) {
	sc := sample(t, NthSeed(DefaultBaseSeed, 3))
	raw, err := json.Marshal(sc.Params)
	if err != nil {
		t.Fatal(err)
	}
	var p Params
	if err := json.Unmarshal(raw, &p); err != nil {
		t.Fatal(err)
	}
	rebuilt, err := FromParams(p)
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt.Name() != sc.Name() {
		t.Errorf("rebuilt name %q != original %q", rebuilt.Name(), sc.Name())
	}
	ua := workload.Drain(sc.NewGenerator(), 40000)
	ub := workload.Drain(rebuilt.NewGenerator(), 40000)
	for i := range ua {
		if ua[i] != ub[i] {
			t.Fatalf("µop %d differs after JSON round-trip:\n%v\n%v", i, &ua[i], &ub[i])
		}
	}
}

// TestPhasesActuallyAlternate verifies the phased composition switches
// kernels: a multi-phase scenario must emit µops from more than one
// disjoint PC region within a modest window.
func TestPhasesActuallyAlternate(t *testing.T) {
	s := DefaultSpace()
	s.Phases = Range{Min: 3, Max: 3}
	s.PhaseUops = Range{Min: 2_000, Max: 2_000}
	sc, err := s.Sample(NthSeed(DefaultBaseSeed, 0))
	if err != nil {
		t.Fatal(err)
	}
	uops := workload.Drain(sc.NewGenerator(), 13_000)
	regions := map[uint64]bool{}
	for i := range uops {
		regions[uops[i].PC>>16] = true
	}
	if len(regions) < 3 {
		t.Errorf("3-phase scenario touched %d PC regions over 13k µops, want 3", len(regions))
	}
	// And the round-robin must return to phase 0: µop 3*2000 is phase 0's
	// 2001st µop, identical to running phase 0's kernel alone.
	solo := Scenario{Params: Params{Seed: sc.Params.Seed, Phases: sc.Params.Phases[:1]}}
	ref := workload.Drain(solo.NewGenerator(), 2_001)
	if uops[3*2000] != ref[2000] {
		t.Errorf("phase 0 did not resume where it left off:\n%v\n%v", &uops[3*2000], &ref[2000])
	}
}

// TestValidateRejects covers space validation.
func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Space)
	}{
		{"zero weights", func(s *Space) { s.Weights = Weights{} }},
		{"negative weight", func(s *Space) { s.Weights.Stream = -1 }},
		{"inverted range", func(s *Space) { s.Phases = Range{Min: 3, Max: 1} }},
		{"zero phases", func(s *Space) { s.Phases = Range{Min: 0, Max: 2} }},
		{"tiny phase", func(s *Space) { s.PhaseUops = Range{Min: 10, Max: 500} }},
		{"mlp zero", func(s *Space) { s.MLP = Range{Min: 0, Max: 4} }},
		{"mlp huge", func(s *Space) { s.MLP = Range{Min: 1, Max: 32} }},
		{"footprint huge", func(s *Space) { s.FootprintLog2 = Range{Min: 14, Max: 40} }},
		{"no strides", func(s *Space) { s.Strides = nil }},
		{"bad stride", func(s *Space) { s.Strides = []int{0} }},
		{"mispredict rate", func(s *Space) { s.MispredictPermille = Range{Min: 0, Max: 900} }},
	}
	for _, tc := range cases {
		s := DefaultSpace()
		tc.mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid space", tc.name)
		}
		if _, err := s.Sample(1); err == nil {
			t.Errorf("%s: Sample accepted an invalid space", tc.name)
		}
	}
	if err := DefaultSpace().Validate(); err != nil {
		t.Errorf("DefaultSpace invalid: %v", err)
	}
}

// TestFromParamsRejects covers params validation: the artifact path must
// reject corrupted records rather than panic inside the constructors.
func TestFromParamsRejects(t *testing.T) {
	good := sample(t, NthSeed(DefaultBaseSeed, 1)).Params
	cases := []struct {
		name   string
		mutate func(*Params)
	}{
		{"no phases", func(p *Params) { p.Phases = nil }},
		{"unknown archetype", func(p *Params) { p.Phases[0].Archetype = "gather" }},
		{"zero length", func(p *Params) { p.Phases[0].Uops = 0 }},
		{"lanes over bound", func(p *Params) { p.Phases[0].Lanes = 9 }},
		{"duplicate kernel", func(p *Params) {
			p.Phases = append(p.Phases, p.Phases[0])
		}},
	}
	for _, tc := range cases {
		p := Params{Space: good.Space, Seed: good.Seed}
		p.Phases = append([]Phase(nil), good.Phases...)
		tc.mutate(&p)
		if _, err := FromParams(p); err == nil {
			t.Errorf("%s: FromParams accepted corrupt params", tc.name)
		}
	}
}

// TestNthSeedSequence pins the population seed derivation: stable,
// prefix-preserving, and collision-free over any practical count.
func TestNthSeedSequence(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		s := NthSeed(DefaultBaseSeed, i)
		if seen[s] {
			t.Fatalf("seed collision at index %d", i)
		}
		seen[s] = true
		if s != NthSeed(DefaultBaseSeed, i) {
			t.Fatalf("NthSeed not stable at index %d", i)
		}
	}
}

// TestPointerHeavySpaceNeedsNoStrides: a space whose weights exclude the
// stride-consuming archetypes must validate and sample without stride or
// plane-stride choices (the pointer-heavy population axis).
func TestPointerHeavySpaceNeedsNoStrides(t *testing.T) {
	s := DefaultSpace()
	s.Weights = Weights{PtrChase: 1, HashWalk: 2}
	s.Strides = nil
	s.PlaneStrideLog2 = Range{}
	if err := s.Validate(); err != nil {
		t.Fatalf("pointer-heavy space rejected: %v", err)
	}
	for _, seed := range fuzzSeeds(6) {
		sc, err := s.Sample(seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, ph := range sc.Params.Phases {
			if ph.Archetype != ArchPtrChase && ph.Archetype != ArchHashWalk {
				t.Fatalf("seed %016x: unexpected archetype %s", seed, ph.Archetype)
			}
		}
		if err := workload.VerifyUops(workload.Drain(sc.NewGenerator(), 20000)); err != nil {
			t.Errorf("seed %016x: %v", seed, err)
		}
	}
}

// TestFrontEndSpaceSamplesCodewalk: the front-end-bound space validates,
// draws codewalk phases with in-bounds instruction footprints, and its
// scenarios generate well-formed, PC-stable streams.
func TestFrontEndSpaceSamplesCodewalk(t *testing.T) {
	s := FrontEndSpace()
	if err := s.Validate(); err != nil {
		t.Fatalf("front-end space rejected: %v", err)
	}
	sawCodewalk := false
	for _, seed := range fuzzSeeds(8) {
		sc, err := s.Sample(seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, ph := range sc.Params.Phases {
			if ph.Archetype != ArchCodeWalk {
				continue
			}
			sawCodewalk = true
			if ph.FootprintLog2 < s.CodeFootprintLog2.Min || ph.FootprintLog2 > s.CodeFootprintLog2.Max {
				t.Errorf("seed %016x: codewalk footprint log2 %d outside sampled range", seed, ph.FootprintLog2)
			}
			if ph.ALUWork < 1 {
				t.Errorf("seed %016x: codewalk ALUWork %d", seed, ph.ALUWork)
			}
		}
		uops := workload.Drain(sc.NewGenerator(), 20000)
		if err := workload.VerifyUops(uops); err != nil {
			t.Errorf("seed %016x: %v", seed, err)
		}
		if err := workload.VerifyStablePCs(uops); err != nil {
			t.Errorf("seed %016x: %v", seed, err)
		}
	}
	if !sawCodewalk {
		t.Error("8 front-end-bound seeds never drew a codewalk phase")
	}
}

// TestCodewalkRoundTripsThroughParams: a front-end scenario rebuilt from
// its recorded params alone regenerates the identical stream (the
// artifact-reproduction contract for the new archetype).
func TestCodewalkRoundTripsThroughParams(t *testing.T) {
	sc, err := FrontEndSpace().Sample(NthSeed(DefaultBaseSeed, 0))
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := FromParams(sc.Params)
	if err != nil {
		t.Fatal(err)
	}
	a := workload.Drain(sc.NewGenerator(), 30000)
	b := workload.Drain(rebuilt.NewGenerator(), 30000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rebuilt scenario diverges at µop %d", i)
		}
	}
}

// TestDefaultSpaceSamplingUnchangedByCodewalk: the codewalk weight is
// appended with weight zero, so spaces that never enable it must sample
// the exact populations they always did — pick order is part of the
// determinism contract. (Guarded structurally: zero weight must never
// draw the archetype.)
func TestDefaultSpaceSamplingUnchangedByCodewalk(t *testing.T) {
	for _, seed := range fuzzSeeds(16) {
		sc, err := DefaultSpace().Sample(seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, ph := range sc.Params.Phases {
			if ph.Archetype == ArchCodeWalk {
				t.Fatalf("seed %016x drew codewalk from a zero-weight space", seed)
			}
		}
	}
}

// TestFromParamsRejectsUnbuildableCodewalk: validate must reject codewalk
// params the constructor would panic on — the artifact-reproduction path
// returns errors, never crashes.
func TestFromParamsRejectsUnbuildableCodewalk(t *testing.T) {
	for name, ph := range map[string]Phase{
		"alu-high":  {Archetype: ArchCodeWalk, Uops: 1000, KernelID: 1, Lanes: 1, FootprintLog2: 8, ALUWork: 5000},
		"alu-zero":  {Archetype: ArchCodeWalk, Uops: 1000, KernelID: 1, Lanes: 1, FootprintLog2: 8, ALUWork: 0},
		"hot-high":  {Archetype: ArchCodeWalk, Uops: 1000, KernelID: 1, Lanes: 1, FootprintLog2: 8, ALUWork: 8, HotLoads: 900},
		"footprint": {Archetype: ArchCodeWalk, Uops: 1000, KernelID: 1, Lanes: 1, FootprintLog2: 4, ALUWork: 8},
	} {
		if _, err := FromParams(Params{Seed: "0", Phases: []Phase{ph}}); err == nil {
			t.Errorf("%s: unbuildable codewalk params validated", name)
		}
	}
	// The accepted extreme must actually build.
	ph := Phase{Archetype: ArchCodeWalk, Uops: 1000, KernelID: 1, Lanes: 3, FootprintLog2: 8, ALUWork: 64, HotLoads: 64, StorePeriod: 1}
	sc, err := FromParams(Params{Seed: "0", Phases: []Phase{ph}})
	if err != nil {
		t.Fatalf("maximal valid codewalk rejected: %v", err)
	}
	if err := workload.VerifyUops(workload.Drain(sc.NewGenerator(), 5000)); err != nil {
		t.Fatal(err)
	}
}
