// Package synth is the seeded stochastic scenario engine: instead of the
// 13 hand-built SPEC proxies, it samples whole *populations* of workloads
// from a parameterized distribution, so every mechanism question ("does
// PRE still beat the prefetchers?") can be asked over hundreds of seeded
// scenarios rather than a five-kernel anecdote.
//
// A Space describes distributions over the structural properties that
// determine runahead behaviour: the archetype mix (stream / pointer-chase
// / indirect / stencil / hash-walk phases), memory footprint, memory-level
// parallelism (independent miss chains), arithmetic filler, store
// intensity, and branch behaviour. Space.Sample(seed) deterministically
// materializes a Scenario — a phased composition of archetype sub-kernels
// that switches archetype every few tens of kilo-µops, the way real
// programs move between loop nests.
//
// Determinism contract: Sample is a pure function of (Space, seed). The
// sampled Params are plain serializable data, and FromParams rebuilds the
// exact generator from them alone — a failing CI seed is reproducible
// from the results artifact without re-deriving anything.
package synth

import (
	"fmt"

	"repro/internal/trace"
	"repro/internal/uarch"
	"repro/internal/workload"
)

// DefaultBaseSeed is the date-pinned base seed (the PR date this engine
// landed) used by population sweeps and the CI scenario-fuzz gate when no
// explicit seed is given. Pinning it keeps CI failures reproducible while
// still exercising a fixed, documented slice of the scenario space.
const DefaultBaseSeed uint64 = 0x2026_07_26

// kernelIDBase keeps synth phases' PC and data regions disjoint from the
// suite proxies (kernel IDs 1-13) and from each other.
const kernelIDBase = 64

// Range is an inclusive integer sampling interval.
type Range struct {
	Min int `json:"min"`
	Max int `json:"max"`
}

func (r Range) valid() bool { return r.Min >= 0 && r.Max >= r.Min }

func (r Range) sample(d draw) int {
	return r.Min + d.intn(r.Max-r.Min+1)
}

// Weights sets the relative sampling weight of each archetype; a zero
// weight excludes the archetype from the population entirely.
type Weights struct {
	Stream   int `json:"stream"`
	PtrChase int `json:"ptrchase"`
	Indirect int `json:"indirect"`
	Stencil  int `json:"stencil"`
	HashWalk int `json:"hashwalk"`
	// CodeWalk is appended after the original five so spaces that leave
	// it zero sample exactly the populations they always did (the pick
	// order is part of the determinism contract).
	CodeWalk int `json:"codewalk,omitempty"`
}

func (w Weights) total() int {
	return w.Stream + w.PtrChase + w.Indirect + w.Stencil + w.HashWalk + w.CodeWalk
}

// pick samples an archetype name proportionally to its weight.
func (w Weights) pick(d draw) string {
	roll := d.intn(w.total())
	for _, c := range []struct {
		name string
		w    int
	}{
		{ArchStream, w.Stream},
		{ArchPtrChase, w.PtrChase},
		{ArchIndirect, w.Indirect},
		{ArchStencil, w.Stencil},
		{ArchHashWalk, w.HashWalk},
		{ArchCodeWalk, w.CodeWalk},
	} {
		if roll < c.w {
			return c.name
		}
		roll -= c.w
	}
	panic("synth: weight roll out of range") // unreachable: roll < total
}

// Archetype names, matching the workload package's generator classes.
const (
	ArchStream   = "stream"
	ArchPtrChase = "ptrchase"
	ArchIndirect = "indirect"
	ArchStencil  = "stencil"
	ArchHashWalk = "hashwalk"
	ArchCodeWalk = "codewalk"
)

// Space describes the scenario distribution. All fields are plain data:
// a Space serializes into the results document so a population sweep is
// fully described by its artifact.
type Space struct {
	// Name labels the space in artifacts ("default", "pointer-heavy").
	Name string `json:"name"`
	// Weights is the archetype mix.
	Weights Weights `json:"weights"`
	// Phases is the number of archetype phases per scenario.
	Phases Range `json:"phases"`
	// PhaseUops is the per-phase length in µops; the scenario cycles
	// through its phases round-robin, each phase resuming where it left
	// off (loop nests alternating inside an outer loop).
	PhaseUops Range `json:"phase_uops"`
	// MLP is the memory-level parallelism: independent chains / streams /
	// lanes per phase, clamped to each archetype's legal bound.
	MLP Range `json:"mlp"`
	// FootprintLog2 is the scattered-access footprint per phase in log2
	// cache lines (17 = 8 MB of lines at 64 B).
	FootprintLog2 Range `json:"footprint_log2"`
	// ALUWork and FPWork are the per-iteration arithmetic filler ranges.
	ALUWork Range `json:"alu_work"`
	FPWork  Range `json:"fp_work"`
	// HotLoads is the per-iteration L1-resident load range.
	HotLoads Range `json:"hot_loads"`
	// StorePeriod samples store intensity: store every N iterations,
	// 0 = never.
	StorePeriod Range `json:"store_period"`
	// MispredictPermille is the data-dependent branch misprediction rate
	// range in 1/1000 units (hashwalk; >0 also arms ptrchase noise).
	MispredictPermille Range `json:"mispredict_permille"`
	// PlaneStrideLog2 separates stencil read planes, in log2 lines.
	PlaneStrideLog2 Range `json:"plane_stride_log2"`
	// Strides are the per-iteration stride-byte choices for streaming
	// archetypes.
	Strides []int `json:"strides"`
	// PhaseIters are the inner-loop length choices (outer-loop re-base
	// every N iterations) for stream/stencil; 0 = no outer loop. Empty
	// means always 0.
	PhaseIters []int `json:"phase_iters"`
	// CodeFootprintLog2 is the codewalk instruction footprint in log2
	// cache lines (the 32 KB L1I holds 2^9); only consulted when the
	// codewalk weight is non-zero.
	CodeFootprintLog2 Range `json:"code_footprint_log2"`
}

// DefaultSpace is the standard population: every archetype represented,
// memory-bound footprints (1-32 MB scattered), one to three phases per
// scenario — the distribution the CI scenario-fuzz gate samples.
func DefaultSpace() Space {
	return Space{
		Name:               "default",
		Weights:            Weights{Stream: 3, PtrChase: 1, Indirect: 3, Stencil: 3, HashWalk: 2},
		Phases:             Range{Min: 1, Max: 3},
		PhaseUops:          Range{Min: 8_000, Max: 40_000},
		MLP:                Range{Min: 1, Max: 4},
		FootprintLog2:      Range{Min: 14, Max: 19},
		ALUWork:            Range{Min: 4, Max: 28},
		FPWork:             Range{Min: 0, Max: 24},
		HotLoads:           Range{Min: 0, Max: 10},
		StorePeriod:        Range{Min: 0, Max: 6},
		MispredictPermille: Range{Min: 0, Max: 60},
		PlaneStrideLog2:    Range{Min: 12, Max: 16},
		Strides:            []int{8, 16, 32, 64},
		PhaseIters:         []int{0, 32, 64, 128},
		CodeFootprintLog2:  Range{Min: 9, Max: 12},
	}
}

// FrontEndSpace returns the front-end-bound population: codewalk-heavy
// scenarios whose instruction footprints (32 KB - 256 KB) thrash the L1I,
// mixed with enough data-side phases that runahead and the data
// prefetchers still matter. This is the population the L1I fetch-stream
// prefetcher exists for — and the first sampled space where the PF axis
// touches the front end.
func FrontEndSpace() Space {
	s := DefaultSpace()
	s.Name = "front-end-bound"
	s.Weights = Weights{Stream: 1, Indirect: 1, HashWalk: 1, CodeWalk: 5}
	s.Phases = Range{Min: 2, Max: 4}
	s.CodeFootprintLog2 = Range{Min: 9, Max: 12}
	return s
}

// Validate checks the space describes a samplable, simulator-safe
// distribution.
func (s Space) Validate() error {
	w := s.Weights
	for _, c := range []struct {
		name string
		v    int
	}{
		{"stream", w.Stream}, {"ptrchase", w.PtrChase}, {"indirect", w.Indirect},
		{"stencil", w.Stencil}, {"hashwalk", w.HashWalk}, {"codewalk", w.CodeWalk},
	} {
		if c.v < 0 {
			return fmt.Errorf("synth: negative %s weight %d", c.name, c.v)
		}
	}
	if w.total() == 0 {
		return fmt.Errorf("synth: all archetype weights are zero")
	}
	for _, c := range []struct {
		name string
		r    Range
	}{
		{"Phases", s.Phases}, {"PhaseUops", s.PhaseUops}, {"MLP", s.MLP},
		{"FootprintLog2", s.FootprintLog2}, {"ALUWork", s.ALUWork},
		{"FPWork", s.FPWork}, {"HotLoads", s.HotLoads},
		{"StorePeriod", s.StorePeriod}, {"MispredictPermille", s.MispredictPermille},
		{"PlaneStrideLog2", s.PlaneStrideLog2},
	} {
		if !c.r.valid() {
			return fmt.Errorf("synth: invalid %s range [%d,%d]", c.name, c.r.Min, c.r.Max)
		}
	}
	switch {
	case s.Phases.Min < 1 || s.Phases.Max > 8:
		return fmt.Errorf("synth: Phases [%d,%d] outside [1,8]", s.Phases.Min, s.Phases.Max)
	case s.PhaseUops.Min < 1_000:
		return fmt.Errorf("synth: PhaseUops min %d below 1000 (phases would thrash)", s.PhaseUops.Min)
	case s.MLP.Min < 1 || s.MLP.Max > 6:
		return fmt.Errorf("synth: MLP [%d,%d] outside [1,6]", s.MLP.Min, s.MLP.Max)
	case s.FootprintLog2.Min < 8 || s.FootprintLog2.Max > 26:
		return fmt.Errorf("synth: FootprintLog2 [%d,%d] outside [8,26]", s.FootprintLog2.Min, s.FootprintLog2.Max)
	case s.ALUWork.Max > 64 || s.FPWork.Max > 64 || s.HotLoads.Max > 64:
		return fmt.Errorf("synth: filler work above 64 ops/iteration")
	case s.StorePeriod.Max > 16:
		return fmt.Errorf("synth: StorePeriod max %d above 16", s.StorePeriod.Max)
	case s.MispredictPermille.Max > 200:
		return fmt.Errorf("synth: MispredictPermille max %d above 200", s.MispredictPermille.Max)
	}
	// Stride and plane knobs only matter when a stride-consuming archetype
	// can be drawn: a pointer-heavy space may leave them zero.
	if w.Stream > 0 || w.Stencil > 0 {
		if len(s.Strides) == 0 {
			return fmt.Errorf("synth: no stride choices")
		}
		for _, st := range s.Strides {
			if st < 1 || st > 256 {
				return fmt.Errorf("synth: stride %d outside [1,256]", st)
			}
		}
	}
	if w.Stencil > 0 && (s.PlaneStrideLog2.Min < 8 || s.PlaneStrideLog2.Max > 18) {
		return fmt.Errorf("synth: PlaneStrideLog2 [%d,%d] outside [8,18]", s.PlaneStrideLog2.Min, s.PlaneStrideLog2.Max)
	}
	if w.CodeWalk > 0 && (s.CodeFootprintLog2.Min < 8 || s.CodeFootprintLog2.Max > 14) {
		return fmt.Errorf("synth: CodeFootprintLog2 [%d,%d] outside [8,14]", s.CodeFootprintLog2.Min, s.CodeFootprintLog2.Max)
	}
	for _, pi := range s.PhaseIters {
		if pi < 0 || pi > 4096 {
			return fmt.Errorf("synth: phase-iters choice %d outside [0,4096]", pi)
		}
	}
	return nil
}

// Phase is the fully-sampled parameter record of one archetype phase —
// plain data, serialized per run into the results JSON so scenarios are
// reconstructible from the artifact alone (see FromParams).
type Phase struct {
	// Archetype selects the sub-kernel class.
	Archetype string `json:"archetype"`
	// Uops is the phase length before the scenario switches to the next
	// phase (round-robin, resuming).
	Uops int `json:"uops"`
	// KernelID fixes the phase's disjoint PC/data region.
	KernelID int `json:"kernel_id"`
	// Lanes is the archetype's MLP knob (streams/chains/lanes/planes).
	Lanes int `json:"lanes"`
	// FootprintLog2 is the scattered footprint in log2 lines (ptrchase,
	// indirect, hashwalk).
	FootprintLog2 int `json:"footprint_log2,omitempty"`
	// StrideBytes is the per-iteration advance (stream, stencil).
	StrideBytes int `json:"stride_bytes,omitempty"`
	// PlaneStrideLog2 separates stencil planes, log2 lines.
	PlaneStrideLog2 int `json:"plane_stride_log2,omitempty"`
	// ALUWork, FPWork, HotLoads are per-iteration filler counts.
	ALUWork  int `json:"alu_work"`
	FPWork   int `json:"fp_work,omitempty"`
	HotLoads int `json:"hot_loads"`
	// StorePeriod stores every N iterations (0 = never). For stencil it
	// degenerates to a write stream when non-zero.
	StorePeriod int `json:"store_period,omitempty"`
	// MispredictPermille is the hashwalk data-dependent branch
	// misprediction rate (1/1000).
	MispredictPermille int `json:"mispredict_permille,omitempty"`
	// PhaseIters is the inner-loop length (stream/stencil outer-loop
	// re-base period); 0 = single flat loop.
	PhaseIters int `json:"phase_iters,omitempty"`
	// BranchNoise arms the ptrchase data-dependent branch.
	BranchNoise bool `json:"branch_noise,omitempty"`
}

// validate checks the phase can be handed to the archetype constructors
// without panicking.
func (p Phase) validate() error {
	if p.Uops < 1 {
		return fmt.Errorf("synth: phase with non-positive length %d", p.Uops)
	}
	if p.KernelID < 1 {
		return fmt.Errorf("synth: phase with non-positive kernel ID %d", p.KernelID)
	}
	if p.ALUWork < 0 || p.FPWork < 0 || p.HotLoads < 0 || p.StorePeriod < 0 ||
		p.PhaseIters < 0 || p.MispredictPermille < 0 || p.MispredictPermille > 1000 {
		return fmt.Errorf("synth: phase %+v has a negative or out-of-range knob", p)
	}
	laneBound := map[string]int{
		ArchStream: 6, ArchPtrChase: 6, ArchIndirect: 3, ArchStencil: 6, ArchHashWalk: 3,
		ArchCodeWalk: 3,
	}
	bound, ok := laneBound[p.Archetype]
	if !ok {
		return fmt.Errorf("synth: unknown archetype %q", p.Archetype)
	}
	if p.Lanes < 1 || p.Lanes > bound {
		return fmt.Errorf("synth: %s lanes %d outside [1,%d]", p.Archetype, p.Lanes, bound)
	}
	switch p.Archetype {
	case ArchStream, ArchStencil:
		if p.StrideBytes < 1 || p.StrideBytes > 4096 {
			return fmt.Errorf("synth: %s stride %d outside [1,4096]", p.Archetype, p.StrideBytes)
		}
	case ArchCodeWalk:
		// FootprintLog2 is the instruction footprint here; the blocks of
		// a tiny region could not fit even one iteration's µops. The
		// per-block work caps match the sampling bounds and keep
		// NewCodeWalk's >= 2-blocks geometry satisfiable at the minimum
		// footprint, upholding validate's no-panic contract on the
		// artifact-reproduction path.
		if p.FootprintLog2 < 8 || p.FootprintLog2 > 14 {
			return fmt.Errorf("synth: codewalk footprint log2 %d outside [8,14]", p.FootprintLog2)
		}
		if p.ALUWork < 1 || p.ALUWork > 64 {
			return fmt.Errorf("synth: codewalk ALUWork %d outside [1,64]", p.ALUWork)
		}
		if p.HotLoads > 64 {
			return fmt.Errorf("synth: codewalk HotLoads %d above 64", p.HotLoads)
		}
	default:
		if p.FootprintLog2 < 4 || p.FootprintLog2 > 30 {
			return fmt.Errorf("synth: %s footprint log2 %d outside [4,30]", p.Archetype, p.FootprintLog2)
		}
	}
	if p.Archetype == ArchStencil && (p.PlaneStrideLog2 < 4 || p.PlaneStrideLog2 > 20) {
		return fmt.Errorf("synth: stencil plane stride log2 %d outside [4,20]", p.PlaneStrideLog2)
	}
	return nil
}

// generator constructs the archetype sub-kernel for the phase.
func (p Phase) generator() trace.Generator {
	switch p.Archetype {
	case ArchStream:
		return workload.NewStream(workload.StreamParams{
			KernelID: p.KernelID, Streams: p.Lanes,
			StrideBytes: uint64(p.StrideBytes),
			ALUWork:     p.ALUWork, FPWork: p.FPWork, HotLoads: p.HotLoads,
			StorePeriod: p.StorePeriod, PhaseIters: p.PhaseIters,
		})
	case ArchPtrChase:
		return workload.NewPtrChase(workload.PtrChaseParams{
			KernelID: p.KernelID, Chains: p.Lanes,
			FootprintLines: 1 << p.FootprintLog2,
			ALUWork:        p.ALUWork, HotLoads: p.HotLoads,
			BranchNoise: p.BranchNoise,
		})
	case ArchIndirect:
		return workload.NewIndirect(workload.IndirectParams{
			KernelID: p.KernelID, Lanes: p.Lanes,
			TargetLines: 1 << p.FootprintLog2,
			FPWork:      p.FPWork, ALUWork: p.ALUWork, HotLoads: p.HotLoads,
			StorePeriod: p.StorePeriod,
		})
	case ArchStencil:
		return workload.NewStencil(workload.StencilParams{
			KernelID: p.KernelID, ReadStreams: p.Lanes,
			PlaneStrideLines: 1 << p.PlaneStrideLog2,
			StrideBytes:      uint64(p.StrideBytes),
			FPWork:           p.FPWork, ALUWork: p.ALUWork, HotLoads: p.HotLoads,
			WriteStream: p.StorePeriod > 0, PhaseIters: p.PhaseIters,
		})
	case ArchHashWalk:
		return workload.NewHashWalk(workload.HashWalkParams{
			KernelID: p.KernelID, Lanes: p.Lanes,
			BucketLines: 1 << p.FootprintLog2, NodeLines: 1 << p.FootprintLog2,
			ALUWork: p.ALUWork, HotLoads: p.HotLoads,
			MispredictPermille: uint64(p.MispredictPermille),
			StorePeriod:        p.StorePeriod,
		})
	case ArchCodeWalk:
		// FootprintLog2 is the instruction footprint; StorePeriod doubles
		// as the sparse data-load period (codewalk emits no stores).
		return workload.NewCodeWalk(workload.CodeWalkParams{
			KernelID: p.KernelID, Lanes: p.Lanes,
			CodeLines:  1 << p.FootprintLog2,
			LoadPeriod: p.StorePeriod,
			ALUWork:    p.ALUWork, HotLoads: p.HotLoads,
		})
	}
	panic("synth: generator on unvalidated phase") // validate() gates every path here
}

// Params is the complete sampled description of one scenario.
type Params struct {
	// Space is the sampling space's name (provenance only).
	Space string `json:"space,omitempty"`
	// Seed is the sampling seed, hex (uint64 does not survive JSON number
	// round-trips).
	Seed string `json:"seed"`
	// Phases are the sampled archetype phases, in execution order.
	Phases []Phase `json:"phases"`
}

// Validate checks the params describe a constructible scenario.
func (p Params) Validate() error {
	if len(p.Phases) == 0 {
		return fmt.Errorf("synth: params with no phases")
	}
	ids := make(map[int]bool, len(p.Phases))
	for _, ph := range p.Phases {
		if err := ph.validate(); err != nil {
			return err
		}
		if ids[ph.KernelID] {
			return fmt.Errorf("synth: duplicate kernel ID %d (phases would alias PC/data regions)", ph.KernelID)
		}
		ids[ph.KernelID] = true
	}
	return nil
}

// Scenario is a materialized sample: plain params plus generator
// construction. Scenarios are immutable; NewGenerator returns a fresh
// deterministic generator each call.
type Scenario struct {
	Params Params
}

// Name returns the scenario's stable workload name, derived from its seed.
func (sc Scenario) Name() string { return "s" + sc.Params.Seed }

// NewGenerator builds a fresh deterministic generator for the scenario: a
// round-robin phased composition where each phase's sub-kernel resumes
// where it left off.
func (sc Scenario) NewGenerator() trace.Generator {
	g := &phasedGen{name: "synth"}
	for _, ph := range sc.Params.Phases {
		g.gens = append(g.gens, ph.generator())
		g.budget = append(g.budget, int64(ph.Uops))
	}
	g.left = g.budget[0]
	return g
}

// Workload wraps the scenario as a runnable workload. Chains reports the
// scenario's maximum per-phase MLP.
func (sc Scenario) Workload() workload.Workload {
	chains := 1
	for _, ph := range sc.Params.Phases {
		if ph.Lanes > chains {
			chains = ph.Lanes
		}
	}
	return workload.Workload{
		Name:   sc.Name(),
		Class:  "synth",
		Chains: chains,
		New:    func() trace.Generator { return sc.NewGenerator() },
	}
}

// Sample deterministically materializes the scenario for a seed. It is a
// pure function of (Space, seed): equal inputs yield equal Params and
// byte-equal generated µop streams.
func (s Space) Sample(seed uint64) (Scenario, error) {
	if err := s.Validate(); err != nil {
		return Scenario{}, err
	}
	d := draw{g: &rng{s: seed}}
	n := s.Phases.sample(d)
	params := Params{
		Space:  s.Name,
		Seed:   fmt.Sprintf("%016x", seed),
		Phases: make([]Phase, n),
	}
	for i := range params.Phases {
		params.Phases[i] = s.samplePhase(d, i)
	}
	sc := Scenario{Params: params}
	if err := params.Validate(); err != nil {
		return Scenario{}, fmt.Errorf("synth: sampled invalid phase (space bug): %w", err)
	}
	return sc, nil
}

// FromParams rebuilds the scenario a results artifact recorded — the
// reproducibility path for failing CI seeds.
func FromParams(p Params) (Scenario, error) {
	if err := p.Validate(); err != nil {
		return Scenario{}, err
	}
	return Scenario{Params: p}, nil
}

// samplePhase draws one phase. The draw order is part of the determinism
// contract: changing it changes every sampled population, so additions
// must append draws, never reorder them.
func (s Space) samplePhase(d draw, idx int) Phase {
	ph := Phase{
		Archetype: s.Weights.pick(d),
		Uops:      s.PhaseUops.sample(d),
		KernelID:  kernelIDBase + idx,
		ALUWork:   s.ALUWork.sample(d),
		HotLoads:  s.HotLoads.sample(d),
	}
	mlp := s.MLP.sample(d)
	clamp := func(v, lo, hi int) int {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	stride := func() int { return s.Strides[d.intn(len(s.Strides))] }
	phaseIters := func() int {
		if len(s.PhaseIters) == 0 {
			return 0
		}
		return s.PhaseIters[d.intn(len(s.PhaseIters))]
	}
	switch ph.Archetype {
	case ArchStream:
		ph.Lanes = clamp(mlp, 1, 6)
		ph.StrideBytes = stride()
		ph.FPWork = s.FPWork.sample(d)
		ph.StorePeriod = s.StorePeriod.sample(d)
		ph.PhaseIters = phaseIters()
	case ArchPtrChase:
		ph.Lanes = clamp(mlp, 1, 6)
		ph.FootprintLog2 = s.FootprintLog2.sample(d)
		ph.BranchNoise = s.MispredictPermille.sample(d) > 0
	case ArchIndirect:
		ph.Lanes = clamp(mlp, 1, 3)
		ph.FootprintLog2 = s.FootprintLog2.sample(d)
		ph.FPWork = s.FPWork.sample(d)
		ph.StorePeriod = s.StorePeriod.sample(d)
	case ArchStencil:
		ph.Lanes = clamp(mlp, 1, 6)
		ph.StrideBytes = stride()
		ph.PlaneStrideLog2 = s.PlaneStrideLog2.sample(d)
		ph.FPWork = s.FPWork.sample(d)
		ph.StorePeriod = s.StorePeriod.sample(d)
		ph.PhaseIters = phaseIters()
	case ArchHashWalk:
		ph.Lanes = clamp(mlp, 1, 3)
		ph.FootprintLog2 = s.FootprintLog2.sample(d)
		ph.MispredictPermille = s.MispredictPermille.sample(d)
		ph.StorePeriod = s.StorePeriod.sample(d)
	case ArchCodeWalk:
		ph.Lanes = clamp(mlp, 1, 3)
		ph.FootprintLog2 = s.CodeFootprintLog2.sample(d)
		ph.StorePeriod = s.StorePeriod.sample(d) // data-load period
		ph.ALUWork = clamp(ph.ALUWork, 1, 64)    // blocks need a body
	}
	return ph
}

// NthSeed derives the i-th scenario seed of a population from its base
// seed — the same splitmix64 sequence regardless of how many scenarios
// the caller materializes, so growing a population keeps its prefix.
func NthSeed(base uint64, i int) uint64 {
	return mix64(base + (uint64(i)+1)*0x9e3779b97f4a7c15)
}

// phasedGen cycles round-robin through the phase sub-generators, each
// resuming exactly where it left off — the stream is the deterministic
// interleaving of the phase streams.
type phasedGen struct {
	name   string
	gens   []trace.Generator
	budget []int64
	cur    int
	left   int64
}

func (g *phasedGen) Name() string { return g.name }

func (g *phasedGen) Next(u *uarch.Uop) {
	if g.left <= 0 {
		g.cur = (g.cur + 1) % len(g.gens)
		g.left = g.budget[g.cur]
	}
	g.gens[g.cur].Next(u)
	g.left--
}

// NextBlock implements trace.BlockGenerator: each chunk is bounded by the
// active phase's remaining budget and delegated in bulk when the phase
// sub-generator itself supports bulk emission.
func (g *phasedGen) NextBlock(dst []uarch.Uop) {
	for len(dst) > 0 {
		if g.left <= 0 {
			g.cur = (g.cur + 1) % len(g.gens)
			g.left = g.budget[g.cur]
		}
		n := int64(len(dst))
		if n > g.left {
			n = g.left
		}
		cur := g.gens[g.cur]
		if bg, ok := cur.(trace.BlockGenerator); ok {
			bg.NextBlock(dst[:n])
		} else {
			for i := int64(0); i < n; i++ {
				cur.Next(&dst[i])
			}
		}
		g.left -= n
		dst = dst[n:]
	}
}

// rng is the same splitmix64 sequence the workload package uses.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	return mix64(r.s)
}

// intn returns a uniform draw from [0, n); n must be positive. The modulo
// bias is irrelevant at these range sizes (n << 2^64).
func (r *rng) intn(n int) int {
	if n <= 0 {
		panic("synth: intn on non-positive bound")
	}
	return int(r.next() % uint64(n))
}

// draw is the sequenced chokepoint every Space sampling draw flows
// through: one underlying rng, advanced only here. Routing draws through
// a single helper keeps the draw order append-only — a new knob adds a
// draw to the end of the sequence instead of reordering existing ones,
// which is what keeps previously sampled populations stable (the
// seedpurity analyzer enforces this statically).
type draw struct{ g *rng }

// intn forwards a uniform draw from [0, n), advancing the single
// sampling sequence.
func (d draw) intn(n int) int { return d.g.intn(n) }

// mix64 is the splitmix64 finalizer.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
