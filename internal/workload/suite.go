package workload

import (
	"fmt"

	"repro/internal/trace"
)

// Suite returns the 13 proxy workloads standing in for the memory-
// intensive SPEC CPU2006 set used by the paper (the same selection as the
// runahead-buffer paper it compares against). The parameters encode each
// benchmark's published structural character:
//
//   - chain count (how many independent slices stall the ROB),
//   - chain kind (streaming / indirect / pointer-chasing / hash walk),
//   - instruction mix (integer vs FP, store intensity), and
//   - branch behaviour (predictable loops vs data-dependent noise).
//
// Footprints are sized far beyond the 1 MB L3 so scattered and streaming
// accesses miss the LLC, reproducing the memory-bound baselines the paper
// targets (roughly 30-70 LLC misses per kilo-instruction).
func Suite() []Workload {
	return []Workload{
		{
			// mcf: walks an arc array (computable addresses) and
			// dereferences node pointers held in each arc — two lanes of
			// {index, arc load, dependent node load} plus noisy branches.
			Name: "mcf", Class: "hashwalk", Chains: 2,
			New: func() trace.Generator {
				return NewHashWalk(HashWalkParams{
					KernelID: 1, Lanes: 2,
					BucketLines: 1 << 18, NodeLines: 1 << 18, // 16 MB each
					ALUWork: 30, HotLoads: 12, MispredictPermille: 40,
					StorePeriod: 4,
				})
			},
		},
		{
			// lbm: lattice-Boltzmann stencil — several read planes off one
			// index plus a write stream, FP heavy.
			Name: "lbm", Class: "stencil", Chains: 1,
			New: func() trace.Generator {
				return NewStencil(StencilParams{
					KernelID: 2, ReadStreams: 4, PlaneStrideLines: 1 << 14, // 1 MB planes
					StrideBytes: 16, FPWork: 24, ALUWork: 8, HotLoads: 4,
					WriteStream: true, PhaseIters: 128,
				})
			},
		},
		{
			// libquantum: a single streaming slice updating the quantum
			// register in place — the runahead buffer's best case.
			Name: "libquantum", Class: "stream", Chains: 1,
			New: func() trace.Generator {
				return NewStream(StreamParams{
					KernelID: 3, Streams: 1, StrideBytes: 32,
					ALUWork: 12, FPWork: 0, HotLoads: 4, StorePeriod: 2,
				})
			},
		},
		{
			// milc: su3 matrix-vector products gathering sites through an
			// index stream.
			Name: "milc", Class: "indirect", Chains: 1,
			New: func() trace.Generator {
				return NewIndirect(IndirectParams{
					KernelID: 4, Lanes: 1, TargetLines: 1 << 19, // 32 MB
					FPWork: 18, ALUWork: 8, HotLoads: 4, StorePeriod: 4,
				})
			},
		},
		{
			// omnetpp: event-queue lookups — hash bucket plus dependent
			// node deref with data-dependent branches.
			Name: "omnetpp", Class: "hashwalk", Chains: 1,
			New: func() trace.Generator {
				return NewHashWalk(HashWalkParams{
					KernelID: 5, Lanes: 1,
					BucketLines: 1 << 18, NodeLines: 1 << 18,
					ALUWork: 24, HotLoads: 8, MispredictPermille: 50,
					StorePeriod: 4,
				})
			},
		},
		{
			// soplex: sparse matrix-vector — two independent indirection
			// lanes A[col[i]].
			Name: "soplex", Class: "indirect", Chains: 2,
			New: func() trace.Generator {
				return NewIndirect(IndirectParams{
					KernelID: 6, Lanes: 2, TargetLines: 1 << 19,
					FPWork: 20, ALUWork: 12, HotLoads: 6, StorePeriod: 6,
				})
			},
		},
		{
			// sphinx3: gaussian scoring — one indirection lane over 8 MB
			// acoustic tables with heavy FP.
			Name: "sphinx3", Class: "indirect", Chains: 1,
			New: func() trace.Generator {
				return NewIndirect(IndirectParams{
					KernelID: 7, Lanes: 1, TargetLines: 1 << 17, // 8 MB
					FPWork: 16, ALUWork: 4, HotLoads: 5, StorePeriod: 0,
				})
			},
		},
		{
			// bwaves: block-tridiagonal solver — several parallel FP
			// streams.
			Name: "bwaves", Class: "stream", Chains: 4,
			New: func() trace.Generator {
				return NewStream(StreamParams{
					KernelID: 8, Streams: 4, StrideBytes: 16,
					ALUWork: 8, FPWork: 20, HotLoads: 4, StorePeriod: 4,
					PhaseIters: 64,
				})
			},
		},
		{
			// cactusADM: Einstein-equation stencil with big plane strides
			// (DRAM row conflicts).
			Name: "cactusADM", Class: "stencil", Chains: 1,
			New: func() trace.Generator {
				return NewStencil(StencilParams{
					KernelID: 9, ReadStreams: 3, PlaneStrideLines: 1 << 15, // 2 MB planes
					StrideBytes: 16, FPWork: 18, ALUWork: 6, HotLoads: 4,
					WriteStream: true, PhaseIters: 96,
				})
			},
		},
		{
			// GemsFDTD: E/H field updates — six read streams.
			Name: "GemsFDTD", Class: "stencil", Chains: 1,
			New: func() trace.Generator {
				return NewStencil(StencilParams{
					KernelID: 10, ReadStreams: 6, PlaneStrideLines: 1 << 14,
					StrideBytes: 8, FPWork: 18, ALUWork: 6, HotLoads: 3,
					WriteStream: true, PhaseIters: 128,
				})
			},
		},
		{
			// leslie3d: fluid-dynamics stencil, moderate strides.
			Name: "leslie3d", Class: "stencil", Chains: 1,
			New: func() trace.Generator {
				return NewStencil(StencilParams{
					KernelID: 11, ReadStreams: 4, PlaneStrideLines: 1 << 13,
					StrideBytes: 16, FPWork: 14, ALUWork: 8, HotLoads: 4,
					WriteStream: true, PhaseIters: 64,
				})
			},
		},
		{
			// wrf: weather model — mixed streams with moderate FP.
			Name: "wrf", Class: "stream", Chains: 3,
			New: func() trace.Generator {
				return NewStream(StreamParams{
					KernelID: 12, Streams: 3, StrideBytes: 16,
					ALUWork: 10, FPWork: 12, HotLoads: 5, StorePeriod: 3,
					PhaseIters: 64,
				})
			},
		},
		{
			// zeusmp: astrophysics stencil with 4 MB plane strides.
			Name: "zeusmp", Class: "stencil", Chains: 1,
			New: func() trace.Generator {
				return NewStencil(StencilParams{
					KernelID: 13, ReadStreams: 4, PlaneStrideLines: 1 << 16, // 4 MB planes
					StrideBytes: 16, FPWork: 16, ALUWork: 8, HotLoads: 3,
					WriteStream: true, PhaseIters: 96,
				})
			},
		},
	}
}

// ByName returns the suite workload with the given name.
func ByName(name string) (Workload, error) {
	for _, w := range Suite() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// Names lists the suite's workload names in report order.
func Names() []string {
	ws := Suite()
	names := make([]string, len(ws))
	for i, w := range ws {
		names[i] = w.Name
	}
	return names
}
