package workload

import (
	"testing"

	"repro/internal/trace"
	"repro/internal/uarch"
)

// drain pulls n µops from a generator (see Drain in verify.go).
func drain(g trace.Generator, n int) []uarch.Uop { return Drain(g, n) }

func TestSuiteShape(t *testing.T) {
	ws := Suite()
	if len(ws) != 13 {
		t.Fatalf("suite has %d workloads, want 13", len(ws))
	}
	seen := map[string]bool{}
	for _, w := range ws {
		if w.Name == "" || w.Class == "" || w.New == nil || w.Chains < 1 {
			t.Errorf("workload %+v incompletely defined", w.Name)
		}
		if seen[w.Name] {
			t.Errorf("duplicate workload %s", w.Name)
		}
		seen[w.Name] = true
	}
}

func TestByName(t *testing.T) {
	w, err := ByName("mcf")
	if err != nil || w.Name != "mcf" {
		t.Fatalf("ByName(mcf) = %v, %v", w.Name, err)
	}
	if _, err := ByName("nonesuch"); err == nil {
		t.Fatal("unknown benchmark must error")
	}
	if len(Names()) != 13 {
		t.Error("Names() length mismatch")
	}
}

func TestDeterminism(t *testing.T) {
	for _, w := range Suite() {
		a := drain(w.New(), 5000)
		b := drain(w.New(), 5000)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: µop %d differs between fresh generators:\n%v\n%v",
					w.Name, i, &a[i], &b[i])
			}
		}
	}
}

func TestAllUopsWellFormed(t *testing.T) {
	for _, w := range Suite() {
		if err := VerifyUops(drain(w.New(), 20000)); err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
	}
}

func TestStablePCsAcrossIterations(t *testing.T) {
	// Each static PC must always carry the same class and register shape;
	// the SST and the branch predictor rely on PC identity.
	for _, w := range Suite() {
		if err := VerifyStablePCs(drain(w.New(), 30000)); err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
	}
}

func TestInstructionMixSane(t *testing.T) {
	for _, w := range Suite() {
		uops := drain(w.New(), 50000)
		var loads, stores, branches int
		for i := range uops {
			switch uops[i].Class {
			case uarch.ClassLoad:
				loads++
			case uarch.ClassStore:
				stores++
			case uarch.ClassBranch, uarch.ClassJump:
				branches++
			}
		}
		n := len(uops)
		loadFrac := float64(loads) / float64(n)
		if loadFrac < 0.08 || loadFrac > 0.50 {
			t.Errorf("%s: load fraction %.2f outside [0.08,0.50]", w.Name, loadFrac)
		}
		brFrac := float64(branches) / float64(n)
		if brFrac < 0.01 || brFrac > 0.25 {
			t.Errorf("%s: branch fraction %.2f outside [0.01,0.25]", w.Name, brFrac)
		}
		_ = stores // some proxies legitimately never store
	}
}

func TestColdMissRatePlausible(t *testing.T) {
	// Count distinct new cache lines touched per kilo-µop: the upper bound
	// on LLC MPKI. Memory-intensive proxies should sit roughly in the
	// published 10-60 range.
	for _, w := range Suite() {
		uops := drain(w.New(), 100000)
		seen := map[uint64]bool{}
		var newLines int
		for i := range uops {
			if !uops[i].Class.IsMem() {
				continue
			}
			l := uops[i].CacheLine()
			if !seen[l] {
				seen[l] = true
				newLines++
			}
		}
		mpki := float64(newLines) / float64(len(uops)) * 1000
		if mpki < 8 || mpki > 120 {
			t.Errorf("%s: cold-line rate %.1f per kilo-µop outside [8,120]", w.Name, mpki)
		}
	}
}

func TestPtrChaseChainsAreSelfDependent(t *testing.T) {
	g := NewPtrChase(PtrChaseParams{KernelID: 99, Chains: 2, FootprintLines: 1 << 10, ALUWork: 0, HotLoads: 0})
	uops := drain(g, 100)
	var chainLoads []uarch.Uop
	for _, u := range uops {
		if u.Class == uarch.ClassLoad {
			chainLoads = append(chainLoads, u)
		}
	}
	if len(chainLoads) < 4 {
		t.Fatal("expected chain loads")
	}
	for _, u := range chainLoads {
		if u.Dst != u.Src1 {
			t.Fatalf("chain load must be r <- [r], got %v", &u)
		}
	}
}

func TestStencilLoadsShareIndexRegister(t *testing.T) {
	g := NewStencil(StencilParams{KernelID: 98, ReadStreams: 3, PlaneStrideLines: 64,
		StrideBytes: 64, FPWork: 0, ALUWork: 0, HotLoads: 0})
	uops := drain(g, 40)
	idx := uarch.IntReg(0)
	loads := 0
	for _, u := range uops {
		if u.Class == uarch.ClassLoad {
			loads++
			if u.Src1 != idx {
				t.Fatalf("stencil load src %v, want shared index %v", u.Src1, idx)
			}
		}
	}
	if loads < 3 {
		t.Fatal("expected at least one full stencil iteration of loads")
	}
}

func TestHashWalkDependentPair(t *testing.T) {
	g := NewHashWalk(HashWalkParams{KernelID: 97, Lanes: 1, BucketLines: 1 << 10, NodeLines: 1 << 10,
		ALUWork: 0, HotLoads: 0, MispredictPermille: 100})
	uops := drain(g, 50)
	var bktDst uarch.Reg
	sawPair := false
	for _, u := range uops {
		if u.Class == uarch.ClassLoad {
			if bktDst == uarch.RegNone {
				bktDst = u.Dst
			} else if u.Src1 == bktDst {
				sawPair = true
				break
			} else {
				bktDst = u.Dst
			}
		}
	}
	if !sawPair {
		t.Fatal("hash walk must contain a load feeding the next load's address")
	}
}

func TestArchetypeParameterValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s must panic", name)
			}
		}()
		f()
	}
	mustPanic("stream streams=0", func() { NewStream(StreamParams{Streams: 0}) })
	mustPanic("ptrchase chains=9", func() {
		NewPtrChase(PtrChaseParams{Chains: 9, FootprintLines: 8})
	})
	mustPanic("ptrchase footprint", func() {
		NewPtrChase(PtrChaseParams{Chains: 1, FootprintLines: 100})
	})
	mustPanic("indirect lanes", func() {
		NewIndirect(IndirectParams{Lanes: 5, TargetLines: 8})
	})
	mustPanic("stencil streams", func() { NewStencil(StencilParams{ReadStreams: 0}) })
	mustPanic("hashwalk footprint", func() {
		NewHashWalk(HashWalkParams{Lanes: 1, BucketLines: 100, NodeLines: 8})
	})
	mustPanic("hashwalk lanes", func() {
		NewHashWalk(HashWalkParams{Lanes: 0, BucketLines: 8, NodeLines: 8})
	})
}

func TestDisjointAddressSpaces(t *testing.T) {
	// Kernel data regions must not collide across suite entries (distinct
	// kernel IDs) so the hierarchy state of one benchmark cannot alias
	// another in combined runs.
	lines := map[uint64]string{}
	for _, w := range Suite() {
		uops := drain(w.New(), 20000)
		for i := range uops {
			if !uops[i].Class.IsMem() {
				continue
			}
			l := uops[i].CacheLine()
			if owner, ok := lines[l]; ok && owner != w.Name {
				t.Fatalf("line %#x shared by %s and %s", l, owner, w.Name)
			}
			lines[l] = w.Name
		}
	}
}

// --- codewalk ----------------------------------------------------------------

// TestCodeWalkFrontEndShape pins the front-end-bound archetype's defining
// properties: a deterministic stream, stable PC shapes, an instruction
// footprint matching CodeLines, and a strictly sequential line walk
// closed by a single backward jump.
func TestCodeWalkFrontEndShape(t *testing.T) {
	p := CodeWalkParams{KernelID: 90, CodeLines: 1 << 9, Lanes: 2, LoadPeriod: 5, ALUWork: 8, HotLoads: 3}
	a := Drain(NewCodeWalk(p), 60_000)
	b := Drain(NewCodeWalk(p), 60_000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("codewalk non-deterministic at µop %d", i)
		}
	}
	if err := VerifyUops(a); err != nil {
		t.Fatal(err)
	}
	if err := VerifyStablePCs(a); err != nil {
		t.Fatal(err)
	}
	lines := map[uint64]bool{}
	jumps, loads := 0, 0
	var prevLine uint64
	for i := range a {
		u := &a[i]
		line := u.PC >> 6
		if i > 0 && line != prevLine && line != a[0].PC>>6 && line != prevLine+1 {
			t.Fatalf("non-sequential line transition %#x -> %#x at µop %d", prevLine, line, i)
		}
		prevLine = line
		lines[line] = true
		switch u.Class {
		case uarch.ClassJump:
			jumps++
			if u.Target != a[0].PC {
				t.Fatalf("jump target %#x, want region base %#x", u.Target, a[0].PC)
			}
		case uarch.ClassLoad:
			loads++
		}
	}
	// The walk must cover (most of) the configured footprint — far more
	// than the 512 lines of a 32 KB L1I would hold of a small loop.
	if len(lines) < p.CodeLines*3/4 {
		t.Errorf("instruction footprint %d lines, want >= %d", len(lines), p.CodeLines*3/4)
	}
	if jumps == 0 {
		t.Error("sweep never wrapped")
	}
	if loads == 0 {
		t.Error("codewalk with LoadPeriod emitted no data loads")
	}
}

// TestCodeWalkValidation pins the constructor's parameter gates.
func TestCodeWalkValidation(t *testing.T) {
	for name, p := range map[string]CodeWalkParams{
		"lanes":     {KernelID: 91, CodeLines: 512, Lanes: 4, ALUWork: 8},
		"alu":       {KernelID: 91, CodeLines: 512, Lanes: 1, ALUWork: 0},
		"footprint": {KernelID: 91, CodeLines: 1, Lanes: 1, ALUWork: 60, HotLoads: 10},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: invalid params did not panic", name)
				}
			}()
			NewCodeWalk(p)
		}()
	}
}
