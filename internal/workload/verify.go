package workload

import (
	"fmt"

	"repro/internal/trace"
	"repro/internal/uarch"
)

// Stream-verification helpers shared by the suite's structural tests and
// the synth scenario engine's property tests: every generator — hand-built
// proxy or sampled scenario — must satisfy the same well-formedness
// contract before the core will time it meaningfully.

// Drain pulls n µops from a generator.
func Drain(g trace.Generator, n int) []uarch.Uop {
	out := make([]uarch.Uop, n)
	for i := range out {
		g.Next(&out[i])
	}
	return out
}

// VerifyUops checks structural well-formedness: non-zero PCs, known
// classes, addressed memory ops, loads with destinations, stores without,
// and valid register operands. It returns the first violation.
func VerifyUops(uops []uarch.Uop) error {
	for i := range uops {
		u := &uops[i]
		if u.PC == 0 {
			return fmt.Errorf("µop %d has zero PC", i)
		}
		if u.Class >= uarch.NumClasses {
			return fmt.Errorf("µop %d has bad class %d", i, u.Class)
		}
		if u.Class.IsMem() && u.Addr == 0 {
			return fmt.Errorf("memory µop %d has zero address", i)
		}
		if u.Class == uarch.ClassLoad && !u.Dst.Valid() {
			return fmt.Errorf("load %d without destination", i)
		}
		if u.Class == uarch.ClassStore && u.Dst != uarch.RegNone {
			return fmt.Errorf("store %d with destination", i)
		}
		for _, r := range []uarch.Reg{u.Src1, u.Src2, u.Dst} {
			if r != uarch.RegNone && !r.Valid() {
				return fmt.Errorf("µop %d has invalid register %d", i, r)
			}
		}
	}
	return nil
}

// VerifyStablePCs checks that each static PC always carries the same
// class and register shape; the SST and the branch predictor rely on PC
// identity.
func VerifyStablePCs(uops []uarch.Uop) error {
	type shape struct {
		class     uarch.Class
		s1, s2, d uarch.Reg
	}
	shapes := map[uint64]shape{}
	for i := range uops {
		u := &uops[i]
		sh := shape{u.Class, u.Src1, u.Src2, u.Dst}
		if prev, ok := shapes[u.PC]; ok {
			if prev != sh {
				return fmt.Errorf("PC %#x changes shape: %+v vs %+v", u.PC, prev, sh)
			}
		} else {
			shapes[u.PC] = sh
		}
	}
	return nil
}
