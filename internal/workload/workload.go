// Package workload provides the synthetic proxy kernels that stand in for
// the paper's SPEC CPU2006 memory-intensive SimPoints.
//
// SPEC binaries and traces cannot be shipped, so each benchmark in the
// runahead-buffer paper's memory-intensive set is replaced by a
// deterministic µop generator that reproduces the structural property that
// determines runahead behaviour: how many independent dependence chains
// ("stalling slices") lead to long-latency loads, whether those chains are
// address-computable ahead of the data (streaming/indexed) or data-
// dependent (pointer chasing), the instruction mix, and the branch
// behaviour. The proxies are built from five archetypes:
//
//   - stream:    strided walks over large arrays; slices are {index += k;
//     load A[index]} — short, independent, deeply replayable.
//     Single-stream versions model libquantum, where the
//     runahead buffer's single-slice replay is the best case.
//   - ptrchase:  random permutation walks, load r <- [r]; the next address
//     exists only after the previous load returns. Multiple
//     interleaved chains expose MLP only to mechanisms that can
//     execute several slices at once (mcf).
//   - indirect:  A[col[i]] two-level indirection; the index stream is
//     cache-friendly but the data stream misses (soplex, milc).
//   - stencil:   several offset streams off one index plus a store stream,
//     FP-heavy (lbm, cactusADM, zeusmp, GemsFDTD, leslie3d).
//   - hashwalk:  computed-hash lookups followed by a dependent second
//     load, with data-dependent branches (omnetpp).
//
// Every generator is deterministic given its seed: all runahead modes
// replay the identical dynamic stream, so performance differences come
// only from the microarchitecture.
package workload

import (
	"repro/internal/trace"
	"repro/internal/uarch"
)

// Workload names a proxy kernel and constructs fresh generators for it.
type Workload struct {
	// Name is the report-row label (the SPEC benchmark it proxies).
	Name string
	// Class is the archetype name.
	Class string
	// Chains is the nominal number of independent miss chains per loop.
	Chains int
	// New constructs a fresh deterministic generator.
	New func() trace.Generator
}

// rng is a splitmix64 deterministic generator.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// below returns true with probability num/den, deterministically.
func (r *rng) below(num, den uint64) bool { return r.next()%den < num }

// emitQ buffers the µops of the current loop iteration.
type emitQ struct {
	q []uarch.Uop
}

func (e *emitQ) push(u uarch.Uop) { e.q = append(e.q, u) }

func (e *emitQ) alu(pc uint64, dst, s1, s2 uarch.Reg) {
	e.push(uarch.Uop{PC: pc, Class: uarch.ClassIntAlu, Dst: dst, Src1: s1, Src2: s2})
}

// cmp is a flag-setting comparison: integer ALU work with no renamed
// destination. Real integer code is roughly one-third compares, tests and
// stores, which is what keeps the physical register file from being the
// first structure to fill; the proxies reproduce that density.
func (e *emitQ) cmp(pc uint64, s1, s2 uarch.Reg) {
	e.push(uarch.Uop{PC: pc, Class: uarch.ClassIntAlu, Src1: s1, Src2: s2})
}

func (e *emitQ) mul(pc uint64, dst, s1, s2 uarch.Reg) {
	e.push(uarch.Uop{PC: pc, Class: uarch.ClassIntMul, Dst: dst, Src1: s1, Src2: s2})
}

func (e *emitQ) fadd(pc uint64, dst, s1, s2 uarch.Reg) {
	e.push(uarch.Uop{PC: pc, Class: uarch.ClassFPAdd, Dst: dst, Src1: s1, Src2: s2})
}

func (e *emitQ) fmul(pc uint64, dst, s1, s2 uarch.Reg) {
	e.push(uarch.Uop{PC: pc, Class: uarch.ClassFPMul, Dst: dst, Src1: s1, Src2: s2})
}

func (e *emitQ) load(pc uint64, dst, addrSrc uarch.Reg, addr uint64) {
	e.push(uarch.Uop{PC: pc, Class: uarch.ClassLoad, Dst: dst, Src1: addrSrc, Addr: addr, Size: 8})
}

func (e *emitQ) load2(pc uint64, dst, addrSrc, addrSrc2 uarch.Reg, addr uint64) {
	e.push(uarch.Uop{PC: pc, Class: uarch.ClassLoad, Dst: dst, Src1: addrSrc, Src2: addrSrc2, Addr: addr, Size: 8})
}

func (e *emitQ) store(pc uint64, data, addrSrc uarch.Reg, addr uint64) {
	e.push(uarch.Uop{PC: pc, Class: uarch.ClassStore, Src1: data, Src2: addrSrc, Addr: addr, Size: 8})
}

func (e *emitQ) branch(pc uint64, src uarch.Reg, taken bool, target uint64) {
	e.push(uarch.Uop{PC: pc, Class: uarch.ClassBranch, Src1: src, Taken: taken, Target: target})
}

func (e *emitQ) jump(pc, target uint64) {
	e.push(uarch.Uop{PC: pc, Class: uarch.ClassJump, Taken: true, Target: target})
}

// kernelGen adapts an iteration emitter into a trace.Generator.
type kernelGen struct {
	name string
	emit func(*emitQ)
	eq   emitQ
	idx  int
}

func (g *kernelGen) Name() string { return g.name }

func (g *kernelGen) Next(u *uarch.Uop) {
	for g.idx >= len(g.eq.q) {
		g.eq.q = g.eq.q[:0]
		g.idx = 0
		g.emit(&g.eq)
	}
	*u = g.eq.q[g.idx]
	g.idx++
}

// NextBlock implements trace.BlockGenerator: the buffered iteration is
// copied out in bulk instead of one interface call per µop.
func (g *kernelGen) NextBlock(dst []uarch.Uop) {
	for len(dst) > 0 {
		for g.idx >= len(g.eq.q) {
			g.eq.q = g.eq.q[:0]
			g.idx = 0
			g.emit(&g.eq)
		}
		n := copy(dst, g.eq.q[g.idx:])
		g.idx += n
		dst = dst[n:]
	}
}

// pcBase assigns each kernel a disjoint static code region.
func pcBase(kernelID int) uint64 { return 0x400000 + uint64(kernelID)<<16 }

// dataBase assigns array a of kernel k a disjoint address region.
func dataBase(kernelID, array int) uint64 {
	return (uint64(kernelID)+1)<<36 + (uint64(array)+1)<<30
}

// lcgStep advances a full-period power-of-two LCG; lines is a power of two.
func lcgStep(state, lines uint64) uint64 {
	return (state*6364136223846793005 + 1442695040888963407) & (lines - 1)
}
