package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/uarch"
)

func smallCache() *Cache {
	return New(Config{Name: "T", SizeBytes: 4 * 1024, Assoc: 4, HitLatency: 2, MSHRs: 4})
}

func TestConfigValidate(t *testing.T) {
	good := Config{Name: "ok", SizeBytes: 32 * 1024, Assoc: 8, HitLatency: 4, MSHRs: 10}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Name: "zero", SizeBytes: 0, Assoc: 1, HitLatency: 1, MSHRs: 1},
		{Name: "oddsize", SizeBytes: 100, Assoc: 1, HitLatency: 1, MSHRs: 1},
		{Name: "nonpow2", SizeBytes: 3 * uarch.LineSize, Assoc: 1, HitLatency: 1, MSHRs: 1},
		{Name: "nomshr", SizeBytes: 1024, Assoc: 1, HitLatency: 1, MSHRs: 0},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %q must be rejected", c.Name)
		}
	}
}

func TestMissThenFillThenHit(t *testing.T) {
	c := smallCache()
	addr := uint64(0x1000)
	if hit, _ := c.Lookup(addr, 0, true); hit {
		t.Fatal("cold cache must miss")
	}
	c.Insert(addr, 100, SrcDemand)
	hit, ready := c.Lookup(addr, 10, true)
	if !hit {
		t.Fatal("inserted line must hit")
	}
	if ready != 100 {
		t.Errorf("in-flight line ready=%d, want fillReady=100", ready)
	}
	hit, ready = c.Lookup(addr, 200, true)
	if !hit || ready != 202 {
		t.Errorf("settled line ready=%d, want now+hitlat=202", ready)
	}
	s := c.Stats()
	if s.Accesses != 3 || s.Hits != 2 || s.Misses != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestSameLineDifferentOffsetsHit(t *testing.T) {
	c := smallCache()
	c.Insert(0x1000, 0, SrcDemand)
	for _, off := range []uint64{0, 8, 63} {
		if hit, _ := c.Lookup(0x1000+off, 10, true); !hit {
			t.Errorf("offset %d within line must hit", off)
		}
	}
	if hit, _ := c.Lookup(0x1040, 10, true); hit {
		t.Error("next line must miss")
	}
}

func TestLRUReplacement(t *testing.T) {
	c := New(Config{Name: "T", SizeBytes: 4 * uarch.LineSize, Assoc: 4, HitLatency: 1, MSHRs: 1})
	// Single-set cache: 4 ways. Fill 4 lines; touch line0; insert a 5th.
	// Victim must be line1 (the LRU).
	lines := []uint64{0x0, 0x1000, 0x2000, 0x3000} // same set (only one set)
	for _, a := range lines {
		c.Insert(a, 0, SrcDemand)
	}
	c.Lookup(0x0, 5, true) // make line0 MRU
	ev := c.Insert(0x4000, 10, SrcDemand)
	if !ev.Valid || ev.Addr != 0x1000 {
		t.Errorf("evicted %#x, want 0x1000 (LRU)", ev.Addr)
	}
	if !c.Contains(0x0) || c.Contains(0x1000) || !c.Contains(0x4000) {
		t.Error("post-eviction contents wrong")
	}
}

func TestDirtyEvictionWriteback(t *testing.T) {
	c := New(Config{Name: "T", SizeBytes: 2 * uarch.LineSize, Assoc: 2, HitLatency: 1, MSHRs: 1})
	c.Insert(0x0, 0, SrcDemand)
	c.MarkDirty(0x0)
	c.Insert(0x1000, 0, SrcDemand)
	// Insert third line: evicts 0x0 (LRU, dirty).
	ev := c.Insert(0x2000, 0, SrcDemand)
	if !ev.Valid || !ev.Dirty || ev.Addr != 0x0 {
		t.Errorf("eviction = %+v, want dirty victim 0x0", ev)
	}
	if c.Stats().Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", c.Stats().Writebacks)
	}
}

func TestMarkDirtyOnAbsentLineIsNoop(t *testing.T) {
	c := smallCache()
	c.MarkDirty(0x5000) // must not panic or create state
	if c.Contains(0x5000) {
		t.Error("MarkDirty must not allocate")
	}
}

func TestInvalidate(t *testing.T) {
	c := smallCache()
	c.Insert(0x1000, 0, SrcDemand)
	c.MarkDirty(0x1000)
	present, dirty := c.Invalidate(0x1000)
	if !present || !dirty {
		t.Errorf("invalidate = (%v,%v), want (true,true)", present, dirty)
	}
	if c.Contains(0x1000) {
		t.Error("line still present after invalidate")
	}
	present, _ = c.Invalidate(0x1000)
	if present {
		t.Error("second invalidate must report absent")
	}
}

func TestDoubleInsertKeepsEarlierFill(t *testing.T) {
	c := smallCache()
	c.Insert(0x1000, 500, SrcDemand)
	c.Insert(0x1000, 300, SrcDemand)
	_, ready := c.Lookup(0x1000, 0, true)
	if ready != 300 {
		t.Errorf("ready = %d, want earlier fill 300", ready)
	}
	if c.OccupiedWays(0x1000) != 1 {
		t.Error("double insert must not duplicate the line")
	}
}

func TestPrefetchAccounting(t *testing.T) {
	c := smallCache()
	c.Insert(0x1000, 0, SrcRunahead)
	s := c.Stats()
	if s.PrefetchFills != 1 {
		t.Errorf("prefetch fills = %d", s.PrefetchFills)
	}
	c.Lookup(0x1000, 10, true)
	s = c.Stats()
	if s.PrefetchUseful != 1 {
		t.Errorf("prefetch useful = %d", s.PrefetchUseful)
	}
	// Second demand hit must not double-count usefulness.
	c.Lookup(0x1000, 20, true)
	if c.Stats().PrefetchUseful != 1 {
		t.Error("prefetch usefulness double-counted")
	}
}

func TestHWPrefetchAccounting(t *testing.T) {
	c := smallCache()
	c.Insert(0x1000, 100, SrcHW)
	c.Insert(0x2000, 0, SrcHW)
	s := c.Stats()
	if s.HWPrefFills != 2 || s.PrefetchFills != 0 {
		t.Errorf("HW fills = %d (runahead %d), want 2 (0)", s.HWPrefFills, s.PrefetchFills)
	}
	// Demand hit while the fill is still in flight: useful but late.
	c.Lookup(0x1000, 50, true)
	// Demand hit after the fill settled: useful and timely.
	c.Lookup(0x2000, 50, true)
	s = c.Stats()
	if s.HWPrefUseful != 2 || s.HWPrefLate != 1 {
		t.Errorf("HW useful/late = %d/%d, want 2/1", s.HWPrefUseful, s.HWPrefLate)
	}
	if s.PrefetchUseful != 0 {
		t.Error("HW prefetch hit leaked into runahead usefulness")
	}
	// Second demand hit must not double-count usefulness.
	c.Lookup(0x1000, 200, true)
	if c.Stats().HWPrefUseful != 2 {
		t.Error("HW prefetch usefulness double-counted")
	}
}

func TestPrefetchLookupNotCountedAsDemand(t *testing.T) {
	c := smallCache()
	c.Lookup(0x1000, 0, false)
	if s := c.Stats(); s.Accesses != 0 || s.Misses != 0 {
		t.Errorf("prefetch lookup leaked into demand stats: %+v", s)
	}
}

func TestMSHRAllocAndMerge(t *testing.T) {
	c := smallCache() // 4 MSHRs
	if !c.MSHRAlloc(0x1000, 0, 100, SrcDemand) {
		t.Fatal("first alloc must succeed")
	}
	fill, ok := c.MSHRLookup(0x1040, 0)
	if ok {
		t.Errorf("different line matched MSHR (fill=%d)", fill)
	}
	fill, ok = c.MSHRLookup(0x1008, 0)
	if !ok || fill != 100 {
		t.Errorf("same-line secondary miss: (%d,%v), want (100,true)", fill, ok)
	}
}

func TestMSHRExhaustionAndRecycle(t *testing.T) {
	c := smallCache() // 4 MSHRs
	for i := 0; i < 4; i++ {
		if !c.MSHRAlloc(uint64(i)*0x1000, 0, 100, SrcDemand) {
			t.Fatalf("alloc %d must succeed", i)
		}
	}
	if c.MSHRAlloc(0x9000, 0, 100, SrcDemand) {
		t.Fatal("fifth alloc must fail")
	}
	if c.Stats().MSHRStalls != 1 {
		t.Errorf("MSHR stalls = %d, want 1", c.Stats().MSHRStalls)
	}
	if c.MSHRFree(50) != 0 {
		t.Errorf("free at t=50: %d, want 0", c.MSHRFree(50))
	}
	// After the fills complete the registers recycle.
	if c.MSHRFree(100) != 4 {
		t.Errorf("free at t=100: %d, want 4", c.MSHRFree(100))
	}
	if !c.MSHRAlloc(0x9000, 150, 300, SrcDemand) {
		t.Fatal("alloc after recycle must succeed")
	}
}

func TestMSHRLookupExpired(t *testing.T) {
	c := smallCache()
	c.MSHRAlloc(0x1000, 0, 100, SrcDemand)
	if _, ok := c.MSHRLookup(0x1000, 100); ok {
		t.Error("completed MSHR must not match")
	}
}

// Property: under arbitrary access sequences the number of valid lines per
// set never exceeds associativity, and a just-inserted line is always
// present.
func TestPropertyCapacityAndPresence(t *testing.T) {
	f := func(seed int64, ops []uint16) bool {
		c := New(Config{Name: "P", SizeBytes: 2 * 1024, Assoc: 2, HitLatency: 1, MSHRs: 2})
		rng := rand.New(rand.NewSource(seed))
		for _, op := range ops {
			addr := uint64(op) << 6 // line-granular address space
			switch rng.Intn(3) {
			case 0:
				c.Lookup(addr, int64(op), true)
			case 1:
				c.Insert(addr, int64(op), SrcDemand)
				if !c.Contains(addr) {
					return false
				}
			case 2:
				c.MarkDirty(addr)
			}
			if c.OccupiedWays(addr) > 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: LRU stack — after touching K distinct lines in a full set, the
// victim of the next insert is never one of the most recently touched
// Assoc-1 lines.
func TestPropertyLRUVictimNotRecent(t *testing.T) {
	f := func(order []uint8) bool {
		c := New(Config{Name: "P", SizeBytes: 4 * uarch.LineSize, Assoc: 4, HitLatency: 1, MSHRs: 1})
		base := []uint64{0x0000, 0x1000, 0x2000, 0x3000}
		for i, a := range base {
			c.Insert(a, int64(i), SrcDemand)
		}
		now := int64(10)
		recent := map[uint64]bool{}
		// Touch three distinct lines; they must survive the next insert.
		touched := 0
		for _, o := range order {
			a := base[int(o)%4]
			if recent[a] {
				continue
			}
			c.Lookup(a, now, true)
			now++
			recent[a] = true
			touched++
			if touched == 3 {
				break
			}
		}
		if touched < 3 {
			return true // not enough distinct touches to constrain the victim
		}
		ev := c.Insert(0x9000, now, SrcDemand)
		return ev.Valid && !recent[ev.Addr]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestResetStats(t *testing.T) {
	c := smallCache()
	c.Lookup(0x0, 0, true)
	c.ResetStats()
	if s := c.Stats(); s.Accesses != 0 || s.Misses != 0 {
		t.Error("ResetStats failed")
	}
}

func TestNumSetsGeometry(t *testing.T) {
	c := New(Config{Name: "T", SizeBytes: 32 * 1024, Assoc: 8, HitLatency: 4, MSHRs: 10})
	if c.NumSets() != 64 {
		t.Errorf("32KB/8-way/64B: sets = %d, want 64", c.NumSets())
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with invalid config must panic")
		}
	}()
	New(Config{Name: "bad", SizeBytes: 7, Assoc: 1, HitLatency: 1, MSHRs: 1})
}

// TestMSHRSourceTracksRequester: MSHRs carry the fill source of the
// access that allocated them, visible only while the fill is in flight.
func TestMSHRSourceTracksRequester(t *testing.T) {
	c := New(Config{Name: "t", SizeBytes: 4096, Assoc: 4, HitLatency: 1, MSHRs: 4})
	c.MSHRAlloc(0x1000, 0, 100, SrcRunahead)
	c.MSHRAlloc(0x2000, 0, 100, SrcHW)
	if src, ok := c.MSHRSource(0x1000, 50); !ok || src != SrcRunahead {
		t.Errorf("MSHRSource(0x1000) = %v,%v, want SrcRunahead,true", src, ok)
	}
	if src, ok := c.MSHRSource(0x2000, 50); !ok || src != SrcHW {
		t.Errorf("MSHRSource(0x2000) = %v,%v, want SrcHW,true", src, ok)
	}
	if _, ok := c.MSHRSource(0x3000, 50); ok {
		t.Error("MSHRSource found a miss that was never allocated")
	}
	// Completed fills stop reporting.
	if _, ok := c.MSHRSource(0x1000, 100); ok {
		t.Error("MSHRSource reported a completed fill as in flight")
	}
}

// TestInFlightSource: a tag-present line reports its fill source until
// the data arrives, without touching LRU or statistics.
func TestInFlightSource(t *testing.T) {
	c := New(Config{Name: "t", SizeBytes: 4096, Assoc: 4, HitLatency: 1, MSHRs: 4})
	c.Insert(0x1000, 200, SrcRunahead)
	before := c.Stats()
	if src, ok := c.InFlightSource(0x1000, 100); !ok || src != SrcRunahead {
		t.Errorf("InFlightSource = %v,%v, want SrcRunahead,true", src, ok)
	}
	if _, ok := c.InFlightSource(0x1000, 200); ok {
		t.Error("InFlightSource reported an arrived line as in flight")
	}
	if c.Stats() != before {
		t.Error("InFlightSource perturbed statistics")
	}
	// A demand hit clears the tag: the line no longer filters.
	c.Insert(0x2000, 300, SrcRunahead)
	c.Lookup(0x2000, 100, true)
	if src, ok := c.InFlightSource(0x2000, 150); ok && src == SrcRunahead {
		t.Error("demanded line still reports SrcRunahead")
	}
}

// TestLifetimeHWPrefSurvivesReset: the throttle feedback counters must
// not reset with the measurement window.
func TestLifetimeHWPrefSurvivesReset(t *testing.T) {
	c := New(Config{Name: "t", SizeBytes: 4096, Assoc: 4, HitLatency: 1, MSHRs: 4})
	c.Insert(0x1000, 50, SrcHW)
	c.Lookup(0x1000, 10, true) // useful and late
	u, l := c.LifetimeHWPref()
	if u != 1 || l != 1 {
		t.Fatalf("lifetime counters = %d,%d, want 1,1", u, l)
	}
	c.ResetStats()
	if c.Stats().HWPrefUseful != 0 {
		t.Error("window stats survived reset")
	}
	if u, l = c.LifetimeHWPref(); u != 1 || l != 1 {
		t.Errorf("lifetime counters reset with the window: %d,%d", u, l)
	}
}
