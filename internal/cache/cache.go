// Package cache implements the set-associative cache model used at every
// level of the simulated memory hierarchy (L1I, L1D, L2, L3).
//
// A Cache is a passive tag store with LRU replacement plus a bank of MSHRs
// (miss-status holding registers) that bound the number of outstanding
// misses at that level. The multi-level access protocol — walking misses
// down the hierarchy and filling lines back up — lives in package mem;
// this package only answers "is this line here, when is its data ready,
// and is there an MSHR free to go fetch it".
//
// Timing model: a line can be inserted before its data has physically
// arrived (tag-allocated on miss issue). Each line records FillReady, the
// cycle its data becomes usable; a subsequent hit to an in-flight line
// completes at max(now + hitLatency, FillReady). This resource-reservation
// style avoids an event queue while preserving overlap and contention.
package cache

import (
	"fmt"
	"math/bits"

	"repro/internal/uarch"
)

// Config describes one cache level.
type Config struct {
	// Name labels the cache in statistics output (e.g. "L1D").
	Name string
	// SizeBytes is the total capacity. Must be a power-of-two multiple of
	// Assoc*LineSize.
	SizeBytes int
	// Assoc is the set associativity.
	Assoc int
	// HitLatency is the lookup latency in core cycles.
	HitLatency int
	// MSHRs is the number of outstanding misses supported.
	MSHRs int
}

// Validate checks the configuration for internal consistency.
func (c *Config) Validate() error {
	if c.SizeBytes <= 0 || c.Assoc <= 0 || c.MSHRs <= 0 || c.HitLatency < 0 {
		return fmt.Errorf("cache %s: non-positive geometry", c.Name)
	}
	lines := c.SizeBytes / uarch.LineSize
	if lines*uarch.LineSize != c.SizeBytes {
		return fmt.Errorf("cache %s: size %d not a multiple of line size", c.Name, c.SizeBytes)
	}
	sets := lines / c.Assoc
	if sets*c.Assoc != lines {
		return fmt.Errorf("cache %s: %d lines not divisible by assoc %d", c.Name, lines, c.Assoc)
	}
	if bits.OnesCount(uint(sets)) != 1 {
		return fmt.Errorf("cache %s: set count %d not a power of two", c.Name, sets)
	}
	return nil
}

// Source tags who installed a line: demand traffic, a runahead-execution
// prefetch, or a hardware prefetcher. The tag drives the per-source
// usefulness statistics (runahead coverage vs. hardware-prefetcher
// accuracy) and is cleared on the first demand hit.
type Source uint8

// Fill sources.
const (
	// SrcDemand marks demand fills (loads, fetches, write-allocates).
	SrcDemand Source = iota
	// SrcRunahead marks runahead-execution prefetch fills.
	SrcRunahead
	// SrcHW marks hardware-prefetcher fills (internal/prefetch).
	SrcHW
)

// line is one tag-store entry.
type line struct {
	tag       uint64 // full line address (addr >> 6)
	valid     bool
	dirty     bool
	lru       uint64 // larger = more recently used
	fillReady int64  // cycle at which the line's data is usable
	src       Source // who filled the line; demanded lines revert to SrcDemand
}

// mshr tracks one outstanding miss. src records who started the fill
// (demand, runahead, hardware prefetch) so the PRE-aware prefetch filter
// can recognize lines the runahead mechanism is already fetching;
// secondary misses merge without retagging.
type mshr struct {
	tag       uint64
	fillReady int64
	valid     bool
	src       Source
}

// Stats aggregates the per-level counters.
type Stats struct {
	Accesses       int64 // demand lookups
	Hits           int64
	Misses         int64
	PrefetchFills  int64 // lines installed by runahead prefetches
	PrefetchUseful int64 // demand hits on runahead-prefetched lines
	HWPrefFills    int64 // lines installed by the hardware prefetcher
	HWPrefUseful   int64 // demand hits on hardware-prefetched lines
	HWPrefLate     int64 // of those, hits that still waited on the fill
	Evictions      int64
	Writebacks     int64 // dirty evictions
	MSHRStalls     int64 // allocation attempts rejected for lack of MSHRs
}

// Cache is one level of the hierarchy. The zero value is not usable; use New.
type Cache struct {
	cfg      Config
	sets     [][]line
	setMask  uint64
	lruClock uint64
	mshrs    []mshr
	stats    Stats

	// Lifetime hardware-prefetch usefulness counters: the same events as
	// the HWPref* stats fields but never reset by ResetStats. The adaptive
	// throttle's feedback loop reads these — machine behavior must not
	// change when a measurement window opens.
	lifeHWUseful int64
	lifeHWLate   int64
}

// New builds a cache from cfg, panicking on invalid geometry (configuration
// errors are programming errors in this simulator, caught by Validate in
// the public API layer first).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := cfg.SizeBytes / uarch.LineSize / cfg.Assoc
	c := &Cache{
		cfg:     cfg,
		sets:    make([][]line, sets),
		setMask: uint64(sets - 1),
		mshrs:   make([]mshr, cfg.MSHRs),
	}
	backing := make([]line, sets*cfg.Assoc)
	for i := range c.sets {
		c.sets[i] = backing[i*cfg.Assoc : (i+1)*cfg.Assoc : (i+1)*cfg.Assoc]
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the accumulated counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the counters (measurement-window start).
func (c *Cache) ResetStats() { c.stats = Stats{} }

// HitLatency returns the configured lookup latency.
func (c *Cache) HitLatency() int { return c.cfg.HitLatency }

//sim:pure index arithmetic only
func (c *Cache) set(tag uint64) []line { return c.sets[tag&c.setMask] }

// Lookup probes for the line containing addr at cycle now.
//
// On a hit it updates LRU state and returns (true, ready) where ready is
// the cycle the data can be consumed (later than now+HitLatency only if
// the line is still in flight). demand=false marks prefetch lookups, which
// are excluded from the demand hit/miss statistics.
func (c *Cache) Lookup(addr uint64, now int64, demand bool) (hit bool, ready int64) {
	tag := addr >> 6
	set := c.set(tag)
	if demand {
		c.stats.Accesses++
	}
	for i := range set {
		ln := &set[i]
		if ln.valid && ln.tag == tag {
			c.lruClock++
			ln.lru = c.lruClock
			if demand {
				c.stats.Hits++
				switch ln.src {
				case SrcRunahead:
					c.stats.PrefetchUseful++
				case SrcHW:
					c.stats.HWPrefUseful++
					c.lifeHWUseful++
					if ln.fillReady > now {
						c.stats.HWPrefLate++
						c.lifeHWLate++
					}
				}
				ln.src = SrcDemand
			}
			ready = now + int64(c.cfg.HitLatency)
			if ln.fillReady > ready {
				ready = ln.fillReady
			}
			return true, ready
		}
	}
	if demand {
		c.stats.Misses++
	}
	return false, 0
}

// Contains reports whether the line holding addr is present, without
// touching LRU or statistics. Used by tests and invariant checks.
//
//sim:pure
func (c *Cache) Contains(addr uint64) bool {
	tag := addr >> 6
	for i := range c.set(tag) {
		ln := &c.set(tag)[i]
		if ln.valid && ln.tag == tag {
			return true
		}
	}
	return false
}

// Eviction describes the victim displaced by an Insert.
type Eviction struct {
	// Valid is true when a line was actually displaced.
	Valid bool
	// Addr is the victim's line-aligned byte address.
	Addr uint64
	// Dirty is true when the victim must be written back.
	Dirty bool
}

// Insert installs the line containing addr, choosing an LRU victim if the
// set is full. fillReady is the cycle the new line's data arrives. src
// tags runahead and hardware-prefetch fills for coverage statistics.
func (c *Cache) Insert(addr uint64, fillReady int64, src Source) Eviction {
	tag := addr >> 6
	set := c.set(tag)
	for i := range set {
		ln := &set[i]
		if ln.valid && ln.tag == tag {
			// Already present (two fills raced): keep the earlier data time.
			if fillReady < ln.fillReady {
				ln.fillReady = fillReady
			}
			return Eviction{}
		}
	}
	// Prefer an invalid way, else the true LRU line.
	victim := -1
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
	}
	if victim == -1 {
		oldest := ^uint64(0)
		for i := range set {
			if set[i].lru < oldest {
				oldest = set[i].lru
				victim = i
			}
		}
	}
	ev := Eviction{}
	v := &set[victim]
	if v.valid {
		ev = Eviction{Valid: true, Addr: v.tag << 6, Dirty: v.dirty}
		c.stats.Evictions++
		if v.dirty {
			c.stats.Writebacks++
		}
	}
	c.lruClock++
	*v = line{tag: tag, valid: true, lru: c.lruClock, fillReady: fillReady, src: src}
	switch src {
	case SrcRunahead:
		c.stats.PrefetchFills++
	case SrcHW:
		c.stats.HWPrefFills++
	}
	return ev
}

// MarkDirty flags the line containing addr as modified (store commit).
// It is a no-op if the line is absent.
func (c *Cache) MarkDirty(addr uint64) {
	tag := addr >> 6
	for i := range c.set(tag) {
		ln := &c.set(tag)[i]
		if ln.valid && ln.tag == tag {
			ln.dirty = true
			return
		}
	}
}

// Invalidate drops the line containing addr, returning whether it was
// present and dirty (the caller owns any required writeback).
func (c *Cache) Invalidate(addr uint64) (present, dirty bool) {
	tag := addr >> 6
	for i := range c.set(tag) {
		ln := &c.set(tag)[i]
		if ln.valid && ln.tag == tag {
			present, dirty = true, ln.dirty
			ln.valid = false
			return
		}
	}
	return false, false
}

// --- MSHR management -------------------------------------------------

// MSHRLookup returns the fill-completion cycle for an outstanding miss on
// addr's line, if one exists at cycle now. Secondary misses merge into the
// primary miss via this path.
func (c *Cache) MSHRLookup(addr uint64, now int64) (fillReady int64, ok bool) {
	tag := addr >> 6
	for i := range c.mshrs {
		m := &c.mshrs[i]
		if m.valid && m.tag == tag {
			if m.fillReady <= now {
				m.valid = false // lazily retire completed entries
				continue
			}
			return m.fillReady, true
		}
	}
	return 0, false
}

// MSHRAlloc reserves an MSHR for a new miss on addr's line, which will
// complete at fillReady, tagged with the source that started the fill.
// It returns false when all MSHRs are busy, in which case the access must
// be retried later (modelled as an MSHR stall).
func (c *Cache) MSHRAlloc(addr uint64, now, fillReady int64, src Source) bool {
	for i := range c.mshrs {
		m := &c.mshrs[i]
		if !m.valid || m.fillReady <= now {
			*m = mshr{tag: addr >> 6, fillReady: fillReady, valid: true, src: src}
			return true
		}
	}
	c.stats.MSHRStalls++
	return false
}

// MSHRSource returns the fill source of the outstanding miss on addr's
// line at cycle now, if one exists. Unlike MSHRLookup it does not retire
// completed entries (it is a pure probe used by the PRE-aware prefetch
// filter, which must not perturb state).
//
//sim:pure
func (c *Cache) MSHRSource(addr uint64, now int64) (Source, bool) {
	tag := addr >> 6
	for i := range c.mshrs {
		m := &c.mshrs[i]
		if m.valid && m.tag == tag && m.fillReady > now {
			return m.src, true
		}
	}
	return SrcDemand, false
}

// InFlightSource returns the fill source of addr's line when the line is
// tag-present but its data has not yet arrived (fillReady > now), without
// touching LRU or statistics. The resource-reservation timing model
// installs lines at miss issue, so "who is currently fetching this line"
// lives on the line itself; the PRE-aware prefetch filter probes it to
// recognize in-flight runahead fills.
//
//sim:pure
func (c *Cache) InFlightSource(addr uint64, now int64) (Source, bool) {
	tag := addr >> 6
	for i := range c.set(tag) {
		ln := &c.set(tag)[i]
		if ln.valid && ln.tag == tag && ln.fillReady > now {
			return ln.src, true
		}
	}
	return SrcDemand, false
}

// NextMSHRRelease returns the earliest cycle strictly after now at which
// an occupied MSHR's fill completes (freeing the entry and changing the
// outcome of MSHRFree/MSHRLookup/MSHRAlloc). ok=false means no occupied
// entry releases after now. The core's cycle skipper uses this to bound
// how far a retrying (MSHR-blocked) access can be fast-forwarded.
//
//sim:pure the skipper may probe this any number of times per decision
func (c *Cache) NextMSHRRelease(now int64) (int64, bool) {
	var best int64
	ok := false
	for i := range c.mshrs {
		m := &c.mshrs[i]
		if m.valid && m.fillReady > now && (!ok || m.fillReady < best) {
			best = m.fillReady
			ok = true
		}
	}
	return best, ok
}

// AddStats accumulates d into the counters. The core's cycle skipper uses
// it to account, in bulk, the per-cycle statistics of skipped steady
// retry cycles; d must describe exactly what the skipped cycles would
// have counted.
func (c *Cache) AddStats(d Stats) {
	c.stats.Accesses += d.Accesses
	c.stats.Hits += d.Hits
	c.stats.Misses += d.Misses
	c.stats.MSHRStalls += d.MSHRStalls
	c.stats.PrefetchFills += d.PrefetchFills
	c.stats.PrefetchUseful += d.PrefetchUseful
	c.stats.HWPrefFills += d.HWPrefFills
	c.stats.HWPrefUseful += d.HWPrefUseful
	c.stats.HWPrefLate += d.HWPrefLate
	c.lifeHWUseful += d.HWPrefUseful
	c.lifeHWLate += d.HWPrefLate
	c.stats.Evictions += d.Evictions
	c.stats.Writebacks += d.Writebacks
}

// LifetimeHWPref returns the never-reset hardware-prefetch usefulness
// counters (demand hits on HW-prefetched lines, and how many of those
// still waited on the fill) — the throttle feedback inputs.
func (c *Cache) LifetimeHWPref() (useful, late int64) {
	return c.lifeHWUseful, c.lifeHWLate
}

// MSHRFree counts the MSHRs available at cycle now.
func (c *Cache) MSHRFree(now int64) int {
	free := 0
	for i := range c.mshrs {
		m := &c.mshrs[i]
		if !m.valid || m.fillReady <= now {
			free++
		}
	}
	return free
}

// NumSets returns the number of sets (for tests).
func (c *Cache) NumSets() int { return len(c.sets) }

// OccupiedWays counts valid lines in the set holding addr (for tests and
// invariant checks).
func (c *Cache) OccupiedWays(addr uint64) int {
	n := 0
	for i := range c.set(addr >> 6) {
		if c.set(addr >> 6)[i].valid {
			n++
		}
	}
	return n
}
