package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

func quickOpt() Options {
	return Options{WarmupUops: 5_000, MeasureUops: 30_000}
}

func TestRunProducesSaneResult(t *testing.T) {
	w, _ := workload.ByName("libquantum")
	r, err := Run(w, core.ModeOoO, quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if r.Committed < 30_000 || r.Committed > 30_003 {
		t.Errorf("committed = %d, want ~30000", r.Committed)
	}
	if r.IPC <= 0 || r.IPC > 4 {
		t.Errorf("IPC = %v implausible", r.IPC)
	}
	if r.L3MPKI <= 0 {
		t.Error("memory-bound proxy must miss the LLC")
	}
	if r.Energy.Total() <= 0 {
		t.Error("energy must be positive")
	}
	if r.Entries != 0 {
		t.Error("OoO must not enter runahead")
	}
}

func TestRunRejectsEmptyWindow(t *testing.T) {
	w, _ := workload.ByName("libquantum")
	if _, err := Run(w, core.ModeOoO, Options{}); err == nil {
		t.Fatal("zero-length window accepted")
	}
}

func TestRunConfigureHook(t *testing.T) {
	w, _ := workload.ByName("libquantum")
	opt := quickOpt()
	opt.Configure = func(c *core.Config) { c.SSTSize = 16 }
	r, err := Run(w, core.ModePRE, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r.Mode != core.ModePRE {
		t.Error("mode not recorded")
	}
}

func TestRunConfigureInvalid(t *testing.T) {
	w, _ := workload.ByName("libquantum")
	opt := quickOpt()
	opt.Configure = func(c *core.Config) { c.Width = 0 }
	if _, err := Run(w, core.ModePRE, opt); err == nil {
		t.Fatal("invalid configuration accepted")
	}
}

func TestSpeedup(t *testing.T) {
	base := Result{IPC: 1.0}
	faster := Result{IPC: 1.5}
	if s := faster.Speedup(base); s != 1.5 {
		t.Errorf("speedup = %v", s)
	}
}

func TestDeterministicResults(t *testing.T) {
	w, _ := workload.ByName("milc")
	a, err := Run(w, core.ModePRE, quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(w, core.ModePRE, quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Entries != b.Entries || a.Energy.Total() != b.Energy.Total() {
		t.Errorf("nondeterministic results: %+v vs %+v", a.Cycles, b.Cycles)
	}
}

func TestRunMatrixShapeAndParallelism(t *testing.T) {
	ws := []workload.Workload{}
	for _, n := range []string{"libquantum", "milc"} {
		w, _ := workload.ByName(n)
		ws = append(ws, w)
	}
	modes := []core.Mode{core.ModeOoO, core.ModePRE}
	res, err := RunMatrix(ws, modes, quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || len(res[0]) != 2 {
		t.Fatalf("matrix shape wrong")
	}
	for wi := range res {
		for mi := range res[wi] {
			if res[wi][mi].Committed < 30_000 {
				t.Errorf("cell [%d][%d] incomplete: %+v", wi, mi, res[wi][mi].Committed)
			}
			if res[wi][mi].Workload != ws[wi].Name || res[wi][mi].Mode != modes[mi] {
				t.Errorf("cell [%d][%d] misplaced", wi, mi)
			}
		}
	}
	// Matrix runs must agree with individual runs (parallelism must not
	// perturb determinism).
	single, _ := Run(ws[0], core.ModePRE, quickOpt())
	if single.Cycles != res[0][1].Cycles {
		t.Error("parallel matrix result differs from single run")
	}
}

func TestRunaheadModesCollectRunaheadStats(t *testing.T) {
	w, _ := workload.ByName("libquantum")
	r, err := Run(w, core.ModePRE, quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if r.Entries == 0 || r.Prefetches == 0 {
		t.Error("PRE run must show runahead activity")
	}
	if r.FreeIQFrac <= 0 || r.FreeIQFrac >= 1 {
		t.Errorf("free IQ fraction %v implausible", r.FreeIQFrac)
	}
	if r.IntervalMean <= 0 {
		t.Error("interval mean missing")
	}
}
