// Package sim assembles a full machine (core + memory + workload), runs
// warmup and measurement windows, and gathers the statistics every report
// and benchmark consumes. It is the programmatic equivalent of the
// paper's "simulate 1-billion-instruction SimPoints" methodology, scaled
// to windows that run in seconds.
package sim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/exp/pool"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Options controls a simulation run.
type Options struct {
	// WarmupUops executes before the measurement window opens (caches,
	// predictors and the SST learn during warmup).
	WarmupUops int64
	// MeasureUops is the measured window length.
	MeasureUops int64
	// Configure, if non-nil, adjusts the core configuration (built from
	// core.Default for the requested mode) before the machine is built —
	// the hook every ablation sweep uses.
	Configure func(*core.Config)
	// Energy overrides the energy parameters (Default22nm otherwise).
	Energy *energy.Params
	// DisableCycleSkip runs every simulated cycle individually instead of
	// letting the core skip provably idle spans. Results are byte-identical
	// either way (the differential tests pin this); the knob exists for
	// those tests and for debugging, at a large wall-clock cost.
	DisableCycleSkip bool
	// Trace, when non-nil, records a cycle-level event timeline of the
	// measured window (runahead episodes, stall spans, cycle skips,
	// prefetch trains, throttle decisions) plus a post-run metrics
	// snapshot into the recorder. The recorder attaches after warmup and
	// only ever reads machine state, so the Result — and every byte of
	// the results sink — is identical with tracing on or off.
	Trace *telemetry.Recorder
	// Fidelity selects the simulation fidelity tier (core.FidelityExact
	// by default). A non-exact tier is applied to the configuration after
	// Configure runs, so the tier-level request wins over per-point
	// config tweaks; FidelityExact leaves the configuration untouched.
	Fidelity core.Fidelity
}

// DefaultOptions returns the standard harness window.
func DefaultOptions() Options {
	return Options{WarmupUops: 50_000, MeasureUops: 300_000}
}

// Result is the flattened outcome of one run.
type Result struct {
	Workload string
	Mode     core.Mode

	Cycles    int64
	Committed int64
	IPC       float64

	// Memory behaviour.
	L3MPKI     float64 // demand LLC misses per kilo committed µop
	DRAMReads  int64
	DRAMWrites int64

	// Per-level demand hit breakdown (data-side for L1; L2/L3 include the
	// instruction misses that reach them).
	L1DHits, L1DMisses int64
	L2Hits, L2Misses   int64
	L3Hits, L3Misses   int64

	// Hardware-prefetcher behaviour (PF-augmented configurations; all
	// zero when every prefetcher is disabled). Issue counters sum the
	// L1I, L1D and L2 engines; the derived metrics use the standard
	// definitions (see mem.PFStats). HWPrefFilteredRA counts requests the
	// PRE-aware filter dropped as duplicates of in-flight runahead fills
	// (the interference term); HWPrefOverflowed counts requests lost to
	// engine queue overflow before the hierarchy saw them.
	HWPrefIssued     int64
	HWPrefDropped    int64
	HWPrefRedundant  int64
	HWPrefFilteredRA int64
	HWPrefOverflowed int64
	HWPrefFills      int64
	HWPrefUseful     int64
	HWPrefLate       int64
	HWPFAccuracy     float64
	HWPFCoverage     float64
	HWPFTimeliness   float64

	// Runahead behaviour.
	Entries             int64
	EntriesSkipped      int64
	RunaheadCycles      int64
	Prefetches          int64
	PrefetchFills       int64
	PrefetchUseful      int64
	IntervalMean        float64
	IntervalFracBelow20 float64
	RefillPenaltyMean   float64
	RefillPenaltyCount  int64
	FullWindowStall     int64
	DivergenceStops     int64

	// Section 3.4 free-resource fractions at runahead entry.
	FreeIQFrac, FreeIntFrac, FreeFPFrac float64

	BranchMispredicts int64

	// Fast-runahead fidelity tier (all omitted from the serialized
	// result in the exact tier, which therefore stays byte-identical).
	Fidelity           string  `json:",omitempty"`
	EmulatedEpisodes   int64   `json:",omitempty"`
	EmulatedPrefetches int64   `json:",omitempty"`
	ChainCacheHits     int64   `json:",omitempty"`
	ChainCacheMisses   int64   `json:",omitempty"`
	ChainCacheEvicts   int64   `json:",omitempty"`
	ChainOverlapMean   float64 `json:",omitempty"`

	Energy energy.Breakdown
}

// Speedup returns r's IPC normalized to base's.
func (r Result) Speedup(base Result) float64 {
	return stats.Ratio(r.IPC, base.IPC)
}

// Run simulates one workload under one mode.
func Run(w workload.Workload, mode core.Mode, opt Options) (Result, error) {
	if opt.MeasureUops <= 0 {
		return Result{}, fmt.Errorf("sim: non-positive measurement window")
	}
	cfg := core.Default(mode)
	if opt.Configure != nil {
		opt.Configure(&cfg)
	}
	if opt.Fidelity != core.FidelityExact {
		cfg.Fidelity = opt.Fidelity
	}
	c, err := core.New(cfg, w.New())
	if err != nil {
		return Result{}, err
	}
	c.DisableCycleSkip = opt.DisableCycleSkip
	if opt.WarmupUops > 0 {
		c.Run(opt.WarmupUops)
	}
	c.ResetStats()
	if opt.Trace != nil {
		// Attach after warmup and the stats reset so episode deltas are
		// measured against clean baselines and the trace covers exactly
		// the measured window.
		c.AttachTelemetry(opt.Trace)
		c.Hierarchy().AttachTelemetry(opt.Trace)
	}
	c.Run(opt.MeasureUops)
	if opt.Trace != nil {
		opt.Trace.Finish(c.Now())
		c.PublishMetrics(opt.Trace.Metrics())
		c.Hierarchy().PublishMetrics(opt.Trace.Metrics())
	}
	return gather(w.Name, mode, c, opt), nil
}

// gather flattens the machine's statistics into a Result.
func gather(name string, mode core.Mode, c *core.Core, opt Options) Result {
	cs := c.Stats()
	l1d := c.Hierarchy().L1D().Stats()
	l1i := c.Hierarchy().L1I().Stats()
	l2 := c.Hierarchy().L2().Stats()
	l3 := c.Hierarchy().L3().Stats()
	dr := c.Hierarchy().DRAM().Stats()
	fe := c.FetchUnit().Stats()
	sst := c.SST().Stats()
	prdq := c.PRDQ().Stats()
	emq := c.EMQ().Stats()

	params := energy.Default22nm()
	if opt.Energy != nil {
		params = *opt.Energy
	}
	act := energy.Activity{
		Cycles:       cs.Cycles,
		Fetched:      fe.FetchedUops,
		Decoded:      cs.Decoded,
		Renamed:      cs.Renamed,
		Dispatched:   cs.Dispatched,
		IssuedALU:    cs.IssuedALU,
		IssuedFPU:    cs.IssuedFPU,
		IssuedBranch: cs.IssuedBranch,
		IssuedMem:    cs.IssuedLoad + cs.IssuedStore,
		RegReads:     2 * (cs.IssuedALU + cs.IssuedFPU + cs.IssuedBranch + cs.IssuedLoad + cs.IssuedStore),
		RegWrites:    cs.Completed,
		Committed:    cs.Committed + cs.PseudoRetired,
		L1Accesses:   l1i.Accesses + cs.IssuedLoad + cs.IssuedStore + l1d.HWPrefFills + l1i.HWPrefFills,
		L2Accesses:   l2.Accesses + l2.PrefetchFills + l2.HWPrefFills + l2.Writebacks,
		L3Accesses:   l3.Accesses + l3.PrefetchFills + l3.HWPrefFills + l3.Writebacks,
		DRAMAccesses: dr.Reads + dr.Writes,
		SSTLookups:   sst.Lookups,
		SSTWrites:    sst.Inserts,
		PRDQOps:      prdq.Allocs + prdq.Deallocs,
		EMQOps:       emq.Pushes + emq.Pops,
	}

	pf := c.Hierarchy().PFStats()

	r := Result{
		Workload:            name,
		Mode:                mode,
		Cycles:              cs.Cycles,
		Committed:           cs.Committed,
		IPC:                 cs.IPC(),
		L3MPKI:              stats.PerKilo(l3.Misses, cs.Committed),
		DRAMReads:           dr.Reads,
		DRAMWrites:          dr.Writes,
		L1DHits:             l1d.Hits,
		L1DMisses:           l1d.Misses,
		L2Hits:              l2.Hits,
		L2Misses:            l2.Misses,
		L3Hits:              l3.Hits,
		L3Misses:            l3.Misses,
		HWPrefIssued:        pf.Issued,
		HWPrefDropped:       pf.Dropped,
		HWPrefRedundant:     pf.Redundant,
		HWPrefFilteredRA:    pf.FilteredRA,
		HWPrefOverflowed:    pf.Overflowed,
		HWPrefFills:         pf.Fills,
		HWPrefUseful:        pf.Useful,
		HWPrefLate:          pf.Late,
		HWPFAccuracy:        pf.Accuracy(),
		HWPFCoverage:        pf.Coverage(),
		HWPFTimeliness:      pf.Timeliness(),
		Entries:             cs.Entries,
		EntriesSkipped:      cs.EntriesSkipped,
		RunaheadCycles:      cs.RunaheadCycles,
		Prefetches:          cs.Prefetches,
		PrefetchFills:       l1d.PrefetchFills,
		PrefetchUseful:      l1d.PrefetchUseful,
		IntervalMean:        cs.Intervals.Mean(),
		IntervalFracBelow20: cs.Intervals.FractionBelow(20),
		RefillPenaltyMean:   cs.RefillPenalty.Mean(),
		RefillPenaltyCount:  cs.RefillPenalty.Count(),
		FullWindowStall:     cs.FullWindowStallCycles,
		DivergenceStops:     cs.DivergenceStops,
		FreeIQFrac:          cs.FreeIQAtEntry.Mean(),
		FreeIntFrac:         cs.FreeIntRegAtEntry.Mean(),
		FreeFPFrac:          cs.FreeFPRegAtEntry.Mean(),
		BranchMispredicts:   cs.BranchMispredicts,
		Energy:              energy.Compute(params, act),
	}
	if cc := c.ChainCache(); cc != nil {
		// Fast tier only: in the exact tier these stay zero values and the
		// serialized result is byte-identical to pre-fidelity output.
		ccs := cc.Stats()
		r.Fidelity = core.FidelityFastRunahead.String()
		r.EmulatedEpisodes = cs.EmulatedEpisodes
		r.EmulatedPrefetches = cs.EmulatedPrefetches
		r.ChainCacheHits = ccs.Hits
		r.ChainCacheMisses = ccs.Misses
		r.ChainCacheEvicts = ccs.Evicts
		r.ChainOverlapMean = cc.OverlapMean()
	}
	return r
}

// RunMatrix simulates every (workload, mode) pair, in parallel across the
// machine's cores, returning results indexed [workload][mode] in the
// given orders. It delegates to the same worker pool as the experiment
// orchestrator (internal/exp): each job writes only its own slot, and the
// returned error is the first in (workload, mode) order regardless of
// completion order, so the call is deterministic at any parallelism.
func RunMatrix(ws []workload.Workload, modes []core.Mode, opt Options) ([][]Result, error) {
	results := make([][]Result, len(ws))
	for i := range results {
		results[i] = make([]Result, len(modes))
	}
	errs := make([]error, len(ws)*len(modes))
	pool.Run(len(errs), 0, func(i int) {
		wi, mi := i/len(modes), i%len(modes)
		results[wi][mi], errs[i] = Run(ws[wi], modes[mi], opt)
	})
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}
