package rename

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/uarch"
)

func newR() *Renamer { return New(DefaultConfig()) }

func TestInitialState(t *testing.T) {
	r := newR()
	intFree, fpFree := r.FreeCounts()
	if intFree != 168-uarch.NumIntRegs {
		t.Errorf("int free = %d, want %d", intFree, 168-uarch.NumIntRegs)
	}
	if fpFree != 168-uarch.NumFPRegs {
		t.Errorf("fp free = %d, want %d", fpFree, 168-uarch.NumFPRegs)
	}
	// Every architectural register maps to a distinct ready preg.
	seen := map[PReg]bool{}
	for i := 0; i < uarch.NumIntRegs; i++ {
		p := r.Lookup(uarch.IntReg(i))
		if p == PRegNone || seen[p] || !r.IsReady(p) {
			t.Fatalf("bad initial mapping for r%d: %d", i, p)
		}
		seen[p] = true
	}
}

func TestConfigValidation(t *testing.T) {
	c := Config{IntPRF: 8, FPPRF: 168}
	if err := c.Validate(); err == nil {
		t.Error("undersized int PRF accepted")
	}
	c = Config{IntPRF: 168, FPPRF: 8}
	if err := c.Validate(); err == nil {
		t.Error("undersized fp PRF accepted")
	}
}

func TestRenameAllocatesAndMaps(t *testing.T) {
	r := newR()
	u := &uarch.Uop{PC: 0x1000, Class: uarch.ClassIntAlu,
		Dst: uarch.IntReg(1), Src1: uarch.IntReg(2), Src2: uarch.IntReg(3)}
	before2 := r.Lookup(uarch.IntReg(2))
	out, ok := r.Rename(u, false)
	if !ok {
		t.Fatal("rename failed")
	}
	if out.Src1P != before2 {
		t.Error("source mapping wrong")
	}
	if out.DstP == PRegNone || out.DstP == out.OldDstP {
		t.Error("dst allocation wrong")
	}
	if r.Lookup(uarch.IntReg(1)) != out.DstP {
		t.Error("RAT not updated")
	}
	if r.IsReady(out.DstP) {
		t.Error("fresh dst must not be ready")
	}
	if r.ProducerPC(uarch.IntReg(1)) != 0x1000 {
		t.Error("RAT PC extension not recorded")
	}
}

func TestRenameSerialDependence(t *testing.T) {
	r := newR()
	u1 := &uarch.Uop{PC: 4, Class: uarch.ClassIntAlu, Dst: uarch.IntReg(1)}
	o1, _ := r.Rename(u1, false)
	u2 := &uarch.Uop{PC: 8, Class: uarch.ClassIntAlu, Dst: uarch.IntReg(2), Src1: uarch.IntReg(1)}
	o2, _ := r.Rename(u2, false)
	if o2.Src1P != o1.DstP {
		t.Error("consumer must read producer's new preg")
	}
}

func TestRenameExhaustion(t *testing.T) {
	r := newR()
	free, _ := r.FreeCounts()
	u := &uarch.Uop{PC: 4, Class: uarch.ClassIntAlu, Dst: uarch.IntReg(1)}
	for i := 0; i < free; i++ {
		if _, ok := r.Rename(u, false); !ok {
			t.Fatalf("rename %d failed early", i)
		}
	}
	if _, ok := r.Rename(u, false); ok {
		t.Fatal("rename past exhaustion succeeded")
	}
	if r.Stats().RenameStall != 1 {
		t.Errorf("stalls = %d, want 1", r.Stats().RenameStall)
	}
	if !r.CanRename(uarch.FPReg(0)) {
		t.Error("fp file must be unaffected")
	}
	if r.CanRename(uarch.IntReg(0)) {
		t.Error("int file must report exhaustion")
	}
}

func TestCommitFreesOldMapping(t *testing.T) {
	r := newR()
	u := &uarch.Uop{PC: 4, Class: uarch.ClassIntAlu, Dst: uarch.IntReg(1)}
	o, _ := r.Rename(u, false)
	intFree, _ := r.FreeCounts()
	r.Commit(u.Dst, o.DstP)
	intFree2, _ := r.FreeCounts()
	if intFree2 != intFree+1 {
		t.Errorf("commit freed %d regs, want 1", intFree2-intFree)
	}
}

func TestReadyPoisonLifecycle(t *testing.T) {
	r := newR()
	u := &uarch.Uop{PC: 4, Class: uarch.ClassLoad, Dst: uarch.IntReg(1), Src1: uarch.IntReg(2)}
	o, _ := r.Rename(u, false)
	if r.IsReady(o.DstP) || r.IsPoisoned(o.DstP) {
		t.Fatal("fresh preg state wrong")
	}
	r.MarkPoisoned(o.DstP, true)
	if !r.IsPoisoned(o.DstP) || !r.IsReady(o.DstP) {
		t.Error("poison+ready (RA semantics) not set")
	}
	r.ClearPoison(o.DstP)
	if r.IsPoisoned(o.DstP) {
		t.Error("poison not cleared")
	}

	o2, _ := r.Rename(u, false)
	r.MarkPoisoned(o2.DstP, false)
	if r.IsReady(o2.DstP) {
		t.Error("PRE-style poison must not publish readiness")
	}
	if !r.IsPoisoned(o2.DstP) {
		t.Error("PRE-style poison missing")
	}
}

func TestPRegNoneAlwaysReadyNeverPoisoned(t *testing.T) {
	r := newR()
	if !r.IsReady(PRegNone) {
		t.Error("PRegNone must be trivially ready")
	}
	r.MarkPoisoned(PRegNone, true) // must be a no-op
	if r.IsPoisoned(PRegNone) {
		t.Error("PRegNone cannot be poisoned")
	}
}

func TestRunaheadGeneration(t *testing.T) {
	r := newR()
	u := &uarch.Uop{PC: 4, Class: uarch.ClassIntAlu, Dst: uarch.IntReg(1)}
	oNormal, _ := r.Rename(u, false)
	if r.IsRunaheadAlloc(oNormal.DstP) {
		t.Error("normal alloc tagged as runahead")
	}
	r.BeginRunahead()
	oRun, _ := r.Rename(u, true)
	if !r.IsRunaheadAlloc(oRun.DstP) {
		t.Error("runahead alloc not tagged")
	}
	if r.IsRunaheadAlloc(oNormal.DstP) {
		t.Error("pre-runahead alloc tagged as runahead")
	}
	// A new episode invalidates the old generation.
	r.BeginRunahead()
	if r.IsRunaheadAlloc(oRun.DstP) {
		t.Error("stale generation still considered runahead")
	}
}

func TestCheckpointSpecRestore(t *testing.T) {
	r := newR()
	// Advance some state first.
	u := &uarch.Uop{PC: 4, Class: uarch.ClassIntAlu, Dst: uarch.IntReg(1)}
	r.Rename(u, false)
	cp := r.CheckpointSpec()
	mapAt := r.Lookup(uarch.IntReg(1))
	intFree, fpFree := r.FreeCounts()

	// Runahead: burn through registers.
	r.BeginRunahead()
	for i := 0; i < 40; i++ {
		ur := &uarch.Uop{PC: uint64(100 + i), Class: uarch.ClassIntAlu, Dst: uarch.IntReg(i % 8)}
		if _, ok := r.Rename(ur, true); !ok {
			t.Fatal("runahead rename failed")
		}
	}
	uf := &uarch.Uop{PC: 999, Class: uarch.ClassFPAdd, Dst: uarch.FPReg(3)}
	r.Rename(uf, true)

	r.RestoreSpec(cp)
	if r.Lookup(uarch.IntReg(1)) != mapAt {
		t.Error("RAT not restored")
	}
	if r.ProducerPC(uarch.IntReg(1)) != 4 {
		t.Error("RAT PC extension not restored")
	}
	i2, f2 := r.FreeCounts()
	if i2 != intFree || f2 != fpFree {
		t.Errorf("free lists not restored: (%d,%d) vs (%d,%d)", i2, f2, intFree, fpFree)
	}
}

func TestRestoreFullRebuildsEverything(t *testing.T) {
	r := newR()
	// Commit a few µops so committed state diverges from initial.
	for i := 0; i < 5; i++ {
		u := &uarch.Uop{PC: uint64(4 * (i + 1)), Class: uarch.ClassIntAlu, Dst: uarch.IntReg(1)}
		o, _ := r.Rename(u, false)
		r.MarkReady(o.DstP)
		r.Commit(u.Dst, o.DstP)
	}
	cp := r.CheckpointCommitted()
	committedMap := r.Lookup(uarch.IntReg(1)) // spec == committed here

	// Wreck the speculative state (runahead with pseudo-commits).
	for i := 0; i < 100; i++ {
		u := &uarch.Uop{PC: uint64(1000 + i), Class: uarch.ClassIntAlu, Dst: uarch.IntReg(i % 16)}
		o, ok := r.Rename(u, false)
		if !ok {
			break
		}
		r.Commit(u.Dst, o.DstP) // pseudo-commit corrupts committed RAT
	}

	r.RestoreFull(cp)
	if r.Lookup(uarch.IntReg(1)) != committedMap {
		t.Error("RAT not restored to committed checkpoint")
	}
	if !r.IsReady(r.Lookup(uarch.IntReg(1))) {
		t.Error("restored mappings must be ready")
	}
	intFree, fpFree := r.FreeCounts()
	if intFree != 168-uarch.NumIntRegs || fpFree != 168-uarch.NumFPRegs {
		t.Errorf("free lists after rebuild: (%d,%d)", intFree, fpFree)
	}
}

// Property: register conservation — in any interleaving of rename and
// commit, (free + live) int registers is constant, and no register is
// ever both free and mapped.
func TestPropertyRegisterConservation(t *testing.T) {
	f := func(seed int64, steps []uint8) bool {
		r := newR()
		rng := rand.New(rand.NewSource(seed))
		type live struct {
			dst  uarch.Reg
			dstP PReg
		}
		var pending []live
		for range steps {
			if rng.Intn(2) == 0 || len(pending) == 0 {
				dst := uarch.IntReg(rng.Intn(uarch.NumIntRegs))
				u := &uarch.Uop{PC: uint64(rng.Intn(1000)), Class: uarch.ClassIntAlu, Dst: dst}
				if o, ok := r.Rename(u, false); ok {
					pending = append(pending, live{dst, o.DstP})
				}
			} else {
				// Commit the oldest pending µop.
				l := pending[0]
				pending = pending[1:]
				r.Commit(l.dst, l.dstP)
			}
			// Conservation: free + (arch mappings) + (pending in-flight) +
			// (old mappings awaiting commit-free) == total. Verify no
			// double-free instead: every free-list entry distinct.
			intFree, _ := r.FreeCounts()
			if intFree > 168-1 {
				return false
			}
			seen := map[PReg]bool{}
			for _, p := range r.intFree {
				if seen[p] {
					return false
				}
				seen[p] = true
			}
			// A mapped register must never be on the free list.
			for a := 0; a < uarch.NumIntRegs; a++ {
				if seen[r.Lookup(uarch.IntReg(a))] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestStatsAccumulateAndReset(t *testing.T) {
	r := newR()
	u := &uarch.Uop{PC: 4, Class: uarch.ClassFPAdd, Dst: uarch.FPReg(0)}
	r.Rename(u, false)
	s := r.Stats()
	if s.Renamed != 1 || s.FPAllocs != 1 {
		t.Errorf("stats = %+v", s)
	}
	r.ResetStats()
	if r.Stats().Renamed != 0 {
		t.Error("ResetStats failed")
	}
}
