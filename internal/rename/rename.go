// Package rename implements register renaming: the speculative and
// committed register alias tables (RAT), the physical register files with
// their free lists, and per-physical-register ready and poison state.
//
// Two pieces are specific to this paper:
//
//   - Each RAT entry additionally records the PC of the instruction that
//     last produced the architectural register (Section 3.2). The SST uses
//     it to walk backwards from a stalling load to its producers, one
//     level per loop iteration.
//
//   - Physical registers allocated during runahead are tagged with a
//     runahead generation, so the PRDQ's in-order reclamation can free a
//     runahead µop's previous mapping only when that mapping itself
//     belongs to the current runahead episode. Pre-runahead mappings stay
//     live because the restored RAT will point at them again at exit.
//
// Poison ("INV") semantics follow runahead execution: a poisoned register
// holds invalid data. Traditional runahead marks poisoned registers ready
// so dependents drain through the pipeline and propagate INV at issue; PRE
// leaves the stalling load's register not-ready (normal-mode consumers in
// the ROB must keep waiting for the real data) and filters INV slice µops
// at rename instead.
package rename

import (
	"fmt"

	"repro/internal/uarch"
)

// PReg names a physical register; 0 means "none".
type PReg uint16

// PRegNone is the absent physical register.
const PRegNone PReg = 0

// Config sizes the physical register files (Table 1: 168 int + 168 fp).
type Config struct {
	IntPRF, FPPRF int
}

// DefaultConfig returns the Haswell-style register files from Table 1.
func DefaultConfig() Config { return Config{IntPRF: 168, FPPRF: 168} }

// Validate checks that the files can at least back every architectural
// register.
func (c *Config) Validate() error {
	if c.IntPRF < uarch.NumIntRegs+1 {
		return fmt.Errorf("rename: %d int physical registers cannot back %d architectural", c.IntPRF, uarch.NumIntRegs)
	}
	if c.FPPRF < uarch.NumFPRegs+1 {
		return fmt.Errorf("rename: %d fp physical registers cannot back %d architectural", c.FPPRF, uarch.NumFPRegs)
	}
	return nil
}

// Out is the result of renaming one µop.
type Out struct {
	// Src1P and Src2P are the physical sources (PRegNone if absent).
	Src1P, Src2P PReg
	// DstP is the newly allocated destination (PRegNone if the µop does
	// not write a register).
	DstP PReg
	// OldDstP is the previous mapping of the destination architectural
	// register; it is freed when this µop commits (or via the PRDQ during
	// runahead).
	OldDstP PReg
}

// Checkpoint captures RAT state (and optionally the free lists) for
// runahead entry/exit.
type Checkpoint struct {
	rat     [uarch.RegLimit]PReg
	ratPC   [uarch.RegLimit]uint64
	intFree []PReg
	fpFree  []PReg
}

// pstate is one physical register's scoreboard entry: data availability,
// the runahead INV mark, and the runahead generation that allocated it
// (0 = normal mode; see the package comment).
type pstate struct {
	ready  bool
	poison bool
	gen    uint32
}

// Stats counts renaming activity for the energy model.
type Stats struct {
	Renamed     int64
	IntAllocs   int64
	FPAllocs    int64
	RenameStall int64 // rename attempts rejected for lack of registers
}

// Renamer is the rename stage state. Not safe for concurrent use.
type Renamer struct {
	cfg Config

	rat       [uarch.RegLimit]PReg
	ratPC     [uarch.RegLimit]uint64
	committed [uarch.RegLimit]PReg

	intFree []PReg
	fpFree  []PReg

	// pregs holds the per-physical-register scoreboard. One packed record
	// per preg keeps the rename/wake/poison probes — several per simulated
	// µop — on a single cache line instead of three parallel arrays.
	pregs  []pstate
	curGen uint32

	// inUseScratch is RestoreFull's per-call workspace (which pregs the
	// checkpoint RAT references), kept here so the per-episode exit path
	// does not allocate.
	inUseScratch []bool

	stats Stats
}

// New builds a renamer with architectural registers mapped to the first
// physical registers of each file and everything else free.
func New(cfg Config) *Renamer {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	total := 1 + cfg.IntPRF + cfg.FPPRF // preg 0 unused
	r := &Renamer{
		cfg:          cfg,
		pregs:        make([]pstate, total),
		inUseScratch: make([]bool, total),
	}
	// Int pregs: [1, IntPRF]; FP pregs: [IntPRF+1, IntPRF+FPPRF].
	next := PReg(1)
	for i := 0; i < uarch.NumIntRegs; i++ {
		a := uarch.IntReg(i)
		r.rat[a] = next
		r.committed[a] = next
		r.pregs[next].ready = true
		next++
	}
	for p := next; p <= PReg(cfg.IntPRF); p++ {
		r.intFree = append(r.intFree, p)
	}
	next = PReg(cfg.IntPRF + 1)
	for i := 0; i < uarch.NumFPRegs; i++ {
		a := uarch.FPReg(i)
		r.rat[a] = next
		r.committed[a] = next
		r.pregs[next].ready = true
		next++
	}
	for p := next; p <= PReg(cfg.IntPRF+cfg.FPPRF); p++ {
		r.fpFree = append(r.fpFree, p)
	}
	return r
}

// Stats returns a copy of the counters.
func (r *Renamer) Stats() Stats { return r.stats }

// ResetStats zeroes the counters.
func (r *Renamer) ResetStats() { r.stats = Stats{} }

// isIntPReg reports which file a physical register belongs to.
func (r *Renamer) isIntPReg(p PReg) bool { return p >= 1 && int(p) <= r.cfg.IntPRF }

// FreeCounts returns the number of free int and fp physical registers —
// the paper's Section 3.4 headroom measurement.
func (r *Renamer) FreeCounts() (intFree, fpFree int) {
	return len(r.intFree), len(r.fpFree)
}

// Lookup returns the current speculative mapping of an architectural
// register.
func (r *Renamer) Lookup(a uarch.Reg) PReg { return r.rat[a] }

// ProducerPC returns the PC recorded in the RAT extension for the last
// producer of a (Section 3.2), or 0 if none has been recorded.
func (r *Renamer) ProducerPC(a uarch.Reg) uint64 { return r.ratPC[a] }

// CanRename reports whether a µop writing to class-int / class-fp could
// allocate right now.
func (r *Renamer) CanRename(dst uarch.Reg) bool {
	switch {
	case dst == uarch.RegNone:
		return true
	case dst.IsInt():
		return len(r.intFree) > 0
	default:
		return len(r.fpFree) > 0
	}
}

// Rename maps u's sources and allocates a destination register.
// inRunahead tags the allocation with the current runahead generation.
// ok=false means the needed free list is empty; the stage must stall.
func (r *Renamer) Rename(u *uarch.Uop, inRunahead bool) (Out, bool) {
	var out Out
	if u.Src1 != uarch.RegNone {
		out.Src1P = r.rat[u.Src1]
	}
	if u.Src2 != uarch.RegNone {
		out.Src2P = r.rat[u.Src2]
	}
	if u.Dst != uarch.RegNone {
		var p PReg
		if u.Dst.IsInt() {
			if len(r.intFree) == 0 {
				r.stats.RenameStall++
				return Out{}, false
			}
			p = r.intFree[len(r.intFree)-1]
			r.intFree = r.intFree[:len(r.intFree)-1]
			r.stats.IntAllocs++
		} else {
			if len(r.fpFree) == 0 {
				r.stats.RenameStall++
				return Out{}, false
			}
			p = r.fpFree[len(r.fpFree)-1]
			r.fpFree = r.fpFree[:len(r.fpFree)-1]
			r.stats.FPAllocs++
		}
		out.OldDstP = r.rat[u.Dst]
		out.DstP = p
		r.rat[u.Dst] = p
		r.ratPC[u.Dst] = u.PC
		gen := uint32(0)
		if inRunahead {
			gen = r.curGen
		}
		r.pregs[p] = pstate{gen: gen}
	}
	r.stats.Renamed++
	return out, true
}

// Free returns p to its free list.
func (r *Renamer) Free(p PReg) {
	if p == PRegNone {
		return
	}
	if r.isIntPReg(p) {
		r.intFree = append(r.intFree, p)
	} else {
		r.fpFree = append(r.fpFree, p)
	}
}

// Commit retires a µop that wrote dstP to architectural register dst:
// the committed RAT advances and the previous committed mapping is freed.
func (r *Renamer) Commit(dst uarch.Reg, dstP PReg) {
	if dst == uarch.RegNone {
		return
	}
	old := r.committed[dst]
	r.committed[dst] = dstP
	r.Free(old)
}

// --- ready / poison state ---------------------------------------------

// MarkReady marks p's data available, waking IQ consumers.
func (r *Renamer) MarkReady(p PReg) {
	if p != PRegNone {
		r.pregs[p].ready = true
	}
}

// IsReady reports whether p's data is available (sources with PRegNone
// are trivially ready).
func (r *Renamer) IsReady(p PReg) bool { return p == PRegNone || r.pregs[p].ready }

// MarkPoisoned flags p as INV. makeReady additionally publishes the
// (invalid) data so dependents drain through the pipeline — traditional
// runahead semantics; PRE leaves the stalling load not-ready instead.
func (r *Renamer) MarkPoisoned(p PReg, makeReady bool) {
	if p == PRegNone {
		return
	}
	r.pregs[p].poison = true
	if makeReady {
		r.pregs[p].ready = true
	}
}

// IsPoisoned reports whether p holds INV data.
func (r *Renamer) IsPoisoned(p PReg) bool { return p != PRegNone && r.pregs[p].poison }

// ClearPoison removes the INV mark (stalling load's data arrived).
func (r *Renamer) ClearPoison(p PReg) {
	if p != PRegNone {
		r.pregs[p].poison = false
	}
}

// --- runahead generation ------------------------------------------------

// BeginRunahead opens a new runahead generation; subsequent Rename calls
// with inRunahead=true tag their allocations with it.
func (r *Renamer) BeginRunahead() { r.curGen++ }

// IsRunaheadAlloc reports whether p was allocated during the current
// runahead generation — the PRDQ may recycle only such registers.
func (r *Renamer) IsRunaheadAlloc(p PReg) bool {
	return p != PRegNone && r.pregs[p].gen == r.curGen && r.curGen != 0
}

// --- checkpoints --------------------------------------------------------

// CheckpointSpec snapshots the speculative RAT, its PC extension and the
// free lists — PRE's entry checkpoint (Section 3.1).
func (r *Renamer) CheckpointSpec() *Checkpoint {
	cp := &Checkpoint{}
	r.CheckpointSpecInto(cp)
	return cp
}

// CheckpointSpecInto writes the Section 3.1 entry checkpoint into cp,
// reusing its free-list buffers. PRE enters runahead on every long-latency
// stall, so this path must not allocate.
func (r *Renamer) CheckpointSpecInto(cp *Checkpoint) {
	cp.rat = r.rat
	cp.ratPC = r.ratPC
	cp.intFree = append(cp.intFree[:0], r.intFree...)
	cp.fpFree = append(cp.fpFree[:0], r.fpFree...)
}

// RestoreSpec restores a CheckpointSpec: the RAT and the free lists return
// exactly to their entry state; every runahead allocation is implicitly
// discarded. Poison marks on runahead-allocated registers are cleared
// lazily on their next allocation.
func (r *Renamer) RestoreSpec(cp *Checkpoint) {
	r.rat = cp.rat
	r.ratPC = cp.ratPC
	r.intFree = r.intFree[:0]
	r.intFree = append(r.intFree, cp.intFree...)
	r.fpFree = r.fpFree[:0]
	r.fpFree = append(r.fpFree, cp.fpFree...)
}

// CheckpointCommitted snapshots the committed RAT — traditional runahead's
// entry checkpoint (the architectural state at the stalling load).
func (r *Renamer) CheckpointCommitted() *Checkpoint {
	cp := &Checkpoint{}
	r.CheckpointCommittedInto(cp)
	return cp
}

// CheckpointCommittedInto writes the committed-RAT checkpoint into cp —
// the allocation-free variant used on every RA/RA-buffer entry.
func (r *Renamer) CheckpointCommittedInto(cp *Checkpoint) {
	cp.rat = r.committed
	cp.ratPC = r.ratPC
	cp.intFree = cp.intFree[:0]
	cp.fpFree = cp.fpFree[:0]
}

// RestoreFull rebuilds the whole rename state from a committed-state
// checkpoint: both RATs point at the checkpoint mappings, those registers
// are ready and unpoisoned, and every other physical register is free.
// Traditional runahead and the runahead buffer use this at exit, after the
// full pipeline flush discards every in-flight µop.
func (r *Renamer) RestoreFull(cp *Checkpoint) {
	r.rat = cp.rat
	r.ratPC = cp.ratPC
	r.committed = cp.rat
	inUse := r.inUseScratch
	for i := range inUse {
		inUse[i] = false
	}
	for a := uarch.Reg(0); a < uarch.RegLimit; a++ {
		if p := cp.rat[a]; p != PRegNone {
			inUse[p] = true
			r.pregs[p].ready = true
			r.pregs[p].poison = false
		}
	}
	r.intFree = r.intFree[:0]
	r.fpFree = r.fpFree[:0]
	for p := PReg(1); int(p) <= r.cfg.IntPRF+r.cfg.FPPRF; p++ {
		if !inUse[p] {
			r.Free(p)
		}
	}
}

// --- full-state snapshot (E6 ablation support) ---------------------------

// FullSnapshot captures the renamer's complete state, including the
// committed RAT, free lists and per-register ready/poison bits. The E6
// ablation ("runahead without discarding the window") uses it to restore
// the pipeline exactly as it was at runahead entry.
type FullSnapshot struct {
	rat       [uarch.RegLimit]PReg
	ratPC     [uarch.RegLimit]uint64
	committed [uarch.RegLimit]PReg
	intFree   []PReg
	fpFree    []PReg
	pregs     []pstate
}

// TakeFullSnapshot deep-copies the renamer state.
func (r *Renamer) TakeFullSnapshot() *FullSnapshot {
	s := &FullSnapshot{}
	r.TakeFullSnapshotInto(s)
	return s
}

// TakeFullSnapshotInto deep-copies the renamer state into s, reusing its
// buffers — the allocation-free variant for per-episode snapshots.
func (r *Renamer) TakeFullSnapshotInto(s *FullSnapshot) {
	s.rat = r.rat
	s.ratPC = r.ratPC
	s.committed = r.committed
	s.intFree = append(s.intFree[:0], r.intFree...)
	s.fpFree = append(s.fpFree[:0], r.fpFree...)
	s.pregs = append(s.pregs[:0], r.pregs...)
}

// RestoreFullSnapshot restores a TakeFullSnapshot copy.
func (r *Renamer) RestoreFullSnapshot(s *FullSnapshot) {
	r.rat = s.rat
	r.ratPC = s.ratPC
	r.committed = s.committed
	r.intFree = append(r.intFree[:0], s.intFree...)
	r.fpFree = append(r.fpFree[:0], s.fpFree...)
	copy(r.pregs, s.pregs)
}
