package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCounterBasics(t *testing.T) {
	c := NewCounter("x")
	if c.Value() != 0 || c.Name() != "x" {
		t.Fatal("fresh counter wrong")
	}
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("got %d, want 5", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatal("reset failed")
	}
}

func TestCounterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) must panic")
		}
	}()
	NewCounter("x").Add(-1)
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram("lat", 10, 20, 50)
	for _, v := range []int64{0, 5, 9, 10, 19, 20, 49, 50, 1000} {
		h.Observe(v)
	}
	want := []int64{3, 2, 2, 2} // [0,10) [10,20) [20,50) [50,inf)
	for i, w := range want {
		if h.Bucket(i) != w {
			t.Errorf("bucket %d = %d, want %d", i, h.Bucket(i), w)
		}
	}
	if h.Count() != 9 {
		t.Errorf("count = %d, want 9", h.Count())
	}
	if h.Min() != 0 || h.Max() != 1000 {
		t.Errorf("min/max = %d/%d", h.Min(), h.Max())
	}
}

func TestHistogramFractionBelow(t *testing.T) {
	h := NewHistogram("iv", 20, 100)
	for i := int64(0); i < 27; i++ {
		h.Observe(5) // below 20
	}
	for i := int64(0); i < 73; i++ {
		h.Observe(150) // above 100
	}
	if got := h.FractionBelow(20); math.Abs(got-0.27) > 1e-12 {
		t.Errorf("FractionBelow(20) = %v, want 0.27", got)
	}
	if got := h.FractionBelow(100); math.Abs(got-0.27) > 1e-12 {
		t.Errorf("FractionBelow(100) = %v, want 0.27", got)
	}
}

func TestHistogramMeanAndReset(t *testing.T) {
	h := NewHistogram("x", 10)
	h.Observe(4)
	h.Observe(6)
	if h.Mean() != 5 {
		t.Errorf("mean = %v, want 5", h.Mean())
	}
	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 {
		t.Error("reset did not clear histogram")
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram("x", 10)
	h.Observe(-5)
	if h.Bucket(0) != 1 || h.Min() != 0 {
		t.Error("negative samples must clamp to 0")
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("descending bounds must panic")
		}
	}()
	NewHistogram("bad", 10, 10)
}

func TestHistogramStringNonEmpty(t *testing.T) {
	h := NewHistogram("x", 10, 20)
	h.Observe(5)
	h.Observe(15)
	h.Observe(25)
	if h.String() == "" {
		t.Error("String must render")
	}
}

func TestHistogramPropertyCountConservation(t *testing.T) {
	f := func(samples []uint16) bool {
		h := NewHistogram("p", 16, 64, 256, 1024, 16384)
		var sum int64
		for _, s := range samples {
			h.Observe(int64(s))
			sum += int64(s)
		}
		var total int64
		for i := 0; i < h.NumBuckets(); i++ {
			total += h.Bucket(i)
		}
		return total == int64(len(samples)) && h.Sum() == sum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRunning(t *testing.T) {
	var r Running
	if r.Mean() != 0 {
		t.Error("empty running mean must be 0")
	}
	r.Observe(1)
	r.Observe(3)
	if r.Mean() != 2 || r.Count() != 2 {
		t.Errorf("mean=%v count=%d", r.Mean(), r.Count())
	}
	r.Reset()
	if r.Count() != 0 {
		t.Error("reset failed")
	}
}

func TestRatioAndPerKilo(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Error("Ratio with zero denominator must be 0")
	}
	if Ratio(6, 3) != 2 {
		t.Error("Ratio(6,3) != 2")
	}
	if PerKilo(5, 1000) != 5 {
		t.Errorf("PerKilo(5,1000) = %v", PerKilo(5, 1000))
	}
}

func TestGeoMean(t *testing.T) {
	if GeoMean(nil) != 0 {
		t.Error("empty GeoMean must be 0")
	}
	got := GeoMean([]float64{1, 4})
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean(1,4) = %v, want 2", got)
	}
}

func TestGeoMeanPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("GeoMean(0) must panic")
		}
	}()
	GeoMean([]float64{0})
}

func TestGeoMeanPositiveFiltersDegenerates(t *testing.T) {
	gm, dropped := GeoMeanPositive([]float64{1, 0, 4, math.NaN(), -2, math.Inf(1)})
	if dropped != 4 {
		t.Errorf("dropped %d degenerate values, want 4", dropped)
	}
	if math.Abs(gm-2) > 1e-12 {
		t.Errorf("GeoMeanPositive over {1,4} = %v, want 2", gm)
	}
	if gm, dropped := GeoMeanPositive([]float64{0, math.NaN()}); gm != 0 || dropped != 2 {
		t.Errorf("all-degenerate input: got (%v, %d), want (0, 2)", gm, dropped)
	}
	if gm, dropped := GeoMeanPositive(nil); gm != 0 || dropped != 0 {
		t.Errorf("empty input: got (%v, %d), want (0, 0)", gm, dropped)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty Mean must be 0")
	}
	if Mean([]float64{2, 4, 6}) != 4 {
		t.Error("Mean(2,4,6) != 4")
	}
}

func TestMedian(t *testing.T) {
	if Median(nil) != 0 {
		t.Error("empty Median must be 0")
	}
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("Median(3,1,2) = %v, want 2", got)
	}
	if got := Median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Errorf("Median(4,1,2,3) = %v, want 2.5", got)
	}
	// The input must not be reordered.
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Median mutated its input: %v", xs)
	}
}
