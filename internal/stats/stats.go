// Package stats provides the light-weight counters, histograms and derived
// metrics used by the simulator to record pipeline activity. The simulator
// is single-threaded per machine instance, so none of the types here are
// synchronized.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	name string
	n    int64
}

// NewCounter returns a named counter starting at zero.
func NewCounter(name string) *Counter { return &Counter{name: name} }

// Inc adds one to the counter.
func (c *Counter) Inc() { c.n++ }

// Add adds delta (which may not be negative) to the counter.
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic(fmt.Sprintf("stats: negative delta %d on counter %s", delta, c.name))
	}
	c.n += delta
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n }

// Name returns the counter's name.
func (c *Counter) Name() string { return c.name }

// Reset zeroes the counter. Used when a measurement window opens after
// warmup.
func (c *Counter) Reset() { c.n = 0 }

// Histogram is a fixed-bucket histogram of non-negative integer samples.
// Bucket i covers [bounds[i-1], bounds[i]) with bucket 0 covering
// [0, bounds[0]) and a final overflow bucket covering [bounds[last], inf).
type Histogram struct {
	name    string
	bounds  []int64
	buckets []int64
	count   int64
	sum     int64
	min     int64
	max     int64
}

// NewHistogram creates a histogram with the given ascending bucket bounds.
func NewHistogram(name string, bounds ...int64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("stats: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		name:    name,
		bounds:  append([]int64(nil), bounds...),
		buckets: make([]int64, len(bounds)+1),
		min:     math.MaxInt64,
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v < h.bounds[i] })
	h.buckets[i]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 { return h.count }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() int64 { return h.sum }

// Mean returns the sample mean, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Min returns the smallest sample, or 0 with no samples.
func (h *Histogram) Min() int64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest sample.
func (h *Histogram) Max() int64 { return h.max }

// FractionBelow returns the fraction of samples strictly below v, computed
// from bucket boundaries. v must be one of the construction bounds; this
// keeps the result exact rather than interpolated.
func (h *Histogram) FractionBelow(v int64) float64 {
	if h.count == 0 {
		return 0
	}
	var below int64
	for i, b := range h.bounds {
		if b > v {
			break
		}
		below += h.buckets[i]
		if b == v {
			return float64(below) / float64(h.count)
		}
	}
	// v was not an exact bound: fall back to counting full buckets below v.
	below = 0
	for i, b := range h.bounds {
		if b <= v {
			below += h.buckets[i]
		}
	}
	return float64(below) / float64(h.count)
}

// Bucket returns the count in bucket i (0 <= i <= len(bounds)).
func (h *Histogram) Bucket(i int) int64 { return h.buckets[i] }

// Bounds returns a copy of the construction bounds; bucket i covers
// [bounds[i-1], bounds[i]) and the final bucket [bounds[last], inf).
// Snapshot consumers (the telemetry registry) need them to label buckets.
func (h *Histogram) Bounds() []int64 {
	return append([]int64(nil), h.bounds...)
}

// NumBuckets returns the number of buckets including the overflow bucket.
func (h *Histogram) NumBuckets() int { return len(h.buckets) }

// Reset clears all samples.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i] = 0
	}
	h.count, h.sum, h.max = 0, 0, 0
	h.min = math.MaxInt64
}

// String renders the histogram compactly for debug output.
func (h *Histogram) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: n=%d mean=%.1f", h.name, h.count, h.Mean())
	lo := int64(0)
	for i, b := range h.bounds {
		if h.buckets[i] > 0 {
			fmt.Fprintf(&sb, " [%d,%d)=%d", lo, b, h.buckets[i])
		}
		lo = b
	}
	if h.buckets[len(h.bounds)] > 0 {
		fmt.Fprintf(&sb, " [%d,inf)=%d", lo, h.buckets[len(h.bounds)])
	}
	return sb.String()
}

// Running tracks a running mean without storing samples.
type Running struct {
	count int64
	sum   float64
}

// Observe adds one sample.
func (r *Running) Observe(v float64) {
	r.count++
	r.sum += v
}

// Mean returns the running mean, or 0 with no samples.
func (r *Running) Mean() float64 {
	if r.count == 0 {
		return 0
	}
	return r.sum / float64(r.count)
}

// Count returns the number of samples.
func (r *Running) Count() int64 { return r.count }

// Reset clears the accumulator.
func (r *Running) Reset() { r.count, r.sum = 0, 0 }

// Ratio returns a/b, or 0 when b is zero. It is the standard helper for
// rates like MPKI and IPC where an empty denominator means "no activity".
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// PerKilo returns events per thousand units, e.g. misses per kilo
// instruction (MPKI).
func PerKilo(events, units int64) float64 {
	return Ratio(float64(events)*1000, float64(units))
}

// GeoMean returns the geometric mean of xs; values must be positive.
// It returns 0 for an empty slice.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: GeoMean requires positive values, got %v", x))
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// GeoMeanPositive returns the geometric mean of the positive finite
// values in xs along with the number of values dropped (non-positive,
// NaN or infinite). Sweeps over sampled scenario populations use it
// where a degenerate seed — a baseline that commits essentially nothing
// in the measurement window — produces a 0 or NaN speedup that must not
// detonate the whole aggregate. Returns (0, len(xs)) when nothing
// survives the filter.
func GeoMeanPositive(xs []float64) (gm float64, dropped int) {
	var logSum float64
	kept := 0
	for _, x := range xs {
		if x <= 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			dropped++
			continue
		}
		logSum += math.Log(x)
		kept++
	}
	if kept == 0 {
		return 0, dropped
	}
	return math.Exp(logSum / float64(kept)), dropped
}

// Median returns the middle value of xs (the mean of the two middle
// values for even lengths), or 0 for an empty slice. xs is not modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	mid := len(ys) / 2
	if len(ys)%2 == 1 {
		return ys[mid]
	}
	return (ys[mid-1] + ys[mid]) / 2
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
