package presim_test

import (
	"testing"

	presim "repro"
)

func quick() presim.Options {
	opt := presim.DefaultOptions()
	opt.WarmupUops = 5_000
	opt.MeasureUops = 30_000
	return opt
}

func TestFacadeRun(t *testing.T) {
	w, err := presim.WorkloadByName("libquantum")
	if err != nil {
		t.Fatal(err)
	}
	base, err := presim.Run(w, presim.ModeOoO, quick())
	if err != nil {
		t.Fatal(err)
	}
	pre, err := presim.Run(w, presim.ModePRE, quick())
	if err != nil {
		t.Fatal(err)
	}
	if pre.Speedup(base) <= 1.0 {
		t.Errorf("PRE speedup %.3f on libquantum must exceed 1", pre.Speedup(base))
	}
}

func TestFacadeModesAndNames(t *testing.T) {
	if len(presim.Modes()) != 5 {
		t.Error("expected 5 modes")
	}
	if len(presim.WorkloadNames()) != 13 {
		t.Error("expected 13 workloads")
	}
	m, err := presim.ParseMode("PRE")
	if err != nil || m != presim.ModePRE {
		t.Error("ParseMode failed")
	}
}

func TestFacadeCustomWorkload(t *testing.T) {
	w := presim.CustomWorkload("mychase", func() presim.Generator {
		return presim.NewPtrChase(presim.PtrChaseParams{
			KernelID: 77, Chains: 2, FootprintLines: 1 << 14,
			ALUWork: 8, HotLoads: 2,
		})
	})
	r, err := presim.Run(w, presim.ModePRE, quick())
	if err != nil {
		t.Fatal(err)
	}
	if r.Workload != "mychase" || r.Committed < 30_000 {
		t.Errorf("custom workload run incomplete: %+v", r.Committed)
	}
}

func TestFacadeTables(t *testing.T) {
	ws := []presim.Workload{}
	for _, n := range []string{"libquantum", "milc"} {
		w, _ := presim.WorkloadByName(n)
		ws = append(ws, w)
	}
	modes := presim.Modes()
	res, err := presim.RunMatrix(ws, modes, quick())
	if err != nil {
		t.Fatal(err)
	}
	if presim.Fig2Table(res, modes) == nil || presim.Fig3Table(res, modes) == nil {
		t.Fatal("tables must render")
	}
	sp := presim.AverageSpeedups(res, modes)
	if sp[0] != 1.0 {
		t.Errorf("baseline speedup %v", sp[0])
	}
	if len(presim.AverageEnergySavings(res, modes)) != len(modes) {
		t.Error("savings length mismatch")
	}
}
