// Package presim is a cycle-level reproduction of "Precise Runahead
// Execution" (Naithani, Feliu, Adileh, Eeckhout — IEEE CAL 2019 /
// HPCA 2020) as a reusable Go library.
//
// It provides:
//
//   - a cycle-stepped out-of-order core model with the paper's Table 1
//     configuration (192-entry ROB, 92-entry IQ, Haswell-style register
//     files, gshare front-end, three-level cache hierarchy, DDR3-1600
//     bank/row timing);
//   - four runahead mechanisms on top of that core: traditional runahead
//     (RA), the runahead buffer (RA-buffer), precise runahead execution
//     (PRE) with its Stalling Slice Table and Precise Register
//     Deallocation Queue, and PRE with the Extended Micro-op Queue
//     (PRE+EMQ);
//   - a synthetic proxy for the paper's memory-intensive SPEC CPU2006
//     workloads, plus archetype constructors for building custom
//     workloads;
//   - an activity-based energy model (the McPAT/CACTI stand-in); and
//   - a harness that regenerates the paper's figures and in-text
//     measurements.
//
// Quick start:
//
//	w, _ := presim.WorkloadByName("libquantum")
//	base, _ := presim.Run(w, presim.ModeOoO, presim.DefaultOptions())
//	pre, _ := presim.Run(w, presim.ModePRE, presim.DefaultOptions())
//	fmt.Printf("PRE speedup: %.2fx\n", pre.Speedup(base))
package presim

import (
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/prefetch"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workload"
	"repro/internal/workload/synth"
)

// Mode selects the runahead mechanism.
type Mode = core.Mode

// The evaluated mechanisms (paper Section 5).
const (
	// ModeOoO is the out-of-order baseline.
	ModeOoO = core.ModeOoO
	// ModeRA is traditional runahead execution.
	ModeRA = core.ModeRA
	// ModeRABuffer is filtered runahead with a runahead buffer.
	ModeRABuffer = core.ModeRABuffer
	// ModePRE is precise runahead execution.
	ModePRE = core.ModePRE
	// ModePREEMQ is PRE with the extended micro-op queue.
	ModePREEMQ = core.ModePREEMQ
)

// Modes lists all mechanisms in evaluation order.
func Modes() []Mode { return core.Modes() }

// ParseMode resolves a mechanism name ("OoO", "RA", "RA-buffer", "PRE",
// "PRE+EMQ").
func ParseMode(s string) (Mode, error) { return core.ParseMode(s) }

// Config is the full core configuration (see core.Config for every knob).
type Config = core.Config

// DefaultConfig returns the paper's Table 1 configuration for a mode.
func DefaultConfig(mode Mode) Config { return core.Default(mode) }

// Options controls warmup/measurement windows and configuration hooks.
type Options = sim.Options

// DefaultOptions returns the standard harness window.
func DefaultOptions() Options { return sim.DefaultOptions() }

// Fidelity selects the simulation fidelity tier (Options.Fidelity).
type Fidelity = core.Fidelity

const (
	// FidelityExact is the default tier: every runahead episode executes
	// µop by µop. All paper-figure and golden results use this tier.
	FidelityExact = core.FidelityExact
	// FidelityFastRunahead emulates chain-cache-hit runahead episodes
	// coarsely (predicted prefetch set injected in one step, episode
	// fast-forwarded) for large design-space sweeps. Accuracy bounds are
	// pinned by the fidelity differential harness.
	FidelityFastRunahead = core.FidelityFastRunahead
)

// ParseFidelity resolves a tier name ("exact", "fast-runahead").
func ParseFidelity(s string) (Fidelity, error) { return core.ParseFidelity(s) }

// Result is the flattened outcome of one simulation run.
type Result = sim.Result

// Workload names a benchmark proxy and builds fresh generators for it.
type Workload = workload.Workload

// Workloads returns the 13 memory-intensive SPEC CPU2006 proxies.
func Workloads() []Workload { return workload.Suite() }

// WorkloadByName looks up a suite workload ("mcf", "libquantum", ...).
func WorkloadByName(name string) (Workload, error) { return workload.ByName(name) }

// WorkloadNames lists the suite in report order.
func WorkloadNames() []string { return workload.Names() }

// Generator produces a deterministic µop stream (for custom workloads).
type Generator = trace.Generator

// Archetype parameters for building custom workloads with the same
// machinery as the suite proxies.
type (
	// StreamParams configures strided streaming walks.
	StreamParams = workload.StreamParams
	// PtrChaseParams configures dependent pointer chains.
	PtrChaseParams = workload.PtrChaseParams
	// IndirectParams configures A[col[i]] indirection.
	IndirectParams = workload.IndirectParams
	// StencilParams configures multi-plane stencils.
	StencilParams = workload.StencilParams
	// HashWalkParams configures hash/graph walks with dependent loads.
	HashWalkParams = workload.HashWalkParams
)

// Archetype constructors.
var (
	// NewStream builds a streaming generator.
	NewStream = workload.NewStream
	// NewPtrChase builds a pointer-chasing generator.
	NewPtrChase = workload.NewPtrChase
	// NewIndirect builds an indirection generator.
	NewIndirect = workload.NewIndirect
	// NewStencil builds a stencil generator.
	NewStencil = workload.NewStencil
	// NewHashWalk builds a hash-walk generator.
	NewHashWalk = workload.NewHashWalk
)

// CustomWorkload wraps a generator constructor as a runnable workload.
func CustomWorkload(name string, newGen func() Generator) Workload {
	return Workload{Name: name, Class: "custom", Chains: 1, New: newGen}
}

// Run simulates one workload under one mechanism.
func Run(w Workload, mode Mode, opt Options) (Result, error) {
	return sim.Run(w, mode, opt)
}

// RunMatrix simulates every (workload, mode) pair in parallel, returning
// results indexed [workload][mode].
func RunMatrix(ws []Workload, modes []Mode, opt Options) ([][]Result, error) {
	return sim.RunMatrix(ws, modes, opt)
}

// Observability (internal/telemetry): point Options.Trace at a
// TraceRecorder and the run records a cycle-level event timeline of its
// measured window — runahead episode spans, full-window stall spans,
// cycle-skip jumps, prefetch trains, throttle decisions — plus a named
// metrics snapshot, serialized as Chrome trace_event JSON that Perfetto
// (https://ui.perfetto.dev) opens directly. Tracing is sidecar-only: the
// Result and every byte of results JSON are identical with it on or off.
type (
	// TraceRecorder captures one run's event timeline and metrics.
	TraceRecorder = telemetry.Recorder
	// MetricsRegistry is the named-metric snapshot a traced run publishes
	// (counters, gauges and histograms under hierarchical names like
	// "core/runahead/entries" or "pf/l1d/accuracy").
	MetricsRegistry = telemetry.Registry
)

// NewTraceRecorder builds a recorder whose trace is labeled name
// (conventionally "workload/mode"). Write the sidecar with its WriteFile
// after the run.
func NewTraceRecorder(name string) *TraceRecorder { return telemetry.NewRecorder(name) }

// Hardware prefetching (internal/prefetch): pluggable prefetch engines
// beside the L1D and L2. Any runahead mode composes with any prefetcher
// variant, which is how the PF-augmented simulation configurations
// (OoO+PF, PRE+PF, ...) are expressed.
type (
	// PrefetchConfig configures one hardware prefetcher instance.
	PrefetchConfig = prefetch.Config
	// PrefetchVariant is a named (L1D, L2) prefetcher pairing — one point
	// of the PF grid.
	PrefetchVariant = prefetch.Variant
)

// PrefetchVariants lists the standard PF grid points: the open-loop
// no-pf / stride (L1D) / best-offset (L2) / stride+bo quartet plus the
// adaptive points — l1i-nl (L1I fetch-stream next-line), throttled
// (accuracy-driven degree control), filtered (the PRE-aware duplicate
// filter) and adaptive (all three combined).
func PrefetchVariants() []PrefetchVariant { return prefetch.Variants() }

// PrefetchVariantByName looks up a standard PF grid point.
func PrefetchVariantByName(name string) (PrefetchVariant, error) {
	return prefetch.VariantByName(name)
}

// PrefetchPoints expresses the standard PF variants as experiment points,
// ready to drop into an Experiment: {OoO, PRE, ...} x PrefetchPoints() is
// the PRE-vs-prefetch-vs-combined grid.
func PrefetchPoints() []ExperimentPoint {
	vs := prefetch.Variants()
	pts := make([]ExperimentPoint, len(vs))
	for i, v := range vs {
		v := v
		pts[i] = ExperimentPoint{Name: v.Name, Apply: func(c *core.Config) { c.ApplyPrefetch(v) }}
	}
	return pts
}

// Stochastic scenario engine (internal/workload/synth): seed-driven
// workload populations sampled from a parameterized distribution, the
// scale-out complement to the fixed 13-proxy suite.
type (
	// SynthSpace describes a scenario distribution (archetype mix,
	// footprint, MLP, phase structure).
	SynthSpace = synth.Space
	// SynthRange is an inclusive integer sampling interval.
	SynthRange = synth.Range
	// SynthWeights is the archetype mix of a SynthSpace.
	SynthWeights = synth.Weights
	// SynthParams is the fully-sampled description of one scenario, as
	// recorded per run in population results JSON.
	SynthParams = synth.Params
	// SynthScenario is a materialized sample (params + generator).
	SynthScenario = synth.Scenario
)

// SynthDefaultBaseSeed is the date-pinned base seed population sweeps and
// the CI scenario-fuzz gate default to.
const SynthDefaultBaseSeed = synth.DefaultBaseSeed

// DefaultSynthSpace returns the standard scenario distribution.
func DefaultSynthSpace() SynthSpace { return synth.DefaultSpace() }

// FrontEndSynthSpace returns the front-end-bound scenario distribution:
// codewalk-heavy populations whose instruction footprints thrash the L1I
// — the population the L1I fetch-stream prefetcher targets.
func FrontEndSynthSpace() SynthSpace { return synth.FrontEndSpace() }

// SynthFromParams rebuilds a scenario from recorded parameters — the
// reproduce-a-failing-CI-seed path; see Cell.Synth in the results JSON.
func SynthFromParams(p SynthParams) (SynthScenario, error) { return synth.FromParams(p) }

// SynthNthSeed derives the i-th scenario seed of a population.
func SynthNthSeed(base uint64, i int) uint64 { return synth.NthSeed(base, i) }

// Population declares a sampled workload axis for an Experiment: Count
// scenarios drawn from Space (seeded by BaseSeed, default date-pinned).
type Population = exp.Population

// PopulationStat summarizes one mode's per-seed speedup distribution.
type PopulationStat = exp.PopulationStat

// PopulationGridTable renders per-point population-robustness stats (from
// an ExperimentSet's PopulationStats) as the min/median/geomean grid with
// worst-case-seed identification.
func PopulationGridTable(points []string, stats [][]PopulationStat) *Table {
	rows := make([][]report.PopulationRow, len(stats))
	for pi, ss := range stats {
		for _, st := range ss {
			rows[pi] = append(rows[pi], report.PopulationRow{
				Mode: st.Mode.String(), Count: st.Count,
				Min: st.Min, Median: st.Median, GeoMean: st.GeoMean,
				WorstSeed: st.WorstSeed,
			})
		}
	}
	return report.PopulationGrid(points, rows)
}

// Experiment declares a (points x workloads x modes) design-space sweep
// for the parallel orchestrator: unique configurations are deduplicated
// (shared OoO baselines run once), sharded across the host's cores, and
// serialized deterministically — byte-identical results JSON at any
// worker count.
type Experiment = exp.Matrix

// ExperimentPoint is one named configuration override of an Experiment.
type ExperimentPoint = exp.Point

// ExperimentPlan is an expanded, deduplicated Experiment ready to run.
type ExperimentPlan = exp.Plan

// ExperimentSet holds a completed Experiment's results and aggregations.
type ExperimentSet = exp.Set

// ResultsSchemaVersion identifies the experiment results JSON layout.
const ResultsSchemaVersion = exp.SchemaVersion

// Table is an aligned text/CSV table.
type Table = report.Table

// Fig2Table renders Figure 2 (performance normalized to OoO).
func Fig2Table(results [][]Result, modes []Mode) *Table { return report.Fig2(results, modes) }

// Fig3Table renders Figure 3 (energy savings relative to OoO).
func Fig3Table(results [][]Result, modes []Mode) *Table { return report.Fig3(results, modes) }

// RunaheadDetailTable renders the per-mechanism diagnostics table.
func RunaheadDetailTable(results [][]Result, modes []Mode) *Table {
	return report.RunaheadDetail(results, modes)
}

// PFGridTable renders the PRE-vs-prefetch-vs-combined grid: per-variant,
// per-mode geomean speedups (from an ExperimentSet's Points and
// GeoMeanSpeedups).
func PFGridTable(points []string, modes []Mode, summary [][]float64) *Table {
	return report.PFGrid(points, modes, summary)
}

// PrefetchDetailTable renders the per-workload hardware-prefetcher
// diagnostics (issue counts, accuracy, coverage, timeliness).
func PrefetchDetailTable(results [][]Result, modes []Mode) *Table {
	return report.PrefetchDetail(results, modes)
}

// PFInterferenceTable renders the runahead-vs-hardware-prefetch
// interference diagnostics: per workload and mechanism, the HW engines'
// issued/redundant/filtered-RA/dropped/overflowed counts beside the
// runahead prefetch count. filtered-RA is the interference term the
// PRE-aware filter measures directly.
func PFInterferenceTable(results [][]Result, modes []Mode) *Table {
	return report.PFInterference(results, modes)
}

// AverageSpeedups returns per-mode geometric-mean speedups over OoO.
func AverageSpeedups(results [][]Result, modes []Mode) []float64 {
	return report.AverageSpeedups(results, modes)
}

// AverageEnergySavings returns per-mode mean energy savings over OoO.
func AverageEnergySavings(results [][]Result, modes []Mode) []float64 {
	return report.AverageEnergySavings(results, modes)
}
