// Command presim runs one benchmark under one (or every) runahead
// mechanism and prints the detailed statistics for that run.
//
// Usage:
//
//	presim -bench mcf -mode PRE
//	presim -bench libquantum -mode OoO -pf stride
//	presim -bench libquantum -all
//	presim -list
package main

import (
	"flag"
	"fmt"
	"os"

	presim "repro"
	"repro/internal/core"
)

func main() {
	bench := flag.String("bench", "mcf", "benchmark name (see -list)")
	mode := flag.String("mode", "PRE", "mechanism: OoO, RA, RA-buffer, PRE, PRE+EMQ")
	pf := flag.String("pf", "no-pf", "hardware prefetchers: no-pf, stride, best-offset, stride+bo, l1i-nl, throttled, filtered, adaptive")
	all := flag.Bool("all", false, "run every mechanism and compare")
	list := flag.Bool("list", false, "list available benchmarks and exit")
	fidelity := flag.String("fidelity", "exact", "simulation fidelity tier: exact, fast-runahead")
	warmup := flag.Int64("warmup", 50_000, "warmup µops")
	measure := flag.Int64("n", 300_000, "measured µops")
	tracefile := flag.String("tracefile", "", "write a Chrome-trace (Perfetto) sidecar of the measured window to this file")
	flag.Parse()

	if *all && *tracefile != "" {
		fmt.Fprintln(os.Stderr, "presim: -tracefile records a single run; drop -all or pick one -mode")
		os.Exit(2)
	}

	if *list {
		for _, w := range presim.Workloads() {
			fmt.Printf("%-12s %-9s chains=%d\n", w.Name, w.Class, w.Chains)
		}
		return
	}

	w, err := presim.WorkloadByName(*bench)
	if err != nil {
		fatal(err)
	}
	variant, err := presim.PrefetchVariantByName(*pf)
	if err != nil {
		fatal(err)
	}
	fid, err := presim.ParseFidelity(*fidelity)
	if err != nil {
		fmt.Fprintln(os.Stderr, "presim:", err)
		os.Exit(2)
	}
	opt := presim.DefaultOptions()
	opt.WarmupUops = *warmup
	opt.MeasureUops = *measure
	opt.Fidelity = fid
	opt.Configure = func(c *core.Config) { c.ApplyPrefetch(variant) }

	if *all {
		modes := presim.Modes()
		results, err := presim.RunMatrix([]presim.Workload{w}, modes, opt)
		if err != nil {
			fatal(err)
		}
		base := results[0][0]
		fmt.Printf("%s (%s, %d µops measured)\n\n", w.Name, w.Class, *measure)
		fmt.Printf("%-10s %8s %9s %9s %10s %8s\n", "mode", "IPC", "speedup", "entries", "interval", "energy")
		for mi, m := range modes {
			r := results[0][mi]
			fmt.Printf("%-10s %8.3f %8.2fx %9d %10.0f %+7.1f%%\n",
				m, r.IPC, r.Speedup(base), r.Entries, r.IntervalMean,
				100*r.Energy.SavingsVs(base.Energy))
		}
		return
	}

	m, err := presim.ParseMode(*mode)
	if err != nil {
		fatal(err)
	}
	var rec *presim.TraceRecorder
	if *tracefile != "" {
		rec = presim.NewTraceRecorder(fmt.Sprintf("%s/%s", w.Name, m))
		opt.Trace = rec
	}
	r, err := presim.Run(w, m, opt)
	if err != nil {
		fatal(err)
	}
	if rec != nil {
		if err := rec.WriteFile(*tracefile); err != nil {
			fatal(err)
		}
		fmt.Printf("trace           %s (%d events, %d runahead episodes)\n",
			*tracefile, len(rec.Events()), rec.Episodes())
	}
	fmt.Printf("benchmark       %s (%s)\n", r.Workload, w.Class)
	fmt.Printf("mechanism       %s\n", r.Mode)
	if r.Fidelity != "" {
		fmt.Printf("fidelity        %s (%d emulated episodes, %d emulated prefetches, cache %d hit / %d miss, overlap %.2f)\n",
			r.Fidelity, r.EmulatedEpisodes, r.EmulatedPrefetches, r.ChainCacheHits, r.ChainCacheMisses, r.ChainOverlapMean)
	}
	if variant.L1D.Enabled() || variant.L2.Enabled() {
		fmt.Printf("prefetchers     %s\n", variant.Name)
	}
	fmt.Printf("cycles          %d\n", r.Cycles)
	fmt.Printf("committed       %d\n", r.Committed)
	fmt.Printf("IPC             %.3f\n", r.IPC)
	fmt.Printf("LLC MPKI        %.1f\n", r.L3MPKI)
	hitPct := func(hits, misses int64) float64 {
		if hits+misses == 0 {
			return 0
		}
		return 100 * float64(hits) / float64(hits+misses)
	}
	fmt.Printf("L1D             %d hits / %d misses (%.1f%%)\n", r.L1DHits, r.L1DMisses, hitPct(r.L1DHits, r.L1DMisses))
	fmt.Printf("L2              %d hits / %d misses (%.1f%%)\n", r.L2Hits, r.L2Misses, hitPct(r.L2Hits, r.L2Misses))
	fmt.Printf("L3              %d hits / %d misses (%.1f%%)\n", r.L3Hits, r.L3Misses, hitPct(r.L3Hits, r.L3Misses))
	fmt.Printf("DRAM reads      %d  writes %d\n", r.DRAMReads, r.DRAMWrites)
	if r.HWPrefIssued > 0 || r.HWPrefDropped > 0 || r.HWPrefRedundant > 0 {
		fmt.Printf("hw prefetch     %d issued, %d dropped, %d redundant, %d fills, %d useful\n",
			r.HWPrefIssued, r.HWPrefDropped, r.HWPrefRedundant, r.HWPrefFills, r.HWPrefUseful)
		fmt.Printf("hw pf quality   accuracy %.0f%%, coverage %.0f%%, timeliness %.0f%%\n",
			100*r.HWPFAccuracy, 100*r.HWPFCoverage, 100*r.HWPFTimeliness)
	}
	fmt.Printf("branch mispred  %d\n", r.BranchMispredicts)
	fmt.Printf("window stalls   %d cycles\n", r.FullWindowStall)
	if r.Mode != presim.ModeOoO {
		fmt.Printf("runahead        %d entries (%d skipped), %d cycles\n",
			r.Entries, r.EntriesSkipped, r.RunaheadCycles)
		fmt.Printf("interval mean   %.0f cycles (%.0f%% under 20)\n",
			r.IntervalMean, 100*r.IntervalFracBelow20)
		fmt.Printf("prefetches      %d issued, %d fills, %d useful\n",
			r.Prefetches, r.PrefetchFills, r.PrefetchUseful)
		if r.RefillPenaltyCount > 0 {
			fmt.Printf("refill penalty  %.0f cycles mean over %d exits\n",
				r.RefillPenaltyMean, r.RefillPenaltyCount)
		}
		fmt.Printf("free at entry   IQ %.0f%%, int regs %.0f%%, fp regs %.0f%%\n",
			100*r.FreeIQFrac, 100*r.FreeIntFrac, 100*r.FreeFPFrac)
	}
	fmt.Printf("energy          %.3g J (core dyn %.3g, core static %.3g, mem dyn %.3g, DRAM static %.3g)\n",
		r.Energy.Total(), r.Energy.CoreDynamic, r.Energy.CoreStatic,
		r.Energy.MemDynamic, r.Energy.DRAMStatic)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "presim:", err)
	os.Exit(1)
}
