// Command sweep runs the design-space ablations called out in DESIGN.md:
//
//	sweep -sst           # A1: SST size sweep (paper: 256 entries suffice)
//	sweep -emq           # A2: EMQ size sweep (paper picks 768 = 4x ROB)
//	sweep -rathreshold   # A3: RA short-interval filter threshold
//	sweep -mshr          # extra: memory-level-parallelism budget
//	sweep -pf            # PF grid: every mechanism x every prefetcher variant
//	sweep -synth         # population sweep: -seeds sampled scenarios
//
// Each sweep reports the geometric-mean speedup over the OoO baseline
// across the whole suite for each parameter value. The -pf grid is the
// PRE-vs-prefetch-vs-combined comparison: {OoO, RA, RA-buffer, PRE,
// PRE+EMQ} x the eight standard prefetcher variants (no-pf, stride,
// best-offset, stride+bo, l1i-nl, throttled, filtered, adaptive) over
// the 13-workload suite, with per-run prefetch accuracy/coverage/
// timeliness in the results JSON.
//
// The -synth sweep replaces the fixed suite with a seeded scenario
// population (internal/workload/synth): -seeds scenarios sampled from the
// default space (base seed -synthseed, default date-pinned), every
// mechanism per scenario, reported as per-seed speedup distributions
// (min/median/geomean + worst seed). The results JSON records each
// scenario's sampled parameters, so any seed is reproducible from the
// artifact alone.
//
// The command is a thin frontend over the parallel experiment
// orchestrator (internal/exp): each sweep becomes one exp.Matrix whose
// points are the parameter values, the orchestrator dedupes the shared
// OoO baselines and shards the unique runs across -workers cores, and
// -json captures the full schema-versioned results document. -serial
// keeps the original one-run-at-a-time loop for apples-to-apples
// verification; both paths print identical numbers.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	presim "repro"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/stats"
)

func main() {
	doSST := flag.Bool("sst", false, "sweep SST size (PRE)")
	doEMQ := flag.Bool("emq", false, "sweep EMQ size (PRE+EMQ)")
	doRAT := flag.Bool("rathreshold", false, "sweep RA short-interval filter")
	doMSHR := flag.Bool("mshr", false, "sweep L1D MSHR count (PRE)")
	doPF := flag.Bool("pf", false, "run the mechanism x hardware-prefetcher grid")
	doSynth := flag.Bool("synth", false, "run a seeded scenario-population sweep")
	seeds := flag.Int("seeds", 20, "population size for -synth")
	synthSeed := flag.Uint64("synthseed", 0, "population base seed for -synth (0 = date-pinned default)")
	fidelity := flag.String("fidelity", "exact", "simulation fidelity tier: exact, fast-runahead")
	warmup := flag.Int64("warmup", 50_000, "warmup µops per run")
	measure := flag.Int64("n", 200_000, "measured µops per run")
	workers := flag.Int("workers", 0, "worker pool width (0 = one per CPU)")
	serial := flag.Bool("serial", false, "run the legacy serial loop instead of the orchestrator")
	jsonDir := flag.String("json", "", "directory to write schema-versioned results JSON into")
	timing := flag.Bool("time", false, "report wall-clock time per sweep")
	progress := flag.Bool("progress", false, "print live per-run progress to stderr as the sweep advances")
	server := flag.String("server", "", "submit the sweep to a running simulation server (cmd/simd URL) instead of simulating locally; the server's result cache makes repeated sweeps cheap. Remote sweeps report cache/timing stats and write the results JSON via -json; summary tables are a local-run feature")
	tracefile := flag.String("tracefile", "", "write a merged Chrome-trace (Perfetto) sidecar of the sweep's runs to this file; requires exactly one sweep selection")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the sweep to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile at sweep end to this file")
	flag.Parse()

	if *serial && (*jsonDir != "" || *workers != 0 || *progress || *tracefile != "" || *server != "") {
		fmt.Fprintln(os.Stderr, "sweep: -serial is the plain verification loop; it supports none of -json, -workers, -progress, -tracefile, -server")
		os.Exit(2)
	}
	if *server != "" && (*tracefile != "" || *workers != 0) {
		fmt.Fprintln(os.Stderr, "sweep: -server runs on the remote machine; -tracefile and -workers are local-run flags")
		os.Exit(2)
	}

	// -tracefile writes one sidecar file per invocation; two selected
	// sweeps would silently overwrite each other's trace, so fail fast.
	if *tracefile != "" {
		nSweeps := 0
		for _, b := range []bool{*doSST, *doEMQ, *doRAT, *doMSHR, *doPF, *doSynth} {
			if b {
				nSweeps++
			}
		}
		if nSweeps != 1 {
			fmt.Fprintln(os.Stderr, "sweep: -tracefile records exactly one sweep; select exactly one of -sst, -emq, -rathreshold, -mshr, -pf, -synth")
			os.Exit(2)
		}
	}

	// A zero or negative window is always an invocation mistake: -n 0
	// would make every run fail deep inside the orchestrator with a
	// confusing per-cell error, and -warmup 0 would report cold-start
	// numbers (empty caches, untrained predictor) as if they were steady
	// state.
	if *measure <= 0 {
		fmt.Fprintf(os.Stderr, "sweep: -n must be positive (got %d)\n", *measure)
		os.Exit(2)
	}
	if *warmup <= 0 {
		fmt.Fprintf(os.Stderr, "sweep: -warmup must be positive (got %d)\n", *warmup)
		os.Exit(2)
	}

	// An unknown tier must die here, not as a confusing per-cell Validate
	// error deep inside the orchestrator.
	fid, err := presim.ParseFidelity(*fidelity)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(2)
	}

	// Population knobs only act under -synth; silently ignoring an
	// explicit -seeds/-synthseed would drop the requested population run.
	if !*doSynth {
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "seeds" || f.Name == "synthseed" {
				fmt.Fprintf(os.Stderr, "sweep: -%s only applies to -synth (add -synth or drop the flag)\n", f.Name)
				os.Exit(2)
			}
		})
	}

	// Profiling hooks (after flag validation, so a usage exit never
	// leaves a truncated profile behind): hot-path regressions in the
	// simulator should be diagnosable from a real sweep without editing
	// code —
	//   sweep -sst -cpuprofile cpu.out && go tool pprof cpu.out
	// A mid-run fatal() stops the CPU profile before exiting; the heap
	// profile is written only on a successful run.
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC() // materialize the steady-state live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	opt := presim.DefaultOptions()
	opt.WarmupUops = *warmup
	opt.MeasureUops = *measure
	opt.Fidelity = fid

	s := sweeper{opt: opt, workers: *workers, serial: *serial, jsonDir: *jsonDir,
		timing: *timing, progress: *progress, tracefile: *tracefile,
		server: *server, fidelity: *fidelity}

	any := false
	if *doSST {
		any = true
		s.sweep("a1_sst", "A1: SST entries (PRE speedup over OoO)", presim.ModePRE,
			[]int{16, 32, 64, 128, 256, 512, 1024}, "sst_size",
			func(c *core.Config, v int) { c.SSTSize = v })
	}
	if *doEMQ {
		any = true
		s.sweep("a2_emq", "A2: EMQ entries (PRE+EMQ speedup over OoO)", presim.ModePREEMQ,
			[]int{192, 384, 768, 1152, 1536}, "emq_size",
			func(c *core.Config, v int) { c.EMQSize = v })
	}
	if *doRAT {
		any = true
		s.sweep("a3_rathreshold", "A3: RA minimum-interval filter, cycles (RA speedup over OoO)", presim.ModeRA,
			[]int{0, 20, 40, 64, 100, 150}, "min_runahead_cycles",
			func(c *core.Config, v int) { c.MinRunaheadCycles = int64(v) })
	}
	if *doMSHR {
		any = true
		s.sweep("mshr", "MSHR budget: L1D outstanding misses (PRE speedup over OoO)", presim.ModePRE,
			[]int{8, 16, 32, 64}, "l1d_mshrs",
			func(c *core.Config, v int) { c.Mem.L1D.MSHRs = v })
	}
	if *doPF {
		any = true
		if *serial {
			fmt.Fprintln(os.Stderr, "sweep: -pf is orchestrator-only; drop -serial")
			os.Exit(2)
		}
		s.sweepPF()
	}
	if *doSynth {
		any = true
		if *serial {
			fmt.Fprintln(os.Stderr, "sweep: -synth is orchestrator-only; drop -serial")
			os.Exit(2)
		}
		s.sweepSynth(*seeds, *synthSeed)
	}
	if !any {
		fmt.Fprintln(os.Stderr, "sweep: pass at least one of -sst, -emq, -rathreshold, -mshr, -pf, -synth")
		os.Exit(2)
	}
}

type sweeper struct {
	opt       presim.Options
	workers   int
	serial    bool
	jsonDir   string
	timing    bool
	progress  bool
	tracefile string
	server    string // simulation-server URL; "" = run locally
	fidelity  string // the -fidelity flag verbatim, for remote job specs
}

// runOpts assembles the orchestrator options: the pool width, per-run
// trace recording when -tracefile was given, and the live -progress meter
// on stderr (stderr so it never pollutes the parseable stdout tables).
func (s sweeper) runOpts() exp.RunOptions {
	o := exp.RunOptions{Workers: s.workers, Trace: s.tracefile != ""}
	if s.progress {
		o.Progress = func(ev exp.ProgressEvent) {
			fmt.Fprintf(os.Stderr, "sweep: %d/%d done  %s/%s  %.2fs (elapsed %.1fs)\n",
				ev.Done, ev.Total, ev.Workload, ev.Mode, ev.Seconds, ev.ElapsedSeconds)
		}
	}
	return o
}

// writeTrace writes the merged trace sidecar when -tracefile was given.
func (s sweeper) writeTrace(set *exp.Set) {
	if s.tracefile == "" {
		return
	}
	if err := set.WriteTrace(s.tracefile); err != nil {
		fatal(err)
	}
	fmt.Printf("  (trace sidecar written to %s)\n", s.tracefile)
}

// sweep runs the full suite at each parameter value and prints the
// geometric-mean speedup over the (shared, deduplicated) OoO baseline.
// knob is the parameter's wire name (serve.KnobNames), used when the
// sweep is submitted to a remote server instead of run here.
//
//sim:wallclock -timing progress display only; the JSON artifact carries its own audited meta
func (s sweeper) sweep(name, title string, mode presim.Mode, values []int,
	knob string, apply func(*core.Config, int)) {
	fmt.Println(title)
	start := time.Now()
	switch {
	case s.server != "":
		points := make([]presim.JobPoint, len(values))
		for i, v := range values {
			points[i] = presim.JobPoint{
				Name:  fmt.Sprintf("%d", v),
				Knobs: map[string]int64{knob: int64(v)},
			}
		}
		s.submitRemote(name, presim.JobSpec{
			Name:        name,
			Workloads:   presim.WorkloadNames(),
			Modes:       []string{mode.String()},
			Points:      points,
			WarmupUops:  s.opt.WarmupUops,
			MeasureUops: s.opt.MeasureUops,
			Fidelity:    s.fidelity,
			AddBaseline: true,
		})
	case s.serial:
		s.sweepSerial(mode, values, apply)
	default:
		s.sweepParallel(name, mode, values, apply)
	}
	if s.timing {
		fmt.Printf("  (wall-clock %.2fs)\n", time.Since(start).Seconds())
	}
}

// submitRemote submits one job spec to the -server instance, streams its
// events (surfaced via -progress), waits for completion, and captures
// the results document into -json. The document is byte-identical to a
// local run's, whether the server simulated or served from cache.
func (s sweeper) submitRemote(name string, spec presim.JobSpec) {
	cl := presim.NewClient(s.server)
	ctx := context.Background()
	st, err := cl.Submit(ctx, spec)
	if err != nil {
		fatal(err)
	}
	var onEvent func(presim.JobEvent) error
	if s.progress {
		onEvent = func(ev presim.JobEvent) error {
			if ev.Type == "cell" {
				src := "simulated"
				if ev.Cached {
					src = "cached"
				}
				fmt.Fprintf(os.Stderr, "sweep: %d/%d done  %s/%s  %.2fs (%s)\n",
					ev.Done, ev.Total, ev.Workload, ev.Mode, ev.Seconds, src)
			}
			return nil
		}
	}
	final, err := cl.Wait(ctx, st.ID, onEvent)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("  remote job %s on %s: %d unique runs, %d from cache, server wall-clock %.2fs\n",
		final.ID, s.server, final.NumUnique, final.CacheHits, final.Meta.WallClockSeconds)
	if s.jsonDir == "" {
		fmt.Println("  (pass -json DIR to capture the results document)")
		return
	}
	doc, err := cl.Result(ctx, final.ID)
	if err != nil {
		fatal(err)
	}
	if err := os.MkdirAll(s.jsonDir, 0o755); err != nil {
		fatal(err)
	}
	path := filepath.Join(s.jsonDir, name+".json")
	if err := os.WriteFile(path, doc, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("  (results JSON written to %s)\n", path)
}

// sweepParallel expresses the sweep as one exp.Matrix and lets the
// orchestrator dedupe baselines and saturate the worker pool.
func (s sweeper) sweepParallel(name string, mode presim.Mode, values []int,
	apply func(*core.Config, int)) {
	points := make([]exp.Point, len(values))
	for i, v := range values {
		v := v
		points[i] = exp.Point{
			Name:  fmt.Sprintf("%d", v),
			Apply: func(c *core.Config) { apply(c, v) },
		}
	}
	m := exp.Matrix{
		Name:        name,
		Workloads:   presim.Workloads(),
		Modes:       []presim.Mode{mode},
		Points:      points,
		Options:     s.opt,
		AddBaseline: true,
	}
	plan, err := m.Expand()
	if err != nil {
		fatal(err)
	}
	set, err := plan.RunOpts(s.runOpts())
	if err != nil {
		fatal(err)
	}
	for pi, v := range values {
		fmt.Printf("  %6d: %.3fx\n", v, set.GeoMeanSpeedups(pi)[0])
	}
	if s.jsonDir != "" {
		if err := set.WriteFile(s.jsonDir, name); err != nil {
			fatal(err)
		}
	}
	s.writeTrace(set)
}

// sweepPF runs the PF grid: every runahead mechanism crossed with every
// hardware-prefetcher variant over the full suite, one exp.Matrix. The
// grid summary (geomean speedups over each variant's own OoO baseline)
// and per-variant prefetcher quality print to stdout; the full per-run
// counters land in the -json sink.
//
//sim:wallclock -timing progress display only; the JSON artifact carries its own audited meta
func (s sweeper) sweepPF() {
	fmt.Println("PF grid: mechanisms x hardware prefetchers (speedup over per-variant OoO)")
	start := time.Now()
	if s.server != "" {
		modes := make([]string, 0, len(presim.Modes()))
		for _, m := range presim.Modes() {
			modes = append(modes, m.String())
		}
		var points []presim.JobPoint
		for _, v := range presim.PrefetchVariants() {
			points = append(points, presim.JobPoint{Name: v.Name, PrefetchVariant: v.Name})
		}
		s.submitRemote("pf_grid", presim.JobSpec{
			Name:        "pf_grid",
			Workloads:   presim.WorkloadNames(),
			Modes:       modes,
			Points:      points,
			WarmupUops:  s.opt.WarmupUops,
			MeasureUops: s.opt.MeasureUops,
			Fidelity:    s.fidelity,
		})
		return
	}
	m := exp.Matrix{
		Name:      "pf_grid",
		Workloads: presim.Workloads(),
		Modes:     presim.Modes(),
		Points:    presim.PrefetchPoints(),
		Options:   s.opt,
	}
	plan, err := m.Expand()
	if err != nil {
		fatal(err)
	}
	set, err := plan.RunOpts(s.runOpts())
	if err != nil {
		fatal(err)
	}
	points := plan.Points()
	summary := make([][]float64, len(points))
	for pi := range points {
		summary[pi] = set.GeoMeanSpeedups(pi)
	}
	presim.PFGridTable(points, presim.Modes(), summary).Write(os.Stdout)
	for pi, p := range points {
		var acc, cov, tim float64
		var n int
		for wi := range m.Workloads {
			r := set.Result(pi, wi, 0) // prefetcher quality under the OoO cell
			if r.HWPrefIssued == 0 {
				continue
			}
			acc += r.HWPFAccuracy
			cov += r.HWPFCoverage
			tim += r.HWPFTimeliness
			n++
		}
		if n > 0 {
			fmt.Printf("  %-12s OoO-cell prefetch quality: accuracy %.0f%%, coverage %.0f%%, timeliness %.0f%% (mean over %d workloads)\n",
				p, 100*acc/float64(n), 100*cov/float64(n), 100*tim/float64(n), n)
		}
	}
	if s.timing {
		meta := set.Meta()
		fmt.Printf("  (wall-clock %.2fs, %d workers, GOMAXPROCS %d, %d unique runs)\n",
			time.Since(start).Seconds(), meta.EffectiveWorkers, meta.GOMAXPROCS, meta.UniqueRuns)
	}
	if s.jsonDir != "" {
		if err := set.WriteFile(s.jsonDir, "pf_grid"); err != nil {
			fatal(err)
		}
	}
	s.writeTrace(set)
}

// sweepSynth runs the population sweep: count seeded scenarios sampled
// from the default synth space, crossed with every mechanism, summarized
// as per-seed speedup distributions. The -json artifact records every
// scenario's sampled parameters (schema v3 "synth" cell field).
//
//sim:wallclock -timing progress display only; the JSON artifact carries its own audited meta
func (s sweeper) sweepSynth(count int, baseSeed uint64) {
	fmt.Printf("Synth population: %d seeded scenarios x all mechanisms (speedup over OoO)\n", count)
	start := time.Now()
	if s.server != "" {
		modes := make([]string, 0, len(presim.Modes()))
		for _, m := range presim.Modes() {
			modes = append(modes, m.String())
		}
		pop := &presim.JobPopulation{SpaceName: "default", Count: count}
		if baseSeed != 0 {
			pop.BaseSeed = fmt.Sprintf("%x", baseSeed)
		}
		s.submitRemote("synth_population", presim.JobSpec{
			Name:        "synth_population",
			Modes:       modes,
			Population:  pop,
			WarmupUops:  s.opt.WarmupUops,
			MeasureUops: s.opt.MeasureUops,
			Fidelity:    s.fidelity,
		})
		return
	}
	m := exp.Matrix{
		Name:  "synth_population",
		Modes: presim.Modes(),
		Population: &exp.Population{
			Space: presim.DefaultSynthSpace(), Count: count, BaseSeed: baseSeed,
		},
		Options: s.opt,
	}
	plan, err := m.Expand()
	if err != nil {
		fatal(err)
	}
	set, err := plan.RunOpts(s.runOpts())
	if err != nil {
		fatal(err)
	}
	points := plan.Points()
	stats := make([][]presim.PopulationStat, len(points))
	for pi := range points {
		stats[pi] = set.PopulationStats(pi)
	}
	presim.PopulationGridTable(points, stats).Write(os.Stdout)
	if s.timing {
		meta := set.Meta()
		fmt.Printf("  (wall-clock %.2fs, %d workers, %d unique runs)\n",
			time.Since(start).Seconds(), meta.EffectiveWorkers, meta.UniqueRuns)
	}
	if s.jsonDir != "" {
		if err := set.WriteFile(s.jsonDir, "synth_population"); err != nil {
			fatal(err)
		}
		fmt.Printf("  (per-seed parameters recorded in %s/synth_population.json cells[].synth)\n", s.jsonDir)
	}
	s.writeTrace(set)
}

// sweepSerial is the pre-orchestrator loop: one run at a time, with the
// OoO baseline re-simulated for every parameter value. Kept as the
// verification reference for the parallel path.
func (s sweeper) sweepSerial(mode presim.Mode, values []int,
	apply func(*core.Config, int)) {
	ws := presim.Workloads()
	for _, v := range values {
		o := s.opt
		o.Configure = func(c *core.Config) { apply(c, v) }
		baseOpt := s.opt // the baseline ignores runahead-structure knobs
		baseOpt.Configure = func(c *core.Config) {
			apply(c, v) // but memory-system knobs must match
		}
		var speedups []float64
		for _, w := range ws {
			base, err := presim.Run(w, presim.ModeOoO, baseOpt)
			if err != nil {
				fatal(err)
			}
			r, err := presim.Run(w, mode, o)
			if err != nil {
				fatal(err)
			}
			speedups = append(speedups, r.Speedup(base))
		}
		fmt.Printf("  %6d: %.3fx\n", v, stats.GeoMean(speedups))
	}
}

func fatal(err error) {
	pprof.StopCPUProfile() // flush -cpuprofile data; no-op when not profiling
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
