// Command sweep runs the design-space ablations called out in DESIGN.md:
//
//	sweep -sst           # A1: SST size sweep (paper: 256 entries suffice)
//	sweep -emq           # A2: EMQ size sweep (paper picks 768 = 4x ROB)
//	sweep -rathreshold   # A3: RA short-interval filter threshold
//	sweep -mshr          # extra: memory-level-parallelism budget
//
// Each sweep reports the geometric-mean speedup over the OoO baseline
// across the whole suite for each parameter value.
package main

import (
	"flag"
	"fmt"
	"os"

	presim "repro"
	"repro/internal/core"
	"repro/internal/stats"
)

func main() {
	doSST := flag.Bool("sst", false, "sweep SST size (PRE)")
	doEMQ := flag.Bool("emq", false, "sweep EMQ size (PRE+EMQ)")
	doRAT := flag.Bool("rathreshold", false, "sweep RA short-interval filter")
	doMSHR := flag.Bool("mshr", false, "sweep L1D MSHR count (PRE)")
	warmup := flag.Int64("warmup", 50_000, "warmup µops per run")
	measure := flag.Int64("n", 200_000, "measured µops per run")
	flag.Parse()

	opt := presim.DefaultOptions()
	opt.WarmupUops = *warmup
	opt.MeasureUops = *measure

	any := false
	if *doSST {
		any = true
		sweep("A1: SST entries (PRE speedup over OoO)", presim.ModePRE, opt,
			[]int{16, 32, 64, 128, 256, 512, 1024},
			func(c *core.Config, v int) { c.SSTSize = v })
	}
	if *doEMQ {
		any = true
		sweep("A2: EMQ entries (PRE+EMQ speedup over OoO)", presim.ModePREEMQ, opt,
			[]int{192, 384, 768, 1152, 1536},
			func(c *core.Config, v int) { c.EMQSize = v })
	}
	if *doRAT {
		any = true
		sweep("A3: RA minimum-interval filter, cycles (RA speedup over OoO)", presim.ModeRA, opt,
			[]int{0, 20, 40, 64, 100, 150},
			func(c *core.Config, v int) { c.MinRunaheadCycles = int64(v) })
	}
	if *doMSHR {
		any = true
		sweep("MSHR budget: L1D outstanding misses (PRE speedup over OoO)", presim.ModePRE, opt,
			[]int{8, 16, 32, 64},
			func(c *core.Config, v int) { c.Mem.L1D.MSHRs = v })
	}
	if !any {
		fmt.Fprintln(os.Stderr, "sweep: pass at least one of -sst, -emq, -rathreshold, -mshr")
		os.Exit(2)
	}
}

// sweep runs the full suite at each parameter value and prints the
// geometric-mean speedup over a per-value OoO baseline.
func sweep(title string, mode presim.Mode, opt presim.Options, values []int,
	apply func(*core.Config, int)) {
	fmt.Println(title)
	ws := presim.Workloads()
	for _, v := range values {
		o := opt
		o.Configure = func(c *core.Config) { apply(c, v) }
		baseOpt := opt // the baseline ignores runahead-structure knobs
		baseOpt.Configure = func(c *core.Config) {
			apply(c, v) // but memory-system knobs must match
		}
		var speedups []float64
		for _, w := range ws {
			base, err := presim.Run(w, presim.ModeOoO, baseOpt)
			if err != nil {
				fatal(err)
			}
			r, err := presim.Run(w, mode, o)
			if err != nil {
				fatal(err)
			}
			speedups = append(speedups, r.Speedup(base))
		}
		fmt.Printf("  %6d: %.3fx\n", v, stats.GeoMean(speedups))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
