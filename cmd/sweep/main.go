// Command sweep runs the design-space ablations called out in DESIGN.md:
//
//	sweep -sst           # A1: SST size sweep (paper: 256 entries suffice)
//	sweep -emq           # A2: EMQ size sweep (paper picks 768 = 4x ROB)
//	sweep -rathreshold   # A3: RA short-interval filter threshold
//	sweep -mshr          # extra: memory-level-parallelism budget
//
// Each sweep reports the geometric-mean speedup over the OoO baseline
// across the whole suite for each parameter value.
//
// The command is a thin frontend over the parallel experiment
// orchestrator (internal/exp): each sweep becomes one exp.Matrix whose
// points are the parameter values, the orchestrator dedupes the shared
// OoO baselines and shards the unique runs across -workers cores, and
// -json captures the full schema-versioned results document. -serial
// keeps the original one-run-at-a-time loop for apples-to-apples
// verification; both paths print identical numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	presim "repro"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/stats"
)

func main() {
	doSST := flag.Bool("sst", false, "sweep SST size (PRE)")
	doEMQ := flag.Bool("emq", false, "sweep EMQ size (PRE+EMQ)")
	doRAT := flag.Bool("rathreshold", false, "sweep RA short-interval filter")
	doMSHR := flag.Bool("mshr", false, "sweep L1D MSHR count (PRE)")
	warmup := flag.Int64("warmup", 50_000, "warmup µops per run")
	measure := flag.Int64("n", 200_000, "measured µops per run")
	workers := flag.Int("workers", 0, "worker pool width (0 = one per CPU)")
	serial := flag.Bool("serial", false, "run the legacy serial loop instead of the orchestrator")
	jsonDir := flag.String("json", "", "directory to write schema-versioned results JSON into")
	timing := flag.Bool("time", false, "report wall-clock time per sweep")
	flag.Parse()

	if *serial && (*jsonDir != "" || *workers != 0) {
		fmt.Fprintln(os.Stderr, "sweep: -serial is the plain verification loop; it supports neither -json nor -workers")
		os.Exit(2)
	}

	opt := presim.DefaultOptions()
	opt.WarmupUops = *warmup
	opt.MeasureUops = *measure

	s := sweeper{opt: opt, workers: *workers, serial: *serial, jsonDir: *jsonDir, timing: *timing}

	any := false
	if *doSST {
		any = true
		s.sweep("a1_sst", "A1: SST entries (PRE speedup over OoO)", presim.ModePRE,
			[]int{16, 32, 64, 128, 256, 512, 1024},
			func(c *core.Config, v int) { c.SSTSize = v })
	}
	if *doEMQ {
		any = true
		s.sweep("a2_emq", "A2: EMQ entries (PRE+EMQ speedup over OoO)", presim.ModePREEMQ,
			[]int{192, 384, 768, 1152, 1536},
			func(c *core.Config, v int) { c.EMQSize = v })
	}
	if *doRAT {
		any = true
		s.sweep("a3_rathreshold", "A3: RA minimum-interval filter, cycles (RA speedup over OoO)", presim.ModeRA,
			[]int{0, 20, 40, 64, 100, 150},
			func(c *core.Config, v int) { c.MinRunaheadCycles = int64(v) })
	}
	if *doMSHR {
		any = true
		s.sweep("mshr", "MSHR budget: L1D outstanding misses (PRE speedup over OoO)", presim.ModePRE,
			[]int{8, 16, 32, 64},
			func(c *core.Config, v int) { c.Mem.L1D.MSHRs = v })
	}
	if !any {
		fmt.Fprintln(os.Stderr, "sweep: pass at least one of -sst, -emq, -rathreshold, -mshr")
		os.Exit(2)
	}
}

type sweeper struct {
	opt     presim.Options
	workers int
	serial  bool
	jsonDir string
	timing  bool
}

// sweep runs the full suite at each parameter value and prints the
// geometric-mean speedup over the (shared, deduplicated) OoO baseline.
func (s sweeper) sweep(name, title string, mode presim.Mode, values []int,
	apply func(*core.Config, int)) {
	fmt.Println(title)
	start := time.Now()
	if s.serial {
		s.sweepSerial(mode, values, apply)
	} else {
		s.sweepParallel(name, mode, values, apply)
	}
	if s.timing {
		fmt.Printf("  (wall-clock %.2fs)\n", time.Since(start).Seconds())
	}
}

// sweepParallel expresses the sweep as one exp.Matrix and lets the
// orchestrator dedupe baselines and saturate the worker pool.
func (s sweeper) sweepParallel(name string, mode presim.Mode, values []int,
	apply func(*core.Config, int)) {
	points := make([]exp.Point, len(values))
	for i, v := range values {
		v := v
		points[i] = exp.Point{
			Name:  fmt.Sprintf("%d", v),
			Apply: func(c *core.Config) { apply(c, v) },
		}
	}
	m := exp.Matrix{
		Name:        name,
		Workloads:   presim.Workloads(),
		Modes:       []presim.Mode{mode},
		Points:      points,
		Options:     s.opt,
		AddBaseline: true,
	}
	plan, err := m.Expand()
	if err != nil {
		fatal(err)
	}
	set, err := plan.Run(s.workers)
	if err != nil {
		fatal(err)
	}
	for pi, v := range values {
		fmt.Printf("  %6d: %.3fx\n", v, set.GeoMeanSpeedups(pi)[0])
	}
	if s.jsonDir != "" {
		if err := set.WriteFile(s.jsonDir, name); err != nil {
			fatal(err)
		}
	}
}

// sweepSerial is the pre-orchestrator loop: one run at a time, with the
// OoO baseline re-simulated for every parameter value. Kept as the
// verification reference for the parallel path.
func (s sweeper) sweepSerial(mode presim.Mode, values []int,
	apply func(*core.Config, int)) {
	ws := presim.Workloads()
	for _, v := range values {
		o := s.opt
		o.Configure = func(c *core.Config) { apply(c, v) }
		baseOpt := s.opt // the baseline ignores runahead-structure knobs
		baseOpt.Configure = func(c *core.Config) {
			apply(c, v) // but memory-system knobs must match
		}
		var speedups []float64
		for _, w := range ws {
			base, err := presim.Run(w, presim.ModeOoO, baseOpt)
			if err != nil {
				fatal(err)
			}
			r, err := presim.Run(w, mode, o)
			if err != nil {
				fatal(err)
			}
			speedups = append(speedups, r.Speedup(base))
		}
		fmt.Printf("  %6d: %.3fx\n", v, stats.GeoMean(speedups))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
