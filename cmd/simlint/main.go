// Command simlint is the repo's contract-checker multichecker: it runs
// the internal/lint analyzer suite (determinism, hotalloc, nilguard,
// purity, seedpurity) over the module and reports every finding with
// the standing contract it enforces and the runtime test that would
// otherwise catch it.
//
// Usage:
//
//	go run ./cmd/simlint [-tests=false] [-fix] [-list] [-only name,name] [packages...]
//
// Packages default to ./... relative to the module root, which is found
// by walking up from the working directory to go.mod. Exit status is 1
// when findings remain, 0 when the tree is clean.
//
// -fix applies suggested fixes. Fixes are insert-only — each one adds a
// single //sim:* annotation line above the diagnosed statement, indented
// to match — so applying them never changes program behavior; the
// inserted annotation text still asks the author to replace it with a
// real justification.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if err != errFindings {
			fmt.Fprintln(os.Stderr, "simlint:", err)
		}
		os.Exit(1)
	}
}

var errFindings = fmt.Errorf("findings reported")

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("simlint", flag.ExitOnError)
	tests := fs.Bool("tests", true, "also analyze test files")
	fix := fs.Bool("fix", false, "apply insert-only suggested fixes (annotation lines)")
	list := fs.Bool("list", false, "list the analyzer suite and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(out, "%-12s %s\n", a.Name, a.Doc)
			fmt.Fprintf(out, "%-12s contract: %s; would fail: %s\n", "", a.Contract, a.RuntimeTest)
		}
		return nil
	}
	if *only != "" {
		keep := map[string]bool{}
		for _, n := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(n)] = true
		}
		var sel []*analysis.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				sel = append(sel, a)
				delete(keep, a.Name)
			}
		}
		for n := range keep {
			return fmt.Errorf("unknown analyzer %q (see -list)", n)
		}
		analyzers = sel
	}
	root, err := moduleRoot()
	if err != nil {
		return err
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := lint.Run(root, patterns, analyzers, *tests)
	if err != nil {
		return err
	}
	if *fix {
		applied, err := applyFixes(findings)
		if err != nil {
			return err
		}
		if applied > 0 {
			fmt.Fprintf(out, "simlint: inserted %d annotation line(s); re-run to confirm and fill in the audit justifications\n", applied)
		}
		var rest []lint.Finding
		for _, f := range findings {
			if f.Fix == nil {
				rest = append(rest, f)
			}
		}
		findings = rest
	}
	for _, f := range findings {
		rel := f.File
		if r, err := filepath.Rel(root, f.File); err == nil && !strings.HasPrefix(r, "..") {
			rel = r
		}
		fmt.Fprintf(out, "%s:%d:%d: [%s] %s (contract: %s; would fail: %s)\n",
			rel, f.Line, f.Column, f.Analyzer, f.Message, f.Contract, f.RuntimeTest)
	}
	if len(findings) > 0 {
		fmt.Fprintf(out, "simlint: %d finding(s)\n", len(findings))
		return errFindings
	}
	return nil
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

// applyFixes inserts each finding's suggested annotation line above its
// diagnosed line, matching the line's indentation. Edits apply bottom-up
// per file so earlier insertions do not shift later line numbers.
func applyFixes(findings []lint.Finding) (int, error) {
	type edit struct {
		line int
		text string
	}
	byFile := map[string][]edit{}
	for _, f := range findings {
		if f.Fix == nil {
			continue
		}
		byFile[f.File] = append(byFile[f.File], edit{line: f.Line, text: f.Fix.InsertLine})
	}
	applied := 0
	for file, edits := range byFile {
		data, err := os.ReadFile(file)
		if err != nil {
			return applied, err
		}
		lines := strings.Split(string(data), "\n")
		sort.Slice(edits, func(i, j int) bool { return edits[i].line > edits[j].line })
		lastLine := -1
		for _, e := range edits {
			if e.line < 1 || e.line > len(lines) {
				continue
			}
			if e.line == lastLine {
				continue // one annotation covers every finding on the line
			}
			lastLine = e.line
			src := lines[e.line-1]
			indent := src[:len(src)-len(strings.TrimLeft(src, " \t"))]
			lines = append(lines[:e.line-1], append([]string{indent + e.text}, lines[e.line-1:]...)...)
			applied++
		}
		if err := os.WriteFile(file, []byte(strings.Join(lines, "\n")), 0o644); err != nil {
			return applied, err
		}
	}
	return applied, nil
}
