// Command figures regenerates every table and figure of the paper's
// evaluation, plus the in-text measurements, from the simulator. See
// DESIGN.md's experiment index (E1-E10) for the mapping.
//
// Usage:
//
//	figures                # everything
//	figures -only fig2     # one artifact: table1, fig2, fig3, e4...e9, pf
//	figures -csv out/      # additionally write CSV files
//	figures -n 300000      # measured window per run
//
// The pf artifact is the PRE-vs-prefetch-vs-combined grid: every
// mechanism crossed with the standard hardware-prefetcher variants.
//
// The synth artifact is the population-robustness grid: -seeds scenarios
// sampled from the default synth space (date-pinned base seed), every
// mechanism per scenario, summarized as per-seed speedup distributions —
// the "does the paper's conclusion survive scenario diversity?" figure.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	presim "repro"
	"repro/internal/core"
	"repro/internal/exp"
)

func main() {
	only := flag.String("only", "", "emit a single artifact: table1, fig2, fig3, e4, e5, e6, e7, e8, e9, pf, synth")
	csvDir := flag.String("csv", "", "directory to also write CSV tables into")
	jsonDir := flag.String("json", "", "directory to also write the full results JSON into")
	warmup := flag.Int64("warmup", 50_000, "warmup µops per run")
	measure := flag.Int64("n", 300_000, "measured µops per run")
	workers := flag.Int("workers", 0, "worker pool width (0 = one per CPU)")
	seeds := flag.Int("seeds", 16, "population size for the synth artifact")
	progress := flag.Bool("progress", false, "print live per-run progress to stderr as each sweep advances")
	flag.Parse()

	opt := presim.DefaultOptions()
	opt.WarmupUops = *warmup
	opt.MeasureUops = *measure

	ro := exp.RunOptions{Workers: *workers}
	if *progress {
		ro.Progress = func(ev exp.ProgressEvent) {
			fmt.Fprintf(os.Stderr, "figures: %d/%d done  %s/%s  %.2fs (elapsed %.1fs)\n",
				ev.Done, ev.Total, ev.Workload, ev.Mode, ev.Seconds, ev.ElapsedSeconds)
		}
	}

	want := func(name string) bool { return *only == "" || *only == name }

	if want("table1") {
		printTable1()
	}

	var results [][]presim.Result
	modes := presim.Modes()
	needMatrix := want("fig2") || want("fig3") || want("e4") || want("e5") ||
		want("e7") || want("e9")
	if needMatrix {
		m := exp.Matrix{
			Name:      "figures",
			Workloads: presim.Workloads(),
			Modes:     modes,
			Options:   opt,
		}
		plan, err := m.Expand()
		if err != nil {
			fatal(err)
		}
		set, err := plan.RunOpts(ro)
		if err != nil {
			fatal(err)
		}
		results = set.Grid(0)
		if *jsonDir != "" {
			if err := set.WriteFile(*jsonDir, "figures"); err != nil {
				fatal(err)
			}
		}
	}

	emit := func(name string, t *presim.Table) {
		fmt.Println()
		t.Write(os.Stdout)
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fatal(err)
			}
			f, err := os.Create(filepath.Join(*csvDir, name+".csv"))
			if err != nil {
				fatal(err)
			}
			t.WriteCSV(f)
			f.Close()
		}
	}

	if want("fig2") {
		emit("fig2", presim.Fig2Table(results, modes))
	}
	if want("fig3") {
		emit("fig3", presim.Fig3Table(results, modes))
	}
	if want("e4") {
		emit("e4_refill", e4Table(results, modes))
	}
	if want("e5") {
		emit("e5_intervals", e5Table(results, modes))
	}
	if want("e6") {
		t, err := e6Table(opt, ro, *jsonDir)
		if err != nil {
			fatal(err)
		}
		emit("e6_free_exit", t)
	}
	if want("e7") {
		emit("e7_free_resources", e7Table(results, modes))
	}
	if want("e8") {
		printE8()
	}
	if want("e9") {
		emit("e9_invocations", e9Table(results, modes))
	}
	if want("pf") {
		grid, detail, interference, err := pfTables(opt, ro, *jsonDir)
		if err != nil {
			fatal(err)
		}
		emit("pf_grid", grid)
		emit("pf_detail", detail)
		emit("pf_interference", interference)
	}
	if want("synth") {
		t, err := synthTable(opt, ro, *jsonDir, *seeds)
		if err != nil {
			fatal(err)
		}
		emit("synth_population", t)
	}
	if *only == "" {
		emit("runahead_detail", presim.RunaheadDetailTable(results, modes))
	}
}

// synthTable runs the population sweep: every mechanism over a seeded
// scenario population, rendered as the per-seed speedup-distribution grid
// (min / median / geomean, worst seed). The -json artifact records each
// scenario's sampled parameters for artifact-only reproduction.
func synthTable(opt presim.Options, ro exp.RunOptions, jsonDir string, seeds int) (*presim.Table, error) {
	m := exp.Matrix{
		Name:  "synth_population",
		Modes: presim.Modes(),
		Population: &exp.Population{
			Space: presim.DefaultSynthSpace(), Count: seeds,
		},
		Options: opt,
	}
	plan, err := m.Expand()
	if err != nil {
		return nil, err
	}
	set, err := plan.RunOpts(ro)
	if err != nil {
		return nil, err
	}
	if jsonDir != "" {
		if err := set.WriteFile(jsonDir, "synth_population"); err != nil {
			return nil, err
		}
	}
	points := plan.Points()
	stats := make([][]presim.PopulationStat, len(points))
	for pi := range points {
		stats[pi] = set.PopulationStats(pi)
	}
	return presim.PopulationGridTable(points, stats), nil
}

// pfTables runs the PF-augmented grid (every mechanism x every hardware-
// prefetcher variant) and renders the speedup summary plus the combined
// variant's per-workload prefetcher diagnostics and the runahead/HW
// interference view of the filtered variant.
func pfTables(opt presim.Options, ro exp.RunOptions, jsonDir string) (*presim.Table, *presim.Table, *presim.Table, error) {
	m := exp.Matrix{
		Name:      "pf_grid",
		Workloads: presim.Workloads(),
		Modes:     presim.Modes(),
		Points:    presim.PrefetchPoints(),
		Options:   opt,
	}
	plan, err := m.Expand()
	if err != nil {
		return nil, nil, nil, err
	}
	set, err := plan.RunOpts(ro)
	if err != nil {
		return nil, nil, nil, err
	}
	if jsonDir != "" {
		if err := set.WriteFile(jsonDir, "pf_grid"); err != nil {
			return nil, nil, nil, err
		}
	}
	points := plan.Points()
	summary := make([][]float64, len(points))
	for pi := range points {
		summary[pi] = set.GeoMeanSpeedups(pi)
	}
	grid := presim.PFGridTable(points, presim.Modes(), summary)
	// Diagnostics for the most-combined variant (the last point: the full
	// adaptive L1I+throttle+filter stack), plus the interference view of
	// the same point (filtered-RA is only non-zero with the filter on).
	detail := presim.PrefetchDetailTable(set.Grid(len(points)-1), presim.Modes())
	interference := presim.PFInterferenceTable(set.Grid(len(points)-1), presim.Modes())
	return grid, detail, interference, nil
}

// printTable1 dumps the baseline configuration (paper Table 1).
func printTable1() {
	cfg := presim.DefaultConfig(presim.ModePRE)
	m := cfg.Mem
	fmt.Println("Table 1: baseline configuration")
	fmt.Printf("  Core            %d MHz out-of-order, ROB %d, IQ/LQ/SQ %d/%d/%d, width %d, front-end depth %d\n",
		m.DRAM.CoreClockMHz, cfg.ROBSize, cfg.IQSize, cfg.LQSize, cfg.SQSize, cfg.Width, cfg.Fetch.Depth)
	fmt.Printf("  Register files  %d int, %d fp\n", cfg.Rename.IntPRF, cfg.Rename.FPPRF)
	fmt.Printf("  SST             %d entries, fully associative, LRU\n", cfg.SSTSize)
	fmt.Printf("  PRDQ            %d entries\n", cfg.PRDQSize)
	fmt.Printf("  EMQ             %d entries\n", cfg.EMQSize)
	fmt.Printf("  L1 I-cache      %d KB, assoc %d, %d cyc\n", m.L1I.SizeBytes>>10, m.L1I.Assoc, m.L1I.HitLatency)
	fmt.Printf("  L1 D-cache      %d KB, assoc %d, %d cyc\n", m.L1D.SizeBytes>>10, m.L1D.Assoc, m.L1D.HitLatency)
	fmt.Printf("  L2 cache        %d KB, assoc %d, %d cyc\n", m.L2.SizeBytes>>10, m.L2.Assoc, m.L2.HitLatency)
	fmt.Printf("  L3 cache        %d MB, assoc %d, %d cyc\n", m.L3.SizeBytes>>20, m.L3.Assoc, m.L3.HitLatency)
	fmt.Printf("  Memory          DDR3-1600, %d MHz, ranks %d, banks %d, page %d B, bus %d bits, tRP-tCL-tRCD %d-%d-%d\n",
		m.DRAM.MemClockMHz, m.DRAM.Ranks, m.DRAM.Ranks*m.DRAM.BanksPerRank, m.DRAM.RowBytes,
		m.DRAM.BusBytes*8, m.DRAM.TRP, m.DRAM.TCL, m.DRAM.TRCD)
}

// e4Table: measured flush-to-window-refilled penalty for the flushing
// mechanisms (paper estimate: ~56 cycles).
func e4Table(results [][]presim.Result, modes []presim.Mode) *presim.Table {
	t := newTable("E4: runahead exit refill penalty (paper estimate: 8 FE + 48 ROB = 56 cycles)",
		"benchmark", "RA refill", "RA-buffer refill")
	for _, row := range results {
		var ra, rab string
		for mi, m := range modes {
			switch m {
			case core.ModeRA:
				ra = fmt.Sprintf("%.0f", row[mi].RefillPenaltyMean)
			case core.ModeRABuffer:
				rab = fmt.Sprintf("%.0f", row[mi].RefillPenaltyMean)
			}
		}
		t.AddRow(row[0].Workload, ra, rab)
	}
	return t
}

// e5Table: fraction of runahead intervals shorter than 20 cycles
// (paper: 27% for memory-intensive workloads, measured without the
// short-interval filter — the PRE column is the comparable one).
func e5Table(results [][]presim.Result, modes []presim.Mode) *presim.Table {
	t := newTable("E5: short runahead intervals (paper: 27% below 20 cycles)",
		"benchmark", "PRE mean", "PRE <20cyc", "RA mean (filtered)")
	for _, row := range results {
		var preMean, preShort, raMean string
		for mi, m := range modes {
			switch m {
			case core.ModePRE:
				preMean = fmt.Sprintf("%.0f", row[mi].IntervalMean)
				preShort = fmt.Sprintf("%.0f%%", 100*row[mi].IntervalFracBelow20)
			case core.ModeRA:
				raMean = fmt.Sprintf("%.0f", row[mi].IntervalMean)
			}
		}
		t.AddRow(row[0].Workload, preMean, preShort, raMean)
	}
	return t
}

// e6Table: RA with free (snapshot) exit versus plain RA — the paper's
// "20.6% if the window were not discarded" potential. Expressed as a
// two-point matrix; the orchestrator shares one OoO baseline between the
// points (FreeExit is an RA-only knob) and runs the rest in parallel.
func e6Table(opt presim.Options, ro exp.RunOptions, jsonDir string) (*presim.Table, error) {
	m := exp.Matrix{
		Name:      "e6_free_exit",
		Workloads: presim.Workloads(),
		Modes:     []presim.Mode{core.ModeOoO, core.ModeRA},
		Points: []exp.Point{
			{Name: "flush-exit"},
			{Name: "free-exit", Apply: func(c *core.Config) {
				if c.Mode == core.ModeRA {
					c.FreeExit = true
				}
			}},
		},
		Options: opt,
	}
	plan, err := m.Expand()
	if err != nil {
		return nil, err
	}
	set, err := plan.RunOpts(ro)
	if err != nil {
		return nil, err
	}
	if jsonDir != "" {
		if err := set.WriteFile(jsonDir, "e6_free_exit"); err != nil {
			return nil, err
		}
	}
	t := newTable("E6: RA speedup with zero-cost exit (paper: 14.5% -> 20.6% potential)",
		"benchmark", "OoO IPC", "RA", "RA free-exit")
	for wi, w := range presim.Workloads() {
		base, _ := set.Baseline(0, wi)
		t.AddRow(w.Name,
			fmt.Sprintf("%.3f", base.IPC),
			fmt.Sprintf("%.3f", set.Speedup(0, wi, 1)),
			fmt.Sprintf("%.3f", set.Speedup(1, wi, 1)))
	}
	return t, nil
}

// e7Table: free resources at runahead entry (paper Section 3.4: 37% IQ,
// 51% int regs, 59% fp regs).
func e7Table(results [][]presim.Result, modes []presim.Mode) *presim.Table {
	t := newTable("E7: free resources at runahead entry (paper: IQ 37%, int 51%, fp 59%)",
		"benchmark", "IQ free", "int free", "fp free")
	preIdx := -1
	for mi, m := range modes {
		if m == core.ModePRE {
			preIdx = mi
		}
	}
	for _, row := range results {
		r := row[preIdx]
		t.AddRow(r.Workload,
			fmt.Sprintf("%.0f%%", 100*r.FreeIQFrac),
			fmt.Sprintf("%.0f%%", 100*r.FreeIntFrac),
			fmt.Sprintf("%.0f%%", 100*r.FreeFPFrac))
	}
	return t
}

// printE8 accounts the hardware budget (paper Section 3.6).
func printE8() {
	cfg := presim.DefaultConfig(presim.ModePRE)
	sst := cfg.SSTSize * 4
	prdq := cfg.PRDQSize * 4
	ratExt := 64 * 4 // 64 RAT entries extended by 4 bytes
	emq := cfg.EMQSize * 4
	fmt.Println("\nE8: hardware budget (paper Section 3.6)")
	fmt.Printf("  SST      %4d entries x 4 B = %4d B (paper: 1 KB)\n", cfg.SSTSize, sst)
	fmt.Printf("  PRDQ     %4d entries x 4 B = %4d B (paper: 768 B)\n", cfg.PRDQSize, prdq)
	fmt.Printf("  RAT ext    64 entries x 4 B = %4d B (paper: 256 B)\n", ratExt)
	fmt.Printf("  PRE total                   = %4d B (paper: 2 KB)\n", sst+prdq+ratExt)
	fmt.Printf("  EMQ      %4d entries x 4 B = %4d B (paper: +3 KB)\n", cfg.EMQSize, emq)
}

// e9Table: runahead invocation frequency relative to RA (paper: PRE
// 1.62x, PRE+EMQ 1.95x).
func e9Table(results [][]presim.Result, modes []presim.Mode) *presim.Table {
	t := newTable("E9: runahead invocations relative to RA (paper: PRE 1.62x, PRE+EMQ 1.95x)",
		"benchmark", "RA", "PRE", "PRE/RA", "PRE+EMQ", "PRE+EMQ/RA")
	idx := map[presim.Mode]int{}
	for mi, m := range modes {
		idx[m] = mi
	}
	var sumPre, sumEmq, n float64
	for _, row := range results {
		ra := row[idx[core.ModeRA]].Entries
		pre := row[idx[core.ModePRE]].Entries
		emq := row[idx[core.ModePREEMQ]].Entries
		ratio := func(a, b int64) string {
			if b == 0 {
				return "-"
			}
			return fmt.Sprintf("%.2fx", float64(a)/float64(b))
		}
		if ra > 0 {
			sumPre += float64(pre) / float64(ra)
			sumEmq += float64(emq) / float64(ra)
			n++
		}
		t.AddRow(row[0].Workload,
			fmt.Sprintf("%d", ra), fmt.Sprintf("%d", pre), ratio(pre, ra),
			fmt.Sprintf("%d", emq), ratio(emq, ra))
	}
	if n > 0 {
		t.AddRow("mean", "", "", fmt.Sprintf("%.2fx", sumPre/n), "", fmt.Sprintf("%.2fx", sumEmq/n))
	}
	return t
}

func newTable(title string, header ...string) *presim.Table {
	t := &presim.Table{Title: title, Header: header}
	return t
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}
