// Command simd is the long-running simulation server: sweeps as a
// service. Clients POST declarative job specs (serve.JobSpec) and stream
// per-cell completion events; results are the same schema-versioned,
// byte-identical documents a local run writes, assembled from a
// content-addressed result cache whenever a cell has been simulated
// before — by this job, a previous job, or a previous server process
// (with -cache-dir).
//
//	simd -addr :8723 -cache-dir /var/cache/presim
//
//	curl -s localhost:8723/v1/jobs -d '{
//	  "modes": ["OoO","PRE"],
//	  "population": {"space_name": "default", "count": 4},
//	  "warmup_uops": 50000, "measure_uops": 200000
//	}'
//	curl -s localhost:8723/v1/jobs/j1/events   # NDJSON, ends when done
//	curl -s localhost:8723/v1/jobs/j1/result   # results JSON
//	curl -s localhost:8723/v1/stats            # queue + cache + timings
//
// Or programmatically, via presim.NewClient / presim.JobSpec (see
// examples/remotesweep).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
	"repro/internal/serve/cache"
)

func main() {
	addr := flag.String("addr", ":8723", "listen address")
	cacheDir := flag.String("cache-dir", "", "persist cached results to this directory (empty = memory only)")
	cacheCap := flag.Int("cache-capacity", 4096, "in-memory result cache capacity (entries)")
	simWorkers := flag.Int("sim-workers", 0, "simulation pool width per job (0 = one per CPU)")
	jobWorkers := flag.Int("job-workers", 1, "jobs executing concurrently")
	queueDepth := flag.Int("queue-depth", 64, "max queued jobs before submissions get 503")
	verifyFraction := flag.Float64("verify-fraction", 0,
		"re-simulate this fraction of cache hits and fail jobs on divergence (0 = off, 1 = every hit)")
	flag.Parse()

	if *verifyFraction < 0 || *verifyFraction > 1 {
		fmt.Fprintf(os.Stderr, "simd: -verify-fraction must be in [0,1] (got %v)\n", *verifyFraction)
		os.Exit(2)
	}

	c, err := cache.New(*cacheCap, *cacheDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simd:", err)
		os.Exit(1)
	}
	srv := serve.New(serve.Config{
		Cache:          c,
		SimWorkers:     *simWorkers,
		JobWorkers:     *jobWorkers,
		QueueDepth:     *queueDepth,
		VerifyFraction: *verifyFraction,
	})
	defer srv.Close()

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "simd: listening on %s (cache dir %q, capacity %d, verify fraction %v)\n",
		*addr, *cacheDir, *cacheCap, *verifyFraction)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "simd:", err)
			os.Exit(1)
		}
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "simd: %v, shutting down\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
	}
}
