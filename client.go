package presim

import (
	"repro/internal/exp"
	"repro/internal/serve"
)

// Sweeps as a service (internal/serve): cmd/simd is a long-running
// HTTP/JSON simulation server with a content-addressed result cache, and
// Client is its programmatic API. A JobSpec is the declarative,
// JSON-serializable equivalent of an Experiment — named workloads, named
// modes, named prefetch variants, whitelisted knobs, a synth population —
// and a finished job's results document is byte-identical to what a
// local run of the same matrix writes, whether the cells were simulated
// fresh or served from cache.
type (
	// Client talks to a simulation server (cmd/simd):
	// Submit/Events/Result/Cancel/Stats/Wait.
	Client = serve.Client
	// JobSpec declares one remote experiment matrix.
	JobSpec = serve.JobSpec
	// JobPoint is one declarative configuration point of a JobSpec
	// (prefetch variant + whitelisted knobs).
	JobPoint = serve.PointSpec
	// JobPopulation declares a JobSpec's sampled synth-scenario axis.
	JobPopulation = serve.PopulationSpec
	// JobStatus is the polled view of a submitted job.
	JobStatus = serve.JobStatus
	// JobEvent is one line of a job's NDJSON event stream.
	JobEvent = serve.Event
	// ServerStats is the server-wide queue/cache/timing snapshot.
	ServerStats = serve.Stats
)

// NewClient returns a Client for the simulation server at baseURL.
func NewClient(baseURL string) *Client { return serve.NewClient(baseURL) }

// JobKnobNames lists the configuration knobs a JobSpec may set, sorted.
func JobKnobNames() []string { return serve.KnobNames() }

// CellKey is the content address of one simulation: the canonical,
// versioned identity (workload + synth params + window + energy model +
// per-mode config) under which the serve-layer cache stores results.
type CellKey = exp.CellKey
